(* Tests for the observability layer (lib/obs): event serialization,
   sinks, the counter registry, profiles, digests — plus the trace
   properties the bus guarantees on real simulation runs:

   - every Update_recv is preceded by a matching unconsumed Update_sent
     (chaos-free scenarios only: message duplication would deliberately
     break the correspondence);
   - the number of Fib_change events equals the FIB history's
     change_count (wired through Fib_history.set_on_change);
   - counter snapshots taken at increasing times are monotone under
     Counters.le. *)

let ev_sent ~time ~src ~dst ~withdraw =
  Obs.Event.Update_sent { time; src; dst; withdraw; prefix = None }

let ev_sent_pfx ~prefix ~time ~src ~dst ~withdraw =
  Obs.Event.Update_sent { time; src; dst; withdraw; prefix = Some prefix }

(* --- events --- *)

let test_event_json_shapes () =
  Alcotest.(check string) "update_sent"
    {|{"ev":"update_sent","t":1.5,"src":0,"dst":3,"kind":"announce"}|}
    (Obs.Event.to_json (ev_sent ~time:1.5 ~src:0 ~dst:3 ~withdraw:false));
  Alcotest.(check string) "withdraw kind"
    {|{"ev":"update_recv","t":2,"node":3,"from":0,"kind":"withdraw"}|}
    (Obs.Event.to_json
       (Obs.Event.Update_recv
          { time = 2.; node = 3; from = 0; withdraw = true; prefix = None }));
  Alcotest.(check string) "fib change to none"
    {|{"ev":"fib_change","t":0.25,"node":1,"next_hop":null}|}
    (Obs.Event.to_json
       (Obs.Event.Fib_change
          { time = 0.25; node = 1; next_hop = None; prefix = None }));
  Alcotest.(check string) "loop members"
    {|{"ev":"loop_detected","t":3,"members":[1,2,4],"trigger":2}|}
    (Obs.Event.to_json
       (Obs.Event.Loop_detected
          { time = 3.; members = [ 1; 2; 4 ]; trigger = 2; prefix = None }));
  (* mesh runs tag per-prefix events with a trailing "pfx" field; the
     tag must not disturb any byte before it *)
  Alcotest.(check string) "prefix tag appended"
    {|{"ev":"update_sent","t":1.5,"src":0,"dst":3,"kind":"announce","pfx":42}|}
    (Obs.Event.to_json
       (ev_sent_pfx ~prefix:42 ~time:1.5 ~src:0 ~dst:3 ~withdraw:false));
  Alcotest.(check string) "prefix tag on fib change"
    {|{"ev":"fib_change","t":0.25,"node":1,"next_hop":4,"pfx":0}|}
    (Obs.Event.to_json
       (Obs.Event.Fib_change
          { time = 0.25; node = 1; next_hop = Some 4; prefix = Some 0 }))

let test_event_accessors () =
  let e = ev_sent ~time:7.25 ~src:1 ~dst:2 ~withdraw:true in
  Alcotest.(check (float 0.)) "time" 7.25 (Obs.Event.time e);
  Alcotest.(check string) "kind" "update_sent" (Obs.Event.kind e)

let test_json_float_stability () =
  (* %.12g must round-trip typical virtual times without platform noise *)
  let e = ev_sent ~time:30.000000000001 ~src:0 ~dst:1 ~withdraw:false in
  let j1 = Obs.Event.to_json e and j2 = Obs.Event.to_json e in
  Alcotest.(check string) "byte stable" j1 j2

(* --- sinks --- *)

let test_memory_sink_order () =
  let sink, contents = Obs.Sink.memory () in
  for i = 0 to 4 do
    Obs.Sink.emit sink (ev_sent ~time:(float_of_int i) ~src:i ~dst:0 ~withdraw:false)
  done;
  Alcotest.(check (list (float 0.)))
    "emit order preserved" [ 0.; 1.; 2.; 3.; 4. ]
    (List.map Obs.Event.time (contents ()))

let test_ring_sink_keeps_last () =
  let sink, contents = Obs.Sink.ring ~capacity:3 () in
  for i = 0 to 9 do
    Obs.Sink.emit sink (ev_sent ~time:(float_of_int i) ~src:i ~dst:0 ~withdraw:false)
  done;
  Alcotest.(check (list (float 0.)))
    "last capacity events, oldest first" [ 7.; 8.; 9. ]
    (List.map Obs.Event.time (contents ()));
  Alcotest.check_raises "capacity 0 rejected"
    (Invalid_argument "Sink.ring: capacity must be positive") (fun () ->
      ignore (Obs.Sink.ring ~capacity:0 ()))

let test_ring_sink_counts_drops () =
  let c = Obs.Counters.create () in
  let sink, contents = Obs.Sink.ring ~counters:c ~capacity:3 () in
  for i = 0 to 9 do
    Obs.Sink.emit sink (ev_sent ~time:(float_of_int i) ~src:i ~dst:0 ~withdraw:false)
  done;
  let s = Obs.Counters.snapshot c in
  Alcotest.(check int) "10 emits into 3 slots drop 7" 7 s.s_trace_dropped;
  Alcotest.(check int) "ring still serves the tail" 3
    (List.length (contents ()));
  (* below capacity: nothing dropped *)
  let c2 = Obs.Counters.create () in
  let sink2, _ = Obs.Sink.ring ~counters:c2 ~capacity:8 () in
  for i = 0 to 4 do
    Obs.Sink.emit sink2
      (ev_sent ~time:(float_of_int i) ~src:i ~dst:0 ~withdraw:false)
  done;
  Alcotest.(check int) "no drops below capacity" 0
    (Obs.Counters.snapshot c2).s_trace_dropped;
  (* the counter participates in snapshot merge/ordering *)
  Alcotest.(check bool) "drops respected by le" false
    (Obs.Counters.le s (Obs.Counters.snapshot c2));
  let m = Obs.Counters.merge s (Obs.Counters.snapshot c2) in
  Alcotest.(check int) "merge sums drops" 7 m.s_trace_dropped

let test_tee_sink () =
  let s1, c1 = Obs.Sink.memory () in
  let s2, c2 = Obs.Sink.memory () in
  let tee = Obs.Sink.tee s1 s2 in
  Obs.Sink.emit tee (ev_sent ~time:1. ~src:0 ~dst:1 ~withdraw:false);
  Alcotest.(check int) "both sides" 2 (List.length (c1 ()) + List.length (c2 ()))

let test_jsonl_file_digest_matches_events () =
  let path = Filename.temp_file "obs_test" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let events =
        [
          ev_sent ~time:0.5 ~src:0 ~dst:1 ~withdraw:false;
          Obs.Event.Fib_change
            { time = 1.; node = 1; next_hop = Some 0; prefix = None };
        ]
      in
      let sink = Obs.Sink.jsonl_file path in
      List.iter (Obs.Sink.emit sink) events;
      Obs.Sink.close sink;
      Alcotest.(check string) "file digest = in-memory digest"
        (Obs.Trace_digest.of_events events)
        (Obs.Trace_digest.of_file path))

(* --- binary codec --- *)

let all_constructor_events =
  [
    ev_sent ~time:1.5 ~src:0 ~dst:3 ~withdraw:false;
    ev_sent_pfx ~prefix:12109 ~time:1.5 ~src:0 ~dst:3 ~withdraw:false;
    Obs.Event.Update_recv
      { time = 2.; node = 3; from = 0; withdraw = true; prefix = None };
    Obs.Event.Update_recv
      { time = 2.; node = 3; from = 0; withdraw = true; prefix = Some 0 };
    Obs.Event.Originate { time = 0.; node = 7; prefix = None };
    Obs.Event.Originate { time = 0.; node = 7; prefix = Some 7 };
    Obs.Event.Withdrawal { time = 0.125; node = 2; prefix = None };
    Obs.Event.Fib_change
      { time = 0.25; node = 1; next_hop = None; prefix = None };
    Obs.Event.Fib_change
      { time = 0.25; node = 1; next_hop = Some 4; prefix = Some 109 };
    Obs.Event.Mrai_fire { time = 30.000000000001; node = 5; peer = 6 };
    Obs.Event.Node_busy { time = 3.5; node = 2; depth = 9 };
    Obs.Event.Link_state { time = 4.; a = 1; b = 2; up = false };
    Obs.Event.Msg_dropped { time = 5.; a = 2; b = 3; reason = Obs.Event.Loss };
    Obs.Event.Loop_detected
      { time = 6.; members = []; trigger = 0; prefix = None };
    Obs.Event.Loop_resolved
      { time = 7.; members = List.init 300 Fun.id; prefix = Some 3 };
  ]

let test_binary_roundtrip_all_constructors () =
  List.iter
    (fun e ->
      let s = Obs.Binary.encode_string e in
      let e', stop = Obs.Binary.decode s ~pos:0 in
      Alcotest.(check bool) "event round-trips" true (e' = e);
      Alcotest.(check int) "frame fully consumed" (String.length s) stop)
    all_constructor_events;
  (* a whole stream, header included *)
  let buf = Buffer.create 256 in
  Buffer.add_string buf Obs.Binary.header;
  List.iter (Obs.Binary.encode buf) all_constructor_events;
  Alcotest.(check bool) "stream round-trips" true
    (Obs.Binary.decode_all (Buffer.contents buf) = all_constructor_events)

let test_binary_rejects_corruption () =
  let fails f = try ignore (f ()); false with Failure _ -> true in
  Alcotest.(check bool) "foreign bytes" true
    (fails (fun () -> Obs.Binary.decode_all "not a trace at all"));
  Alcotest.(check bool) "short header" true
    (fails (fun () -> Obs.Binary.decode_all "BGP"));
  (* version mismatches raise the structured exception, not Failure:
     callers (churn resume, trace decode) match on it to give the
     "re-encode or re-run" advice *)
  let version_mismatch ~found stream =
    match Obs.Binary.decode_all stream with
    | _ -> Alcotest.fail "version mismatch not rejected"
    | exception Obs.Binary.Unsupported_version { found = f; expected } ->
        Alcotest.(check int) "found version reported" found f;
        Alcotest.(check int) "expected = current" Obs.Binary.version expected
  in
  version_mismatch ~found:42 "BGPTRACE\042";
  (* a v1 stream (pre prefix-field bump) must be rejected up front *)
  version_mismatch ~found:1 "BGPTRACE\001";
  let frame = Obs.Binary.encode_string (List.hd all_constructor_events) in
  let truncated =
    Obs.Binary.header ^ String.sub frame 0 (String.length frame - 1)
  in
  Alcotest.(check bool) "truncated frame" true
    (fails (fun () -> Obs.Binary.decode_all truncated))

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let test_binary_file_sink_roundtrip () =
  let path = Filename.temp_file "obs_test" ".bin" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let sink = Obs.Sink.binary_file path in
      List.iter (Obs.Sink.emit sink) all_constructor_events;
      Obs.Sink.close sink;
      (* bulk decode of the file bytes *)
      let bytes = read_file path in
      Alcotest.(check bool) "file decodes to the events" true
        (Obs.Binary.decode_all bytes = all_constructor_events);
      (* the binary digest covers frames only, not the header *)
      let frames =
        String.sub bytes
          (String.length Obs.Binary.header)
          (String.length bytes - String.length Obs.Binary.header)
      in
      Alcotest.(check string) "of_events_binary = md5 of the frame bytes"
        (Digest.to_hex (Digest.string frames))
        (Obs.Trace_digest.of_events_binary all_constructor_events);
      (* the incremental channel reader agrees with the bulk decoder *)
      let ic = open_in_bin path in
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () ->
          let r = Obs.Binary.open_reader ic in
          let rec all acc =
            match Obs.Binary.input r with
            | Some e -> all (e :: acc)
            | None -> List.rev acc
          in
          Alcotest.(check bool) "reader yields the same events" true
            (all [] = all_constructor_events)))

(* qcheck: decode (encode e) = e over every constructor, including
   empty/long member lists and extreme (finite) float times *)
let gen_event =
  let open QCheck.Gen in
  let time =
    oneof
      [
        map (fun i -> float_of_int i /. 128.) int;
        oneofl
          [
            0.; -0.; 1e-308; 4.9e-324; 1.7976931348623157e308; -1.5e300;
            30.000000000001;
          ];
      ]
  in
  let node = oneof [ small_nat; oneofl [ 0; 1; 0x7FFFFFFF; -0x80000000 ] ] in
  let members =
    oneof [ return []; list_size (int_range 1 300) node ]
  in
  let reason =
    oneofl [ Obs.Event.Down; Obs.Event.Loss; Obs.Event.Stale_epoch ]
  in
  let b = bool in
  let prefix = oneof [ return None; map Option.some small_nat ] in
  oneof
    [
      map (fun ((time, src, dst, withdraw), prefix) ->
          Obs.Event.Update_sent { time; src; dst; withdraw; prefix })
        (pair (quad time node node b) prefix);
      map (fun ((time, node, from, withdraw), prefix) ->
          Obs.Event.Update_recv { time; node; from; withdraw; prefix })
        (pair (quad time node node b) prefix);
      map (fun (time, node, prefix) -> Obs.Event.Originate { time; node; prefix })
        (triple time node prefix);
      map (fun (time, node, prefix) ->
          Obs.Event.Withdrawal { time; node; prefix })
        (triple time node prefix);
      map (fun ((time, node, next_hop), prefix) ->
          Obs.Event.Fib_change { time; node; next_hop; prefix })
        (pair (triple time node (option node)) prefix);
      map (fun (time, node, peer) -> Obs.Event.Mrai_fire { time; node; peer })
        (triple time node node);
      map (fun (time, node, depth) -> Obs.Event.Node_busy { time; node; depth })
        (triple time node node);
      map (fun (time, a, b', up) -> Obs.Event.Link_state { time; a; b = b'; up })
        (quad time node node b);
      map (fun (time, a, b', reason) ->
          Obs.Event.Msg_dropped { time; a; b = b'; reason })
        (quad time node node reason);
      map (fun ((time, members, trigger), prefix) ->
          Obs.Event.Loop_detected { time; members; trigger; prefix })
        (pair (triple time members node) prefix);
      map (fun (time, members, prefix) ->
          Obs.Event.Loop_resolved { time; members; prefix })
        (triple time members prefix);
    ]

let arb_event =
  QCheck.make ~print:(fun e -> Obs.Event.to_json e) gen_event

let prop_binary_roundtrip =
  QCheck.Test.make ~count:500 ~name:"binary decode (encode e) = e" arb_event
    (fun e ->
      let s = Obs.Binary.encode_string e in
      let e', stop = Obs.Binary.decode s ~pos:0 in
      e' = e && stop = String.length s)

let prop_binary_stream_roundtrip =
  QCheck.Test.make ~count:50 ~name:"binary stream decode_all round-trip"
    QCheck.(list_of_size (QCheck.Gen.int_range 0 40) arb_event)
    (fun events ->
      let buf = Buffer.create 1024 in
      Buffer.add_string buf Obs.Binary.header;
      List.iter (Obs.Binary.encode buf) events;
      Obs.Binary.decode_all (Buffer.contents buf) = events)

(* --- bus --- *)

let test_bus_off_is_inert () =
  Alcotest.(check bool) "off disabled" false (Obs.Bus.enabled Obs.Bus.off);
  (* emitting on the off bus must be a no-op, not a crash *)
  Obs.Bus.update_sent Obs.Bus.off ~time:0. ~src:0 ~dst:1 ~withdraw:false;
  Obs.Bus.loop_detected Obs.Bus.off ~time:0. ~members:[ 1 ] ~trigger:1

let test_bus_counters_only_allocates_no_events () =
  let c = Obs.Counters.create () in
  let obs = Obs.Bus.create ~counters:c () in
  Obs.Bus.update_sent obs ~time:0. ~src:0 ~dst:1 ~withdraw:false;
  Obs.Bus.update_recv obs ~time:0. ~node:1 ~from:0 ~withdraw:true;
  Obs.Bus.decision_run obs ~node:1;
  let s = Obs.Counters.snapshot c in
  Alcotest.(check int) "sent counted" 1 s.s_updates_sent;
  Alcotest.(check int) "withdraw recv counted" 1 s.s_withdrawals_recv;
  Alcotest.(check int) "decision counted" 1 s.s_decision_runs

let test_bus_events_and_counters_together () =
  let c = Obs.Counters.create () in
  let sink, contents = Obs.Sink.memory () in
  let obs = Obs.Bus.create ~sink ~counters:c () in
  Obs.Bus.update_sent obs ~time:1. ~src:0 ~dst:2 ~withdraw:false;
  Obs.Bus.mrai_fire obs ~time:2. ~node:0 ~peer:2;
  Alcotest.(check int) "two events" 2 (List.length (contents ()));
  let s = Obs.Counters.snapshot c in
  Alcotest.(check int) "mrai fire counted" 1 s.s_mrai_fires

(* --- counters --- *)

let test_counters_merge_and_hwm () =
  let a = Obs.Counters.create () and b = Obs.Counters.create () in
  Obs.Counters.incr_sent a ~node:0 ~withdraw:false;
  Obs.Counters.incr_sent b ~node:0 ~withdraw:true;
  Obs.Counters.observe_queue_depth a ~node:0 ~depth:3;
  Obs.Counters.observe_queue_depth b ~node:0 ~depth:7;
  let m = Obs.Counters.merge (Obs.Counters.snapshot a) (Obs.Counters.snapshot b) in
  Alcotest.(check int) "announce send summed" 1 m.s_updates_sent;
  Alcotest.(check int) "withdraw send summed" 1 m.s_withdrawals_sent;
  (match m.s_nodes with
  | [ (0, pn) ] ->
      Alcotest.(check int) "per-node sent summed" 2 pn.msgs_sent;
      Alcotest.(check int) "hwm takes max, not sum" 7 pn.queue_depth_hwm
  | _ -> Alcotest.fail "expected exactly node 0")

let test_counters_le () =
  let c = Obs.Counters.create () in
  let s0 = Obs.Counters.snapshot c in
  Obs.Counters.incr_recv c ~node:1 ~withdraw:false;
  Obs.Counters.incr_fib_change c ~node:1;
  let s1 = Obs.Counters.snapshot c in
  Alcotest.(check bool) "s0 <= s1" true (Obs.Counters.le s0 s1);
  Alcotest.(check bool) "s1 </= s0" false (Obs.Counters.le s1 s0)

(* --- histogram merge + profile --- *)

let test_histogram_merge () =
  let a = Stats.Histogram.create ~lo:0. ~hi:10. ~buckets:10 in
  let b = Stats.Histogram.create ~lo:0. ~hi:10. ~buckets:10 in
  Stats.Histogram.add a 1.5;
  Stats.Histogram.add b 1.5;
  Stats.Histogram.add b 9.5;
  Stats.Histogram.merge_into ~src:b ~dst:a;
  Alcotest.(check int) "counts summed" 3 (Stats.Histogram.count a);
  Alcotest.(check int) "bucket 1 has both" 2 (Stats.Histogram.bucket_count a 1);
  let bad = Stats.Histogram.create ~lo:0. ~hi:5. ~buckets:10 in
  Alcotest.check_raises "geometry mismatch"
    (Invalid_argument "Histogram.merge_into: geometry mismatch") (fun () ->
      Stats.Histogram.merge_into ~src:bad ~dst:a)

let test_profile_record_and_merge () =
  let p = Obs.Profile.create () and q = Obs.Profile.create () in
  Obs.Profile.record p ~tag:"link-deliver" ~time:1. ~wall_s:1e-5;
  Obs.Profile.record q ~tag:"link-deliver" ~time:2. ~wall_s:2e-5;
  Obs.Profile.record q ~tag:"mrai-fire" ~time:3. ~wall_s:1e-5;
  Obs.Profile.merge_into ~src:q ~dst:p;
  match Obs.Profile.kinds p with
  | [ ("link-deliver", ld); ("mrai-fire", mf) ] ->
      Alcotest.(check int) "link-deliver merged" 2 ld.count;
      Alcotest.(check int) "mrai-fire carried over" 1 mf.count;
      Alcotest.(check (float 1e-9)) "wall summed" 3e-5 ld.wall_total_s
  | ks ->
      Alcotest.fail
        (Printf.sprintf "unexpected kinds: %s"
           (String.concat "," (List.map fst ks)))

let test_profile_step_times_run () =
  let p = Obs.Profile.create () in
  Obs.Profile.step p ~time:1. ~tag:(Some "x") ~run:(fun () -> ());
  Obs.Profile.step p ~time:2. ~tag:None ~run:(fun () -> ());
  match Obs.Profile.kinds p with
  | [ ("untagged", u); ("x", x) ] ->
      Alcotest.(check int) "tagged counted" 1 x.count;
      Alcotest.(check int) "untagged counted" 1 u.count
  | _ -> Alcotest.fail "expected untagged + x"

(* --- trace properties on real runs --- *)

(* chaos-free scenarios: no message duplication/loss, so the
   sent/recv correspondence must hold exactly *)
let scenarios =
  [
    ("clique-4 tdown", Topo.Generators.clique 4, Bgp.Routing_sim.Tdown);
    ("clique-5 tdown", Topo.Generators.clique 5, Bgp.Routing_sim.Tdown);
    ( "b-clique-4 tlong",
      Topo.Generators.b_clique 4,
      Bgp.Routing_sim.Tlong { a = 0; b = 4 } );
    ("chain-5 tdown", Topo.Generators.chain 5, Bgp.Routing_sim.Tdown);
    ( "ring-6 tshort",
      Topo.Generators.ring 6,
      Bgp.Routing_sim.Tshort { a = 0; b = 1; down_for = 3. } );
  ]

let traced_run ~graph ~event ~seed =
  let sink, contents = Obs.Sink.memory () in
  let c = Obs.Counters.create () in
  let obs = Obs.Bus.create ~sink ~counters:c () in
  let outcome = Bgp.Routing_sim.run ~graph ~origin:0 ~event ~seed ~obs () in
  (outcome, contents (), c)

let test_recv_matches_prior_sent () =
  List.iter
    (fun (name, graph, event) ->
      List.iter
        (fun seed ->
          let _, events, _ = traced_run ~graph ~event ~seed in
          (* multiset of in-flight sends keyed (src, dst, withdraw) *)
          let inflight = Hashtbl.create 64 in
          let count k = Option.value ~default:0 (Hashtbl.find_opt inflight k) in
          List.iter
            (fun e ->
              match e with
              | Obs.Event.Update_sent { src; dst; withdraw; _ } ->
                  let k = (src, dst, withdraw) in
                  Hashtbl.replace inflight k (count k + 1)
              | Obs.Event.Update_recv { node; from; withdraw; _ } ->
                  let k = (from, node, withdraw) in
                  if count k <= 0 then
                    Alcotest.fail
                      (Printf.sprintf
                         "%s seed %d: recv %d<-%d (withdraw=%b) without a \
                          prior unconsumed send"
                         name seed node from withdraw)
                  else Hashtbl.replace inflight k (count k - 1)
              | _ -> ())
            events)
        [ 1; 2 ])
    scenarios

let test_trace_times_nondecreasing () =
  List.iter
    (fun (name, graph, event) ->
      let _, events, _ = traced_run ~graph ~event ~seed:1 in
      ignore
        (List.fold_left
           (fun last e ->
             let t = Obs.Event.time e in
             if t < last then
               Alcotest.fail
                 (Printf.sprintf "%s: time went backwards (%g after %g)" name t
                    last);
             t)
           neg_infinity events))
    scenarios

let test_fib_change_events_equal_history () =
  List.iter
    (fun (name, graph, event) ->
      let outcome, events, c = traced_run ~graph ~event ~seed:1 in
      let fib = Netcore.Trace.fib outcome.trace in
      let emitted =
        List.length
          (List.filter
             (function Obs.Event.Fib_change _ -> true | _ -> false)
             events)
      in
      Alcotest.(check int)
        (name ^ ": fib events = history changes")
        (Netcore.Fib_history.change_count fib)
        emitted;
      let s = Obs.Counters.snapshot c in
      Alcotest.(check int)
        (name ^ ": fib counter agrees")
        emitted s.s_fib_changes)
    scenarios

let test_counters_monotone_during_run () =
  let graph = Topo.Generators.clique 5 in
  let c = Obs.Counters.create () in
  let snaps = ref [] in
  let k = ref 0 in
  (* snapshot the registry from inside the event stream itself: every
     8th event, i.e. at strictly increasing virtual times *)
  let sink =
    Obs.Sink.fn (fun _ ->
        incr k;
        if !k mod 8 = 0 then snaps := Obs.Counters.snapshot c :: !snaps)
  in
  let obs = Obs.Bus.create ~sink ~counters:c () in
  let (_ : Bgp.Routing_sim.outcome) =
    Bgp.Routing_sim.run ~graph ~origin:0 ~event:Bgp.Routing_sim.Tdown ~seed:1
      ~obs ()
  in
  let snaps = List.rev (Obs.Counters.snapshot c :: !snaps) in
  Alcotest.(check bool) "collected several snapshots" true
    (List.length snaps > 3);
  let rec pairwise = function
    | a :: (b :: _ as rest) ->
        Alcotest.(check bool) "snapshots monotone" true (Obs.Counters.le a b);
        pairwise rest
    | _ -> ()
  in
  pairwise snaps

let test_counters_match_outcome () =
  let graph = Topo.Generators.clique 5 in
  let outcome, _, c =
    traced_run ~graph ~event:Bgp.Routing_sim.Tdown ~seed:1
  in
  let s = Obs.Counters.snapshot c in
  Alcotest.(check int) "engine events credited" outcome.events_executed
    s.s_events_executed;
  (* counters cover warm-up too, so they dominate the post-failure
     outcome counts *)
  Alcotest.(check bool) "sent >= updates after fail" true
    (s.s_updates_sent >= outcome.updates_after_fail);
  Alcotest.(check bool) "withdrawals >= after fail" true
    (s.s_withdrawals_sent >= outcome.withdrawals_after_fail)

let test_digest_deterministic_across_runs () =
  let graph = Topo.Generators.clique 5 in
  let digest () =
    let _, events, _ = traced_run ~graph ~event:Bgp.Routing_sim.Tdown ~seed:1 in
    Obs.Trace_digest.of_events events
  in
  Alcotest.(check string) "same seed, same digest" (digest ()) (digest ());
  let other =
    let _, events, _ = traced_run ~graph ~event:Bgp.Routing_sim.Tdown ~seed:2 in
    Obs.Trace_digest.of_events events
  in
  Alcotest.(check bool) "different seed, different digest" true
    (other <> digest ())

(* qcheck: the sent/recv and fib properties over random small cliques *)
let prop_random_scenarios =
  QCheck.Test.make ~count:15 ~name:"random clique traces well-formed"
    QCheck.(pair (int_range 3 7) (int_range 1 1000))
    (fun (n, seed) ->
      let graph = Topo.Generators.clique n in
      let outcome, events, _ =
        traced_run ~graph ~event:Bgp.Routing_sim.Tdown ~seed
      in
      let inflight = Hashtbl.create 64 in
      let count k = Option.value ~default:0 (Hashtbl.find_opt inflight k) in
      let ok =
        List.for_all
          (fun e ->
            match e with
            | Obs.Event.Update_sent { src; dst; withdraw; _ } ->
                let k = (src, dst, withdraw) in
                Hashtbl.replace inflight k (count k + 1);
                true
            | Obs.Event.Update_recv { node; from; withdraw; _ } ->
                let k = (from, node, withdraw) in
                if count k <= 0 then false
                else (
                  Hashtbl.replace inflight k (count k - 1);
                  true)
            | _ -> true)
          events
      in
      let fib_events =
        List.length
          (List.filter
             (function Obs.Event.Fib_change _ -> true | _ -> false)
             events)
      in
      ok
      && fib_events
         = Netcore.Fib_history.change_count (Netcore.Trace.fib outcome.trace))

let () =
  let tc name f = Alcotest.test_case name `Quick f in
  Alcotest.run "obs"
    [
      ( "events",
        [
          tc "json shapes" test_event_json_shapes;
          tc "accessors" test_event_accessors;
          tc "float stability" test_json_float_stability;
        ] );
      ( "sinks",
        [
          tc "memory order" test_memory_sink_order;
          tc "ring keeps last" test_ring_sink_keeps_last;
          tc "ring counts drops" test_ring_sink_counts_drops;
          tc "tee duplicates" test_tee_sink;
          tc "jsonl file digest" test_jsonl_file_digest_matches_events;
        ] );
      ( "binary",
        [
          tc "round-trip all constructors" test_binary_roundtrip_all_constructors;
          tc "rejects corruption" test_binary_rejects_corruption;
          tc "file sink round-trip" test_binary_file_sink_roundtrip;
          QCheck_alcotest.to_alcotest prop_binary_roundtrip;
          QCheck_alcotest.to_alcotest prop_binary_stream_roundtrip;
        ] );
      ( "bus",
        [
          tc "off is inert" test_bus_off_is_inert;
          tc "counters-only" test_bus_counters_only_allocates_no_events;
          tc "events + counters" test_bus_events_and_counters_together;
        ] );
      ( "counters",
        [
          tc "merge and hwm" test_counters_merge_and_hwm;
          tc "le" test_counters_le;
        ] );
      ( "profile",
        [
          tc "histogram merge" test_histogram_merge;
          tc "record and merge" test_profile_record_and_merge;
          tc "step times run" test_profile_step_times_run;
        ] );
      ( "trace-properties",
        [
          tc "recv matches prior sent" test_recv_matches_prior_sent;
          tc "times nondecreasing" test_trace_times_nondecreasing;
          tc "fib events = history changes" test_fib_change_events_equal_history;
          tc "counters monotone mid-run" test_counters_monotone_during_run;
          tc "counters match outcome" test_counters_match_outcome;
          tc "digest deterministic" test_digest_deterministic_across_runs;
          QCheck_alcotest.to_alcotest prop_random_scenarios;
        ] );
    ]
