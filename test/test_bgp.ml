(* Tests for BGP data types and mechanisms below the speaker: AS paths,
   prefixes, messages, policies, configuration and the MRAI rate
   limiter. *)

let path = Bgp.As_path.of_list

(* --- As_path --- *)

let test_path_basics () =
  let p = path [ 5; 6; 4; 0 ] in
  Alcotest.(check int) "length" 4 (Bgp.As_path.length p);
  Alcotest.(check bool) "empty" false (Bgp.As_path.is_empty p);
  Alcotest.(check bool) "head" true (Bgp.As_path.head p = Some 5);
  Alcotest.(check bool) "contains 4" true (Bgp.As_path.contains p 4);
  Alcotest.(check bool) "not contains 7" false (Bgp.As_path.contains p 7);
  Alcotest.(check string) "render" "(5 6 4 0)" (Bgp.As_path.to_string p)

let test_path_empty () =
  Alcotest.(check int) "length" 0 (Bgp.As_path.length Bgp.As_path.empty);
  Alcotest.(check bool) "head" true (Bgp.As_path.head Bgp.As_path.empty = None);
  Alcotest.(check string) "render" "()"
    (Bgp.As_path.to_string Bgp.As_path.empty)

let test_path_rejects_repeats () =
  Alcotest.(check bool) "of_list" true
    (try
       ignore (path [ 1; 2; 1 ]);
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "prepend" true
    (try
       ignore (Bgp.As_path.prepend 2 (path [ 1; 2 ]));
       false
     with Invalid_argument _ -> true)

let test_path_prepend () =
  let p = Bgp.As_path.prepend 5 (path [ 4; 0 ]) in
  Alcotest.(check (list int)) "prepend" [ 5; 4; 0 ] (Bgp.As_path.to_list p)

let test_path_suffix_from () =
  let p = path [ 5; 6; 4; 0 ] in
  Alcotest.(check bool) "suffix from 6" true
    (Bgp.As_path.suffix_from p 6 = Some (path [ 6; 4; 0 ]));
  Alcotest.(check bool) "suffix from head" true
    (Bgp.As_path.suffix_from p 5 = Some p);
  Alcotest.(check bool) "absent" true (Bgp.As_path.suffix_from p 9 = None)

let test_path_compare_prefers_shorter () =
  Alcotest.(check bool) "shorter wins" true
    (Bgp.As_path.compare (path [ 9; 0 ]) (path [ 1; 2; 0 ]) < 0)

let test_path_compare_ties_lexicographic () =
  (* equal length: the smaller advertising neighbor (head) wins — the
     paper's "smaller node ID" tie-break *)
  Alcotest.(check bool) "lower head wins" true
    (Bgp.As_path.compare (path [ 2; 0 ]) (path [ 3; 0 ]) < 0);
  Alcotest.(check int) "equal" 0 (Bgp.As_path.compare (path [ 2; 0 ]) (path [ 2; 0 ]))

let test_path_compare_lex_ignores_length () =
  (* lexicographic order can prefer a longer path; the composite
     [compare] never does *)
  let short = path [ 3; 0 ] and long = path [ 2; 9; 0 ] in
  Alcotest.(check bool) "lex prefers lower head" true
    (Bgp.As_path.compare_lex long short < 0);
  Alcotest.(check bool) "compare prefers shorter" true
    (Bgp.As_path.compare short long < 0)

let test_path_rejects_duplicate_heavy_lists () =
  (* the duplicate scan runs on the materialized array (no per-element
     Hashtbl); make sure it still catches repeats at every position *)
  let raises l =
    try
      ignore (path l);
      false
    with Invalid_argument m -> String.length m > 0
  in
  Alcotest.(check bool) "adjacent head" true (raises [ 7; 7; 1; 2 ]);
  Alcotest.(check bool) "far apart" true (raises [ 7; 1; 2; 3; 4; 5; 7 ]);
  Alcotest.(check bool) "tail pair" true (raises [ 1; 2; 3; 9; 9 ]);
  Alcotest.(check bool) "all same" true (raises [ 4; 4; 4; 4; 4; 4 ]);
  Alcotest.(check bool) "duplicate-free long path ok" false
    (raises [ 9; 8; 7; 6; 5; 4; 3; 2; 1; 0 ])

let test_arena_interning_is_physical () =
  let table = Bgp.As_path.Table.create () in
  let p = Bgp.As_path.of_list ~table [ 5; 4; 0 ] in
  let q = Bgp.As_path.of_list ~table [ 5; 4; 0 ] in
  Alcotest.(check bool) "same handle" true (p == q);
  (* the extend memo must return the interned child, not a fresh one *)
  let base = Bgp.As_path.of_list ~table [ 4; 0 ] in
  let a = Bgp.As_path.extend ~table 5 base in
  let b = Bgp.As_path.extend ~table 5 base in
  Alcotest.(check bool) "memoized extend, same handle" true (a == b && a == p)

let test_arena_cross_arena_equal () =
  let t1 = Bgp.As_path.Table.create () in
  let t2 = Bgp.As_path.Table.create () in
  let p = Bgp.As_path.of_list ~table:t1 [ 5; 4; 0 ] in
  let q = Bgp.As_path.of_list ~table:t2 [ 5; 4; 0 ] in
  let r = Bgp.As_path.of_list ~table:t2 [ 5; 4; 1 ] in
  Alcotest.(check bool) "distinct handles" true (not (p == q));
  Alcotest.(check bool) "structurally equal" true (Bgp.As_path.equal p q);
  Alcotest.(check bool) "structurally distinct" false (Bgp.As_path.equal p r);
  Alcotest.(check int) "hash is arena-independent" (Bgp.As_path.hash p)
    (Bgp.As_path.hash q)

let test_arena_id_stability () =
  Alcotest.(check int) "empty has id 0" 0 (Bgp.As_path.id Bgp.As_path.empty);
  let table = Bgp.As_path.Table.create () in
  Alcotest.(check int) "empty in any arena" 0
    (Bgp.As_path.id (Bgp.As_path.of_list ~table []));
  let p1 = Bgp.As_path.of_list ~table [ 1; 0 ] in
  let p2 = Bgp.As_path.of_list ~table [ 2; 0 ] in
  Alcotest.(check int) "first interned path" 1 (Bgp.As_path.id p1);
  Alcotest.(check int) "second interned path" 2 (Bgp.As_path.id p2);
  Alcotest.(check int) "re-interning keeps the id" 1
    (Bgp.As_path.id (Bgp.As_path.of_list ~table [ 1; 0 ]))

let test_arena_size_and_words () =
  let table = Bgp.As_path.Table.create () in
  Alcotest.(check int) "fresh arena empty" 0 (Bgp.As_path.Table.size table);
  Alcotest.(check int) "fresh arena holds no words" 0
    (Bgp.As_path.Table.words table);
  ignore (Bgp.As_path.of_list ~table [ 1; 0 ]);
  ignore (Bgp.As_path.of_list ~table [ 2; 0 ]);
  ignore (Bgp.As_path.of_list ~table [ 1; 0 ]);
  ignore (Bgp.As_path.of_list ~table []);
  Alcotest.(check int) "two distinct non-empty paths" 2
    (Bgp.As_path.Table.size table);
  Alcotest.(check bool) "words gauge grew" true
    (Bgp.As_path.Table.words table > 0)

let test_msg_pp_renders () =
  let prefix = Bgp.Prefix.make ~origin:0 () in
  Alcotest.(check string) "announce" "announce p0 (5 4 0)"
    (Format.asprintf "%a" Bgp.Msg.pp
       (Bgp.Msg.Announce { prefix; path = path [ 5; 4; 0 ] }));
  Alcotest.(check string) "withdraw" "withdraw p0"
    (Format.asprintf "%a" Bgp.Msg.pp (Bgp.Msg.Withdraw { prefix }));
  Alcotest.(check string) "indexed prefix" "p3.1"
    (Format.asprintf "%a" Bgp.Prefix.pp (Bgp.Prefix.make ~origin:3 ~index:1 ()))

(* --- Prefix --- *)

let test_prefix () =
  let p = Bgp.Prefix.make ~origin:3 () in
  let q = Bgp.Prefix.make ~origin:3 ~index:1 () in
  Alcotest.(check int) "origin" 3 (Bgp.Prefix.origin p);
  Alcotest.(check bool) "distinct" false (Bgp.Prefix.equal p q);
  Alcotest.(check bool) "self equal" true (Bgp.Prefix.equal p p);
  Alcotest.(check bool) "rejects negative" true
    (try
       ignore (Bgp.Prefix.make ~origin:(-1) ());
       false
     with Invalid_argument _ -> true)

(* --- Msg --- *)

let test_msg_kinds () =
  let prefix = Bgp.Prefix.make ~origin:0 () in
  Alcotest.(check bool) "announce" true
    (Bgp.Msg.kind (Bgp.Msg.Announce { prefix; path = path [ 1; 0 ] })
    = Netcore.Trace.Announce);
  Alcotest.(check bool) "withdraw" true
    (Bgp.Msg.kind (Bgp.Msg.Withdraw { prefix }) = Netcore.Trace.Withdraw);
  Alcotest.(check bool) "prefix" true
    (Bgp.Prefix.equal (Bgp.Msg.prefix (Bgp.Msg.Withdraw { prefix })) prefix)

(* --- Policy --- *)

let cand peer l = { Bgp.Policy.peer; path = path l }

let test_shortest_path_policy () =
  let p = Bgp.Policy.shortest_path in
  Alcotest.(check bool) "shorter preferred" true
    (p.prefer ~self:9 (cand 1 [ 1; 0 ]) (cand 2 [ 2; 3; 0 ]) < 0);
  Alcotest.(check bool) "tie by id" true
    (p.prefer ~self:9 (cand 1 [ 1; 0 ]) (cand 2 [ 2; 0 ]) < 0);
  Alcotest.(check bool) "imports all" true (p.import_ok ~self:9 (cand 1 [ 1; 0 ]));
  Alcotest.(check bool) "exports all" true
    (p.export_ok ~self:9 ~to_peer:1 ~learned_from:(Some 2))

let test_gao_rexford_preference () =
  (* node 0's relationships: 1 is a customer, 2 a peer, 3 a provider *)
  let rel self other =
    match (self, other) with
    | 0, 1 -> Bgp.Policy.Customer
    | 0, 2 -> Bgp.Policy.Peer_rel
    | 0, 3 -> Bgp.Policy.Provider
    | _ -> Bgp.Policy.Peer_rel
  in
  let p = Bgp.Policy.gao_rexford ~rel in
  (* a longer customer route beats a shorter provider route *)
  Alcotest.(check bool) "customer over provider" true
    (p.prefer ~self:0 (cand 1 [ 1; 5; 9 ]) (cand 3 [ 3; 9 ]) < 0);
  Alcotest.(check bool) "customer over peer" true
    (p.prefer ~self:0 (cand 1 [ 1; 5; 9 ]) (cand 2 [ 2; 9 ]) < 0);
  (* same class: path length decides *)
  Alcotest.(check bool) "same class by length" true
    (p.prefer ~self:0 (cand 3 [ 3; 9 ]) (cand 3 [ 3; 5; 9 ]) < 0)

let test_gao_rexford_valley_free_export () =
  let rel self other =
    match (self, other) with
    | 0, 1 -> Bgp.Policy.Customer
    | 0, 2 -> Bgp.Policy.Peer_rel
    | 0, 3 -> Bgp.Policy.Provider
    | _ -> Bgp.Policy.Peer_rel
  in
  let p = Bgp.Policy.gao_rexford ~rel in
  (* own routes go everywhere *)
  Alcotest.(check bool) "own to provider" true
    (p.export_ok ~self:0 ~to_peer:3 ~learned_from:None);
  (* customer routes go everywhere *)
  Alcotest.(check bool) "customer route to provider" true
    (p.export_ok ~self:0 ~to_peer:3 ~learned_from:(Some 1));
  (* provider routes only to customers *)
  Alcotest.(check bool) "provider route to customer" true
    (p.export_ok ~self:0 ~to_peer:1 ~learned_from:(Some 3));
  Alcotest.(check bool) "provider route to peer blocked" false
    (p.export_ok ~self:0 ~to_peer:2 ~learned_from:(Some 3));
  Alcotest.(check bool) "peer route to provider blocked" false
    (p.export_ok ~self:0 ~to_peer:3 ~learned_from:(Some 2))

let test_relationships_by_degree () =
  let g = Topo.Generators.star 4 in
  (* hub 0 has degree 3; leaves degree 1 *)
  Alcotest.(check bool) "hub is provider" true
    (Bgp.Policy.relationships_by_degree g 1 0 = Bgp.Policy.Provider);
  Alcotest.(check bool) "leaf is customer" true
    (Bgp.Policy.relationships_by_degree g 0 1 = Bgp.Policy.Customer);
  Alcotest.(check bool) "equal degree peers" true
    (Bgp.Policy.relationships_by_degree g 1 2 = Bgp.Policy.Peer_rel)

(* --- Enhancement / Config --- *)

let test_enhancement_names_roundtrip () =
  List.iter
    (fun e ->
      match Bgp.Enhancement.of_string (Bgp.Enhancement.name e) with
      | Some e' when e' = e -> ()
      | _ -> Alcotest.failf "roundtrip failed for %s" (Bgp.Enhancement.name e))
    Bgp.Enhancement.all;
  Alcotest.(check bool) "unknown" true (Bgp.Enhancement.of_string "nope" = None);
  Alcotest.(check bool) "case-insensitive" true
    (Bgp.Enhancement.of_string "SSLD" = Some Bgp.Enhancement.Ssld)

let test_config_of_enhancement () =
  let open Bgp in
  let std = Config.of_enhancement Enhancement.Standard in
  Alcotest.(check bool) "standard clean" true
    ((not std.wrate) && (not std.ssld) && (not std.assertion)
    && not std.ghost_flushing);
  Alcotest.(check bool) "wrate" true (Config.of_enhancement Enhancement.Wrate).wrate;
  Alcotest.(check bool) "ssld" true (Config.of_enhancement Enhancement.Ssld).ssld;
  Alcotest.(check bool) "assertion" true
    (Config.of_enhancement Enhancement.Assertion).assertion;
  Alcotest.(check bool) "ghost flushing" true
    (Config.of_enhancement Enhancement.Ghost_flushing).ghost_flushing;
  Alcotest.(check (float 0.)) "mrai override" 5.
    (Config.of_enhancement ~mrai:5. Enhancement.Standard).mrai

let test_config_validation () =
  let raises c =
    try
      Bgp.Config.validate c;
      false
    with Invalid_argument _ -> true
  in
  Alcotest.(check bool) "negative mrai" true
    (raises { Bgp.Config.default with mrai = -1. });
  Alcotest.(check bool) "jitter 0" true
    (raises { Bgp.Config.default with mrai_jitter_min = 0. });
  Alcotest.(check bool) "jitter > 1" true
    (raises { Bgp.Config.default with mrai_jitter_min = 1.5 })

(* --- Mrai --- *)

(* A harness recording every transmitted message with its time; the
   transmit callback can also simulate duplicate suppression. *)
let mrai_harness ?(suppress = fun _ -> false) ~interval () =
  let engine = Dessim.Engine.create () in
  let sent = ref [] in
  let transmit msg =
    if suppress msg then false
    else begin
      sent := (msg, Dessim.Engine.now engine) :: !sent;
      true
    end
  in
  let mrai =
    Bgp.Mrai.create ~engine ~draw_interval:(fun () -> interval) ~transmit ()
  in
  (engine, mrai, fun () -> List.rev !sent)

let test_mrai_first_send_immediate () =
  let engine, mrai, sent = mrai_harness ~interval:30. () in
  Bgp.Mrai.offer mrai "a";
  Alcotest.(check bool) "sent now" true (sent () = [ ("a", 0.) ]);
  Alcotest.(check bool) "timer running" true (Bgp.Mrai.timer_running mrai);
  Dessim.Engine.run engine;
  Alcotest.(check bool) "timer drained" false (Bgp.Mrai.timer_running mrai)

let test_mrai_spaces_consecutive_updates () =
  let engine, mrai, sent = mrai_harness ~interval:30. () in
  Bgp.Mrai.offer mrai "a";
  ignore
    (Dessim.Engine.schedule engine ~at:1. (fun () -> Bgp.Mrai.offer mrai "b"));
  Dessim.Engine.run engine;
  Alcotest.(check bool) "b delayed to expiry" true
    (sent () = [ ("a", 0.); ("b", 30.) ])

let test_mrai_pending_replaced () =
  let engine, mrai, sent = mrai_harness ~interval:30. () in
  Bgp.Mrai.offer mrai "a";
  ignore (Dessim.Engine.schedule engine ~at:1. (fun () -> Bgp.Mrai.offer mrai "b"));
  ignore (Dessim.Engine.schedule engine ~at:2. (fun () -> Bgp.Mrai.offer mrai "c"));
  Dessim.Engine.run engine;
  (* "b" was superseded before the timer fired *)
  Alcotest.(check bool) "latest wins" true (sent () = [ ("a", 0.); ("c", 30.) ])

let test_mrai_timer_restarts_after_pending_send () =
  let engine, mrai, sent = mrai_harness ~interval:30. () in
  Bgp.Mrai.offer mrai "a";
  ignore (Dessim.Engine.schedule engine ~at:1. (fun () -> Bgp.Mrai.offer mrai "b"));
  ignore (Dessim.Engine.schedule engine ~at:40. (fun () -> Bgp.Mrai.offer mrai "c"));
  Dessim.Engine.run engine;
  (* after "b" goes out at 30, the timer restarts; "c" (offered at 40)
     must wait until 60 *)
  Alcotest.(check bool) "second interval enforced" true
    (sent () = [ ("a", 0.); ("b", 30.); ("c", 60.) ])

let test_mrai_suppressed_send_stops_timer () =
  let engine, mrai, sent =
    mrai_harness ~suppress:(fun m -> m = "dup") ~interval:30. ()
  in
  Bgp.Mrai.offer mrai "dup";
  Alcotest.(check bool) "nothing sent" true (sent () = []);
  Alcotest.(check bool) "timer not started" false (Bgp.Mrai.timer_running mrai);
  ignore (Dessim.Engine.schedule engine ~at:1. (fun () -> Bgp.Mrai.offer mrai "x"));
  Dessim.Engine.run engine;
  Alcotest.(check bool) "real message immediate" true (sent () = [ ("x", 1.) ])

let test_mrai_send_now_bypasses () =
  let engine, mrai, sent = mrai_harness ~interval:30. () in
  Bgp.Mrai.offer mrai "a";
  ignore (Dessim.Engine.schedule engine ~at:1. (fun () -> Bgp.Mrai.offer mrai "b"));
  ignore
    (Dessim.Engine.schedule engine ~at:2. (fun () ->
         Bgp.Mrai.send_now mrai ~keep_pending:false "w"));
  Dessim.Engine.run engine;
  (* the withdrawal goes out immediately and discards pending "b" *)
  Alcotest.(check bool) "withdrawal immediate, pending dropped" true
    (sent () = [ ("a", 0.); ("w", 2.) ])

let test_mrai_send_now_keep_pending () =
  let engine, mrai, sent = mrai_harness ~interval:30. () in
  Bgp.Mrai.offer mrai "a";
  ignore (Dessim.Engine.schedule engine ~at:1. (fun () -> Bgp.Mrai.offer mrai "b"));
  ignore
    (Dessim.Engine.schedule engine ~at:2. (fun () ->
         Bgp.Mrai.send_now mrai ~keep_pending:true "flush"));
  Dessim.Engine.run engine;
  (* Ghost Flushing: the flush precedes the still-pending announcement *)
  Alcotest.(check bool) "flush then announcement" true
    (sent () = [ ("a", 0.); ("flush", 2.); ("b", 30.) ])

let test_mrai_reset () =
  let engine, mrai, sent = mrai_harness ~interval:30. () in
  Bgp.Mrai.offer mrai "a";
  ignore (Dessim.Engine.schedule engine ~at:1. (fun () -> Bgp.Mrai.offer mrai "b"));
  ignore (Dessim.Engine.schedule engine ~at:2. (fun () -> Bgp.Mrai.reset mrai));
  Dessim.Engine.run engine;
  Alcotest.(check bool) "pending dropped on reset" true (sent () = [ ("a", 0.) ]);
  Alcotest.(check bool) "idle" false (Bgp.Mrai.timer_running mrai)

let test_mrai_zero_interval () =
  (* M = 0: the timer fires at the same instant, so updates flow with
     no rate limiting *)
  let engine, mrai, sent = mrai_harness ~interval:0. () in
  Bgp.Mrai.offer mrai "a";
  ignore (Dessim.Engine.schedule engine ~at:1. (fun () -> Bgp.Mrai.offer mrai "b"));
  Dessim.Engine.run engine;
  Alcotest.(check bool) "no spacing" true (sent () = [ ("a", 0.); ("b", 1.) ])

(* --- Fifo (non-collapsing) rate-limiter mode --- *)

let fifo_harness ~interval () =
  let engine = Dessim.Engine.create () in
  let sent = ref [] in
  let transmit msg =
    sent := (msg, Dessim.Engine.now engine) :: !sent;
    true
  in
  let mrai =
    Bgp.Mrai.create ~mode:Bgp.Mrai.Fifo ~engine
      ~draw_interval:(fun () -> interval)
      ~transmit ()
  in
  (engine, mrai, fun () -> List.rev !sent)

let test_fifo_preserves_intermediate_states () =
  let engine, mrai, sent = fifo_harness ~interval:10. () in
  Bgp.Mrai.offer mrai "a";
  ignore (Dessim.Engine.schedule engine ~at:1. (fun () -> Bgp.Mrai.offer mrai "b"));
  ignore (Dessim.Engine.schedule engine ~at:2. (fun () -> Bgp.Mrai.offer mrai "c"));
  Alcotest.(check int) "queue holds both" 0 (Bgp.Mrai.pending_count mrai);
  Dessim.Engine.run engine;
  (* unlike Collapse (which would drop "b"), every state is sent, one
     per interval *)
  Alcotest.(check bool) "all transmitted in order" true
    (sent () = [ ("a", 0.); ("b", 10.); ("c", 20.) ])

let test_fifo_pending_count () =
  let engine, mrai, _ = fifo_harness ~interval:10. () in
  Bgp.Mrai.offer mrai "a";
  ignore (Dessim.Engine.schedule engine ~at:1. (fun () -> Bgp.Mrai.offer mrai "b"));
  ignore (Dessim.Engine.schedule engine ~at:2. (fun () -> Bgp.Mrai.offer mrai "c"));
  Dessim.Engine.run ~until:5. engine;
  Alcotest.(check int) "two queued" 2 (Bgp.Mrai.pending_count mrai);
  Alcotest.(check bool) "head is b" true (Bgp.Mrai.pending mrai = Some "b")

let test_fifo_send_now_clears_queue () =
  let engine, mrai, sent = fifo_harness ~interval:10. () in
  Bgp.Mrai.offer mrai "a";
  ignore (Dessim.Engine.schedule engine ~at:1. (fun () -> Bgp.Mrai.offer mrai "b"));
  ignore
    (Dessim.Engine.schedule engine ~at:2. (fun () ->
         Bgp.Mrai.send_now mrai ~keep_pending:false "w"));
  Dessim.Engine.run engine;
  Alcotest.(check bool) "queue superseded" true
    (sent () = [ ("a", 0.); ("w", 2.) ])

let prop_mrai_spacing =
  (* Whatever the offer schedule, actual transmissions to a peer are
     spaced by at least the MRAI interval. *)
  QCheck.Test.make ~name:"MRAI enforces minimum spacing" ~count:100
    QCheck.(list_of_size Gen.(int_range 1 30) (float_range 0. 100.))
    (fun offer_times ->
      let interval = 10. in
      let engine, mrai, sent = mrai_harness ~interval () in
      List.iteri
        (fun i t ->
          ignore
            (Dessim.Engine.schedule engine ~at:t (fun () ->
                 Bgp.Mrai.offer mrai (string_of_int i))))
        (List.sort compare offer_times);
      Dessim.Engine.run engine;
      let times = List.map snd (sent ()) in
      let rec spaced = function
        | a :: (b :: _ as rest) ->
            b -. a >= interval -. 1e-9 && spaced rest
        | _ -> true
      in
      spaced times)

let () =
  let tc name f = Alcotest.test_case name `Quick f in
  Alcotest.run "bgp"
    [
      ( "as-path",
        [
          tc "basics" test_path_basics;
          tc "empty path" test_path_empty;
          tc "rejects repeated AS" test_path_rejects_repeats;
          tc "prepend" test_path_prepend;
          tc "suffix_from" test_path_suffix_from;
          tc "compare prefers shorter" test_path_compare_prefers_shorter;
          tc "compare ties lexicographically" test_path_compare_ties_lexicographic;
          tc "compare_lex ignores length" test_path_compare_lex_ignores_length;
          tc "rejects duplicate-heavy lists"
            test_path_rejects_duplicate_heavy_lists;
          tc "interning is physical" test_arena_interning_is_physical;
          tc "cross-arena equality" test_arena_cross_arena_equal;
          tc "id stability" test_arena_id_stability;
          tc "table size and words" test_arena_size_and_words;
          tc "message rendering" test_msg_pp_renders;
        ] );
      ("prefix", [ tc "basics" test_prefix ]);
      ("msg", [ tc "kinds" test_msg_kinds ]);
      ( "policy",
        [
          tc "shortest path (paper policy)" test_shortest_path_policy;
          tc "gao-rexford preference" test_gao_rexford_preference;
          tc "gao-rexford valley-free export" test_gao_rexford_valley_free_export;
          tc "degree-based relationships" test_relationships_by_degree;
        ] );
      ( "config",
        [
          tc "enhancement names roundtrip" test_enhancement_names_roundtrip;
          tc "of_enhancement" test_config_of_enhancement;
          tc "validation" test_config_validation;
        ] );
      ( "mrai",
        [
          tc "first send immediate" test_mrai_first_send_immediate;
          tc "spaces consecutive updates" test_mrai_spaces_consecutive_updates;
          tc "pending replaced by newer" test_mrai_pending_replaced;
          tc "timer restarts after pending send"
            test_mrai_timer_restarts_after_pending_send;
          tc "suppressed send stops timer" test_mrai_suppressed_send_stops_timer;
          tc "send_now bypasses timer" test_mrai_send_now_bypasses;
          tc "send_now can keep pending (ghost flushing)"
            test_mrai_send_now_keep_pending;
          tc "reset" test_mrai_reset;
          tc "zero interval disables limiting" test_mrai_zero_interval;
          tc "fifo mode preserves intermediate states"
            test_fifo_preserves_intermediate_states;
          tc "fifo pending count" test_fifo_pending_count;
          tc "fifo send_now clears the queue" test_fifo_send_now_clears_queue;
          QCheck_alcotest.to_alcotest prop_mrai_spacing;
        ] );
    ]
