(* End-to-end tests of the routing simulation: warm-up convergence to
   shortest paths, T_down and T_long dynamics, determinism, and input
   validation. *)

let run ?params ?config ~graph ~origin ~event ~seed () =
  Bgp.Routing_sim.run ?params ?config ~graph ~origin ~event ~seed ()

let fib_of (o : Bgp.Routing_sim.outcome) = Netcore.Trace.fib o.trace

(* Follow next hops at [time]; returns the hop count to the origin, or
   None on a missing route / loop. *)
let walk_length fib ~origin ~n ~time ~src =
  let rec step node hops =
    if node = origin then Some hops
    else if hops > n then None
    else
      match Netcore.Fib_history.lookup fib ~node ~time with
      | None -> None
      | Some next -> step next (hops + 1)
  in
  step src 0

let check_warmup_shortest_paths graph origin =
  let o = run ~graph ~origin ~event:Bgp.Routing_sim.Tdown ~seed:1 () in
  let fib = fib_of o in
  let dist = Topo.Graph.bfs_distances graph ~from:origin in
  let time = o.t_fail -. 1. in
  List.iter
    (fun v ->
      if v <> origin then
        match walk_length fib ~origin ~n:(Topo.Graph.n_nodes graph) ~time ~src:v with
        | Some hops ->
            Alcotest.(check int)
              (Printf.sprintf "node %d converged to shortest path" v)
              dist.(v) hops
        | None -> Alcotest.failf "node %d has no route after warm-up" v)
    (Topo.Graph.nodes graph)

let test_warmup_clique () = check_warmup_shortest_paths (Topo.Generators.clique 6) 0

let test_warmup_chain () = check_warmup_shortest_paths (Topo.Generators.chain 7) 0

let test_warmup_ring () = check_warmup_shortest_paths (Topo.Generators.ring 8) 3

let test_warmup_b_clique () =
  check_warmup_shortest_paths (Topo.Generators.b_clique 4) 0

let test_warmup_grid () =
  check_warmup_shortest_paths (Topo.Generators.grid ~rows:3 ~cols:3) 4

let test_warmup_internet () =
  let graph = Topo.Internet.generate ~seed:3 29 in
  check_warmup_shortest_paths graph (List.hd (Topo.Internet.stub_nodes graph))

let test_tdown_ends_unreachable () =
  let graph = Topo.Generators.clique 6 in
  let o = run ~graph ~origin:0 ~event:Bgp.Routing_sim.Tdown ~seed:1 () in
  Alcotest.(check bool) "converged" true o.converged;
  let fib = fib_of o in
  let late = o.convergence_end +. 100. in
  List.iter
    (fun v ->
      if v <> 0 then
        Alcotest.(check bool)
          (Printf.sprintf "node %d has no route" v)
          true
          (Netcore.Fib_history.lookup fib ~node:v ~time:late = None))
    (Topo.Graph.nodes graph)

let test_tdown_sends_messages () =
  let graph = Topo.Generators.clique 5 in
  let o = run ~graph ~origin:0 ~event:Bgp.Routing_sim.Tdown ~seed:1 () in
  Alcotest.(check bool) "convergence takes time" true
    (Bgp.Routing_sim.convergence_time o > 0.);
  Alcotest.(check bool) "withdrawals happened" true (o.withdrawals_after_fail > 0);
  Alcotest.(check bool) "path exploration happened" true (o.updates_after_fail > 0)

let test_tlong_reroutes () =
  let n = 4 in
  let graph = Topo.Generators.b_clique n in
  let o =
    run ~graph ~origin:0 ~event:(Bgp.Routing_sim.Tlong { a = 0; b = n }) ~seed:1 ()
  in
  Alcotest.(check bool) "converged" true o.converged;
  let fib = fib_of o in
  let late = o.convergence_end +. 100. in
  (* every node still reaches the destination, now over the chain *)
  List.iter
    (fun v ->
      if v <> 0 then
        match walk_length fib ~origin:0 ~n:(2 * n) ~time:late ~src:v with
        | Some _ -> ()
        | None -> Alcotest.failf "node %d lost the destination" v)
    (Topo.Graph.nodes graph);
  (* the core node n now pays the full detour through the chain *)
  Alcotest.(check bool) "core detour is long" true
    (walk_length fib ~origin:0 ~n:(2 * n) ~time:late ~src:n = Some (n + 1))

let test_tlong_no_withdrawal_before_failure () =
  let graph = Topo.Generators.b_clique 3 in
  let o =
    run ~graph ~origin:0 ~event:(Bgp.Routing_sim.Tlong { a = 0; b = 3 }) ~seed:1 ()
  in
  (* all pre-failure messages belong to the warm-up announcement wave:
     no withdrawals can occur before anything fails *)
  let pre_fail_withdrawals =
    List.filter
      (fun (s : Netcore.Trace.send) ->
        s.kind = Netcore.Trace.Withdraw && s.time < o.t_fail)
      (Netcore.Trace.sends o.trace)
  in
  Alcotest.(check int) "no early withdrawals" 0 (List.length pre_fail_withdrawals)

let test_link_event_logged () =
  let graph = Topo.Generators.b_clique 3 in
  let o =
    run ~graph ~origin:0 ~event:(Bgp.Routing_sim.Tlong { a = 0; b = 3 }) ~seed:1 ()
  in
  match Netcore.Trace.link_events o.trace with
  | [ e ] ->
      Alcotest.(check bool) "down event" false e.Netcore.Trace.up;
      Alcotest.(check (float 0.)) "at t_fail" o.t_fail e.Netcore.Trace.time
  | evs -> Alcotest.failf "expected one link event, got %d" (List.length evs)

let test_deterministic_per_seed () =
  let graph = Topo.Generators.clique 6 in
  let a = run ~graph ~origin:0 ~event:Bgp.Routing_sim.Tdown ~seed:7 () in
  let b = run ~graph ~origin:0 ~event:Bgp.Routing_sim.Tdown ~seed:7 () in
  Alcotest.(check (float 0.)) "same convergence"
    (Bgp.Routing_sim.convergence_time a)
    (Bgp.Routing_sim.convergence_time b);
  Alcotest.(check int) "same message count"
    (a.updates_after_fail + a.withdrawals_after_fail)
    (b.updates_after_fail + b.withdrawals_after_fail);
  Alcotest.(check int) "same fib history"
    (Netcore.Fib_history.change_count (fib_of a))
    (Netcore.Fib_history.change_count (fib_of b))

let test_seeds_differ () =
  let graph = Topo.Generators.clique 8 in
  let conv seed =
    Bgp.Routing_sim.convergence_time
      (run ~graph ~origin:0 ~event:Bgp.Routing_sim.Tdown ~seed ())
  in
  (* jitter and processing delays depend on the seed; at least one of
     several seeds must diverge *)
  let c1 = conv 1 in
  Alcotest.(check bool) "some variation" true
    (List.exists (fun s -> conv s <> c1) [ 2; 3; 4 ])

let test_convergence_time_accessor () =
  let graph = Topo.Generators.clique 4 in
  let o = run ~graph ~origin:0 ~event:Bgp.Routing_sim.Tdown ~seed:1 () in
  Alcotest.(check (float 1e-9)) "definition"
    (o.convergence_end -. o.t_fail)
    (Bgp.Routing_sim.convergence_time o)

let test_mrai_zero_message_storm () =
  (* Griffin & Premore (cited as the paper's [5], footnote 3): below a
     topology-specific optimal MRAI, convergence is dominated by update
     storms.  Removing the timer must multiply the message count, and
     need not make convergence faster. *)
  let graph = Topo.Generators.clique 8 in
  let config = Bgp.Config.{ default with mrai = 0. } in
  let o = run ~config ~graph ~origin:0 ~event:Bgp.Routing_sim.Tdown ~seed:1 () in
  let with_mrai = run ~graph ~origin:0 ~event:Bgp.Routing_sim.Tdown ~seed:1 () in
  let msgs (r : Bgp.Routing_sim.outcome) =
    r.updates_after_fail + r.withdrawals_after_fail
  in
  Alcotest.(check bool) "storm without the timer" true
    (msgs o > 5 * msgs with_mrai);
  Alcotest.(check bool) "still converges" true o.converged

let test_validation () =
  let graph = Topo.Generators.clique 4 in
  let raises f =
    try
      ignore (f ());
      false
    with Invalid_argument _ -> true
  in
  Alcotest.(check bool) "bad origin" true
    (raises (fun () ->
         run ~graph ~origin:9 ~event:Bgp.Routing_sim.Tdown ~seed:1 ()));
  Alcotest.(check bool) "absent Tlong link" true
    (raises (fun () ->
         run ~graph ~origin:0
           ~event:(Bgp.Routing_sim.Tlong { a = 0; b = 0 })
           ~seed:1 ()));
  let disconnected = Topo.Graph.create ~n:3 ~edges:[ (0, 1) ] in
  Alcotest.(check bool) "disconnected graph" true
    (raises (fun () ->
         run ~graph:disconnected ~origin:0 ~event:Bgp.Routing_sim.Tdown ~seed:1 ()))

let test_tup_announces_fresh_prefix () =
  let graph = Topo.Generators.clique 6 in
  let o = run ~graph ~origin:0 ~event:Bgp.Routing_sim.Tup ~seed:1 () in
  Alcotest.(check bool) "converged" true o.converged;
  let fib = fib_of o in
  (* nothing is routable before the event... *)
  List.iter
    (fun v ->
      if v <> 0 then
        Alcotest.(check bool) "no route before Tup" true
          (Netcore.Fib_history.lookup fib ~node:v ~time:(o.t_fail -. 1.) = None))
    (Topo.Graph.nodes graph);
  (* ...and everything is after *)
  let late = o.convergence_end +. 100. in
  List.iter
    (fun v ->
      if v <> 0 then
        Alcotest.(check bool) "routed after Tup" true
          (walk_length fib ~origin:0 ~n:6 ~time:late ~src:v <> None))
    (Topo.Graph.nodes graph);
  (* classical result: Tup is fast — no path exploration *)
  Alcotest.(check bool) "fast convergence" true
    (Bgp.Routing_sim.convergence_time o < 5.)

let test_trecover_restores_short_paths () =
  let n = 4 in
  let graph = Topo.Generators.b_clique n in
  let o =
    run ~graph ~origin:0
      ~event:(Bgp.Routing_sim.Trecover { a = 0; b = n })
      ~seed:1 ()
  in
  Alcotest.(check bool) "converged" true o.converged;
  let fib = fib_of o in
  (* warm-up converged the long way round: node n pays the chain detour *)
  Alcotest.(check bool) "detour before recovery" true
    (walk_length fib ~origin:0 ~n:(2 * n) ~time:(o.t_fail -. 1.) ~src:n
    = Some (n + 1));
  (* after recovery it uses the direct link again *)
  let late = o.convergence_end +. 100. in
  Alcotest.(check bool) "direct after recovery" true
    (walk_length fib ~origin:0 ~n:(2 * n) ~time:late ~src:n = Some 1)

let test_inverse_events_are_loop_free () =
  (* moving to better paths never falls back onto stale state: no
     transient loops for Tup/Trecover *)
  let check_no_loops ~graph ~origin ~event =
    let o = run ~graph ~origin ~event ~seed:1 () in
    let report =
      Loopscan.Scanner.scan ~fib:(fib_of o) ~origin ~from:o.t_fail ()
    in
    Alcotest.(check int) "no transient loops" 0 (List.length report.loops)
  in
  check_no_loops ~graph:(Topo.Generators.clique 8) ~origin:0
    ~event:Bgp.Routing_sim.Tup;
  check_no_loops
    ~graph:(Topo.Generators.b_clique 5)
    ~origin:0
    ~event:(Bgp.Routing_sim.Trecover { a = 0; b = 5 })

let test_tshort_flap_returns_to_original_routes () =
  let n = 4 in
  let graph = Topo.Generators.b_clique n in
  let o =
    run ~graph ~origin:0
      ~event:(Bgp.Routing_sim.Tshort { a = 0; b = n; down_for = 20. })
      ~seed:1 ()
  in
  Alcotest.(check bool) "converged" true o.converged;
  let fib = fib_of o in
  let late = o.convergence_end +. 100. in
  (* after the flap settles, the direct link carries traffic again *)
  Alcotest.(check bool) "direct path restored" true
    (walk_length fib ~origin:0 ~n:(2 * n) ~time:late ~src:n = Some 1);
  (* two link events: down then up *)
  (match Netcore.Trace.link_events o.trace with
  | [ down; up ] ->
      Alcotest.(check bool) "down first" true (not down.Netcore.Trace.up);
      Alcotest.(check bool) "up second" true up.Netcore.Trace.up;
      Alcotest.(check (float 1e-9)) "spacing" 20.
        (up.Netcore.Trace.time -. down.Netcore.Trace.time)
  | evs -> Alcotest.failf "expected two link events, got %d" (List.length evs));
  (* the down phase forces the detour like a Tlong... *)
  Alcotest.(check bool) "detour during the outage" true
    (walk_length fib ~origin:0 ~n:(2 * n) ~time:(o.t_fail +. 19.9) ~src:n
    <> Some 1)

let test_tshort_validation () =
  let graph = Topo.Generators.b_clique 3 in
  Alcotest.(check bool) "rejects non-positive outage" true
    (try
       ignore
         (run ~graph ~origin:0
            ~event:(Bgp.Routing_sim.Tshort { a = 0; b = 3; down_for = 0. })
            ~seed:1 ());
       false
     with Invalid_argument _ -> true)

let test_gao_rexford_policy_converges () =
  (* the library extension: warm-up under customer/provider policy on a
     hierarchy (star: hub 0 provides transit to the leaves) *)
  let graph = Topo.Generators.star 6 in
  let rel = Bgp.Policy.relationships_by_degree graph in
  let config =
    Bgp.Config.{ default with policy = Bgp.Policy.gao_rexford ~rel }
  in
  let o = run ~config ~graph ~origin:1 ~event:Bgp.Routing_sim.Tdown ~seed:1 () in
  Alcotest.(check bool) "converged" true o.converged;
  let fib = fib_of o in
  let before = o.t_fail -. 1. in
  (* every leaf reaches the origin leaf via the hub *)
  List.iter
    (fun v ->
      if v <> 1 then
        match walk_length fib ~origin:1 ~n:6 ~time:before ~src:v with
        | Some hops -> Alcotest.(check bool) "short" true (hops <= 2)
        | None -> Alcotest.failf "leaf %d unreachable under gao-rexford" v)
    [ 0; 2; 3; 4; 5 ]

let test_no_message_storm_guard () =
  (* regression guard: a clique-10 T_down at the paper's settings must
     stay within a sane event budget — a blowup here means duplicate
     suppression or MRAI batching broke *)
  let graph = Topo.Generators.clique 10 in
  let o = run ~graph ~origin:0 ~event:Bgp.Routing_sim.Tdown ~seed:1 () in
  Alcotest.(check bool)
    (Printf.sprintf "%d events within budget" o.events_executed)
    true
    (o.events_executed < 100_000);
  Alcotest.(check bool)
    (Printf.sprintf "%d messages within budget"
       (o.updates_after_fail + o.withdrawals_after_fail))
    true
    (o.updates_after_fail + o.withdrawals_after_fail < 5_000)

let test_enhancement_combinations () =
  (* the paper tests mechanisms one at a time; the library allows
     combinations — they must still converge to the same loop-free
     outcome *)
  let graph = Topo.Generators.clique 6 in
  let combos =
    [
      { Bgp.Config.default with ssld = true; ghost_flushing = true };
      { Bgp.Config.default with assertion = true; wrate = true };
      {
        Bgp.Config.default with
        ssld = true;
        assertion = true;
        ghost_flushing = true;
        wrate = true;
      };
    ]
  in
  List.iter
    (fun config ->
      let o = run ~config ~graph ~origin:0 ~event:Bgp.Routing_sim.Tdown ~seed:1 () in
      Alcotest.(check bool) "converged" true o.converged;
      let fib = fib_of o in
      List.iter
        (fun v ->
          if v <> 0 then
            Alcotest.(check bool) "unreachable at the end" true
              (Netcore.Fib_history.lookup fib ~node:v
                 ~time:(o.convergence_end +. 100.)
              = None))
        (Topo.Graph.nodes graph))
    combos

let test_damping_composes () =
  let graph = Topo.Generators.b_clique 4 in
  let config =
    {
      Bgp.Config.default with
      ghost_flushing = true;
      damping = Some Bgp.Damping.default_params;
    }
  in
  let o =
    run ~config ~graph ~origin:0
      ~event:(Bgp.Routing_sim.Tlong { a = 0; b = 4 })
      ~seed:1 ()
  in
  Alcotest.(check bool) "converged" true o.converged

(* Griffin & Wilfong's BAD GADGET: nodes 1, 2, 3 around origin 0, each
   preferring the 2-hop path through its clockwise neighbor over its
   own direct path.  No stable routing exists, so BGP oscillates
   forever; a bounded run must hit its event budget rather than
   quiesce, and report [converged = false]. *)
let gadget_graph () =
  Topo.Graph.create ~n:4
    ~edges:[ (0, 1); (0, 2); (0, 3); (1, 2); (2, 3); (1, 3) ]

let gadget_policy () =
  let clockwise = function 1 -> 2 | 2 -> 3 | 3 -> 1 | _ -> 0 in
  let rank ~self (c : Bgp.Policy.candidate) =
    match Bgp.As_path.to_list c.path with
    | [ v; 0 ] when v = clockwise self -> 0 (* the coveted indirect path *)
    | [ 0 ] -> 1 (* the direct path *)
    | _ -> 2
  in
  let prefer ~self a b =
    let c = compare (rank ~self a) (rank ~self b) in
    if c <> 0 then c
    else Bgp.As_path.compare a.Bgp.Policy.path b.Bgp.Policy.path
  in
  { Bgp.Policy.shortest_path with prefer; name = "bad-gadget" }

let test_bad_gadget_reported_unconverged () =
  let config =
    Bgp.Config.{ default with policy = gadget_policy (); mrai = 1. }
  in
  let o =
    Bgp.Routing_sim.run ~config ~max_events:100_000 ~graph:(gadget_graph ())
      ~origin:0 ~event:Bgp.Routing_sim.Tdown ~seed:1 ()
  in
  Alcotest.(check bool) "oscillation detected" false o.converged

let test_gao_rexford_gadget_safe () =
  (* the same triangle under valley-free Gao-Rexford preferences is
     provably safe (Gao & Rexford 2001): it must converge *)
  let graph = gadget_graph () in
  (* 0 is everyone's customer; 1, 2, 3 are mutual peers *)
  let rel a b =
    if a = 0 then Bgp.Policy.Provider
    else if b = 0 then Bgp.Policy.Customer
    else Bgp.Policy.Peer_rel
  in
  let config =
    Bgp.Config.{ default with policy = Bgp.Policy.gao_rexford ~rel; mrai = 1. }
  in
  let o =
    Bgp.Routing_sim.run ~config ~max_events:100_000 ~graph ~origin:0
      ~event:Bgp.Routing_sim.Tdown ~seed:1 ()
  in
  Alcotest.(check bool) "safe policy converges" true o.converged

let () =
  let tc name f = Alcotest.test_case name `Quick f in
  Alcotest.run "routing-sim"
    [
      ( "warmup",
        [
          tc "clique converges to shortest paths" test_warmup_clique;
          tc "chain" test_warmup_chain;
          tc "ring" test_warmup_ring;
          tc "b-clique" test_warmup_b_clique;
          tc "grid" test_warmup_grid;
          tc "internet-derived" test_warmup_internet;
        ] );
      ( "tdown",
        [
          tc "destination becomes unreachable everywhere"
            test_tdown_ends_unreachable;
          tc "withdrawals and exploration happen" test_tdown_sends_messages;
        ] );
      ( "tlong",
        [
          tc "reroutes over the backup chain" test_tlong_reroutes;
          tc "no withdrawals before the failure"
            test_tlong_no_withdrawal_before_failure;
          tc "link event logged" test_link_event_logged;
        ] );
      ( "inverse-events",
        [
          tc "Tup announces a fresh prefix" test_tup_announces_fresh_prefix;
          tc "Trecover restores short paths" test_trecover_restores_short_paths;
          tc "inverse events are loop-free" test_inverse_events_are_loop_free;
          tc "Tshort flap returns to original routes"
            test_tshort_flap_returns_to_original_routes;
          tc "Tshort validation" test_tshort_validation;
        ] );
      ( "determinism",
        [
          tc "identical runs per seed" test_deterministic_per_seed;
          tc "seeds vary timing" test_seeds_differ;
        ] );
      ( "misc",
        [
          tc "convergence_time accessor" test_convergence_time_accessor;
          tc "MRAI=0 causes a message storm" test_mrai_zero_message_storm;
          tc "input validation" test_validation;
          tc "gao-rexford policy converges" test_gao_rexford_policy_converges;
        ] );
      ( "robustness",
        [
          tc "no message storm at default settings"
            test_no_message_storm_guard;
          tc "enhancement combinations run clean"
            test_enhancement_combinations;
          tc "damping composes with enhancements"
            test_damping_composes;
        ] );
      ( "policy-safety",
        [
          tc "BAD GADGET reported unconverged"
            test_bad_gadget_reported_unconverged;
          tc "gao-rexford gadget is safe" test_gao_rexford_gadget_safe;
        ] );
    ]
