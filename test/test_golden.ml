(* Golden-trace regression suite: recompute each fixture's trace digest
   and compare against the committed test/golden_digests.expected.

   A failure here means simulator behavior drifted (event order, timing
   or decision process changed).  If the drift is intentional,
   regenerate the fixture file with:

     dune exec bin/bgpsim_cli.exe -- golden > test/golden_digests.expected
*)

open Bgpsim

let expected_path = "golden_digests.expected"

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let expected () = Golden.parse_expected (read_file expected_path)

let test_fixture_file_well_formed () =
  let pairs = expected () in
  Alcotest.(check (list string))
    "one committed digest per fixture (mesh last), same order"
    (List.map (fun (f : Golden.fixture) -> f.name) Golden.fixtures
    @ [ Golden.mesh_name ])
    (List.map fst pairs);
  List.iter
    (fun (_, d) ->
      Alcotest.(check int) "hex md5 length" 32 (String.length d);
      Alcotest.(check bool) "hex digits" true
        (String.for_all
           (function '0' .. '9' | 'a' .. 'f' -> true | _ -> false)
           d))
    pairs

let test_digests_match_committed () =
  let pairs = expected () in
  List.iter
    (fun (f : Golden.fixture) ->
      match List.assoc_opt f.name pairs with
      | None -> Alcotest.fail ("no committed digest for " ^ f.name)
      | Some want ->
          Alcotest.(check string)
            (f.name ^ " digest unchanged")
            want (Golden.digest f))
    Golden.fixtures;
  match List.assoc_opt Golden.mesh_name pairs with
  | None -> Alcotest.fail ("no committed digest for " ^ Golden.mesh_name)
  | Some want ->
      Alcotest.(check string)
        (Golden.mesh_name ^ " digest unchanged")
        want (Golden.mesh_digest ())

let test_digest_stable_across_recompute () =
  let f = Golden.canonical in
  Alcotest.(check string) "two runs, one digest" (Golden.digest f)
    (Golden.digest f)

let test_canonical_trace_nonempty () =
  let events = Golden.events Golden.canonical in
  Alcotest.(check bool) "canonical trace has events" true
    (List.length events > 50);
  (* the canonical scenario is a T_down: its trace must carry both
     withdrawals and post-hoc loop lifecycles from the scanner *)
  let has p = List.exists p events in
  Alcotest.(check bool) "has withdrawal" true
    (has (function Obs.Event.Withdrawal _ -> true | _ -> false));
  Alcotest.(check bool) "has loop_detected" true
    (has (function Obs.Event.Loop_detected _ -> true | _ -> false))

let test_find_and_digest_line () =
  (match Golden.find "clique5-tdown" with
  | Some f -> Alcotest.(check string) "find" "clique5-tdown" f.name
  | None -> Alcotest.fail "clique5-tdown not found");
  Alcotest.(check bool) "unknown name" true (Golden.find "nope" = None);
  let f = Golden.canonical in
  Alcotest.(check string) "line format"
    (Printf.sprintf "%s %s" f.name (Golden.digest f))
    (Golden.digest_line f)

let test_parse_expected_skips_noise () =
  let pairs =
    Golden.parse_expected
      "# comment\n\n  name1 abc  \nmalformed-no-space\nname2 def\n"
  in
  Alcotest.(check (list (pair string string)))
    "comments, blanks and malformed lines skipped"
    [ ("name1", "abc"); ("name2", "def") ]
    pairs

(* The binary-trace oracle: for every fixture, the JSONL re-emitted
   from a decoded binary trace must be byte-identical to the JSONL the
   same run writes directly.  This is what lets the binary fast path
   keep the JSONL digests as the golden values. *)
let test_binary_decode_byte_identical () =
  let dir = Filename.temp_file "golden_bin" "" in
  Sys.remove dir;
  Sys.mkdir dir 0o755;
  Fun.protect
    ~finally:(fun () ->
      Array.iter
        (fun f -> Sys.remove (Filename.concat dir f))
        (Sys.readdir dir);
      Sys.rmdir dir)
    (fun () ->
      let oracle name events digest =
        let jsonl_path = Filename.concat dir (name ^ ".jsonl") in
        let bin_path = Filename.concat dir (name ^ ".bin") in
        let write sink =
          List.iter (Obs.Sink.emit sink) events;
          Obs.Sink.close sink
        in
        write (Obs.Sink.jsonl_file jsonl_path);
        write (Obs.Sink.binary_file bin_path);
        (* decode the binary file back to JSONL, as `trace decode` does *)
        let decoded = Buffer.create 4096 in
        let ic = open_in_bin bin_path in
        Fun.protect
          ~finally:(fun () -> close_in_noerr ic)
          (fun () ->
            let r = Obs.Binary.open_reader ic in
            let rec loop () =
              match Obs.Binary.input r with
              | Some ev ->
                  Buffer.add_string decoded (Obs.Event.to_json ev);
                  Buffer.add_char decoded '\n';
                  loop ()
              | None -> ()
            in
            loop ());
        Alcotest.(check string)
          (name ^ ": decoded binary = direct JSONL bytes")
          (read_file jsonl_path)
          (Buffer.contents decoded);
        (* and both digests name the same canonical JSONL value *)
        Alcotest.(check string)
          (name ^ ": file digest agrees")
          digest
          (Obs.Trace_digest.of_file jsonl_path)
      in
      List.iter
        (fun (f : Golden.fixture) ->
          oracle f.name (Golden.events f) (Golden.digest f))
        Golden.fixtures;
      (* the mesh fixture exercises the per-prefix-tagged frames (format
         2's trailing prefix field) through the same oracle *)
      oracle Golden.mesh_name (Golden.mesh_events ()) (Golden.mesh_digest ()))

let () =
  let tc name f = Alcotest.test_case name `Quick f in
  Alcotest.run "golden"
    [
      ( "fixture-file",
        [
          tc "well-formed" test_fixture_file_well_formed;
          tc "parse skips noise" test_parse_expected_skips_noise;
        ] );
      ( "digests",
        [
          tc "match committed" test_digests_match_committed;
          tc "stable across recompute" test_digest_stable_across_recompute;
          tc "canonical trace nonempty" test_canonical_trace_nonempty;
          tc "find and line format" test_find_and_digest_line;
        ] );
      ( "binary-oracle",
        [ tc "decode byte-identical" test_binary_decode_byte_identical ] );
    ]
