(* Tests for metric assembly and averaging. *)

let small_run () =
  Bgpsim.Experiment.run
    {
      (Bgpsim.Experiment.default_spec (Bgpsim.Experiment.Clique 5)) with
      mrai = 5.;
    }

let test_make_consistency () =
  let r = small_run () in
  let m = r.metrics in
  Alcotest.(check bool) "converged" true m.converged;
  Alcotest.(check (float 1e-9)) "convergence time"
    (Bgp.Routing_sim.convergence_time r.outcome)
    m.convergence_time;
  Alcotest.(check int) "exhaustions" r.replay.exhausted m.ttl_exhaustions;
  Alcotest.(check int) "denominator" r.replay.sent_for_ratio m.packets_sent;
  Alcotest.(check (float 1e-9)) "ratio"
    (Traffic.Replay.looping_ratio r.replay)
    m.looping_ratio;
  Alcotest.(check int) "loop count" (List.length r.loops.loops) m.loop_count;
  Alcotest.(check bool) "ratio within [0,1]" true
    (m.looping_ratio >= 0. && m.looping_ratio <= 1.)

let test_packet_conservation () =
  let r = small_run () in
  Alcotest.(check int) "fates partition the packets" r.replay.sent
    (r.replay.delivered + r.replay.unreachable + r.replay.exhausted)

let test_zero_is_mean_identity_shape () =
  let z = Metrics.Run_metrics.zero in
  Alcotest.(check int) "exh" 0 z.ttl_exhaustions;
  Alcotest.(check (float 0.)) "conv" 0. z.convergence_time;
  Alcotest.(check bool) "converged" true z.converged

let test_mean_arithmetic () =
  let a =
    {
      Metrics.Run_metrics.zero with
      convergence_time = 10.;
      ttl_exhaustions = 100;
      looping_ratio = 0.5;
    }
  in
  let b =
    {
      Metrics.Run_metrics.zero with
      convergence_time = 20.;
      ttl_exhaustions = 301;
      looping_ratio = 0.7;
    }
  in
  let m = Metrics.Run_metrics.mean [ a; b ] in
  Alcotest.(check (float 1e-9)) "conv" 15. m.convergence_time;
  Alcotest.(check int) "exh rounds to nearest" 201 m.ttl_exhaustions;
  Alcotest.(check (float 1e-9)) "ratio" 0.6 m.looping_ratio

let test_mean_converged_conjunction () =
  let bad = { Metrics.Run_metrics.zero with converged = false } in
  let m = Metrics.Run_metrics.mean [ Metrics.Run_metrics.zero; bad ] in
  Alcotest.(check bool) "any divergence taints the mean" false m.converged

let test_mean_rejects_empty () =
  Alcotest.check_raises "empty" (Invalid_argument "Run_metrics.mean: empty list")
    (fun () -> ignore (Metrics.Run_metrics.mean []))

let test_mean_singleton_identity () =
  let r = (small_run ()).metrics in
  let m = Metrics.Run_metrics.mean [ r ] in
  Alcotest.(check (float 1e-9)) "conv" r.convergence_time m.convergence_time;
  Alcotest.(check int) "exh" r.ttl_exhaustions m.ttl_exhaustions

let test_row_rendering () =
  let r = (small_run ()).metrics in
  let row = Metrics.Run_metrics.to_row r in
  let cells = String.split_on_char '\t' row in
  let headers = String.split_on_char '\t' Metrics.Run_metrics.header in
  Alcotest.(check int) "row matches header" (List.length headers)
    (List.length cells)

let test_pp_mentions_convergence () =
  let r = (small_run ()).metrics in
  let text = Format.asprintf "%a" Metrics.Run_metrics.pp r in
  Alcotest.(check bool) "mentions convergence" true
    (String.length text > 0
    &&
    let contains ~needle hay =
      let nl = String.length needle and hl = String.length hay in
      let rec scan i = i + nl <= hl && (String.sub hay i nl = needle || scan (i + 1)) in
      scan 0
    in
    contains ~needle:"convergence time" text
    && contains ~needle:"looping ratio" text)

(* --- Convergence analysis --- *)

let fib_with ~n changes =
  let fib = Netcore.Fib_history.create ~n in
  List.iter
    (fun (time, node, next_hop) ->
      Netcore.Fib_history.record fib ~time ~node ~next_hop)
    changes;
  fib

let test_convergence_per_node () =
  let fib =
    fib_with ~n:4
      [ (1., 1, Some 0); (10., 1, None); (12., 2, Some 1); (14., 2, None) ]
  in
  let c = Metrics.Convergence.analyze ~fib ~from:10. in
  Alcotest.(check int) "affected" 2 c.affected_nodes;
  Alcotest.(check int) "changes" 3 c.total_changes;
  (* node 1 settles at 10 (0s after the event), node 2 at 14 (4s) *)
  Alcotest.(check (float 1e-9)) "mean settle" 2. c.mean_settle;
  Alcotest.(check (float 1e-9)) "max settle" 4. c.max_settle;
  Alcotest.(check bool) "node 3 untouched" true
    (List.assoc 3 c.per_node = None);
  Alcotest.(check bool) "node 2 settle time" true
    (List.assoc 2 c.per_node = Some 14.)

let test_convergence_no_changes () =
  let fib = fib_with ~n:2 [ (1., 1, Some 0) ] in
  let c = Metrics.Convergence.analyze ~fib ~from:5. in
  Alcotest.(check int) "nothing affected" 0 c.affected_nodes;
  Alcotest.(check (float 0.)) "zero settle" 0. c.mean_settle

let test_churn_timeline () =
  let fib =
    fib_with ~n:4
      [ (10., 1, Some 0); (10.5, 2, Some 1); (13.2, 1, None); (25., 3, Some 0) ]
  in
  let bins = Metrics.Convergence.churn_timeline ~fib ~from:10. ~bucket:5. in
  Alcotest.(check (list (pair (float 1e-9) int)))
    "bins" [ (10., 3); (25., 1) ] bins;
  Alcotest.(check bool) "rejects bad bucket" true
    (try
       ignore (Metrics.Convergence.churn_timeline ~fib ~from:0. ~bucket:0.);
       false
     with Invalid_argument _ -> true)

(* --- Export --- *)

let lines s = String.split_on_char '\n' (String.trim s)

let test_export_fib_csv () =
  let fib = fib_with ~n:3 [ (1., 1, Some 0); (2., 2, Some 1); (3., 2, None) ] in
  (match lines (Metrics.Export.fib_changes_csv fib ~from:0.) with
  | [ header; row1; _row2; _row3 ] ->
      Alcotest.(check string) "header" "time,node,next_hop" header;
      Alcotest.(check string) "row" "1.000000,1,0" row1
  | l -> Alcotest.failf "expected 4 lines, got %d" (List.length l));
  (* None renders as the empty field *)
  match lines (Metrics.Export.fib_changes_csv fib ~from:2.5) with
  | [ _; row ] -> Alcotest.(check string) "empty next hop" "3.000000,2," row
  | _ -> Alcotest.fail "expected one change"

let test_export_sends_csv () =
  let trace = Netcore.Trace.create ~n:3 in
  Netcore.Trace.log_send trace ~time:1. ~src:0 ~dst:1 ~kind:Netcore.Trace.Withdraw;
  match lines (Metrics.Export.sends_csv trace ~from:0.) with
  | [ header; row ] ->
      Alcotest.(check string) "header" "time,src,dst,kind" header;
      Alcotest.(check string) "row" "1.000000,0,1,withdraw" row
  | _ -> Alcotest.fail "expected two lines"

let test_export_loops_csv () =
  let fib =
    fib_with ~n:3
      [ (0., 1, Some 0); (0., 2, Some 1); (10., 1, Some 2); (15., 2, Some 0) ]
  in
  let report = Loopscan.Scanner.scan ~fib ~origin:0 ~from:5. () in
  match lines (Metrics.Export.loops_csv report ~until:20.) with
  | [ header; row ] ->
      Alcotest.(check string) "header"
        "birth,death,duration,size,trigger,members" header;
      Alcotest.(check string) "row" "10.000000,15.000000,5.000000,2,1,1;2" row
  | l -> Alcotest.failf "expected 2 lines, got %d" (List.length l)

let test_export_series_csv () =
  let m = { Metrics.Run_metrics.zero with convergence_time = 2.5 } in
  match lines (Metrics.Export.series_csv ~x_label:"mrai" [ (30., m) ]) with
  | [ header; row ] ->
      Alcotest.(check bool) "header starts with label" true
        (String.length header > 4 && String.sub header 0 4 = "mrai");
      Alcotest.(check bool) "row starts with x" true
        (String.length row > 3 && String.sub row 0 3 = "30,")
  | _ -> Alcotest.fail "expected two lines"

(* --- Timeline --- *)

let test_sparkline_shapes () =
  Alcotest.(check string) "empty" "" (Metrics.Timeline.sparkline [||]);
  let flat = Metrics.Timeline.sparkline ~width:4 [| 0.; 0.; 0.; 0. |] in
  Alcotest.(check string) "all zero" "    " flat;
  let ramp = Metrics.Timeline.sparkline ~width:4 [| 0.; 1.; 2.; 4. |] in
  Alcotest.(check int) "width" 4 (String.length ramp);
  Alcotest.(check bool) "peak glyph" true (ramp.[3] = '@');
  Alcotest.(check bool) "zero glyph" true (ramp.[0] = ' ')

let test_sparkline_resamples () =
  let s = Metrics.Timeline.sparkline ~width:3 [| 1.; 1.; 1.; 1.; 1.; 1. |] in
  Alcotest.(check int) "resampled width" 3 (String.length s);
  Alcotest.(check bool) "uniform" true
    (s.[0] = s.[1] && s.[1] = s.[2] && s.[0] = '@')

let test_bucketize () =
  let bins =
    Metrics.Timeline.bucketize
      ~values:[ (0., 1.); (4.9, 2.); (5., 3.); (100., 9.) ]
      ~from:0. ~until:10. ~width:2
  in
  Alcotest.(check (array (float 1e-9))) "bins" [| 3.; 3. |] bins;
  Alcotest.(check bool) "validates" true
    (try
       ignore (Metrics.Timeline.bucketize ~values:[] ~from:1. ~until:1. ~width:2);
       false
     with Invalid_argument _ -> true)

let test_loops_band () =
  let loop members birth death =
    { Loopscan.Scanner.members; birth; death; trigger = List.hd members }
  in
  let band =
    Metrics.Timeline.loops_band
      ~loops:[ loop [ 1; 2 ] 0. (Some 5.); loop [ 3; 4 ] 2.5 (Some 5.) ]
      ~from:0. ~until:10. ~width:4
  in
  (* bins of 2.5s: [0,2.5) one loop, [2.5,5) two, [5,7.5) none, [7.5,10) none *)
  Alcotest.(check string) "band" "12  " band

let test_render_run_shape () =
  let fib = fib_with ~n:3 [ (1., 1, Some 0) ] in
  let report = Loopscan.Scanner.scan ~fib ~origin:0 ~from:0. () in
  let text =
    Metrics.Timeline.render_run ~fib ~loops:report ~exhaustion_times:[| 2. |]
      ~from:0. ~until:10. ~width:20 ()
  in
  Alcotest.(check int) "four lines" 4
    (List.length (String.split_on_char '\n' text))

let () =
  let tc name f = Alcotest.test_case name `Quick f in
  Alcotest.run "metrics"
    [
      ( "assembly",
        [
          tc "fields consistent with sources" test_make_consistency;
          tc "packet fates conserve" test_packet_conservation;
        ] );
      ( "mean",
        [
          tc "zero shape" test_zero_is_mean_identity_shape;
          tc "arithmetic" test_mean_arithmetic;
          tc "converged conjunction" test_mean_converged_conjunction;
          tc "rejects empty" test_mean_rejects_empty;
          tc "singleton identity" test_mean_singleton_identity;
        ] );
      ( "rendering",
        [
          tc "row matches header" test_row_rendering;
          tc "pp output" test_pp_mentions_convergence;
        ] );
      ( "convergence-analysis",
        [
          tc "per-node settle times" test_convergence_per_node;
          tc "no changes" test_convergence_no_changes;
          tc "churn timeline" test_churn_timeline;
        ] );
      ( "export",
        [
          tc "fib changes csv" test_export_fib_csv;
          tc "sends csv" test_export_sends_csv;
          tc "loops csv" test_export_loops_csv;
          tc "series csv" test_export_series_csv;
        ] );
      ( "timeline",
        [
          tc "sparkline shapes" test_sparkline_shapes;
          tc "sparkline resamples" test_sparkline_resamples;
          tc "bucketize" test_bucketize;
          tc "loops band" test_loops_band;
          tc "render_run shape" test_render_run_shape;
        ] );
    ]
