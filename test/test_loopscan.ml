(* Tests for the forwarding-loop scanner: loop birth/death tracking
   over hand-built FIB histories, canonical representation, concurrent
   loops and aggregates. *)

let fib_with ~n changes =
  let fib = Netcore.Fib_history.create ~n in
  List.iter
    (fun (time, node, next_hop) ->
      Netcore.Fib_history.record fib ~time ~node ~next_hop)
    changes;
  fib

let scan ?(from = 10.) ~n changes =
  Loopscan.Scanner.scan ~fib:(fib_with ~n changes) ~origin:0 ~from ()

(* --- basic lifecycle --- *)

let test_no_loops_in_stable_run () =
  let report =
    scan ~n:3 [ (0., 1, Some 0); (0., 2, Some 1); (11., 2, Some 0) ]
  in
  Alcotest.(check int) "no loops" 0 (List.length report.loops);
  Alcotest.(check bool) "no birth" true (report.first_loop_birth = None);
  Alcotest.(check int) "no concurrency" 0 report.max_concurrent

let test_two_node_loop_lifecycle () =
  (* warm-up: 1 -> 0 and 2 -> 1; at t=10, node 1 repoints to 2 (loop
     1 <-> 2); at t=15, node 2 repoints to 0 (loop dies) *)
  let report =
    scan ~n:3
      [ (0., 1, Some 0); (0., 2, Some 1); (10., 1, Some 2); (15., 2, Some 0) ]
  in
  (match report.loops with
  | [ l ] ->
      Alcotest.(check (list int)) "members" [ 1; 2 ] l.members;
      Alcotest.(check (float 0.)) "birth" 10. l.birth;
      Alcotest.(check bool) "death" true (l.death = Some 15.);
      Alcotest.(check int) "size" 2 (Loopscan.Scanner.size l);
      Alcotest.(check (float 0.)) "duration" 5.
        (Loopscan.Scanner.duration l ~until:100.)
  | ls -> Alcotest.failf "expected one loop, got %d" (List.length ls));
  Alcotest.(check bool) "first birth" true (report.first_loop_birth = Some 10.);
  Alcotest.(check bool) "last death" true (report.last_loop_death = Some 15.);
  Alcotest.(check int) "one at a time" 1 report.max_concurrent

let test_loop_survives_scan () =
  let report = scan ~n:3 [ (0., 2, Some 1); (0., 1, Some 0); (12., 1, Some 2) ] in
  (match report.loops with
  | [ l ] ->
      Alcotest.(check bool) "alive" true (l.death = None);
      Alcotest.(check (float 0.)) "duration uses until" 8.
        (Loopscan.Scanner.duration l ~until:20.)
  | _ -> Alcotest.fail "expected one surviving loop");
  Alcotest.(check bool) "no last death with survivor" true
    (report.last_loop_death = None)

let test_three_node_loop () =
  (* 1 -> 2 -> 3 -> 1 formed by 3's change at t=11 *)
  let report =
    scan ~n:4
      [
        (0., 1, Some 2);
        (0., 2, Some 3);
        (0., 3, Some 0);
        (11., 3, Some 1);
      ]
  in
  match report.loops with
  | [ l ] ->
      Alcotest.(check (list int)) "forwarding order from min" [ 1; 2; 3 ]
        l.members;
      Alcotest.(check int) "size" 3 (Loopscan.Scanner.size l)
  | ls -> Alcotest.failf "expected one loop, got %d" (List.length ls)

let test_canonical_rotation () =
  (* same cycle, formed by a different node's change: members list must
     still start at the smallest node *)
  let report =
    scan ~n:4
      [
        (0., 2, Some 3);
        (0., 3, Some 1);
        (0., 1, Some 0);
        (11., 1, Some 2);
      ]
  in
  match report.loops with
  | [ l ] -> Alcotest.(check (list int)) "canonical" [ 1; 2; 3 ] l.members
  | _ -> Alcotest.fail "expected one loop"

let test_concurrent_disjoint_loops () =
  (* two disjoint 2-node loops alive simultaneously *)
  let report =
    scan ~n:5
      [
        (0., 1, Some 0);
        (0., 2, Some 1);
        (0., 3, Some 0);
        (0., 4, Some 3);
        (10., 1, Some 2);
        (11., 3, Some 4);
        (14., 1, Some 0);
        (16., 3, Some 0);
      ]
  in
  Alcotest.(check int) "two loops" 2 (List.length report.loops);
  Alcotest.(check int) "concurrent" 2 report.max_concurrent;
  Alcotest.(check bool) "last death" true (report.last_loop_death = Some 16.)

let test_sequential_loops_on_same_nodes () =
  (* the same pair loops, resolves, then loops again: two distinct loop
     records — the paper's "resolution of one loop could result in
     another (but different) loop" *)
  let report =
    scan ~n:3
      [
        (0., 1, Some 0);
        (0., 2, Some 1);
        (10., 1, Some 2);
        (12., 1, Some 0);
        (14., 1, Some 2);
        (15., 1, Some 0);
      ]
  in
  Alcotest.(check int) "two episodes" 2 (List.length report.loops);
  Alcotest.(check int) "never concurrent" 1 report.max_concurrent;
  match report.loops with
  | [ a; b ] ->
      Alcotest.(check (list int)) "same members" a.members b.members;
      Alcotest.(check bool) "ordered by birth" true (a.birth < b.birth)
  | _ -> Alcotest.fail "expected two loops"

let test_tail_into_loop_not_a_member () =
  (* 3 -> 1 -> 2 -> 1: node 3 is on a tail into the loop, not in it *)
  let report =
    scan ~n:4
      [
        (0., 1, Some 0);
        (0., 2, Some 1);
        (0., 3, Some 1);
        (10., 1, Some 2);
      ]
  in
  match report.loops with
  | [ l ] -> Alcotest.(check (list int)) "tail excluded" [ 1; 2 ] l.members
  | _ -> Alcotest.fail "expected one loop"

let test_rejects_looped_start () =
  Alcotest.(check bool) "raises" true
    (try
       ignore (scan ~n:3 [ (0., 1, Some 2); (0., 2, Some 1) ]);
       false
     with Invalid_argument _ -> true)

let test_change_killing_and_reforming_at_once () =
  (* node 1 changes its next hop from one loop-mate to another at the
     same instant: old loop dies at t, new loop (1,3) born at t *)
  let report =
    scan ~n:4
      [
        (0., 1, Some 0);
        (0., 2, Some 1);
        (0., 3, Some 1);
        (10., 1, Some 2);
        (13., 1, Some 3);
      ]
  in
  Alcotest.(check int) "two loops" 2 (List.length report.loops);
  match report.loops with
  | [ a; b ] ->
      Alcotest.(check (list int)) "first" [ 1; 2 ] a.members;
      Alcotest.(check bool) "first dies at 13" true (a.death = Some 13.);
      Alcotest.(check (list int)) "second" [ 1; 3 ] b.members;
      Alcotest.(check (float 0.)) "second born at 13" 13. b.birth
  | _ -> Alcotest.fail "expected two loops"

(* --- aggregates --- *)

let test_aggregate_empty () =
  let report = scan ~n:2 [ (0., 1, Some 0) ] in
  let a = Loopscan.Scanner.aggregate report ~until:100. in
  Alcotest.(check int) "count" 0 a.count;
  Alcotest.(check (float 0.)) "total" 0. a.total_loop_seconds

let test_aggregate_math () =
  let report =
    scan ~n:5
      [
        (0., 1, Some 0);
        (0., 2, Some 1);
        (0., 3, Some 0);
        (0., 4, Some 3);
        (10., 1, Some 2);
        (* 2-node loop alive 10..14 = 4s *)
        (11., 3, Some 4);
        (* 2-node loop alive 11..17 = 6s *)
        (14., 1, Some 0);
        (17., 3, Some 0);
      ]
  in
  let a = Loopscan.Scanner.aggregate report ~until:100. in
  Alcotest.(check int) "count" 2 a.count;
  Alcotest.(check (float 1e-9)) "mean size" 2. a.mean_size;
  Alcotest.(check int) "max size" 2 a.max_size;
  Alcotest.(check (float 1e-9)) "mean duration" 5. a.mean_duration;
  Alcotest.(check (float 1e-9)) "max duration" 6. a.max_duration;
  Alcotest.(check (float 1e-9)) "total" 10. a.total_loop_seconds

(* --- trigger attribution and cause classification --- *)

let test_trigger_node_recorded () =
  let report =
    scan ~n:3
      [ (0., 1, Some 0); (0., 2, Some 1); (10., 1, Some 2) ]
  in
  match report.loops with
  | [ l ] -> Alcotest.(check int) "trigger is the changing node" 1 l.trigger
  | _ -> Alcotest.fail "expected one loop"

let test_causes_classification () =
  let fib =
    fib_with ~n:4
      [
        (0., 1, Some 0);
        (0., 2, Some 1);
        (0., 3, Some 1);
        (10., 1, Some 2);
        (* withdrawal-triggered: 1 processed a withdrawal at 10 *)
        (12., 1, Some 0);
        (14., 1, Some 3);
        (* announcement-triggered at 14 *)
        (16., 1, Some 0);
        (18., 1, Some 3);
        (* no message at 18: session-triggered *)
      ]
  in
  let trace = Netcore.Trace.create ~n:4 in
  Netcore.Trace.log_process trace ~time:10. ~node:1 ~from:0
    ~kind:Netcore.Trace.Withdraw;
  Netcore.Trace.log_process trace ~time:14. ~node:1 ~from:2
    ~kind:Netcore.Trace.Announce;
  let report = Loopscan.Scanner.scan ~fib ~origin:0 ~from:5. () in
  let classified = Loopscan.Causes.classify ~trace report in
  let causes = List.map snd classified in
  Alcotest.(check (list string))
    "causes in birth order"
    [ "withdrawal"; "announcement"; "session-event" ]
    (List.map Loopscan.Causes.cause_name causes);
  let b = Loopscan.Causes.breakdown classified in
  Alcotest.(check int) "withdrawals" 1 b.withdrawal_triggered;
  Alcotest.(check int) "announcements" 1 b.announcement_triggered;
  Alcotest.(check int) "sessions" 1 b.session_triggered

let test_causes_on_real_run () =
  (* T_long at the paper's Figure 1: the 5<->6 loop forms when node 5
     (or 6) falls back after processing node 4's withdrawal *)
  let graph =
    Topo.Graph.create ~n:7
      ~edges:[ (0, 4); (4, 5); (4, 6); (5, 6); (6, 3); (3, 2); (2, 1); (1, 0) ]
  in
  let o =
    Bgp.Routing_sim.run ~graph ~origin:0
      ~event:(Bgp.Routing_sim.Tlong { a = 0; b = 4 })
      ~seed:1 ()
  in
  let report =
    Loopscan.Scanner.scan ~fib:(Netcore.Trace.fib o.trace) ~origin:0
      ~from:o.t_fail ()
  in
  let classified = Loopscan.Causes.classify ~trace:o.trace report in
  let b = Loopscan.Causes.breakdown classified in
  Alcotest.(check bool) "loops were found" true (report.loops <> []);
  Alcotest.(check int) "every loop has a message trigger"
    (List.length report.loops)
    (b.withdrawal_triggered + b.announcement_triggered)

(* --- property: scanner agrees with packet fates --- *)

let prop_scanner_consistent_with_forwarder =
  (* On random FIB evolutions over small graphs: whenever the scanner
     says no loop is alive at time t, a packet walk started then from
     any node must terminate (delivered or unreachable, not TTL
     exhaustion with a huge TTL). *)
  let gen =
    QCheck.make
      QCheck.Gen.(
        list_size (int_range 1 25)
          (triple (float_range 10. 50.) (int_range 1 4)
             (opt (int_range 0 4))))
  in
  QCheck.Test.make ~name:"no live loop => every walk terminates" ~count:100 gen
    (fun raw_changes ->
      let changes =
        List.sort (fun (a, _, _) (b, _, _) -> compare a b) raw_changes
        |> List.filter (fun (_, node, nh) -> nh <> Some node)
      in
      let fib = fib_with ~n:5 changes in
      let report = Loopscan.Scanner.scan ~fib ~origin:0 ~from:0. () in
      let alive_at t =
        List.exists
          (fun (l : Loopscan.Scanner.loop) ->
            l.birth <= t && match l.death with None -> true | Some d -> d > t)
          report.loops
      in
      List.for_all
        (fun t ->
          alive_at t
          || List.for_all
               (fun src ->
                 match
                   Traffic.Forwarder.walk ~fib ~origin:0 ~link_delay:1e-9
                     ~ttl:1000 ~src ~send_time:t
                 with
                 | Traffic.Forwarder.Ttl_exhausted _ -> false
                 | Traffic.Forwarder.Delivered _
                 | Traffic.Forwarder.Unreachable _ ->
                     true)
               [ 1; 2; 3; 4 ])
        [ 60.; 70. ])

let () =
  let tc name f = Alcotest.test_case name `Quick f in
  Alcotest.run "loopscan"
    [
      ( "lifecycle",
        [
          tc "stable run has no loops" test_no_loops_in_stable_run;
          tc "two-node loop lifecycle" test_two_node_loop_lifecycle;
          tc "loop survives the scan" test_loop_survives_scan;
          tc "three-node loop" test_three_node_loop;
          tc "canonical rotation" test_canonical_rotation;
          tc "concurrent disjoint loops" test_concurrent_disjoint_loops;
          tc "sequential loops on same nodes"
            test_sequential_loops_on_same_nodes;
          tc "tails are not members" test_tail_into_loop_not_a_member;
          tc "rejects looped starting state" test_rejects_looped_start;
          tc "kill and re-form at one instant"
            test_change_killing_and_reforming_at_once;
        ] );
      ( "aggregate",
        [
          tc "empty" test_aggregate_empty;
          tc "arithmetic" test_aggregate_math;
        ] );
      ( "causes",
        [
          tc "trigger node recorded" test_trigger_node_recorded;
          tc "classification from process log" test_causes_classification;
          tc "figure-1 run classifies fully" test_causes_on_real_run;
        ] );
      ( "properties",
        [ QCheck_alcotest.to_alcotest prop_scanner_consistent_with_forwarder ]
      );
    ]
