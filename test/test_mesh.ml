(* The full-mesh differential + property wall.

   Differential: Mesh_sim restricted to one prefix must reproduce
   Multi_sim exactly — same FIB histories, same loop reports, same
   convergence accounting — on the golden-fixture graphs and on a
   sweep of seeded internet graphs.  Multi_sim is in turn pinned to
   Routing_sim by test_multi_sim, so the chain reaches the original
   single-prefix simulation.

   Properties: the batched per-peer MRAI releases each pending key
   exactly once per expiry and behaves like one independent timer per
   key; packed (prefix, peer) keys round-trip injectively; the
   streaming per-prefix loop scans of a mesh run equal N independent
   post-hoc scans of its FIB histories. *)

let fib_changes fib = Netcore.Fib_history.changes_from fib ~from:neg_infinity

(* Mesh_sim with a single origin vs Multi_sim on the same graph/seed:
   every observable result must coincide. *)
let check_mesh_equals_multi ?churn ~graph ~origin ~seed name =
  let mesh =
    Bgp.Mesh_sim.run ?churn ~graph ~origins:[ origin ] ~victim:0 ~seed ()
  in
  let multi =
    Bgp.Multi_sim.run ?churn ~graph ~origins:[ origin ] ~victim:0 ~seed ()
  in
  Alcotest.(check (float 0.)) (name ^ ": t_fail") multi.t_fail mesh.t_fail;
  Alcotest.(check (float 0.))
    (name ^ ": convergence end")
    multi.victim_convergence_end mesh.victim_convergence_end;
  Alcotest.(check int)
    (name ^ ": victim messages")
    multi.victim_messages mesh.victim_messages;
  Alcotest.(check int)
    (name ^ ": background messages")
    multi.background_messages mesh.background_messages;
  Alcotest.(check bool) (name ^ ": converged") multi.converged mesh.converged;
  Alcotest.(check bool)
    (name ^ ": termination")
    true
    (mesh.termination = multi.termination);
  Alcotest.(check int)
    (name ^ ": paths interned")
    multi.paths_interned mesh.paths_interned;
  let mesh_fib = snd (List.hd mesh.prefixes) in
  let multi_fib = snd (List.hd multi.prefixes) in
  Alcotest.(check bool)
    (name ^ ": FIB histories identical")
    true
    (fib_changes mesh_fib = fib_changes multi_fib);
  (* the mesh's streaming loop scan vs a post-hoc scan of Multi_sim's
     own history — the two simulations AND the two scanner
     implementations must agree *)
  let posthoc =
    Loopscan.Scanner.scan ~fib:multi_fib ~origin ~from:multi.t_fail ()
  in
  match mesh.loop_reports with
  | [ (_, streamed) ] ->
      Alcotest.(check bool)
        (name ^ ": loop reports identical")
        true (streamed = posthoc)
  | reports ->
      Alcotest.failf "%s: expected one loop report, got %d" name
        (List.length reports)

let test_differential_golden_graphs () =
  check_mesh_equals_multi ~graph:(Topo.Generators.clique 5) ~origin:0 ~seed:1
    "clique5";
  check_mesh_equals_multi ~graph:(Topo.Generators.b_clique 5) ~origin:0 ~seed:1
    "bclique5";
  check_mesh_equals_multi ~graph:(Topo.Generators.chain 6) ~origin:0 ~seed:1
    "chain6";
  (* background churn flows through the same injection schedule *)
  check_mesh_equals_multi
    ~churn:{ Bgp.Multi_sim.period = 20.; cycles = 2; flappers = [] }
    ~graph:(Topo.Generators.clique 5) ~origin:0 ~seed:2 "clique5-churn"

let test_differential_internet_sweep () =
  (* 20 seeded internet graphs: 5 sizes x 4 seeds *)
  List.iter
    (fun size ->
      List.iter
        (fun seed ->
          let graph = Topo.Internet.generate ~seed size in
          check_mesh_equals_multi ~graph ~origin:0 ~seed
            (Printf.sprintf "internet-%d seed %d" size seed))
        [ 1; 2; 3; 4 ])
    [ 10; 12; 14; 16; 18 ]

let mesh_trace ~graph ~victim ~seed =
  let sink, contents = Obs.Sink.memory () in
  let obs = Obs.Bus.create ~sink () in
  let o = Bgp.Mesh_sim.run ~graph ~victim ~seed ~obs () in
  (o, contents ())

let test_run_twice_deterministic () =
  let graph = Topo.Generators.clique 5 in
  let o1, ev1 = mesh_trace ~graph ~victim:0 ~seed:7 in
  let o2, ev2 = mesh_trace ~graph ~victim:0 ~seed:7 in
  Alcotest.(check string) "identical event streams"
    (Obs.Trace_digest.of_events ev1)
    (Obs.Trace_digest.of_events ev2);
  Alcotest.(check int) "victim messages" o1.victim_messages o2.victim_messages;
  Alcotest.(check (float 0.)) "convergence end" o1.victim_convergence_end
    o2.victim_convergence_end

let test_mesh_trace_prefix_tagged () =
  let graph = Topo.Generators.clique 5 in
  let o, events = mesh_trace ~graph ~victim:2 ~seed:1 in
  Alcotest.(check bool) "converged" true o.converged;
  Alcotest.(check int) "one prefix per node" 5 (List.length o.prefixes);
  let n_prefixes = List.length o.prefixes in
  let tagged = ref 0 in
  List.iter
    (fun e ->
      match e with
      | Obs.Event.Update_sent _ | Obs.Event.Update_recv _
      | Obs.Event.Originate _ | Obs.Event.Withdrawal _ | Obs.Event.Fib_change _
      | Obs.Event.Loop_detected _ | Obs.Event.Loop_resolved _ -> (
          match Obs.Event.prefix e with
          | Some p when p >= 0 && p < n_prefixes -> incr tagged
          | Some p -> Alcotest.failf "prefix id %d out of range" p
          | None -> Alcotest.failf "untagged per-prefix event: %s"
                      (Obs.Event.to_json e))
      | _ ->
          Alcotest.(check bool) "non-prefix events untagged" true
            (Obs.Event.prefix e = None))
    events;
  Alcotest.(check bool) "plenty of tagged events" true (!tagged > 100)

(* --- QCheck: packed (prefix, peer) keys --- *)

let prop_key_roundtrip =
  QCheck.Test.make ~count:1000 ~name:"packed key round-trips"
    QCheck.(
      pair
        (int_range 0 ((1 lsl 30) - 1))
        (int_range 0 Bgp.Prefix.Key.max_peer))
    (fun (id, peer) ->
      let k = Bgp.Prefix.Key.pack ~id ~peer in
      Bgp.Prefix.Key.id k = id && Bgp.Prefix.Key.peer k = peer)

let prop_key_injective =
  QCheck.Test.make ~count:1000 ~name:"packed key injective"
    QCheck.(
      pair
        (pair (int_range 0 ((1 lsl 30) - 1)) (int_range 0 Bgp.Prefix.Key.max_peer))
        (pair (int_range 0 ((1 lsl 30) - 1)) (int_range 0 Bgp.Prefix.Key.max_peer)))
    (fun (((id1, peer1) as a), ((id2, peer2) as b)) ->
      let k1 = Bgp.Prefix.Key.pack ~id:id1 ~peer:peer1 in
      let k2 = Bgp.Prefix.Key.pack ~id:id2 ~peer:peer2 in
      a = b = (k1 = k2))

let test_key_range_extremes () =
  let open Bgp.Prefix.Key in
  let k = pack ~id:max_id ~peer:max_peer in
  Alcotest.(check int) "max id survives" max_id (id k);
  Alcotest.(check int) "max peer survives" max_peer (peer k);
  let raises f = try ignore (f ()); false with Invalid_argument _ -> true in
  Alcotest.(check bool) "peer over range rejected" true
    (raises (fun () -> pack ~id:0 ~peer:(max_peer + 1)));
  Alcotest.(check bool) "negative id rejected" true
    (raises (fun () -> pack ~id:(-1) ~peer:0));
  Alcotest.(check bool) "id over range rejected" true
    (raises (fun () -> pack ~id:(max_id + 1) ~peer:0))

(* --- QCheck: batched MRAI vs one naive timer per key --- *)

type op = { at : float; key : int; msg : int }

(* Deterministic interval, suppressed transmits for msg mod 5 = 0 (to
   exercise the per-key drain loop), everything logged as (key, msg)
   in transmit order. *)
let run_batched ops =
  let engine = Dessim.Engine.create () in
  let sent = ref [] in
  let since_fire = Hashtbl.create 8 in
  let mrai =
    Bgp.Mrai.create ~engine
      ~on_fire:(fun () -> Hashtbl.reset since_fire)
      ~draw_interval:(fun () -> 10.)
      ~transmit:(fun (key, msg) ->
        if msg mod 5 = 0 then false
        else begin
          (* "each pending key releases at most one message per expiry" *)
          if Hashtbl.mem since_fire key then
            failwith "key released twice in one expiry";
          Hashtbl.add since_fire key ();
          sent := (key, msg) :: !sent;
          true
        end)
      ()
  in
  List.iter
    (fun { at; key; msg } ->
      ignore
        (Dessim.Engine.schedule engine ~at (fun () ->
             Bgp.Mrai.offer ~key mrai (key, msg))))
    ops;
  Dessim.Engine.run engine;
  List.rev !sent

let run_naive ops =
  let engine = Dessim.Engine.create () in
  let sent = ref [] in
  let timers = Hashtbl.create 8 in
  let timer_for key =
    match Hashtbl.find_opt timers key with
    | Some t -> t
    | None ->
        let t =
          Bgp.Mrai.create ~engine
            ~draw_interval:(fun () -> 10.)
            ~transmit:(fun (key, msg) ->
              if msg mod 5 = 0 then false
              else begin
                sent := (key, msg) :: !sent;
                true
              end)
            ()
        in
        Hashtbl.add timers key t;
        t
  in
  List.iter
    (fun { at; key; msg } ->
      ignore
        (Dessim.Engine.schedule engine ~at (fun () ->
             Bgp.Mrai.offer (timer_for key) (key, msg))))
    ops;
  Dessim.Engine.run engine;
  List.rev !sent

let gen_ops =
  QCheck.Gen.(
    list_size (int_range 1 60)
      (map3
         (fun at key msg -> { at = float_of_int at /. 2.; key; msg })
         (int_range 0 50) (int_range 0 3) (int_range 0 30)))

let arb_ops =
  QCheck.make
    ~print:(fun ops ->
      String.concat ";"
        (List.map
           (fun o -> Printf.sprintf "(%g,k%d,m%d)" o.at o.key o.msg)
           ops))
    gen_ops

let prop_batched_mrai_equals_naive =
  QCheck.Test.make ~count:200
    ~name:"batched MRAI = one independent timer per key" arb_ops (fun ops ->
      (* engine schedule order within an instant must agree: keep the
         offers in nondecreasing time order *)
      let ops = List.stable_sort (fun a b -> compare a.at b.at) ops in
      run_batched ops = run_naive ops)

(* --- QCheck: mesh streaming scans = N independent post-hoc scans --- *)

let prop_mesh_scans_equal_posthoc =
  QCheck.Test.make ~count:8 ~name:"mesh streaming scans = post-hoc scans"
    QCheck.(pair (int_range 4 6) (int_range 1 500))
    (fun (n, seed) ->
      let graph = Topo.Generators.clique n in
      let o = Bgp.Mesh_sim.run ~graph ~victim:(seed mod n) ~seed () in
      o.converged
      && List.for_all2
           (fun (p, fib) (p', streamed) ->
             Bgp.Prefix.equal p p'
             && streamed
                = Loopscan.Scanner.scan ~fib
                    ~origin:(Bgp.Prefix.origin p)
                    ~from:o.t_fail ())
           o.prefixes o.loop_reports)

let () =
  let tc name f = Alcotest.test_case name `Quick f in
  Alcotest.run "mesh"
    [
      ( "differential",
        [
          tc "mesh(1 prefix) = multi on golden graphs"
            test_differential_golden_graphs;
          tc "mesh(1 prefix) = multi on 20 internet graphs"
            test_differential_internet_sweep;
          tc "run twice, identical trace" test_run_twice_deterministic;
          tc "every per-prefix event tagged in range"
            test_mesh_trace_prefix_tagged;
        ] );
      ( "packed-keys",
        [
          tc "range extremes" test_key_range_extremes;
          QCheck_alcotest.to_alcotest prop_key_roundtrip;
          QCheck_alcotest.to_alcotest prop_key_injective;
        ] );
      ( "batched-mrai",
        [ QCheck_alcotest.to_alcotest prop_batched_mrai_equals_naive ] );
      ( "loop-scans",
        [ QCheck_alcotest.to_alcotest prop_mesh_scans_equal_posthoc ] );
    ]
