(* Differential lockdown of the interned-path refactor (DESIGN.md §12).

   Two independent simulators answer the same question for a single
   prefix: [Routing_sim.run ~event:Tdown] and
   [Multi_sim.run ~origins:[o] ~victim:0] perform identical event
   schedules (same RNG split order, same originate/inject times, same
   link set), so their FIB histories and forwarding-loop reports must
   match change for change.  Any divergence — a missed intern, an
   arena-dependent comparison, an ordering change in the decision
   process — shows up here before it shows up in a golden digest.

   The second half pins the arena itself with QCheck properties against
   the obvious list model. *)

let fmt = Printf.sprintf

(* Exact-float renderings: determinism means times must match bit for
   bit, and %h never loses bits. *)
let change_repr (c : Netcore.Fib_history.change) =
  fmt "t=%h node=%d nh=%s" c.time c.node
    (match c.next_hop with None -> "-" | Some n -> string_of_int n)

let loop_repr (l : Loopscan.Scanner.loop) =
  fmt "members=%s trigger=%d birth=%h death=%s"
    (String.concat "," (List.map string_of_int l.members))
    l.trigger l.birth
    (match l.death with None -> "alive" | Some d -> fmt "%h" d)

let fib_changes fib =
  List.map change_repr (Netcore.Fib_history.changes_from fib ~from:0.)

let loops ~fib ~origin ~from =
  let r = Loopscan.Scanner.scan ~fib ~origin ~from () in
  List.map loop_repr r.loops

(* --- Routing_sim vs Multi_sim on one prefix --- *)

let check_single_prefix_equivalence ~name ~graph ~origin ~seed =
  let rs = Bgp.Routing_sim.run ~graph ~origin ~event:Tdown ~seed () in
  let ms = Bgp.Multi_sim.run ~graph ~origins:[ origin ] ~victim:0 ~seed () in
  let ms_fib =
    match ms.prefixes with
    | [ (_, fib) ] -> fib
    | l -> Alcotest.fail (fmt "%s: %d prefixes, want 1" name (List.length l))
  in
  let rs_fib = Netcore.Trace.fib rs.trace in
  Alcotest.(check bool) (name ^ ": both converged") true
    (rs.converged && ms.converged);
  Alcotest.(check (float 0.)) (name ^ ": t_fail") rs.t_fail ms.t_fail;
  Alcotest.(check (float 0.))
    (name ^ ": convergence end")
    rs.convergence_end ms.victim_convergence_end;
  Alcotest.(check int)
    (name ^ ": paths interned")
    rs.paths_interned ms.paths_interned;
  Alcotest.(check (list string))
    (name ^ ": FIB change history")
    (fib_changes rs_fib) (fib_changes ms_fib);
  Alcotest.(check (list string))
    (name ^ ": forwarding loops")
    (loops ~fib:rs_fib ~origin ~from:rs.t_fail)
    (loops ~fib:ms_fib ~origin ~from:ms.t_fail)

let tdown_fixture_graphs () =
  List.filter_map
    (fun (f : Bgpsim.Golden.fixture) ->
      match f.spec.event with
      | Tdown ->
          let graph, origin, _ = Bgpsim.Experiment.resolve f.spec in
          Some (f.name, graph, origin, f.spec.seed)
      | _ -> None)
    Bgpsim.Golden.fixtures

let test_equivalence_on_golden_fixtures () =
  let cases = tdown_fixture_graphs () in
  Alcotest.(check bool) "at least two T_down fixtures" true
    (List.length cases >= 2);
  List.iter
    (fun (name, graph, origin, seed) ->
      check_single_prefix_equivalence ~name ~graph ~origin ~seed)
    cases

(* 20 seeded internet-like topologies: 5 sizes x 4 seeds.  The origin
   follows the experiment convention (a stub node) so the T_down
   actually exercises multi-hop withdrawal waves. *)
let test_equivalence_on_random_topologies () =
  List.iter
    (fun n ->
      List.iter
        (fun seed ->
          let graph = Topo.Internet.generate ~seed n in
          let origin =
            match Topo.Internet.stub_nodes graph with
            | o :: _ -> o
            | [] -> 0
          in
          check_single_prefix_equivalence
            ~name:(fmt "internet-%d/seed-%d" n seed)
            ~graph ~origin ~seed)
        [ 1; 2; 3; 4 ])
    [ 10; 12; 14; 16; 18 ]

(* --- run-twice determinism over every golden fixture --- *)

let test_fixture_runs_are_deterministic () =
  List.iter
    (fun (f : Bgpsim.Golden.fixture) ->
      let graph, origin, event = Bgpsim.Experiment.resolve f.spec in
      let once () =
        Bgp.Routing_sim.run ~params:f.spec.params ~graph ~origin ~event
          ~seed:f.spec.seed ()
      in
      let a = once () and b = once () in
      Alcotest.(check int)
        (f.name ^ ": events executed")
        a.events_executed b.events_executed;
      Alcotest.(check int)
        (f.name ^ ": paths interned")
        a.paths_interned b.paths_interned;
      Alcotest.(check (list string))
        (f.name ^ ": FIB change history")
        (fib_changes (Netcore.Trace.fib a.trace))
        (fib_changes (Netcore.Trace.fib b.trace));
      Alcotest.(check (list string))
        (f.name ^ ": forwarding loops")
        (loops ~fib:(Netcore.Trace.fib a.trace) ~origin ~from:a.t_fail)
        (loops ~fib:(Netcore.Trace.fib b.trace) ~origin ~from:b.t_fail))
    Bgpsim.Golden.fixtures

(* --- streaming scanner vs post-hoc scanner --- *)

(* The online scanner ({!Loopscan.Stream}) must reproduce the post-hoc
   scan exactly: seed it with the snapshot just before [from], replay
   every change with [time >= from], and the resulting report has to
   match loop for loop (members, trigger, birth, death) as well as in
   its aggregates. *)
let check_stream_matches_posthoc ~name ~fib ~origin ~from =
  let post = Loopscan.Scanner.scan ~fib ~origin ~from () in
  let stream =
    Loopscan.Stream.create ~record:true ~origin
      ~initial:(Netcore.Fib_history.snapshot fib ~before:from)
      ()
  in
  List.iter
    (fun (c : Netcore.Fib_history.change) ->
      Loopscan.Stream.observe stream ~time:c.time ~node:c.node
        ~next_hop:c.next_hop)
    (Netcore.Fib_history.changes_from fib ~from);
  let online = Loopscan.Stream.report stream in
  Alcotest.(check (list string))
    (name ^ ": loop-for-loop")
    (List.map loop_repr post.loops)
    (List.map loop_repr online.loops);
  Alcotest.(check int)
    (name ^ ": max concurrent")
    post.max_concurrent online.max_concurrent;
  Alcotest.(check (option (float 0.)))
    (name ^ ": first birth")
    post.first_loop_birth online.first_loop_birth;
  Alcotest.(check (option (float 0.)))
    (name ^ ": last death")
    post.last_loop_death online.last_loop_death;
  Alcotest.(check int)
    (name ^ ": live loops")
    (List.length (List.filter (fun l -> l.Loopscan.Scanner.death = None) post.loops))
    (Loopscan.Stream.live_loops stream)

let test_stream_on_golden_fixtures () =
  List.iter
    (fun (f : Bgpsim.Golden.fixture) ->
      let graph, origin, event = Bgpsim.Experiment.resolve f.spec in
      let rs =
        Bgp.Routing_sim.run ~params:f.spec.params ~graph ~origin ~event
          ~seed:f.spec.seed ()
      in
      check_stream_matches_posthoc ~name:f.name
        ~fib:(Netcore.Trace.fib rs.trace) ~origin ~from:rs.t_fail)
    Bgpsim.Golden.fixtures

let test_stream_on_random_topologies () =
  List.iter
    (fun n ->
      List.iter
        (fun seed ->
          let graph = Topo.Internet.generate ~seed n in
          let origin =
            match Topo.Internet.stub_nodes graph with
            | o :: _ -> o
            | [] -> 0
          in
          let rs = Bgp.Routing_sim.run ~graph ~origin ~event:Tdown ~seed () in
          check_stream_matches_posthoc
            ~name:(fmt "internet-%d/seed-%d" n seed)
            ~fib:(Netcore.Trace.fib rs.trace) ~origin ~from:rs.t_fail)
        [ 1; 2; 3; 4 ])
    [ 10; 14; 18 ]

(* Replaying from t = 0 includes the originate wave: the stream starts
   from the empty FIB and must still agree. *)
let test_stream_from_cold_start () =
  let graph = Topo.Internet.generate ~seed:7 16 in
  let origin =
    match Topo.Internet.stub_nodes graph with o :: _ -> o | [] -> 0
  in
  let rs = Bgp.Routing_sim.run ~graph ~origin ~event:Tdown ~seed:7 () in
  check_stream_matches_posthoc ~name:"cold start"
    ~fib:(Netcore.Trace.fib rs.trace) ~origin ~from:0.

(* --- QCheck: the arena against the list model --- *)

(* Duplicate-free AS lists (of_list rejects repeats by design). *)
let distinct_list_gen =
  QCheck.Gen.(
    list_size (0 -- 8) (0 -- 200) >|= fun l ->
    let seen = Hashtbl.create 16 in
    List.filter
      (fun v ->
        if Hashtbl.mem seen v then false
        else begin
          Hashtbl.add seen v ();
          true
        end)
      l)

let arb_path =
  QCheck.make distinct_list_gen
    ~print:(fun l -> "[" ^ String.concat ";" (List.map string_of_int l) ^ "]")

let prop_roundtrip =
  QCheck.Test.make ~name:"arena: to_list (of_list l) = l" ~count:500 arb_path
    (fun l ->
      let table = Bgp.As_path.Table.create () in
      Bgp.As_path.to_list (Bgp.As_path.of_list ~table l) = l)

let prop_equal_iff_structural =
  QCheck.Test.make
    ~name:"arena: equal <=> structural, same and cross arena" ~count:500
    QCheck.(pair arb_path arb_path)
    (fun (l1, l2) ->
      let t = Bgp.As_path.Table.create () in
      let u = Bgp.As_path.Table.create () in
      let same =
        Bgp.As_path.equal
          (Bgp.As_path.of_list ~table:t l1)
          (Bgp.As_path.of_list ~table:t l2)
      in
      let cross =
        Bgp.As_path.equal
          (Bgp.As_path.of_list ~table:t l1)
          (Bgp.As_path.of_list ~table:u l2)
      in
      same = (l1 = l2) && cross = (l1 = l2))

let prop_same_arena_interning_is_physical =
  QCheck.Test.make ~name:"arena: re-interning returns the same handle"
    ~count:500 arb_path (fun l ->
      let table = Bgp.As_path.Table.create () in
      Bgp.As_path.of_list ~table l == Bgp.As_path.of_list ~table l)

let prop_contains_length_model =
  QCheck.Test.make ~name:"arena: contains/length agree with the list model"
    ~count:500
    QCheck.(pair arb_path (int_range 0 210))
    (fun (l, probe) ->
      let table = Bgp.As_path.Table.create () in
      let p = Bgp.As_path.of_list ~table l in
      Bgp.As_path.length p = List.length l
      && Bgp.As_path.contains p probe = List.mem probe l
      && List.for_all (fun v -> Bgp.As_path.contains p v) l)

let prop_table_size_bound =
  QCheck.Test.make
    ~name:"arena: size never exceeds distinct non-empty paths inserted"
    ~count:200
    QCheck.(list_of_size (QCheck.Gen.int_range 0 30) arb_path)
    (fun lists ->
      let table = Bgp.As_path.Table.create () in
      List.iter
        (fun l -> ignore (Bgp.As_path.of_list ~table l : Bgp.As_path.t))
        lists;
      let distinct =
        List.sort_uniq Stdlib.compare (List.filter (fun l -> l <> []) lists)
      in
      Bgp.As_path.Table.size table <= List.length distinct)

let prop_suffix_model =
  QCheck.Test.make ~name:"arena: suffix_from agrees with the list model"
    ~count:500
    QCheck.(pair arb_path (int_range 0 210))
    (fun (l, u) ->
      let table = Bgp.As_path.Table.create () in
      let p = Bgp.As_path.of_list ~table l in
      let rec drop_until = function
        | [] -> None
        | v :: _ as suffix when v = u -> Some suffix
        | _ :: rest -> drop_until rest
      in
      match (Bgp.As_path.suffix_from ~table p u, drop_until l) with
      | None, None -> true
      | Some s, Some model -> Bgp.As_path.to_list s = model
      | _ -> false)

let prop_compare_model =
  QCheck.Test.make ~name:"arena: compare is length-then-lex on the list model"
    ~count:500
    QCheck.(pair arb_path arb_path)
    (fun (l1, l2) ->
      let table = Bgp.As_path.Table.create () in
      let model =
        let c = Stdlib.compare (List.length l1) (List.length l2) in
        if c <> 0 then c else Stdlib.compare l1 l2
      in
      let got =
        Bgp.As_path.compare
          (Bgp.As_path.of_list ~table l1)
          (Bgp.As_path.of_list ~table l2)
      in
      Stdlib.compare got 0 = Stdlib.compare model 0)

let () =
  let tc name f = Alcotest.test_case name `Quick f in
  let qc = QCheck_alcotest.to_alcotest in
  Alcotest.run "differential"
    [
      ( "single-prefix equivalence",
        [
          tc "golden fixtures" test_equivalence_on_golden_fixtures;
          tc "20 random internet topologies"
            test_equivalence_on_random_topologies;
        ] );
      ( "determinism",
        [ tc "golden fixtures run twice" test_fixture_runs_are_deterministic ]
      );
      ( "streaming scanner",
        [
          tc "golden fixtures" test_stream_on_golden_fixtures;
          tc "12 random internet topologies" test_stream_on_random_topologies;
          tc "cold start from the empty FIB" test_stream_from_cold_start;
        ] );
      ( "arena properties",
        [
          qc prop_roundtrip;
          qc prop_equal_iff_structural;
          qc prop_same_arena_interning_is_physical;
          qc prop_contains_length_model;
          qc prop_table_size_bound;
          qc prop_suffix_model;
          qc prop_compare_model;
        ] );
    ]
