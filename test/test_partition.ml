(* The partitioned≡sequential wall (DESIGN.md §17).

   The space-partitioned conservative executor must be invisible:
   running any simulation on k partitions has to produce the same
   golden digest, the same FIB histories, the same loop reports and
   the same convergence numbers as the classic single engine — byte
   for byte, for every k.  These tests pin that contract on every
   golden fixture (including the full-mesh one), on 20 seeded
   internet graphs, on a scripted fault scenario, and on a mesh run
   with background churn; then QCheck drives the {!Dessim.Cluster}
   protocol directly with synthetic cross-partition cascades (causal
   safety: zero channel violations, identical commit order) and pins
   {!Bgpsim.Partition} against brute force (disjoint cover, exact
   cut, lookahead = true minimum cross-partition delay). *)

let fmt = Printf.sprintf

(* Exact-float renderings, as in test_differential.ml: determinism
   means times must match bit for bit, and %h never loses bits. *)
let change_repr (c : Netcore.Fib_history.change) =
  fmt "t=%h node=%d nh=%s" c.time c.node
    (match c.next_hop with None -> "-" | Some n -> string_of_int n)

let loop_repr (l : Loopscan.Scanner.loop) =
  fmt "members=%s trigger=%d birth=%h death=%s"
    (String.concat "," (List.map string_of_int l.members))
    l.trigger l.birth
    (match l.death with None -> "alive" | Some d -> fmt "%h" d)

let fib_changes fib =
  List.map change_repr (Netcore.Fib_history.changes_from fib ~from:0.)

let loops ~fib ~origin ~from =
  let r = Loopscan.Scanner.scan ~fib ~origin ~from () in
  List.map loop_repr r.loops

let ks = [ 2; 3; 4 ]

let partition_for ~graph ~k ~seed =
  Bgpsim.Partition.assignment (Bgpsim.Partition.compute ~seed ~graph ~k)

(* --- golden digests: every fixture, every k --- *)

let test_golden_digests () =
  List.iter
    (fun (f : Bgpsim.Golden.fixture) ->
      let seq = Bgpsim.Golden.digest f in
      List.iter
        (fun k ->
          Alcotest.(check string)
            (fmt "%s on %d partition(s)" f.name k)
            seq
            (Bgpsim.Golden.digest ~partitions:k f))
        [ 1; 2; 3; 4 ])
    Bgpsim.Golden.fixtures

let test_mesh_golden_digest () =
  let seq = Bgpsim.Golden.mesh_digest () in
  List.iter
    (fun k ->
      Alcotest.(check string)
        (fmt "%s on %d partition(s)" Bgpsim.Golden.mesh_name k)
        seq
        (Bgpsim.Golden.mesh_digest ~partitions:k ()))
    [ 1; 2; 3; 4 ]

(* --- full outcome equality, sequential vs each k --- *)

let check_routing_equiv ~name ~graph ~origin ~event ~seed =
  let seq = Bgp.Routing_sim.run ~graph ~origin ~event ~seed () in
  let seq_fib = Netcore.Trace.fib seq.trace in
  List.iter
    (fun k ->
      let name = fmt "%s k=%d" name k in
      let partitions = partition_for ~graph ~k ~seed in
      let par = Bgp.Routing_sim.run ~partitions ~graph ~origin ~event ~seed () in
      let par_fib = Netcore.Trace.fib par.trace in
      Alcotest.(check bool) (name ^ ": converged") seq.converged par.converged;
      Alcotest.(check int)
        (name ^ ": events executed")
        seq.events_executed par.events_executed;
      Alcotest.(check (float 0.)) (name ^ ": t_fail") seq.t_fail par.t_fail;
      Alcotest.(check (float 0.))
        (name ^ ": convergence end")
        seq.convergence_end par.convergence_end;
      Alcotest.(check int)
        (name ^ ": paths interned")
        seq.paths_interned par.paths_interned;
      Alcotest.(check (list string))
        (name ^ ": FIB change history")
        (fib_changes seq_fib) (fib_changes par_fib);
      Alcotest.(check (list string))
        (name ^ ": forwarding loops")
        (loops ~fib:seq_fib ~origin ~from:seq.t_fail)
        (loops ~fib:par_fib ~origin ~from:par.t_fail))
    ks

(* 20 seeded internet-like topologies: 5 sizes x 4 seeds, T_down at a
   stub origin (the test_differential.ml convention). *)
let test_internet_graphs () =
  List.iter
    (fun n ->
      List.iter
        (fun seed ->
          let graph = Topo.Internet.generate ~seed n in
          let origin =
            match Topo.Internet.stub_nodes graph with
            | o :: _ -> o
            | [] -> 0
          in
          check_routing_equiv
            ~name:(fmt "internet-%d/seed-%d" n seed)
            ~graph ~origin ~event:Bgp.Routing_sim.Tdown ~seed)
        [ 1; 2; 3; 4 ])
    [ 10; 12; 14; 16; 18 ]

(* A scripted fault schedule whose actions mutate speakers on both
   sides of the cut mid-event — link failure and recovery, a node
   crash/restart, a session reset — the paths where the executor must
   broadcast the injection clock (see Fabric.schedule_control). *)
let test_fault_scenario () =
  let graph = Topo.Internet.generate ~seed:5 14 in
  let origin =
    match Topo.Internet.stub_nodes graph with o :: _ -> o | [] -> 0
  in
  let a, b =
    match Topo.Graph.edges graph with
    | (a, b) :: _ -> (a, b)
    | [] -> Alcotest.fail "empty edge set"
  in
  let crash = (origin + 1) mod Topo.Graph.n_nodes graph in
  let scenario =
    Faults.Scenario.make ~name:"partition-faults"
      [
        Faults.Scenario.At (0., Link_fail (a, b));
        Faults.Scenario.At (40., Node_crash crash);
        Faults.Scenario.At (80., Node_restart crash);
        Faults.Scenario.At (120., Link_recover (a, b));
        Faults.Scenario.At (160., Session_reset (a, b));
      ]
  in
  check_routing_equiv ~name:"fault scenario" ~graph ~origin
    ~event:(Bgp.Routing_sim.Scenario scenario) ~seed:5

(* --- full-mesh multi-prefix run with background churn --- *)

let mesh_outcome ?partitions () =
  let graph = Topo.Internet.generate ~seed:3 12 in
  let victim = List.hd (Topo.Graph.min_degree_nodes graph) in
  let flappers =
    List.filteri (fun i _ -> i < 3)
      (List.filter (fun i -> i <> victim) (List.init 12 Fun.id))
  in
  let churn = { Bgp.Mesh_sim.period = 45.; cycles = 2; flappers } in
  (graph, victim, Bgp.Mesh_sim.run ~churn ?partitions ~graph ~victim ~seed:3 ())

let test_mesh_churn () =
  let graph, _, seq = mesh_outcome () in
  List.iter
    (fun k ->
      let name = fmt "mesh churn k=%d" k in
      let partitions = partition_for ~graph ~k ~seed:3 in
      let _, _, par = mesh_outcome ~partitions () in
      Alcotest.(check bool) (name ^ ": converged") seq.converged par.converged;
      Alcotest.(check int)
        (name ^ ": events executed")
        seq.events_executed par.events_executed;
      Alcotest.(check (float 0.))
        (name ^ ": victim convergence end")
        seq.victim_convergence_end par.victim_convergence_end;
      Alcotest.(check int)
        (name ^ ": victim messages")
        seq.victim_messages par.victim_messages;
      Alcotest.(check int)
        (name ^ ": background messages")
        seq.background_messages par.background_messages;
      List.iter2
        (fun (p1, fib1) (p2, fib2) ->
          Alcotest.(check string)
            (name ^ ": prefix order")
            (Format.asprintf "%a" Bgp.Prefix.pp p1)
            (Format.asprintf "%a" Bgp.Prefix.pp p2);
          Alcotest.(check (list string))
            (fmt "%s: FIB history of %s" name (Format.asprintf "%a" Bgp.Prefix.pp p1))
            (fib_changes fib1) (fib_changes fib2))
        seq.prefixes par.prefixes;
      List.iter2
        (fun (p1, (r1 : Loopscan.Scanner.report)) (_, r2) ->
          Alcotest.(check (list string))
            (fmt "%s: loop report of %s" name (Format.asprintf "%a" Bgp.Prefix.pp p1))
            (List.map loop_repr r1.loops)
            (List.map loop_repr r2.Loopscan.Scanner.loops))
        seq.loop_reports par.loop_reports)
    ks

(* --- run-twice determinism at every partition count --- *)

let test_partitioned_runs_are_deterministic () =
  let f = List.hd Bgpsim.Golden.fixtures in
  let graph, origin, event = Bgpsim.Experiment.resolve f.spec in
  List.iter
    (fun k ->
      let once () =
        let partitions = partition_for ~graph ~k ~seed:f.spec.seed in
        Bgp.Routing_sim.run ~params:f.spec.params ~partitions ~graph ~origin
          ~event ~seed:f.spec.seed ()
      in
      let a = once () and b = once () in
      Alcotest.(check int)
        (fmt "k=%d: events executed" k)
        a.events_executed b.events_executed;
      Alcotest.(check (list string))
        (fmt "k=%d: FIB change history" k)
        (fib_changes (Netcore.Trace.fib a.trace))
        (fib_changes (Netcore.Trace.fib b.trace));
      Alcotest.(check (list string))
        (fmt "k=%d: forwarding loops" k)
        (loops ~fib:(Netcore.Trace.fib a.trace) ~origin ~from:a.t_fail)
        (loops ~fib:(Netcore.Trace.fib b.trace) ~origin ~from:b.t_fail))
    [ 2; 3; 4 ]

(* --- QCheck: causal safety of the cluster protocol --- *)

(* A synthetic cascade: each root event recursively spawns one
   same-partition child and one cross-partition child (to the next
   partition around the ring, at >= lookahead ahead — the same
   contract the fabric's link transport guarantees by construction).
   Driving the identical cascade through a [Cluster] and through one
   flat [Engine] must commit events in the identical order, and the
   cluster must finish with zero channel protocol violations — i.e. no
   cross-partition message was ever delivered below its receiver's
   committed clock plus the lookahead. *)

type cascade = {
  casc_k : int;
  la_ms : int;  (* channel lookahead, milliseconds *)
  roots : (int * int * int) list;  (* partition, start ms, depth *)
  local_ms : int array;  (* same-partition child offsets (cyclic) *)
  cross_ms : int array;  (* cross-partition extra beyond lookahead *)
}

let ms i = float_of_int i /. 1000.

(* [schedule ~src ~dst ~at action] abstracts over the two drivers. *)
let run_cascade c ~schedule =
  let log = Buffer.create 256 in
  let draws = ref 0 in
  let next (arr : int array) =
    let v = arr.(!draws mod Array.length arr) in
    incr draws;
    v
  in
  let rec fire p t d () =
    Buffer.add_string log (fmt "p%d@%h;" p t);
    if d > 0 then begin
      let lt = t +. ms (next c.local_ms) in
      schedule ~src:p ~dst:p ~at:lt (fire p lt (d - 1));
      let q = (p + 1) mod c.casc_k in
      let ct = t +. ms c.la_ms +. ms (next c.cross_ms) in
      schedule ~src:p ~dst:q ~at:ct (fire q ct (d - 1))
    end
  in
  List.iter
    (fun (p, t0, d) ->
      let t0 = ms t0 in
      schedule ~src:p ~dst:p ~at:t0 (fire p t0 d))
    c.roots;
  log

let cluster_of c =
  let la = ms c.la_ms in
  let m =
    Array.init c.casc_k (fun p ->
        Array.init c.casc_k (fun q -> if p = q then infinity else la))
  in
  Dessim.Cluster.create ~lookahead:m ()

let prop_causal_safety =
  let gen =
    QCheck.Gen.(
      int_range 2 4 >>= fun casc_k ->
      int_range 1 5 >>= fun la_ms ->
      list_size (int_range 1 3)
        (triple (int_range 0 (casc_k - 1)) (int_range 0 20) (int_range 0 4))
      >>= fun roots ->
      array_size (int_range 1 4) (int_range 0 4) >>= fun local_ms ->
      array_size (int_range 1 4) (int_range 0 4) >>= fun cross_ms ->
      return { casc_k; la_ms; roots; local_ms; cross_ms })
  in
  let print c =
    fmt "k=%d la=%dms roots=[%s] local=[%s] cross=[%s]" c.casc_k c.la_ms
      (String.concat ";"
         (List.map (fun (p, t, d) -> fmt "(%d,%d,%d)" p t d) c.roots))
      (String.concat ";"
         (Array.to_list (Array.map string_of_int c.local_ms)))
      (String.concat ";"
         (Array.to_list (Array.map string_of_int c.cross_ms)))
  in
  QCheck.Test.make ~count:100
    ~name:
      "cluster: cascades commit in single-engine order with zero channel \
       violations"
    (QCheck.make gen ~print)
    (fun c ->
      let cl = cluster_of c in
      let cl_log =
        run_cascade c ~schedule:(fun ~src ~dst ~at action ->
            Dessim.Cluster.send cl ~src ~dst ~at action)
      in
      Dessim.Cluster.run cl;
      let e = Dessim.Engine.create () in
      let seq_log =
        run_cascade c ~schedule:(fun ~src:_ ~dst:_ ~at action ->
            let (_ : Dessim.Engine.handle) =
              Dessim.Engine.schedule e ~at action
            in
            ())
      in
      Dessim.Engine.run e;
      let stats = Dessim.Cluster.stats cl in
      stats.violations = 0
      && String.equal (Buffer.contents cl_log) (Buffer.contents seq_log)
      && Dessim.Cluster.events_executed cl = Dessim.Engine.events_executed e)

(* --- QCheck: Partition soundness against brute force --- *)

(* A deterministic, symmetric, varied per-edge delay. *)
let edge_delay a b =
  let lo = min a b and hi = max a b in
  0.001 *. float_of_int (1 + (((lo * 7) + (hi * 13)) mod 5))

let prop_partition_sound =
  let gen =
    QCheck.Gen.(
      int_range 8 24 >>= fun n ->
      int_range 1 9999 >>= fun seed ->
      int_range 1 4 >>= fun k ->
      return (n, seed, k))
  in
  QCheck.Test.make ~count:100
    ~name:
      "partition: disjoint cover, exact cut, lookahead = true min cross \
       delay"
    (QCheck.make gen ~print:(fun (n, seed, k) -> fmt "n=%d seed=%d k=%d" n seed k))
    (fun (n, seed, k) ->
      let graph = Topo.Internet.generate ~seed n in
      let part = Bgpsim.Partition.compute ~seed ~graph ~k in
      let assignment = Bgpsim.Partition.assignment part in
      let cap = (n + k - 1) / k in
      let sizes = Array.make k 0 in
      let in_range =
        Array.for_all
          (fun c ->
            if c >= 0 && c < k then begin
              sizes.(c) <- sizes.(c) + 1;
              true
            end
            else false)
          assignment
      in
      let covering =
        Array.length assignment = n
        && Array.for_all (fun s -> s >= 1 && s <= cap) sizes
      in
      (* members partition the node set *)
      let disjoint =
        List.sort_uniq compare
          (List.concat_map (Bgpsim.Partition.members part) (List.init k Fun.id))
        = List.init n Fun.id
      in
      let brute_cut =
        List.filter
          (fun (a, b) -> assignment.(a) <> assignment.(b))
          (Topo.Graph.edges graph)
      in
      let cut_exact = Bgpsim.Partition.cut part = brute_cut in
      let la = Bgpsim.Partition.lookahead part ~delay:edge_delay in
      let la_exact = ref true in
      for p = 0 to k - 1 do
        for q = 0 to k - 1 do
          let brute =
            List.fold_left
              (fun acc (a, b) ->
                if
                  (assignment.(a) = p && assignment.(b) = q)
                  || (assignment.(a) = q && assignment.(b) = p)
                then Float.min acc (edge_delay a b)
                else acc)
              infinity brute_cut
          in
          (* bgpsim-lint: allow D004 — exactness check wants bitwise equality *)
          if not (la.(p).(q) = brute && la.(q).(p) = brute) then
            la_exact := false
        done
      done;
      in_range && covering && disjoint && cut_exact && !la_exact)

let () =
  let tc name f = Alcotest.test_case name `Quick f in
  let qc = QCheck_alcotest.to_alcotest in
  Alcotest.run "partition"
    [
      ( "golden digests",
        [
          tc "fixtures at k=1..4" test_golden_digests;
          tc "mesh fixture at k=1..4" test_mesh_golden_digest;
        ] );
      ( "outcome equality",
        [
          tc "20 random internet topologies" test_internet_graphs;
          tc "scripted fault scenario" test_fault_scenario;
          tc "full mesh with background churn" test_mesh_churn;
        ] );
      ( "determinism",
        [ tc "partitioned runs twice at each k" test_partitioned_runs_are_deterministic ] );
      ( "protocol properties",
        [ qc prop_causal_safety; qc prop_partition_sound ] );
    ]
