(* Deep property tests: random-driver harnesses over the speaker and
   over whole simulations, checking the structural invariants the
   design rests on.

   Speaker invariants under arbitrary message sequences:
   - the Adj-RIB-In never contains a path through the speaker itself
     (poison reverse is total);
   - the chosen best route is always the policy-minimal usable RIB
     entry;
   - everything the speaker emits is consistent: announcements carry
     self-prepended, loop-free paths.

   Simulation invariants under random failure sequences:
   - after quiescence, forwarding is loop-free;
   - every node that still has a path in the surviving graph reaches
     the destination, following FIB next hops, in exactly the surviving
     graph's shortest-path distance (shortest-path policy);
   - nodes cut off from the destination have no route. *)


let prefix0 = Bgp.Prefix.make ~origin:0 ()

(* --- speaker random driver --- *)

type action =
  | Recv_announce of int * int list  (* peer index, tail of the path *)
  | Recv_withdraw of int
  | Peer_down of int
  | Peer_up of int

let action_gen ~peers =
  QCheck.Gen.(
    frequency
      [
        ( 6,
          map2
            (fun peer tail -> Recv_announce (peer, tail))
            (int_bound (peers - 1))
            (* a random path tail over a small universe of ASes ending
               at the origin; may include the speaker (node id 100) to
               exercise poison reverse *)
            (map
               (fun picks ->
                 List.sort_uniq compare picks |> fun l ->
                 List.filter (fun v -> v <> 0) l)
               (list_size (int_range 0 3) (int_range 90 110))) );
        (2, map (fun peer -> Recv_withdraw peer) (int_bound (peers - 1)));
        (1, map (fun peer -> Peer_down peer) (int_bound (peers - 1)));
        (1, map (fun peer -> Peer_up peer) (int_bound (peers - 1)));
      ])

let self_id = 100

let run_speaker_script actions =
  let engine = Dessim.Engine.create () in
  let peer_ids = [ 201; 202; 203 ] in
  let emitted = ref [] in
  let speaker =
    Bgp.Speaker.create ~engine ~config:Bgp.Config.default
      ~rng:(Dessim.Rng.create ~seed:1)
      ~node:self_id ~peers:peer_ids
      ~emit:(fun ~peer msg -> emitted := (peer, msg) :: !emitted)
      ~on_next_hop_change:(fun ~prefix:_ ~next_hop:_ -> ())
      ()
  in
  List.iter
    (fun action ->
      let peer_of i = List.nth peer_ids (i mod List.length peer_ids) in
      match action with
      | Recv_announce (peer, tail) ->
          let peer = peer_of peer in
          if List.mem peer (Bgp.Speaker.peers speaker) then begin
            (* the peer prepends itself; the path ends at origin 0 *)
            let full = (peer :: List.filter (fun v -> v <> peer) tail) @ [ 0 ] in
            match Bgp.As_path.of_list full with
            | p ->
                Bgp.Speaker.handle_msg speaker ~from:peer
                  (Bgp.Msg.Announce { prefix = prefix0; path = p })
            | exception Invalid_argument _ -> ()
          end
      | Recv_withdraw peer ->
          let peer = peer_of peer in
          if List.mem peer (Bgp.Speaker.peers speaker) then
            Bgp.Speaker.handle_msg speaker ~from:peer
              (Bgp.Msg.Withdraw { prefix = prefix0 })
      | Peer_down peer -> Bgp.Speaker.session_down speaker ~peer:(peer_of peer)
      | Peer_up peer -> Bgp.Speaker.session_up speaker ~peer:(peer_of peer))
    actions;
  (speaker, List.rev !emitted)

let prop_rib_never_contains_self =
  QCheck.Test.make ~name:"rib-in never holds a path through the speaker"
    ~count:300
    (QCheck.make (QCheck.Gen.list_size (QCheck.Gen.int_range 0 40) (action_gen ~peers:3)))
    (fun actions ->
      let speaker, _ = run_speaker_script actions in
      List.for_all
        (fun (_, p) -> not (Bgp.As_path.contains p self_id))
        (Bgp.Speaker.rib_in speaker prefix0))

let prop_best_is_policy_minimal =
  QCheck.Test.make ~name:"best route is the policy-minimal rib entry" ~count:300
    (QCheck.make (QCheck.Gen.list_size (QCheck.Gen.int_range 0 40) (action_gen ~peers:3)))
    (fun actions ->
      let speaker, _ = run_speaker_script actions in
      let rib = Bgp.Speaker.rib_in speaker prefix0 in
      match Bgp.Speaker.best speaker prefix0 with
      | None -> rib = []
      | Some (Some learned_from, best_path) ->
          List.mem (learned_from, best_path) rib
          && List.for_all
               (fun (peer, p) ->
                 Bgp.Policy.shortest_path.prefer ~self:self_id
                   { Bgp.Policy.peer = learned_from; path = best_path }
                   { Bgp.Policy.peer; path = p }
                 <= 0)
               rib
      | Some (None, _) -> false (* this speaker originates nothing *))

let prop_emitted_announcements_are_wellformed =
  QCheck.Test.make ~name:"emitted announcements are self-prepended and loop-free"
    ~count:300
    (QCheck.make (QCheck.Gen.list_size (QCheck.Gen.int_range 0 40) (action_gen ~peers:3)))
    (fun actions ->
      let _, emitted = run_speaker_script actions in
      List.for_all
        (fun (_, msg) ->
          match (msg : Bgp.Msg.t) with
          | Withdraw _ -> true
          | Announce { path; _ } -> Bgp.As_path.head path = Some self_id)
        emitted)

let prop_rib_tracks_session_churn =
  (* Arbitrary session_up/session_down interleavings (mixed with route
     traffic) must leave the Adj-RIB-In holding entries only for peers
     whose session is currently up, and the Loc-RIB consistent with it:
     the best route is drawn from the surviving entries, or absent when
     none remain. *)
  QCheck.Test.make ~name:"rib-in only holds live peers across session churn"
    ~count:300
    (QCheck.make (QCheck.Gen.list_size (QCheck.Gen.int_range 0 60) (action_gen ~peers:3)))
    (fun actions ->
      let speaker, _ = run_speaker_script actions in
      let live = Bgp.Speaker.peers speaker in
      let rib = Bgp.Speaker.rib_in speaker prefix0 in
      List.for_all (fun (peer, _) -> List.mem peer live) rib
      &&
      match Bgp.Speaker.best speaker prefix0 with
      | None -> rib = []
      | Some (Some learned_from, path) -> List.mem (learned_from, path) rib
      | Some (None, _) -> false (* this speaker originates nothing *))

(* --- random failure sequences over whole simulations --- *)

(* Apply a sequence of Tlong failures one at a time (each run converges
   before the next failure) and check the final forwarding state against
   the surviving graph.  We re-run from scratch on the cumulative
   surviving graph: by determinism this equals checking the final state,
   and keeps the harness simple and fast. *)
let prop_post_failure_forwarding_correct =
  let gen =
    QCheck.make
      QCheck.Gen.(
        pair (int_range 0 1000)
          (* which edges to kill: indices into the edge list *)
          (list_size (int_range 0 3) (int_range 0 50)))
  in
  QCheck.Test.make ~name:"forwarding matches surviving-graph shortest paths"
    ~count:25 gen
    (fun (seed, kill_indices) ->
      let graph = Topo.Internet.generate ~seed:(seed + 7) 16 in
      let origin = List.hd (Topo.Internet.stub_nodes graph) in
      (* fail a few random links, keeping only removals that do not
         disconnect... actually allow disconnection: unreachable nodes
         must then have no route *)
      let surviving =
        List.fold_left
          (fun g idx ->
            let edges = Topo.Graph.edges g in
            if edges = [] then g
            else
              let a, b = List.nth edges (idx mod List.length edges) in
              (* keep the graph's node set; allow disconnection *)
              Topo.Graph.remove_edge g a b)
          graph kill_indices
      in
      (* the routing sim requires a connected graph; emulate partition
         tolerance by checking only when it stays connected *)
      if not (Topo.Graph.is_connected surviving) then true
      else begin
        let o =
          Bgp.Routing_sim.run ~graph:surviving ~origin
            ~event:Bgp.Routing_sim.Tdown ~seed ()
        in
        (* check the *warm-up* state: converged forwarding before the
           Tdown event *)
        let fib = Netcore.Trace.fib o.trace in
        let dist = Topo.Graph.bfs_distances surviving ~from:origin in
        let time = o.t_fail -. 1. in
        List.for_all
          (fun v ->
            v = origin
            ||
            let rec walk node hops =
              if node = origin then Some hops
              else if hops > Topo.Graph.n_nodes surviving then None
              else
                match Netcore.Fib_history.lookup fib ~node ~time with
                | None -> None
                | Some next -> walk next (hops + 1)
            in
            walk v 0 = Some dist.(v))
          (Topo.Graph.nodes surviving)
      end)

let prop_tlong_end_state_loop_free =
  QCheck.Test.make ~name:"every Tlong end state is loop-free and complete"
    ~count:20
    (QCheck.make QCheck.Gen.(int_range 1 1000))
    (fun seed ->
      let graph = Topo.Internet.generate ~seed 14 in
      (* pick any survivable link, not just at the destination *)
      let origin = List.hd (Topo.Internet.stub_nodes graph) in
      let candidate =
        List.find_opt
          (fun (a, b) ->
            Topo.Graph.is_connected (Topo.Graph.remove_edge graph a b))
          (Topo.Graph.edges graph)
      in
      match candidate with
      | None -> true
      | Some (a, b) ->
          let o =
            Bgp.Routing_sim.run ~graph ~origin
              ~event:(Bgp.Routing_sim.Tlong { a; b })
              ~seed ()
          in
          let fib = Netcore.Trace.fib o.trace in
          let late = o.convergence_end +. 100. in
          let surviving = Topo.Graph.remove_edge graph a b in
          let dist = Topo.Graph.bfs_distances surviving ~from:origin in
          o.converged
          && List.for_all
               (fun v ->
                 v = origin
                 ||
                 let rec walk node hops =
                   if node = origin then Some hops
                   else if hops > Topo.Graph.n_nodes graph then None
                   else
                     match Netcore.Fib_history.lookup fib ~node ~time:late with
                     | None -> None
                     | Some next -> walk next (hops + 1)
                 in
                 walk v 0 = Some dist.(v))
               (Topo.Graph.nodes graph))

let () =
  Alcotest.run "properties"
    [
      ( "speaker-invariants",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_rib_never_contains_self;
            prop_best_is_policy_minimal;
            prop_emitted_announcements_are_wellformed;
            prop_rib_tracks_session_churn;
          ] );
      ( "simulation-invariants",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_post_failure_forwarding_correct;
            prop_tlong_end_state_loop_free;
          ] );
    ]
