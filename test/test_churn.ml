(* Tests for the sustained-churn service mode (lib/churn).

   The load-bearing properties:
   - determinism: identical configurations produce identical digest
     chains, event counts and counters;
   - checkpoint/resume exactness: a run killed at an epoch boundary
     and resumed reproduces the uninterrupted run's digest chain
     bit-for-bit (the golden-digest acceptance criterion);
   - the streaming loop scanner agrees with the post-hoc scanner on
     the same churn-generated FIB history;
   - arena compaction is invisible: a compact-every-epoch run and a
     never-compacting run emit identical traces, and re-interning
     preserves every handle's contents, hash and membership answers;
   - structured failure statuses: stall detection and the wall-clock
     watchdog yield [Stalled] / [Wall_expired], never a hang. *)

let fmt = Printf.sprintf

let graph_cache = Hashtbl.create 8

let graph_of n =
  match Hashtbl.find_opt graph_cache n with
  | Some g -> g
  | None ->
      let g = Topo.Internet.generate ~seed:11 n in
      Hashtbl.add graph_cache n g;
      g

let origin_of g = List.hd (Topo.Graph.min_degree_nodes g)

let base_cfg ?(seed = 3) ?(n = 20) ?(epochs = 6) ?(flap_rate = 6.)
    ?checkpoint_dir ?(checkpoint_every = 3) ?(compact_every = 4)
    ?kill_after_epoch ?stall_epochs ?(record_loops = false)
    ?(keep_fib_history = false) () =
  let graph = graph_of n in
  Churn.Driver.make ~seed
    ~workload:(Churn.Workload.make ~epoch_len:120. ~flap_rate ())
    ~epochs ?checkpoint_dir ~checkpoint_every ~compact_every
    ?kill_after_epoch ?stall_epochs ~record_loops ~keep_fib_history ~graph
    ~origin:(origin_of graph) ()

let temp_dir =
  let counter = ref 0 in
  fun () ->
    incr counter;
    let path =
      Filename.concat
        (Filename.get_temp_dir_name ())
        (fmt "bgpsim-churn-test-%d-%d" (Unix.getpid ()) !counter)
    in
    if Sys.file_exists path then
      Array.iter
        (fun f -> Sys.remove (Filename.concat path f))
        (Sys.readdir path)
    else Sys.mkdir path 0o700;
    path

let chain r =
  match r.Churn.Driver.chain_digest with
  | Some d -> d
  | None -> Alcotest.fail "expected a chain digest"

(* --- determinism --- *)

let test_run_twice_identical () =
  let a = Churn.Driver.run (base_cfg ()) in
  let b = Churn.Driver.run (base_cfg ()) in
  Alcotest.(check string) "chain digest" (chain a) (chain b);
  Alcotest.(check int) "events" a.events_executed b.events_executed;
  Alcotest.(check (float 0.)) "vtime" a.vtime b.vtime;
  Alcotest.(check int) "updates sent" a.counters.Obs.Counters.s_updates_sent
    b.counters.Obs.Counters.s_updates_sent;
  Alcotest.(check int) "fib changes" a.counters.Obs.Counters.s_fib_changes
    b.counters.Obs.Counters.s_fib_changes;
  Alcotest.(check int) "loops started" a.loop_totals.Loopscan.Stream.loops_started
    b.loop_totals.Loopscan.Stream.loops_started;
  Alcotest.(check bool) "completed" true (a.status = Churn.Driver.Completed)

let test_workload_deterministic_and_paired () =
  let graph = graph_of 20 in
  let gen () =
    Churn.Workload.generate
      (Churn.Workload.make ~epoch_len:100. ~flap_rate:12. ())
      ~graph
      ~rng:(Dessim.Rng.create ~seed:42)
  in
  let steps = gen () in
  Alcotest.(check bool) "same rng state, same schedule" true (gen () = steps);
  Alcotest.(check bool) "non-trivial schedule" true (List.length steps > 0);
  List.iter
    (fun { Churn.Workload.at; _ } ->
      Alcotest.(check bool) (fmt "step at %g inside epoch" at) true
        (at >= 0. && at <= 90.))
    steps;
  (* every fail is matched by a recover on the same link, and every
     origin withdrawal by a later re-announcement: epochs return the
     network to full-up *)
  let count pred = List.length (List.filter pred steps) in
  let fails l =
    count (fun s -> s.Churn.Workload.action = Churn.Workload.Fault (Faults.Scenario.Link_fail l))
  in
  let recovers l =
    count (fun s ->
        s.Churn.Workload.action
        = Churn.Workload.Fault (Faults.Scenario.Link_recover l))
  in
  List.iter
    (fun l ->
      Alcotest.(check int)
        (fmt "link (%d,%d) fails = recovers" (fst l) (snd l))
        (fails l) (recovers l))
    (Topo.Graph.edges graph);
  Alcotest.(check int) "origin downs = ups"
    (count (fun s -> s.Churn.Workload.action = Churn.Workload.Origin_down))
    (count (fun s -> s.Churn.Workload.action = Churn.Workload.Origin_up));
  match
    List.rev
      (List.filter
         (fun s ->
           s.Churn.Workload.action = Churn.Workload.Origin_down
           || s.Churn.Workload.action = Churn.Workload.Origin_up)
         steps)
  with
  | [] -> ()
  | last :: _ ->
      Alcotest.(check bool) "origin ends announced" true
        (last.Churn.Workload.action = Churn.Workload.Origin_up)

(* --- checkpoint/resume equivalence (the golden-digest criterion) --- *)

let test_resume_matches_uninterrupted () =
  let dir_a = temp_dir () and dir_b = temp_dir () in
  let full =
    Churn.Driver.run (base_cfg ~epochs:7 ~checkpoint_dir:dir_a ())
  in
  let killed =
    Churn.Driver.run
      (base_cfg ~epochs:7 ~checkpoint_dir:dir_b ~kill_after_epoch:3 ())
  in
  (match killed.status with
  | Churn.Driver.Killed { after_epoch } ->
      Alcotest.(check int) "killed at the requested boundary" 3 after_epoch
  | s -> Alcotest.fail ("expected Killed, got " ^ Churn.Driver.status_name s));
  let ckpt =
    match killed.last_checkpoint with
    | Some p -> p
    | None -> Alcotest.fail "kill must leave a checkpoint"
  in
  let resumed =
    Churn.Driver.run ~resume_from:ckpt
      (base_cfg ~epochs:7 ~checkpoint_dir:dir_b ())
  in
  Alcotest.(check bool) "resumed run completed" true
    (resumed.status = Churn.Driver.Completed);
  Alcotest.(check int) "epochs" full.epochs_completed resumed.epochs_completed;
  Alcotest.(check string) "chain digest identical across kill+resume"
    (chain full) (chain resumed);
  Alcotest.(check int) "cumulative events" full.events_executed
    resumed.events_executed;
  Alcotest.(check (float 0.)) "vtime" full.vtime resumed.vtime;
  Alcotest.(check int) "updates sent"
    full.counters.Obs.Counters.s_updates_sent
    resumed.counters.Obs.Counters.s_updates_sent;
  Alcotest.(check int) "fib changes" full.counters.Obs.Counters.s_fib_changes
    resumed.counters.Obs.Counters.s_fib_changes;
  let ta = full.loop_totals and tb = resumed.loop_totals in
  Alcotest.(check int) "loops started" ta.Loopscan.Stream.loops_started
    tb.Loopscan.Stream.loops_started;
  Alcotest.(check int) "loops resolved" ta.Loopscan.Stream.loops_resolved
    tb.Loopscan.Stream.loops_resolved;
  Alcotest.(check (float 1e-9)) "loop seconds"
    ta.Loopscan.Stream.total_loop_seconds tb.Loopscan.Stream.total_loop_seconds

let test_resume_from_every_checkpoint () =
  (* resuming from ANY boundary checkpoint of one run reproduces the
     same final chain *)
  let dir = temp_dir () in
  let full =
    Churn.Driver.run
      (base_cfg ~epochs:6 ~checkpoint_dir:dir ~checkpoint_every:2 ())
  in
  let checkpoints =
    Sys.readdir dir |> Array.to_list
    |> List.filter (fun f -> Filename.check_suffix f ".bin")
    |> List.map (Filename.concat dir)
  in
  Alcotest.(check bool) "several checkpoints on disk" true
    (List.length checkpoints >= 3);
  List.iter
    (fun ckpt ->
      let resumed =
        Churn.Driver.run ~resume_from:ckpt (base_cfg ~epochs:6 ())
      in
      Alcotest.(check string)
        (Filename.basename ckpt ^ " replays to the same chain")
        (chain full) (chain resumed))
    checkpoints

let test_checkpoint_refuses_mismatch () =
  let dir = temp_dir () in
  let killed =
    Churn.Driver.run
      (base_cfg ~epochs:4 ~checkpoint_dir:dir ~kill_after_epoch:2 ())
  in
  let ckpt = Option.get killed.Churn.Driver.last_checkpoint in
  (try
     ignore
       (Churn.Driver.run ~resume_from:ckpt (base_cfg ~seed:4 ~epochs:4 ())
         : Churn.Driver.result);
     Alcotest.fail "resume under a different seed must be refused"
   with Invalid_argument msg ->
     Alcotest.(check bool) "names the fingerprint" true
       (String.length msg > 0
       && String.index_opt msg 'f' <> None));
  (* corrupt header *)
  let bogus = Filename.concat dir "ckpt-bogus.bin" in
  let oc = open_out_bin bogus in
  output_string oc "not a checkpoint at all";
  close_out oc;
  Alcotest.(check bool) "foreign file rejected" true
    (try
       ignore (Churn.Checkpoint.read bogus : Churn.Checkpoint.t);
       false
     with Failure _ -> true)

let test_checkpoint_incompatible_version () =
  let dir = temp_dir () in
  let stale = Filename.concat dir "ckpt-000004.bin" in
  let oc = open_out_bin stale in
  output_string oc "bgpsim-churn-ckpt v1\nold marshalled payload";
  close_out oc;
  (* structured error, not a generic Failure: callers (the CLI) map it
     to a dedicated exit code *)
  (try
     ignore (Churn.Checkpoint.read stale : Churn.Checkpoint.t);
     Alcotest.fail "v1 checkpoint must be rejected"
   with Churn.Checkpoint.Incompatible_version { path; found; expected } ->
     Alcotest.(check string) "path reported" stale path;
     Alcotest.(check int) "found version" 1 found;
     Alcotest.(check int) "expected version" Churn.Checkpoint.version expected);
  (* the same structured exception surfaces through Driver.run *)
  try
    ignore
      (Churn.Driver.run ~resume_from:stale (base_cfg ())
        : Churn.Driver.result);
    Alcotest.fail "driver must refuse a v1 checkpoint"
  with Churn.Checkpoint.Incompatible_version _ -> ()

(* --- trace sink tee: the driver's external sink sees the same events
   the digest chain is built from --- *)

let test_driver_sink_matches_digest_chain () =
  let events = ref [] in
  let sink = Obs.Sink.fn (fun ev -> events := ev :: !events) in
  let r = Churn.Driver.run ~sink (base_cfg ~epochs:3 ()) in
  let events = List.rev !events in
  Alcotest.(check bool) "sink saw events" true (List.length events > 0);
  (* recompute the chain from the sink's events, split at epoch
     boundaries the same way the driver does: warm-up events (before
     scan_begin) are excluded, and each epoch's binary frames are
     digested then folded into the chain *)
  let r2 =
    let infos = ref [] in
    let collect ei = infos := ei :: !infos in
    ignore
      (Churn.Driver.run ~on_epoch:collect (base_cfg ~epochs:3 ())
        : Churn.Driver.result);
    List.rev !infos
  in
  let buf = Buffer.create 4096 in
  let chain_acc = ref "" in
  let remaining = ref events in
  (* drop warm-up: events at or before scan_begin belong to warm-up *)
  remaining :=
    List.filter (fun ev -> Obs.Event.time ev > r.scan_begin) !remaining;
  List.iter
    (fun (ei : Churn.Driver.epoch_info) ->
      let this_epoch, rest =
        List.partition (fun ev -> Obs.Event.time ev <= ei.ei_vtime) !remaining
      in
      remaining := rest;
      Buffer.clear buf;
      List.iter (Obs.Binary.encode buf) this_epoch;
      let d = Digest.to_hex (Digest.string (Buffer.contents buf)) in
      Alcotest.(check (option string))
        (fmt "epoch %d digest" ei.ei_epoch)
        ei.ei_digest (Some d);
      chain_acc := Digest.to_hex (Digest.string (!chain_acc ^ d)))
    r2;
  Alcotest.(check string) "chain recomputed from the sink's events"
    (chain r) !chain_acc

let test_checkpoint_latest () =
  let dir = temp_dir () in
  ignore
    (Churn.Driver.run
       (base_cfg ~epochs:5 ~checkpoint_dir:dir ~checkpoint_every:2 ())
      : Churn.Driver.result);
  match Churn.Checkpoint.latest ~dir with
  | Some (epoch, path) ->
      Alcotest.(check int) "latest is the final boundary" 5 epoch;
      Alcotest.(check bool) "path exists" true (Sys.file_exists path)
  | None -> Alcotest.fail "expected checkpoints"

(* --- structured statuses: stall and wall budget --- *)

let test_stall_detection () =
  let r =
    Churn.Driver.run (base_cfg ~flap_rate:0. ~epochs:50 ~stall_epochs:2 ())
  in
  (match r.status with
  | Churn.Driver.Stalled { idle_epochs } ->
      Alcotest.(check int) "reported idle epochs" 2 idle_epochs
  | s -> Alcotest.fail ("expected Stalled, got " ^ Churn.Driver.status_name s));
  Alcotest.(check int) "stopped at the stall, not the horizon" 2
    r.epochs_completed

let test_wall_budget_graceful () =
  let wd = Faults.Watchdog.create ~clock:(fun () -> 0.) ~max_wall_s:0. () in
  let dir = temp_dir () in
  let r = Churn.Driver.run ~watchdog:wd (base_cfg ~checkpoint_dir:dir ()) in
  Alcotest.(check bool) "wall expired" true
    (r.status = Churn.Driver.Wall_expired);
  Alcotest.(check int) "no epoch completed" 0 r.epochs_completed;
  (* graceful: the result still carries counters and totals *)
  Alcotest.(check int) "no loops" 0 r.loop_totals.Loopscan.Stream.loops_started

let test_wall_budget_mid_horizon () =
  (* expire after three clock queries: the run cuts at a later epoch,
     reporting the epochs it actually finished *)
  let calls = ref 0 in
  let clock () =
    incr calls;
    if !calls > 12 then 1e9 else 0.
  in
  let wd = Faults.Watchdog.create ~clock ~max_wall_s:1. () in
  let r = Churn.Driver.run ~watchdog:wd (base_cfg ~epochs:1000 ()) in
  Alcotest.(check bool) "wall expired mid-horizon" true
    (r.status = Churn.Driver.Wall_expired);
  Alcotest.(check bool) "made some progress" true (r.epochs_completed >= 1);
  Alcotest.(check bool) "cut before the horizon" true
    (r.epochs_completed < 1000)

(* --- streaming scanner vs post-hoc scanner on a churn history --- *)

let loop_repr (l : Loopscan.Scanner.loop) =
  fmt "members=%s trigger=%d birth=%h death=%s"
    (String.concat "," (List.map string_of_int l.members))
    l.trigger l.birth
    (match l.death with None -> "alive" | Some d -> fmt "%h" d)

let test_stream_matches_posthoc_on_churn () =
  let r =
    Churn.Driver.run
      (base_cfg ~epochs:6 ~flap_rate:8. ~record_loops:true
         ~keep_fib_history:true ())
  in
  let fib = Option.get r.fib_history in
  let streaming = Option.get r.loops in
  (* [scan_begin] is the warm-up drain instant: changes AT it belong to
     the scanner's starting snapshot, strictly-later ones to the scan *)
  let post =
    Loopscan.Scanner.scan ~fib ~origin:(origin_of (graph_of 20))
      ~from:(Float.succ r.scan_begin) ()
  in
  Alcotest.(check bool) "churn produced loops" true
    (List.length post.loops > 0);
  Alcotest.(check (list string)) "loop-for-loop identical"
    (List.map loop_repr post.loops)
    (List.map loop_repr streaming.loops);
  Alcotest.(check int) "max concurrent" post.max_concurrent
    streaming.max_concurrent;
  Alcotest.(check (option (float 0.))) "first birth" post.first_loop_birth
    streaming.first_loop_birth;
  Alcotest.(check (option (float 0.))) "last death" post.last_loop_death
    streaming.last_loop_death

(* --- arena compaction properties --- *)

let test_compaction_invisible_and_bounding () =
  let every = Churn.Driver.run (base_cfg ~compact_every:1 ~epochs:8 ()) in
  let never =
    Churn.Driver.run (base_cfg ~compact_every:1_000_000 ~epochs:8 ())
  in
  Alcotest.(check string) "identical trace chains" (chain never) (chain every);
  Alcotest.(check int) "identical events" never.events_executed
    every.events_executed;
  Alcotest.(check bool)
    (fmt "compaction bounds the arena (%d <= %d)" every.arena_size
       never.arena_size)
    true
    (every.arena_size <= never.arena_size)

let prop_compaction_oracle =
  QCheck.Test.make ~name:"churn: compaction never changes the trace" ~count:6
    QCheck.(
      triple (int_range 10 16) (int_range 1 1000) (int_range 3 5))
    (fun (n, seed, epochs) ->
      let cfg ~compact_every =
        let graph = graph_of n in
        Churn.Driver.make ~seed
          ~workload:(Churn.Workload.make ~epoch_len:90. ~flap_rate:5. ())
          ~epochs ~compact_every ~graph ~origin:(origin_of graph) ()
      in
      let a = Churn.Driver.run (cfg ~compact_every:1) in
      let b = Churn.Driver.run (cfg ~compact_every:1_000_000) in
      a.Churn.Driver.chain_digest = b.Churn.Driver.chain_digest
      && a.Churn.Driver.events_executed = b.Churn.Driver.events_executed
      && a.Churn.Driver.arena_size <= b.Churn.Driver.arena_size)

(* Duplicate-free AS lists (of_list rejects repeats by design). *)
let distinct_list_gen =
  QCheck.Gen.(
    list_size (0 -- 8) (0 -- 200) >|= fun l ->
    let seen = Hashtbl.create 16 in
    List.filter
      (fun v ->
        if Hashtbl.mem seen v then false
        else begin
          Hashtbl.add seen v ();
          true
        end)
      l)

let prop_reintern_preserves_handles =
  QCheck.Test.make
    ~name:"churn: reintern preserves contents, hash and membership"
    ~count:300
    QCheck.(
      make
        Gen.(pair (list_size (1 -- 20) distinct_list_gen) (0 -- 210))
        ~print:(fun (ls, probe) ->
          fmt "probe=%d paths=%s" probe
            (String.concat " "
               (List.map
                  (fun l ->
                    "[" ^ String.concat ";" (List.map string_of_int l) ^ "]")
                  ls))))
    (fun (lists, probe) ->
      let old_arena = Bgp.As_path.Table.create () in
      let handles =
        List.map (fun l -> Bgp.As_path.of_list ~table:old_arena l) lists
      in
      let fresh = Bgp.As_path.Table.create () in
      List.for_all2
        (fun l p ->
          let q = Bgp.As_path.reintern ~table:fresh p in
          Bgp.As_path.to_list q = l
          && Bgp.As_path.hash q = Bgp.As_path.hash p
          && Bgp.As_path.length q = List.length l
          && Bgp.As_path.contains q probe = List.mem probe l
          && List.for_all (fun v -> Bgp.As_path.contains q v) l
          && Bgp.As_path.equal q p)
        lists handles
      && Bgp.As_path.Table.size fresh <= Bgp.As_path.Table.size old_arena)

let () =
  let tc name f = Alcotest.test_case name `Quick f in
  let qc = QCheck_alcotest.to_alcotest in
  Alcotest.run "churn"
    [
      ( "determinism",
        [
          tc "run twice, identical chain" test_run_twice_identical;
          tc "workload schedule deterministic and paired"
            test_workload_deterministic_and_paired;
        ] );
      ( "checkpoint/resume",
        [
          tc "kill + resume = uninterrupted" test_resume_matches_uninterrupted;
          tc "resume from every checkpoint" test_resume_from_every_checkpoint;
          tc "mismatch and corruption refused" test_checkpoint_refuses_mismatch;
          tc "incompatible version structured"
            test_checkpoint_incompatible_version;
          tc "latest finds the final boundary" test_checkpoint_latest;
        ] );
      ( "trace sink",
        [
          tc "sink events reproduce the digest chain"
            test_driver_sink_matches_digest_chain;
        ] );
      ( "statuses",
        [
          tc "stall detection" test_stall_detection;
          tc "wall budget from the start" test_wall_budget_graceful;
          tc "wall budget mid-horizon" test_wall_budget_mid_horizon;
        ] );
      ( "streaming scanner",
        [
          tc "stream = post-hoc on churn history"
            test_stream_matches_posthoc_on_churn;
        ] );
      ( "compaction",
        [
          tc "compaction invisible, arena bounded"
            test_compaction_invisible_and_bounding;
          qc prop_compaction_oracle;
          qc prop_reintern_preserves_handles;
        ] );
    ]
