(* Tests for the Parallel domain pool and the parallel sweep paths:
   ordered gather, sequential/parallel equivalence (including failure
   order), clean shutdown after a raising run, and the RNG-hygiene
   guard.  Runs compare with [wall_clock_s] zeroed out — it is the one
   field documented to differ between sequential and pooled runs. *)

open Bgpsim

let strip (m : Metrics.Run_metrics.t) = { m with wall_clock_s = 0. }

let strip_robust (r : Sweep.robust) =
  { r with Sweep.metrics = Option.map strip r.metrics }

(* --- pool basics --- *)

let test_run_preserves_order () =
  Parallel.with_pool ~jobs:4 @@ fun pool ->
  let results =
    Parallel.run pool (List.init 20 (fun i () -> i * i))
  in
  Alcotest.(check (list int))
    "squares in submission order"
    (List.init 20 (fun i -> i * i))
    (List.map Result.get_ok results)

let test_map_matches_sequential () =
  let xs = List.init 15 (fun i -> i) in
  let f x = (x * 7919) mod 997 in
  let seq = List.map f xs in
  let par = Parallel.map ~jobs:3 f xs |> List.map Result.get_ok in
  Alcotest.(check (list int)) "map ordering" seq par

let test_jobs_clamped () =
  Parallel.with_pool ~jobs:0 @@ fun pool ->
  Alcotest.(check int) "jobs 0 clamps to 1" 1 (Parallel.jobs pool);
  Alcotest.check_raises "negative jobs"
    (Invalid_argument "Parallel.create: negative jobs") (fun () ->
      ignore (Parallel.create ~jobs:(-1) ()))

let test_exception_isolated () =
  Parallel.with_pool ~jobs:2 @@ fun pool ->
  let results =
    Parallel.run pool
      [
        (fun () -> 1);
        (fun () -> failwith "boom");
        (fun () -> 3);
      ]
  in
  match results with
  | [ Ok 1; Error (Failure msg); Ok 3 ] when msg = "boom" -> ()
  | _ -> Alcotest.fail "expected [Ok 1; Error boom; Ok 3]"

(* --- shutdown --- *)

let test_shutdown_after_raise () =
  let pool = Parallel.create ~jobs:2 () in
  let results =
    Parallel.run pool [ (fun () -> failwith "die"); (fun () -> 2) ]
  in
  Alcotest.(check int) "both results gathered" 2 (List.length results);
  (* all worker domains must join even though a run raised *)
  Parallel.shutdown pool;
  Parallel.shutdown pool (* idempotent *);
  Alcotest.check_raises "run after shutdown"
    (Invalid_argument "Parallel.run: pool is shut down") (fun () ->
      ignore (Parallel.run pool [ (fun () -> 1) ]))

(* --- RNG hygiene --- *)

let test_rng_hygiene_fires () =
  Parallel.with_pool ~jobs:2 ~check_rng_hygiene:true @@ fun pool ->
  let results =
    Parallel.run pool
      [ (fun () -> ignore (Random.bits ())); (fun () -> ()) ]
  in
  (match results with
  | [ Error (Parallel.Rng_hygiene _); Ok () ] -> ()
  | _ -> Alcotest.fail "expected the Random-drawing run flagged, the clean one Ok")

let test_rng_hygiene_passes_simulation () =
  (* a real experiment run draws only from its own Dessim.Rng streams *)
  Parallel.with_pool ~jobs:1 ~check_rng_hygiene:true @@ fun pool ->
  let spec =
    { (Experiment.default_spec (Experiment.Clique 5)) with mrai = 5. }
  in
  match Parallel.run pool [ (fun () -> Experiment.metrics spec) ] with
  | [ Ok m ] -> Alcotest.(check bool) "converged" true m.converged
  | [ Error exn ] -> Alcotest.fail (Printexc.to_string exn)
  | _ -> Alcotest.fail "expected one result"

(* --- sweep equivalence --- *)

let clique_sweep ?pool ?jobs () =
  Sweep.series ?pool ?jobs
    ~make:(fun n -> Experiment.default_spec (Experiment.Clique n))
    ~seeds:[ 1; 2; 3 ]
    [ 5; 10 ]

let test_series_deterministic_across_jobs () =
  let norm series = List.map (fun (x, m) -> (x, strip m)) series in
  let seq = norm (clique_sweep ()) in
  List.iter
    (fun jobs ->
      let par = norm (clique_sweep ~jobs ()) in
      Alcotest.(check bool)
        (Printf.sprintf "jobs=%d identical to sequential" jobs)
        true (seq = par))
    [ 1; 2; 4 ]

let test_series_robust_parallel_equals_sequential () =
  (* mixed batch: sizes 4 and 6 run fine, origin 99 on a 5-node custom
     graph raises in every seed — the robust sweep must record those
     failures in seed order and still average the good runs, with the
     pooled run byte-identical to the sequential one *)
  let make = function
    | `Good n -> { (Experiment.default_spec (Experiment.Clique n)) with mrai = 5. }
    | `Bad ->
        Experiment.default_spec
          (Experiment.Custom
             { graph = Topo.Generators.clique 5; origin = 99; name = "bad" })
  in
  let xs = [ `Good 4; `Bad; `Good 6 ] in
  let seeds = [ 1; 2; 3 ] in
  let norm series = List.map (fun (x, r) -> (x, strip_robust r)) series in
  let seq = norm (Sweep.series_robust ~make ~seeds xs) in
  let par = norm (Sweep.series_robust ~jobs:4 ~make ~seeds xs) in
  Alcotest.(check bool) "parallel equals sequential" true (seq = par);
  (* sanity on the sequential shape itself *)
  (match List.assoc `Bad seq with
  | { Sweep.metrics = None; attempted = 3; completed = 0; failures; _ } ->
      Alcotest.(check (list int)) "failure seeds in order" [ 1; 2; 3 ]
        (List.map (fun (f : Sweep.run_failure) -> f.seed) failures);
      let contains s sub =
        let n = String.length s and m = String.length sub in
        let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
        go 0
      in
      List.iter
        (fun (f : Sweep.run_failure) ->
          Alcotest.(check bool) "message names the origin check" true
            (contains f.message "origin out of range"))
        failures
  | _ -> Alcotest.fail "bad point should fail all three seeds");
  match List.assoc (`Good 4) seq with
  | { Sweep.metrics = Some m; completed = 3; failures = []; _ } ->
      Alcotest.(check bool) "good point averaged" true m.converged
  | _ -> Alcotest.fail "good point should complete all seeds"

(* --- dispatch-overhead fallback --- *)

(* Micro-runs through a [?jobs] sweep must never pay for a temporary
   pool: a clique-4 metrics run finishes far below the 1 ms dispatch
   threshold, so the probe has to keep the whole batch in the calling
   domain.  This is the regression test for the sweep-pool overhead
   bug, wired through the [?on_dispatch] hook. *)
let test_jobs_falls_back_for_micro_runs () =
  let dispatches = ref [] in
  let on_dispatch d = dispatches := d :: !dispatches in
  let spec =
    { (Experiment.default_spec (Experiment.Clique 4)) with mrai = 1. }
  in
  let seq = strip (Sweep.over_seeds spec ~seeds:[ 1; 2; 3 ]) in
  let probed =
    strip (Sweep.over_seeds ~on_dispatch ~jobs:4 spec ~seeds:[ 1; 2; 3 ])
  in
  (match !dispatches with
  | [ Sweep.Probed_sequential { probe_s } ] ->
      Alcotest.(check bool)
        (Printf.sprintf "probe (%g s) below threshold" probe_s)
        true
        (probe_s < Sweep.dispatch_overhead_s)
  | _ -> Alcotest.fail "expected exactly one Probed_sequential dispatch");
  Alcotest.(check bool) "fallback metrics identical" true (seq = probed)

(* The probe must not disable parallelism for real runs: a thunk that
   sleeps past the threshold keeps the pooled path. *)
let test_jobs_still_pools_expensive_runs () =
  let dispatches = ref [] in
  let on_dispatch d = dispatches := d :: !dispatches in
  let slow x () =
    Unix.sleepf (2. *. Sweep.dispatch_overhead_s);
    x * 3
  in
  let results =
    Sweep.run_batch ~on_dispatch ~jobs:2 (List.map slow [ 1; 2; 3 ])
    |> List.map Result.get_ok
  in
  Alcotest.(check (list int)) "order kept" [ 3; 6; 9 ] results;
  match !dispatches with
  | [ Sweep.Probed_pool { jobs = 2; probe_s } ] ->
      Alcotest.(check bool)
        (Printf.sprintf "probe (%g s) above threshold" probe_s)
        true
        (probe_s >= Sweep.dispatch_overhead_s)
  | _ -> Alcotest.fail "expected exactly one Probed_pool dispatch"

(* A caller-supplied pool is never second-guessed, however small the
   runs: its spawn cost is already sunk. *)
let test_caller_pool_is_not_probed () =
  let dispatches = ref [] in
  let on_dispatch d = dispatches := d :: !dispatches in
  Parallel.with_pool ~jobs:2 @@ fun pool ->
  let spec =
    { (Experiment.default_spec (Experiment.Clique 4)) with mrai = 1. }
  in
  let (_ : Metrics.Run_metrics.t) =
    Sweep.over_seeds ~on_dispatch ~pool spec ~seeds:[ 1; 2 ]
  in
  match !dispatches with
  | [ Sweep.Pool { jobs = 2 } ] -> ()
  | _ -> Alcotest.fail "expected one un-probed Pool dispatch"

let test_over_seeds_robust_parallel () =
  let spec =
    { (Experiment.default_spec (Experiment.Clique 6)) with mrai = 5. }
  in
  let seeds = [ 1; 2; 3; 4 ] in
  let seq = strip_robust (Sweep.over_seeds_robust spec ~seeds) in
  Parallel.with_pool ~jobs:3 @@ fun pool ->
  let par = strip_robust (Sweep.over_seeds_robust ~pool spec ~seeds) in
  Alcotest.(check bool) "pooled over_seeds_robust identical" true (seq = par)

(* --- trace determinism --- *)

let test_trace_digests_identical_across_jobs () =
  (* each worker runs a fixture with its own memory-sink bus; the
     resulting digests must not depend on worker count or scheduling *)
  let digests jobs =
    Parallel.map ~jobs Golden.digest Golden.fixtures
    |> List.map Result.get_ok
  in
  let seq = digests 1 in
  Alcotest.(check int) "one digest per fixture"
    (List.length Golden.fixtures) (List.length seq);
  List.iter
    (fun jobs ->
      Alcotest.(check (list string))
        (Printf.sprintf "jobs=%d digests identical" jobs)
        seq (digests jobs))
    [ 2; 4 ]

let test_counter_snapshots_merge_across_workers () =
  (* the pooled merge must equal a sequential fold over the same runs *)
  let specs =
    List.map
      (fun seed ->
        { (Experiment.default_spec (Experiment.Clique 5)) with seed })
      [ 1; 2; 3; 4 ]
  in
  let counted spec =
    let c = Obs.Counters.create () in
    let obs = Obs.Bus.create ~counters:c () in
    let (_ : Experiment.run) = Experiment.run ~obs spec in
    Obs.Counters.snapshot c
  in
  let merge_all = function
    | [] -> Alcotest.fail "no snapshots"
    | s :: rest -> List.fold_left Obs.Counters.merge s rest
  in
  let seq = merge_all (List.map counted specs) in
  let par =
    merge_all (Parallel.map ~jobs:4 counted specs |> List.map Result.get_ok)
  in
  Alcotest.(check int) "updates sent" seq.s_updates_sent par.s_updates_sent;
  Alcotest.(check int) "fib changes" seq.s_fib_changes par.s_fib_changes;
  Alcotest.(check int) "engine events" seq.s_events_executed
    par.s_events_executed

let () =
  let tc name f = Alcotest.test_case name `Quick f in
  Alcotest.run "parallel"
    [
      ( "pool",
        [
          tc "run preserves order" test_run_preserves_order;
          tc "map matches sequential" test_map_matches_sequential;
          tc "jobs clamped" test_jobs_clamped;
          tc "exception isolated" test_exception_isolated;
          tc "shutdown after raise" test_shutdown_after_raise;
        ] );
      ( "rng-hygiene",
        [
          tc "global Random use flagged" test_rng_hygiene_fires;
          tc "simulation runs clean" test_rng_hygiene_passes_simulation;
        ] );
      ( "sweep",
        [
          tc "series deterministic across jobs" test_series_deterministic_across_jobs;
          tc "series_robust parallel = sequential"
            test_series_robust_parallel_equals_sequential;
          tc "over_seeds_robust with shared pool" test_over_seeds_robust_parallel;
        ] );
      ( "dispatch fallback",
        [
          tc "micro-runs stay sequential" test_jobs_falls_back_for_micro_runs;
          tc "expensive runs still pool" test_jobs_still_pools_expensive_runs;
          tc "caller pool never probed" test_caller_pool_is_not_probed;
        ] );
      ( "observability",
        [
          tc "trace digests identical across jobs"
            test_trace_digests_identical_across_jobs;
          tc "counter snapshots merge across workers"
            test_counter_snapshots_merge_across_workers;
        ] );
    ]
