(* Tests for the fault-injection subsystem: the invariant checker, the
   scenario DSL (parse / render / validate / compile), scripted fault
   execution in the routing simulation, the run budgets that turn hangs
   into structured non-convergence, and the error-isolating sweep. *)

module I = Faults.Invariant
module S = Faults.Scenario

(* --- Invariant checker --- *)

let test_invariant_off_is_free () =
  let c = I.create I.Off in
  Alcotest.(check bool) "disabled" false (I.enabled c);
  (* the detail thunk must not be forced when the checker is off *)
  I.report c I.Rib_incoherence ~detail:(fun () -> Alcotest.fail "forced");
  Alcotest.(check int) "nothing recorded" 0 (I.total c);
  Alcotest.(check bool) "shared off instance" false (I.enabled I.off)

let test_invariant_record_counts () =
  let c = I.create I.Record in
  Alcotest.(check bool) "enabled" true (I.enabled c);
  I.report c I.Stale_epoch_delivery ~detail:(fun () -> "a");
  I.report c I.Stale_epoch_delivery ~detail:(fun () -> "b");
  I.report c I.Clock_regression ~detail:(fun () -> "c");
  Alcotest.(check int) "per kind" 2 (I.count c I.Stale_epoch_delivery);
  Alcotest.(check int) "total" 3 (I.total c);
  Alcotest.(check bool) "violations list" true
    (I.violations c
    = [ (I.Clock_regression, 1); (I.Stale_epoch_delivery, 2) ])

let test_invariant_strict_raises () =
  let c = I.create I.Strict in
  Alcotest.(check bool) "raises Violation" true
    (try
       I.report c I.Dead_next_hop ~detail:(fun () -> "next hop 3 is dead");
       false
     with I.Violation { kind = I.Dead_next_hop; detail } ->
       detail = "next hop 3 is dead")

let test_invariant_mode_of_string () =
  Alcotest.(check bool) "off" true (I.mode_of_string "off" = Some I.Off);
  Alcotest.(check bool) "record" true
    (I.mode_of_string "record" = Some I.Record);
  Alcotest.(check bool) "strict" true
    (I.mode_of_string "strict" = Some I.Strict);
  Alcotest.(check bool) "unknown" true (I.mode_of_string "loud" = None)

(* --- Scenario DSL: parse and render --- *)

let parse_ok s =
  match S.of_string s with
  | Ok t -> t
  | Error msg -> Alcotest.failf "parse %S: %s" s msg

let test_scenario_parse_clauses () =
  let t = parse_ok "fail@5:0-1;recover@15:0-1;reset@20:1-2" in
  Alcotest.(check int) "three clauses" 3 (List.length t.S.specs);
  Alcotest.(check bool) "first is a fail at 5" true
    (List.hd t.S.specs = S.At (5., S.Link_fail (0, 1)));
  let t = parse_ok "crash@0:3;restart@25:3" in
  Alcotest.(check bool) "crash then restart" true
    (t.S.specs = [ S.At (0., S.Node_crash 3); S.At (25., S.Node_restart 3) ])

let test_scenario_parse_macros () =
  let t = parse_ok "storm@2:0-1,5,100;loss=0.01;dup=0.005" in
  Alcotest.(check bool) "storm clause" true
    (t.S.specs
    = [ S.Flap_storm { link = (0, 1); start = 2.; period = 5.; count = 100 } ]);
  Alcotest.(check (float 0.)) "loss knob" 0.01 t.S.msg_loss;
  Alcotest.(check (float 0.)) "dup knob" 0.005 t.S.msg_dup;
  let t = parse_ok "corr@3:0-1+0-2,7" in
  Alcotest.(check bool) "correlated clause" true
    (t.S.specs
    = [
        S.Correlated_failure
          { at = 3.; links = [ (0, 1); (0, 2) ]; recover_after = Some 7. };
      ]);
  let t = parse_ok "rand@2:50,10" in
  Alcotest.(check bool) "random clause" true
    (t.S.specs
    = [
        S.Random_link_failures
          { count = 2; window = 50.; recover_after = Some 10. };
      ])

let test_scenario_round_trip () =
  List.iter
    (fun s ->
      let t = parse_ok s in
      Alcotest.(check string) ("round trip " ^ s) s (S.to_string t))
    [
      "fail@5:0-1;recover@15:0-1";
      "storm@0:0-1,5,200;loss=0.01";
      "crash@0:3;restart@20:3";
      "corr@3:0-1+0-2,7";
      "rand@2:50,10;dup=0.1";
    ]

let test_scenario_parse_errors () =
  List.iter
    (fun s ->
      match S.of_string s with
      | Ok _ -> Alcotest.failf "expected %S to be rejected" s
      | Error _ -> ())
    [
      "frob@1:0-1" (* unknown clause *);
      "fail@x:0-1" (* bad time *);
      "fail@1" (* missing link *);
      "storm@0:0-1,5" (* missing count *);
      "loss=2" (* probability out of range *);
      "" (* empty *);
    ]

(* --- Scenario: validate and compile --- *)

let ring5 = Topo.Generators.ring 5

let test_scenario_resolution_issues_collects_all () =
  let t =
    S.make
      [
        S.At (1., S.Link_fail (0, 2));
        S.At (2., S.Node_crash 99);
        S.At (-3., S.Link_fail (0, 1));
      ]
  in
  (* unlike [validate], every problem is reported, in clause order *)
  Alcotest.(check int) "three issues" 3
    (List.length (S.resolution_issues t ~graph:ring5));
  Alcotest.(check (list string)) "clean scenario" []
    (S.resolution_issues (S.make [ S.At (1., S.Link_fail (0, 1)) ]) ~graph:ring5)

let test_scenario_expand_deterministic () =
  let t =
    S.make
      [
        S.Random_link_failures { count = 2; window = 5.; recover_after = None };
        S.At (4., S.Node_crash 2);
        S.Flap_storm { link = (0, 1); start = 0.; period = 2.; count = 2 };
      ]
  in
  let steps, random_clauses = S.expand_deterministic t in
  Alcotest.(check int) "random clause counted, not expanded" 1 random_clauses;
  (* storm: fail@0, recover@1, fail@2, recover@3; then the crash@4 *)
  Alcotest.(check int) "deterministic steps" 5 (List.length steps);
  Alcotest.(check bool) "time-sorted" true
    (List.for_all2
       (fun (a : S.step) (b : S.step) -> a.at <= b.at)
       (List.filteri (fun i _ -> i < 4) steps)
       (List.tl steps))

let test_scenario_validate_rejects () =
  let raises t =
    try
      S.validate t ~graph:ring5;
      false
    with Invalid_argument _ -> true
  in
  Alcotest.(check bool) "non-edge link" true
    (raises (S.make [ S.At (1., S.Link_fail (0, 2)) ]));
  Alcotest.(check bool) "node out of range" true
    (raises (S.make [ S.At (1., S.Node_crash 99) ]));
  Alcotest.(check bool) "negative time" true
    (raises (S.make [ S.At (-1., S.Link_fail (0, 1)) ]));
  Alcotest.(check bool) "zero storm period" true
    (raises
       (S.make
          [ S.Flap_storm { link = (0, 1); start = 0.; period = 0.; count = 3 } ]));
  Alcotest.(check bool) "random draw larger than edge set" true
    (raises
       (S.make
          [
            S.Random_link_failures
              { count = 6; window = 10.; recover_after = None };
          ]))

let test_scenario_compile_storm () =
  let t =
    S.make [ S.Flap_storm { link = (0, 1); start = 1.; period = 4.; count = 3 } ]
  in
  let steps = S.compile t ~graph:ring5 ~rng:(Dessim.Rng.create ~seed:1) in
  (* cycle k fails at start + k*period and recovers half a period later *)
  Alcotest.(check bool) "expanded schedule" true
    (List.map (fun { S.at; action } -> (at, action)) steps
    = [
        (1., S.Link_fail (0, 1));
        (3., S.Link_recover (0, 1));
        (5., S.Link_fail (0, 1));
        (7., S.Link_recover (0, 1));
        (9., S.Link_fail (0, 1));
        (11., S.Link_recover (0, 1));
      ])

let test_scenario_compile_correlated () =
  let t =
    S.make
      [
        S.Correlated_failure
          { at = 2.; links = [ (0, 1); (1, 2) ]; recover_after = Some 5. };
      ]
  in
  let steps = S.compile t ~graph:ring5 ~rng:(Dessim.Rng.create ~seed:1) in
  let fails =
    List.filter (fun s -> match s.S.action with S.Link_fail _ -> true | _ -> false) steps
  in
  let recovers =
    List.filter
      (fun s -> match s.S.action with S.Link_recover _ -> true | _ -> false)
      steps
  in
  Alcotest.(check int) "both fail" 2 (List.length fails);
  Alcotest.(check bool) "same instant" true
    (List.for_all (fun s -> s.S.at = 2.) fails);
  Alcotest.(check bool) "recover together" true
    (List.for_all (fun s -> s.S.at = 7.) recovers)

let test_scenario_compile_random_deterministic () =
  let t =
    S.make
      [ S.Random_link_failures { count = 3; window = 50.; recover_after = None } ]
  in
  let compile seed = S.compile t ~graph:ring5 ~rng:(Dessim.Rng.create ~seed) in
  let steps = compile 7 in
  Alcotest.(check int) "three draws" 3 (List.length steps);
  let links =
    List.map
      (fun s ->
        match s.S.action with
        | S.Link_fail l -> l
        | _ -> Alcotest.fail "expected fails only")
      steps
  in
  Alcotest.(check int) "distinct links" 3
    (List.length (List.sort_uniq compare links));
  Alcotest.(check bool) "times inside the window" true
    (List.for_all (fun s -> s.S.at >= 0. && s.S.at < 50.) steps);
  Alcotest.(check bool) "sorted by time" true
    (let ts = List.map (fun s -> s.S.at) steps in
     ts = List.sort compare ts);
  Alcotest.(check bool) "same seed, same schedule" true (compile 7 = steps);
  Alcotest.(check bool) "different seed, different schedule" true
    (compile 8 <> steps)

(* --- Scripted scenarios in the routing simulation --- *)

let clique n = Topo.Generators.clique n

let final_next_hop (o : Bgp.Routing_sim.outcome) ~node =
  Netcore.Fib_history.lookup
    (Netcore.Trace.fib o.trace)
    ~node
    ~time:(o.convergence_end +. 100.)

let reaches_origin (o : Bgp.Routing_sim.outcome) ~graph ~origin ~node =
  let n = Topo.Graph.n_nodes graph in
  let rec walk v hops =
    if v = origin then true
    else if hops > n then false
    else
      match final_next_hop o ~node:v with
      | None -> false
      | Some next -> walk next (hops + 1)
  in
  walk node 0

let test_sim_crash_and_restart () =
  let graph = clique 4 in
  let scenario = parse_ok "crash@0:2;restart@40:2" in
  let o =
    Bgp.Routing_sim.run ~graph ~origin:0
      ~event:(Bgp.Routing_sim.Scenario scenario) ~seed:1 ()
  in
  Alcotest.(check bool) "converged" true o.converged;
  (* while crashed the node has no route *)
  Alcotest.(check bool) "routeless while down" true
    (Netcore.Fib_history.lookup
       (Netcore.Trace.fib o.trace)
       ~node:2
       ~time:(o.t_fail +. 20.)
    = None);
  (* after restart the peers re-dump and the node recovers its route *)
  Alcotest.(check bool) "route restored" true
    (reaches_origin o ~graph ~origin:0 ~node:2)

let test_sim_origin_crash_reoriginates () =
  let graph = clique 4 in
  let scenario = parse_ok "crash@0:0;restart@40:0" in
  let o =
    Bgp.Routing_sim.run ~graph ~origin:0
      ~event:(Bgp.Routing_sim.Scenario scenario) ~seed:1 ()
  in
  Alcotest.(check bool) "converged" true o.converged;
  (* crashing the origin withdraws the prefix everywhere... *)
  Alcotest.(check bool) "withdrawals flowed" true
    (o.withdrawals_after_fail > 0);
  (* ...and the restarted origin re-originates: every node routes again *)
  List.iter
    (fun v ->
      Alcotest.(check bool)
        (Printf.sprintf "node %d recovered" v)
        true
        (reaches_origin o ~graph ~origin:0 ~node:v))
    [ 1; 2; 3 ]

let test_sim_session_reset_recovers () =
  let graph = clique 4 in
  let scenario = parse_ok "reset@0:0-1" in
  let o =
    Bgp.Routing_sim.run ~graph ~origin:0
      ~event:(Bgp.Routing_sim.Scenario scenario) ~seed:1 ()
  in
  Alcotest.(check bool) "converged" true o.converged;
  (* the reset flushes and re-learns; the end state is the direct route *)
  Alcotest.(check bool) "direct route back" true
    (final_next_hop o ~node:1 = Some 0)

let test_sim_correlated_failure_reroutes () =
  let graph = clique 5 in
  let scenario = parse_ok "corr@0:0-1+0-2" in
  let o =
    Bgp.Routing_sim.run ~graph ~origin:0
      ~event:(Bgp.Routing_sim.Scenario scenario) ~seed:1 ()
  in
  Alcotest.(check bool) "converged" true o.converged;
  (* both severed nodes detour through a surviving neighbor *)
  List.iter
    (fun v ->
      Alcotest.(check bool)
        (Printf.sprintf "node %d detours" v)
        true
        (final_next_hop o ~node:v <> Some 0
        && reaches_origin o ~graph ~origin:0 ~node:v))
    [ 1; 2 ]

let test_sim_chaos_is_deterministic () =
  let graph = clique 4 in
  let scenario = parse_ok "fail@0:0-1;recover@20:0-1;loss=0.2;dup=0.1" in
  let run () =
    Bgp.Routing_sim.run ~graph ~origin:0
      ~event:(Bgp.Routing_sim.Scenario scenario) ~seed:3 ()
  in
  let a = run () and b = run () in
  Alcotest.(check bool) "terminates" true a.converged;
  Alcotest.(check (float 0.)) "same convergence end" a.convergence_end
    b.convergence_end;
  Alcotest.(check int) "same event count" a.events_executed b.events_executed

(* --- Budgets: hangs become structured non-convergence --- *)

let test_sim_flap_storm_hits_event_budget () =
  let graph = clique 5 in
  (* a persistent storm faster than MRAI convergence: without the
     budget this churns for hundreds of simulated cycles *)
  let scenario = parse_ok "storm@0:0-1,2,5000" in
  let o =
    Bgp.Routing_sim.run ~graph ~origin:0
      ~event:(Bgp.Routing_sim.Scenario scenario) ~max_events:20_000 ~seed:1 ()
  in
  Alcotest.(check bool) "not converged" false o.converged;
  Alcotest.(check bool) "stopped on the event budget" true
    (o.termination = Bgp.Routing_sim.Event_budget);
  Alcotest.(check bool) "budget respected" true (o.events_executed <= 20_000)

let test_sim_vtime_budget () =
  let graph = clique 4 in
  (* warm-up converges quickly; the late step lies beyond the budget *)
  let scenario = parse_ok "fail@0:0-1;recover@5000:0-1" in
  let o =
    Bgp.Routing_sim.run ~graph ~origin:0
      ~event:(Bgp.Routing_sim.Scenario scenario) ~max_vtime:500. ~seed:1 ()
  in
  Alcotest.(check bool) "warm-up fits the budget" true (o.warmup_end < 500.);
  Alcotest.(check bool) "not converged" false o.converged;
  Alcotest.(check bool) "stopped on the vtime budget" true
    (o.termination = Bgp.Routing_sim.Vtime_budget)

(* --- Strict invariants on ordinary runs --- *)

let test_strict_invariants_pass_on_classic_events () =
  let graph = clique 5 in
  List.iter
    (fun event ->
      let o =
        Bgp.Routing_sim.run ~graph ~origin:0 ~event
          ~invariants:Faults.Invariant.Strict ~seed:1 ()
      in
      Alcotest.(check bool) "converged under strict checking" true o.converged;
      Alcotest.(check bool) "no violations surfaced" true
        (o.invariant_violations = []))
    [
      Bgp.Routing_sim.Tdown;
      Bgp.Routing_sim.Tlong { a = 0; b = 1 };
      Bgp.Routing_sim.Tup;
      Bgp.Routing_sim.Trecover { a = 0; b = 1 };
      Bgp.Routing_sim.Tshort { a = 0; b = 1; down_for = 5. };
    ]

let test_strict_invariants_pass_on_internet () =
  let graph = Topo.Internet.generate ~seed:3 24 in
  let origin = List.hd (Topo.Internet.stub_nodes graph) in
  let o =
    Bgp.Routing_sim.run ~graph ~origin ~event:Bgp.Routing_sim.Tdown
      ~invariants:Faults.Invariant.Strict ~seed:3 ()
  in
  Alcotest.(check bool) "converged" true o.converged

let test_strict_invariants_pass_on_scenario () =
  let graph = clique 4 in
  let scenario = parse_ok "crash@0:2;restart@30:2;reset@60:0-1" in
  let o =
    Bgp.Routing_sim.run ~graph ~origin:0
      ~event:(Bgp.Routing_sim.Scenario scenario)
      ~invariants:Faults.Invariant.Strict ~seed:1 ()
  in
  Alcotest.(check bool) "converged" true o.converged

let test_strict_invariants_pass_on_multi_sim () =
  let graph = clique 5 in
  let o =
    Bgp.Multi_sim.run ~graph ~origins:[ 0; 1 ] ~victim:0
      ~invariants:Faults.Invariant.Strict ~seed:1 ()
  in
  Alcotest.(check bool) "converged" true o.converged;
  Alcotest.(check bool) "no violations" true (o.invariant_violations = [])

(* --- Hardened experiment driver and sweep --- *)

let test_experiment_scenario_spec () =
  let scenario = parse_ok "fail@0:0-1;recover@20:0-1" in
  let spec =
    {
      (Bgpsim.Experiment.default_spec (Bgpsim.Experiment.Clique 4)) with
      event = Bgpsim.Experiment.Scenario scenario;
      mrai = 5.;
      invariants = Faults.Invariant.Strict;
    }
  in
  Alcotest.(check string) "event name" "scenario:fail@0:0-1;recover@20:0-1"
    (Bgpsim.Experiment.event_name spec.event);
  let r = Bgpsim.Experiment.run spec in
  Alcotest.(check bool) "converged" true r.metrics.converged;
  Alcotest.(check bool) "status completed" true
    (Bgpsim.Experiment.status r.outcome = Bgpsim.Experiment.Completed)

let test_experiment_storm_is_non_converged () =
  let scenario = parse_ok "storm@0:0-1,2,5000" in
  let spec =
    {
      (Bgpsim.Experiment.default_spec (Bgpsim.Experiment.Clique 4)) with
      event = Bgpsim.Experiment.Scenario scenario;
      mrai = 5.;
      max_events = 20_000;
    }
  in
  let r = Bgpsim.Experiment.run spec in
  Alcotest.(check bool) "not converged" false r.metrics.converged;
  match Bgpsim.Experiment.status r.outcome with
  | Bgpsim.Experiment.Non_converged { termination; events_executed; _ } ->
      Alcotest.(check bool) "event budget" true
        (termination = Bgp.Routing_sim.Event_budget);
      Alcotest.(check bool) "budget respected" true (events_executed <= 20_000);
      Alcotest.(check bool) "status names the budget" true
        (String.length
           (Bgpsim.Experiment.status_name (Bgpsim.Experiment.status r.outcome))
        > 0)
  | Bgpsim.Experiment.Completed -> Alcotest.fail "expected Non_converged"

let test_sweep_robust_isolates_failures () =
  (* a scenario referencing a non-edge fails validation on every seed;
     the robust sweep records the failures instead of raising *)
  let graph = Topo.Generators.ring 4 in
  let bad = parse_ok "fail@0:0-2" in
  let spec =
    {
      (Bgpsim.Experiment.default_spec
         (Bgpsim.Experiment.Custom { graph; origin = 0; name = "ring-4" }))
      with
      event = Bgpsim.Experiment.Scenario bad;
    }
  in
  let r = Bgpsim.Sweep.over_seeds_robust spec ~seeds:[ 1; 2; 3 ] in
  Alcotest.(check int) "attempted" 3 r.attempted;
  Alcotest.(check int) "none completed" 0 r.completed;
  Alcotest.(check bool) "no metrics" true (r.metrics = None);
  Alcotest.(check int) "all recorded" 3 (List.length r.failures);
  let f = List.hd r.failures in
  Alcotest.(check int) "seed kept" 1 f.Bgpsim.Sweep.seed;
  Alcotest.(check bool) "message kept" true (String.length f.message > 0);
  Alcotest.(check bool) "table renders" true
    (String.length (Bgpsim.Sweep.failures_table r.failures) > 0)

let test_sweep_robust_counts_non_converged () =
  let scenario = parse_ok "storm@0:0-1,2,5000" in
  let spec =
    {
      (Bgpsim.Experiment.default_spec (Bgpsim.Experiment.Clique 4)) with
      event = Bgpsim.Experiment.Scenario scenario;
      mrai = 5.;
      max_events = 20_000;
    }
  in
  let r = Bgpsim.Sweep.over_seeds_robust spec ~seeds:[ 1; 2 ] in
  Alcotest.(check int) "both completed" 2 r.completed;
  Alcotest.(check int) "both flagged non-converged" 2 r.non_converged;
  Alcotest.(check bool) "metrics still averaged" true (r.metrics <> None)

let () =
  let tc name f = Alcotest.test_case name `Quick f in
  Alcotest.run "faults"
    [
      ( "invariant",
        [
          tc "off is free" test_invariant_off_is_free;
          tc "record counts" test_invariant_record_counts;
          tc "strict raises" test_invariant_strict_raises;
          tc "mode of string" test_invariant_mode_of_string;
        ] );
      ( "scenario-dsl",
        [
          tc "parse clauses" test_scenario_parse_clauses;
          tc "parse macros" test_scenario_parse_macros;
          tc "round trip" test_scenario_round_trip;
          tc "parse errors" test_scenario_parse_errors;
          tc "validate rejects" test_scenario_validate_rejects;
          tc "resolution issues collect all"
            test_scenario_resolution_issues_collects_all;
          tc "deterministic expansion" test_scenario_expand_deterministic;
          tc "storm expansion" test_scenario_compile_storm;
          tc "correlated expansion" test_scenario_compile_correlated;
          tc "random draws deterministic"
            test_scenario_compile_random_deterministic;
        ] );
      ( "scripted-sim",
        [
          tc "crash and restart" test_sim_crash_and_restart;
          tc "origin crash re-originates" test_sim_origin_crash_reoriginates;
          tc "session reset recovers" test_sim_session_reset_recovers;
          tc "correlated failure reroutes" test_sim_correlated_failure_reroutes;
          tc "chaos is deterministic" test_sim_chaos_is_deterministic;
        ] );
      ( "budgets",
        [
          tc "flap storm hits event budget" test_sim_flap_storm_hits_event_budget;
          tc "vtime budget" test_sim_vtime_budget;
        ] );
      ( "strict-invariants",
        [
          tc "classic events" test_strict_invariants_pass_on_classic_events;
          tc "internet topology" test_strict_invariants_pass_on_internet;
          tc "scripted scenario" test_strict_invariants_pass_on_scenario;
          tc "multi-prefix sim" test_strict_invariants_pass_on_multi_sim;
        ] );
      ( "hardened-driver",
        [
          tc "scenario spec end to end" test_experiment_scenario_spec;
          tc "storm reported non-converged" test_experiment_storm_is_non_converged;
          tc "robust sweep isolates failures" test_sweep_robust_isolates_failures;
          tc "robust sweep counts non-converged"
            test_sweep_robust_counts_non_converged;
        ] );
    ]
