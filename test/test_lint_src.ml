(* Tests for the bgpsim-lint analyzer (lib/lint_src):

   - the known-bad fixture corpus: every rule id has a snippet that
     fires it, good twins stay clean, and an in-source suppression
     comment downgrades the finding (compiled with ocamlc -bin-annot
     and run through the same cmt pass as the real tree);
   - suppression-comment and allowlist parsing, in particular that a
     directive without a justification is a config error, never a
     silent pass;
   - report classification, exit codes, and the --json schema
     round-trip. *)

open Lint_src

let finding ?(file = "lib/foo.ml") ?(line = 10) ?(col = 2) rule =
  Finding.make ~rule ~file ~line ~col ~witness:"test witness"

let no_supps (_ : string) : Suppress.t list * string list = ([], [])

(* --- fixture corpus --- *)

let test_fixture_corpus () =
  if not (Fixtures.ocamlc_available ()) then
    Alcotest.fail "ocamlc not on PATH; fixture corpus cannot run"
  else
    match Fixtures.check_all () with
    | Ok n -> Alcotest.(check bool) "corpus non-trivial" true (n >= 15)
    | Error msgs -> Alcotest.fail (String.concat "\n" msgs)

let test_every_rule_has_bad_fixture () =
  List.iter
    (fun rule ->
      let fires =
        List.exists
          (fun (fx : Fixtures.fixture) -> fx.expect = Fixtures.Fires rule)
          Fixtures.all
      in
      Alcotest.(check bool)
        (Printf.sprintf "%s has a failing fixture" (Rule.id rule))
        true fires)
    Rule.all

(* --- suppression comments --- *)

let test_suppression_parses () =
  let supps, errs =
    Suppress.scan_lines ~file:"x.ml"
      [ "let a = 1"; "(* bgpsim-lint: allow D001 \xe2\x80\x94 commutative fold *)" ]
  in
  Alcotest.(check int) "no errors" 0 (List.length errs);
  match supps with
  | [ s ] ->
      Alcotest.(check string) "rule" "D001" (Rule.id s.Suppress.rule);
      Alcotest.(check int) "line" 2 s.Suppress.line;
      Alcotest.(check string) "reason" "commutative fold" s.Suppress.reason;
      Alcotest.(check bool) "covers own line" true
        (Suppress.covers s ~rule:Rule.D001 ~line:2);
      Alcotest.(check bool) "covers next line" true
        (Suppress.covers s ~rule:Rule.D001 ~line:3);
      Alcotest.(check bool) "not two lines down" false
        (Suppress.covers s ~rule:Rule.D001 ~line:4);
      Alcotest.(check bool) "not another rule" false
        (Suppress.covers s ~rule:Rule.D004 ~line:2)
  | l -> Alcotest.failf "expected one suppression, got %d" (List.length l)

let test_suppression_requires_justification () =
  let check_error label lines =
    let supps, errs = Suppress.scan_lines ~file:"x.ml" lines in
    Alcotest.(check int) (label ^ ": no suppression") 0 (List.length supps);
    Alcotest.(check bool) (label ^ ": reported") true (errs <> [])
  in
  check_error "no separator" [ "(* bgpsim-lint: allow D001 *)" ];
  check_error "empty reason" [ "(* bgpsim-lint: allow D001 \xe2\x80\x94 *)" ];
  check_error "unknown rule" [ "(* bgpsim-lint: allow D999 \xe2\x80\x94 x *)" ];
  check_error "unknown directive" [ "(* bgpsim-lint: deny D001 \xe2\x80\x94 x *)" ]

let test_suppression_ascii_separator () =
  let supps, errs =
    Suppress.scan_lines ~file:"x.ml"
      [ "(* bgpsim-lint: allow D004 -- exact sentinel *)" ]
  in
  Alcotest.(check int) "no errors" 0 (List.length errs);
  Alcotest.(check int) "one suppression" 1 (List.length supps)

(* --- allowlist --- *)

let test_allowlist_parses () =
  let allows, errs =
    Suppress.parse_allowlist_lines ~file:"allow.txt"
      [
        "# comment";
        "";
        "D003 lib/core/parallel.ml \xe2\x80\x94 the hygiene guard itself";
      ]
  in
  Alcotest.(check int) "no errors" 0 (List.length errs);
  match allows with
  | [ a ] ->
      Alcotest.(check bool) "covers the file" true
        (Suppress.allow_covers a ~rule:Rule.D003 ~file:"lib/core/parallel.ml");
      Alcotest.(check bool) "not another file" false
        (Suppress.allow_covers a ~rule:Rule.D003 ~file:"lib/core/other.ml")
  | l -> Alcotest.failf "expected one allow, got %d" (List.length l)

let test_allowlist_requires_justification () =
  let allows, errs =
    Suppress.parse_allowlist_lines ~file:"allow.txt"
      [ "D003 lib/core/parallel.ml" ]
  in
  Alcotest.(check int) "rejected" 0 (List.length allows);
  Alcotest.(check bool) "reported" true (errs <> []);
  let report =
    Report.build ~findings:[] ~scan_source:no_supps ~allows ~allow_errors:errs
  in
  Alcotest.(check int) "config errors exit 2" 2 (Report.exit_code report)

(* --- report classification and exit codes --- *)

let test_exit_codes () =
  let open_report =
    Report.build ~findings:[ finding Rule.D001 ] ~scan_source:no_supps
      ~allows:[] ~allow_errors:[]
  in
  Alcotest.(check int) "open finding exits 1" 1 (Report.exit_code open_report);
  let suppressed =
    Report.build ~findings:[ finding Rule.D001 ]
      ~scan_source:(fun _ ->
        ([ { Suppress.rule = Rule.D001; line = 9; reason = "safe" } ], []))
      ~allows:[] ~allow_errors:[]
  in
  Alcotest.(check int) "comment on previous line suppresses" 0
    (Report.exit_code suppressed);
  let allowlisted =
    Report.build ~findings:[ finding Rule.D001 ] ~scan_source:no_supps
      ~allows:
        [
          {
            Suppress.a_rule = Rule.D001;
            a_file = "lib/foo.ml";
            a_justification = "whole file is safe";
          };
        ]
      ~allow_errors:[]
  in
  Alcotest.(check int) "allowlisted exits 0" 0 (Report.exit_code allowlisted);
  Alcotest.(check int) "clean exits 0" 0
    (Report.exit_code
       (Report.build ~findings:[] ~scan_source:no_supps ~allows:[]
          ~allow_errors:[]))

let test_wrong_rule_does_not_suppress () =
  let report =
    Report.build ~findings:[ finding Rule.D002 ]
      ~scan_source:(fun _ ->
        ([ { Suppress.rule = Rule.D001; line = 10; reason = "safe" } ], []))
      ~allows:[] ~allow_errors:[]
  in
  Alcotest.(check int) "still open" 1 (Report.open_count report)

(* --- the partitioned-executor modules are covered by the scan --- *)

(* [dune runtest] runs in _build/default/test; [dune exec] runs from
   the invocation directory — try both spellings of each path. *)
let locate candidates =
  match List.find_opt Sys.file_exists candidates with
  | Some p -> p
  | None ->
      Alcotest.failf "none of [%s] exist (build the tree first)"
        (String.concat "; " candidates)

let both p = [ Filename.concat ".." p; Filename.concat "_build/default" p ]

let partition_units =
  [
    ( "Dessim.Channel",
      "lib/dessim/.dessim.objs/byte/dessim__Channel.cmt",
      "lib/dessim/channel.ml" );
    ( "Dessim.Cluster",
      "lib/dessim/.dessim.objs/byte/dessim__Cluster.cmt",
      "lib/dessim/cluster.ml" );
    ( "Netcore.Fabric",
      "lib/netcore/.netcore.objs/byte/netcore__Fabric.cmt",
      "lib/netcore/fabric.ml" );
    ( "Bgpsim.Partition",
      "lib/core/.bgpsim.objs/byte/bgpsim__Partition.cmt",
      "lib/core/partition.ml" );
  ]

let test_partition_modules_covered () =
  (* the analyzer must load each new unit from its real cmt, and every
     finding in it must be suppressed by an in-source justified
     comment — the same pass `dune build @lint` runs over the tree *)
  let scan_source file = Suppress.scan_file (locate (both file)) in
  List.iter
    (fun (label, cmt, _src) ->
      match Analyze.analyze_cmt (locate (both cmt)) with
      | Error e -> Alcotest.failf "%s: %s" label e
      | Ok (_, findings) ->
          let report =
            Report.build ~findings ~scan_source ~allows:[] ~allow_errors:[]
          in
          Alcotest.(check int)
            (label ^ ": no open findings")
            0 (Report.open_count report);
          if label = "Dessim.Cluster" then
            (* the commit loop's float tie-breaks must register as
               suppressed findings, not as silence — proof the rule
               actually visits the new code *)
            Alcotest.(check bool)
              "cluster D004 sites fire and are comment-suppressed" true
              (Report.suppressed_count report >= 1))
    partition_units

let test_partition_modules_not_allowlisted () =
  (* per-site suppressions only: the committed allowlist must carry no
     blanket entry for any of the new files *)
  let allows, errs = Suppress.parse_allowlist (locate (both "lint_allowlist.txt")) in
  Alcotest.(check (list string)) "allowlist parses" [] errs;
  List.iter
    (fun (label, _cmt, src) ->
      List.iter
        (fun rule ->
          Alcotest.(check bool)
            (Printf.sprintf "%s not allowlisted for %s" label (Rule.id rule))
            false
            (List.exists
               (fun a -> Suppress.allow_covers a ~rule ~file:src)
               allows))
        Rule.all)
    partition_units

(* --- JSON round-trip --- *)

let test_json_roundtrip () =
  let report =
    Report.build
      ~findings:
        [
          finding Rule.D001;
          finding ~file:"lib/bar.ml" ~line:3 ~col:0 Rule.M001;
          finding ~line:20 Rule.D004;
        ]
      ~scan_source:(fun file ->
        if file = "lib/foo.ml" then
          ([ { Suppress.rule = Rule.D004; line = 19; reason = "sentinel" } ], [])
        else ([], []))
      ~allows:
        [
          {
            Suppress.a_rule = Rule.M001;
            a_file = "lib/bar.ml";
            a_justification = "guarded upstream";
          };
        ]
      ~allow_errors:[]
  in
  let s = Report.to_json_string report in
  match Report.of_json_string s with
  | Error e -> Alcotest.fail e
  | Ok back ->
      Alcotest.(check int) "entry count" 3 (List.length back.Report.entries);
      Alcotest.(check int) "open count" (Report.open_count report)
        (Report.open_count back);
      Alcotest.(check int) "suppressed count" (Report.suppressed_count report)
        (Report.suppressed_count back);
      List.iter2
        (fun (a : Report.entry) (b : Report.entry) ->
          Alcotest.(check int) "finding equal" 0
            (Finding.compare a.finding b.finding);
          Alcotest.(check bool) "status equal" true (a.status = b.status))
        report.Report.entries back.Report.entries;
      (* re-serializing the parsed report is byte-identical *)
      Alcotest.(check string) "stable serialization" s
        (Report.to_json_string back)

let test_json_schema_tag () =
  let report =
    Report.build ~findings:[] ~scan_source:no_supps ~allows:[] ~allow_errors:[]
  in
  match Json.of_string (Report.to_json_string report) with
  | Error e -> Alcotest.fail e
  | Ok j -> (
      match Option.bind (Json.member "schema" j) Json.to_str with
      | None -> Alcotest.fail "missing schema field"
      | Some schema ->
          Alcotest.(check string) "schema tag" Report.schema schema)

let () =
  let tc name f = Alcotest.test_case name `Quick f in
  Alcotest.run "lint_src"
    [
      ( "fixtures",
        [
          tc "corpus" test_fixture_corpus;
          tc "every rule has a bad fixture" test_every_rule_has_bad_fixture;
        ] );
      ( "suppressions",
        [
          tc "directive parses" test_suppression_parses;
          tc "justification mandatory" test_suppression_requires_justification;
          tc "ascii separator" test_suppression_ascii_separator;
        ] );
      ( "allowlist",
        [
          tc "entry parses" test_allowlist_parses;
          tc "justification mandatory" test_allowlist_requires_justification;
        ] );
      ( "report",
        [
          tc "exit codes" test_exit_codes;
          tc "wrong rule does not suppress" test_wrong_rule_does_not_suppress;
        ] );
      ( "json",
        [
          tc "round-trip" test_json_roundtrip;
          tc "schema tag" test_json_schema_tag;
        ] );
      ( "tree coverage",
        [
          tc "partitioned executor modules scanned"
            test_partition_modules_covered;
          tc "partitioned executor modules not allowlisted"
            test_partition_modules_not_allowlisted;
        ] );
    ]
