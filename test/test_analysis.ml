(* Tests for the static pre-flight analyzer: SPVP dispute-digraph
   safety verdicts, scenario linting, convergence-bound certification,
   and the wiring through the experiment driver — including the
   property that a config the analyzer certifies Safe actually
   converges within its certified static bound. *)

module A = Analysis
module S = Faults.Scenario

let tc name f = Alcotest.test_case name `Quick f

let chain n =
  Topo.Graph.create ~n ~edges:(List.init (n - 1) (fun i -> (i, i + 1)))

(* --- SPVP safety verdicts --- *)

let test_bad_gadget_unsafe () =
  let i = A.Fixtures.bad_gadget () in
  let r = A.Spvp.analyze ~graph:i.graph ~policy:i.policy ~origin:i.origin () in
  match r.verdict with
  | A.Spvp.Unsafe w ->
      Alcotest.(check bool) "nonempty witness" true (w.cycle <> []);
      List.iter
        (fun (p, _) ->
          Alcotest.(check bool) "cycle paths end at the origin" true
            (List.rev p |> function 0 :: _ -> true | _ -> false))
        w.cycle
  | _ -> Alcotest.failf "expected Unsafe, got %s" (A.Spvp.verdict_name r.verdict)

let test_good_gadget_safe () =
  let i = A.Fixtures.good_gadget () in
  let r = A.Spvp.analyze ~graph:i.graph ~policy:i.policy ~origin:i.origin () in
  match r.verdict with
  | A.Spvp.Safe (A.Spvp.Acyclic_dispute_digraph { paths; _ }) ->
      Alcotest.(check int) "permitted paths" 16 paths
  | _ -> Alcotest.failf "expected Safe, got %s" (A.Spvp.verdict_name r.verdict)

let test_clique5_safe_with_expected_enumeration () =
  let graph = Topo.Generators.clique 5 in
  let r =
    A.Spvp.analyze ~graph ~policy:Bgp.Policy.shortest_path ~origin:0 ()
  in
  Alcotest.(check string) "verdict" "safe" (A.Spvp.verdict_name r.verdict);
  match r.enumeration with
  | None -> Alcotest.fail "expected a completed enumeration"
  | Some e ->
      Alcotest.(check int) "total permitted paths" 65 e.total;
      (* per non-origin node: sum_(k=0..3) P(3,k) = 1+3+6+6 *)
      Alcotest.(check int) "paths at node 1" 16
        (List.length e.per_node.(1))

let test_chain_depth_exact () =
  let graph = chain 6 in
  let r =
    A.Spvp.analyze ~graph ~policy:Bgp.Policy.shortest_path ~origin:0 ()
  in
  Alcotest.(check string) "verdict" "safe" (A.Spvp.verdict_name r.verdict);
  match r.enumeration with
  | None -> Alcotest.fail "expected enumeration"
  | Some e ->
      Alcotest.(check int) "one path per node" 6 e.total;
      let depth =
        Array.fold_left
          (fun acc ps ->
            List.fold_left
              (fun acc p -> Stdlib.max acc (List.length p - 1))
              acc ps)
          0 e.per_node
      in
      Alcotest.(check int) "longest path has 5 hops" 5 depth

let test_enumeration_budget_unknown () =
  let graph = Topo.Generators.clique 5 in
  let r =
    A.Spvp.analyze ~max_paths:3 ~graph ~policy:Bgp.Policy.shortest_path
      ~origin:0 ()
  in
  match r.verdict with
  | A.Spvp.Unknown _ -> ()
  | v -> Alcotest.failf "expected Unknown, got %s" (A.Spvp.verdict_name v)

let test_disconnected_nodes_reported () =
  let graph = Topo.Graph.create ~n:4 ~edges:[ (0, 1); (2, 3) ] in
  let r =
    A.Spvp.analyze ~graph ~policy:Bgp.Policy.shortest_path ~origin:0 ()
  in
  Alcotest.(check (list int)) "nodes 2,3 can never learn a route" [ 2; 3 ]
    r.unreachable

(* --- Gao-Rexford conformance --- *)

let hierarchy_rel a b =
  (* node 0 is everyone's provider; others are mutual peers *)
  if a = 0 then Bgp.Policy.Customer
  else if b = 0 then Bgp.Policy.Provider
  else Bgp.Policy.Peer_rel

let test_gao_rexford_conformant () =
  let graph = Topo.Generators.clique 4 in
  (match A.Spvp.check_gao_rexford ~graph ~rel:hierarchy_rel with
  | Ok () -> ()
  | Error msg -> Alcotest.failf "expected conformant, got: %s" msg);
  (* budget-blown enumeration falls back to the GR certificate *)
  let r =
    A.Spvp.analyze ~max_paths:2 ~gr_rel:hierarchy_rel ~graph
      ~policy:(Bgp.Policy.gao_rexford ~rel:hierarchy_rel) ~origin:0 ()
  in
  match r.verdict with
  | A.Spvp.Safe A.Spvp.Gao_rexford_conformant -> ()
  | v ->
      Alcotest.failf "expected GR certificate, got %s" (A.Spvp.verdict_name v)

let test_gao_rexford_rejects_inconsistent_and_cyclic () =
  let graph = Topo.Generators.clique 3 in
  (* inconsistent: both ends claim the other is their customer *)
  (match
     A.Spvp.check_gao_rexford ~graph ~rel:(fun _ _ -> Bgp.Policy.Customer)
   with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "inconsistent views must be rejected");
  (* consistent but cyclic: 0 -> 1 -> 2 -> 0 in the provider digraph *)
  let cyclic a b =
    if (a + 1) mod 3 = b then Bgp.Policy.Customer else Bgp.Policy.Provider
  in
  match A.Spvp.check_gao_rexford ~graph ~rel:cyclic with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "a provider-customer cycle must be rejected"

(* --- scenario lint --- *)

let ring5 = Topo.Graph.create ~n:5 ~edges:[ (0, 1); (1, 2); (2, 3); (3, 4); (4, 0) ]

let codes report = List.map (fun (i : A.Lint.issue) -> i.code) report.A.Lint.issues

let test_lint_dangling_link () =
  let sc = S.make [ S.At (1., S.Link_fail (0, 9)) ] in
  let r = A.Lint.lint sc ~graph:ring5 ~origin:0 in
  Alcotest.(check bool) "has errors" true (A.Lint.has_errors r);
  Alcotest.(check (list string)) "code" [ "dangling-ref" ] (codes r)

let test_lint_shadowed_epochs () =
  let sc =
    S.make
      [
        S.At (1., S.Link_fail (0, 1));
        S.At (2., S.Link_fail (1, 0));
        (* same link, other orientation *)
        S.At (3., S.Link_recover (0, 1));
        S.At (4., S.Link_recover (0, 1));
        S.At (5., S.Node_restart 2);
      ]
  in
  let r = A.Lint.lint sc ~graph:ring5 ~origin:0 in
  Alcotest.(check bool) "warnings, not errors" false (A.Lint.has_errors r);
  Alcotest.(check (list string)) "codes"
    [ "shadowed-fail"; "spurious-recover"; "spurious-restart" ]
    (codes r)

let test_lint_same_instant_conflict () =
  let sc =
    S.make [ S.At (1., S.Link_fail (0, 1)); S.At (1., S.Link_recover (0, 1)) ]
  in
  let r = A.Lint.lint sc ~graph:ring5 ~origin:0 in
  Alcotest.(check bool) "overlapping-epoch flagged" true
    (List.mem "overlapping-epoch" (codes r))

let test_lint_transient_partition () =
  (* chain 0-1-2: cutting (0,1) strands 1 and 2 until the recovery *)
  let sc =
    S.make [ S.At (1., S.Link_fail (0, 1)); S.At (5., S.Link_recover (0, 1)) ]
  in
  let r = A.Lint.lint sc ~graph:(chain 3) ~origin:0 in
  Alcotest.(check bool) "no errors" false (A.Lint.has_errors r);
  match r.partitions with
  | [ p ] ->
      Alcotest.(check (list int)) "stranded nodes" [ 1; 2 ] p.nodes;
      Alcotest.(check (option (float 1e-9))) "healed at recovery" (Some 5.)
        p.until;
      Alcotest.(check bool) "reported as info" true
        (List.mem "partition" (codes r))
  | ps -> Alcotest.failf "expected one partition, got %d" (List.length ps)

let test_lint_permanent_partition () =
  let sc = S.make [ S.At (1., S.Link_fail (1, 2)) ] in
  let r = A.Lint.lint sc ~graph:(chain 3) ~origin:0 in
  (match r.partitions with
  | [ p ] ->
      Alcotest.(check (list int)) "node 2 stranded" [ 2 ] p.nodes;
      Alcotest.(check bool) "never healed" true (p.until = None)
  | ps -> Alcotest.failf "expected one partition, got %d" (List.length ps));
  Alcotest.(check bool) "warned as permanent" true
    (List.mem "permanent-partition" (codes r))

let test_lint_crashed_nodes_not_counted_stranded () =
  let sc = S.make [ S.At (1., S.Node_crash 2) ] in
  let r = A.Lint.lint sc ~graph:(chain 4) ~origin:0 in
  (* node 3 is cut off by 2's crash; 2 itself is down, not partitioned *)
  match r.partitions with
  | [ p ] -> Alcotest.(check (list int)) "only node 3" [ 3 ] p.nodes
  | ps -> Alcotest.failf "expected one partition, got %d" (List.length ps)

(* --- bounds --- *)

let test_clique_rank_closed_form () =
  Alcotest.(check (float 0.)) "n=2" 1. (A.Bounds.clique_rank_bound 2);
  Alcotest.(check (float 0.)) "n=3" 2. (A.Bounds.clique_rank_bound 3);
  Alcotest.(check (float 0.)) "n=5" 16. (A.Bounds.clique_rank_bound 5);
  Alcotest.(check bool) "n=25 finite but astronomical" true
    (A.Bounds.clique_rank_bound 25 > 1e22
    && A.Bounds.clique_rank_bound 25 < infinity)

let test_clique_closed_form_matches_enumeration () =
  List.iter
    (fun n ->
      let graph = Topo.Generators.clique n in
      let r =
        A.Spvp.analyze ~graph ~policy:Bgp.Policy.shortest_path ~origin:0 ()
      in
      match r.enumeration with
      | None -> Alcotest.fail "expected enumeration"
      | Some e ->
          Alcotest.(check (float 0.))
            (Printf.sprintf "clique-%d rank" n)
            (A.Bounds.clique_rank_bound n)
            (float_of_int (List.length e.per_node.(1))))
    [ 3; 4; 5; 6 ]

let test_bounds_check_enforces_certified_only () =
  let graph = Topo.Generators.clique 5 in
  let enumeration =
    match
      (A.Spvp.analyze ~graph ~policy:Bgp.Policy.shortest_path ~origin:0 ())
        .enumeration
    with
    | Some e -> e
    | None -> Alcotest.fail "expected enumeration"
  in
  let certified =
    A.Bounds.derive ~graph ~origin:0 ~mrai:30. ~params:Netcore.Params.default
      ~enumeration ~certified_event:true ()
  in
  Alcotest.(check string) "certified" "certified"
    (A.Bounds.certainty_name certified.time_certainty);
  Alcotest.(check (list string)) "within bound = no violations" []
    (List.map
       (fun (v : A.Bounds.violation) -> v.what)
       (A.Bounds.check certified ~convergence_time:1. ~updates_sent:10));
  Alcotest.(check (list string)) "blown certified bound flagged"
    [ "convergence-time" ]
    (List.map
       (fun (v : A.Bounds.violation) -> v.what)
       (A.Bounds.check certified
          ~convergence_time:(certified.time_bound_s +. 1.)
          ~updates_sent:10));
  let heuristic =
    A.Bounds.derive ~graph ~origin:0 ~mrai:30. ~params:Netcore.Params.default
      ~enumeration ~certified_event:false ()
  in
  Alcotest.(check (list string)) "heuristic bound not enforced by default" []
    (List.map
       (fun (v : A.Bounds.violation) -> v.what)
       (A.Bounds.check heuristic
          ~convergence_time:(heuristic.time_bound_s +. 1.)
          ~updates_sent:10))

(* --- experiment wiring --- *)

let test_experiment_analyze_certifies_cliques () =
  List.iter
    (fun (topology, certified) ->
      let spec = Bgpsim.Experiment.default_spec topology in
      let r = Bgpsim.Experiment.analyze spec in
      Alcotest.(check bool)
        (Bgpsim.Experiment.topology_name topology ^ " admissible")
        true
        (A.Preflight.blocking r = []);
      Alcotest.(check string) "verdict" "safe"
        (A.Spvp.verdict_name r.spvp.verdict);
      Alcotest.(check bool) "finite time bound" true
        (r.bounds.time_bound_s < infinity);
      Alcotest.(check string) "certainty"
        (if certified then "certified" else "heuristic")
        (A.Bounds.certainty_name r.bounds.time_certainty))
    [ (Bgpsim.Experiment.Clique 5, true); (Bgpsim.Experiment.B_clique 5, true) ]

let test_experiment_strict_rejects_dangling_scenario () =
  let spec =
    {
      (Bgpsim.Experiment.default_spec (Bgpsim.Experiment.Clique 5)) with
      event =
        Bgpsim.Experiment.Scenario (S.make [ S.At (1., S.Link_fail (0, 9)) ]);
      preflight = A.Preflight.Strict;
    }
  in
  match Bgpsim.Experiment.run spec with
  | exception A.Preflight.Rejected { stage; issues } ->
      Alcotest.(check string) "stage" "scenario-lint" stage;
      let contains hay needle =
        let nh = String.length hay and nn = String.length needle in
        let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
        go 0
      in
      Alcotest.(check bool) "issue names the link" true
        (List.exists (fun m -> contains m "(0,9)") issues)
  | _ -> Alcotest.fail "expected Rejected before any event was scheduled"

let test_experiment_warn_attaches_report_and_bound_holds () =
  let spec =
    {
      (Bgpsim.Experiment.default_spec (Bgpsim.Experiment.Clique 5)) with
      preflight = A.Preflight.Warn;
    }
  in
  let run = Bgpsim.Experiment.run spec in
  (match run.analysis with
  | None -> Alcotest.fail "warn mode must attach the report"
  | Some r ->
      Alcotest.(check string) "certified bound" "certified"
        (A.Bounds.certainty_name r.bounds.time_certainty));
  Alcotest.(check bool) "run converged" true run.outcome.converged;
  Alcotest.(check (list string)) "no certified bound violated" []
    (List.map
       (fun (v : A.Bounds.violation) -> v.what)
       run.bound_violations)

let test_sweep_robust_counts_rejections () =
  let spec =
    {
      (Bgpsim.Experiment.default_spec (Bgpsim.Experiment.Clique 4)) with
      event =
        Bgpsim.Experiment.Scenario (S.make [ S.At (1., S.Node_crash 7) ]);
      preflight = A.Preflight.Strict;
    }
  in
  let robust = Bgpsim.Sweep.over_seeds_robust spec ~seeds:[ 1; 2; 3 ] in
  Alcotest.(check int) "all rejected" 3 (List.length robust.rejected);
  Alcotest.(check (list string)) "no hard failures" []
    (List.map
       (fun (f : Bgpsim.Sweep.run_failure) -> f.message)
       robust.failures);
  Alcotest.(check bool) "no metrics" true (robust.metrics = None)

(* --- property: Safe verdicts are honored by the simulator --- *)

(* random connected graph: a random tree plus a few extra edges *)
let graph_gen =
  QCheck.Gen.(
    int_range 3 7 >>= fun n ->
    list_size (return (n - 1)) (int_bound 1000) >>= fun parents ->
    list_size (int_bound 4) (pair (int_bound (n - 1)) (int_bound (n - 1)))
    >>= fun extra ->
    let seen = Hashtbl.create 16 in
    let edges = ref [] in
    let add u v =
      let key = if u < v then (u, v) else (v, u) in
      if u <> v && not (Hashtbl.mem seen key) then begin
        Hashtbl.add seen key ();
        edges := key :: !edges
      end
    in
    List.iteri (fun i p -> add (i + 1) (p mod (i + 1))) parents;
    List.iter (fun (u, v) -> add u v) extra;
    return (Topo.Graph.create ~n ~edges:!edges))

let prop_safe_configs_converge_within_bound =
  QCheck.Test.make
    ~name:"analyzer-Safe shortest-path configs converge within the bound"
    ~count:40
    (QCheck.make QCheck.Gen.(pair graph_gen (int_range 1 1000)))
    (fun (graph, seed) ->
      let spec =
        {
          (Bgpsim.Experiment.default_spec
             (Bgpsim.Experiment.Custom { graph; origin = 0; name = "rand" }))
          with
          seed;
          mrai = 5.;
          preflight = A.Preflight.Warn;
        }
      in
      let report = Bgpsim.Experiment.analyze spec in
      (* shortest-path is always safe: the analyzer must certify it *)
      (match report.spvp.verdict with
      | A.Spvp.Safe _ -> ()
      | v ->
          QCheck.Test.fail_reportf "expected Safe, got %s"
            (A.Spvp.verdict_name v));
      let run = Bgpsim.Experiment.run spec in
      run.outcome.converged && run.bound_violations = [])

let () =
  Alcotest.run "analysis"
    [
      ( "spvp",
        [
          tc "bad gadget unsafe" test_bad_gadget_unsafe;
          tc "good gadget safe" test_good_gadget_safe;
          tc "clique-5 enumeration" test_clique5_safe_with_expected_enumeration;
          tc "chain depth exact" test_chain_depth_exact;
          tc "budget exhaustion is unknown" test_enumeration_budget_unknown;
          tc "disconnected nodes reported" test_disconnected_nodes_reported;
        ] );
      ( "gao-rexford",
        [
          tc "conformant hierarchy" test_gao_rexford_conformant;
          tc "rejects inconsistent and cyclic"
            test_gao_rexford_rejects_inconsistent_and_cyclic;
        ] );
      ( "lint",
        [
          tc "dangling link" test_lint_dangling_link;
          tc "shadowed epochs" test_lint_shadowed_epochs;
          tc "same-instant conflict" test_lint_same_instant_conflict;
          tc "transient partition" test_lint_transient_partition;
          tc "permanent partition" test_lint_permanent_partition;
          tc "crashed nodes not stranded"
            test_lint_crashed_nodes_not_counted_stranded;
        ] );
      ( "bounds",
        [
          tc "clique closed form" test_clique_rank_closed_form;
          tc "closed form matches enumeration"
            test_clique_closed_form_matches_enumeration;
          tc "certified-only enforcement"
            test_bounds_check_enforces_certified_only;
        ] );
      ( "experiment",
        [
          tc "cliques certified" test_experiment_analyze_certifies_cliques;
          tc "strict rejects dangling scenario"
            test_experiment_strict_rejects_dangling_scenario;
          tc "warn attaches report" test_experiment_warn_attaches_report_and_bound_holds;
          tc "robust sweep counts rejections" test_sweep_robust_counts_rejections;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_safe_configs_converge_within_bound ] );
    ]
