(* Tests for the network substrate: timing parameters, the FIB history,
   the run trace, links and the per-node serial processor. *)

(* --- Params --- *)

let test_params_default_matches_paper () =
  let p = Netcore.Params.default in
  Alcotest.(check (float 0.)) "2 ms links" 0.002 p.link_delay;
  Alcotest.(check (float 0.)) "proc min" 0.1 p.proc_delay_min;
  Alcotest.(check (float 0.)) "proc max" 0.5 p.proc_delay_max;
  Alcotest.(check int) "ttl 128" 128 p.ttl;
  Alcotest.(check (float 0.)) "10 pkt/s" 10. p.pkt_rate;
  Netcore.Params.validate p

let test_params_validation () =
  let raises p =
    try
      Netcore.Params.validate p;
      false
    with Invalid_argument _ -> true
  in
  let d = Netcore.Params.default in
  Alcotest.(check bool) "link" true (raises { d with link_delay = 0. });
  Alcotest.(check bool) "proc order" true
    (raises { d with proc_delay_max = 0.05 });
  Alcotest.(check bool) "ttl" true (raises { d with ttl = 0 });
  Alcotest.(check bool) "rate" true (raises { d with pkt_rate = 0. })

(* --- Fib_history --- *)

let test_fib_initially_empty () =
  let fib = Netcore.Fib_history.create ~n:3 in
  Alcotest.(check bool) "no route" true
    (Netcore.Fib_history.lookup fib ~node:0 ~time:100. = None);
  Alcotest.(check int) "no changes" 0 (Netcore.Fib_history.change_count fib)

let test_fib_lookup_semantics () =
  let fib = Netcore.Fib_history.create ~n:2 in
  Netcore.Fib_history.record fib ~time:1. ~node:0 ~next_hop:(Some 1);
  Netcore.Fib_history.record fib ~time:5. ~node:0 ~next_hop:None;
  let look t = Netcore.Fib_history.lookup fib ~node:0 ~time:t in
  Alcotest.(check bool) "before first" true (look 0.5 = None);
  Alcotest.(check bool) "at change" true (look 1. = Some 1);
  Alcotest.(check bool) "between" true (look 3. = Some 1);
  Alcotest.(check bool) "after withdrawal" true (look 6. = None)

let test_fib_dedupes_no_ops () =
  let fib = Netcore.Fib_history.create ~n:1 in
  Netcore.Fib_history.record fib ~time:1. ~node:0 ~next_hop:(Some 1);
  Netcore.Fib_history.record fib ~time:2. ~node:0 ~next_hop:(Some 1);
  Alcotest.(check int) "one real change" 1
    (Netcore.Fib_history.change_count fib)

let test_fib_rejects_time_regression () =
  let fib = Netcore.Fib_history.create ~n:1 in
  Netcore.Fib_history.record fib ~time:5. ~node:0 ~next_hop:(Some 1);
  Alcotest.(check bool) "raises" true
    (try
       Netcore.Fib_history.record fib ~time:4. ~node:0 ~next_hop:None;
       false
     with Invalid_argument _ -> true)

let test_fib_snapshot_strictly_before () =
  let fib = Netcore.Fib_history.create ~n:2 in
  Netcore.Fib_history.record fib ~time:1. ~node:0 ~next_hop:(Some 1);
  Netcore.Fib_history.record fib ~time:2. ~node:1 ~next_hop:(Some 0);
  let snap = Netcore.Fib_history.snapshot fib ~before:2. in
  Alcotest.(check bool) "node 0 included" true (snap.(0) = Some 1);
  Alcotest.(check bool) "change at boundary excluded" true (snap.(1) = None)

let test_fib_changes_from () =
  let fib = Netcore.Fib_history.create ~n:2 in
  Netcore.Fib_history.record fib ~time:1. ~node:0 ~next_hop:(Some 1);
  Netcore.Fib_history.record fib ~time:3. ~node:1 ~next_hop:(Some 0);
  Netcore.Fib_history.record fib ~time:4. ~node:0 ~next_hop:None;
  let changes = Netcore.Fib_history.changes_from fib ~from:3. in
  Alcotest.(check int) "two changes" 2 (List.length changes);
  let first = List.hd changes in
  Alcotest.(check int) "chronological" 1 first.Netcore.Fib_history.node;
  Alcotest.(check bool) "last time" true
    (Netcore.Fib_history.last_change_time fib = Some 4.)

let test_fib_equal_time_changes_keep_order () =
  let fib = Netcore.Fib_history.create ~n:3 in
  Netcore.Fib_history.record fib ~time:1. ~node:2 ~next_hop:(Some 0);
  Netcore.Fib_history.record fib ~time:1. ~node:1 ~next_hop:(Some 2);
  let changes = Netcore.Fib_history.changes_from fib ~from:0. in
  Alcotest.(check (list int)) "recording order"
    [ 2; 1 ]
    (List.map (fun c -> c.Netcore.Fib_history.node) changes)

let prop_fib_lookup_matches_reference =
  (* Compare binary-search lookups against a naive scan over a random
     change schedule. *)
  QCheck.Test.make ~name:"fib lookup matches linear reference" ~count:100
    QCheck.(
      list_of_size
        Gen.(int_range 1 40)
        (pair (float_range 0. 100.) (option (int_bound 4))))
    (fun raw ->
      let changes =
        List.sort (fun (a, _) (b, _) -> compare a b) raw
      in
      let fib = Netcore.Fib_history.create ~n:1 in
      List.iter
        (fun (time, nh) ->
          Netcore.Fib_history.record fib ~time ~node:0 ~next_hop:nh)
        changes;
      (* reference: last recorded value at or before t, skipping no-ops
         exactly as record does *)
      let reference t =
        let applied = ref None and current = ref None in
        List.iter
          (fun (time, nh) ->
            if nh <> !current then begin
              current := nh;
              if time <= t then applied := nh
            end)
          changes;
        !applied
      in
      List.for_all
        (fun t ->
          Netcore.Fib_history.lookup fib ~node:0 ~time:t = reference t)
        [ 0.; 10.; 25.; 50.; 75.; 99.; 100.; 200. ])

(* --- Trace --- *)

let test_trace_send_log () =
  let trace = Netcore.Trace.create ~n:3 in
  Netcore.Trace.log_send trace ~time:1. ~src:0 ~dst:1 ~kind:Netcore.Trace.Announce;
  Netcore.Trace.log_send trace ~time:2. ~src:1 ~dst:2 ~kind:Netcore.Trace.Withdraw;
  Netcore.Trace.log_send trace ~time:3. ~src:2 ~dst:0 ~kind:Netcore.Trace.Announce;
  Alcotest.(check int) "all" 3 (Netcore.Trace.send_count_from trace ~from:0.);
  Alcotest.(check int) "from 2" 2 (Netcore.Trace.send_count_from trace ~from:2.);
  Alcotest.(check int) "announces from 2" 1
    (Netcore.Trace.count_kind_from trace ~from:2. ~kind:Netcore.Trace.Announce);
  Alcotest.(check bool) "last send" true
    (Netcore.Trace.last_send_at_or_after trace ~from:0. = Some 3.);
  Alcotest.(check bool) "none after 5" true
    (Netcore.Trace.last_send_at_or_after trace ~from:5. = None)

let test_trace_link_events () =
  let trace = Netcore.Trace.create ~n:2 in
  Netcore.Trace.log_link_event trace ~time:1. ~a:0 ~b:1 ~up:false;
  match Netcore.Trace.link_events trace with
  | [ e ] ->
      Alcotest.(check bool) "down" false e.Netcore.Trace.up;
      Alcotest.(check (float 0.)) "time" 1. e.Netcore.Trace.time
  | _ -> Alcotest.fail "expected one event"

(* --- Link --- *)

let test_link_delivers_with_delay () =
  let engine = Dessim.Engine.create () in
  let link = Netcore.Link.create ~a:0 ~b:1 ~delay:0.002 in
  let arrived = ref (-1.) in
  let sent =
    Netcore.Link.send link ~engine ~from:0 ~deliver:(fun () ->
        arrived := Dessim.Engine.now engine)
  in
  Alcotest.(check bool) "sent" true sent;
  Dessim.Engine.run engine;
  Alcotest.(check (float 1e-12)) "delay" 0.002 !arrived

let test_link_down_refuses_send () =
  let engine = Dessim.Engine.create () in
  let link = Netcore.Link.create ~a:0 ~b:1 ~delay:0.002 in
  Netcore.Link.fail link;
  Alcotest.(check bool) "down" false (Netcore.Link.is_up link);
  let sent = Netcore.Link.send link ~engine ~from:0 ~deliver:(fun () -> ()) in
  Alcotest.(check bool) "refused" false sent

let test_link_drops_in_flight_on_failure () =
  let engine = Dessim.Engine.create () in
  let link = Netcore.Link.create ~a:0 ~b:1 ~delay:1. in
  let arrived = ref false in
  ignore
    (Netcore.Link.send link ~engine ~from:0 ~deliver:(fun () -> arrived := true));
  (* fail the link before the message lands *)
  ignore (Dessim.Engine.schedule engine ~at:0.5 (fun () -> Netcore.Link.fail link));
  Dessim.Engine.run engine;
  Alcotest.(check bool) "message lost" false !arrived

let test_link_restore_uses_new_epoch () =
  let engine = Dessim.Engine.create () in
  let link = Netcore.Link.create ~a:0 ~b:1 ~delay:1. in
  let arrived = ref 0 in
  ignore
    (Netcore.Link.send link ~engine ~from:0 ~deliver:(fun () -> incr arrived));
  ignore
    (Dessim.Engine.schedule engine ~at:0.2 (fun () ->
         Netcore.Link.fail link;
         Netcore.Link.restore link;
         (* a message sent after restore must arrive *)
         ignore
           (Netcore.Link.send link ~engine ~from:1 ~deliver:(fun () ->
                incr arrived))));
  Dessim.Engine.run engine;
  (* the pre-failure message is lost, the post-restore one arrives *)
  Alcotest.(check int) "only fresh epoch" 1 !arrived

let test_link_fail_idempotent () =
  let link = Netcore.Link.create ~a:0 ~b:1 ~delay:1. in
  Netcore.Link.fail link;
  Netcore.Link.fail link;
  Alcotest.(check int) "double fail bumps epoch once" 1
    (Netcore.Link.epoch link);
  Alcotest.(check bool) "still down" false (Netcore.Link.is_up link);
  Netcore.Link.restore link;
  Netcore.Link.restore link;
  Alcotest.(check int) "double restore bumps epoch once" 2
    (Netcore.Link.epoch link);
  Alcotest.(check bool) "up again" true (Netcore.Link.is_up link)

let test_link_stale_epoch_dropped_across_flap () =
  (* A message in flight across a full fail/recover cycle must not be
     delivered: the link is up on arrival but the epoch moved on. *)
  let engine = Dessim.Engine.create () in
  let link = Netcore.Link.create ~a:0 ~b:1 ~delay:1. in
  let stale = ref false and fresh = ref false in
  ignore
    (Netcore.Link.send link ~engine ~from:0 ~deliver:(fun () -> stale := true));
  ignore
    (Dessim.Engine.schedule engine ~at:0.1 (fun () -> Netcore.Link.fail link));
  ignore
    (Dessim.Engine.schedule engine ~at:0.2 (fun () ->
         Netcore.Link.restore link;
         ignore
           (Netcore.Link.send link ~engine ~from:0 ~deliver:(fun () ->
                fresh := true))));
  Dessim.Engine.run engine;
  Alcotest.(check bool) "stale message dropped" false !stale;
  Alcotest.(check bool) "fresh message delivered" true !fresh

let test_link_epoch_guard_off_reports () =
  (* With the guard disabled the stale message gets through, and the
     attached checker records the violation. *)
  let engine = Dessim.Engine.create () in
  let link = Netcore.Link.create ~a:0 ~b:1 ~delay:1. in
  let checker = Faults.Invariant.create Faults.Invariant.Record in
  Netcore.Link.attach_checker link checker;
  Netcore.Link.set_epoch_guard link false;
  let stale = ref false in
  ignore
    (Netcore.Link.send link ~engine ~from:0 ~deliver:(fun () -> stale := true));
  ignore
    (Dessim.Engine.schedule engine ~at:0.1 (fun () ->
         Netcore.Link.fail link;
         Netcore.Link.restore link));
  Dessim.Engine.run engine;
  Alcotest.(check bool) "stale message delivered" true !stale;
  Alcotest.(check int) "violation recorded" 1
    (Faults.Invariant.count checker Faults.Invariant.Stale_epoch_delivery)

let test_link_chaos_loss_and_dup () =
  let deliveries ~loss ~dup =
    let engine = Dessim.Engine.create () in
    let link = Netcore.Link.create ~a:0 ~b:1 ~delay:0.1 in
    Netcore.Link.set_chaos link ~loss ~dup
      ~rng:(Dessim.Rng.create ~seed:42) ();
    let n = ref 0 in
    for _ = 1 to 50 do
      ignore (Netcore.Link.send link ~engine ~from:0 ~deliver:(fun () -> incr n))
    done;
    Dessim.Engine.run engine;
    !n
  in
  Alcotest.(check int) "loss=1 drops all" 0 (deliveries ~loss:1. ~dup:0.);
  Alcotest.(check int) "dup=1 doubles all" 100 (deliveries ~loss:0. ~dup:1.);
  let a = deliveries ~loss:0.3 ~dup:0.2 in
  let b = deliveries ~loss:0.3 ~dup:0.2 in
  Alcotest.(check int) "same seed, same outcome" a b;
  Alcotest.(check bool) "mixed chaos in range" true (a > 0 && a < 100)

let test_link_rejects_non_endpoint () =
  let engine = Dessim.Engine.create () in
  let link = Netcore.Link.create ~a:0 ~b:1 ~delay:1. in
  Alcotest.(check bool) "raises" true
    (try
       ignore (Netcore.Link.send link ~engine ~from:7 ~deliver:(fun () -> ()));
       false
     with Invalid_argument _ -> true)

(* --- Node_proc --- *)

let test_node_proc_serializes () =
  let engine = Dessim.Engine.create () in
  let proc = Netcore.Node_proc.create () in
  let completions = ref [] in
  let submit delay tag =
    Netcore.Node_proc.submit proc ~engine ~delay ~work:(fun () ->
        completions := (tag, Dessim.Engine.now engine) :: !completions)
  in
  (* two messages arriving back-to-back at t=0 *)
  submit 0.3 "first";
  submit 0.2 "second";
  Dessim.Engine.run engine;
  match List.rev !completions with
  | [ ("first", t1); ("second", t2) ] ->
      Alcotest.(check (float 1e-9)) "first at own delay" 0.3 t1;
      Alcotest.(check (float 1e-9)) "second queued behind" 0.5 t2
  | _ -> Alcotest.fail "wrong completion order"

let test_node_proc_idle_gap () =
  let engine = Dessim.Engine.create () in
  let proc = Netcore.Node_proc.create () in
  let finish = ref 0. in
  Netcore.Node_proc.submit proc ~engine ~delay:0.1 ~work:(fun () ->
      finish := Dessim.Engine.now engine);
  Dessim.Engine.run engine;
  Alcotest.(check (float 1e-9)) "first done" 0.1 !finish;
  (* a message arriving after the CPU went idle starts immediately *)
  ignore
    (Dessim.Engine.schedule engine ~at:5. (fun () ->
         Netcore.Node_proc.submit proc ~engine ~delay:0.1 ~work:(fun () ->
             finish := Dessim.Engine.now engine)));
  Dessim.Engine.run engine;
  Alcotest.(check (float 1e-9)) "no stale backlog" 5.1 !finish

let test_node_proc_queue_depth () =
  let engine = Dessim.Engine.create () in
  let proc = Netcore.Node_proc.create () in
  Netcore.Node_proc.submit proc ~engine ~delay:0.5 ~work:(fun () -> ());
  Netcore.Node_proc.submit proc ~engine ~delay:0.5 ~work:(fun () -> ());
  Alcotest.(check int) "two queued" 2 (Netcore.Node_proc.queue_depth proc);
  Dessim.Engine.run engine;
  Alcotest.(check int) "drained" 0 (Netcore.Node_proc.queue_depth proc);
  Alcotest.(check (float 1e-9)) "busy_until" 1.
    (Netcore.Node_proc.busy_until proc)

let test_node_proc_rejects_negative () =
  let engine = Dessim.Engine.create () in
  let proc = Netcore.Node_proc.create () in
  Alcotest.(check bool) "raises" true
    (try
       Netcore.Node_proc.submit proc ~engine ~delay:(-0.1) ~work:(fun () -> ());
       false
     with Invalid_argument _ -> true)

let () =
  let tc name f = Alcotest.test_case name `Quick f in
  Alcotest.run "netcore"
    [
      ( "params",
        [
          tc "defaults match the paper" test_params_default_matches_paper;
          tc "validation" test_params_validation;
        ] );
      ( "fib-history",
        [
          tc "initially empty" test_fib_initially_empty;
          tc "lookup semantics" test_fib_lookup_semantics;
          tc "no-op changes dropped" test_fib_dedupes_no_ops;
          tc "rejects time regression" test_fib_rejects_time_regression;
          tc "snapshot is strictly-before" test_fib_snapshot_strictly_before;
          tc "changes_from" test_fib_changes_from;
          tc "equal-time order kept" test_fib_equal_time_changes_keep_order;
          QCheck_alcotest.to_alcotest prop_fib_lookup_matches_reference;
        ] );
      ( "trace",
        [
          tc "send log and counts" test_trace_send_log;
          tc "link events" test_trace_link_events;
        ] );
      ( "link",
        [
          tc "delivers with delay" test_link_delivers_with_delay;
          tc "down link refuses" test_link_down_refuses_send;
          tc "in-flight loss on failure" test_link_drops_in_flight_on_failure;
          tc "restore gets fresh epoch" test_link_restore_uses_new_epoch;
          tc "fail and restore idempotent" test_link_fail_idempotent;
          tc "stale epoch dropped across flap"
            test_link_stale_epoch_dropped_across_flap;
          tc "epoch guard off reports violation" test_link_epoch_guard_off_reports;
          tc "chaos loss and duplication" test_link_chaos_loss_and_dup;
          tc "rejects non-endpoint" test_link_rejects_non_endpoint;
        ] );
      ( "node-proc",
        [
          tc "serializes processing" test_node_proc_serializes;
          tc "idle gap resets" test_node_proc_idle_gap;
          tc "queue depth" test_node_proc_queue_depth;
          tc "rejects negative delay" test_node_proc_rejects_negative;
        ] );
    ]
