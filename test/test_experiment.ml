(* Tests for the experiment driver, sweeps and report rendering. *)

open Bgpsim

let test_topology_names () =
  Alcotest.(check string) "clique" "clique-15"
    (Experiment.topology_name (Experiment.Clique 15));
  Alcotest.(check string) "b-clique" "b-clique-10"
    (Experiment.topology_name (Experiment.B_clique 10));
  Alcotest.(check string) "internet" "internet-110"
    (Experiment.topology_name (Experiment.Internet 110));
  Alcotest.(check string) "custom" "mine"
    (Experiment.topology_name
       (Experiment.Custom
          { graph = Topo.Generators.clique 3; origin = 0; name = "mine" }))

let test_node_counts () =
  Alcotest.(check int) "clique" 15 (Experiment.node_count (Experiment.Clique 15));
  Alcotest.(check int) "b-clique doubles" 20
    (Experiment.node_count (Experiment.B_clique 10));
  Alcotest.(check int) "internet" 48
    (Experiment.node_count (Experiment.Internet 48))

let test_resolve_clique () =
  let spec = Experiment.default_spec (Experiment.Clique 6) in
  let graph, origin, event = Experiment.resolve spec in
  Alcotest.(check int) "size" 6 (Topo.Graph.n_nodes graph);
  Alcotest.(check int) "origin is node 0" 0 origin;
  Alcotest.(check bool) "tdown" true (event = Bgp.Routing_sim.Tdown)

let test_resolve_b_clique_tlong () =
  let spec =
    { (Experiment.default_spec (Experiment.B_clique 5)) with
      event = Experiment.Tlong }
  in
  let _, origin, event = Experiment.resolve spec in
  Alcotest.(check int) "origin" 0 origin;
  Alcotest.(check bool) "canonical link (0, n)" true
    (event = Bgp.Routing_sim.Tlong { a = 0; b = 5 })

let test_resolve_internet_stub_destination () =
  let spec = Experiment.default_spec (Experiment.Internet 48) in
  let graph, origin, _ = Experiment.resolve spec in
  let dmin =
    List.fold_left
      (fun acc v -> Stdlib.min acc (Topo.Graph.degree graph v))
      max_int (Topo.Graph.nodes graph)
  in
  Alcotest.(check int) "destination is a stub" dmin
    (Topo.Graph.degree graph origin)

let test_resolve_internet_tlong_survivable () =
  let spec =
    { (Experiment.default_spec (Experiment.Internet 48)) with
      event = Experiment.Tlong; seed = 2 }
  in
  let graph, origin, event = Experiment.resolve spec in
  match event with
  | Bgp.Routing_sim.Tlong { a; b } ->
      Alcotest.(check bool) "link touches destination" true
        (a = origin || b = origin);
      Alcotest.(check bool) "graph survives" true
        (Topo.Graph.is_connected (Topo.Graph.remove_edge graph a b))
  | Bgp.Routing_sim.Tdown | Bgp.Routing_sim.Tup | Bgp.Routing_sim.Trecover _
  | Bgp.Routing_sim.Tshort _ | Bgp.Routing_sim.Scenario _ ->
      Alcotest.fail "expected Tlong"

let test_resolve_deterministic () =
  let spec =
    { (Experiment.default_spec (Experiment.Internet 29)) with
      event = Experiment.Tlong; seed = 5 }
  in
  let _, o1, e1 = Experiment.resolve spec in
  let _, o2, e2 = Experiment.resolve spec in
  Alcotest.(check int) "origin stable" o1 o2;
  Alcotest.(check bool) "event stable" true (e1 = e2)

let test_resolve_explicit_link () =
  let spec =
    { (Experiment.default_spec (Experiment.Clique 4)) with
      event = Experiment.Tlong_link (0, 2) }
  in
  let _, _, event = Experiment.resolve spec in
  Alcotest.(check bool) "explicit" true
    (event = Bgp.Routing_sim.Tlong { a = 0; b = 2 })

let test_resolve_random_models () =
  List.iter
    (fun topology ->
      let spec = { (Experiment.default_spec topology) with mrai = 5. } in
      let graph, origin, _ = Experiment.resolve spec in
      Alcotest.(check int)
        (Experiment.topology_name topology ^ " size")
        (Experiment.node_count topology)
        (Topo.Graph.n_nodes graph);
      Alcotest.(check bool) "connected" true (Topo.Graph.is_connected graph);
      (* destination convention matches Internet: a min-degree node *)
      let dmin =
        List.fold_left
          (fun acc v -> Stdlib.min acc (Topo.Graph.degree graph v))
          max_int (Topo.Graph.nodes graph)
      in
      Alcotest.(check int) "stub destination" dmin
        (Topo.Graph.degree graph origin);
      let m = Experiment.metrics spec in
      Alcotest.(check bool) "runs and converges" true m.converged)
    [ Experiment.Waxman 12; Experiment.Glp 12 ]

let test_run_custom_topology () =
  let graph = Topo.Generators.ring 6 in
  let spec =
    Experiment.default_spec
      (Experiment.Custom { graph; origin = 2; name = "ring-6" })
  in
  let r = Experiment.run { spec with mrai = 5. } in
  Alcotest.(check bool) "converged" true r.metrics.converged;
  Alcotest.(check bool) "withdrawals propagate on Tdown" true
    (r.metrics.withdrawals_sent > 0)

let test_run_determinism () =
  let spec =
    { (Experiment.default_spec (Experiment.Clique 5)) with mrai = 5. }
  in
  let a = Experiment.metrics spec and b = Experiment.metrics spec in
  Alcotest.(check (float 0.)) "conv" a.convergence_time b.convergence_time;
  Alcotest.(check int) "exh" a.ttl_exhaustions b.ttl_exhaustions;
  Alcotest.(check int) "packets" a.packets_sent b.packets_sent

let non_converged_spec =
  (* a 50-event budget exhausts mid-warm-up on a clique-8 T_down *)
  { (Experiment.default_spec (Experiment.Clique 8)) with max_events = 50 }

let test_non_converged_still_timed () =
  let r = Experiment.run non_converged_spec in
  (match Experiment.status r.outcome with
  | Experiment.Non_converged { termination; events_executed; _ } ->
      Alcotest.(check bool) "event budget hit" true
        (termination = Bgp.Routing_sim.Event_budget);
      Alcotest.(check bool) "budget respected" true (events_executed <= 50)
  | Experiment.Completed -> Alcotest.fail "expected Non_converged");
  Alcotest.(check bool) "not converged" false r.metrics.converged;
  (* every exit must yield timed metrics: a budget-exhausted run still
     reports the wall-clock it actually burned *)
  Alcotest.(check bool) "wall clock measured" true
    (r.metrics.wall_clock_s > 0.)

let test_non_converged_vtime_budget_timed () =
  let spec =
    { (Experiment.default_spec (Experiment.Clique 8)) with
      max_vtime = Some 0.5 }
  in
  let r = Experiment.run spec in
  Alcotest.(check bool) "not converged" false r.metrics.converged;
  Alcotest.(check bool) "wall clock measured" true
    (r.metrics.wall_clock_s > 0.);
  match Experiment.status r.outcome with
  | Experiment.Non_converged { termination; _ } ->
      Alcotest.(check bool) "vtime budget hit" true
        (termination = Bgp.Routing_sim.Vtime_budget)
  | Experiment.Completed -> Alcotest.fail "expected Non_converged"

let test_non_converged_survives_analysis () =
  (* a truncated FIB history must not abort the pipeline at any
     truncation point: replay and loop scan either analyze what exists
     or fall back to empty results — never raise *)
  List.iter
    (fun max_events ->
      let r = Experiment.run { non_converged_spec with max_events } in
      Alcotest.(check bool)
        (Printf.sprintf "budget %d yields timed metrics" max_events)
        true
        ((not r.metrics.converged) && r.metrics.wall_clock_s > 0.))
    [ 10; 50; 200 ]

(* --- wall-clock watchdog (spec.max_wall_s) --- *)

let test_wall_budget_exhausted_at_start () =
  (* a zero budget expires before the first event: structured
     [Wall_budget] termination, empty analyses, no exception *)
  let spec =
    { (Experiment.default_spec (Experiment.Clique 8)) with
      max_wall_s = Some 0. }
  in
  let r = Experiment.run spec in
  (match Experiment.status r.outcome with
  | Experiment.Non_converged { termination; _ } ->
      Alcotest.(check bool) "wall budget hit" true
        (termination = Bgp.Routing_sim.Wall_budget)
  | Experiment.Completed -> Alcotest.fail "expected Non_converged");
  Alcotest.(check bool) "not converged" false r.metrics.converged;
  Alcotest.(check int) "loop scan degraded to empty" 0
    (List.length r.loops.loops);
  Alcotest.(check int) "replay degraded to empty" 0 r.replay.sent;
  Alcotest.(check (list string)) "no bound violations claimed" []
    (List.map
       (fun (v : Analysis.Bounds.violation) -> v.what)
       r.bound_violations)

let test_wall_budget_expiring_after_sim_skips_analysis () =
  (* a fake clock that jumps past the budget once the simulation has
     drained: the run itself completes, but replay and loop scan
     re-check expiry and degrade to their empty fallbacks *)
  let fib_changes = ref 0 in
  let sink =
    Obs.Sink.fn (fun ev ->
        match ev with Obs.Event.Fib_change _ -> incr fib_changes | _ -> ())
  in
  let obs = Obs.Bus.create ~sink () in
  let clock () = if !fib_changes > 0 then 1e9 else 0. in
  let wd = Faults.Watchdog.create ~clock ~max_wall_s:1. () in
  let spec = Experiment.default_spec (Experiment.Clique 6) in
  let r = Experiment.run ~obs ~watchdog:wd spec in
  Alcotest.(check bool) "warm-up produced FIB changes" true (!fib_changes > 0);
  (match Experiment.status r.outcome with
  | Experiment.Non_converged { termination; _ } ->
      Alcotest.(check bool) "wall budget termination" true
        (termination = Bgp.Routing_sim.Wall_budget)
  | Experiment.Completed -> Alcotest.fail "expected Non_converged");
  Alcotest.(check int) "loop scan skipped" 0 (List.length r.loops.loops);
  Alcotest.(check int) "replay skipped" 0 r.replay.sent;
  Alcotest.(check bool) "wall clock still measured" true
    (r.metrics.wall_clock_s > 0.)

let test_generous_wall_budget_is_transparent () =
  (* a watchdog that never fires must not perturb the run: metrics
     match the unwatched baseline exactly *)
  let spec =
    { (Experiment.default_spec (Experiment.Clique 6)) with mrai = 5. }
  in
  let base = Experiment.run spec in
  let watched = Experiment.run { spec with max_wall_s = Some 1e6 } in
  Alcotest.(check bool) "converged" true watched.metrics.converged;
  Alcotest.(check (float 0.)) "convergence time"
    base.metrics.convergence_time watched.metrics.convergence_time;
  Alcotest.(check int) "updates" base.metrics.updates_sent
    watched.metrics.updates_sent;
  Alcotest.(check int) "packets" base.metrics.packets_sent
    watched.metrics.packets_sent;
  Alcotest.(check int) "loops" (List.length base.loops.loops)
    (List.length watched.loops.loops)

(* --- Sweep --- *)

let test_over_seeds_averages () =
  let spec =
    { (Experiment.default_spec (Experiment.Clique 5)) with mrai = 5. }
  in
  let m1 = Experiment.metrics { spec with seed = 1 } in
  let m2 = Experiment.metrics { spec with seed = 2 } in
  let avg = Sweep.over_seeds spec ~seeds:[ 1; 2 ] in
  Alcotest.(check (float 1e-9)) "mean of two"
    ((m1.convergence_time +. m2.convergence_time) /. 2.)
    avg.convergence_time

let test_over_seeds_rejects_empty () =
  let spec = Experiment.default_spec (Experiment.Clique 5) in
  Alcotest.check_raises "empty" (Invalid_argument "Sweep.over_seeds: empty seed list")
    (fun () -> ignore (Sweep.over_seeds spec ~seeds:[]))

let test_series_shape () =
  let make n =
    { (Experiment.default_spec (Experiment.Clique n)) with mrai = 2. }
  in
  let series = Sweep.series ~make ~seeds:[ 1 ] [ 4; 5; 6 ] in
  Alcotest.(check (list int)) "x values preserved" [ 4; 5; 6 ]
    (List.map fst series);
  List.iter
    (fun (_, (m : Metrics.Run_metrics.t)) ->
      Alcotest.(check bool) "each point converged" true m.converged)
    series

let test_over_seeds_summary () =
  let spec =
    { (Experiment.default_spec (Experiment.Clique 5)) with mrai = 5. }
  in
  let s =
    Sweep.over_seeds_summary spec ~seeds:[ 1; 2; 3 ]
      ~metric:(fun (m : Metrics.Run_metrics.t) -> m.convergence_time)
  in
  Alcotest.(check int) "n" 3 s.n;
  Alcotest.(check bool) "ordered" true (s.min <= s.mean && s.mean <= s.max);
  let m1 = Experiment.metrics { spec with seed = 1 } in
  Alcotest.(check bool) "contains seed-1 run" true
    (m1.convergence_time >= s.min && m1.convergence_time <= s.max)

let test_linearity_helper () =
  let make m =
    { (Experiment.default_spec (Experiment.Clique 5)) with mrai = m }
  in
  let series = Sweep.series ~make ~seeds:[ 1 ] [ 2.; 4.; 8. ] in
  let fit =
    Sweep.linearity series ~x:Fun.id
      ~y:(fun (m : Metrics.Run_metrics.t) -> m.convergence_time)
  in
  (* convergence grows with MRAI: positive slope, decent fit *)
  Alcotest.(check bool) "positive slope" true (fit.slope > 0.)

(* --- Report --- *)

let test_table_layout () =
  let text =
    Report.table ~title:"T" ~header:[ "a"; "bb" ]
      ~rows:[ [ "1"; "2" ]; [ "333"; "4" ] ]
  in
  let lines = String.split_on_char '\n' text in
  (match lines with
  | title :: header :: rule :: _ ->
      Alcotest.(check string) "title" "T" title;
      Alcotest.(check bool) "header aligned" true
        (String.length header >= String.length "a    bb");
      Alcotest.(check bool) "rule dashes" true
        (String.for_all (fun c -> c = '-' || c = ' ') rule)
  | _ -> Alcotest.fail "expected at least three lines");
  Alcotest.(check int) "line count (trailing newline)" 6 (List.length lines)

let test_table_pads_short_rows () =
  let text = Report.table ~title:"T" ~header:[ "a"; "b" ] ~rows:[ [ "x" ] ] in
  Alcotest.(check bool) "renders" true (String.length text > 0)

let test_table_rejects_wide_rows () =
  Alcotest.check_raises "wide" (Invalid_argument "Report.table: row wider than header")
    (fun () ->
      ignore (Report.table ~title:"T" ~header:[ "a" ] ~rows:[ [ "1"; "2" ] ]))

let test_cells () =
  Alcotest.(check string) "float" "3.14" (Report.float_cell 3.14159);
  Alcotest.(check string) "ratio" "86.0%" (Report.ratio_cell 0.86)

let () =
  let tc name f = Alcotest.test_case name `Quick f in
  Alcotest.run "experiment"
    [
      ( "spec",
        [
          tc "topology names" test_topology_names;
          tc "node counts" test_node_counts;
        ] );
      ( "resolve",
        [
          tc "clique" test_resolve_clique;
          tc "b-clique Tlong canonical link" test_resolve_b_clique_tlong;
          tc "internet destination is a stub"
            test_resolve_internet_stub_destination;
          tc "internet Tlong survivable" test_resolve_internet_tlong_survivable;
          tc "deterministic in seed" test_resolve_deterministic;
          tc "explicit Tlong link" test_resolve_explicit_link;
          tc "waxman and glp models" test_resolve_random_models;
        ] );
      ( "run",
        [
          tc "custom topology" test_run_custom_topology;
          tc "deterministic" test_run_determinism;
          tc "non-converged still timed" test_non_converged_still_timed;
          tc "non-converged vtime budget timed"
            test_non_converged_vtime_budget_timed;
          tc "non-converged survives analysis"
            test_non_converged_survives_analysis;
        ] );
      ( "wall budget",
        [
          tc "exhausted at start" test_wall_budget_exhausted_at_start;
          tc "expiry after sim skips analysis"
            test_wall_budget_expiring_after_sim_skips_analysis;
          tc "generous budget is transparent"
            test_generous_wall_budget_is_transparent;
        ] );
      ( "sweep",
        [
          tc "over_seeds averages" test_over_seeds_averages;
          tc "over_seeds rejects empty" test_over_seeds_rejects_empty;
          tc "series shape" test_series_shape;
          tc "seed dispersion summary" test_over_seeds_summary;
          tc "linearity helper" test_linearity_helper;
        ] );
      ( "report",
        [
          tc "table layout" test_table_layout;
          tc "pads short rows" test_table_pads_short_rows;
          tc "rejects wide rows" test_table_rejects_wide_rows;
          tc "cells" test_cells;
        ] );
    ]
