(* Extension beyond the paper: run the same T_down measurement under a
   realistic customer/provider/peer (Gao-Rexford) routing policy with
   valley-free export, and compare against the paper's shortest-path
   policy on the same topology.

     dune exec examples/policy_gao_rexford.exe *)

let run_with ~policy_name ~policy ~graph ~origin ~seed =
  let config = { Bgp.Config.default with policy } in
  let outcome =
    Bgp.Routing_sim.run ~config ~graph ~origin ~event:Bgp.Routing_sim.Tdown
      ~seed ()
  in
  let fib = Netcore.Trace.fib outcome.trace in
  let window_end = outcome.convergence_end +. 2. in
  let replay =
    Traffic.Replay.run ~fib ~origin ~n:(Topo.Graph.n_nodes graph)
      ~link_delay:0.002 ~ttl:128 ~rate:10.
      ~window:(outcome.t_fail, window_end)
      ~seed:(seed + 77) ~ratio_cutoff:outcome.convergence_end ()
  in
  let loops = Loopscan.Scanner.scan ~fib ~origin ~from:outcome.t_fail () in
  Format.printf
    "%-14s conv=%6.1fs  ttl-exh=%6d  ratio=%.3f  loops=%d  msgs=%d@."
    policy_name
    (Bgp.Routing_sim.convergence_time outcome)
    replay.exhausted
    (Traffic.Replay.looping_ratio replay)
    (List.length loops.loops)
    (outcome.updates_after_fail + outcome.withdrawals_after_fail)

let () =
  let n = 75 in
  let graph = Topo.Internet.generate ~seed:1 n in
  let origin = List.hd (Topo.Internet.stub_nodes graph) in
  Format.printf
    "T_down at stub AS %d of a %d-node Internet-derived topology,@.\
     shortest-path policy (the paper's) vs Gao-Rexford policy@.\
     (provider/customer roles assigned by degree, valley-free export):@.@."
    origin n;
  run_with ~policy_name:"shortest-path" ~policy:Bgp.Policy.shortest_path ~graph
    ~origin ~seed:1;
  let rel = Bgp.Policy.relationships_by_degree graph in
  run_with ~policy_name:"gao-rexford"
    ~policy:(Bgp.Policy.gao_rexford ~rel)
    ~graph ~origin ~seed:1;
  Format.printf
    "@.Valley-free export filters prune most of the alternate paths a node@.\
     may explore after the failure, so policy routing converges with fewer@.\
     messages — at the price of using non-shortest paths in steady state.@."
