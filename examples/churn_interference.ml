(* Extension beyond the paper: multiple prefixes share each router's
   serial update-processing queue, so background churn on unrelated
   prefixes lengthens a victim prefix's convergence — and with it, its
   transient-loop exposure.

     dune exec examples/churn_interference.exe *)

let () =
  let graph = Topo.Internet.generate ~seed:1 48 in
  let victim_origin = List.hd (Topo.Internet.stub_nodes graph) in
  let background =
    List.filteri (fun i _ -> i < 6)
      (List.filter (fun v -> v <> victim_origin) (Topo.Graph.nodes graph))
  in
  let origins = victim_origin :: background in
  let flappers = List.mapi (fun i _ -> i + 1) background in
  Format.printf
    "Victim: stub AS %d on a 48-node topology; %d background origins.@.@."
    victim_origin (List.length background);
  List.iter
    (fun (label, churn) ->
      let o = Bgp.Multi_sim.run ?churn ~graph ~origins ~victim:0 ~seed:1 () in
      let fib = List.assoc o.victim o.prefixes in
      let loops =
        Loopscan.Scanner.scan ~fib ~origin:victim_origin ~from:o.t_fail ()
      in
      Format.printf
        "%-16s victim conv=%6.1fs  victim loops=%2d  victim msgs=%4d  bg msgs=%5d@."
        label
        (Bgp.Multi_sim.convergence_time o)
        (List.length loops.loops) o.victim_messages o.background_messages)
    [
      ("quiet", None);
      ( "gentle flapping",
        Some { Bgp.Multi_sim.period = 60.; cycles = 6; flappers } );
      ( "heavy flapping",
        Some { Bgp.Multi_sim.period = 10.; cycles = 36; flappers } );
    ];
  Format.printf
    "@.The failure injected for the victim is identical in all three runs;@.\
     what changes is that its updates queue behind background work on every@.\
     shared router, which delays decisions, re-times MRAI rounds and can@.\
     lengthen path exploration itself (note the victim message counts).@.\
     The MRAI timer still dominates loop duration (the paper's claim) —@.\
     churn adds tens of seconds where the timer adds minutes.@."
