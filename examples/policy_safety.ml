(* Policy safety: Griffin & Wilfong's BAD GADGET oscillates forever
   under BGP, while the same topology under valley-free Gao-Rexford
   preferences is provably convergent.  The simulator's event budget
   turns divergence into a measurable verdict — and the static
   dispute-digraph analyzer (DESIGN.md §11) predicts each verdict
   before a single event is scheduled.

     dune exec examples/policy_safety.exe *)

let gadget_graph () =
  (* origin 0 with three mutually-connected neighbors *)
  Topo.Graph.create ~n:4
    ~edges:[ (0, 1); (0, 2); (0, 3); (1, 2); (2, 3); (1, 3) ]

(* each node prefers the 2-hop path through its clockwise neighbor over
   its own direct path — the circular envy that admits no stable
   assignment *)
let gadget_policy () =
  let clockwise = function 1 -> 2 | 2 -> 3 | 3 -> 1 | _ -> 0 in
  let rank ~self (c : Bgp.Policy.candidate) =
    match Bgp.As_path.to_list c.path with
    | [ v; 0 ] when v = clockwise self -> 0
    | [ 0 ] -> 1
    | _ -> 2
  in
  let prefer ~self a b =
    let c = compare (rank ~self a) (rank ~self b) in
    if c <> 0 then c
    else Bgp.As_path.compare a.Bgp.Policy.path b.Bgp.Policy.path
  in
  { Bgp.Policy.shortest_path with prefer; name = "bad-gadget" }

let verdict ?gr_rel label config =
  let static =
    Analysis.Spvp.analyze ?gr_rel ~graph:(gadget_graph ())
      ~policy:config.Bgp.Config.policy ~origin:0 ()
  in
  let o =
    Bgp.Routing_sim.run ~config ~max_events:200_000 ~graph:(gadget_graph ())
      ~origin:0 ~event:Bgp.Routing_sim.Tdown ~seed:1 ()
  in
  Format.printf "%-24s static: %-8s dynamic: %s  (%d events executed)@." label
    (Analysis.Spvp.verdict_name static.verdict)
    (if o.converged then "CONVERGED" else "OSCILLATES (budget exhausted)")
    o.events_executed

let () =
  Format.printf
    "The same 4-node topology under three policies (budget: 200k events)@.@.";
  verdict "shortest-path"
    Bgp.Config.{ default with mrai = 1. };
  verdict "bad-gadget"
    Bgp.Config.{ default with policy = gadget_policy (); mrai = 1. };
  let rel a b =
    if a = 0 then Bgp.Policy.Provider
    else if b = 0 then Bgp.Policy.Customer
    else Bgp.Policy.Peer_rel
  in
  verdict ~gr_rel:rel "gao-rexford (valley-free)"
    Bgp.Config.{ default with policy = Bgp.Policy.gao_rexford ~rel; mrai = 1. };
  Format.printf
    "@.BAD GADGET never stabilizes no matter how long it runs — the dispute@.\
     wheel keeps turning — while the Gao-Rexford constraints break the@.\
     circular preference and guarantee convergence (Gao & Rexford 2001).@.\
     The static analyzer agrees on every row without simulating: its@.\
     dispute digraph is acyclic exactly when the policy is safe, and@.\
     its witness cycle for BAD GADGET is the wheel itself:@.  %a@."
    Analysis.Spvp.pp
    (Analysis.Spvp.analyze ~graph:(gadget_graph ())
       ~policy:(gadget_policy ()) ~origin:0 ())
