(* Reproduction harness for every figure in the paper's evaluation
   (Figures 4-9; the paper has no tables), plus Bechamel
   micro-benchmarks of the simulator's hot paths and two ablation
   studies of model choices called out in DESIGN.md §6.

     dune exec bench/main.exe                    # everything
     dune exec bench/main.exe -- fig4            # one figure group
     dune exec bench/main.exe -- micro           # just the micro-benchmarks
     dune exec bench/main.exe -- --jobs 4 fig4   # sweeps on 4 worker domains
     dune exec bench/main.exe -- speedup         # sequential-vs-pool timing
     dune exec bench/main.exe -- --json out.json micro
                                                 # machine-readable perf record

   Figure groups share their underlying simulation sweeps: Figures 4
   and 6 are two views (durations vs exhaustions) of the same runs, as
   are Figures 5 and 7.  The figure groups run their (spec, seed)
   batches through a shared Sweep/Parallel domain pool; results are
   identical to a sequential run by construction (see DESIGN.md
   §"Performance"), only faster on multicore hosts. *)

open Bgpsim

let seeds_default = [ 1; 2; 3 ]

let seeds_internet_tlong = [ 1; 2; 3; 4; 5; 6 ]

let clique_sizes = [ 5; 10; 15; 20; 25; 30 ]

let b_clique_sizes = [ 5; 10; 15 ]

let internet_sizes = [ 29; 48; 75; 110 ]

let mrai_values = [ 10.; 20.; 30.; 40.; 50.; 60. ]

let say fmt = Format.printf (fmt ^^ "@.")

let spec_clique n = Experiment.default_spec (Experiment.Clique n)

let spec_b_clique_tlong n =
  {
    (Experiment.default_spec (Experiment.B_clique n)) with
    event = Experiment.Tlong;
  }

let spec_internet n = Experiment.default_spec (Experiment.Internet n)

let spec_internet_tlong n =
  { (spec_internet n) with event = Experiment.Tlong }

let fit_line ~label series ~y =
  match series with
  | _ :: _ :: _ ->
      let fit = Sweep.linearity series ~x:(fun x -> x) ~y in
      say "  fit: %s %a" label Stats.Linear_fit.pp fit
  | _ -> ()

(* Approximate total simulator events behind a series: each point is a
   mean over its seeds, so mean x seed-count recovers the per-point
   total up to integer rounding.  Good enough for an events/sec rate. *)
let series_events ~seeds series =
  let k = List.length seeds in
  List.fold_left
    (fun acc (_, (m : Metrics.Run_metrics.t)) -> acc + (m.events_executed * k))
    0 series

(* --- Figures 4 and 6: metric vs network size --- *)

let duration_rows series =
  List.map
    (fun (x, (m : Metrics.Run_metrics.t)) ->
      [
        string_of_int (int_of_float x);
        Report.float_cell m.convergence_time;
        Report.float_cell m.overall_looping_duration;
      ])
    series

let exhaustion_rows series =
  List.map
    (fun (x, (m : Metrics.Run_metrics.t)) ->
      [
        string_of_int (int_of_float x);
        string_of_int m.ttl_exhaustions;
        Report.ratio_cell m.looping_ratio;
      ])
    series

let size_series ~pool ~make ~seeds sizes =
  Sweep.series ~pool ~make:(fun x -> make (int_of_float x)) ~seeds
    (List.map float_of_int sizes)

let fig4_6 ~pool =
  say "=== Figures 4 & 6: looping vs network size ===@.";
  let clique =
    size_series ~pool ~make:spec_clique ~seeds:seeds_default clique_sizes
  in
  print_string
    (Report.table ~title:"Fig 4(a): T_down on Clique"
       ~header:[ "size"; "conv(s)"; "loop-dur(s)" ]
       ~rows:(duration_rows clique));
  say "";
  let b_clique =
    size_series ~pool ~make:spec_b_clique_tlong ~seeds:seeds_default
      b_clique_sizes
  in
  print_string
    (Report.table ~title:"Fig 4(b): T_long on B-Clique (2n nodes)"
       ~header:[ "n"; "conv(s)"; "loop-dur(s)" ]
       ~rows:(duration_rows b_clique));
  say "";
  let internet =
    size_series ~pool ~make:spec_internet ~seeds:seeds_default internet_sizes
  in
  print_string
    (Report.table ~title:"Fig 4(c): T_down on Internet-derived"
       ~header:[ "size"; "conv(s)"; "loop-dur(s)" ]
       ~rows:(duration_rows internet));
  say "";
  say
    "Observation 1 check: in T_down the looping duration should sit a few@,\
     seconds under the convergence time; in T_long the gap is ~1 MRAI.";
  say "";
  print_string
    (Report.table ~title:"Fig 6(a): TTL exhaustions & ratio, T_down Clique"
       ~header:[ "size"; "ttl-exh"; "ratio" ]
       ~rows:(exhaustion_rows clique));
  say "";
  print_string
    (Report.table ~title:"Fig 6(b): TTL exhaustions & ratio, T_long B-Clique"
       ~header:[ "n"; "ttl-exh"; "ratio" ]
       ~rows:(exhaustion_rows b_clique));
  say "";
  print_string
    (Report.table
       ~title:"Fig 6(c): TTL exhaustions & ratio, T_down Internet-derived"
       ~header:[ "size"; "ttl-exh"; "ratio" ]
       ~rows:(exhaustion_rows internet));
  say "";
  say
    "Observation 2 check: ratio >65%% for T_down cliques of size >=15, >35%%@,\
     for T_long b-cliques of size >=15.";
  say "";
  series_events ~seeds:seeds_default clique
  + series_events ~seeds:seeds_default b_clique
  + series_events ~seeds:seeds_default internet

(* --- Figures 5 and 7: metric vs MRAI --- *)

let fig5_7 ~pool =
  say "=== Figures 5 & 7: looping vs MRAI value ===@.";
  let clique_mrai =
    Sweep.series ~pool
      ~make:(fun mrai -> { (spec_clique 15) with mrai })
      ~seeds:seeds_default mrai_values
  in
  let b_clique_mrai =
    Sweep.series ~pool
      ~make:(fun mrai -> { (spec_b_clique_tlong 10) with mrai })
      ~seeds:seeds_default mrai_values
  in
  let duration_rows series =
    List.map
      (fun (mrai, (m : Metrics.Run_metrics.t)) ->
        [
          Printf.sprintf "%g" mrai;
          Report.float_cell m.convergence_time;
          Report.float_cell m.overall_looping_duration;
        ])
      series
  in
  let exhaustion_rows series =
    List.map
      (fun (mrai, (m : Metrics.Run_metrics.t)) ->
        [
          Printf.sprintf "%g" mrai;
          string_of_int m.ttl_exhaustions;
          Report.ratio_cell m.looping_ratio;
        ])
      series
  in
  print_string
    (Report.table ~title:"Fig 5(a): T_down on Clique-15 vs MRAI"
       ~header:[ "mrai"; "conv(s)"; "loop-dur(s)" ]
       ~rows:(duration_rows clique_mrai));
  fit_line ~label:"convergence ~" clique_mrai
    ~y:(fun (m : Metrics.Run_metrics.t) -> m.convergence_time);
  fit_line ~label:"looping dur ~" clique_mrai
    ~y:(fun (m : Metrics.Run_metrics.t) -> m.overall_looping_duration);
  say "";
  print_string
    (Report.table ~title:"Fig 5(b): T_long on B-Clique-10 vs MRAI"
       ~header:[ "mrai"; "conv(s)"; "loop-dur(s)" ]
       ~rows:(duration_rows b_clique_mrai));
  fit_line ~label:"convergence ~" b_clique_mrai
    ~y:(fun (m : Metrics.Run_metrics.t) -> m.convergence_time);
  say "";
  print_string
    (Report.table ~title:"Fig 7(a): TTL exhaustions & ratio vs MRAI (Clique-15)"
       ~header:[ "mrai"; "ttl-exh"; "ratio" ]
       ~rows:(exhaustion_rows clique_mrai));
  fit_line ~label:"exhaustions ~" clique_mrai
    ~y:(fun (m : Metrics.Run_metrics.t) -> float_of_int m.ttl_exhaustions);
  say "";
  print_string
    (Report.table
       ~title:"Fig 7(b): TTL exhaustions & ratio vs MRAI (B-Clique-10)"
       ~header:[ "mrai"; "ttl-exh"; "ratio" ]
       ~rows:(exhaustion_rows b_clique_mrai));
  say "";
  say
    "Observation 1/2 checks: convergence, looping duration and exhaustion@,\
     counts all linear in the MRAI (R^2 near 1); the looping ratio column@,\
     stays flat.";
  say "";
  series_events ~seeds:seeds_default clique_mrai
  + series_events ~seeds:seeds_default b_clique_mrai

(* --- Figures 8 and 9: enhancement comparisons --- *)

let enhancement_tables ~pool ~tag ~exh_title ~conv_title ~seeds ~make sizes =
  (* one series per enhancement over all sizes, so the pool sees the
     whole (enhancement x size x seed) space of each series at once *)
  let per_enh =
    List.map
      (fun enh ->
        ( enh,
          Sweep.series ~pool
            ~make:(fun x ->
              { (make (int_of_float x)) with enhancement = enh })
            ~seeds
            (List.map float_of_int sizes) ))
      Bgp.Enhancement.all
  in
  let per_size =
    List.mapi
      (fun i n ->
        (n, List.map (fun (enh, series) -> (enh, snd (List.nth series i))) per_enh))
      sizes
  in
  let header =
    tag :: List.map Bgp.Enhancement.name Bgp.Enhancement.all
  in
  let exh_rows =
    List.map
      (fun (n, ms) ->
        let std =
          match List.assoc Bgp.Enhancement.Standard ms with
          | (m : Metrics.Run_metrics.t) -> Stdlib.max m.ttl_exhaustions 1
        in
        string_of_int n
        :: List.map
             (fun (_, (m : Metrics.Run_metrics.t)) ->
               Printf.sprintf "%.3f"
                 (float_of_int m.ttl_exhaustions /. float_of_int std))
             ms)
      per_size
  in
  let conv_rows =
    List.map
      (fun (n, ms) ->
        string_of_int n
        :: List.map
             (fun (_, (m : Metrics.Run_metrics.t)) ->
               Report.float_cell m.convergence_time)
             ms)
      per_size
  in
  print_string
    (Report.table ~title:exh_title ~header ~rows:exh_rows);
  say "";
  print_string (Report.table ~title:conv_title ~header ~rows:conv_rows);
  say "";
  List.fold_left
    (fun acc (_, series) -> acc + series_events ~seeds series)
    0 per_enh

let fig8 ~pool =
  say "=== Figure 8: T_down convergence enhancements ===@.";
  let ev1 =
    enhancement_tables ~pool ~tag:"size"
      ~exh_title:
        "Fig 8(a): TTL exhaustions normalized by standard BGP (Clique, T_down)"
      ~conv_title:"Fig 8(b): convergence time in seconds (Clique, T_down)"
      ~seeds:seeds_default ~make:spec_clique clique_sizes
  in
  let ev2 =
    enhancement_tables ~pool ~tag:"size"
      ~exh_title:
        "Fig 8(c): TTL exhaustions normalized by standard BGP (Internet, T_down)"
      ~conv_title:"Fig 8(d): convergence time in seconds (Internet, T_down)"
      ~seeds:seeds_default ~make:spec_internet internet_sizes
  in
  say
    "Observation 3 checks: Assertion ~0 on cliques but weaker on Internet@,\
     topologies; Ghost Flushing <=0.2 normalized everywhere; SSLD a mild@,\
     <1 factor; WRATE near or above 1.";
  say "";
  ev1 + ev2

let fig9 ~pool =
  say "=== Figure 9: T_long convergence enhancements ===@.";
  let ev1 =
    enhancement_tables ~pool ~tag:"n"
      ~exh_title:
        "Fig 9(a): TTL exhaustions normalized by standard BGP (B-Clique, T_long)"
      ~conv_title:"Fig 9(b): convergence time in seconds (B-Clique, T_long)"
      ~seeds:seeds_default ~make:spec_b_clique_tlong b_clique_sizes
  in
  let ev2 =
    enhancement_tables ~pool ~tag:"size"
      ~exh_title:
        "Fig 9(c): TTL exhaustions normalized by standard BGP (Internet, T_long)"
      ~conv_title:"Fig 9(d): convergence time in seconds (Internet, T_long)"
      ~seeds:seeds_internet_tlong ~make:spec_internet_tlong internet_sizes
  in
  ev1 + ev2

(* --- sequential vs pooled wall-clock comparison --- *)

let speedup ~pool =
  say "=== Speedup: sequential vs %d-worker pool (Fig 4(a) sweep) ===@."
    (Parallel.jobs pool);
  let sizes = clique_sizes and seeds = seeds_default in
  let sweep ?pool () =
    Sweep.series ?pool
      ~make:(fun x -> spec_clique (int_of_float x))
      ~seeds
      (List.map float_of_int sizes)
  in
  let time f =
    let t0 = Unix.gettimeofday () in
    let r = f () in
    (Unix.gettimeofday () -. t0, r)
  in
  let seq_s, seq_series = time (fun () -> sweep ()) in
  let par_s, par_series = time (fun () -> sweep ~pool ()) in
  let strip (x, (m : Metrics.Run_metrics.t)) =
    (x, { m with wall_clock_s = 0. })
  in
  if List.map strip seq_series <> List.map strip par_series then
    say "  WARNING: parallel sweep diverged from sequential results!";
  let events = series_events ~seeds seq_series in
  say "  sequential: %.2f s   pool (%d workers): %.2f s   speedup: %.2fx"
    seq_s (Parallel.jobs pool) par_s
    (if par_s > 0. then seq_s /. par_s else 0.);
  say "";
  (events, (seq_s, par_s))

(* --- ablations (DESIGN.md §6) --- *)

let ablations () =
  say "=== Ablations: model choices behind the reproduction ===@.";
  (* MRAI jitter *)
  let jitter_rows =
    List.map
      (fun (label, jitter) ->
        let config_mrai spec = spec in
        ignore config_mrai;
        let metrics =
          List.map
            (fun seed ->
              let graph = Topo.Generators.clique 10 in
              let config =
                { Bgp.Config.default with mrai_jitter_min = jitter }
              in
              let o =
                Bgp.Routing_sim.run ~config ~graph ~origin:0
                  ~event:Bgp.Routing_sim.Tdown ~seed ()
              in
              Bgp.Routing_sim.convergence_time o)
            seeds_default
        in
        let arr = Array.of_list metrics in
        [
          label;
          Report.float_cell (Stats.Descriptive.mean arr);
          Report.float_cell (Stats.Descriptive.stddev arr);
        ])
      [ ("none (1.0)", 1.0); ("rfc (0.75)", 0.75); ("wide (0.5)", 0.5) ]
  in
  print_string
    (Report.table ~title:"MRAI jitter vs T_down convergence (clique-10)"
       ~header:[ "jitter"; "conv mean(s)"; "conv sd(s)" ]
       ~rows:jitter_rows);
  say "";
  (* processing delay magnitude: the paper sets it two orders above the
     link delay; show MRAI dominance is robust to reducing it *)
  let proc_rows =
    List.map
      (fun (label, lo, hi) ->
        let params =
          { Netcore.Params.default with proc_delay_min = lo; proc_delay_max = hi }
        in
        let m =
          Sweep.over_seeds
            { (spec_clique 10) with params; mrai = 30. }
            ~seeds:seeds_default
        in
        [
          label;
          Report.float_cell m.convergence_time;
          Report.float_cell m.overall_looping_duration;
          Report.ratio_cell m.looping_ratio;
        ])
      [
        ("U(0.1,0.5)s (paper)", 0.1, 0.5);
        ("U(0.01,0.05)s", 0.01, 0.05);
        ("U(0.001,0.005)s", 0.001, 0.005);
      ]
  in
  print_string
    (Report.table
       ~title:
         "Processing delay vs looping (clique-10, T_down): MRAI still dominates"
       ~header:[ "proc delay"; "conv(s)"; "loop-dur(s)"; "ratio" ]
       ~rows:proc_rows);
  say "";
  (* tie-breaking policy *)
  let tie_rows =
    List.map
      (fun (label, prefer) ->
        let policy = { Bgp.Policy.shortest_path with prefer; name = label } in
        let m =
          List.map
            (fun seed ->
              let graph = Topo.Generators.clique 10 in
              let config = { Bgp.Config.default with policy } in
              let o =
                Bgp.Routing_sim.run ~config ~graph ~origin:0
                  ~event:Bgp.Routing_sim.Tdown ~seed ()
              in
              Bgp.Routing_sim.convergence_time o)
            seeds_default
        in
        [
          label;
          Report.float_cell (Stats.Descriptive.mean (Array.of_list m));
        ])
      [
        ( "lowest-id (paper)",
          fun ~self:_ (a : Bgp.Policy.candidate) (b : Bgp.Policy.candidate) ->
            Bgp.As_path.compare a.path b.path );
        ( "highest-id",
          fun ~self:_ (a : Bgp.Policy.candidate) (b : Bgp.Policy.candidate) ->
            let c = compare (Bgp.As_path.length a.path) (Bgp.As_path.length b.path) in
            if c <> 0 then c else Bgp.As_path.compare_lex b.path a.path );
      ]
  in
  print_string
    (Report.table
       ~title:"Tie-breaking direction vs convergence (aggregate trends robust)"
       ~header:[ "tie-break"; "conv(s)" ]
       ~rows:tie_rows);
  say "";
  (* WRATE with a collapsing vs FIFO rate limiter (EXPERIMENTS.md
     deviation 2): a limiter that still transmits superseded states
     keeps stale information flowing and should loop more *)
  let wrate_rows =
    List.concat_map
      (fun (scenario, event) ->
        List.map
          (fun (label, mode) ->
            let results =
              List.map
                (fun seed ->
                  let graph = Topo.Internet.generate ~seed 75 in
                  let survivable_link v =
                    List.find_opt
                      (fun peer ->
                        Topo.Graph.is_connected
                          (Topo.Graph.remove_edge graph v peer))
                      (Topo.Graph.neighbors graph v)
                  in
                  let origin =
                    match event with
                    | `Tdown -> List.hd (Topo.Internet.stub_nodes graph)
                    | `Tlong ->
                        (* lowest-degree node whose link loss is survivable *)
                        List.find
                          (fun v -> survivable_link v <> None)
                          (List.sort
                             (fun a b ->
                               compare (Topo.Graph.degree graph a)
                                 (Topo.Graph.degree graph b))
                             (Topo.Graph.nodes graph))
                  in
                  let config =
                    {
                      Bgp.Config.default with
                      wrate = true;
                      rate_limiter = mode;
                    }
                  in
                  let event =
                    match event with
                    | `Tdown -> Bgp.Routing_sim.Tdown
                    | `Tlong -> (
                        match survivable_link origin with
                        | Some peer ->
                            Bgp.Routing_sim.Tlong { a = origin; b = peer }
                        | None -> assert false)
                  in
                  let o = Bgp.Routing_sim.run ~config ~graph ~origin ~event ~seed () in
                  let fib = Netcore.Trace.fib o.trace in
                  let replay =
                    Traffic.Replay.run ~fib ~origin
                      ~n:(Topo.Graph.n_nodes graph) ~link_delay:0.002 ~ttl:128
                      ~rate:10.
                      ~window:(o.t_fail, o.convergence_end +. 2.)
                      ~seed:(seed + 31) ~ratio_cutoff:o.convergence_end ()
                  in
                  ( Bgp.Routing_sim.convergence_time o,
                    float_of_int replay.exhausted ))
                seeds_default
            in
            let convs = Array.of_list (List.map fst results) in
            let exhs = Array.of_list (List.map snd results) in
            [
              scenario;
              label;
              Report.float_cell (Stats.Descriptive.mean convs);
              Report.float_cell (Stats.Descriptive.mean exhs);
            ])
          [ ("collapse", Bgp.Mrai.Collapse); ("fifo", Bgp.Mrai.Fifo) ])
      [ ("Tdown", `Tdown); ("Tlong", `Tlong) ]
  in
  print_string
    (Report.table
       ~title:"WRATE rate-limiter semantics on internet-75 (deviation 2 probe)"
       ~header:[ "event"; "limiter"; "conv(s)"; "ttl-exh" ]
       ~rows:wrate_rows);
  say ""

(* --- topology provenance (paper footnote 1) --- *)

let provenance () =
  say "=== Ablation: topology provenance (paper footnote 1) ===@.";
  say
    "The same T_down measurement on 48-node graphs from three different@,\
     generators: the trends (looping ~ convergence, high ratio) should@,\
     not depend on the model that produced the topology.";
  say "";
  let families =
    [
      ("internet (ours)", fun seed -> Topo.Internet.generate ~seed 48);
      ("waxman", fun seed -> Topo.Random_graphs.waxman ~seed 48);
      ("glp m=2", fun seed -> Topo.Random_graphs.glp ~m:2 ~seed 48);
    ]
  in
  let rows =
    List.map
      (fun (label, gen) ->
        let samples =
          List.map
            (fun seed ->
              let graph = gen seed in
              let origin = List.hd (Topo.Graph.min_degree_nodes graph) in
              let o =
                Bgp.Routing_sim.run ~graph ~origin ~event:Bgp.Routing_sim.Tdown
                  ~seed ()
              in
              let fib = Netcore.Trace.fib o.trace in
              let replay =
                Traffic.Replay.run ~fib ~origin ~n:(Topo.Graph.n_nodes graph)
                  ~link_delay:0.002 ~ttl:128 ~rate:10.
                  ~window:(o.t_fail, o.convergence_end +. 2.)
                  ~seed:(seed + 5) ~ratio_cutoff:o.convergence_end ()
              in
              ( Bgp.Routing_sim.convergence_time o,
                Traffic.Replay.overall_looping_duration replay,
                Traffic.Replay.looping_ratio replay ))
            seeds_default
        in
        let col f = Array.of_list (List.map f samples) in
        [
          label;
          Report.float_cell (Stats.Descriptive.mean (col (fun (c, _, _) -> c)));
          Report.float_cell (Stats.Descriptive.mean (col (fun (_, d, _) -> d)));
          Report.ratio_cell (Stats.Descriptive.mean (col (fun (_, _, r) -> r)));
        ])
      families
  in
  print_string
    (Report.table ~title:"T_down on 48 nodes across topology generators"
       ~header:[ "generator"; "conv(s)"; "loop-dur(s)"; "ratio" ]
       ~rows);
  say ""

(* --- route-flap damping on link flaps (extension) --- *)

let damping () =
  say "=== Extension: route-flap damping vs a single link flap ===@.";
  say
    "RFC 2439 damping suppresses flapping routes; BGP path exploration@,\
     makes one physical flap look like many route flaps downstream@,\
     (Mao et al.), so the network stays off the recovered path until@,\
     penalties decay.";
  say "";
  let damped_config half_life =
    {
      Bgp.Config.default with
      damping =
        Some
          {
            Bgp.Damping.default_params with
            half_life;
            suppress_threshold = 1.4;
          };
    }
  in
  let scenarios =
    [
      ("b-clique-6 flap 15s", Topo.Generators.b_clique 6, 0, 6, 15.);
      ("b-clique-10 flap 15s", Topo.Generators.b_clique 10, 0, 10, 15.);
    ]
  in
  let rows =
    List.concat_map
      (fun (label, graph, a, b, down_for) ->
        let event = Bgp.Routing_sim.Tshort { a; b; down_for } in
        List.map
          (fun (mech, config) ->
            let convs =
              List.map
                (fun seed ->
                  let o =
                    Bgp.Routing_sim.run ?config ~graph ~origin:0 ~event ~seed ()
                  in
                  Bgp.Routing_sim.convergence_time o)
                seeds_default
            in
            [
              label;
              mech;
              Report.float_cell
                (Stats.Descriptive.mean (Array.of_list convs));
            ])
          [
            ("plain", None);
            ("damped hl=120s", Some (damped_config 120.));
            ("damped hl=300s", Some (damped_config 300.));
          ])
      scenarios
  in
  print_string
    (Report.table ~title:"time to quiesce after one T_short flap"
       ~header:[ "scenario"; "mechanism"; "settle(s)" ]
       ~rows);
  say ""

(* --- multi-prefix churn interference (extension) --- *)

let interference () =
  say "=== Extension: background churn vs victim convergence ===@.";
  say
    "One stub prefix suffers a T_down while other origins flap their own@,\
     prefixes; all updates share each router's serial processing queue.";
  say "";
  let graph = Topo.Internet.generate ~seed:1 48 in
  let victim_origin = List.hd (Topo.Internet.stub_nodes graph) in
  let background =
    List.filteri (fun i _ -> i < 8)
      (List.sort
         (fun a b ->
           compare (Topo.Graph.degree graph b) (Topo.Graph.degree graph a))
         (List.filter (fun v -> v <> victim_origin) (Topo.Graph.nodes graph)))
  in
  let origins = victim_origin :: background in
  let flappers = List.mapi (fun i _ -> i + 1) background in
  let scenarios =
    [
      ("quiet", None);
      ("flap every 60s", Some { Bgp.Multi_sim.period = 60.; cycles = 8; flappers });
      ("flap every 30s", Some { Bgp.Multi_sim.period = 30.; cycles = 16; flappers });
      ("flap every 10s", Some { Bgp.Multi_sim.period = 10.; cycles = 48; flappers });
    ]
  in
  let rows =
    List.map
      (fun (label, churn) ->
        let samples =
          List.map
            (fun seed ->
              let o =
                Bgp.Multi_sim.run ?churn ~graph ~origins ~victim:0 ~seed ()
              in
              let fib = List.assoc o.victim o.prefixes in
              let replay =
                Traffic.Replay.run ~fib ~origin:victim_origin
                  ~n:(Topo.Graph.n_nodes graph) ~link_delay:0.002 ~ttl:128
                  ~rate:10.
                  ~window:(o.t_fail, o.victim_convergence_end +. 2.)
                  ~seed:(seed + 13)
                  ~ratio_cutoff:o.victim_convergence_end ()
              in
              ( Bgp.Multi_sim.convergence_time o,
                float_of_int replay.exhausted,
                float_of_int o.background_messages ))
            seeds_default
        in
        let col f = Array.of_list (List.map f samples) in
        [
          label;
          Report.float_cell
            (Stats.Descriptive.mean (col (fun (c, _, _) -> c)));
          Report.float_cell
            (Stats.Descriptive.mean (col (fun (_, e, _) -> e)));
          Report.float_cell
            (Stats.Descriptive.mean (col (fun (_, _, b) -> b)));
        ])
      scenarios
  in
  print_string
    (Report.table
       ~title:"victim T_down on internet-48 under background churn"
       ~header:[ "background"; "victim conv(s)"; "victim ttl-exh"; "bg msgs" ]
       ~rows);
  say ""

(* --- scale workload: internet-like graphs at the Premore sizes plus
   300 nodes (EXPERIMENTS.md §"Scale sweep") --- *)

let scale_sizes = [ 29; 48; 75; 110; 300 ]

let scale_seeds = [ 1; 2; 3 ]

(* One (size, event, seed) cell: resolve the spec, then time the
   routing simulation alone — the packet replay and loop scan that
   Experiment.run adds are per-packet workloads that never touch an AS
   path, so they would only dilute the events/sec signal the AS-path
   representation is measured by. *)
let scale_cell spec =
  let graph, origin, event = Experiment.resolve_raw spec in
  let config =
    Bgp.Config.of_enhancement ~mrai:spec.Experiment.mrai
      spec.Experiment.enhancement
  in
  let before = Gc.quick_stat () in
  let t0 = Unix.gettimeofday () in
  let o =
    Bgp.Routing_sim.run ~config ~max_events:spec.Experiment.max_events
      ?max_vtime:spec.Experiment.max_vtime ~graph ~origin ~event
      ~seed:spec.Experiment.seed ()
  in
  let wall = Unix.gettimeofday () -. t0 in
  let after = Gc.quick_stat () in
  let alloc_words =
    after.Gc.minor_words +. after.Gc.major_words -. after.Gc.promoted_words
    -. (before.Gc.minor_words +. before.Gc.major_words
       -. before.Gc.promoted_words)
  in
  (o, wall, alloc_words, after.Gc.top_heap_words)

type scale_row = {
  sc_size : int;
  sc_event : string;
  sc_events : int;
  sc_wall_s : float;
  sc_conv_s : float;
  sc_converged : bool;
  sc_alloc_mw : float;       (* words allocated during the sim, in millions *)
  sc_top_heap_w : int;       (* process peak heap words (Gc.quick_stat) *)
  sc_paths : int;            (* arena occupancy: distinct paths interned *)
}

let scale_table ~pool ~max_events sizes =
  let cells =
    List.concat_map
      (fun n ->
        List.concat_map
          (fun (label, make) ->
            List.map
              (fun seed ->
                (n, label, { (make n) with Experiment.seed; max_events }))
              scale_seeds)
          [
            ("tdown", spec_internet);
            ("tlong", spec_internet_tlong);
          ])
      sizes
  in
  let results =
    Parallel.map ~pool
      (fun (n, label, spec) ->
        let o, wall, alloc_words, top_heap = scale_cell spec in
        (n, label, o, wall, alloc_words, top_heap))
      cells
    |> List.filter_map (function Ok r -> Some r | Error _ -> None)
  in
  (* aggregate the seeds of each (size, event) point: rates come from
     summed events over summed wall so slow seeds weigh in proportion *)
  List.concat_map
    (fun n ->
      List.filter_map
        (fun label ->
          let mine =
            List.filter (fun (n', l, _, _, _, _) -> n' = n && l = label) results
          in
          match mine with
          | [] -> None
          | _ ->
              let sum f = List.fold_left (fun acc r -> acc +. f r) 0. mine in
              let events =
                List.fold_left
                  (fun acc (_, _, (o : Bgp.Routing_sim.outcome), _, _, _) ->
                    acc + o.events_executed)
                  0 mine
              in
              Some
                {
                  sc_size = n;
                  sc_event = label;
                  sc_events = events;
                  sc_wall_s = sum (fun (_, _, _, w, _, _) -> w);
                  sc_conv_s =
                    sum (fun (_, _, o, _, _, _) ->
                        Bgp.Routing_sim.convergence_time o)
                    /. float_of_int (List.length mine);
                  sc_converged =
                    List.for_all
                      (fun (_, _, (o : Bgp.Routing_sim.outcome), _, _, _) ->
                        o.converged)
                      mine;
                  sc_alloc_mw =
                    sum (fun (_, _, _, _, a, _) -> a) /. 1e6;
                  sc_top_heap_w =
                    List.fold_left
                      (fun acc (_, _, _, _, _, th) -> Stdlib.max acc th)
                      0 mine;
                  sc_paths =
                    List.fold_left
                      (fun acc (_, _, (o : Bgp.Routing_sim.outcome), _, _, _) ->
                        Stdlib.max acc o.paths_interned)
                      0 mine;
                })
        [ "tdown"; "tlong" ])
    sizes

let scale_row_cells r =
  [
    string_of_int r.sc_size;
    r.sc_event;
    string_of_int r.sc_events;
    Printf.sprintf "%.3f" r.sc_wall_s;
    (if r.sc_wall_s > 0. then
       Printf.sprintf "%.0f" (float_of_int r.sc_events /. r.sc_wall_s)
     else "-");
    Report.float_cell r.sc_conv_s;
    (if r.sc_converged then "yes" else "NO");
    Printf.sprintf "%.1f" r.sc_alloc_mw;
    Printf.sprintf "%.1f" (float_of_int r.sc_top_heap_w /. 1e6);
    string_of_int r.sc_paths;
  ]

let scale_header =
  [
    "n"; "event"; "events"; "wall(s)"; "ev/s"; "conv(s)"; "conv?"; "alloc-Mw";
    "heap-Mw"; "paths";
  ]

let scale_group ~pool ~smoke () =
  let sizes = if smoke then [ 110 ] else scale_sizes in
  (* the budget bounds a runaway policy dispute, not a healthy run:
     T_down/T_long on these graphs drain in tens of thousands of
     events *)
  let max_events = 5_000_000 in
  say "=== Scale: T_down/T_long on internet-like graphs (seeds {%s}) ===@."
    (String.concat "," (List.map string_of_int scale_seeds));
  let rows = scale_table ~pool ~max_events sizes in
  print_string
    (Report.table
       ~title:
         (if smoke then "scale smoke (n=110, bounded events)"
          else "scale sweep: routing-sim throughput")
       ~header:scale_header
       ~rows:(List.map scale_row_cells rows));
  say "";
  (match List.filter (fun r -> not r.sc_converged) rows with
  | [] -> ()
  | bad ->
      say "NON-CONVERGED points: %s"
        (String.concat ", "
           (List.map (fun r -> Printf.sprintf "%d/%s" r.sc_size r.sc_event) bad));
      if smoke then exit 1);
  List.fold_left (fun acc r -> acc + r.sc_events) 0 rows

(* --- sustained churn: long-horizon service-mode throughput ---

   One persistent simulation driven through flap epochs by the churn
   engine (streaming loop detection, arena compaction every 8 epochs,
   no checkpoints).  The full groups run to 10 M engine events and
   gate two regressions: throughput must stay at or above the one-shot
   scale workload's recorded floor (BENCH_e3527b6: 446 k ev/s), and
   the peak heap must stay flat across the horizon — bounded-memory
   operation is the point of the service mode.  The churn-digest
   variant keeps the per-epoch digest chain on (folding Obs.Binary
   frames), measuring the fully-audited fast path. *)

let churn_floor_ev_s = 446_000.

let churn_group ~smoke ~digest () =
  let n = 110 in
  let graph = Topo.Internet.generate ~seed:1 n in
  let origin = List.hd (Topo.Graph.min_degree_nodes graph) in
  let target_events = if smoke then 200_000 else 10_000_000 in
  let workload = Churn.Workload.make ~epoch_len:300. ~flap_rate:8. () in
  let cfg =
    Churn.Driver.make ~seed:1 ~workload ~epochs:max_int ~target_events
      ~compact_every:8 ~digest ~graph ~origin ()
  in
  say
    "=== Churn: sustained service mode on internet-%d (target %d events, \
     digest %s) ===@."
    n target_events
    (if digest then "on" else "off");
  (* peak-heap sample once the run is warm (10 % of the horizon, past
     GC ramp-up); the flat-heap gate compares the end-of-run peak
     against it *)
  let heap_early = ref None in
  let events_seen = ref 0 in
  let on_epoch (e : Churn.Driver.epoch_info) =
    events_seen := !events_seen + e.Churn.Driver.ei_events;
    if !heap_early = None && !events_seen >= target_events / 10 then
      heap_early := Some (Gc.quick_stat ()).Gc.top_heap_words
  in
  let t0 = Unix.gettimeofday () in
  let r = Churn.Driver.run ~on_epoch cfg in
  let wall = Unix.gettimeofday () -. t0 in
  let heap_final = (Gc.quick_stat ()).Gc.top_heap_words in
  let ev_s =
    if wall > 0. then float_of_int r.Churn.Driver.events_executed /. wall
    else 0.
  in
  let t = r.Churn.Driver.loop_totals in
  (match r.Churn.Driver.chain_digest with
  | Some d -> say "chain-digest %s" d
  | None -> ());
  print_string
    (Report.table
       ~title:
         (if smoke then "churn smoke"
          else if digest then "churn: 10M-event horizon (digest chain on)"
          else "churn: 10M-event horizon")
       ~header:
         [
           "epochs"; "events"; "wall(s)"; "ev/s"; "fib-chg"; "loops";
           "arena"; "arena-peak"; "heap-Mw";
         ]
       ~rows:
         [
           [
             string_of_int r.Churn.Driver.epochs_completed;
             string_of_int r.Churn.Driver.events_executed;
             Printf.sprintf "%.3f" wall;
             Printf.sprintf "%.0f" ev_s;
             string_of_int r.Churn.Driver.counters.Obs.Counters.s_fib_changes;
             string_of_int t.Loopscan.Stream.loops_started;
             string_of_int r.Churn.Driver.arena_size;
             string_of_int r.Churn.Driver.arena_peak;
             Printf.sprintf "%.1f" (float_of_int heap_final /. 1e6);
           ];
         ]);
  say "";
  (match r.Churn.Driver.status with
  | Churn.Driver.Completed -> ()
  | s ->
      say "churn did not complete: %s" (Churn.Driver.status_name s);
      exit 1);
  if not smoke then begin
    (match !heap_early with
    | Some early when heap_final > early + (early / 2) ->
        say
          "FLAT-HEAP GATE FAILED: peak heap grew %.1f Mw (10%% mark) -> %.1f \
           Mw (end)"
          (float_of_int early /. 1e6)
          (float_of_int heap_final /. 1e6);
        exit 1
    | Some early ->
        say "flat-heap gate: %.1f Mw (10%% mark) -> %.1f Mw (end)  OK"
          (float_of_int early /. 1e6)
          (float_of_int heap_final /. 1e6)
    | None -> say "flat-heap gate: run too short to sample (skipped)");
    if ev_s < churn_floor_ev_s then begin
      say "THROUGHPUT GATE FAILED: %.0f ev/s < %.0f ev/s floor" ev_s
        churn_floor_ev_s;
      exit 1
    end
    else say "throughput gate: %.0f ev/s >= %.0f ev/s floor  OK" ev_s
           churn_floor_ev_s
  end;
  say "";
  r.Churn.Driver.events_executed

(* --- full-mesh multi-prefix workload (ROADMAP item 2) ---

   Every AS on internet-110 originates its own prefix — 110 RIB shards
   per speaker keyed by packed (prefix_id, peer), one batched MRAI
   timer per peer — over one arena and one event stream.  After the
   shared warm-up the min-degree stub's prefix is withdrawn while 30
   background origins flap for 20 cycles, so each seed drives millions
   of engine events through the per-prefix decision process
   (EXPERIMENTS.md §"Full-mesh workload"). *)

let mesh_seeds = [ 1; 2; 3 ]

let mesh_group ~smoke () =
  let n = if smoke then 20 else 110 in
  let graph = Topo.Internet.generate ~seed:1 n in
  let victim = List.hd (Topo.Graph.min_degree_nodes graph) in
  let flappers =
    (* 30 deterministic background flappers (origin index = node id) *)
    List.filter (fun i -> i <> victim) (List.init n Fun.id)
    |> List.filteri (fun i _ -> i < if smoke then 4 else 30)
  in
  let churn =
    {
      Bgp.Mesh_sim.period = 60.;
      cycles = (if smoke then 2 else 20);
      flappers;
    }
  in
  say
    "=== Mesh: full-mesh T_down + background flaps on internet-%d (%d \
     prefixes, seeds {%s}) ===@."
    n n
    (String.concat "," (List.map string_of_int mesh_seeds));
  let cells =
    List.map
      (fun seed ->
        let before = Gc.quick_stat () in
        let t0 = Unix.gettimeofday () in
        let o = Bgp.Mesh_sim.run ~churn ~graph ~victim ~seed () in
        let wall = Unix.gettimeofday () -. t0 in
        let after = Gc.quick_stat () in
        let alloc_words =
          after.Gc.minor_words +. after.Gc.major_words
          -. after.Gc.promoted_words
          -. (before.Gc.minor_words +. before.Gc.major_words
             -. before.Gc.promoted_words)
        in
        (seed, o, wall, alloc_words, after.Gc.top_heap_words))
      mesh_seeds
  in
  let rows =
    List.map
      (fun (seed, (o : Bgp.Mesh_sim.outcome), wall, alloc_words, top_heap) ->
        let until = o.victim_convergence_end in
        let loops, loop_s =
          List.fold_left
            (fun (c, s) (_, r) ->
              let a = Loopscan.Scanner.aggregate r ~until in
              (c + a.count, s +. a.total_loop_seconds))
            (0, 0.) o.loop_reports
        in
        [
          string_of_int seed;
          string_of_int (List.length o.prefixes);
          string_of_int o.events_executed;
          Printf.sprintf "%.3f" wall;
          (if wall > 0. then
             Printf.sprintf "%.0f" (float_of_int o.events_executed /. wall)
           else "-");
          Report.float_cell (Bgp.Mesh_sim.convergence_time o);
          (if o.converged then "yes" else "NO");
          string_of_int loops;
          Printf.sprintf "%.1f" loop_s;
          Printf.sprintf "%.1f" (alloc_words /. 1e6);
          Printf.sprintf "%.1f" (float_of_int top_heap /. 1e6);
          string_of_int o.paths_interned;
        ])
      cells
  in
  print_string
    (Report.table
       ~title:
         (if smoke then "mesh smoke (internet-20, 4 flappers, 2 cycles)"
          else "mesh: internet-110 x 110 prefixes, 30 flappers x 20 cycles")
       ~header:
         [
           "seed"; "prefixes"; "events"; "wall(s)"; "ev/s"; "conv(s)";
           "conv?"; "loops"; "loop-s"; "alloc-Mw"; "heap-Mw"; "paths";
         ]
       ~rows);
  say "";
  (match
     List.filter (fun (_, (o : Bgp.Mesh_sim.outcome), _, _, _) -> not o.converged) cells
   with
  | [] -> ()
  | bad ->
      say "NON-CONVERGED seeds: %s"
        (String.concat ", "
           (List.map (fun (s, _, _, _, _) -> string_of_int s) bad));
      exit 1);
  List.fold_left
    (fun acc (_, (o : Bgp.Mesh_sim.outcome), _, _, _) ->
      acc + o.events_executed)
    0 cells

(* --- space-partitioned executor on the mesh workload (DESIGN.md §17) ---

   One seed of the full-mesh churn workload, first on the classic
   single engine, then on k ∈ {2,4} space partitions via the
   conservative executor.  The group is a correctness gate first —
   identical events, convergence, message counts and loop totals at
   every k, the partitioned≡sequential wall at bench scale — and a
   perf record second: the JSON "partition" object keeps the honest
   wall-clock ratio, which today sits below 1.0 (the global-commit
   order serializes execution and adds the horizon bookkeeping; the
   record exists so future relaxations have a baseline to beat). *)

let partition_ks = [ 2; 4 ]

type partition_run = { parts : int; wall_s : float; ratio : float }

(* (sequential wall, events, per-k runs) for the JSON record *)
let partition_record : (float * int * partition_run list) option ref =
  ref None

let partition_group ~smoke () =
  let n = if smoke then 20 else 110 in
  let graph = Topo.Internet.generate ~seed:1 n in
  let victim = List.hd (Topo.Graph.min_degree_nodes graph) in
  let flappers =
    List.filter (fun i -> i <> victim) (List.init n Fun.id)
    |> List.filteri (fun i _ -> i < if smoke then 4 else 30)
  in
  let churn =
    {
      Bgp.Mesh_sim.period = 60.;
      cycles = (if smoke then 2 else 20);
      flappers;
    }
  in
  say
    "=== Partition: full-mesh churn on internet-%d, sequential vs k in {%s} \
     ===@."
    n
    (String.concat "," (List.map string_of_int partition_ks));
  let loop_totals (o : Bgp.Mesh_sim.outcome) =
    let until = o.victim_convergence_end in
    List.fold_left
      (fun (c, s) (_, r) ->
        let a = Loopscan.Scanner.aggregate r ~until in
        (c + a.count, s +. a.total_loop_seconds))
      (0, 0.) o.loop_reports
  in
  let time partitions =
    let t0 = Unix.gettimeofday () in
    let o = Bgp.Mesh_sim.run ~churn ?partitions ~graph ~victim ~seed:1 () in
    (o, Unix.gettimeofday () -. t0)
  in
  let seq_o, seq_wall = time None in
  let runs =
    List.map
      (fun k ->
        let part = Partition.compute ~seed:1 ~graph ~k in
        let o, wall = time (Some (Partition.assignment part)) in
        (k, part, o, wall))
      partition_ks
  in
  let row label (o : Bgp.Mesh_sim.outcome) wall =
    let loops, loop_s = loop_totals o in
    [
      label;
      string_of_int o.events_executed;
      Printf.sprintf "%.3f" wall;
      (if wall > 0. then
         Printf.sprintf "%.0f" (float_of_int o.events_executed /. wall)
       else "-");
      Printf.sprintf "%.2f" (if wall > 0. then seq_wall /. wall else 0.);
      Report.float_cell (Bgp.Mesh_sim.convergence_time o);
      (if o.converged then "yes" else "NO");
      string_of_int loops;
      Printf.sprintf "%.1f" loop_s;
    ]
  in
  print_string
    (Report.table
       ~title:
         (Printf.sprintf "partitioned vs sequential mesh churn (internet-%d)" n)
       ~header:
         [
           "executor"; "events"; "wall(s)"; "ev/s"; "speedup"; "conv(s)";
           "conv?"; "loops"; "loop-s";
         ]
       ~rows:
         (row "sequential" seq_o seq_wall
         :: List.map
              (fun (k, part, o, wall) ->
                row
                  (Printf.sprintf "k=%d (cut %d)" k
                     (List.length (Partition.cut part)))
                  o wall)
              runs));
  say "";
  (* the correctness gate: every partitioned run must reproduce the
     sequential outcome exactly *)
  let mismatches =
    List.concat_map
      (fun (k, _, (o : Bgp.Mesh_sim.outcome), _) ->
        let expect name got want =
          if got = want then []
          else [ Printf.sprintf "k=%d %s: %s <> %s" k name got want ]
        in
        expect "events"
          (string_of_int o.events_executed)
          (string_of_int seq_o.events_executed)
        @ expect "convergence"
            (Printf.sprintf "%.9g" (Bgp.Mesh_sim.convergence_time o))
            (Printf.sprintf "%.9g" (Bgp.Mesh_sim.convergence_time seq_o))
        @ expect "converged"
            (string_of_bool o.converged)
            (string_of_bool seq_o.converged)
        @ expect "victim-msg"
            (string_of_int o.victim_messages)
            (string_of_int seq_o.victim_messages)
        @ expect "bg-msg"
            (string_of_int o.background_messages)
            (string_of_int seq_o.background_messages)
        @
        let lc, ls = loop_totals o and sc, ss = loop_totals seq_o in
        expect "loops" (string_of_int lc) (string_of_int sc)
        @ expect "loop-s" (Printf.sprintf "%.9g" ls) (Printf.sprintf "%.9g" ss))
      runs
  in
  (match mismatches with
  | [] -> ()
  | ms ->
      List.iter (fun m -> say "PARTITION MISMATCH: %s" m) ms;
      exit 1);
  partition_record :=
    Some
      ( seq_wall,
        seq_o.events_executed,
        List.map
          (fun (k, _, _, wall) ->
            {
              parts = k;
              wall_s = wall;
              ratio = (if wall > 0. then seq_wall /. wall else 0.);
            })
          runs );
  seq_o.events_executed
  + List.fold_left
      (fun acc (_, _, (o : Bgp.Mesh_sim.outcome), _) ->
        acc + o.events_executed)
      0 runs

(* --- observability counter registries (DESIGN.md §10) --- *)

let counters_group ~pool =
  say "=== Counters: observability registries over the golden fixtures ===@.";
  say
    "Each run carries a counters-only bus (no sink, so no event values@,\
     are ever allocated); per-seed snapshots are merged across the@,\
     worker pool the same way Parallel sweeps gather metrics.";
  say "";
  let seeds = seeds_default in
  let batch =
    List.concat_map
      (fun (f : Golden.fixture) ->
        List.map (fun seed -> (f.name, { f.spec with seed })) seeds)
      Golden.fixtures
  in
  let results =
    Parallel.map ~pool
      (fun (name, spec) ->
        let c = Obs.Counters.create () in
        let obs = Obs.Bus.create ~counters:c () in
        let r = Experiment.run ~obs spec in
        (name, Obs.Counters.snapshot c, r.metrics.events_executed))
      batch
    |> List.filter_map (function Ok r -> Some r | Error _ -> None)
  in
  let merged name =
    match List.filter_map
            (fun (n, s, _) -> if n = name then Some s else None)
            results
    with
    | [] -> None
    | s :: rest -> Some (List.fold_left Obs.Counters.merge s rest)
  in
  let rows =
    List.filter_map
      (fun (f : Golden.fixture) ->
        match merged f.name with
        | None -> None
        | Some (s : Obs.Counters.snapshot) ->
            Some
              [
                f.name;
                string_of_int s.s_updates_sent;
                string_of_int s.s_updates_recv;
                string_of_int (s.s_withdrawals_sent + s.s_withdrawals_recv);
                string_of_int s.s_decision_runs;
                string_of_int s.s_fib_changes;
                string_of_int s.s_mrai_fires;
                string_of_int s.s_loops_detected;
                string_of_int s.s_events_executed;
              ])
      Golden.fixtures
  in
  print_string
    (Report.table
       ~title:
         (Printf.sprintf "merged counters over seeds {%s}"
            (String.concat "," (List.map string_of_int seeds)))
       ~header:
         [
           "fixture"; "sent"; "recv"; "wdraw"; "decisions"; "fib"; "mrai";
           "loops"; "events";
         ]
       ~rows);
  say "";
  (match List.map (fun (_, s, _) -> s) results with
  | [] -> ()
  | s :: rest ->
      say "grand total across the batch:";
      say "%a" Obs.Counters.pp
        { (List.fold_left Obs.Counters.merge s rest) with s_nodes = [] });
  List.fold_left (fun acc (_, _, ev) -> acc + ev) 0 results

(* --- Bechamel micro-benchmarks --- *)

let micro () =
  say "=== Micro-benchmarks (Bechamel) ===@.";
  let open Bechamel in
  let test_event_queue =
    Test.make ~name:"event-queue: 1k push+pop"
      (Staged.stage (fun () ->
           let q = Dessim.Event_queue.create () in
           for i = 0 to 999 do
             Dessim.Event_queue.push q ~time:(float_of_int ((i * 7919) mod 997)) i
           done;
           while not (Dessim.Event_queue.is_empty q) do
             ignore (Dessim.Event_queue.pop q)
           done))
  in
  let test_as_path =
    let p = Bgp.As_path.of_list [ 9; 8; 7; 6; 5; 4; 3; 2; 1; 0 ] in
    Test.make ~name:"as-path: contains+prepend+compare"
      (Staged.stage (fun () ->
           ignore (Bgp.As_path.contains p 5 : bool);
           let q = Bgp.As_path.prepend 10 p in
           ignore (Bgp.As_path.compare q p : int)))
  in
  let test_peer_table =
    let table = Bgp.Peer_table.create (List.init 64 (fun i -> i * 3)) in
    Test.make ~name:"peer-table: 64-peer mem hit+miss"
      (Staged.stage (fun () ->
           ignore (Bgp.Peer_table.mem table 93 : bool);
           ignore (Bgp.Peer_table.mem table 94 : bool)))
  in
  let test_fib_lookup =
    let fib = Netcore.Fib_history.create ~n:1 in
    for i = 0 to 99 do
      Netcore.Fib_history.record fib ~time:(float_of_int i) ~node:0
        ~next_hop:(if i mod 2 = 0 then Some 1 else None)
    done;
    Test.make ~name:"fib-history: lookup among 100 changes"
      (Staged.stage (fun () ->
           ignore (Netcore.Fib_history.lookup fib ~node:0 ~time:50.5 : int option)))
  in
  let test_walk =
    let fib = Netcore.Fib_history.create ~n:10 in
    for v = 1 to 9 do
      Netcore.Fib_history.record fib ~time:0. ~node:v ~next_hop:(Some (v - 1))
    done;
    Test.make ~name:"forwarder: 9-hop walk"
      (Staged.stage (fun () ->
           ignore
             (Traffic.Forwarder.walk ~fib ~origin:0 ~link_delay:0.002 ~ttl:128
                ~src:9 ~send_time:1.)))
  in
  let test_routing_sim =
    let graph = Topo.Generators.clique 5 in
    Test.make ~name:"routing-sim: clique-5 T_down end-to-end"
      (Staged.stage (fun () ->
           ignore
             (Bgp.Routing_sim.run ~graph ~origin:0 ~event:Bgp.Routing_sim.Tdown
                ~seed:1 ())))
  in
  let tests =
    [
      test_event_queue; test_as_path; test_peer_table; test_fib_lookup;
      test_walk; test_routing_sim;
    ]
  in
  let benchmark test =
    let instance = Toolkit.Instance.monotonic_clock in
    let cfg =
      Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:(Some 1000) ()
    in
    let raw = Benchmark.all cfg [ instance ] (Test.make_grouped ~name:"g" [ test ]) in
    let ols =
      Analyze.ols ~bootstrap:0 ~r_square:true
        ~predictors:[| Measure.run |]
    in
    let results = Analyze.all ols instance raw in
    Hashtbl.iter
      (fun name result ->
        match Analyze.OLS.estimates result with
        | Some [ est ] -> say "  %-42s %12.1f ns/run" name est
        | Some _ | None -> say "  %-42s (no estimate)" name)
      results
  in
  List.iter benchmark tests;
  say ""

(* --- group registry, timing and the JSON perf record --- *)

type group_report = {
  name : string;
  wall_s : float;
  events : int;  (* 0 = the group does not count simulator events *)
  alloc_words : float;  (* words allocated on the main domain *)
  peak_heap_words : int;  (* process top_heap_words after the group *)
}

(* speedup group's sequential/parallel timings, when it ran *)
let speedup_times : (float * float) option ref = ref None

(* Per-group warm-up, run before the driver snapshots Gc stats and
   starts the wall clock: one small representative simulation that
   settles allocator and code-path ramp-up, so a group's recorded
   alloc_words/peak_heap_words delta covers only the measured
   iterations.  (Without this the first group of a bench invocation
   absorbed all the one-time warm-up allocation into its numbers.)
   The single-prefix warm-up covers every classic group; the mesh
   group warms the multi-prefix path instead — its per-prefix RIB
   shards and batched MRAI allocate on different code paths. *)
let warm_single () =
  ignore
    (Bgp.Routing_sim.run
       ~graph:(Topo.Generators.clique 5)
       ~origin:0 ~event:Bgp.Routing_sim.Tdown ~seed:1 ()
      : Bgp.Routing_sim.outcome)

let warm_mesh () =
  ignore
    (Bgp.Mesh_sim.run
       ~graph:(Topo.Generators.clique 5)
       ~victim:0 ~seed:1 ()
      : Bgp.Mesh_sim.outcome)

let groups =
  [
    ("fig4", (warm_single, fun ~pool -> fig4_6 ~pool));
    ("fig5", (warm_single, fun ~pool -> fig5_7 ~pool));
    ("fig8", (warm_single, fun ~pool -> fig8 ~pool));
    ("fig9", (warm_single, fun ~pool -> fig9 ~pool));
    ( "speedup",
      ( warm_single,
        fun ~pool ->
          let events, times = speedup ~pool in
          speedup_times := Some times;
          events ) );
    ("ablations", (warm_single, fun ~pool:_ -> ablations (); 0));
    ("provenance", (warm_single, fun ~pool:_ -> provenance (); 0));
    ("damping", (warm_single, fun ~pool:_ -> damping (); 0));
    ("interference", (warm_single, fun ~pool:_ -> interference (); 0));
    ("counters", (warm_single, fun ~pool -> counters_group ~pool));
    ("scale", (warm_single, fun ~pool -> scale_group ~pool ~smoke:false ()));
    ("scale-smoke", (warm_single, fun ~pool -> scale_group ~pool ~smoke:true ()));
    ("churn", (warm_single, fun ~pool:_ -> churn_group ~smoke:false ~digest:false ()));
    ("churn-digest", (warm_single, fun ~pool:_ -> churn_group ~smoke:false ~digest:true ()));
    ("churn-smoke", (warm_single, fun ~pool:_ -> churn_group ~smoke:true ~digest:false ()));
    ("mesh", (warm_mesh, fun ~pool:_ -> mesh_group ~smoke:false ()));
    ("mesh-smoke", (warm_mesh, fun ~pool:_ -> mesh_group ~smoke:true ()));
    ("partition", (warm_mesh, fun ~pool:_ -> partition_group ~smoke:false ()));
    ( "partition-smoke",
      (warm_mesh, fun ~pool:_ -> partition_group ~smoke:true ()) );
    ("micro", (warm_single, fun ~pool:_ -> micro (); 0));
  ]

let git_revision () =
  match
    try
      let ic = Unix.open_process_in "git rev-parse --short HEAD 2>/dev/null" in
      let line = try input_line ic with End_of_file -> "" in
      match Unix.close_process_in ic with
      | Unix.WEXITED 0 when line <> "" -> Some line
      | _ -> None
    with Unix.Unix_error _ | Sys_error _ -> None
  with
  | Some rev -> rev
  | None -> "unknown"

let json_escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

(* BENCH_<rev>.json schema: see EXPERIMENTS.md §"Bench perf records". *)
let write_json ~path ~jobs reports =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "{\n";
  Buffer.add_string buf "  \"schema\": \"bgpsim-bench/3\",\n";
  Buffer.add_string buf
    (Printf.sprintf "  \"revision\": \"%s\",\n" (json_escape (git_revision ())));
  Buffer.add_string buf
    (Printf.sprintf "  \"generated_unix\": %.0f,\n" (Unix.gettimeofday ()));
  Buffer.add_string buf (Printf.sprintf "  \"jobs\": %d,\n" jobs);
  Buffer.add_string buf
    (Printf.sprintf "  \"recommended_domains\": %d,\n"
       (Domain.recommended_domain_count ()));
  Buffer.add_string buf "  \"groups\": [\n";
  List.iteri
    (fun i r ->
      Buffer.add_string buf
        (Printf.sprintf
           "    {\"name\": \"%s\", \"wall_s\": %.3f, \"events\": %d, \
            \"events_per_sec\": %s, \"alloc_words\": %.0f, \
            \"peak_heap_words\": %d}%s\n"
           (json_escape r.name) r.wall_s r.events
           (if r.events > 0 && r.wall_s > 0. then
              Printf.sprintf "%.0f" (float_of_int r.events /. r.wall_s)
            else "null")
           r.alloc_words r.peak_heap_words
           (if i = List.length reports - 1 then "" else ",")))
    reports;
  Buffer.add_string buf "  ],\n";
  (match !speedup_times with
  | Some (seq_s, par_s) ->
      Buffer.add_string buf
        (Printf.sprintf
           "  \"speedup\": {\"seq_wall_s\": %.3f, \"par_wall_s\": %.3f, \
            \"ratio\": %.3f, \"jobs\": %d},\n"
           seq_s par_s
           (if par_s > 0. then seq_s /. par_s else 0.)
           jobs)
  | None -> Buffer.add_string buf "  \"speedup\": null,\n");
  (* space-partitioned executor timings (schema 3; ratio = seq/partitioned
     wall — honest, expected below 1.0 today, see DESIGN.md §17) *)
  (match !partition_record with
  | Some (seq_wall_s, events, runs) ->
      Buffer.add_string buf
        (Printf.sprintf
           "  \"partition\": {\"seq_wall_s\": %.3f, \"events\": %d, \
            \"runs\": [%s]}\n"
           seq_wall_s events
           (String.concat ", "
              (List.map
                 (fun r ->
                   Printf.sprintf
                     "{\"partitions\": %d, \"wall_s\": %.3f, \"ratio\": %.3f}"
                     r.parts r.wall_s r.ratio)
                 runs)))
  | None -> Buffer.add_string buf "  \"partition\": null\n");
  Buffer.add_string buf "}\n";
  let oc = open_out path in
  output_string oc (Buffer.contents buf);
  close_out oc;
  say "wrote %s" path

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let rec parse names jobs json = function
    | [] -> (List.rev names, jobs, json)
    | "--jobs" :: v :: rest -> (
        match int_of_string_opt v with
        | Some j when j >= 1 -> parse names (Some j) json rest
        | _ ->
            Format.eprintf "--jobs expects a positive integer, got %S@." v;
            exit 2)
    | "--json" :: path :: rest -> parse names jobs (Some path) rest
    | ("--jobs" | "--json") :: [] ->
        Format.eprintf "missing value for final flag@.";
        exit 2
    | name :: rest -> parse (name :: names) jobs json rest
  in
  let requested, jobs, json_path = parse [] None None args in
  let requested =
    if requested = [] then List.map fst groups else requested
  in
  let aliases = [ ("fig6", "fig4"); ("fig7", "fig5"); ("all", "") ] in
  let wanted name =
    match List.assoc_opt name aliases with
    | Some "" -> List.map fst groups
    | Some canonical -> [ canonical ]
    | None -> [ name ]
  in
  let requested = List.concat_map wanted requested in
  let pool = Parallel.create ?jobs () in
  say "sweep pool: %d worker(s) (host recommends %d domains)@."
    (Parallel.jobs pool)
    (Domain.recommended_domain_count ());
  let reports = ref [] in
  List.iter
    (fun name ->
      match List.assoc_opt name groups with
      | Some (warm, f) ->
          (* per-group allocation/heap sample on the main domain; pooled
             groups allocate in their workers too, so this is a floor,
             not a total (EXPERIMENTS.md §"Bench perf records").  The
             warm-up run happens before the snapshot so its allocations
             never count against the group. *)
          warm ();
          let before = Gc.quick_stat () in
          let t0 = Unix.gettimeofday () in
          let events = f ~pool in
          let wall_s = Unix.gettimeofday () -. t0 in
          let after = Gc.quick_stat () in
          let allocated (s : Gc.stat) =
            s.Gc.minor_words +. s.Gc.major_words -. s.Gc.promoted_words
          in
          let alloc_words = allocated after -. allocated before in
          say "[%s] %.2f s wall%s@." name wall_s
            (if events > 0 then
               Printf.sprintf ", %d events (%.0f ev/s)" events
                 (float_of_int events /. wall_s)
             else "");
          reports :=
            {
              name;
              wall_s;
              events;
              alloc_words;
              peak_heap_words = after.Gc.top_heap_words;
            }
            :: !reports
      | None ->
          Format.eprintf "unknown bench group %S (known: %s, fig6, fig7, all)@."
            name
            (String.concat ", " (List.map fst groups)))
    requested;
  Parallel.shutdown pool;
  match json_path with
  | Some path -> write_json ~path ~jobs:(Parallel.jobs pool) (List.rev !reports)
  | None -> ()
