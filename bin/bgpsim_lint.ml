(* bgpsim-lint: determinism & domain-safety static analysis over the
   simulator's own sources (DESIGN.md §16).

   Reads the .cmt files produced by `dune build @check` for every
   library under lib/ and bin/, evaluates the D/R/M rule set, applies
   in-source suppression comments and the committed allowlist, and
   exits 0 (clean), 1 (unsuppressed findings) or 2 (config errors).

   Run from the repo root (`dune exec bin/bgpsim_lint.exe`), from
   `dune build @lint`, or point --root/--src-root somewhere else. *)

let usage = "bgpsim_lint [--json FILE] [--root DIR] [--src-root DIR] [--allowlist FILE] [--all] [--selftest] [--list-rules]"

let ends_with ~suffix s =
  let ls = String.length suffix and l = String.length s in
  l >= ls && String.sub s (l - ls) ls = suffix

let rec find_cmts dir acc =
  match Sys.readdir dir with
  | exception Sys_error _ -> acc
  | entries ->
      Array.sort String.compare entries;
      Array.fold_left
        (fun acc name ->
          let path = Filename.concat dir name in
          if Sys.is_directory path then find_cmts path acc
          else if ends_with ~suffix:".cmt" name then path :: acc
          else acc)
        acc entries

let scan_roots cmt_root =
  List.concat_map
    (fun sub ->
      let dir = Filename.concat cmt_root sub in
      if Sys.file_exists dir && Sys.is_directory dir then
        List.rev (find_cmts dir [])
      else [])
    [ "lib"; "bin" ]

let run_selftest () =
  match Lint_src.Fixtures.check_all () with
  | Ok n ->
      Printf.printf "bgpsim-lint selftest: %d fixtures ok\n" n;
      0
  | Error msgs ->
      List.iter (fun m -> Printf.eprintf "selftest failure: %s\n" m) msgs;
      1

let print_rules () =
  List.iter
    (fun r ->
      Printf.printf "%s  %s\n      fix: %s\n" (Lint_src.Rule.id r)
        (Lint_src.Rule.title r)
        (Lint_src.Rule.fix_hint r))
    Lint_src.Rule.all

let () =
  let json_out = ref "" in
  let root = ref "" in
  let src_root = ref "" in
  let allowlist = ref "" in
  let show_all = ref false in
  let selftest = ref false in
  let list_rules = ref false in
  let spec =
    [
      ("--json", Arg.Set_string json_out, "FILE write the JSON report to FILE");
      ( "--root",
        Arg.Set_string root,
        "DIR directory holding the built cmt tree (default: _build/default \
         if present, else .)" );
      ( "--src-root",
        Arg.Set_string src_root,
        "DIR directory holding the sources for suppression comments \
         (default: the repo root)" );
      ( "--allowlist",
        Arg.Set_string allowlist,
        "FILE allowlist file (default: SRC_ROOT/lint_allowlist.txt if \
         present)" );
      ("--all", Arg.Set show_all, " also print suppressed findings");
      ( "--selftest",
        Arg.Set selftest,
        " compile and check the known-bad fixture corpus, then exit" );
      ("--list-rules", Arg.Set list_rules, " print the rule catalog and exit");
    ]
  in
  Arg.parse spec
    (fun a -> raise (Arg.Bad ("unexpected argument " ^ a)))
    usage;
  if !list_rules then begin
    print_rules ();
    exit 0
  end;
  if !selftest then exit (run_selftest ());
  let cmt_root, src_root =
    let auto_build = Filename.concat "_build" "default" in
    let cmt_root =
      if !root <> "" then !root
      else if Sys.file_exists auto_build && Sys.is_directory auto_build then
        auto_build
      else "."
    in
    let src_root = if !src_root <> "" then !src_root else "." in
    (cmt_root, src_root)
  in
  let cmts = scan_roots cmt_root in
  if cmts = [] then begin
    Printf.eprintf
      "bgpsim-lint: no .cmt files under %s/{lib,bin} — run `dune build \
       @check` first\n"
      cmt_root;
    exit 2
  end;
  (* R001 reachability: unit -> direct imports over the scanned set *)
  let units, import_errors =
    List.fold_left
      (fun (acc, errs) path ->
        match Lint_src.Analyze.imports_of_cmt path with
        | Ok (unit_name, deps) -> ((path, unit_name, deps) :: acc, errs)
        | Error e -> (acc, e :: errs))
      ([], []) cmts
  in
  let units = List.rev units and import_errors = List.rev import_errors in
  let imports = List.map (fun (_, u, d) -> (u, d)) units in
  let reachable =
    Lint_src.Analyze.worker_reachable_set ~imports
      ~roots:Lint_src.Analyze.default_roots
  in
  let module SSet = Set.Make (String) in
  let findings, analyze_errors =
    List.fold_left
      (fun (fs, errs) (path, unit_name, _) ->
        let worker_reachable = SSet.mem unit_name reachable in
        match Lint_src.Analyze.analyze_cmt ~worker_reachable path with
        | Ok (_, f) -> (f @ fs, errs)
        | Error e -> (fs, e :: errs))
      ([], []) units
  in
  let analyze_errors = List.rev analyze_errors in
  let allowlist_path =
    if !allowlist <> "" then Some !allowlist
    else
      let p = Filename.concat src_root "lint_allowlist.txt" in
      if Sys.file_exists p then Some p else None
  in
  let allows, allow_errors =
    match allowlist_path with
    | Some p -> Lint_src.Suppress.parse_allowlist p
    | None -> ([], [])
  in
  let scan_source file =
    Lint_src.Suppress.scan_file (Filename.concat src_root file)
  in
  let report =
    Lint_src.Report.build ~findings ~scan_source ~allows
      ~allow_errors:(import_errors @ analyze_errors @ allow_errors)
  in
  print_string (Lint_src.Report.to_text ~show_suppressed:!show_all report);
  if !json_out <> "" then begin
    let oc = open_out_bin !json_out in
    output_string oc (Lint_src.Report.to_json_string report);
    output_char oc '\n';
    close_out oc
  end;
  exit (Lint_src.Report.exit_code report)
