(* bgpsim — command-line front end.

   Subcommands:
     run    simulate one scenario and print its metrics
     sweep  sweep network size or MRAI and print a table
     topo   generate a topology (edge list or graphviz)

   Examples:
     bgpsim run --topology clique:15 --event tdown --mrai 30
     bgpsim run --topology internet:110 --event tlong --enhancement wrate --seeds 5
     bgpsim sweep --topology clique --axis size --values 5,10,15,20
     bgpsim topo --topology internet:48 --format dot *)

open Cmdliner

let parse_topology s =
  match String.split_on_char ':' s with
  | [ "clique"; n ] -> (
      match int_of_string_opt n with
      | Some n when n >= 1 -> Ok (Bgpsim.Experiment.Clique n)
      | _ -> Error (`Msg "clique size must be a positive integer"))
  | [ "b-clique"; n ] | [ "bclique"; n ] -> (
      match int_of_string_opt n with
      | Some n when n >= 2 -> Ok (Bgpsim.Experiment.B_clique n)
      | _ -> Error (`Msg "b-clique size must be an integer >= 2"))
  | [ "internet"; n ] -> (
      match int_of_string_opt n with
      | Some n when n >= 3 -> Ok (Bgpsim.Experiment.Internet n)
      | _ -> Error (`Msg "internet size must be an integer >= 3"))
  | [ "waxman"; n ] -> (
      match int_of_string_opt n with
      | Some n when n >= 2 -> Ok (Bgpsim.Experiment.Waxman n)
      | _ -> Error (`Msg "waxman size must be an integer >= 2"))
  | [ "glp"; n ] -> (
      match int_of_string_opt n with
      | Some n when n >= 2 -> Ok (Bgpsim.Experiment.Glp n)
      | _ -> Error (`Msg "glp size must be an integer >= 2"))
  | [ "file"; path ] -> (
      try
        let ic = open_in path in
        let len = in_channel_length ic in
        let text = really_input_string ic len in
        close_in ic;
        let graph = Topo.Topo_io.of_edge_list text in
        Ok
          (Bgpsim.Experiment.Custom
             { graph; origin = 0; name = Filename.basename path })
      with
      | Sys_error msg -> Error (`Msg msg)
      | Invalid_argument msg -> Error (`Msg msg))
  | _ ->
      Error
        (`Msg
          "expected clique:N, b-clique:N, internet:N, waxman:N, glp:N or file:PATH")

let topology_conv =
  let print fmt t =
    Format.pp_print_string fmt (Bgpsim.Experiment.topology_name t)
  in
  Arg.conv (parse_topology, print)

let enhancement_conv =
  let parse s =
    match Bgp.Enhancement.of_string s with
    | Some e -> Ok e
    | None ->
        Error
          (`Msg
            (Printf.sprintf "unknown enhancement %S (expected %s)" s
               (String.concat ", " (List.map Bgp.Enhancement.name Bgp.Enhancement.all))))
  in
  Arg.conv (parse, Bgp.Enhancement.pp)

let topology_arg =
  Arg.(
    required
    & opt (some topology_conv) None
    & info [ "t"; "topology" ] ~docv:"TOPOLOGY"
        ~doc:
          "Topology: clique:N, b-clique:N (2N nodes), internet:N, waxman:N, \
           glp:N, or file:PATH (edge list with an 'n <nodes>' header; node 0 \
           is the destination).")

let event_name = Bgpsim.Experiment.event_name

let event_arg =
  let event =
    Arg.enum
      [
        ("tdown", Bgpsim.Experiment.Tdown);
        ("tlong", Bgpsim.Experiment.Tlong);
        ("tup", Bgpsim.Experiment.Tup);
        ("trecover", Bgpsim.Experiment.Trecover);
      ]
  in
  Arg.(
    value & opt event Bgpsim.Experiment.Tdown
    & info [ "e"; "event" ] ~docv:"EVENT"
        ~doc:
          "Event: tdown (destination withdrawn), tlong (one link fails), tup \
           (destination appears) or trecover (failed link comes back).")

let enhancement_arg =
  Arg.(
    value
    & opt enhancement_conv Bgp.Enhancement.Standard
    & info [ "enhancement" ] ~docv:"MECH"
        ~doc:"Convergence mechanism: standard, ssld, wrate, assertion or ghost-flushing.")

let mrai_arg =
  Arg.(
    value & opt float 30.
    & info [ "mrai" ] ~docv:"SECONDS" ~doc:"MRAI timer value (paper default 30).")

let seed_arg =
  Arg.(value & opt int 1 & info [ "seed" ] ~docv:"SEED" ~doc:"Base random seed.")

let seeds_arg =
  Arg.(
    value & opt int 1
    & info [ "seeds" ] ~docv:"N"
        ~doc:"Number of seeds to average over (seed, seed+1, ...).")

let jobs_arg =
  Arg.(
    value & opt int 1
    & info [ "j"; "jobs" ] ~docv:"N"
        ~doc:
          "Worker domains running the (spec, seed) batch in parallel; results \
           are identical to --jobs 1 (default: sequential).")

let scenario_conv =
  let parse s =
    match Faults.Scenario.of_string s with
    | Ok sc -> Ok sc
    | Error msg -> Error (`Msg ("bad scenario: " ^ msg))
  in
  Arg.conv (parse, Faults.Scenario.pp)

let scenario_arg =
  Arg.(
    value
    & opt (some scenario_conv) None
    & info [ "scenario" ] ~docv:"SCRIPT"
        ~doc:
          "Scripted fault schedule overriding --event; semicolon-separated \
           clauses: fail@T:a-b, recover@T:a-b, reset@T:a-b, crash@T:n, \
           restart@T:n, storm@T:a-b,PERIOD,COUNT, corr@T:a-b+c-d[,RECOVER], \
           rand@COUNT:WINDOW[,RECOVER], loss=P, dup=P.  Times are seconds \
           after the injection instant.")

let invariants_arg =
  let mode =
    Arg.enum
      (List.map
         (fun m -> (Faults.Invariant.mode_name m, m))
         [ Faults.Invariant.Off; Faults.Invariant.Record; Faults.Invariant.Strict ])
  in
  Arg.(
    value & opt mode Faults.Invariant.Off
    & info [ "invariants" ] ~docv:"MODE"
        ~doc:
          "Runtime invariant checking: off, record (count violations into \
           the metrics) or strict (abort the run on the first violation).")

let max_events_arg =
  Arg.(
    value & opt int 20_000_000
    & info [ "max-events" ] ~docv:"N"
        ~doc:
          "Per-run event budget; a run that exceeds it is reported as \
           non-converged instead of hanging.")

let max_vtime_arg =
  Arg.(
    value
    & opt (some float) None
    & info [ "max-vtime" ] ~docv:"SECONDS"
        ~doc:"Per-run virtual-time budget (default: unbounded).")

let preflight_arg =
  let mode =
    Arg.enum
      (List.map
         (fun m -> (Analysis.Preflight.mode_name m, m))
         [ Analysis.Preflight.Off; Analysis.Preflight.Warn; Analysis.Preflight.Strict ])
  in
  Arg.(
    value & opt mode Analysis.Preflight.Off
    & info [ "preflight" ] ~docv:"MODE"
        ~doc:
          "Static pre-flight analysis (dispute-digraph policy safety, \
           scenario lint, convergence bounds): off, warn (report only) or \
           strict (skip statically-doomed runs).")

let spec_of ?scenario ?(invariants = Faults.Invariant.Off)
    ?(max_events = 20_000_000) ?max_vtime ?(preflight = Analysis.Preflight.Off)
    topology event enhancement mrai seed =
  let event =
    match scenario with
    | Some sc -> Bgpsim.Experiment.Scenario sc
    | None -> event
  in
  {
    (Bgpsim.Experiment.default_spec topology) with
    event;
    enhancement;
    mrai;
    seed;
    invariants;
    max_events;
    max_vtime;
    preflight;
  }

let seed_list ~seed ~seeds = List.init (Stdlib.max 1 seeds) (fun i -> seed + i)

(* --- run --- *)

let trace_file_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ] ~docv:"FILE"
        ~doc:
          "Write the structured event trace of the first seed's run to \
           $(docv) (format set by --trace-format) and print its JSONL digest \
           (the golden-trace fixture format).")

let trace_format_arg =
  Arg.(
    value
    & opt (enum [ ("json", `Json); ("binary", `Binary) ]) `Json
    & info [ "trace-format" ] ~docv:"FMT"
        ~doc:
          "Trace encoding for --trace: json (JSONL, the golden/oracle \
           format) or binary (length-prefixed frames, the fast path; decode \
           back to JSONL with 'trace decode').")

let trace_sink path = function
  | `Json -> Obs.Sink.jsonl_file path
  | `Binary -> Obs.Sink.binary_file path

(* The printed digest is always the canonical JSONL digest, whatever
   encoding was written — a binary capture is decoded back through the
   oracle so the number stays comparable with the golden fixtures. *)
let trace_jsonl_digest path = function
  | `Json -> Obs.Trace_digest.of_file path
  | `Binary ->
      let ic = open_in_bin path in
      let len = in_channel_length ic in
      let bytes = really_input_string ic len in
      close_in ic;
      Obs.Trace_digest.of_events (Obs.Binary.decode_all bytes)

let counters_flag =
  Arg.(
    value & flag
    & info [ "counters" ]
        ~doc:
          "Collect per-node and global counters (messages, decision runs, \
           FIB changes, queue-depth high-water marks) and print the merged \
           registry across all seeds/workers.")

let profile_flag =
  Arg.(
    value & flag
    & info [ "profile" ]
        ~doc:
          "Profile the event engine: per-event-tag wall-clock totals and \
           histograms, merged across all seeds/workers.")

let partitions_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "partitions" ] ~docv:"K"
        ~doc:
          "Run each simulation on $(docv) space partitions (one \
           conservatively-synchronized engine per partition; see DESIGN.md \
           §17).  Metrics, traces and digests are byte-identical to the \
           default single-engine run — this knob changes execution \
           machinery, not results.")

let mesh_flag =
  Arg.(
    value & flag
    & info [ "mesh" ]
        ~doc:
          "Full-mesh multi-prefix mode: every node originates its own prefix \
           over one shared event stream, and the resolved origin's prefix is \
           withdrawn after warm-up ($(b,--event)/$(b,--scenario) are \
           ignored).  Prints one row per seed; $(b,--trace) records the \
           per-prefix-tagged trace of the first seed.")

(* One full-mesh run per seed, sequentially (the runs share nothing, but
   mesh rows report wall-clock throughput, so no --jobs overlap). *)
let run_mesh ~(spec : Bgpsim.Experiment.spec) ~seeds:seedl ~trace_file
    ~trace_format =
  let graph, victim, _event = Bgpsim.Experiment.resolve spec in
  let config =
    Bgp.Config.of_enhancement ~mrai:spec.mrai spec.enhancement
  in
  let rows =
    List.mapi
      (fun i sd ->
        let sink =
          match trace_file with
          | Some path when i = 0 -> trace_sink path trace_format
          | Some _ | None -> Obs.Sink.null
        in
        let obs = Obs.Bus.create ~sink () in
        let partitions =
          match spec.partitions with
          | None -> None
          | Some k ->
              Some
                (Bgpsim.Partition.assignment
                   (Bgpsim.Partition.compute ~seed:sd ~graph ~k))
        in
        let t0 = Unix.gettimeofday () in
        let o =
          Fun.protect
            ~finally:(fun () -> Obs.Bus.close obs)
            (fun () ->
              Bgp.Mesh_sim.run ~config ~max_events:spec.max_events
                ?max_vtime:spec.max_vtime ~invariants:spec.invariants ~obs
                ?partitions ~graph ~victim ~seed:sd ())
        in
        let wall = Unix.gettimeofday () -. t0 in
        let until = o.victim_convergence_end in
        let loops, loop_s =
          List.fold_left
            (fun (c, s) (_, r) ->
              let a = Loopscan.Scanner.aggregate r ~until in
              (c + a.count, s +. a.total_loop_seconds))
            (0, 0.) o.loop_reports
        in
        [
          string_of_int sd;
          string_of_int (List.length o.prefixes);
          string_of_int o.events_executed;
          Printf.sprintf "%.3f" wall;
          (if wall > 0. then
             Printf.sprintf "%.0f" (float_of_int o.events_executed /. wall)
           else "-");
          Bgpsim.Report.float_cell (Bgp.Mesh_sim.convergence_time o);
          (if o.converged then "yes" else "NO");
          string_of_int o.victim_messages;
          string_of_int o.background_messages;
          string_of_int loops;
          Printf.sprintf "%.1f" loop_s;
        ])
      seedl
  in
  print_string
    (Bgpsim.Report.table
       ~title:
         (Printf.sprintf "full mesh: %d prefixes on %s, victim %d"
            (Topo.Graph.n_nodes graph)
            (Bgpsim.Experiment.topology_name spec.topology)
            victim)
       ~header:
         [
           "seed"; "prefixes"; "events"; "wall(s)"; "ev/s"; "conv(s)";
           "conv?"; "victim-msg"; "bg-msg"; "loops"; "loop-s";
         ]
       ~rows);
  match trace_file with
  | Some path when Sys.file_exists path ->
      Format.printf "@.trace %s  digest %s@." path
        (trace_jsonl_digest path trace_format)
  | Some _ | None -> ()

let run_cmd =
  let action topology event scenario invariants max_events max_vtime preflight
      enhancement mrai seed seeds jobs trace_file trace_format counters profile
      mesh partitions =
    let spec =
      {
        (spec_of ?scenario ~invariants ~max_events ?max_vtime ~preflight
           topology event enhancement mrai seed)
        with
        partitions;
      }
    in
    let seedl = seed_list ~seed ~seeds in
    Format.printf "%s  event=%s  enhancement=%a  mrai=%gs  seeds=%d@."
      (Bgpsim.Experiment.topology_name topology)
      (if mesh then "mesh" else event_name spec.event)
      Bgp.Enhancement.pp enhancement mrai seeds;
    if preflight <> Analysis.Preflight.Off then
      Format.printf "@.%a@." Analysis.Preflight.pp
        (Bgpsim.Experiment.analyze spec);
    if mesh then
      run_mesh ~spec ~seeds:seedl ~trace_file ~trace_format
    else if trace_file = None && not (counters || profile) then begin
      let robust = Bgpsim.Sweep.over_seeds_robust ~jobs spec ~seeds:seedl in
      (match robust.metrics with
      | Some m -> Format.printf "@.%a@." Metrics.Run_metrics.pp m
      | None -> Format.printf "@.no run completed@.");
      if robust.non_converged > 0 then
        Format.printf "@.%d of %d run(s) hit a budget (non-converged)@."
          robust.non_converged robust.completed;
      if robust.rejected <> [] then
        Format.printf "@.%d run(s) skipped by the strict pre-flight@."
          (List.length robust.rejected);
      if robust.failures <> [] then
        Format.printf "@.%s@." (Bgpsim.Sweep.failures_table robust.failures)
    end
    else begin
      (* Observability path: each seed runs with its own bus (the JSONL
         sink rides on the first seed only); counter snapshots and
         profiles are merged across workers after the ordered gather. *)
      let outcomes =
        Bgpsim.Parallel.map ~jobs
          (fun (i, sd) ->
            let regs = if counters then Some (Obs.Counters.create ()) else None in
            let sink =
              match trace_file with
              | Some path when i = 0 -> trace_sink path trace_format
              | Some _ | None -> Obs.Sink.null
            in
            let obs = Obs.Bus.create ~sink ?counters:regs () in
            let prof = if profile then Some (Obs.Profile.create ()) else None in
            let result =
              Fun.protect
                ~finally:(fun () -> Obs.Bus.close obs)
                (fun () ->
                  Bgpsim.Experiment.run ~obs ?profile:prof { spec with seed = sd })
            in
            (result.metrics, Option.map Obs.Counters.snapshot regs, prof))
          (List.mapi (fun i sd -> (i, sd)) seedl)
      in
      let ok = List.filter_map Result.to_option outcomes in
      let failed = List.length outcomes - List.length ok in
      (match List.map (fun (m, _, _) -> m) ok with
      | [] -> Format.printf "@.no run completed@."
      | ms -> Format.printf "@.%a@." Metrics.Run_metrics.pp (Metrics.Run_metrics.mean ms));
      if failed > 0 then Format.printf "@.%d run(s) failed@." failed;
      (match trace_file with
      | Some path when Sys.file_exists path ->
          Format.printf "@.trace %s  digest %s@." path
            (trace_jsonl_digest path trace_format)
      | Some _ | None -> ());
      (match List.filter_map (fun (_, c, _) -> c) ok with
      | [] -> ()
      | s :: rest ->
          Format.printf "@.%a" Obs.Counters.pp
            (List.fold_left Obs.Counters.merge s rest));
      match List.filter_map (fun (_, _, p) -> p) ok with
      | [] -> ()
      | p :: rest ->
          List.iter (fun src -> Obs.Profile.merge_into ~src ~dst:p) rest;
          Format.printf "@.%a" Obs.Profile.pp p
    end
  in
  let term =
    Term.(
      const action $ topology_arg $ event_arg $ scenario_arg $ invariants_arg
      $ max_events_arg $ max_vtime_arg $ preflight_arg $ enhancement_arg
      $ mrai_arg $ seed_arg $ seeds_arg $ jobs_arg $ trace_file_arg
      $ trace_format_arg $ counters_flag $ profile_flag $ mesh_flag
      $ partitions_arg)
  in
  Cmd.v
    (Cmd.info "run" ~doc:"Simulate one failure scenario and print its metrics")
    term

(* --- analyze --- *)

let analyze_cmd =
  let topology_opt_arg =
    Arg.(
      value
      & opt (some topology_conv) None
      & info [ "t"; "topology" ] ~docv:"TOPOLOGY"
          ~doc:
            "Topology to analyze: clique:N, b-clique:N, internet:N, waxman:N, \
             glp:N, or file:PATH.")
  in
  let policy_arg =
    Arg.(
      value
      & opt (enum [ ("shortest-path", `Shortest); ("gao-rexford", `Gao) ]) `Shortest
      & info [ "policy" ] ~docv:"POLICY"
          ~doc:
            "Route selection policy to analyze: shortest-path (the paper's) \
             or gao-rexford (valley-free over degree-inferred \
             relationships).")
  in
  let max_paths_arg =
    Arg.(
      value & opt int 50_000
      & info [ "max-paths" ] ~docv:"N"
          ~doc:
            "Permitted-path enumeration budget; beyond it the verdict \
             degrades to 'unknown' (or the Gao-Rexford certificate).")
  in
  let json_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "json" ] ~docv:"FILE"
          ~doc:"Also write the full report(s) as a JSON array to $(docv).")
  in
  let fixture_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "fixture" ] ~docv:"NAME"
          ~doc:
            "Analyze a canonical SPVP fixture instead of a topology: \
             bad-gadget (the Griffin-Wilfong dispute wheel, expected unsafe) \
             or good-gadget.")
  in
  let golden_flag =
    Arg.(
      value & flag
      & info [ "golden" ]
          ~doc:
            "Analyze every golden-trace fixture's spec (the CI smoke set) in \
             addition to any --topology/--fixture selection.")
  in
  let action topology event scenario policy mrai seed max_paths json fixture
      golden =
    let reports = ref [] in
    let add label report = reports := (label, report) :: !reports in
    (match fixture with
    | None -> ()
    | Some name -> (
        match Analysis.Fixtures.find name with
        | Error msg -> raise (Invalid_argument msg)
        | Ok (i : Analysis.Fixtures.instance) ->
            add i.label
              (Analysis.Preflight.analyze ~max_paths ~graph:i.graph
                 ~policy:i.policy ~origin:i.origin ~mrai
                 ~params:Netcore.Params.default ())));
    if golden then
      List.iter
        (fun (f : Bgpsim.Golden.fixture) ->
          add f.name (Bgpsim.Experiment.analyze ~max_paths f.spec))
        Bgpsim.Golden.fixtures;
    (match topology with
    | None -> ()
    | Some topology ->
        let spec = spec_of ?scenario topology event Bgp.Enhancement.Standard mrai seed in
        let label =
          Printf.sprintf "%s/%s"
            (Bgpsim.Experiment.topology_name topology)
            (event_name spec.event)
        in
        let report =
          match policy with
          | `Shortest -> Bgpsim.Experiment.analyze ~max_paths spec
          | `Gao ->
              let graph, _, _ = Bgpsim.Experiment.resolve_raw spec in
              let rel = Bgp.Policy.relationships_by_degree graph in
              Bgpsim.Experiment.analyze ~max_paths
                ~policy:(Bgp.Policy.gao_rexford ~rel) ~gr_rel:rel spec
        in
        add label report);
    let reports = List.rev !reports in
    if reports = [] then
      raise (Invalid_argument "nothing to analyze: give --topology, --fixture or --golden");
    List.iter
      (fun (label, report) ->
        Format.printf "== %s ==@.%a@.@." label Analysis.Preflight.pp report)
      reports;
    (match json with
    | None -> ()
    | Some path ->
        let oc = open_out path in
        output_string oc
          ("["
          ^ String.concat ","
              (List.map
                 (fun (label, r) ->
                   Printf.sprintf "{\"name\":\"%s\",\"report\":%s}" label
                     (Analysis.Preflight.to_json r))
                 reports)
          ^ "]\n");
        close_out oc;
        Printf.printf "wrote %s\n" path);
    let doomed =
      List.filter (fun (_, r) -> Analysis.Preflight.blocking r <> []) reports
    in
    if doomed <> [] then begin
      Format.printf "inadmissible: %s@."
        (String.concat ", " (List.map fst doomed));
      exit 1
    end
  in
  let term =
    Term.(
      const action $ topology_opt_arg $ event_arg $ scenario_arg $ policy_arg
      $ mrai_arg $ seed_arg $ max_paths_arg $ json_arg $ fixture_arg
      $ golden_flag)
  in
  Cmd.v
    (Cmd.info "analyze"
       ~doc:
         "Static pre-flight: certify policy safety via the SPVP dispute \
          digraph, lint the fault scenario, and derive convergence bounds — \
          without running the simulator.  Exits nonzero when any analyzed \
          instance is statically doomed (unsafe policy or lint error).")
    term

(* --- golden --- *)

let golden_cmd =
  let check_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "check" ] ~docv:"FILE"
          ~doc:
            "Instead of printing, compare the recomputed digests against the \
             committed fixture file and exit nonzero on any mismatch.")
  in
  let partitions_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "partitions" ] ~docv:"K"
          ~doc:
            "Recompute every digest on $(docv) space partitions \
             (conservative parallel executor).  The digests must come out \
             identical to the sequential ones — the committed fixture file \
             never forks per partition count, so '--check --partitions 2' \
             is the partitioned-determinism smoke test.")
  in
  let action check partitions =
    match check with
    | None ->
        List.iter print_endline (Bgpsim.Golden.digest_lines ?partitions ())
    | Some path ->
        let ic = open_in path in
        let len = in_channel_length ic in
        let text = really_input_string ic len in
        close_in ic;
        let expected = Bgpsim.Golden.parse_expected text in
        let bad = ref 0 in
        let check name got =
          match List.assoc_opt name expected with
          | Some want when String.equal want got ->
              Printf.printf "ok   %s %s\n" name got
          | Some want ->
              incr bad;
              Printf.printf "FAIL %s expected %s got %s\n" name want got
          | None ->
              incr bad;
              Printf.printf "FAIL %s missing from %s (got %s)\n" name path got
        in
        List.iter
          (fun (f : Bgpsim.Golden.fixture) ->
            check f.name (Bgpsim.Golden.digest ?partitions f))
          Bgpsim.Golden.fixtures;
        check Bgpsim.Golden.mesh_name (Bgpsim.Golden.mesh_digest ?partitions ());
        if !bad > 0 then exit 1
  in
  let term = Term.(const action $ check_arg $ partitions_arg) in
  Cmd.v
    (Cmd.info "golden"
       ~doc:
         "Print (or --check) the golden-trace digests of the canonical runs; \
          regenerate the committed fixtures with 'golden > \
          test/golden_digests.expected'")
    term

(* --- sweep --- *)

(* The scale preset (EXPERIMENTS.md §"Scale sweep"): T_down and T_long
   on internet-like graphs at the Premore sizes plus 300 nodes, timing
   the routing simulation alone.  Mirrors the bench's `scale` group so
   the same workload is reachable without building the bench. *)
let scale_preset_sizes = [ 29; 48; 75; 110; 300 ]

let run_scale_preset ~sizes ~preflight ~enhancement ~mrai ~seeds:seedl =
  let cell (spec : Bgpsim.Experiment.spec) =
    let graph, origin, event = Bgpsim.Experiment.resolve spec in
    let config = Bgp.Config.of_enhancement ~mrai:spec.mrai spec.enhancement in
    let t0 = Unix.gettimeofday () in
    let o =
      Bgp.Routing_sim.run ~config ~max_events:spec.max_events ~graph ~origin
        ~event ~seed:spec.seed ()
    in
    let wall = Unix.gettimeofday () -. t0 in
    (o, wall, (Gc.quick_stat ()).top_heap_words)
  in
  let rows =
    List.concat_map
      (fun n ->
        List.map
          (fun (label, ev) ->
            let cells =
              List.map
                (fun seed ->
                  cell
                    (spec_of ~preflight ~max_events:5_000_000
                       (Bgpsim.Experiment.Internet n) ev enhancement mrai seed))
                seedl
            in
            let events =
              List.fold_left
                (fun a ((o : Bgp.Routing_sim.outcome), _, _) ->
                  a + o.events_executed)
                0 cells
            in
            let wall = List.fold_left (fun a (_, w, _) -> a +. w) 0. cells in
            let conv =
              List.fold_left
                (fun a (o, _, _) -> a +. Bgp.Routing_sim.convergence_time o)
                0. cells
              /. float_of_int (List.length cells)
            in
            let converged =
              List.for_all
                (fun ((o : Bgp.Routing_sim.outcome), _, _) -> o.converged)
                cells
            in
            let heap =
              List.fold_left (fun a (_, _, h) -> Stdlib.max a h) 0 cells
            in
            let paths =
              List.fold_left
                (fun a ((o : Bgp.Routing_sim.outcome), _, _) ->
                  Stdlib.max a o.paths_interned)
                0 cells
            in
            [
              string_of_int n;
              label;
              string_of_int events;
              Printf.sprintf "%.3f" wall;
              (if wall > 0. then
                 Printf.sprintf "%.0f" (float_of_int events /. wall)
               else "-");
              Bgpsim.Report.float_cell conv;
              (if converged then "yes" else "NO");
              Printf.sprintf "%.1f" (float_of_int heap /. 1e6);
              string_of_int paths;
            ])
          [ ("tdown", Bgpsim.Experiment.Tdown); ("tlong", Bgpsim.Experiment.Tlong) ])
      sizes
  in
  print_string
    (Bgpsim.Report.table
       ~title:
         (Printf.sprintf
            "scale preset: T_down/T_long on internet graphs (%d seed(s))"
            (List.length seedl))
       ~header:
         [
           "n"; "event"; "events"; "wall(s)"; "ev/s"; "conv(s)"; "conv?";
           "heap-Mw"; "paths";
         ]
       ~rows)

(* The mesh preset (EXPERIMENTS.md §"Full-mesh recipe"): full-mesh
   multi-prefix workloads on internet-like graphs — every node
   originates its own prefix and the min-degree stub's prefix is
   withdrawn after warm-up.  CI's mesh-smoke step runs this at small
   sizes; the bench `mesh` group records the internet-110 point. *)
let mesh_preset_sizes = [ 10; 20; 29; 48 ]

let run_mesh_preset ~sizes ~preflight ~enhancement ~mrai ~seeds:seedl =
  let cell (spec : Bgpsim.Experiment.spec) =
    let graph, victim, _event = Bgpsim.Experiment.resolve spec in
    let config =
      Bgp.Config.of_enhancement ~mrai:spec.mrai spec.enhancement
    in
    let t0 = Unix.gettimeofday () in
    let o =
      Bgp.Mesh_sim.run ~config ~max_events:spec.max_events ~graph ~victim
        ~seed:spec.seed ()
    in
    let wall = Unix.gettimeofday () -. t0 in
    (o, wall, (Gc.quick_stat ()).top_heap_words)
  in
  let rows =
    List.map
      (fun n ->
        let specs =
          List.map
            (fun seed ->
              spec_of ~preflight ~max_events:40_000_000
                (Bgpsim.Experiment.Internet n) Bgpsim.Experiment.Tdown
                enhancement mrai seed)
            seedl
        in
        (* the pre-flight analyzes the victim prefix's (single-prefix)
           scenario — policy safety and bounds carry over per prefix *)
        (match specs with
        | s :: _ when preflight <> Analysis.Preflight.Off ->
            Format.printf "== internet:%d ==@.%a@.@." n Analysis.Preflight.pp
              (Bgpsim.Experiment.analyze s)
        | _ -> ());
        let cells = List.map cell specs in
        let events =
          List.fold_left
            (fun a ((o : Bgp.Mesh_sim.outcome), _, _) -> a + o.events_executed)
            0 cells
        in
        let wall = List.fold_left (fun a (_, w, _) -> a +. w) 0. cells in
        let conv =
          List.fold_left
            (fun a (o, _, _) -> a +. Bgp.Mesh_sim.convergence_time o)
            0. cells
          /. float_of_int (List.length cells)
        in
        let converged =
          List.for_all
            (fun ((o : Bgp.Mesh_sim.outcome), _, _) -> o.converged)
            cells
        in
        let loops, loop_s =
          List.fold_left
            (fun acc ((o : Bgp.Mesh_sim.outcome), _, _) ->
              List.fold_left
                (fun (c, s) (_, r) ->
                  let a =
                    Loopscan.Scanner.aggregate r
                      ~until:o.victim_convergence_end
                  in
                  (c + a.count, s +. a.total_loop_seconds))
                acc o.loop_reports)
            (0, 0.) cells
        in
        let heap =
          List.fold_left (fun a (_, _, h) -> Stdlib.max a h) 0 cells
        in
        let paths =
          List.fold_left
            (fun a ((o : Bgp.Mesh_sim.outcome), _, _) ->
              Stdlib.max a o.paths_interned)
            0 cells
        in
        let prefixes =
          match cells with
          | ((o : Bgp.Mesh_sim.outcome), _, _) :: _ ->
              List.length o.prefixes
          | [] -> 0
        in
        [
          string_of_int n;
          string_of_int prefixes;
          string_of_int events;
          Printf.sprintf "%.3f" wall;
          (if wall > 0. then
             Printf.sprintf "%.0f" (float_of_int events /. wall)
           else "-");
          Bgpsim.Report.float_cell conv;
          (if converged then "yes" else "NO");
          string_of_int loops;
          Printf.sprintf "%.1f" loop_s;
          Printf.sprintf "%.1f" (float_of_int heap /. 1e6);
          string_of_int paths;
        ])
      sizes
  in
  print_string
    (Bgpsim.Report.table
       ~title:
         (Printf.sprintf
            "mesh preset: full-mesh T_down on internet graphs (%d seed(s))"
            (List.length seedl))
       ~header:
         [
           "n"; "prefixes"; "events"; "wall(s)"; "ev/s"; "conv(s)"; "conv?";
           "loops"; "loop-s"; "heap-Mw"; "paths";
         ]
       ~rows)

let sweep_cmd =
  let axis_arg =
    Arg.(
      value
      & opt (enum [ ("size", `Size); ("mrai", `Mrai) ]) `Size
      & info [ "axis" ] ~docv:"AXIS" ~doc:"Sweep axis: size or mrai.")
  in
  let values_arg =
    Arg.(
      value
      & opt (some (list float)) None
      & info [ "values" ] ~docv:"V1,V2,..."
          ~doc:"Sweep values. Required unless $(b,--preset) is given.")
  in
  let preset_arg =
    Arg.(
      value
      & opt (some (enum [ ("scale", `Scale); ("mesh", `Mesh) ])) None
      & info [ "preset" ] ~docv:"NAME"
          ~doc:
            "Named sweep preset. $(b,scale) times T_down and T_long on \
             internet-like graphs at sizes 29,48,75,110,300 (override with \
             $(b,--values)), reporting events/sec, peak heap words and \
             arena occupancy. $(b,mesh) times full-mesh multi-prefix T_down \
             (every node originates its own prefix) at sizes 10,20,29,48 \
             (override with $(b,--values)), additionally reporting loop \
             counts and loop-seconds summed over all prefixes.  Preset runs \
             are sequential, so $(b,--jobs) is ignored.")
  in
  let family_arg =
    Arg.(
      value
      & opt
          (enum
             [
               ("clique", `Clique); ("b-clique", `B_clique); ("internet", `Internet);
             ])
          `Clique
      & info [ "t"; "topology" ] ~docv:"FAMILY"
          ~doc:"Topology family for the sweep: clique, b-clique or internet.")
  in
  let size_arg =
    Arg.(
      value & opt int 10
      & info [ "size" ] ~docv:"N" ~doc:"Fixed size when sweeping the MRAI.")
  in
  let action family axis values size event preflight enhancement mrai seed
      seeds jobs preset =
    match preset with
    | Some `Scale ->
        let sizes =
          match values with
          | Some vs -> List.map int_of_float vs
          | None -> scale_preset_sizes
        in
        run_scale_preset ~sizes ~preflight ~enhancement ~mrai
          ~seeds:(seed_list ~seed ~seeds)
    | Some `Mesh ->
        let sizes =
          match values with
          | Some vs -> List.map int_of_float vs
          | None -> mesh_preset_sizes
        in
        run_mesh_preset ~sizes ~preflight ~enhancement ~mrai
          ~seeds:(seed_list ~seed ~seeds)
    | None ->
    let values =
      match values with
      | Some vs -> vs
      | None ->
          prerr_endline "sweep: --values is required unless --preset is given";
          exit 2
    in
    let topology n =
      match family with
      | `Clique -> Bgpsim.Experiment.Clique n
      | `B_clique -> Bgpsim.Experiment.B_clique n
      | `Internet -> Bgpsim.Experiment.Internet n
    in
    let make v =
      match axis with
      | `Size ->
          spec_of ~preflight (topology (int_of_float v)) event enhancement
            mrai seed
      | `Mrai -> spec_of ~preflight (topology size) event enhancement v seed
    in
    let x_cell v =
      match axis with
      | `Size -> string_of_int (int_of_float v)
      | `Mrai -> Printf.sprintf "%g" v
    in
    let metric_cells (m : Metrics.Run_metrics.t) =
      [
        Bgpsim.Report.float_cell m.convergence_time;
        Bgpsim.Report.float_cell m.overall_looping_duration;
        string_of_int m.ttl_exhaustions;
        Bgpsim.Report.ratio_cell m.looping_ratio;
        string_of_int m.updates_sent;
      ]
    in
    let seedl = seed_list ~seed ~seeds in
    let rows =
      if preflight = Analysis.Preflight.Off then
        List.map
          (fun (v, m) -> x_cell v :: metric_cells m)
          (Bgpsim.Sweep.series ~jobs ~make ~seeds:seedl values)
      else
        (* with the pre-flight on, a statically-doomed point is skipped
           (and labelled) instead of aborting the whole sweep *)
        List.map
          (fun (v, (r : Bgpsim.Sweep.robust)) ->
            x_cell v
            ::
            (match r.metrics with
            | Some m -> metric_cells m
            | None ->
                let label =
                  if r.rejected <> [] then "rejected" else "failed"
                in
                [ label; "-"; "-"; "-"; "-" ]))
          (Bgpsim.Sweep.series_robust ~jobs ~make ~seeds:seedl values)
    in
    print_string
      (Bgpsim.Report.table
         ~title:
           (Printf.sprintf "%s sweep (%s axis, %a, mrai=%g, %d seed(s))"
              (match family with
              | `Clique -> "clique"
              | `B_clique -> "b-clique"
              | `Internet -> "internet")
              (match axis with `Size -> "size" | `Mrai -> "mrai")
              (fun () e -> Bgp.Enhancement.name e)
              enhancement mrai seeds)
         ~header:
           [
             (match axis with `Size -> "size" | `Mrai -> "mrai");
             "conv(s)";
             "loop-dur(s)";
             "ttl-exh";
             "ratio";
             "updates";
           ]
         ~rows)
  in
  let term =
    Term.(
      const action $ family_arg $ axis_arg $ values_arg $ size_arg $ event_arg
      $ preflight_arg $ enhancement_arg $ mrai_arg $ seed_arg $ seeds_arg
      $ jobs_arg $ preset_arg)
  in
  Cmd.v
    (Cmd.info "sweep"
       ~doc:
         "Sweep network size or MRAI and print the resulting series; \
          --preset scale runs the large-topology throughput workload and \
          --preset mesh the full-mesh multi-prefix one")
    term

(* --- churn --- *)

let churn_cmd =
  let epochs_arg =
    Arg.(
      value & opt int 10
      & info [ "epochs" ] ~docv:"N"
          ~doc:
            "Total completed epochs to reach.  Absolute, so a resumed run \
             continues toward the same horizon.")
  in
  let epoch_len_arg =
    Arg.(
      value & opt float 300.
      & info [ "epoch-len" ] ~docv:"SECONDS"
          ~doc:"Virtual seconds each epoch's churn events are spread over.")
  in
  let flap_rate_arg =
    Arg.(
      value & opt float 4.
      & info [ "flap-rate" ] ~docv:"RATE"
          ~doc:
            "Mean churn events per epoch (Poisson): link flaps, session \
             resets and origin prefix flaps.")
  in
  let checkpoint_dir_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "checkpoint-dir" ] ~docv:"DIR"
          ~doc:
            "Write boundary checkpoints into $(docv) (created if absent); \
             required by --resume.")
  in
  let checkpoint_every_arg =
    Arg.(
      value & opt int 4
      & info [ "checkpoint-every" ] ~docv:"EPOCHS"
          ~doc:"Epochs between checkpoints (one is always written at the end).")
  in
  let compact_every_arg =
    Arg.(
      value & opt int 8
      & info [ "compact-every" ] ~docv:"EPOCHS"
          ~doc:
            "Epochs between path-arena compactions (live handles re-interned \
             into a fresh arena).")
  in
  let resume_flag =
    Arg.(
      value & flag
      & info [ "resume" ]
          ~doc:
            "Resume from the latest checkpoint in --checkpoint-dir; the \
             resumed run reproduces the uninterrupted one bit-identically \
             (same chain digest).")
  in
  let max_wall_arg =
    Arg.(
      value
      & opt (some float) None
      & info [ "max-wall-s" ] ~docv:"SECONDS"
          ~doc:
            "Wall-clock budget; on expiry the run degrades gracefully \
             (flushes, reports the last checkpoint) and exits with status \
             wall-expired.")
  in
  let target_events_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "max-events" ] ~docv:"N"
          ~doc:
            "Stop (completed) at the first epoch boundary with at least \
             $(docv) cumulative engine events.")
  in
  let stall_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "stall-epochs" ] ~docv:"N"
          ~doc:
            "Report a structured stall (and stop) after $(docv) consecutive \
             epochs without a single FIB change.")
  in
  let kill_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "kill-after-epoch" ] ~docv:"EPOCH"
          ~doc:
            "Stop right after the boundary checkpoint of epoch $(docv) — the \
             deterministic mid-flight kill the resume tests and CI use.")
  in
  let no_digest_flag =
    Arg.(
      value & flag
      & info [ "no-digest" ]
          ~doc:
            "Skip per-epoch trace digesting (throughput benchmarking; the \
             final chain digest is then unavailable).")
  in
  let quiet_flag =
    Arg.(value & flag & info [ "quiet" ] ~doc:"Suppress per-epoch lines.")
  in
  let churn_trace_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace" ] ~docv:"FILE"
          ~doc:
            "Stream every trace event (warm-up included) to $(docv) in the \
             encoding set by --trace-format, teed with the digest chain.")
  in
  let action topology epochs epoch_len flap_rate seed mrai enhancement
      checkpoint_dir checkpoint_every compact_every resume max_wall_s
      target_events stall_epochs kill_after_epoch no_digest trace_file
      trace_format quiet =
    let graph, origin, _ =
      Bgpsim.Experiment.resolve_raw
        { (Bgpsim.Experiment.default_spec topology) with seed }
    in
    let bgp = Bgp.Config.of_enhancement ~mrai enhancement in
    let workload = Churn.Workload.make ~epoch_len ~flap_rate () in
    (match checkpoint_dir with
    | Some dir when not (Sys.file_exists dir) -> Sys.mkdir dir 0o755
    | Some _ | None -> ());
    let resume_from =
      if not resume then None
      else
        match checkpoint_dir with
        | None ->
            prerr_endline "churn: --resume requires --checkpoint-dir";
            exit 2
        | Some dir -> (
            match Churn.Checkpoint.latest ~dir with
            | Some (epoch, path) ->
                Printf.printf "resuming from %s (epoch %d)\n%!" path epoch;
                Some path
            | None ->
                Printf.eprintf "churn: no checkpoint found in %s\n" dir;
                exit 2)
    in
    let cfg =
      Churn.Driver.make ~seed ~bgp ~workload ~epochs ?target_events
        ?checkpoint_dir ~checkpoint_every ~compact_every
        ~digest:(not no_digest) ?stall_epochs ?kill_after_epoch ~graph ~origin
        ()
    in
    let watchdog = Faults.Watchdog.create ?max_wall_s () in
    Printf.printf
      "churn %s  origin=%d  epochs=%d  epoch-len=%gs  flap-rate=%g  \
       enhancement=%s  mrai=%gs  seed=%d\n\
       %!"
      (Bgpsim.Experiment.topology_name topology)
      origin epochs epoch_len flap_rate
      (Bgp.Enhancement.name enhancement)
      mrai seed;
    let on_epoch (e : Churn.Driver.epoch_info) =
      if not quiet then
        Printf.printf
          "epoch %4d  vtime %12.1f  events %9d  fib %6d  loops %3d  arena \
           %6d%s%s\n\
           %!"
          e.ei_epoch e.ei_vtime e.ei_events e.ei_fib_changes e.ei_live_loops
          e.ei_arena_size
          (if e.ei_compacted then "  compacted" else "")
          (match e.ei_checkpoint with
          | Some p -> "  ckpt " ^ Filename.basename p
          | None -> "")
    in
    let sink = Option.map (fun p -> trace_sink p trace_format) trace_file in
    let r =
      try Churn.Driver.run ~watchdog ~on_epoch ?resume_from ?sink cfg
      with Churn.Checkpoint.Incompatible_version _ as e ->
        Printf.eprintf "churn: %s\n" (Printexc.to_string e);
        exit 6
    in
    let t = r.loop_totals in
    Printf.printf "status %s\n" (Churn.Driver.status_name r.status);
    Printf.printf "epochs %d  events %d  vtime %.1f\n" r.epochs_completed
      r.events_executed r.vtime;
    Printf.printf
      "loops: started %d  resolved %d  live %d  max-concurrent %d  mean-size \
       %.2f  loop-seconds %.3f\n"
      t.loops_started t.loops_resolved t.live_now t.max_concurrent t.mean_size
      t.total_loop_seconds;
    Printf.printf "arena: size %d  peak %d  words %d\n" r.arena_size
      r.arena_peak r.arena_words;
    Printf.printf "chain-digest %s\n"
      (match r.chain_digest with Some d -> d | None -> "-");
    (match r.last_checkpoint with
    | Some p -> Printf.printf "last-checkpoint %s\n" p
    | None -> ());
    match r.status with
    | Churn.Driver.Completed | Churn.Driver.Killed _ -> ()
    | Churn.Driver.Stalled _ -> exit 3
    | Churn.Driver.Wall_expired -> exit 4
    | Churn.Driver.Event_limit -> exit 5
  in
  let term =
    Term.(
      const action $ topology_arg $ epochs_arg $ epoch_len_arg $ flap_rate_arg
      $ seed_arg $ mrai_arg $ enhancement_arg $ checkpoint_dir_arg
      $ checkpoint_every_arg $ compact_every_arg $ resume_flag $ max_wall_arg
      $ target_events_arg $ stall_arg $ kill_arg $ no_digest_flag
      $ churn_trace_arg $ trace_format_arg $ quiet_flag)
  in
  Cmd.v
    (Cmd.info "churn"
       ~doc:
         "Sustained-churn service mode: drive one persistent simulation \
          through a long horizon of flap epochs with streaming loop \
          detection, bounded memory (arena compaction), checkpoint/resume \
          and wall-clock watchdog")
    term

(* --- topo --- *)

let topo_cmd =
  let format_arg =
    Arg.(
      value
      & opt (enum [ ("edges", `Edges); ("dot", `Dot) ]) `Edges
      & info [ "format" ] ~docv:"FMT" ~doc:"Output format: edges or dot.")
  in
  let action topology format seed =
    let graph =
      match (topology : Bgpsim.Experiment.topology) with
      | Clique n -> Topo.Generators.clique n
      | B_clique n -> Topo.Generators.b_clique n
      | Internet n -> Topo.Internet.generate ~seed n
      | Waxman n -> Topo.Random_graphs.waxman ~seed n
      | Glp n -> Topo.Random_graphs.glp ~m:2 ~seed n
      | Custom { graph; _ } -> graph
    in
    match format with
    | `Edges -> print_string (Topo.Topo_io.to_edge_list graph)
    | `Dot -> print_string (Topo.Topo_io.to_dot graph)
  in
  let term = Term.(const action $ topology_arg $ format_arg $ seed_arg) in
  Cmd.v
    (Cmd.info "topo" ~doc:"Generate a topology and print it")
    term

(* --- trace --- *)

let trace_cmd =
  let dir_arg =
    Arg.(
      required
      & opt (some string) None
      & info [ "o"; "output-dir" ] ~docv:"DIR"
          ~doc:"Directory the CSV files are written into (created if absent).")
  in
  let action topology event enhancement mrai seed dir =
    let spec = spec_of topology event enhancement mrai seed in
    let run = Bgpsim.Experiment.run spec in
    if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
    let write name text =
      let path = Filename.concat dir name in
      let oc = open_out path in
      output_string oc text;
      close_out oc;
      Printf.printf "wrote %s\n" path
    in
    let fib = Netcore.Trace.fib run.outcome.trace in
    let from = run.outcome.t_fail in
    write "fib_changes.csv" (Metrics.Export.fib_changes_csv fib ~from);
    write "messages.csv" (Metrics.Export.sends_csv run.outcome.trace ~from);
    write "loops.csv"
      (Metrics.Export.loops_csv run.loops
         ~until:(run.outcome.convergence_end +. spec.replay_tail));
    Format.printf "%a@." Metrics.Run_metrics.pp run.metrics
  in
  let export_term =
    Term.(
      const action $ topology_arg $ event_arg $ enhancement_arg $ mrai_arg
      $ seed_arg $ dir_arg)
  in
  (* trace decode: the binary→JSONL oracle.  Output is byte-identical
     to what Sink.jsonl_file would have written for the same run, so
     golden digests carry over to binary captures. *)
  let decode_cmd =
    let input_arg =
      Arg.(
        required
        & pos 0 (some file) None
        & info [] ~docv:"TRACE" ~doc:"Binary trace file to decode.")
    in
    let output_arg =
      Arg.(
        value
        & opt (some string) None
        & info [ "o"; "output" ] ~docv:"FILE"
            ~doc:"Write the JSONL to $(docv) instead of standard output.")
    in
    let action input output =
      let ic = open_in_bin input in
      let reader =
        try Obs.Binary.open_reader ic
        with Failure msg ->
          close_in_noerr ic;
          Printf.eprintf "trace decode: %s: %s\n" input msg;
          exit 1
      in
      let oc, close_oc =
        match output with
        | None -> (stdout, fun () -> flush stdout)
        | Some path ->
            let oc = open_out path in
            (oc, fun () -> close_out oc)
      in
      let count = ref 0 in
      (try
         let continue_ = ref true in
         while !continue_ do
           match Obs.Binary.input reader with
           | None -> continue_ := false
           | Some ev ->
               output_string oc (Obs.Event.to_json ev);
               output_char oc '\n';
               incr count
         done
       with Failure msg ->
         close_oc ();
         close_in_noerr ic;
         Printf.eprintf "trace decode: %s: %s\n" input msg;
         exit 1);
      close_oc ();
      close_in ic;
      match output with
      | Some path -> Printf.printf "decoded %d events -> %s\n" !count path
      | None -> ()
    in
    Cmd.v
      (Cmd.info "decode"
         ~doc:
           "Decode a binary trace (--trace-format binary) back to JSONL, \
            byte-identical to what the run would have written directly")
      Term.(const action $ input_arg $ output_arg)
  in
  Cmd.group ~default:export_term
    (Cmd.info "trace"
       ~doc:
         "Run one scenario and export its FIB/message/loop traces as CSV, or \
          decode a binary event trace back to JSONL ('trace decode')")
    [ decode_cmd ]

(* --- figures --- *)

let figures_cmd =
  let dir_arg =
    Arg.(
      required
      & opt (some string) None
      & info [ "o"; "output-dir" ] ~docv:"DIR"
          ~doc:"Directory the per-figure CSV files are written into.")
  in
  let seeds_arg =
    Arg.(
      value & opt int 3
      & info [ "seeds" ] ~docv:"N" ~doc:"Seeds averaged per data point.")
  in
  let action dir seeds jobs =
    let seeds = seed_list ~seed:1 ~seeds in
    if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
    let write name text =
      let path = Filename.concat dir name in
      let oc = open_out path in
      output_string oc text;
      close_out oc;
      Printf.printf "wrote %s\n%!" path
    in
    (* one pool shared by every figure's sweep *)
    Bgpsim.Parallel.with_pool ~jobs @@ fun pool ->
    let series ~x_label ~make xs name =
      let data = Bgpsim.Sweep.series ~pool ~make ~seeds xs in
      write name (Metrics.Export.series_csv ~x_label data)
    in
    let sizes = List.map float_of_int in
    (* Figures 4 & 6 share runs; so do 5 & 7 — the CSVs carry all the
       metric columns, so one file serves both views of each figure. *)
    series ~x_label:"size"
      ~make:(fun n ->
        Bgpsim.Experiment.default_spec (Bgpsim.Experiment.Clique (int_of_float n)))
      (sizes [ 5; 10; 15; 20; 25; 30 ])
      "fig4a_fig6a_clique_tdown_vs_size.csv";
    series ~x_label:"n"
      ~make:(fun n ->
        {
          (Bgpsim.Experiment.default_spec
             (Bgpsim.Experiment.B_clique (int_of_float n)))
          with
          event = Bgpsim.Experiment.Tlong;
        })
      (sizes [ 5; 10; 15 ])
      "fig4b_fig6b_bclique_tlong_vs_size.csv";
    series ~x_label:"size"
      ~make:(fun n ->
        Bgpsim.Experiment.default_spec (Bgpsim.Experiment.Internet (int_of_float n)))
      (sizes [ 29; 48; 75; 110 ])
      "fig4c_fig6c_internet_tdown_vs_size.csv";
    series ~x_label:"mrai"
      ~make:(fun mrai ->
        { (Bgpsim.Experiment.default_spec (Bgpsim.Experiment.Clique 15)) with mrai })
      [ 10.; 20.; 30.; 40.; 50.; 60. ]
      "fig5a_fig7a_clique15_tdown_vs_mrai.csv";
    series ~x_label:"mrai"
      ~make:(fun mrai ->
        {
          (Bgpsim.Experiment.default_spec (Bgpsim.Experiment.B_clique 10)) with
          event = Bgpsim.Experiment.Tlong;
          mrai;
        })
      [ 10.; 20.; 30.; 40.; 50.; 60. ]
      "fig5b_fig7b_bclique10_tlong_vs_mrai.csv";
    (* Figures 8 & 9: one CSV per enhancement and scenario family *)
    List.iter
      (fun enh ->
        let tag = Bgp.Enhancement.name enh in
        series ~x_label:"size"
          ~make:(fun n ->
            {
              (Bgpsim.Experiment.default_spec
                 (Bgpsim.Experiment.Clique (int_of_float n)))
              with
              enhancement = enh;
            })
          (sizes [ 5; 10; 15; 20; 25; 30 ])
          (Printf.sprintf "fig8ab_clique_tdown_%s.csv" tag);
        series ~x_label:"size"
          ~make:(fun n ->
            {
              (Bgpsim.Experiment.default_spec
                 (Bgpsim.Experiment.Internet (int_of_float n)))
              with
              enhancement = enh;
            })
          (sizes [ 29; 48; 75; 110 ])
          (Printf.sprintf "fig8cd_internet_tdown_%s.csv" tag);
        series ~x_label:"n"
          ~make:(fun n ->
            {
              (Bgpsim.Experiment.default_spec
                 (Bgpsim.Experiment.B_clique (int_of_float n)))
              with
              event = Bgpsim.Experiment.Tlong;
              enhancement = enh;
            })
          (sizes [ 5; 10; 15 ])
          (Printf.sprintf "fig9ab_bclique_tlong_%s.csv" tag);
        series ~x_label:"size"
          ~make:(fun n ->
            {
              (Bgpsim.Experiment.default_spec
                 (Bgpsim.Experiment.Internet (int_of_float n)))
              with
              event = Bgpsim.Experiment.Tlong;
              enhancement = enh;
            })
          (sizes [ 29; 48; 75; 110 ])
          (Printf.sprintf "fig9cd_internet_tlong_%s.csv" tag))
      Bgp.Enhancement.all
  in
  let term = Term.(const action $ dir_arg $ seeds_arg $ jobs_arg) in
  Cmd.v
    (Cmd.info "figures"
       ~doc:
         "Regenerate every paper figure's data series as CSV files for \
          offline plotting")
    term

let () =
  let info =
    Cmd.info "bgpsim" ~version:"1.0.0"
      ~doc:"BGP path-vector transient-loop simulator (ICDCS 2004 reproduction)"
  in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            run_cmd;
            sweep_cmd;
            analyze_cmd;
            churn_cmd;
            topo_cmd;
            trace_cmd;
            figures_cmd;
            golden_cmd;
          ]))
