(** Per-node serial message processor.

    A router processes one routing message at a time; each message
    occupies the CPU for a random draw of the processing delay.  This
    serialization is behaviourally significant: the paper's footnote 5
    attributes Ghost Flushing's degradation on large cliques to real
    path information queueing behind storms of flushing withdrawals. *)

type t

val create : ?obs:Obs.Bus.t -> ?node:int -> unit -> t
(** [obs] (default {!Obs.Bus.off}) receives a queue-depth gauge sample
    on every submit and a [Node_busy] event when a message arrives while
    the CPU is occupied; [node] identifies this processor in those
    records (default [-1] = anonymous, counted globally only). *)

val busy_until : t -> float

val queue_depth : t -> int
(** Messages accepted but whose processing has not completed. *)

val submit :
  t ->
  engine:Dessim.Engine.t ->
  delay:float ->
  work:(unit -> unit) ->
  unit
(** [submit t ~engine ~delay ~work] enqueues a message arriving now;
    [work] (the protocol handler) runs when the CPU reaches it, i.e. at
    [max now busy_until +. delay].
    @raise Invalid_argument if [delay < 0.]. *)
