type change = { time : float; node : int; next_hop : int option }

type t = {
  n : int;
  per_node : (float * int option) Dessim.Vec.t array;
  global : change Dessim.Vec.t;
  mutable on_change : (change -> unit) option;
}

let create ~n =
  if n <= 0 then invalid_arg "Fib_history.create: n <= 0";
  {
    n;
    per_node = Array.init n (fun _ -> Dessim.Vec.create ());
    global = Dessim.Vec.create ();
    on_change = None;
  }

let set_on_change t f = t.on_change <- Some f

let n_nodes t = t.n

let check_node t node =
  if node < 0 || node >= t.n then
    invalid_arg (Printf.sprintf "Fib_history: node %d out of range" node)

let current t node =
  match Dessim.Vec.last t.per_node.(node) with
  | None -> None
  | Some (_, nh) -> nh

let record t ~time ~node ~next_hop =
  check_node t node;
  (match Dessim.Vec.last t.per_node.(node) with
  | Some (last_time, _) when time < last_time ->
      invalid_arg
        (Printf.sprintf
           "Fib_history.record: time %g precedes node %d's last change %g"
           time node last_time)
  | Some _ | None -> ());
  if current t node <> next_hop then begin
    Dessim.Vec.push t.per_node.(node) (time, next_hop);
    let change = { time; node; next_hop } in
    Dessim.Vec.push t.global change;
    match t.on_change with None -> () | Some f -> f change
  end

(* Largest index whose change time satisfies [le_pred]; -1 if none. *)
let search vec pred =
  let n = Dessim.Vec.length vec in
  let lo = ref (-1) and hi = ref (n - 1) in
  (* invariant: changes at indices <= !lo satisfy pred; > !hi do not *)
  while !lo < !hi do
    let mid = (!lo + !hi + 1) / 2 in
    let time, _ = Dessim.Vec.get vec mid in
    if pred time then lo := mid else hi := mid - 1
  done;
  !lo

let lookup t ~node ~time =
  check_node t node;
  let vec = t.per_node.(node) in
  let idx = search vec (fun change_time -> change_time <= time) in
  if idx < 0 then None else snd (Dessim.Vec.get vec idx)

let snapshot t ~before =
  Array.init t.n (fun node ->
      let vec = t.per_node.(node) in
      let idx = search vec (fun change_time -> change_time < before) in
      if idx < 0 then None else snd (Dessim.Vec.get vec idx))

let changes_from t ~from =
  Dessim.Vec.fold_left
    (fun acc change -> if change.time >= from then change :: acc else acc)
    [] t.global
  |> List.rev

let change_count t = Dessim.Vec.length t.global

let last_change_time t =
  match Dessim.Vec.last t.global with
  | None -> None
  | Some change -> Some change.time
