type t = {
  mutable busy_until : float;
  mutable depth : int;
  obs : Obs.Bus.t;
  node : int;
}

let create ?(obs = Obs.Bus.off) ?(node = -1) () =
  { busy_until = neg_infinity; depth = 0; obs; node }

let busy_until t = t.busy_until

let queue_depth t = t.depth

let submit t ~engine ~delay ~work =
  if delay < 0. then invalid_arg "Node_proc.submit: negative delay";
  let now = Dessim.Engine.now engine in
  let start = Stdlib.max now t.busy_until in
  let completion = start +. delay in
  t.busy_until <- completion;
  t.depth <- t.depth + 1;
  Obs.Bus.node_submit t.obs ~time:now ~node:t.node ~busy:(start > now)
    ~depth:t.depth;
  let (_ : Dessim.Engine.handle) =
    Dessim.Engine.schedule ~tag:"proc-complete" engine ~at:completion (fun () ->
        t.depth <- t.depth - 1;
        work ())
  in
  ()
