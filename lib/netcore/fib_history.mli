(** Time-indexed history of every node's next hop for one destination.

    The routing simulation appends next-hop changes as they happen; the
    forwarding replay and the loop scanner then query the state at any
    instant.  A next hop of [None] means "no route" (packets are
    dropped as unreachable).

    Change times are required to be nondecreasing per node — the
    simulation appends in virtual-time order. *)

type t

type change = { time : float; node : int; next_hop : int option }

val create : n:int -> t
(** All nodes start with no route. *)

val n_nodes : t -> int

val record : t -> time:float -> node:int -> next_hop:int option -> unit
(** Appends a change.  Recording the same next hop a node already has
    is ignored (not a change).
    @raise Invalid_argument if [time] precedes the node's last change
    or [node] is out of range. *)

val lookup : t -> node:int -> time:float -> int option
(** Next hop in effect at [time]: the latest change with
    [change.time <= time], or [None] before any change. *)

val snapshot : t -> before:float -> int option array
(** Per-node next hops in effect just before [before] (changes with
    [time < before]). *)

val changes_from : t -> from:float -> change list
(** All changes with [time >= from], in chronological (and for equal
    times, recording) order. *)

val set_on_change : t -> (change -> unit) -> unit
(** Installs a callback invoked once per recorded change, after it is
    appended — so the number of invocations always equals
    [change_count] by construction.  Used by the trace bus to emit
    [Fib_change] events. *)

val change_count : t -> int

val last_change_time : t -> float option
