(** Execution fabric: the bridge between a node-addressed network
    simulation and the engines that execute it.

    A fabric is either a single {!Dessim.Engine} (the classic
    sequential path — byte-for-byte the pre-partitioning behavior) or a
    {!Dessim.Cluster} of per-partition engines with a node-to-partition
    assignment.  Simulations talk to the fabric in node terms: which
    engine serves this node, attach this link, inject this control
    action at this node and time.  The fabric routes cross-partition
    link traffic through conservative channels and keeps partition
    clocks consistent across control actions that mutate state on both
    sides of a cut (see {!schedule_control}).

    Determinism contract: with any valid assignment, a run driven
    through a fabric commits events in exactly the sequential order
    (see {!Dessim.Cluster}), so traces, RNG draw order, and outcomes
    are identical whatever the partition count. *)

type t

val create :
  ?partitions:int array ->
  n:int ->
  edges:(int * int) list ->
  link_delay:float ->
  unit ->
  t
(** A fabric for an [n]-node network with the given (undirected)
    [edges], each of delay [link_delay].  [partitions.(v)] assigns node
    [v] to a partition; omitted, or with a single partition, the fabric
    is the sequential engine.  Cross-partition lookahead is derived
    from the edges that cross the assignment — [link_delay] today,
    being uniform.
    @raise Invalid_argument if the assignment's length is not [n], ids
    are not exactly [0..k-1] with every partition non-empty, or an edge
    endpoint is out of range. *)

val partitioned : t -> bool
(** [false] on the single-engine path. *)

val k : t -> int
(** Number of partitions (1 on the single-engine path). *)

val engine_of : t -> int -> Dessim.Engine.t
(** The engine executing node [v]'s events.  Every clock read and
    every schedule a node performs must go through its own engine. *)

val iter_engines : t -> (Dessim.Engine.t -> unit) -> unit
(** Applies [f] to each distinct engine — for installing step
    profilers and clock monitors. *)

val attach_link : t -> Link.t -> unit
(** Installs a cross-partition {!Link.transport} on the link if its
    endpoints live in different partitions; intra-partition links (and
    the single-engine path) are left on the plain engine path. *)

val schedule_control :
  ?tag:string -> t -> node:int -> at:float -> (unit -> unit) -> unit
(** Schedules a control action (fault injection, origination) at
    absolute time [at], anchored on [node]'s engine.  On a partitioned
    fabric the action is wrapped to first advance {e every} partition
    clock to [at] — a broadcast null message — because control actions
    may mutate speakers on both sides of a cut, and those mutations
    (trace stamps, message emissions, timer arms) must read the
    injection time, not a lagging remote clock.  The sync is sound
    because the action commits as the globally earliest event: nothing
    below [at] remains anywhere. *)

val run : ?until:float -> ?max_events:int -> t -> unit
(** Same contract as {!Dessim.Engine.run} ([max_events] bounds
    cumulative {!events_executed}). *)

val now : t -> float
(** Latest committed time across partitions. *)

val events_executed : t -> int

val next_live_time : t -> float option

val stats : t -> Dessim.Cluster.stats option
(** Synchronization counters; [None] on the single-engine path. *)
