type msg_kind = Announce | Withdraw

type send = { time : float; src : int; dst : int; kind : msg_kind }

type link_event = { time : float; a : int; b : int; up : bool }

type process = { time : float; node : int; from : int; kind : msg_kind }

(* The send and process logs grow by one entry per routing message — at
   simulation scale they are the trace's hot path.  Each stream is a
   column store: times in a flat float array (unboxed) and the two node
   ids plus the message kind packed into one int per entry, so logging
   allocates nothing (amortized growth aside).  Records only
   materialize in the accessors, which run once per analysis, not once
   per message. *)

type log = {
  mutable times : float array;
  mutable meta : int array;  (* (fst lsl 31) lor (snd lsl 1) lor kind-bit *)
  mutable size : int;
}

let log_create () = { times = [||]; meta = [||]; size = 0 }

let log_push log time meta =
  let cap = Array.length log.meta in
  if log.size >= cap then begin
    let ncap = Stdlib.max 64 (2 * cap) in
    let times = Array.make ncap 0. and m = Array.make ncap 0 in
    Array.blit log.times 0 times 0 log.size;
    Array.blit log.meta 0 m 0 log.size;
    log.times <- times;
    log.meta <- m
  end;
  Array.unsafe_set log.times log.size time;
  Array.unsafe_set log.meta log.size meta;
  log.size <- log.size + 1

let pack a b kind =
  (a lsl 31) lor (b lsl 1)
  lor (match kind with Announce -> 0 | Withdraw -> 1)

let meta_fst m = m lsr 31
let meta_snd m = (m lsr 1) land 0x3fff_ffff
let meta_kind m = if m land 1 = 0 then Announce else Withdraw

type t = {
  fib : Fib_history.t;
  sends : log;
  links : link_event Dessim.Vec.t;
  procs : log;
}

let create ~n =
  {
    fib = Fib_history.create ~n;
    sends = log_create ();
    links = Dessim.Vec.create ();
    procs = log_create ();
  }

let fib t = t.fib

let log_send t ~time ~src ~dst ~kind = log_push t.sends time (pack src dst kind)

let log_link_event t ~time ~a ~b ~up =
  Dessim.Vec.push t.links { time; a; b; up }

let send_of t i =
  let m = t.sends.meta.(i) in
  {
    time = t.sends.times.(i);
    src = meta_fst m;
    dst = meta_snd m;
    kind = meta_kind m;
  }

let sends t = List.init t.sends.size (send_of t)

let sends_from t ~from =
  List.filter (fun (s : send) -> s.time >= from) (sends t)

let send_count_from t ~from =
  let acc = ref 0 in
  for i = 0 to t.sends.size - 1 do
    if t.sends.times.(i) >= from then incr acc
  done;
  !acc

let count_kind_from t ~from ~kind =
  let bit = match kind with Announce -> 0 | Withdraw -> 1 in
  let acc = ref 0 in
  for i = 0 to t.sends.size - 1 do
    if t.sends.times.(i) >= from && t.sends.meta.(i) land 1 = bit then incr acc
  done;
  !acc

let last_send_at_or_after t ~from =
  let best = ref nan in
  for i = 0 to t.sends.size - 1 do
    let time = t.sends.times.(i) in
    if time >= from && not (time <= !best) then best := time
  done;
  if Float.is_nan !best then None else Some !best

let link_events t = Dessim.Vec.to_list t.links

let log_process t ~time ~node ~from ~kind =
  log_push t.procs time (pack node from kind)

let process_of t i =
  let m = t.procs.meta.(i) in
  {
    time = t.procs.times.(i);
    node = meta_fst m;
    from = meta_snd m;
    kind = meta_kind m;
  }

let last_process_at t ~node ~at_or_before =
  (* among equal times keep the later log entry: it is the one whose
     processing completed last *)
  let best = ref (-1) and best_time = ref neg_infinity in
  for i = 0 to t.procs.size - 1 do
    let time = t.procs.times.(i) in
    if meta_fst t.procs.meta.(i) = node && time <= at_or_before
       && time >= !best_time
    then begin
      best := i;
      best_time := time
    end
  done;
  if !best < 0 then None else Some (process_of t !best)

let processes t = List.init t.procs.size (process_of t)
