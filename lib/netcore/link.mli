(** Point-to-point link between two adjacent nodes.

    Models what the simulation needs from "BGP runs over TCP": reliable,
    in-order, fixed-delay delivery while the link is up, and loss of
    all in-flight messages when the link fails (the TCP session dies
    with the link; queued updates never arrive).  In-flight loss is
    implemented with an epoch counter: deliveries scheduled before a
    failure carry a stale epoch and are discarded on arrival.

    Two fault-injection facilities sit on top:

    - {b chaos knobs} ({!set_chaos}): probabilistic in-flight message
      loss and duplication, drawn from a caller-supplied seeded RNG so
      runs stay reproducible;
    - an {b epoch-guard switch} ({!set_epoch_guard}): turning the guard
      off lets stale messages through — a deliberately broken transport
      used to demonstrate that the {!Faults.Invariant} checker catches
      deliveries that cross a fail/recover boundary. *)

type t

val create : a:int -> b:int -> delay:float -> t
(** @raise Invalid_argument if [delay <= 0.] or [a = b]. *)

val endpoints : t -> int * int

val is_up : t -> bool

val epoch : t -> int
(** The fail/recover epoch counter (0 at creation, +1 per transition). *)

val set_chaos : t -> ?loss:float -> ?dup:float -> rng:Dessim.Rng.t -> unit -> unit
(** Arms probabilistic message chaos: each sent message is silently
    lost with probability [loss], else delivered twice with probability
    [dup] (defaults 0; both 0 disarms).  Draws come from [rng].
    @raise Invalid_argument if a probability is outside [\[0, 1]]. *)

val set_epoch_guard : t -> bool -> unit
(** Fault-injection knob, on by default.  When off, messages that
    survive to arrival with a stale epoch are {e delivered} instead of
    dropped, and the violation is reported to the attached checker. *)

val attach_checker : t -> Faults.Invariant.t -> unit
(** Routes this link's invariant reports (stale-epoch deliveries) to
    [checker]; defaults to {!Faults.Invariant.off}. *)

val attach_obs : t -> Obs.Bus.t -> unit
(** Routes this link's drop events ([Msg_dropped] with reason [Down],
    [Loss], or [Stale_epoch] — see {!Obs.Event.drop_reason}) to the
    trace bus; defaults to {!Obs.Bus.off}. *)

type transport = {
  schedule : from:int -> dst:int -> at:float -> (unit -> unit) -> unit;
      (** enqueue an arrival at absolute time [at] with the link's
          destination node [dst] (the space-partitioned executor routes
          it through the cross-partition channel) *)
  clock : int -> float;
      (** committed clock of the partition owning a node — used to
          stamp arrival-time drops, because the sender's engine may lag
          the arrival *)
}
(** How a link hands messages to the executor when its endpoints live
    in different partitions.  Without a transport (the default), both
    scheduling and clock reads go through the [engine] passed to
    {!send} — the single-engine sequential path. *)

val set_transport : t -> transport -> unit
(** Routes this link's deliveries through [transport].  Installed by
    {!Fabric} on links whose endpoints are assigned to different
    partitions; never installed on intra-partition links. *)

val fail : t -> unit
(** Takes the link down and invalidates in-flight messages.  Idempotent. *)

val restore : t -> unit
(** Brings the link back up (a fresh epoch; messages sent while down
    stay lost).  Idempotent. *)

val send :
  t -> engine:Dessim.Engine.t -> from:int -> deliver:(unit -> unit) -> bool
(** [send t ~engine ~from ~deliver] schedules [deliver] after the link
    delay.  Returns [false] (and schedules nothing) when the link is
    down at send time.  [deliver] is silently dropped if the link fails
    before the message arrives, and may be lost or duplicated when
    chaos is armed ([send] still returns [true]: the sender cannot
    tell).
    @raise Invalid_argument if [from] is not an endpoint. *)
