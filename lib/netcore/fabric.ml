type parts = { cluster : Dessim.Cluster.t; assignment : int array }

type t = Single of Dessim.Engine.t | Parts of parts

let validate_assignment ~n assignment =
  if Array.length assignment <> n then
    invalid_arg
      (Printf.sprintf "Fabric.create: assignment length %d for %d nodes"
         (Array.length assignment) n);
  let kk = 1 + Array.fold_left Stdlib.max (-1) assignment in
  Array.iter
    (fun p ->
      if p < 0 || p >= kk then
        invalid_arg (Printf.sprintf "Fabric.create: partition id %d" p))
    assignment;
  let seen = Array.make kk false in
  Array.iter (fun p -> seen.(p) <- true) assignment;
  Array.iteri
    (fun p occupied ->
      if not occupied then
        invalid_arg (Printf.sprintf "Fabric.create: partition %d is empty" p))
    seen;
  kk

let create ?partitions ~n ~edges ~link_delay () =
  if n <= 0 then invalid_arg "Fabric.create: n must be positive";
  List.iter
    (fun (a, b) ->
      if a < 0 || a >= n || b < 0 || b >= n then
        invalid_arg
          (Printf.sprintf "Fabric.create: edge (%d,%d) out of range" a b))
    edges;
  match partitions with
  | None -> Single (Dessim.Engine.create ())
  | Some assignment ->
      let kk = validate_assignment ~n assignment in
      if kk = 1 then Single (Dessim.Engine.create ())
      else begin
        (* Lookahead between two partitions is the minimum delay of any
           link crossing them; [infinity] (no channel) where no edge
           crosses.  Delays are uniform today, so this is [link_delay]
           for every adjacent partition pair — but derive it from the
           edges so per-link delays stay one local change away. *)
        let lookahead = Array.make_matrix kk kk infinity in
        List.iter
          (fun (a, b) ->
            let pa = assignment.(a) and pb = assignment.(b) in
            if pa <> pb then begin
              if link_delay < lookahead.(pa).(pb) then begin
                lookahead.(pa).(pb) <- link_delay;
                lookahead.(pb).(pa) <- link_delay
              end
            end)
          edges;
        let cluster = Dessim.Cluster.create ~lookahead () in
        Parts { cluster; assignment }
      end

let partitioned = function Single _ -> false | Parts _ -> true

let k = function Single _ -> 1 | Parts p -> Dessim.Cluster.k p.cluster

let engine_of t v =
  match t with
  | Single e -> e
  | Parts p -> Dessim.Cluster.engine p.cluster p.assignment.(v)

let iter_engines t f =
  match t with
  | Single e -> f e
  | Parts p ->
      for i = 0 to Dessim.Cluster.k p.cluster - 1 do
        f (Dessim.Cluster.engine p.cluster i)
      done

let attach_link t link =
  match t with
  | Single _ -> ()
  | Parts { cluster; assignment } ->
      let a, b = Link.endpoints link in
      if assignment.(a) <> assignment.(b) then
        Link.set_transport link
          {
            Link.schedule =
              (fun ~from ~dst ~at action ->
                Dessim.Cluster.send cluster ~tag:"link-deliver"
                  ~src:assignment.(from) ~dst:assignment.(dst) ~at action);
            clock =
              (fun node ->
                Dessim.Engine.now
                  (Dessim.Cluster.engine cluster assignment.(node)));
          }

let schedule_control ?tag t ~node ~at action =
  match t with
  | Single e ->
      let (_ : Dessim.Engine.handle) = Dessim.Engine.schedule ?tag e ~at action in
      ()
  | Parts p ->
      let owner = Dessim.Cluster.engine p.cluster p.assignment.(node) in
      let (_ : Dessim.Engine.handle) =
        Dessim.Engine.schedule ?tag owner ~at (fun () ->
            (* the action may touch speakers in other partitions; their
               clocks must read the injection time (see interface) *)
            Dessim.Cluster.sync_clocks p.cluster ~to_:(Dessim.Engine.now owner);
            action ())
      in
      ()

let run ?until ?max_events t =
  match t with
  | Single e -> Dessim.Engine.run ?until ?max_events e
  | Parts p -> Dessim.Cluster.run ?until ?max_events p.cluster

let now = function
  | Single e -> Dessim.Engine.now e
  | Parts p -> Dessim.Cluster.now p.cluster

let events_executed = function
  | Single e -> Dessim.Engine.events_executed e
  | Parts p -> Dessim.Cluster.events_executed p.cluster

let next_live_time = function
  | Single e -> Dessim.Engine.next_live_time e
  | Parts p -> Dessim.Cluster.next_live_time p.cluster

let stats = function
  | Single _ -> None
  | Parts p -> Some (Dessim.Cluster.stats p.cluster)
