type chaos = { loss : float; dup : float; rng : Dessim.Rng.t }

type transport = {
  schedule : from:int -> dst:int -> at:float -> (unit -> unit) -> unit;
  clock : int -> float;
}

type t = {
  a : int;
  b : int;
  delay : float;
  mutable up : bool;
  mutable epoch : int;
  mutable chaos : chaos option;
  mutable epoch_guard : bool;
  mutable checker : Faults.Invariant.t;
  mutable obs : Obs.Bus.t;
  mutable transport : transport option;
}

let create ~a ~b ~delay =
  if delay <= 0. then invalid_arg "Link.create: delay <= 0";
  if a = b then invalid_arg "Link.create: self-link";
  {
    a;
    b;
    delay;
    up = true;
    epoch = 0;
    chaos = None;
    epoch_guard = true;
    checker = Faults.Invariant.off;
    obs = Obs.Bus.off;
    transport = None;
  }

let endpoints t = (t.a, t.b)

let is_up t = t.up

let epoch t = t.epoch

let set_chaos t ?(loss = 0.) ?(dup = 0.) ~rng () =
  let check what p =
    if not (p >= 0. && p <= 1.) then
      invalid_arg (Printf.sprintf "Link.set_chaos: %s outside [0, 1]" what)
  in
  check "loss" loss;
  check "dup" dup;
  (* bgpsim-lint: allow D004 — exact zero test on user-supplied probabilities *)
  t.chaos <- (if loss = 0. && dup = 0. then None else Some { loss; dup; rng })

let set_epoch_guard t on = t.epoch_guard <- on

let attach_checker t checker = t.checker <- checker

let attach_obs t obs = t.obs <- obs

let set_transport t tr = t.transport <- Some tr

let fail t =
  if t.up then begin
    t.up <- false;
    t.epoch <- t.epoch + 1
  end

let restore t =
  if not t.up then begin
    t.up <- true;
    t.epoch <- t.epoch + 1
  end

let send t ~engine ~from ~deliver =
  if from <> t.a && from <> t.b then
    invalid_arg
      (Printf.sprintf "Link.send: node %d is not an endpoint of (%d,%d)" from
         t.a t.b);
  let dst = if from = t.a then t.b else t.a in
  (* no shared [dropped ~reason] closure: sends vastly outnumber drops,
     and the hot path should not allocate for the cold one *)
  if not t.up then begin
    Obs.Bus.msg_dropped t.obs
      ~time:(Dessim.Engine.now engine)
      ~a:from ~b:dst ~reason:Obs.Event.Down;
    false
  end
  else begin
    let sent_epoch = t.epoch in
    (* Arrival-time drop stamps must read the clock of the engine the
       arrival actually executes on.  Without a transport that is the
       sender's [engine]; with one, the destination node's partition
       clock (identical value — the arrival event sets it — but read
       through the transport because [engine] belongs to the sender). *)
    let arrival () =
      if t.up then begin
        if t.epoch = sent_epoch then deliver ()
        else if t.epoch_guard then
          Obs.Bus.msg_dropped t.obs
            ~time:
              (match t.transport with
              | None -> Dessim.Engine.now engine
              | Some tr -> tr.clock dst)
            ~a:from ~b:dst ~reason:Obs.Event.Stale_epoch
        else begin
          (* Fault-injection knob: the stale-epoch drop is disabled, so
             the message crosses a fail/recover boundary — exactly what
             the invariant checker exists to catch. *)
          Faults.Invariant.report t.checker Stale_epoch_delivery
            ~detail:(fun () ->
              Printf.sprintf
                "link (%d,%d): message sent at epoch %d delivered at epoch %d"
                t.a t.b sent_epoch t.epoch);
          deliver ()
        end
      end
      else
        Obs.Bus.msg_dropped t.obs
          ~time:
            (match t.transport with
            | None -> Dessim.Engine.now engine
            | Some tr -> tr.clock dst)
          ~a:from ~b:dst ~reason:Obs.Event.Down
    in
    let copies =
      match t.chaos with
      | None -> 1
      | Some { loss; dup; rng } ->
          (* Fixed draw order (loss then dup) keeps runs reproducible. *)
          let lost = loss > 0. && Dessim.Rng.float rng 1. < loss in
          let duplicated = dup > 0. && Dessim.Rng.float rng 1. < dup in
          if lost then 0 else if duplicated then 2 else 1
    in
    if copies = 0 then
      Obs.Bus.msg_dropped t.obs
        ~time:(Dessim.Engine.now engine)
        ~a:from ~b:dst ~reason:Obs.Event.Loss;
    for _ = 1 to copies do
      match t.transport with
      | None ->
          let (_ : Dessim.Engine.handle) =
            Dessim.Engine.schedule_after ~tag:"link-deliver" engine
              ~delay:t.delay arrival
          in
          ()
      | Some tr ->
          (* Same arrival-time arithmetic as [schedule_after] so a
             partitioned run reproduces the sequential floats bit for
             bit. *)
          tr.schedule ~from ~dst
            ~at:(Dessim.Engine.now engine +. t.delay)
            arrival
    done;
    true
  end
