type rel = P2c | Peer

type t = {
  graph : Graph.t;
  asn_of_node : int array;
  node_of_asn : (int, int) Hashtbl.t;
  (* keyed by (min node, max node); [P2c] means the smaller-id node is
     the provider when [provider_first] is true *)
  rels : (int * int, rel * bool) Hashtbl.t;
}

let parse text =
  let lines = String.split_on_char '\n' text in
  let entries =
    List.filter_map
      (fun line ->
        let line = String.trim line in
        if line = "" || line.[0] = '#' then None
        else
          match String.split_on_char '|' line with
          | [ a; b; r ] -> (
              match (int_of_string_opt a, int_of_string_opt b, r) with
              | Some a, Some b, "-1" -> Some (a, b, P2c)
              | Some a, Some b, "0" -> Some (a, b, Peer)
              | _ ->
                  invalid_arg
                    (Printf.sprintf "As_rel.parse: bad line %S" line))
          | _ -> invalid_arg (Printf.sprintf "As_rel.parse: bad line %S" line))
      lines
  in
  if entries = [] then invalid_arg "As_rel.parse: no relationships";
  let node_of_asn = Hashtbl.create 64 in
  let next = ref 0 in
  let intern asn =
    match Hashtbl.find_opt node_of_asn asn with
    | Some v -> v
    | None ->
        let v = !next in
        incr next;
        Hashtbl.add node_of_asn asn v;
        v
  in
  let rels = Hashtbl.create 64 in
  let edges =
    List.map
      (fun (a_asn, b_asn, rel) ->
        if a_asn = b_asn then
          invalid_arg
            (Printf.sprintf "As_rel.parse: self-relationship of AS %d" a_asn);
        let a = intern a_asn and b = intern b_asn in
        let key = if a < b then (a, b) else (b, a) in
        if Hashtbl.mem rels key then
          invalid_arg
            (Printf.sprintf "As_rel.parse: duplicate pair %d|%d" a_asn b_asn);
        (* for P2c the file lists the provider first *)
        Hashtbl.add rels key (rel, a < b);
        (a, b))
      entries
  in
  let graph = Graph.create ~n:!next ~edges in
  let asn_of_node = Array.make !next 0 in
  (* bgpsim-lint: allow D001 — each binding writes a distinct array slot *)
  Hashtbl.iter (fun asn node -> asn_of_node.(node) <- asn) node_of_asn;
  { graph; asn_of_node; node_of_asn; rels }

let graph t = t.graph

let node_of_asn t asn = Hashtbl.find_opt t.node_of_asn asn

let asn_of_node t node =
  if node < 0 || node >= Array.length t.asn_of_node then
    invalid_arg "As_rel.asn_of_node: node out of range";
  t.asn_of_node.(node)

let relationship t a b =
  let key = if a < b then (a, b) else (b, a) in
  match Hashtbl.find_opt t.rels key with
  | None ->
      invalid_arg
        (Printf.sprintf "As_rel.relationship: nodes %d and %d not adjacent" a b)
  | Some (Peer, _) -> `Peer
  | Some (P2c, provider_first) ->
      (* [b]'s role from [a]'s viewpoint *)
      let provider = if provider_first then Stdlib.min a b else Stdlib.max a b in
      if b = provider then `Provider else `Customer

let to_string t =
  let lines =
    Hashtbl.to_seq t.rels |> List.of_seq
    |> List.map (fun ((a, b), (rel, provider_first)) ->
           match rel with
           | Peer ->
               Printf.sprintf "%d|%d|0" t.asn_of_node.(a) t.asn_of_node.(b)
           | P2c ->
               let provider, customer =
                 if provider_first then (a, b) else (b, a)
               in
               Printf.sprintf "%d|%d|-1" t.asn_of_node.(provider)
                 t.asn_of_node.(customer))
  in
  String.concat "\n" (List.sort compare lines) ^ "\n"
