(** Undirected simple graphs over nodes [0 .. n-1].

    Nodes model Autonomous Systems; edges model inter-AS adjacencies
    (BGP sessions over physical links).  The structure is immutable
    after construction. *)

type t

val create : n:int -> edges:(int * int) list -> t
(** [create ~n ~edges] builds a graph on [n] nodes.  Self-loops and
    duplicate edges (in either orientation) are rejected.
    @raise Invalid_argument on [n < 0], an endpoint outside
    [0 .. n-1], a self-loop, or a duplicate edge. *)

val n_nodes : t -> int

val n_edges : t -> int

val nodes : t -> int list
(** [0; 1; ...; n-1]. *)

val edges : t -> (int * int) list
(** Each edge once, with the smaller endpoint first, sorted. *)

val has_edge : t -> int -> int -> bool

val neighbors : t -> int -> int list
(** Sorted ascending.  @raise Invalid_argument on an out-of-range node. *)

val degree : t -> int -> int

val is_connected : t -> bool
(** [true] for the empty and one-node graphs. *)

val reachable :
  t ->
  from:int ->
  ?blocked_nodes:int list ->
  ?blocked_links:(int * int) list ->
  unit ->
  bool array
(** Per-node reachability from [from] with the given nodes and links
    (either orientation) removed — the cut view the static scenario
    linter uses to predict partitions.  [from] itself is unreachable
    when blocked.  @raise Invalid_argument on out-of-range ids. *)

val bfs_distances : t -> from:int -> int array
(** Hop distances from [from]; unreachable nodes get [max_int]. *)

val remove_edge : t -> int -> int -> t
(** A copy without the given edge.  @raise Invalid_argument if the edge
    is absent. *)

val min_degree_nodes : t -> int list
(** All nodes attaining the minimum degree, ascending. *)

val pp : Format.formatter -> t -> unit
