type t = { n : int; adj : int list array; m : int }

let norm u v = if u <= v then (u, v) else (v, u)

let create ~n ~edges =
  if n < 0 then invalid_arg "Graph.create: negative node count";
  let adj = Array.make (Stdlib.max n 1) [] in
  let seen = Hashtbl.create (List.length edges) in
  let add (u, v) =
    if u < 0 || u >= n || v < 0 || v >= n then
      invalid_arg
        (Printf.sprintf "Graph.create: edge (%d,%d) outside 0..%d" u v (n - 1));
    if u = v then
      invalid_arg (Printf.sprintf "Graph.create: self-loop at %d" u);
    let key = norm u v in
    if Hashtbl.mem seen key then
      invalid_arg (Printf.sprintf "Graph.create: duplicate edge (%d,%d)" u v);
    Hashtbl.add seen key ();
    adj.(u) <- v :: adj.(u);
    adj.(v) <- u :: adj.(v)
  in
  List.iter add edges;
  Array.iteri (fun i l -> adj.(i) <- List.sort compare l) adj;
  { n; adj; m = List.length edges }

let n_nodes t = t.n

let n_edges t = t.m

let nodes t = List.init t.n Fun.id

let check_node t v =
  if v < 0 || v >= t.n then
    invalid_arg (Printf.sprintf "Graph: node %d outside 0..%d" v (t.n - 1))

let neighbors t v =
  check_node t v;
  t.adj.(v)

let degree t v =
  check_node t v;
  List.length t.adj.(v)

let has_edge t u v =
  check_node t u;
  check_node t v;
  List.mem v t.adj.(u)

let edges t =
  let acc = ref [] in
  for u = t.n - 1 downto 0 do
    (* adjacency lists are sorted ascending; prepend in reverse so the
       final list is sorted without a re-sort *)
    List.iter (fun v -> if u < v then acc := (u, v) :: !acc) (List.rev t.adj.(u))
  done;
  !acc

let bfs_distances t ~from =
  check_node t from;
  let dist = Array.make t.n max_int in
  dist.(from) <- 0;
  let q = Queue.create () in
  Queue.add from q;
  while not (Queue.is_empty q) do
    let u = Queue.pop q in
    List.iter
      (fun v ->
        if dist.(v) = max_int then begin
          dist.(v) <- dist.(u) + 1;
          Queue.add v q
        end)
      t.adj.(u)
  done;
  dist

let reachable t ~from ?(blocked_nodes = []) ?(blocked_links = []) () =
  check_node t from;
  List.iter (check_node t) blocked_nodes;
  List.iter
    (fun (a, b) ->
      check_node t a;
      check_node t b)
    blocked_links;
  let node_blocked = Array.make t.n false in
  List.iter (fun v -> node_blocked.(v) <- true) blocked_nodes;
  let link_blocked = Hashtbl.create (List.length blocked_links) in
  List.iter (fun (a, b) -> Hashtbl.replace link_blocked (norm a b) ()) blocked_links;
  let seen = Array.make t.n false in
  if not node_blocked.(from) then begin
    seen.(from) <- true;
    let q = Queue.create () in
    Queue.add from q;
    while not (Queue.is_empty q) do
      let u = Queue.pop q in
      List.iter
        (fun v ->
          if
            (not seen.(v))
            && (not node_blocked.(v))
            && not (Hashtbl.mem link_blocked (norm u v))
          then begin
            seen.(v) <- true;
            Queue.add v q
          end)
        t.adj.(u)
    done
  end;
  seen

let is_connected t =
  if t.n <= 1 then true
  else
    let dist = bfs_distances t ~from:0 in
    Array.for_all (fun d -> d < max_int) dist

let remove_edge t u v =
  if not (has_edge t u v) then
    invalid_arg (Printf.sprintf "Graph.remove_edge: no edge (%d,%d)" u v);
  let key = norm u v in
  let kept = List.filter (fun e -> norm (fst e) (snd e) <> key) (edges t) in
  create ~n:t.n ~edges:kept

let min_degree_nodes t =
  if t.n = 0 then []
  else
    let dmin =
      List.fold_left
        (fun acc v -> Stdlib.min acc (degree t v))
        max_int (nodes t)
    in
    List.filter (fun v -> degree t v = dmin) (nodes t)

let pp fmt t =
  Format.fprintf fmt "graph(n=%d, m=%d)" t.n t.m
