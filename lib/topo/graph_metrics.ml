type t = {
  n : int;
  m : int;
  diameter : int;
  mean_path_length : float;
  mean_degree : float;
  max_degree : int;
  min_degree : int;
  degree_histogram : (int * int) list;
  clustering : float;
}

let compute g =
  let n = Graph.n_nodes g in
  if n = 0 then invalid_arg "Graph_metrics.compute: empty graph";
  if not (Graph.is_connected g) then
    invalid_arg "Graph_metrics.compute: disconnected graph";
  let diameter = ref 0 in
  let path_sum = ref 0 and path_pairs = ref 0 in
  List.iter
    (fun v ->
      let dist = Graph.bfs_distances g ~from:v in
      Array.iter
        (fun d ->
          if d > 0 && d < max_int then begin
            diameter := Stdlib.max !diameter d;
            path_sum := !path_sum + d;
            incr path_pairs
          end)
        dist)
    (Graph.nodes g);
  let degrees = List.map (Graph.degree g) (Graph.nodes g) in
  let histogram =
    let tbl = Hashtbl.create 16 in
    List.iter
      (fun d ->
        Hashtbl.replace tbl d (1 + Option.value (Hashtbl.find_opt tbl d) ~default:0))
      degrees;
    Hashtbl.to_seq tbl |> List.of_seq |> List.sort compare
  in
  (* local clustering: fraction of a node's neighbor pairs that are
     themselves adjacent *)
  let local_clustering v =
    let nbrs = Graph.neighbors g v in
    let k = List.length nbrs in
    if k < 2 then 0.
    else begin
      let links = ref 0 in
      let rec pairs = function
        | [] -> ()
        | u :: rest ->
            List.iter (fun w -> if Graph.has_edge g u w then incr links) rest;
            pairs rest
      in
      pairs nbrs;
      2. *. float_of_int !links /. float_of_int (k * (k - 1))
    end
  in
  let clustering =
    List.fold_left (fun acc v -> acc +. local_clustering v) 0. (Graph.nodes g)
    /. float_of_int n
  in
  {
    n;
    m = Graph.n_edges g;
    diameter = !diameter;
    mean_path_length =
      (if !path_pairs = 0 then 0.
       else float_of_int !path_sum /. float_of_int !path_pairs);
    mean_degree =
      float_of_int (List.fold_left ( + ) 0 degrees) /. float_of_int n;
    max_degree = List.fold_left Stdlib.max 0 degrees;
    min_degree = List.fold_left Stdlib.min max_int degrees;
    degree_histogram = histogram;
    clustering;
  }

let pp fmt t =
  Format.fprintf fmt
    "n=%d m=%d diameter=%d mean_path=%.2f degree(min/mean/max)=%d/%.2f/%d \
     clustering=%.3f"
    t.n t.m t.diameter t.mean_path_length t.min_degree t.mean_degree
    t.max_degree t.clustering
