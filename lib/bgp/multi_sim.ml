type churn = { period : float; cycles : int; flappers : int list }

type outcome = {
  prefixes : (Prefix.t * Netcore.Fib_history.t) list;
  trace : Netcore.Trace.t;
  t_fail : float;
  victim : Prefix.t;
  victim_convergence_end : float;
  victim_messages : int;
  background_messages : int;
  converged : bool;
  termination : Routing_sim.termination;
  invariant_violations : (Faults.Invariant.kind * int) list;
  paths_interned : int;
}

let convergence_time o = o.victim_convergence_end -. o.t_fail

let failure_gap = 10.

let link_key a b = if a < b then (a, b) else (b, a)

let run ?(params = Netcore.Params.default) ?(config = Config.default) ?churn
    ?(max_events = 40_000_000) ?max_vtime
    ?(invariants = Faults.Invariant.Off) ?(obs = Obs.Bus.off) ?partitions
    ~graph ~origins ~victim ~seed () =
  Netcore.Params.validate params;
  Config.validate config;
  let n = Topo.Graph.n_nodes graph in
  if origins = [] then invalid_arg "Multi_sim.run: no origins";
  List.iter
    (fun o ->
      if o < 0 || o >= n then invalid_arg "Multi_sim.run: origin out of range")
    origins;
  if List.length (List.sort_uniq compare origins) <> List.length origins then
    invalid_arg "Multi_sim.run: duplicate origins";
  if victim < 0 || victim >= List.length origins then
    invalid_arg "Multi_sim.run: victim index out of range";
  (match churn with
  | Some c ->
      if c.period <= 0. then invalid_arg "Multi_sim.run: churn period <= 0";
      if c.cycles < 0 then invalid_arg "Multi_sim.run: negative churn cycles";
      List.iter
        (fun f ->
          if f = victim then
            invalid_arg "Multi_sim.run: the victim cannot flap";
          if f < 0 || f >= List.length origins then
            invalid_arg "Multi_sim.run: flapper index out of range")
        c.flappers
  | None -> ());
  if not (Topo.Graph.is_connected graph) then
    invalid_arg "Multi_sim.run: graph must be connected";
  if max_events <= 0 then
    invalid_arg "Multi_sim.run: max_events must be positive";
  (match max_vtime with
  | Some t when t <= 0. || Float.is_nan t ->
      invalid_arg "Multi_sim.run: max_vtime must be positive"
  | Some _ | None -> ());
  let fabric =
    Netcore.Fabric.create ?partitions ~n
      ~edges:(Topo.Graph.edges graph)
      ~link_delay:params.link_delay ()
  in
  let engine_of v = Netcore.Fabric.engine_of fabric v in
  let checker = Faults.Invariant.create invariants in
  if Faults.Invariant.enabled checker then
    Netcore.Fabric.iter_engines fabric (fun e ->
        Dessim.Engine.set_clock_monitor e (fun ~old_time ~new_time ->
            if new_time < old_time then
              Faults.Invariant.report checker Faults.Invariant.Clock_regression
                ~detail:(fun () ->
                  Printf.sprintf "event at %g fired with clock at %g" new_time
                    old_time)));
  let trace = Netcore.Trace.create ~n in
  let root_rng = Dessim.Rng.create ~seed in
  let proc_rng = Dessim.Rng.split root_rng ~label:"proc" in
  let links = Hashtbl.create (Topo.Graph.n_edges graph) in
  List.iter
    (fun (a, b) ->
      let link = Netcore.Link.create ~a ~b ~delay:params.link_delay in
      if Faults.Invariant.enabled checker then
        Netcore.Link.attach_checker link checker;
      if Obs.Bus.enabled obs then Netcore.Link.attach_obs link obs;
      Netcore.Fabric.attach_link fabric link;
      Hashtbl.add links (link_key a b) link)
    (Topo.Graph.edges graph);
  let node_procs =
    Array.init n (fun i -> Netcore.Node_proc.create ~obs ~node:i ())
  in
  let speakers = Array.make n None in
  let speaker i =
    match speakers.(i) with Some s -> s | None -> assert false
  in
  (* one arena for the whole run: paths flowing between speakers are
     handles into it, so RIB comparisons are pointer tests *)
  let paths = As_path.Table.create () in
  let prefix_list = List.map (fun origin -> Prefix.make ~origin ()) origins in
  let victim_prefix = List.nth prefix_list victim in
  let fibs =
    List.map (fun p -> (p, Netcore.Fib_history.create ~n)) prefix_list
  in
  (* [fib_of] runs on every next-hop change of every prefix; a linear
     [List.assoc] over the origin list would make each FIB update
     O(origins). *)
  let fib_index = Hashtbl.create (List.length fibs) in
  List.iter (fun (p, fib) -> Hashtbl.add fib_index p fib) fibs;
  let fib_of p = Hashtbl.find fib_index p in
  (* per-prefix message accounting for the victim's convergence *)
  let victim_msgs = ref 0
  and background_msgs = ref 0
  and last_victim_send = ref neg_infinity in
  let t_fail_ref = ref infinity in
  let draw_proc_delay () =
    Dessim.Rng.uniform proc_rng ~lo:params.proc_delay_min
      ~hi:params.proc_delay_max
  in
  let emit_from src ~peer msg =
    let link =
      match Hashtbl.find_opt links (link_key src peer) with
      | Some l -> l
      | None -> invalid_arg "Multi_sim: emit to non-neighbor"
    in
    let now = Dessim.Engine.now (engine_of src) in
    let withdraw =
      match (msg : Msg.t) with Withdraw _ -> true | Announce _ -> false
    in
    Netcore.Trace.log_send trace ~time:now ~src ~dst:peer ~kind:(Msg.kind msg);
    Obs.Bus.update_sent obs ~time:now ~src ~dst:peer ~withdraw;
    if now >= !t_fail_ref then
      if Prefix.equal (Msg.prefix msg) victim_prefix then begin
        incr victim_msgs;
        if now > !last_victim_send then last_victim_send := now
      end
      else incr background_msgs;
    let deliver () =
      (* runs on the peer's engine — the link transport routed it there *)
      Netcore.Node_proc.submit node_procs.(peer) ~engine:(engine_of peer)
        ~delay:(draw_proc_delay ()) ~work:(fun () ->
          Netcore.Trace.log_process trace
            ~time:(Dessim.Engine.now (engine_of peer))
            ~node:peer ~from:src ~kind:(Msg.kind msg);
          Obs.Bus.update_recv obs
            ~time:(Dessim.Engine.now (engine_of peer))
            ~node:peer ~from:src ~withdraw;
          Speaker.handle_msg (speaker peer) ~from:src msg)
    in
    ignore
      (Netcore.Link.send link ~engine:(engine_of src) ~from:src ~deliver : bool)
  in
  let on_next_hop_change_for node ~prefix ~next_hop =
    Netcore.Fib_history.record (fib_of prefix)
      ~time:(Dessim.Engine.now (engine_of node))
      ~node ~next_hop
  in
  for i = 0 to n - 1 do
    let rng = Dessim.Rng.split root_rng ~label:("speaker-" ^ string_of_int i) in
    speakers.(i) <-
      Some
        (Speaker.create ~checker ~obs ~paths ~engine:(engine_of i) ~config
           ~rng ~node:i
           ~peers:(Topo.Graph.neighbors graph i)
           ~emit:(emit_from i)
           ~on_next_hop_change:(on_next_hop_change_for i)
           ())
  done;
  (* warm-up: all prefixes originate *)
  List.iter2
    (fun origin prefix ->
      Netcore.Fabric.schedule_control ~tag:"originate" fabric ~node:origin
        ~at:0. (fun () -> Speaker.originate (speaker origin) prefix))
    origins prefix_list;
  Netcore.Fabric.run ?until:max_vtime ~max_events fabric;
  let warmup_drained = Netcore.Fabric.events_executed fabric < max_events in
  let t_fail = Netcore.Fabric.now fabric +. failure_gap in
  t_fail_ref := t_fail;
  (* the victim's T_down *)
  let victim_origin = List.nth origins victim in
  Netcore.Fabric.schedule_control ~tag:"inject" fabric ~node:victim_origin
    ~at:t_fail (fun () ->
      Speaker.withdraw_local (speaker victim_origin) victim_prefix);
  (* background churn *)
  (match churn with
  | None -> ()
  | Some c ->
      List.iter
        (fun flapper ->
          let origin = List.nth origins flapper in
          let prefix = List.nth prefix_list flapper in
          for k = 0 to c.cycles - 1 do
            let base = t_fail +. (float_of_int k *. c.period) in
            Netcore.Fabric.schedule_control ~tag:"inject" fabric ~node:origin
              ~at:base (fun () ->
                Speaker.withdraw_local (speaker origin) prefix);
            Netcore.Fabric.schedule_control ~tag:"inject" fabric ~node:origin
              ~at:(base +. (c.period /. 2.))
              (fun () -> Speaker.originate (speaker origin) prefix)
          done)
        c.flappers);
  Netcore.Fabric.run ?until:max_vtime ~max_events fabric;
  (match Obs.Bus.counters obs with
  | Some c ->
      Obs.Counters.add_events c (Netcore.Fabric.events_executed fabric);
      Obs.Counters.observe_paths_interned c ~count:(As_path.Table.size paths)
  | None -> ());
  let termination =
    if Netcore.Fabric.events_executed fabric >= max_events then
      Routing_sim.Event_budget
    else
      match Netcore.Fabric.next_live_time fabric with
      | Some _ -> Routing_sim.Vtime_budget
      | None -> Routing_sim.Drained
  in
  let converged = warmup_drained && termination = Routing_sim.Drained in
  {
    prefixes = fibs;
    trace;
    t_fail;
    victim = victim_prefix;
    victim_convergence_end =
      (if !last_victim_send > neg_infinity then !last_victim_send else t_fail);
    victim_messages = !victim_msgs;
    background_messages = !background_msgs;
    converged;
    termination;
    invariant_violations = Faults.Invariant.violations checker;
    paths_interned = As_path.Table.size paths;
  }
