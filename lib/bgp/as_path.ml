(* Interned AS paths (DESIGN.md §12).

   A handle owns its immutable array plus everything the hot paths ask
   of it precomputed: a structural hash, a 63-bit membership signature
   and an arena-local id.  Hash-consing makes same-arena equality
   physical; simulations run one arena each, so the Loc-RIB/Adj-RIB-Out
   comparisons in the speaker are pointer tests. *)

type t = {
  pid : int;        (* arena-local id; 0 is reserved for [empty] *)
  arena : int;      (* owning arena uid; 0 only for the shared [empty] *)
  arr : int array;  (* the ASes, nearest first; never mutated *)
  phash : int;      (* structural hash, arena-independent *)
  mask : int;       (* bit (v mod 63) set for every member v *)
}

let array_equal a b =
  let n = Array.length a in
  n = Array.length b
  &&
  let rec go i = i >= n || (Array.unsafe_get a i = Array.unsafe_get b i && go (i + 1)) in
  go 0

let hash_arr arr =
  Array.fold_left (fun h v -> ((h * 31) + v) land max_int) 17 arr

let mask_bit v = 1 lsl ((v land max_int) mod 63)

let mask_arr arr = Array.fold_left (fun m v -> m lor mask_bit v) 0 arr

let empty = { pid = 0; arena = 0; arr = [||]; phash = hash_arr [||]; mask = 0 }

module Table = struct
  module H = Hashtbl.Make (struct
    type t = int array

    let equal = array_equal

    let hash = hash_arr
  end)

  type nonrec t = {
    uid : int;
    nodes : t H.t;
    extends : (int, t) Hashtbl.t;
        (* (parent id lsl 20) lor new-head -> child; int-keyed so the
           per-decision memo probe allocates no tuple *)
    mutable next_id : int;
    mutable words : int;
  }

  (* Arena uids are global so cross-arena handles never alias; atomic
     because sweep workers create arenas concurrently. *)
  let next_uid = Atomic.make 1

  let create () =
    {
      uid = Atomic.fetch_and_add next_uid 1;
      nodes = H.create 256;
      extends = Hashtbl.create 256;
      next_id = 1;
      words = 0;
    }

  let size t = t.next_id - 1

  let words t = t.words

  (* [arr] must be duplicate-free and unaliased (the callers below
     build a fresh array per miss). *)
  let intern t arr =
    if Array.length arr = 0 then empty
    else
      match H.find_opt t.nodes arr with
      | Some p -> p
      | None ->
          let p =
            {
              pid = t.next_id;
              arena = t.uid;
              arr;
              phash = hash_arr arr;
              mask = mask_arr arr;
            }
          in
          t.next_id <- t.next_id + 1;
          (* array (len + header) + handle record + two table entries,
             all approximate — an occupancy gauge, not an accountant *)
          t.words <- t.words + Array.length arr + 12;
          H.add t.nodes arr p;
          p
end

let default_key = Domain.DLS.new_key (fun () -> Table.create ())

let default_table () = Domain.DLS.get default_key

let the_table = function Some t -> t | None -> default_table ()

let length t = Array.length t.arr

let is_empty t = t == empty || Array.length t.arr = 0

let contains t v =
  t.mask land mask_bit v <> 0
  &&
  let n = Array.length t.arr in
  let rec go i = i < n && (Array.unsafe_get t.arr i = v || go (i + 1)) in
  go 0

(* Duplicate detection on the materialized array: a single quadratic
   scan beats the former per-element Hashtbl (whose
   [Hashtbl.create (List.length l)] sizing walked the list a second
   time) for every path length a simulation produces.  Returns the
   offending AS, if any. *)
let find_dup arr =
  let n = Array.length arr in
  let rec outer i =
    if i >= n then None
    else
      let v = Array.unsafe_get arr i in
      let rec inner j =
        if j >= n then outer (i + 1)
        else if Array.unsafe_get arr j = v then Some v
        else inner (j + 1)
      in
      inner (i + 1)
  in
  outer 0

let of_list ?table l =
  match l with
  | [] -> empty
  | l -> (
      let arr = Array.of_list l in
      match find_dup arr with
      | Some v ->
          invalid_arg (Printf.sprintf "As_path.of_list: repeated AS %d" v)
      | None -> Table.intern (the_table table) arr)

let to_list t = Array.to_list t.arr

let head t = if Array.length t.arr = 0 then None else Some t.arr.(0)

let id t = t.pid

let hash t = t.phash

let extend_slow ~table ~memo ~key v t =
  if contains t v then
    invalid_arg (Printf.sprintf "As_path.prepend: AS %d already in path" v);
  let n = Array.length t.arr in
  let arr = Array.make (n + 1) v in
  Array.blit t.arr 0 arr 1 n;
  let child = Table.intern table arr in
  if memo then Hashtbl.add table.Table.extends key child;
  child

let extend ~table v t =
  (* the memo key (parent id, v) is only unambiguous for parents of
     this arena (or the shared empty, id 0 everywhere); the packing
     needs [v] to fit 20 bits, which every simulated AS number does —
     out-of-range ASes just skip the memo *)
  let memo =
    (t.arena = table.Table.uid || t.pid = 0) && v >= 0 && v < 0x10_0000
  in
  let key = (t.pid lsl 20) lor (v land 0xf_ffff) in
  if memo then
    match Hashtbl.find table.Table.extends key with
    | child -> child
    | exception Not_found -> extend_slow ~table ~memo ~key v t
  else extend_slow ~table ~memo ~key v t

let prepend ?table v t = extend ~table:(the_table table) v t

let reintern ~table t =
  if Array.length t.arr = 0 then empty
  else if t.arena = table.Table.uid then t
  else
    (* intern requires an unaliased array: the source handle keeps
       owning [t.arr] *)
    Table.intern table (Array.copy t.arr)

let suffix_from ?table t u =
  if t.mask land mask_bit u = 0 then None
  else
    let n = Array.length t.arr in
    let rec find i = if i >= n then -1 else if t.arr.(i) = u then i else find (i + 1) in
    match find 0 with
    | -1 -> None
    | 0 -> Some t
    | i -> Some (Table.intern (the_table table) (Array.sub t.arr i (n - i)))

let compare_lex a b =
  if a == b then 0
  else
    let na = Array.length a.arr and nb = Array.length b.arr in
    let n = if na < nb then na else nb in
    let rec go i =
      if i >= n then Stdlib.compare na nb
      else
        let c = Stdlib.compare (Array.unsafe_get a.arr i) (Array.unsafe_get b.arr i) in
        if c <> 0 then c else go (i + 1)
    in
    go 0

let compare a b =
  if a == b then 0
  else
    let c = Stdlib.compare (Array.length a.arr) (Array.length b.arr) in
    if c <> 0 then c else compare_lex a b

let equal a b =
  a == b
  (* same arena + hash-consing => distinct handles are distinct paths *)
  || (a.arena <> b.arena && a.phash = b.phash && array_equal a.arr b.arr)

let pp fmt t =
  Format.fprintf fmt "(%s)"
    (String.concat " " (List.map string_of_int (Array.to_list t.arr)))

let to_string t = Format.asprintf "%a" pp t
