type mode = Collapse | Fifo

(* One timer, many destination keys.  Rate limiting is logically per
   key — per (peer, prefix) for a speaker — exactly as in the paper's
   model: each key has its own interval deadline, and a key with no
   running interval sends immediately regardless of the others.  What
   is shared is the *physical* engine timer: one scheduled event per
   limiter, kept at the earliest pending deadline, so N prefixes
   toward one peer never hold N outstanding timer events.

   With a single key the state machine is exactly the historical
   per-(peer, destination) limiter — same transmit points, same
   interval draws, same fire times: golden traces depend on that
   equivalence. *)

(* A key appears in [keys] (and once in [order]) iff its interval is
   running, i.e. it transmitted less than one interval ago. *)
type 'msg key_state = {
  mutable until : float;  (* absolute vtime the interval expires *)
  queue : 'msg Queue.t;
      (* Collapse keeps at most one element; Fifo keeps them all.  May
         be empty (e.g. cleared by [send_now]): the interval still has
         to run out before the key may transmit again. *)
}

type 'msg t = {
  mode : mode;
  engine : Dessim.Engine.t;
  draw_interval : unit -> float;
  transmit : 'msg -> bool;
  on_fire : (unit -> unit) option;
  keys : (int, 'msg key_state) Hashtbl.t;
  order : int Queue.t;
      (* rate-limited keys in interval-start order; each key once *)
  mutable pending_total : int;
  mutable handle : Dessim.Engine.handle option;
  mutable timer_at : float;  (* meaningful iff [handle <> None] *)
}

let create ?(mode = Collapse) ?on_fire ~engine ~draw_interval ~transmit () =
  {
    mode;
    engine;
    draw_interval;
    transmit;
    on_fire;
    keys = Hashtbl.create 4;
    order = Queue.create ();
    pending_total = 0;
    handle = None;
    timer_at = 0.;
  }

(* Keep the shared timer at the earliest deadline.  Deadlines are
   scheduled absolutely ([schedule ~at]) so a rescheduled fire lands on
   the same float the deadline was computed with. *)
let rec ensure_timer_at t ~at =
  let reschedule =
    match t.handle with
    | None -> true
    | Some h ->
        if at < t.timer_at then (
          Dessim.Engine.cancel h;
          true)
        else false
  in
  if reschedule then begin
    t.timer_at <- at;
    t.handle <-
      Some
        (Dessim.Engine.schedule ~tag:"mrai-fire" t.engine ~at (fun () ->
             fire t))
  end

(* Start [key]'s interval just after it transmitted. *)
and begin_interval t key ~now =
  let until = now +. t.draw_interval () in
  Hashtbl.replace t.keys key { until; queue = Queue.create () };
  Queue.add key t.order;
  ensure_timer_at t ~at:until

and fire t =
  t.handle <- None;
  (match t.on_fire with None -> () | Some f -> f ());
  let now = Dessim.Engine.now t.engine in
  (* Every expired key releases (at most) one message: drain suppressed
     duplicates per key; a key that released re-arms its interval, a
     key with nothing to send falls out of rate limiting.  [order] is
     kept in interval-start order — the order per-key timers would
     fire in — so unexpired keys keep their place at the front and
     re-armed keys (interval starting now) move behind them. *)
  let n = Queue.length t.order in
  let rearmed = Queue.create () in
  for _ = 1 to n do
    let key = Queue.pop t.order in
    let st = Hashtbl.find t.keys key in
    if st.until <= now then begin
      let rec drain () =
        match Queue.take_opt st.queue with
        | None -> false
        | Some msg ->
            t.pending_total <- t.pending_total - 1;
            if t.transmit msg then true else drain ()
      in
      if drain () then begin
        st.until <- now +. t.draw_interval ();
        Queue.add key rearmed
      end
      else Hashtbl.remove t.keys key
    end
    else Queue.add key t.order
  done;
  Queue.transfer rearmed t.order;
  (* re-arm at the earliest surviving deadline, if any *)
  let next = ref infinity in
  Queue.iter
    (fun key ->
      let st = Hashtbl.find t.keys key in
      if st.until < !next then next := st.until)
    t.order;
  if !next < infinity then ensure_timer_at t ~at:!next

let offer ?(key = 0) t msg =
  match Hashtbl.find_opt t.keys key with
  | Some st ->
      (* interval running: hold the message for the next expiry *)
      (match t.mode with
      | Collapse ->
          t.pending_total <- t.pending_total - Queue.length st.queue;
          Queue.clear st.queue
      | Fifo -> ());
      Queue.add msg st.queue;
      t.pending_total <- t.pending_total + 1
  | None ->
      if t.transmit msg then
        begin_interval t key ~now:(Dessim.Engine.now t.engine)

let send_now ?(key = 0) t ~keep_pending msg =
  if not keep_pending then begin
    match Hashtbl.find_opt t.keys key with
    | None -> ()
    | Some st ->
        t.pending_total <- t.pending_total - Queue.length st.queue;
        Queue.clear st.queue
  end;
  ignore (t.transmit msg : bool)

let timer_running t = t.handle <> None

let pending t =
  (* the next message an expiry will release: head of the first
     pending key's queue in fire order *)
  let found = ref None in
  (try
     Queue.iter
       (fun key ->
         let st = Hashtbl.find t.keys key in
         if not (Queue.is_empty st.queue) then begin
           found := Queue.peek_opt st.queue;
           raise Exit
         end)
       t.order
   with Exit -> ());
  !found

let pending_count t = t.pending_total

let reset t =
  Option.iter Dessim.Engine.cancel t.handle;
  t.handle <- None;
  Hashtbl.reset t.keys;
  Queue.clear t.order;
  t.pending_total <- 0
