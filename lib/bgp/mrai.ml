type mode = Collapse | Fifo

type 'msg t = {
  mode : mode;
  engine : Dessim.Engine.t;
  draw_interval : unit -> float;
  transmit : 'msg -> bool;
  on_fire : (unit -> unit) option;
  mutable running : bool;
  mutable handle : Dessim.Engine.handle option;
  pend : 'msg Queue.t;
      (* Collapse keeps at most one element; Fifo keeps them all. *)
}

let create ?(mode = Collapse) ?on_fire ~engine ~draw_interval ~transmit () =
  {
    mode;
    engine;
    draw_interval;
    transmit;
    on_fire;
    running = false;
    handle = None;
    pend = Queue.create ();
  }

let enqueue t msg =
  (match t.mode with Collapse -> Queue.clear t.pend | Fifo -> ());
  Queue.add msg t.pend

let rec start_timer t =
  let delay = t.draw_interval () in
  t.running <- true;
  t.handle <-
    Some
      (Dessim.Engine.schedule_after ~tag:"mrai-fire" t.engine ~delay (fun () ->
           fire t))

and fire t =
  t.running <- false;
  t.handle <- None;
  (match t.on_fire with None -> () | Some f -> f ());
  (* Drain suppressed duplicates without restarting the timer; restart
     only when something really left. *)
  let rec drain () =
    match Queue.take_opt t.pend with
    | None -> ()
    | Some msg -> if t.transmit msg then start_timer t else drain ()
  in
  drain ()

let offer t msg =
  if t.running then enqueue t msg
  else if t.transmit msg then start_timer t

let send_now t ~keep_pending msg =
  if not keep_pending then Queue.clear t.pend;
  ignore (t.transmit msg : bool)

let timer_running t = t.running

let pending t = Queue.peek_opt t.pend

let pending_count t = Queue.length t.pend

let reset t =
  Option.iter Dessim.Engine.cancel t.handle;
  t.running <- false;
  t.handle <- None;
  Queue.clear t.pend
