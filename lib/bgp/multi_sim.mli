(** Multi-prefix routing simulation.

    The paper's experiments route a single destination; real BGP
    speakers carry many prefixes over the same sessions and, crucially,
    through the same per-router processing queue.  This simulation
    originates one prefix at each of several origin ASes, converges,
    then injects a [T_down] at the victim origin while (optionally) the
    other origins keep flapping their prefixes — so the victim's
    convergence-critical updates queue behind background churn.

    This quantifies an interaction the single-prefix study cannot see:
    update load on shared routers lengthens both convergence and
    transient looping for an unrelated prefix. *)

type churn = {
  period : float;
      (** a flapping origin withdraws its prefix, re-announces it half
          a period later, and repeats *)
  cycles : int;  (** number of withdraw/re-announce cycles, from the
                     failure time *)
  flappers : int list;  (** indices into [origins] of the flapping ones *)
}

type outcome = {
  prefixes : (Prefix.t * Netcore.Fib_history.t) list;
      (** one forwarding history per prefix, in [origins] order *)
  trace : Netcore.Trace.t;
      (** message/process/link logs (all prefixes combined); its FIB
          history is unused — per-prefix histories are above *)
  t_fail : float;
  victim : Prefix.t;
  victim_convergence_end : float;
      (** last send of a message for the victim prefix at/after
          [t_fail] *)
  victim_messages : int;
  background_messages : int;
  converged : bool;
  termination : Routing_sim.termination;  (** how the post-failure phase ended *)
  invariant_violations : (Faults.Invariant.kind * int) list;
  paths_interned : int;
      (** distinct AS paths interned into the run's arena (all prefixes
          share it); see DESIGN.md §12 *)
}

val convergence_time : outcome -> float

val run :
  ?params:Netcore.Params.t ->
  ?config:Config.t ->
  ?churn:churn ->
  ?max_events:int ->
  ?max_vtime:float ->
  ?invariants:Faults.Invariant.mode ->
  ?obs:Obs.Bus.t ->
  ?partitions:int array ->
  graph:Topo.Graph.t ->
  origins:int list ->
  victim:int ->
  seed:int ->
  unit ->
  outcome
(** [run ~graph ~origins ~victim ~seed ()] originates one prefix per
    origin, converges, then withdraws the prefix of [origins[victim]].
    [partitions] runs the simulation on the space-partitioned executor
    with byte-identical outcomes (see {!Routing_sim.run}).
    With [churn], the listed origins flap for the configured number of
    cycles starting at the failure time.  [obs] (default {!Obs.Bus.off})
    receives message, node-occupancy and drop events plus counters; FIB
    changes are not emitted here (the event stream carries no prefix
    discriminator).  @raise Invalid_argument on an
    empty or out-of-range [origins]/[victim], duplicate origins, or a
    flapper index equal to [victim]. *)
