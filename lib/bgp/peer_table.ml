type t = { mutable peers : int array }

let create peers =
  { peers = Array.of_list (List.sort_uniq compare peers) }

let mem t peer =
  let a = t.peers in
  let lo = ref 0 and hi = ref (Array.length a - 1) in
  let found = ref false in
  while (not !found) && !lo <= !hi do
    let mid = (!lo + !hi) / 2 in
    let v = Array.unsafe_get a mid in
    if v = peer then found := true
    else if v < peer then lo := mid + 1
    else hi := mid - 1
  done;
  !found

let add t peer =
  if not (mem t peer) then begin
    let a = t.peers in
    let n = Array.length a in
    let bigger = Array.make (n + 1) peer in
    (* insertion point keeps the array sorted *)
    let i = ref 0 in
    while !i < n && a.(!i) < peer do
      bigger.(!i) <- a.(!i);
      incr i
    done;
    Array.blit a !i bigger (!i + 1) (n - !i);
    t.peers <- bigger
  end

let remove t peer =
  if mem t peer then begin
    let a = t.peers in
    let n = Array.length a in
    let smaller = Array.make (n - 1) 0 in
    let j = ref 0 in
    for i = 0 to n - 1 do
      if a.(i) <> peer then begin
        smaller.(!j) <- a.(i);
        incr j
      end
    done;
    t.peers <- smaller
  end

let clear t = t.peers <- [||]

let is_empty t = Array.length t.peers = 0

let cardinal t = Array.length t.peers

let iter f t = Array.iter f t.peers

let to_list t = Array.to_list t.peers
