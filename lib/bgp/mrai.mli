(** Minimum Route Advertisement Interval rate limiter, one instance per
    (neighbor, destination) pair as in the paper's simulations.

    State machine: when the timer is idle, an {!offer}ed message is
    transmitted immediately and the timer starts; while it runs, offered
    messages replace the pending one; on expiry the pending message (if
    any) is transmitted and the timer restarts.  The timer only restarts
    when the transmit callback reports that something actually went out
    (duplicate announcements are suppressed by the caller and must not
    hold the timer).

    {!send_now} bypasses the timer entirely — RFC 1771 withdrawals and
    Ghost Flushing's flush withdrawals — without restarting it. *)

type 'msg t

type mode =
  | Collapse
      (** only the latest offered message is pending; superseded states
          are never transmitted (our best reading of the MRAI's
          intent, and the default) *)
  | Fifo
      (** offered messages queue up and drain one per timer expiry, so
          stale intermediate states still reach the peer.  Provided as
          an ablation: some BGP implementations buffer updates rather
          than collapsing them, which lengthens inconsistency windows
          (see EXPERIMENTS.md on WRATE). *)

val create :
  ?mode:mode ->
  ?on_fire:(unit -> unit) ->
  engine:Dessim.Engine.t ->
  draw_interval:(unit -> float) ->
  transmit:('msg -> bool) ->
  unit ->
  'msg t
(** [transmit] performs the actual send and returns whether a message
    really left (false = suppressed duplicate).  [on_fire] is invoked
    at the start of each timer expiry, before any pending message is
    transmitted (observability hook).  [mode] defaults to [Collapse]. *)

val offer : 'msg t -> 'msg -> unit
(** Rate-limited send. *)

val send_now : 'msg t -> keep_pending:bool -> 'msg -> unit
(** Immediate send, ignoring and not restarting the timer.
    [keep_pending:false] also discards any pending message (it is
    superseded, e.g. by a plain withdrawal); [keep_pending:true] leaves
    it to go out on expiry (Ghost Flushing: the flush withdrawal
    precedes the still-scheduled announcement). *)

val timer_running : _ t -> bool

val pending : 'msg t -> 'msg option
(** The next message the timer will release ([Fifo]: the queue head). *)

val pending_count : _ t -> int
(** [Collapse]: 0 or 1; [Fifo]: the queue length. *)

val reset : _ t -> unit
(** Session teardown: cancels the timer and drops pending state. *)
