(** Minimum Route Advertisement Interval rate limiter, one instance per
    neighbor with rate-limit state sharded per destination key — the
    paper's per-(neighbor, destination) model, with one {e physical}
    engine timer per limiter instead of one per destination.

    Each key runs its own interval: a key whose interval is idle
    transmits an {!offer}ed message immediately (another key's running
    interval never delays it) and starts its interval; while a key's
    interval runs, offered messages are held for that key (replacing
    its pending message in [Collapse] mode).  The shared timer sits at
    the earliest deadline; on expiry {e every} expired key releases at
    most one message — keys visited in interval-start order — and each
    key that actually released re-arms its own interval.  A key only
    stays rate-limited when the transmit callback reports something
    left (duplicate announcements are suppressed by the caller and
    must not hold an interval).

    With a single key this is exactly the historical per-(neighbor,
    destination) limiter — same transmit points, same jitter draws,
    same fire times; golden traces rely on that equivalence.

    {!send_now} bypasses the interval entirely — RFC 1771 withdrawals
    and Ghost Flushing's flush withdrawals — without touching it. *)

type 'msg t

type mode =
  | Collapse
      (** only the latest offered message per key is pending; superseded
          states are never transmitted (our best reading of the MRAI's
          intent, and the default) *)
  | Fifo
      (** offered messages queue up per key and drain one per timer
          expiry, so stale intermediate states still reach the peer.
          Provided as an ablation: some BGP implementations buffer
          updates rather than collapsing them, which lengthens
          inconsistency windows (see EXPERIMENTS.md on WRATE). *)

val create :
  ?mode:mode ->
  ?on_fire:(unit -> unit) ->
  engine:Dessim.Engine.t ->
  draw_interval:(unit -> float) ->
  transmit:('msg -> bool) ->
  unit ->
  'msg t
(** [transmit] performs the actual send and returns whether a message
    really left (false = suppressed duplicate).  [draw_interval] is
    drawn once per interval start, per key.  [on_fire] is invoked at
    the start of each physical timer expiry, before any pending
    message is transmitted (observability hook); batching means one
    expiry may release several keys.  [mode] defaults to [Collapse]. *)

val offer : ?key:int -> 'msg t -> 'msg -> unit
(** Rate-limited send for destination [key] (default [0]). *)

val send_now : ?key:int -> 'msg t -> keep_pending:bool -> 'msg -> unit
(** Immediate send, ignoring and not re-arming [key]'s interval.
    [keep_pending:false] also discards [key]'s pending message (it is
    superseded, e.g. by a plain withdrawal); [keep_pending:true] leaves
    it to go out on expiry (Ghost Flushing: the flush withdrawal
    precedes the still-scheduled announcement).  Other keys' pending
    state is never touched. *)

val timer_running : _ t -> bool
(** Whether the shared physical timer is scheduled, i.e. at least one
    key's interval is running. *)

val pending : 'msg t -> 'msg option
(** The next message an expiry will release: the head of the first
    pending key's queue in fire order. *)

val pending_count : _ t -> int
(** Total over all keys ([Collapse]: at most one per key; [Fifo]: the
    queue lengths). *)

val reset : _ t -> unit
(** Session teardown: cancels the timer and drops all rate-limit
    state. *)
