(* Per-peer out state: one batched MRAI limiter covering every prefix
   toward that peer (pending state sharded inside the limiter by
   packed key), so a speaker carrying N prefixes schedules one timer
   per peer instead of N.  What the peer currently holds from us lives
   in the speaker-wide flat [advertised] table. *)
type peer_out = { mrai : Msg.t Mrai.t }

type best_route = { learned_from : int option; path : As_path.t }

(* Per-prefix state that does not shard by peer.  The Adj-RIB-In and
   Adj-RIB-Out themselves live in the speaker-wide flat tables keyed by
   the packed (prefix_id, peer) int — see [Prefix.Key]. *)
type dest_state = {
  prefix : Prefix.t;
  pid : int;  (* dense id in the speaker's prefix table *)
  mutable local : bool;
  mutable best : best_route option;
  damp : (int, Damping.t) Hashtbl.t;
      (* per-peer flap state; populated only when damping is configured *)
  mutable reuse_timer : Dessim.Engine.handle option;
}

type t = {
  node : int;
  engine : Dessim.Engine.t;
  config : Config.t;
  rng : Dessim.Rng.t;
  checker : Faults.Invariant.t;
  obs : Obs.Bus.t;
  prefix_obs : bool;
  mutable paths : As_path.Table.t;
  prefixes : Prefix.Table.t;
  live_peers : Peer_table.t;
  mutable alive : bool;
  emit : peer:int -> Msg.t -> unit;
  on_next_hop_change : prefix:Prefix.t -> next_hop:int option -> unit;
  rib_in : (int, As_path.t) Hashtbl.t;  (* packed (prefix_id, peer) *)
  advertised : (int, As_path.t) Hashtbl.t;  (* packed (prefix_id, peer) *)
  outs : (int, peer_out) Hashtbl.t;  (* by peer *)
  dests : (int, dest_state) Hashtbl.t;  (* by prefix id *)
  mutable dests_rev : dest_state list;  (* creation order, newest first *)
  mutable route_changes : int;
}

let create ?(checker = Faults.Invariant.off) ?(obs = Obs.Bus.off)
    ?(prefix_obs = false) ?paths ?prefixes ~engine ~config ~rng ~node ~peers
    ~emit ~on_next_hop_change () =
  Config.validate config;
  {
    node;
    engine;
    config;
    rng;
    checker;
    obs;
    prefix_obs;
    paths = (match paths with Some t -> t | None -> As_path.default_table ());
    prefixes =
      (match prefixes with Some t -> t | None -> Prefix.Table.create ());
    live_peers = Peer_table.create peers;
    alive = true;
    emit;
    on_next_hop_change;
    rib_in = Hashtbl.create 16;
    advertised = Hashtbl.create 16;
    outs = Hashtbl.create 8;
    dests = Hashtbl.create 4;
    dests_rev = [];
    route_changes = 0;
  }

let node t = t.node

let peers t = Peer_table.to_list t.live_peers

let obs_prefix t (st : dest_state) =
  if t.prefix_obs then Some st.pid else None

(* Destinations in creation order — deterministic under the engine's
   deterministic event order, unlike iterating the hashtable. *)
let iter_dests t f = List.iter f (List.rev t.dests_rev)

let dest_state t prefix =
  (* runs once per processed message: find/Not_found over find_opt to
     keep the hit path allocation-free *)
  let pid = Prefix.Table.id t.prefixes prefix in
  match Hashtbl.find t.dests pid with
  | st -> st
  | exception Not_found ->
      let st =
        {
          prefix;
          pid;
          local = false;
          best = None;
          damp = Hashtbl.create 8;
          reuse_timer = None;
        }
      in
      Hashtbl.add t.dests pid st;
      t.dests_rev <- st :: t.dests_rev;
      st

let draw_mrai_interval t () =
  let m = t.config.mrai in
  if m <= 0. then 0.
  else Dessim.Rng.uniform t.rng ~lo:(t.config.mrai_jitter_min *. m) ~hi:m

let msg_key t ~peer msg =
  Prefix.Key.pack
    ~id:(Prefix.Table.id t.prefixes (Msg.prefix msg))
    ~peer

let out_state t peer =
  match Hashtbl.find t.outs peer with
  | out -> out
  | exception Not_found ->
      let transmit msg =
        (* Duplicate suppression: skip messages that would not change
           what the peer holds from us for this prefix.  A suppressed
           message must not (re)start the MRAI timer. *)
        let key = msg_key t ~peer msg in
        match (msg : Msg.t) with
        | Announce { path; _ } -> (
            match Hashtbl.find_opt t.advertised key with
            | Some prev when As_path.equal prev path -> false
            | Some _ | None ->
                Hashtbl.replace t.advertised key path;
                t.emit ~peer msg;
                true)
        | Withdraw _ ->
            if Hashtbl.mem t.advertised key then begin
              Hashtbl.remove t.advertised key;
              t.emit ~peer msg;
              true
            end
            else false
      in
      let on_fire =
        (* Only pay for the closure when the bus is live. *)
        if Obs.Bus.enabled t.obs then
          Some
            (fun () ->
              Obs.Bus.mrai_fire t.obs
                ~time:(Dessim.Engine.now t.engine)
                ~node:t.node ~peer)
        else None
      in
      let mrai =
        Mrai.create ~mode:t.config.rate_limiter ?on_fire ~engine:t.engine
          ~draw_interval:(draw_mrai_interval t) ~transmit ()
      in
      let out = { mrai } in
      Hashtbl.add t.outs peer out;
      out

(* --- route-flap damping hooks --- *)

let damp_state t st peer =
  match Hashtbl.find_opt st.damp peer with
  | Some d -> d
  | None ->
      let d =
        match t.config.damping with
        | Some params -> Damping.create params
        | None -> assert false (* only called when damping is on *)
      in
      Hashtbl.add st.damp peer d;
      d

let peer_suppressed t st peer =
  match t.config.damping with
  | None -> false
  | Some _ -> (
      match Hashtbl.find_opt st.damp peer with
      | None -> false
      | Some d -> Damping.suppressed d ~now:(Dessim.Engine.now t.engine))

(* --- decision process --- *)

(* The Adj-RIB-In shard for [st] is probed per live peer (ascending,
   via the sorted peer table) rather than folded in hashtable bucket
   order.  Decisions cannot change from the ordering: each rib-in path
   starts with the announcing peer's AS, so the policy preference is a
   strict total order over candidates from distinct peers. *)
let best_candidate t st =
  if st.local then Some { learned_from = None; path = As_path.empty }
  else begin
    let best = ref None in
    Peer_table.iter
      (fun peer ->
        match Hashtbl.find t.rib_in (Prefix.Key.pack ~id:st.pid ~peer) with
        | exception Not_found -> ()
        | path ->
            let cand = { Policy.peer; path } in
            if
              t.config.policy.Policy.import_ok ~self:t.node cand
              && not (peer_suppressed t st peer)
            then
              match !best with
              | None -> best := Some cand
              | Some cur ->
                  if t.config.policy.Policy.prefer ~self:t.node cand cur < 0
                  then best := Some cand)
      t.live_peers;
    Option.map
      (fun (c : Policy.candidate) ->
        { learned_from = Some c.peer; path = c.path })
      !best
  end

let next_hop_of = function
  | None -> None
  | Some { learned_from; _ } -> learned_from

let equal_best a b =
  match (a, b) with
  | None, None -> true
  | Some x, Some y ->
      x.learned_from = y.learned_from && As_path.equal x.path y.path
  | None, Some _ | Some _, None -> false

(* What [peer] should hold from us: our best path with ourselves
   prepended, unless policy filters it or SSLD knows the peer would
   discard it (its own AS is on the path) — in which case the peer
   should hold nothing, conveyed by an immediate withdrawal. *)
let desired_announcement t st peer =
  match st.best with
  | None -> None
  | Some b ->
      if
        not
          (t.config.policy.Policy.export_ok ~self:t.node ~to_peer:peer
             ~learned_from:b.learned_from)
      then None
      else
        let full = As_path.extend ~table:t.paths t.node b.path in
        if t.config.ssld && As_path.contains full peer then None
        else Some full

let sync_peer t st peer =
  let out = out_state t peer in
  let prefix = st.prefix in
  let key = Prefix.Key.pack ~id:st.pid ~peer in
  match desired_announcement t st peer with
  | Some full ->
      (* Ghost Flushing: if the announcement is stuck behind the MRAI
         timer and the path got longer than what the peer holds, flush
         the stale (ghost) route with an immediate withdrawal; the
         announcement itself still goes out on timer expiry. *)
      let worse_than_advertised =
        match Hashtbl.find_opt t.advertised key with
        | Some prev -> As_path.length full > As_path.length prev
        | None -> false
      in
      if
        t.config.ghost_flushing
        && Mrai.timer_running out.mrai
        && worse_than_advertised
      then
        Mrai.send_now ~key out.mrai ~keep_pending:true (Msg.Withdraw { prefix });
      Mrai.offer ~key out.mrai (Msg.Announce { prefix; path = full })
  | None ->
      let withdrawal = Msg.Withdraw { prefix } in
      if t.config.wrate then Mrai.offer ~key out.mrai withdrawal
      else Mrai.send_now ~key out.mrai ~keep_pending:false withdrawal

(* Runtime invariants of the decision process, re-verified after every
   mutation when a checker is armed: the Loc-RIB best is always drawn
   from the Adj-RIB-In (or is the local route), and its next hop is a
   live peer. *)
let check_rib_coherence t st =
  if Faults.Invariant.enabled t.checker then
    match st.best with
    | None -> ()
    | Some { learned_from = None; _ } ->
        if not st.local then
          Faults.Invariant.report t.checker Faults.Invariant.Rib_incoherence
            ~detail:(fun () ->
              Printf.sprintf "node %d: best is local but no local route"
                t.node)
    | Some { learned_from = Some peer; path } ->
        (match
           Hashtbl.find_opt t.rib_in (Prefix.Key.pack ~id:st.pid ~peer)
         with
        | Some rib_path when As_path.equal rib_path path -> ()
        | Some _ | None ->
            Faults.Invariant.report t.checker Faults.Invariant.Rib_incoherence
              ~detail:(fun () ->
                Printf.sprintf
                  "node %d: Loc-RIB best via peer %d is not the Adj-RIB-In \
                   entry"
                  t.node peer));
        if not (Peer_table.mem t.live_peers peer) then
          Faults.Invariant.report t.checker Faults.Invariant.Dead_next_hop
            ~detail:(fun () ->
              Printf.sprintf "node %d: next hop %d is not a live peer" t.node
                peer)

let recompute t st =
  Obs.Bus.decision_run t.obs ~node:t.node;
  let new_best = best_candidate t st in
  (if not (equal_best st.best new_best) then begin
    let old_nh = next_hop_of st.best and new_nh = next_hop_of new_best in
    st.best <- new_best;
    t.route_changes <- t.route_changes + 1;
    if old_nh <> new_nh then
      t.on_next_hop_change ~prefix:st.prefix ~next_hop:new_nh;
    Peer_table.iter (sync_peer t st) t.live_peers
  end);
  check_rib_coherence t st

(* --- Assertion enhancement (Pei et al.): when [speaker] declares its
   path to be [latest] (None = no route), any entry from another peer
   that routes through [speaker] with a different sub-path from
   [speaker] onward is stale and removed. --- *)
let assertion_purge t st ~speaker ~latest =
  let stale = ref [] in
  Peer_table.iter
    (fun peer ->
      if peer <> speaker then
        let key = Prefix.Key.pack ~id:st.pid ~peer in
        match Hashtbl.find t.rib_in key with
        | exception Not_found -> ()
        | path -> (
            match As_path.suffix_from ~table:t.paths path speaker with
            | None -> ()
            | Some suffix -> (
                match latest with
                | None -> stale := key :: !stale
                | Some declared ->
                    if not (As_path.equal suffix declared) then
                      stale := key :: !stale)))
    t.live_peers;
  List.iter (Hashtbl.remove t.rib_in) !stale

(* Suppressed routes re-enter the decision on penalty decay, not on any
   message: keep one timer per destination armed at the earliest reuse
   instant among suppressed rib-in entries. *)
let rec schedule_reuse t st =
  match t.config.damping with
  | None -> ()
  | Some _ ->
      let now = Dessim.Engine.now t.engine in
      let earliest =
        (* bgpsim-lint: allow D001 — commutative Float.min over a read-only fold *)
        Hashtbl.fold
          (fun peer d acc ->
            if Hashtbl.mem t.rib_in (Prefix.Key.pack ~id:st.pid ~peer) then
              match Damping.reuse_at d ~now with
              | None -> acc
              | Some time -> (
                  match acc with
                  | None -> Some time
                  | Some best -> Some (Float.min best time))
            else acc)
          st.damp None
      in
      Option.iter Dessim.Engine.cancel st.reuse_timer;
      st.reuse_timer <-
        Option.map
          (fun time ->
            Dessim.Engine.schedule ~tag:"damp-reuse" t.engine
              ~at:(Float.max time now) (fun () ->
                st.reuse_timer <- None;
                recompute t st;
                schedule_reuse t st))
          earliest

(* --- external events --- *)

let originate t prefix =
  if t.alive then
    let st = dest_state t prefix in
    if not st.local then begin
      Obs.Bus.originate t.obs
        ?prefix:(obs_prefix t st)
        ~time:(Dessim.Engine.now t.engine)
        ~node:t.node;
      st.local <- true;
      recompute t st
    end

let withdraw_local t prefix =
  if t.alive then
    let st = dest_state t prefix in
    if st.local then begin
      Obs.Bus.local_withdraw t.obs
        ?prefix:(obs_prefix t st)
        ~time:(Dessim.Engine.now t.engine)
        ~node:t.node;
      st.local <- false;
      recompute t st
    end

(* Poison-reverse soundness: after any Adj-RIB-In mutation for [from],
   the stored entry must not contain this AS.  True by construction
   (the replace above filters such paths); the checker re-verifies it
   at runtime. *)
let check_poison_reverse t st ~from =
  if Faults.Invariant.enabled t.checker then
    match
      Hashtbl.find_opt t.rib_in (Prefix.Key.pack ~id:st.pid ~peer:from)
    with
    | Some path when As_path.contains path t.node ->
        Faults.Invariant.report t.checker Faults.Invariant.Poison_reverse
          ~detail:(fun () ->
            Printf.sprintf
              "node %d: Adj-RIB-In entry from peer %d routes through self"
              t.node from)
    | Some _ | None -> ()

let handle_msg t ~from msg =
  (* A message can still be sitting in the node's processing queue when
     the session it arrived over dies (or the node itself crashes); by
     then its content is void (the peer's routes were flushed at
     teardown and no withdrawal will ever follow), so late deliveries
     from dead peers — or to dead nodes — are dropped. *)
  if not (t.alive && Peer_table.mem t.live_peers from) then ()
  else
    match (msg : Msg.t) with
    | Announce { prefix; path } ->
        let st = dest_state t prefix in
        let key = Prefix.Key.pack ~id:st.pid ~peer:from in
        if t.config.damping <> None then
          Damping.on_update (damp_state t st from)
            ~now:(Dessim.Engine.now t.engine);
        (* Path-based poison reverse: a path through us is unusable; per
           the implicit-withdraw rule it still replaces (hence removes)
           the peer's previous entry. *)
        if As_path.contains path t.node then Hashtbl.remove t.rib_in key
        else Hashtbl.replace t.rib_in key path;
        if t.config.assertion then
          assertion_purge t st ~speaker:from ~latest:(Some path);
        check_poison_reverse t st ~from;
        recompute t st;
        schedule_reuse t st
    | Withdraw { prefix } ->
        let st = dest_state t prefix in
        if t.config.damping <> None then
          Damping.on_withdrawal (damp_state t st from)
            ~now:(Dessim.Engine.now t.engine);
        Hashtbl.remove t.rib_in (Prefix.Key.pack ~id:st.pid ~peer:from);
        if t.config.assertion then
          assertion_purge t st ~speaker:from ~latest:None;
        recompute t st;
        schedule_reuse t st

let session_down t ~peer =
  if Peer_table.mem t.live_peers peer then begin
    Peer_table.remove t.live_peers peer;
    (match Hashtbl.find_opt t.outs peer with
    | Some out ->
        Mrai.reset out.mrai;
        Hashtbl.remove t.outs peer
    | None -> ());
    iter_dests t (fun st ->
        let key = Prefix.Key.pack ~id:st.pid ~peer in
        Hashtbl.remove t.rib_in key;
        Hashtbl.remove st.damp peer;
        Hashtbl.remove t.advertised key;
        recompute t st;
        schedule_reuse t st)
  end

let session_up t ~peer =
  if t.alive && not (Peer_table.mem t.live_peers peer) then begin
    Peer_table.add t.live_peers peer;
    (* table dump: the fresh peer hears every best route we hold *)
    iter_dests t (fun st -> sync_peer t st peer)
  end

(* --- crash / restart with RIB loss --- *)

let alive t = t.alive

let crash t =
  if t.alive then begin
    t.alive <- false;
    Peer_table.clear t.live_peers;
    (* all protocol state is lost: pending MRAI transmissions and
       damping reuse timers must not fire for a dead node *)
    (* bgpsim-lint: allow D001 — Mrai.reset only touches its own peer's state *)
    Hashtbl.iter (fun _peer out -> Mrai.reset out.mrai) t.outs;
    iter_dests t (fun st ->
        Option.iter Dessim.Engine.cancel st.reuse_timer;
        (* the FIB empties with the RIB *)
        if st.best <> None then begin
          t.route_changes <- t.route_changes + 1;
          if next_hop_of st.best <> None then
            t.on_next_hop_change ~prefix:st.prefix ~next_hop:None
        end);
    Hashtbl.reset t.dests;
    t.dests_rev <- [];
    Hashtbl.reset t.rib_in;
    Hashtbl.reset t.advertised;
    Hashtbl.reset t.outs
  end

let restart t =
  (* The node comes back with empty RIBs and no sessions; the
     surrounding simulation re-establishes sessions (session_up on both
     ends per surviving link) and re-originates local prefixes. *)
  if not t.alive then t.alive <- true

(* --- inspection --- *)

let find_dest t prefix =
  match Prefix.Table.find t.prefixes prefix with
  | None -> None
  | Some pid -> Hashtbl.find_opt t.dests pid

let best t prefix =
  match find_dest t prefix with
  | None -> None
  | Some st -> Option.map (fun b -> (b.learned_from, b.path)) st.best

let next_hop t prefix =
  match find_dest t prefix with
  | None -> None
  | Some st -> next_hop_of st.best

let rib_in t prefix =
  match find_dest t prefix with
  | None -> []
  | Some st ->
      Peer_table.to_list t.live_peers
      |> List.filter_map (fun peer ->
             match
               Hashtbl.find_opt t.rib_in (Prefix.Key.pack ~id:st.pid ~peer)
             with
             | None -> None
             | Some path -> Some (peer, path))

let advertised_to t prefix ~peer =
  match find_dest t prefix with
  | None -> None
  | Some st -> Hashtbl.find_opt t.advertised (Prefix.Key.pack ~id:st.pid ~peer)

let route_change_count t = t.route_changes

let suppressed_peers t prefix =
  match find_dest t prefix with
  | None -> []
  | Some st ->
      Hashtbl.to_seq_keys st.damp |> List.of_seq
      |> List.filter (peer_suppressed t st)
      |> List.sort Int.compare

let prefix_table t = t.prefixes

(* --- quiescence, arena compaction, checkpointing --- *)

let quiescent t =
  (* bgpsim-lint: allow D001 — read-only (&&) over per-peer predicates *)
  Hashtbl.fold
    (fun _peer out acc ->
      acc
      && (not (Mrai.timer_running out.mrai))
      && Mrai.pending_count out.mrai = 0)
    t.outs true
  && List.for_all (fun st -> st.reuse_timer = None) t.dests_rev

(* [remap_paths] swaps every live path handle for [f handle]; the
   typical [f] is [As_path.reintern ~table:fresh].  Behavior is
   preserved because [f] returns a structurally equal path and
   [As_path.equal] falls back to structural comparison across arenas.
   Only safe at quiescence: MRAI queues and in-flight engine events
   may hold handles this walk cannot reach. *)
let remap_flat (table : (int, 'p) Hashtbl.t) ~f =
  let entries =
    Hashtbl.to_seq table |> List.of_seq
    |> List.sort (fun (a, _) (b, _) -> Int.compare a b)
  in
  (* sorted by packed key so [f] (typically a reintern into a fresh
     arena) sees entries in the same order on every run; stdlib
     [replace] updates the bucket cell in place, so table structure is
     untouched *)
  List.iter (fun (key, path) -> Hashtbl.replace table key (f path)) entries

let remap_paths t ~f =
  remap_flat t.rib_in ~f;
  remap_flat t.advertised ~f;
  iter_dests t (fun st ->
      match st.best with
      | Some b -> st.best <- Some { b with path = f b.path }
      | None -> ())

let set_path_table t table = t.paths <- table

let path_table t = t.paths

(* Snapshots are plain data: paths flattened to AS arrays (re-interned
   on restore), the flat shard tables regrouped per destination in
   canonical order.  Only meaningful at quiescence — MRAI timers,
   pending messages and damping state are deliberately
   unrepresentable. *)

type dest_snapshot = {
  sn_prefix : Prefix.t;
  sn_local : bool;
  sn_rib_in : (int * int array) array;  (* by peer, ascending *)
  sn_best : (int option * int array) option;
  sn_advertised : (int * int array) array;
      (* peers holding a route from us, ascending; peers holding
         nothing are omitted (a fresh out-state is equivalent) *)
}

type snapshot = {
  sn_node : int;
  sn_alive : bool;
  sn_peers : int array;
  sn_route_changes : int;
  sn_dests : dest_snapshot array;  (* by prefix *)
}

let snapshot t =
  if not (quiescent t) then
    invalid_arg "Speaker.snapshot: speaker is not quiescent";
  if t.config.damping <> None then
    invalid_arg "Speaker.snapshot: damping state is not snapshotable";
  let arr_of_path p = Array.of_list (As_path.to_list p) in
  (* entries exist only for live peers (session teardown clears both
     shard tables), and the peer table iterates ascending *)
  let shard_entries table pid =
    let acc = ref [] in
    Peer_table.iter
      (fun peer ->
        match Hashtbl.find_opt table (Prefix.Key.pack ~id:pid ~peer) with
        | None -> ()
        | Some path -> acc := (peer, arr_of_path path) :: !acc)
      t.live_peers;
    Array.of_list (List.rev !acc)
  in
  let dests =
    List.rev t.dests_rev
    |> List.map (fun st ->
           {
             sn_prefix = st.prefix;
             sn_local = st.local;
             sn_rib_in = shard_entries t.rib_in st.pid;
             sn_best =
               Option.map
                 (fun b -> (b.learned_from, arr_of_path b.path))
                 st.best;
             sn_advertised = shard_entries t.advertised st.pid;
           })
    |> List.sort (fun a b -> Prefix.compare a.sn_prefix b.sn_prefix)
  in
  {
    sn_node = t.node;
    sn_alive = t.alive;
    sn_peers = Array.of_list (Peer_table.to_list t.live_peers);
    sn_route_changes = t.route_changes;
    sn_dests = Array.of_list dests;
  }

(* Restore writes protocol state directly into a freshly created
   speaker: no decision process runs, nothing is emitted, and
   [on_next_hop_change] does not fire (the caller re-seeds its FIB
   view from the same checkpoint). *)
let restore t (s : snapshot) =
  if t.node <> s.sn_node then invalid_arg "Speaker.restore: node mismatch";
  if Hashtbl.length t.dests <> 0 then
    invalid_arg "Speaker.restore: speaker already has state";
  t.alive <- s.sn_alive;
  t.route_changes <- s.sn_route_changes;
  Peer_table.clear t.live_peers;
  Array.iter (fun p -> Peer_table.add t.live_peers p) s.sn_peers;
  let path_of_arr arr = As_path.of_list ~table:t.paths (Array.to_list arr) in
  Array.iter
    (fun d ->
      let st = dest_state t d.sn_prefix in
      st.local <- d.sn_local;
      Array.iter
        (fun (peer, arr) ->
          Hashtbl.replace t.rib_in
            (Prefix.Key.pack ~id:st.pid ~peer)
            (path_of_arr arr))
        d.sn_rib_in;
      st.best <-
        Option.map
          (fun (learned_from, arr) ->
            { learned_from; path = path_of_arr arr })
          d.sn_best;
      Array.iter
        (fun (peer, arr) ->
          Hashtbl.replace t.advertised
            (Prefix.Key.pack ~id:st.pid ~peer)
            (path_of_arr arr))
        d.sn_advertised)
    s.sn_dests
