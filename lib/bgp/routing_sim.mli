(** End-to-end routing simulation of one failure event.

    The run has two phases, mirroring the paper's methodology:

    + {b warm-up}: the origin AS announces its prefix at time 0 and the
      network converges (the event queue drains);
    + {b event}: after a quiet gap, the event is injected —
      [Tdown] removes the origin's route (the destination AS becomes
      unreachable), [Tlong] fails one link, forcing the network onto
      less-preferred paths; the inverse events [Tup] and [Trecover]
      warm up {e without} the route / link and then add it — and the
      simulation runs to quiescence.

    The outcome carries the {!Netcore.Trace.t} (FIB history + message
    log) that the forwarding replay and loop analysis consume, and the
    paper's convergence measurement: convergence starts at the failure
    and ends when the last BGP update message is sent. *)

type event =
  | Tdown  (** the destination AS withdraws its prefix *)
  | Tlong of { a : int; b : int }
      (** link [(a,b)] fails; the destination stays reachable over
          less-preferred paths *)
  | Tup
      (** the inverse of [Tdown] (Labovitz et al.'s classification,
          beyond the paper): the network warms up with no route at all
          and the origin announces its prefix at the event time *)
  | Trecover of { a : int; b : int }
      (** the inverse of [Tlong]: the network warms up with link
          [(a,b)] down, and the link (and both BGP sessions over it)
          comes back at the event time *)
  | Tshort of { a : int; b : int; down_for : float }
      (** a link flap (Labovitz et al.'s T_short): link [(a,b)] fails
          at the event time and recovers [down_for] seconds later,
          while the network is still converging around the failure *)
  | Scenario of Faults.Scenario.t
      (** a scripted fault schedule (link fail/recover sequences, node
          crash/restart with RIB loss, session resets, flap storms,
          correlated failures, message chaos), compiled onto the event
          queue at the injection instant; step times are relative to
          [t_fail] and chaos knobs arm at [t_fail], keeping warm-up
          clean *)

(** Why the run stopped. *)
type termination =
  | Drained  (** the event queue emptied: the network converged *)
  | Event_budget  (** [max_events] fired first — a would-be hang *)
  | Vtime_budget  (** the next event lies beyond [max_vtime] *)
  | Wall_budget
      (** the run's wall-clock watchdog expired mid-phase; the engine
          stopped at an event boundary *)

val termination_name : termination -> string

type outcome = {
  trace : Netcore.Trace.t;
  prefix : Prefix.t;
  t_fail : float;  (** failure injection time *)
  convergence_end : float;
      (** time the last post-failure message was sent; [t_fail] when the
          event generated no messages *)
  converged : bool;
      (** both phases drained within the event and virtual-time budgets *)
  termination : termination;  (** how phase 2 ended *)
  warmup_end : float;
  updates_after_fail : int;  (** announcements sent at/after [t_fail] *)
  withdrawals_after_fail : int;
  events_executed : int;
  route_changes : int;  (** total best-route changes across all speakers *)
  paths_interned : int;
      (** distinct AS paths interned into the run's arena — an
          occupancy/path-diversity gauge (see DESIGN.md §12) *)
  invariant_violations : (Faults.Invariant.kind * int) list;
      (** nonzero counters from the run's invariant checker (always []
          when [invariants] is [Off] or [Strict] — strict raises) *)
}

val convergence_time : outcome -> float
(** [convergence_end - t_fail]. *)

val run :
  ?params:Netcore.Params.t ->
  ?config:Config.t ->
  ?max_events:int ->
  ?max_vtime:float ->
  ?invariants:Faults.Invariant.mode ->
  ?obs:Obs.Bus.t ->
  ?profile:Obs.Profile.t ->
  ?watchdog:Faults.Watchdog.t ->
  ?partitions:int array ->
  graph:Topo.Graph.t ->
  origin:int ->
  event:event ->
  seed:int ->
  unit ->
  outcome
(** [run ~graph ~origin ~event ~seed ()] simulates the scenario.
    Defaults: the paper's {!Netcore.Params.default} and {!Config.default}
    (standard BGP, MRAI 30 s), [max_events = 20_000_000], no virtual-time
    budget, invariants [Off].

    [max_events] and [max_vtime] are hang protection: a non-terminating
    schedule (e.g. a persistent flap storm faster than convergence)
    stops at the budget with [termination <> Drained] instead of
    spinning.  [invariants] threads a {!Faults.Invariant.t} through the
    engine clock, every link delivery and every speaker decision;
    [Strict] raises {!Faults.Invariant.Violation} on the first breach,
    [Record] counts into [invariant_violations].

    [obs] (default {!Obs.Bus.off}) receives the full trace-event stream
    (message send/recv, FIB changes, link transitions, MRAI fires, node
    occupancy, drops) and counter bumps.  [profile], when given, is fed
    per-event-tag wall/virtual-time samples via the engine's step
    profiler.

    [watchdog], when given, bounds the run in wall-clock time: the
    engine runs in chunks and stops with [Wall_budget] at the first
    event boundary past expiry.  Event execution is otherwise
    identical to an unwatched run (same trace, same outcome).

    [partitions] assigns each node to a space partition (see
    {!Netcore.Fabric} and {!Bgpsim.Partition}); the run then executes
    on one conservatively-synchronized engine per partition.  The
    outcome, trace, and digest are byte-identical to the sequential
    run for any valid assignment — partitioning changes the execution
    machinery, never the simulation.
    @raise Invalid_argument if [origin] is out of range, the graph is
    not connected, an event link does not exist, or a scenario fails
    validation. *)
