(** Live-peer membership as a sorted array of node IDs.

    A speaker consults its peer set on every received message and
    iterates it on every best-route change, so membership must be
    cheaper than the [List.mem] scan it replaces: lookups are binary
    searches and iteration is a cache-friendly array walk, in
    ascending ID order (the order the decision process relies on for
    determinism).  Mutations (session up/down) are rare and may pay
    O(n) to rebuild the array. *)

type t

val create : int list -> t
(** From an unsorted, possibly duplicated peer list. *)

val mem : t -> int -> bool

val add : t -> int -> unit
(** No-op when already present. *)

val remove : t -> int -> unit
(** No-op when absent. *)

val clear : t -> unit

val is_empty : t -> bool

val cardinal : t -> int

val iter : (int -> unit) -> t -> unit
(** Ascending ID order. *)

val to_list : t -> int list
(** Ascending ID order. *)
