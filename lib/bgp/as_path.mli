(** AS paths, hash-consed.

    A path is the ordered list of ASes a route announcement has
    traversed, nearest first: the path [(5 6 4 0)] was announced by AS 5
    and originates at AS 0.  The head of a received path is therefore
    the advertising neighbor.  The empty path denotes a locally
    originated route (the origin's route to its own prefix).

    A value of type {!t} is an interned handle drawn from a {!Table.t}
    arena: one immutable int array per distinct path, plus a unique id,
    a precomputed structural hash and a 63-bit membership signature.
    Within one arena, structural equality coincides with physical
    equality, so {!equal} is O(1) on the hot paths (duplicate
    suppression, Loc-RIB comparison) and {!contains} answers most
    poison-reverse/SSLD queries from the signature without touching the
    array.  Simulations allocate one arena per run (see DESIGN.md §12);
    callers that pass no table use a per-domain default arena, which
    keeps the list-based API of earlier revisions working unchanged. *)

type t

(** Hash-consing arenas.  Id stability rules: the empty path has id 0
    in every arena; interned paths get ids 1, 2, ... in first-interning
    order, so a deterministic simulation assigns deterministic ids.
    Ids are never reused and never leak into traces or metrics. *)
module Table : sig
  type t

  val create : unit -> t

  val size : t -> int
  (** Number of distinct non-empty paths interned so far.  Never
      exceeds the number of distinct paths inserted (interning a path
      already present returns the existing handle). *)

  val words : t -> int
  (** Approximate heap words held by the interned paths (arrays plus
      handle records); an occupancy gauge for the scale benchmarks. *)
end

val default_table : unit -> Table.t
(** The calling domain's default arena (domain-local, so concurrent
    sweep workers never share one).  It lives for the domain's
    lifetime; long-running simulations should create their own. *)

val empty : t
(** The unique empty path, shared by all arenas. *)

val of_list : ?table:Table.t -> int list -> t
(** Interns the path into [table] (default: the domain's arena).
    @raise Invalid_argument if the list repeats an AS (AS paths are
    loop-free by construction: a repeated AS would have been discarded
    by poison reverse at that AS). *)

val to_list : t -> int list

val length : t -> int
(** O(1). *)

val is_empty : t -> bool

val contains : t -> int -> bool
(** O(1) for most misses (membership signature), O(length) otherwise. *)

val head : t -> int option
(** The advertising neighbor; [None] for the empty path. *)

val id : t -> int
(** The handle's arena-local id; see {!Table} for the stability rules. *)

val hash : t -> int
(** Precomputed structural hash, identical across arenas. *)

val prepend : ?table:Table.t -> int -> t -> t
(** [prepend v p] is the path AS [v] announces when its best route has
    path [p].  @raise Invalid_argument if [v] already appears in [p]. *)

val extend : table:Table.t -> int -> t -> t
(** {!prepend} with an explicit arena; consecutive extensions of the
    same path are memoized per arena ((parent id, AS) -> child), so the
    per-recompute announcement path costs one small hash lookup after
    the first decision that produced it. *)

val reintern : table:Table.t -> t -> t
(** The same path as a handle of [table]: returned unchanged when it
    already belongs to [table] (or is {!empty}), interned otherwise.
    This is the epoch-compaction primitive — live handles from a
    retiring arena are re-interned into a fresh one, and {!hash} /
    membership signatures carry over unchanged because both are
    arena-independent. *)

val suffix_from : ?table:Table.t -> t -> int -> t option
(** [suffix_from p u] is the sub-path of [p] starting at [u] (inclusive),
    or [None] when [u] does not appear in [p].  This is the sub-path the
    Assertion enhancement compares against [u]'s latest announcement.
    Returns [p] itself (no interning) when [u] is the head. *)

val compare : t -> t -> int
(** Total order: shorter first, then lexicographic on AS numbers.  Under
    the paper's shortest-path policy with lowest-ID tie-breaking this is
    exactly route preference (most preferred = smallest). *)

val compare_lex : t -> t -> int
(** Pure lexicographic order, ignoring length. *)

val equal : t -> t -> bool
(** O(1) within an arena; falls back to hash-then-array comparison for
    handles from different arenas (tests and tooling may mix them). *)

val pp : Format.formatter -> t -> unit
(** Paper style: [(5 6 4 0)]. *)

val to_string : t -> string
