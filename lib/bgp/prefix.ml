type t = { origin : int; index : int }

let make ?(index = 0) ~origin () =
  if origin < 0 then invalid_arg "Prefix.make: negative origin";
  if index < 0 then invalid_arg "Prefix.make: negative index";
  { origin; index }

let origin t = t.origin

let compare = Stdlib.compare

let equal a b = a = b

let hash = Hashtbl.hash

let pp fmt t =
  if t.index = 0 then Format.fprintf fmt "p%d" t.origin
  else Format.fprintf fmt "p%d.%d" t.origin t.index

(* Dense prefix-id interning, mirroring the As_path.Table arena: a
   simulation shares one table across all speakers so a prefix has one
   id everywhere — ids then pack with peer numbers into single-int RIB
   shard keys, and appear as the "pfx" field of per-prefix trace
   events. *)
module Table = struct
  type prefix = t

  type nonrec t = {
    ids : (prefix, int) Hashtbl.t;
    mutable rev : prefix array;  (* id -> prefix; length >= size *)
    mutable size : int;
  }

  let dummy = { origin = 0; index = 0 }

  let create ?(capacity = 16) () =
    if capacity <= 0 then invalid_arg "Prefix.Table.create: capacity <= 0";
    { ids = Hashtbl.create capacity; rev = Array.make capacity dummy; size = 0 }

  let size t = t.size

  let id t p =
    match Hashtbl.find t.ids p with
    | i -> i
    | exception Not_found ->
        let i = t.size in
        Hashtbl.add t.ids p i;
        if i >= Array.length t.rev then begin
          let bigger = Array.make (2 * Array.length t.rev) dummy in
          Array.blit t.rev 0 bigger 0 i;
          t.rev <- bigger
        end;
        t.rev.(i) <- p;
        t.size <- i + 1;
        i

  let find t p = Hashtbl.find_opt t.ids p

  let prefix_of t i =
    if i < 0 || i >= t.size then
      invalid_arg (Printf.sprintf "Prefix.Table.prefix_of: unknown id %d" i);
    t.rev.(i)

  let iter f t =
    for i = 0 to t.size - 1 do
      f i t.rev.(i)
    done
end

(* Packed (prefix_id, peer) shard keys: one immediate int, so the flat
   Adj-RIB-In/Out tables hash and compare without boxing.  Peer numbers
   take the low 20 bits (the arena memo keys in As_path use the same
   split); prefix ids get the rest of the 63-bit int, so the packing is
   injective over the full supported ranges. *)
module Key = struct
  let peer_bits = 20
  let max_peer = (1 lsl peer_bits) - 1
  let max_id = (max_int lsr peer_bits) - 1

  let pack ~id ~peer =
    if peer < 0 || peer > max_peer then
      invalid_arg (Printf.sprintf "Prefix.Key.pack: peer %d out of range" peer);
    if id < 0 || id > max_id then
      invalid_arg (Printf.sprintf "Prefix.Key.pack: id %d out of range" id);
    (id lsl peer_bits) lor peer

  let id key = key lsr peer_bits
  let peer key = key land max_peer
end
