type event =
  | Tdown
  | Tlong of { a : int; b : int }
  | Tup
  | Trecover of { a : int; b : int }
  | Tshort of { a : int; b : int; down_for : float }
  | Scenario of Faults.Scenario.t

type termination = Drained | Event_budget | Vtime_budget | Wall_budget

type outcome = {
  trace : Netcore.Trace.t;
  prefix : Prefix.t;
  t_fail : float;
  convergence_end : float;
  converged : bool;
  termination : termination;
  warmup_end : float;
  updates_after_fail : int;
  withdrawals_after_fail : int;
  events_executed : int;
  route_changes : int;
  paths_interned : int;
  invariant_violations : (Faults.Invariant.kind * int) list;
}

let convergence_time o = o.convergence_end -. o.t_fail

let termination_name = function
  | Drained -> "drained"
  | Event_budget -> "event-budget"
  | Vtime_budget -> "vtime-budget"
  | Wall_budget -> "wall-budget"

(* Quiet gap between warm-up quiescence and failure injection; any value
   works since the warmed-up network is silent (all MRAI timers idle
   once the queue drains). *)
let failure_gap = 10.

let link_key a b = if a < b then (a, b) else (b, a)

let run ?(params = Netcore.Params.default) ?(config = Config.default)
    ?(max_events = 20_000_000) ?max_vtime ?(invariants = Faults.Invariant.Off)
    ?(obs = Obs.Bus.off) ?profile ?watchdog ?partitions ~graph ~origin ~event
    ~seed () =
  Netcore.Params.validate params;
  Config.validate config;
  let n = Topo.Graph.n_nodes graph in
  if origin < 0 || origin >= n then
    invalid_arg "Routing_sim.run: origin out of range";
  if not (Topo.Graph.is_connected graph) then
    invalid_arg "Routing_sim.run: graph must be connected";
  (match event with
  | Tdown | Tup | Scenario _ -> ()
  | Tlong { a; b } | Trecover { a; b } | Tshort { a; b; _ } ->
      if not (Topo.Graph.has_edge graph a b) then
        invalid_arg
          (Printf.sprintf "Routing_sim.run: event link (%d,%d) absent" a b));
  (match event with
  | Tshort { down_for; _ } ->
      if down_for <= 0. then
        invalid_arg "Routing_sim.run: Tshort down_for must be positive"
  | Scenario s -> Faults.Scenario.validate s ~graph
  | Tdown | Tup | Tlong _ | Trecover _ -> ());
  if max_events <= 0 then
    invalid_arg "Routing_sim.run: max_events must be positive";
  (match max_vtime with
  | Some t when t <= 0. || Float.is_nan t ->
      invalid_arg "Routing_sim.run: max_vtime must be positive"
  | Some _ | None -> ());
  (* The fabric owns the engine(s): one on the classic sequential path,
     one per space partition otherwise, with cross-partition links
     routed through conservative channels.  Every clock read below is
     anchored on the node doing the reading via [engine_of]. *)
  let fabric =
    Netcore.Fabric.create ?partitions ~n
      ~edges:(Topo.Graph.edges graph)
      ~link_delay:params.link_delay ()
  in
  let engine_of v = Netcore.Fabric.engine_of fabric v in
  (match profile with
  | Some p ->
      Netcore.Fabric.iter_engines fabric (fun e ->
          Dessim.Engine.set_step_profiler e (Obs.Profile.step p))
  | None -> ());
  let checker = Faults.Invariant.create invariants in
  if Faults.Invariant.enabled checker then
    Netcore.Fabric.iter_engines fabric (fun e ->
        Dessim.Engine.set_clock_monitor e (fun ~old_time ~new_time ->
            if new_time < old_time then
              Faults.Invariant.report checker Faults.Invariant.Clock_regression
                ~detail:(fun () ->
                  Printf.sprintf "event at %g fired with clock at %g" new_time
                    old_time)));
  let trace = Netcore.Trace.create ~n in
  let root_rng = Dessim.Rng.create ~seed in
  let proc_rng = Dessim.Rng.split root_rng ~label:"proc" in
  let links = Hashtbl.create (Topo.Graph.n_edges graph) in
  List.iter
    (fun (a, b) ->
      let link = Netcore.Link.create ~a ~b ~delay:params.link_delay in
      if Faults.Invariant.enabled checker then
        Netcore.Link.attach_checker link checker;
      if Obs.Bus.enabled obs then Netcore.Link.attach_obs link obs;
      Netcore.Fabric.attach_link fabric link;
      Hashtbl.add links (link_key a b) link)
    (Topo.Graph.edges graph);
  let link_of a b =
    match Hashtbl.find_opt links (link_key a b) with
    | Some l -> l
    | None ->
        invalid_arg (Printf.sprintf "Routing_sim: no link (%d,%d)" a b)
  in
  let node_procs =
    Array.init n (fun i -> Netcore.Node_proc.create ~obs ~node:i ())
  in
  (* one hash-consing arena per simulation: every speaker interns into
     it, so the handles in flight compare by pointer (DESIGN.md §12) *)
  let paths = As_path.Table.create () in
  let speakers = Array.make n None in
  let speaker i =
    match speakers.(i) with
    | Some s -> s
    | None -> assert false (* all created before any event runs *)
  in
  let draw_proc_delay () =
    Dessim.Rng.uniform proc_rng ~lo:params.proc_delay_min
      ~hi:params.proc_delay_max
  in
  let emit_from src ~peer msg =
    let link = link_of src peer in
    let withdraw =
      match (msg : Msg.t) with Withdraw _ -> true | Announce _ -> false
    in
    Netcore.Trace.log_send trace
      ~time:(Dessim.Engine.now (engine_of src))
      ~src ~dst:peer ~kind:(Msg.kind msg);
    Obs.Bus.update_sent obs
      ~time:(Dessim.Engine.now (engine_of src))
      ~src ~dst:peer ~withdraw;
    let deliver () =
      (* runs on the peer's engine — the link transport routed it there *)
      Netcore.Node_proc.submit node_procs.(peer) ~engine:(engine_of peer)
        ~delay:(draw_proc_delay ()) ~work:(fun () ->
          Netcore.Trace.log_process trace
            ~time:(Dessim.Engine.now (engine_of peer))
            ~node:peer ~from:src ~kind:(Msg.kind msg);
          Obs.Bus.update_recv obs
            ~time:(Dessim.Engine.now (engine_of peer))
            ~node:peer ~from:src ~withdraw;
          Speaker.handle_msg (speaker peer) ~from:src msg)
    in
    (* A send onto a dead link is dropped silently, like packets into a
       torn-down TCP session. *)
    ignore (Netcore.Link.send link ~engine:(engine_of src) ~from:src ~deliver : bool)
  in
  let prefix = Prefix.make ~origin () in
  if Obs.Bus.enabled obs then
    Netcore.Fib_history.set_on_change (Netcore.Trace.fib trace)
      (fun { Netcore.Fib_history.time; node; next_hop } ->
        Obs.Bus.fib_change obs ~time ~node ~next_hop);
  let on_next_hop_change_for node ~prefix:p ~next_hop =
    assert (Prefix.equal p prefix);
    Netcore.Fib_history.record (Netcore.Trace.fib trace)
      ~time:(Dessim.Engine.now (engine_of node))
      ~node ~next_hop
  in
  for i = 0 to n - 1 do
    let rng = Dessim.Rng.split root_rng ~label:("speaker-" ^ string_of_int i) in
    speakers.(i) <-
      Some
        (Speaker.create ~checker ~obs ~paths ~engine:(engine_of i) ~config ~rng
           ~node:i
           ~peers:(Topo.Graph.neighbors graph i)
           ~emit:(emit_from i)
           ~on_next_hop_change:(on_next_hop_change_for i)
           ())
  done;
  (* --- primitive fault actions, shared by the classic events and the
     scripted scenarios --- *)
  let do_link_fail a b =
    let link = link_of a b in
    if Netcore.Link.is_up link then begin
      Netcore.Link.fail link;
      Netcore.Trace.log_link_event trace
        ~time:(Dessim.Engine.now (engine_of a))
        ~a ~b ~up:false;
      Obs.Bus.link_state obs
        ~time:(Dessim.Engine.now (engine_of a))
        ~a ~b ~up:false;
      Speaker.session_down (speaker a) ~peer:b;
      Speaker.session_down (speaker b) ~peer:a
    end
  in
  let do_link_recover a b =
    let link = link_of a b in
    if not (Netcore.Link.is_up link) then begin
      Netcore.Link.restore link;
      Netcore.Trace.log_link_event trace
        ~time:(Dessim.Engine.now (engine_of a))
        ~a ~b ~up:true;
      Obs.Bus.link_state obs
        ~time:(Dessim.Engine.now (engine_of a))
        ~a ~b ~up:true;
      Speaker.session_up (speaker a) ~peer:b;
      Speaker.session_up (speaker b) ~peer:a
    end
  in
  let live_neighbors v =
    List.filter
      (fun u -> Netcore.Link.is_up (link_of u v))
      (Topo.Graph.neighbors graph v)
  in
  let do_node_crash v =
    if Speaker.alive (speaker v) then begin
      Speaker.crash (speaker v);
      (* sessions die with the node; the links themselves stay up *)
      List.iter
        (fun u -> Speaker.session_down (speaker u) ~peer:v)
        (live_neighbors v)
    end
  in
  let do_node_restart v =
    if not (Speaker.alive (speaker v)) then begin
      Speaker.restart (speaker v);
      List.iter
        (fun u ->
          if Speaker.alive (speaker u) then begin
            Speaker.session_up (speaker v) ~peer:u;
            Speaker.session_up (speaker u) ~peer:v
          end)
        (live_neighbors v);
      (* a restarted origin re-injects its prefix (it survives in the
         router's configuration, not in the lost RIB) *)
      if v = origin then Speaker.originate (speaker v) prefix
    end
  in
  let do_session_reset a b =
    if Netcore.Link.is_up (link_of a b) then begin
      Speaker.session_down (speaker a) ~peer:b;
      Speaker.session_down (speaker b) ~peer:a;
      Speaker.session_up (speaker a) ~peer:b;
      Speaker.session_up (speaker b) ~peer:a
    end
  in
  let apply_action = function
    | Faults.Scenario.Link_fail (a, b) -> do_link_fail a b
    | Faults.Scenario.Link_recover (a, b) -> do_link_recover a b
    | Faults.Scenario.Node_crash v -> do_node_crash v
    | Faults.Scenario.Node_restart v -> do_node_restart v
    | Faults.Scenario.Session_reset (a, b) -> do_session_reset a b
  in
  (* With a watchdog, the engine runs in bounded chunks so wall-clock
     expiry is noticed at event granularity; event execution itself is
     identical to one uninterrupted run.  [wall_cut] records that a
     phase was abandoned on expiry. *)
  let wall_cut = ref false in
  let run_engine () =
    match watchdog with
    | None -> Netcore.Fabric.run ?until:max_vtime ~max_events fabric
    | Some wd ->
        let chunk = 65_536 in
        let continue_ = ref true in
        while !continue_ do
          if Faults.Watchdog.expired wd then begin
            wall_cut := true;
            continue_ := false
          end
          else begin
            let budget =
              Stdlib.min max_events
                (Netcore.Fabric.events_executed fabric + chunk)
            in
            Netcore.Fabric.run ?until:max_vtime ~max_events:budget fabric;
            if
              Netcore.Fabric.events_executed fabric < budget
              || Netcore.Fabric.events_executed fabric >= max_events
            then continue_ := false
          end
        done
  in
  (* Phase 1: warm-up convergence.  Inverse events warm up without
     the element they will add: Tup never originates here, Trecover
     starts with its link (and both sessions over it) down. *)
  (match event with
  | Trecover { a; b } ->
      Netcore.Link.fail (link_of a b);
      Speaker.session_down (speaker a) ~peer:b;
      Speaker.session_down (speaker b) ~peer:a
  | Tdown | Tlong _ | Tup | Tshort _ | Scenario _ -> ());
  (match event with
  | Tup -> ()
  | Tdown | Tlong _ | Trecover _ | Tshort _ | Scenario _ ->
      Netcore.Fabric.schedule_control ~tag:"originate" fabric ~node:origin
        ~at:0. (fun () -> Speaker.originate (speaker origin) prefix));
  run_engine ();
  let warmup_end = Netcore.Fabric.now fabric in
  let warmup_drained = Netcore.Fabric.events_executed fabric < max_events in
  (* Phase 2: failure injection.  Control actions go through
     [schedule_control], anchored on the node whose state they touch
     first: on a partitioned fabric the wrapper broadcasts the
     injection time to every partition clock before the action runs,
     because a single action may mutate speakers on both sides of a
     cut (a recovered link re-announces from both endpoints). *)
  let t_fail = warmup_end +. failure_gap in
  let schedule_at ~node at f =
    Netcore.Fabric.schedule_control ~tag:"inject" fabric ~node ~at f
  in
  (match event with
  | Tdown ->
      schedule_at ~node:origin t_fail (fun () ->
          Speaker.withdraw_local (speaker origin) prefix)
  | Tup ->
      schedule_at ~node:origin t_fail (fun () ->
          Speaker.originate (speaker origin) prefix)
  | Tlong { a; b } -> schedule_at ~node:a t_fail (fun () -> do_link_fail a b)
  | Trecover { a; b } ->
      schedule_at ~node:a t_fail (fun () -> do_link_recover a b)
  | Tshort { a; b; down_for } ->
      schedule_at ~node:a t_fail (fun () ->
          do_link_fail a b;
          schedule_at ~node:a (t_fail +. down_for) (fun () ->
              do_link_recover a b))
  | Scenario scenario ->
      (* chaos knobs arm at the injection instant, so the warm-up is
         always clean *)
      if scenario.msg_loss > 0. || scenario.msg_dup > 0. then begin
        let chaos_rng = Dessim.Rng.split root_rng ~label:"chaos" in
        schedule_at ~node:origin t_fail (fun () ->
            (* bgpsim-lint: allow D001 — independent per-link set_chaos writes *)
            Hashtbl.iter
              (fun _key link ->
                Netcore.Link.set_chaos link ~loss:scenario.msg_loss
                  ~dup:scenario.msg_dup ~rng:chaos_rng ())
              links)
      end;
      let scenario_rng = Dessim.Rng.split root_rng ~label:"scenario" in
      let anchor_of = function
        | Faults.Scenario.Link_fail (a, _)
        | Faults.Scenario.Link_recover (a, _)
        | Faults.Scenario.Session_reset (a, _) ->
            a
        | Faults.Scenario.Node_crash v | Faults.Scenario.Node_restart v -> v
      in
      List.iter
        (fun { Faults.Scenario.at; action } ->
          schedule_at ~node:(anchor_of action) (t_fail +. at) (fun () ->
              apply_action action))
        (Faults.Scenario.compile scenario ~graph ~rng:scenario_rng));
  run_engine ();
  (match Obs.Bus.counters obs with
  | Some c ->
      Obs.Counters.add_events c (Netcore.Fabric.events_executed fabric);
      Obs.Counters.observe_paths_interned c ~count:(As_path.Table.size paths)
  | None -> ());
  let termination =
    if !wall_cut then Wall_budget
    else if Netcore.Fabric.events_executed fabric >= max_events then
      Event_budget
    else
      match Netcore.Fabric.next_live_time fabric with
      | Some _ -> Vtime_budget
      | None -> Drained
  in
  let converged = warmup_drained && termination = Drained in
  let convergence_end =
    match Netcore.Trace.last_send_at_or_after trace ~from:t_fail with
    | Some time -> time
    | None -> t_fail
  in
  let route_changes =
    let total = ref 0 in
    for i = 0 to n - 1 do
      total := !total + Speaker.route_change_count (speaker i)
    done;
    !total
  in
  {
    trace;
    prefix;
    t_fail;
    convergence_end;
    converged;
    termination;
    warmup_end;
    updates_after_fail =
      Netcore.Trace.count_kind_from trace ~from:t_fail ~kind:Netcore.Trace.Announce;
    withdrawals_after_fail =
      Netcore.Trace.count_kind_from trace ~from:t_fail ~kind:Netcore.Trace.Withdraw;
    events_executed = Netcore.Fabric.events_executed fabric;
    route_changes;
    paths_interned = As_path.Table.size paths;
    invariant_violations = Faults.Invariant.violations checker;
  }
