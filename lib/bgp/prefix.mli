(** Destination prefixes.

    The paper's experiments use a single destination attached to one
    AS; the library supports any number of prefixes, each identified by
    its origin AS and an index distinguishing multiple prefixes of the
    same origin. *)

type t = private { origin : int; index : int }

val make : ?index:int -> origin:int -> unit -> t
(** [index] defaults to [0].  @raise Invalid_argument on negative
    [origin] or [index]. *)

val origin : t -> int

val compare : t -> t -> int

val equal : t -> t -> bool

val hash : t -> int

val pp : Format.formatter -> t -> unit

(** Dense prefix-id interning (the {!As_path.Table} arena technique
    applied to prefixes).  A simulation shares one table across all of
    its speakers, so each prefix has a single id everywhere: ids pack
    with peer numbers into flat RIB shard keys ({!Key}) and identify
    prefixes in per-prefix trace events. *)
module Table : sig
  type prefix = t

  type t

  val create : ?capacity:int -> unit -> t
  (** [capacity] (default 16) pre-sizes the table.
      @raise Invalid_argument when [capacity <= 0]. *)

  val id : t -> prefix -> int
  (** The dense id of [prefix], interning it on first sight.  Ids are
      assigned [0, 1, 2, ...] in first-intern order. *)

  val find : t -> prefix -> int option
  (** Like {!id} but without interning. *)

  val prefix_of : t -> int -> prefix
  (** Inverse of {!id}.  @raise Invalid_argument on an unknown id. *)

  val size : t -> int

  val iter : (int -> prefix -> unit) -> t -> unit
  (** Iterate interned prefixes in id order. *)
end

(** Packed [(prefix_id, peer)] shard keys: both halves in one immediate
    int, so flat Adj-RIB tables hash and compare without boxing.  Peers
    take the low 20 bits, prefix ids the remaining high bits; the
    packing is injective over the full [0..max_peer] × [0..max_id]
    ranges. *)
module Key : sig
  val max_peer : int
  (** [2^20 - 1]. *)

  val max_id : int

  val pack : id:int -> peer:int -> int
  (** @raise Invalid_argument when either half is out of range. *)

  val id : int -> int

  val peer : int -> int
end
