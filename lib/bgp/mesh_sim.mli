(** Full-mesh multi-prefix simulation: every AS (by default) originates
    its own prefix over one shared event stream.

    All speakers share one path arena and one {!Prefix.Table}
    (pre-interned in origin order, so prefix id = index into the origin
    list), and their Adj-RIBs are sharded by packed [(prefix_id, peer)]
    keys with one batched MRAI timer per peer — the workload the
    single-prefix study cannot express: N² routing processes contending
    for the same per-router queues.

    Observability is per prefix: [Update_sent]/[Update_recv]/
    [Originate]/[Withdrawal]/[Fib_change] events carry the prefix id,
    and a streaming loop scanner per prefix (armed on the converged
    warm-up state) emits [Loop_detected]/[Loop_resolved] events
    chronologically interleaved with the forwarding changes that caused
    them.

    Restricted to a single origin, a run evolves identically to
    {!Multi_sim} — same RNG stream, same event schedule, same FIB
    histories and convergence numbers; the differential suite in
    test/test_mesh.ml enforces this. *)

type churn = Multi_sim.churn = {
  period : float;
  cycles : int;
  flappers : int list;
}

type outcome = {
  prefixes : (Prefix.t * Netcore.Fib_history.t) list;
      (** one forwarding history per prefix, in origin order (so the
          list index is the prefix id used in trace events) *)
  loop_reports : (Prefix.t * Loopscan.Scanner.report) list;
      (** per-prefix streaming loop scans over the post-warm-up phase;
          empty when the warm-up blew its event budget (the scanners
          need a loop-free converged state to start from) *)
  trace : Netcore.Trace.t;
      (** message/process/link logs (all prefixes combined); its FIB
          history is unused — per-prefix histories are above *)
  t_fail : float;
  victim : Prefix.t;
  victim_convergence_end : float;
      (** last send of a message for the victim prefix at/after
          [t_fail] *)
  victim_messages : int;
  background_messages : int;
  converged : bool;
  termination : Routing_sim.termination;
      (** how the post-failure phase ended *)
  invariant_violations : (Faults.Invariant.kind * int) list;
  paths_interned : int;
  events_executed : int;  (** engine events over both phases *)
}

val convergence_time : outcome -> float

val run :
  ?params:Netcore.Params.t ->
  ?config:Config.t ->
  ?churn:churn ->
  ?origins:int list ->
  ?max_events:int ->
  ?max_vtime:float ->
  ?invariants:Faults.Invariant.mode ->
  ?obs:Obs.Bus.t ->
  ?partitions:int array ->
  graph:Topo.Graph.t ->
  victim:int ->
  seed:int ->
  unit ->
  outcome
(** [run ~graph ~victim ~seed ()] originates one prefix per origin
    (default: every node), converges, then withdraws the prefix of
    [origins[victim]].  With [churn], the listed origins flap for the
    configured number of cycles starting at the failure time.
    [partitions] runs the simulation on the space-partitioned executor
    with byte-identical outcomes (see {!Routing_sim.run}).
    @raise Invalid_argument on an empty or out-of-range
    [origins]/[victim], duplicate origins, a flapper index equal to
    [victim], a disconnected graph, or non-positive budgets. *)
