(* Full-mesh multi-prefix workload: N origins, each announcing its own
   prefix over one shared event stream, one path arena and one prefix
   table.  The control flow deliberately mirrors [Multi_sim] step for
   step — same RNG split labels, same scheduling tags, same warm-up /
   failure-gap / accounting structure — so that a run restricted to a
   single origin evolves identically to [Multi_sim] (and hence, via
   the existing differential suite, to [Routing_sim]).  The test wall
   in test/test_mesh.ml enforces that equivalence.

   What it adds over [Multi_sim]:
   - speakers share a [Prefix.Table] (pre-interned in origin order, so
     prefix id = origin index) and run with [prefix_obs], tagging every
     per-prefix trace event with its dense id;
   - per-prefix [Fib_change] events are emitted (Multi_sim cannot: its
     event stream carries no prefix discriminator);
   - a streaming loop scanner per prefix, fed forwarding changes as
     they happen, replaces the post-hoc scan — loop events appear in
     the trace chronologically interleaved with the changes that
     caused them. *)

type churn = Multi_sim.churn = {
  period : float;
  cycles : int;
  flappers : int list;
}

type outcome = {
  prefixes : (Prefix.t * Netcore.Fib_history.t) list;
  loop_reports : (Prefix.t * Loopscan.Scanner.report) list;
  trace : Netcore.Trace.t;
  t_fail : float;
  victim : Prefix.t;
  victim_convergence_end : float;
  victim_messages : int;
  background_messages : int;
  converged : bool;
  termination : Routing_sim.termination;
  invariant_violations : (Faults.Invariant.kind * int) list;
  paths_interned : int;
  events_executed : int;
}

let convergence_time o = o.victim_convergence_end -. o.t_fail

let failure_gap = 10.

let link_key a b = if a < b then (a, b) else (b, a)

let run ?(params = Netcore.Params.default) ?(config = Config.default) ?churn
    ?origins ?(max_events = 40_000_000) ?max_vtime
    ?(invariants = Faults.Invariant.Off) ?(obs = Obs.Bus.off) ?partitions
    ~graph ~victim ~seed () =
  Netcore.Params.validate params;
  Config.validate config;
  let n = Topo.Graph.n_nodes graph in
  (* the full mesh by default: every AS originates its own prefix *)
  let origins =
    match origins with Some os -> os | None -> List.init n Fun.id
  in
  if origins = [] then invalid_arg "Mesh_sim.run: no origins";
  List.iter
    (fun o ->
      if o < 0 || o >= n then invalid_arg "Mesh_sim.run: origin out of range")
    origins;
  if List.length (List.sort_uniq compare origins) <> List.length origins then
    invalid_arg "Mesh_sim.run: duplicate origins";
  if victim < 0 || victim >= List.length origins then
    invalid_arg "Mesh_sim.run: victim index out of range";
  (match churn with
  | Some c ->
      if c.period <= 0. then invalid_arg "Mesh_sim.run: churn period <= 0";
      if c.cycles < 0 then invalid_arg "Mesh_sim.run: negative churn cycles";
      List.iter
        (fun f ->
          if f = victim then invalid_arg "Mesh_sim.run: the victim cannot flap";
          if f < 0 || f >= List.length origins then
            invalid_arg "Mesh_sim.run: flapper index out of range")
        c.flappers
  | None -> ());
  if not (Topo.Graph.is_connected graph) then
    invalid_arg "Mesh_sim.run: graph must be connected";
  if max_events <= 0 then invalid_arg "Mesh_sim.run: max_events must be positive";
  (match max_vtime with
  | Some t when t <= 0. || Float.is_nan t ->
      invalid_arg "Mesh_sim.run: max_vtime must be positive"
  | Some _ | None -> ());
  let fabric =
    Netcore.Fabric.create ?partitions ~n
      ~edges:(Topo.Graph.edges graph)
      ~link_delay:params.link_delay ()
  in
  let engine_of v = Netcore.Fabric.engine_of fabric v in
  let checker = Faults.Invariant.create invariants in
  if Faults.Invariant.enabled checker then
    Netcore.Fabric.iter_engines fabric (fun e ->
        Dessim.Engine.set_clock_monitor e (fun ~old_time ~new_time ->
            if new_time < old_time then
              Faults.Invariant.report checker Faults.Invariant.Clock_regression
                ~detail:(fun () ->
                  Printf.sprintf "event at %g fired with clock at %g" new_time
                    old_time)));
  let trace = Netcore.Trace.create ~n in
  let root_rng = Dessim.Rng.create ~seed in
  let proc_rng = Dessim.Rng.split root_rng ~label:"proc" in
  let links = Hashtbl.create (Topo.Graph.n_edges graph) in
  List.iter
    (fun (a, b) ->
      let link = Netcore.Link.create ~a ~b ~delay:params.link_delay in
      if Faults.Invariant.enabled checker then
        Netcore.Link.attach_checker link checker;
      if Obs.Bus.enabled obs then Netcore.Link.attach_obs link obs;
      Netcore.Fabric.attach_link fabric link;
      Hashtbl.add links (link_key a b) link)
    (Topo.Graph.edges graph);
  let node_procs =
    Array.init n (fun i -> Netcore.Node_proc.create ~obs ~node:i ())
  in
  let speakers = Array.make n None in
  let speaker i =
    match speakers.(i) with Some s -> s | None -> assert false
  in
  (* one arena, one prefix table for the whole run: RIB shard keys and
     trace prefix ids agree across every speaker *)
  let paths = As_path.Table.create () in
  let prefixes = Prefix.Table.create ~capacity:(List.length origins) () in
  let prefix_list = List.map (fun origin -> Prefix.make ~origin ()) origins in
  (* pre-intern in origin order: prefix id = index into [origins] *)
  List.iteri
    (fun i p ->
      let id = Prefix.Table.id prefixes p in
      assert (id = i))
    prefix_list;
  let n_prefixes = List.length prefix_list in
  let victim_prefix = List.nth prefix_list victim in
  let fibs =
    List.map (fun p -> (p, Netcore.Fib_history.create ~n)) prefix_list
  in
  let fib_by_id = Array.of_list (List.map snd fibs) in
  let origin_by_id = Array.of_list origins in
  (* streaming scanners, armed at the warm-up boundary (a drained
     warm-up is converged, hence loop-free — the precondition the
     scanner checks) *)
  let streams : Loopscan.Stream.t option array = Array.make n_prefixes None in
  let victim_msgs = ref 0
  and background_msgs = ref 0
  and last_victim_send = ref neg_infinity in
  let t_fail_ref = ref infinity in
  let draw_proc_delay () =
    Dessim.Rng.uniform proc_rng ~lo:params.proc_delay_min
      ~hi:params.proc_delay_max
  in
  let pid_of p = Prefix.Table.id prefixes p in
  let emit_from src ~peer msg =
    let link =
      match Hashtbl.find_opt links (link_key src peer) with
      | Some l -> l
      | None -> invalid_arg "Mesh_sim: emit to non-neighbor"
    in
    let now = Dessim.Engine.now (engine_of src) in
    let withdraw =
      match (msg : Msg.t) with Withdraw _ -> true | Announce _ -> false
    in
    let pid = pid_of (Msg.prefix msg) in
    Netcore.Trace.log_send trace ~time:now ~src ~dst:peer ~kind:(Msg.kind msg);
    Obs.Bus.update_sent obs ~prefix:pid ~time:now ~src ~dst:peer ~withdraw;
    if now >= !t_fail_ref then
      if Prefix.equal (Msg.prefix msg) victim_prefix then begin
        incr victim_msgs;
        if now > !last_victim_send then last_victim_send := now
      end
      else incr background_msgs;
    let deliver () =
      (* runs on the peer's engine — the link transport routed it there *)
      Netcore.Node_proc.submit node_procs.(peer) ~engine:(engine_of peer)
        ~delay:(draw_proc_delay ()) ~work:(fun () ->
          Netcore.Trace.log_process trace
            ~time:(Dessim.Engine.now (engine_of peer))
            ~node:peer ~from:src ~kind:(Msg.kind msg);
          Obs.Bus.update_recv obs ~prefix:pid
            ~time:(Dessim.Engine.now (engine_of peer))
            ~node:peer ~from:src ~withdraw;
          Speaker.handle_msg (speaker peer) ~from:src msg)
    in
    ignore
      (Netcore.Link.send link ~engine:(engine_of src) ~from:src ~deliver : bool)
  in
  let on_next_hop_change_for node ~prefix ~next_hop =
    let now = Dessim.Engine.now (engine_of node) in
    let pid = pid_of prefix in
    Netcore.Fib_history.record fib_by_id.(pid) ~time:now ~node ~next_hop;
    Obs.Bus.fib_change obs ~prefix:pid ~time:now ~node ~next_hop;
    match streams.(pid) with
    | Some stream ->
        Loopscan.Stream.observe ~obs ~prefix:pid stream ~time:now ~node
          ~next_hop
    | None -> ()
  in
  for i = 0 to n - 1 do
    let rng = Dessim.Rng.split root_rng ~label:("speaker-" ^ string_of_int i) in
    speakers.(i) <-
      Some
        (Speaker.create ~checker ~obs ~prefix_obs:true ~paths ~prefixes
           ~engine:(engine_of i) ~config ~rng ~node:i
           ~peers:(Topo.Graph.neighbors graph i)
           ~emit:(emit_from i)
           ~on_next_hop_change:(on_next_hop_change_for i)
           ())
  done;
  (* warm-up: all prefixes originate *)
  List.iter2
    (fun origin prefix ->
      Netcore.Fabric.schedule_control ~tag:"originate" fabric ~node:origin
        ~at:0. (fun () -> Speaker.originate (speaker origin) prefix))
    origins prefix_list;
  Netcore.Fabric.run ?until:max_vtime ~max_events fabric;
  let warmup_drained = Netcore.Fabric.events_executed fabric < max_events in
  (* arm the streaming scanners on the converged forwarding state; a
     warm-up that blew the budget may hold transient loops the scanner
     rejects, so streaming is skipped (loop_reports stays empty) *)
  if warmup_drained then
    List.iteri
      (fun pid (_p, fib) ->
        streams.(pid) <-
          Some
            (Loopscan.Stream.create ~record:true ~origin:origin_by_id.(pid)
               ~initial:(Netcore.Fib_history.snapshot fib ~before:infinity)
               ()))
      fibs;
  let t_fail = Netcore.Fabric.now fabric +. failure_gap in
  t_fail_ref := t_fail;
  (* the victim's T_down *)
  let victim_origin = List.nth origins victim in
  Netcore.Fabric.schedule_control ~tag:"inject" fabric ~node:victim_origin
    ~at:t_fail (fun () ->
      Speaker.withdraw_local (speaker victim_origin) victim_prefix);
  (* background churn *)
  (match churn with
  | None -> ()
  | Some c ->
      List.iter
        (fun flapper ->
          let origin = List.nth origins flapper in
          let prefix = List.nth prefix_list flapper in
          for k = 0 to c.cycles - 1 do
            let base = t_fail +. (float_of_int k *. c.period) in
            Netcore.Fabric.schedule_control ~tag:"inject" fabric ~node:origin
              ~at:base (fun () ->
                Speaker.withdraw_local (speaker origin) prefix);
            Netcore.Fabric.schedule_control ~tag:"inject" fabric ~node:origin
              ~at:(base +. (c.period /. 2.))
              (fun () -> Speaker.originate (speaker origin) prefix)
          done)
        c.flappers);
  Netcore.Fabric.run ?until:max_vtime ~max_events fabric;
  (match Obs.Bus.counters obs with
  | Some c ->
      Obs.Counters.add_events c (Netcore.Fabric.events_executed fabric);
      Obs.Counters.observe_paths_interned c ~count:(As_path.Table.size paths)
  | None -> ());
  let termination =
    if Netcore.Fabric.events_executed fabric >= max_events then
      Routing_sim.Event_budget
    else
      match Netcore.Fabric.next_live_time fabric with
      | Some _ -> Routing_sim.Vtime_budget
      | None -> Routing_sim.Drained
  in
  let converged = warmup_drained && termination = Routing_sim.Drained in
  let loop_reports =
    List.concat
      (List.mapi
         (fun pid (p, _fib) ->
           match streams.(pid) with
           | Some stream -> [ (p, Loopscan.Stream.report stream) ]
           | None -> [])
         fibs)
  in
  {
    prefixes = fibs;
    loop_reports;
    trace;
    t_fail;
    victim = victim_prefix;
    victim_convergence_end =
      (if !last_victim_send > neg_infinity then !last_victim_send else t_fail);
    victim_messages = !victim_msgs;
    background_messages = !background_msgs;
    converged;
    termination;
    invariant_violations = Faults.Invariant.violations checker;
    paths_interned = As_path.Table.size paths;
    events_executed = Netcore.Fabric.events_executed fabric;
  }
