(** A BGP speaker: the per-AS protocol instance.

    The speaker keeps, per destination prefix, the latest path received
    from each neighbor (Adj-RIB-In), its chosen best route (Loc-RIB) and
    what it has announced to each neighbor (Adj-RIB-Out), and runs the
    decision process of the paper's model:

    - {b path-based poison reverse}: a received path containing this AS
      is discarded — and, per the BGP spec's implicit-withdraw rule, it
      replaces (removes) the neighbor's previous usable entry;
    - {b preference} by the configured {!Policy.t} (default: shortest
      path, lowest-ID tie-break);
    - {b MRAI} per (neighbor, destination) on announcements, with
      withdrawals exempt unless WRATE is configured;
    - the {b SSLD}, {b Assertion} and {b Ghost Flushing} enhancements
      when enabled in {!Config.t}.

    The speaker is transport-agnostic: it emits messages through a
    callback and is driven by {!handle_msg} / {!session_down} calls from
    the surrounding simulation. *)

type t

val create :
  ?checker:Faults.Invariant.t ->
  ?obs:Obs.Bus.t ->
  ?prefix_obs:bool ->
  ?paths:As_path.Table.t ->
  ?prefixes:Prefix.Table.t ->
  engine:Dessim.Engine.t ->
  config:Config.t ->
  rng:Dessim.Rng.t ->
  node:int ->
  peers:int list ->
  emit:(peer:int -> Msg.t -> unit) ->
  on_next_hop_change:(prefix:Prefix.t -> next_hop:int option -> unit) ->
  unit ->
  t
(** [rng] drives this speaker's MRAI jitter draws.  [emit] must deliver
    (or drop) the message; it is called at the virtual time the message
    leaves.  [on_next_hop_change] fires whenever the forwarding next hop
    for a prefix changes ([None] = no route; the origin's own prefix
    also reports [None] since packets terminate there).

    [checker] (default {!Faults.Invariant.off}) receives runtime
    invariant reports: Loc-RIB/Adj-RIB-In coherence and next-hop
    liveness after every decision, poison-reverse soundness after every
    Adj-RIB-In mutation.

    [obs] (default {!Obs.Bus.off}) receives [Originate]/[Withdrawal]
    trace events, per-peer [Mrai_fire] events and decision-process
    counter bumps.  [prefix_obs] (default [false]) additionally tags
    those events with the dense prefix id from the speaker's prefix
    table — multi-prefix (mesh) simulations enable it; single-prefix
    simulations leave it off so their traces keep the historical
    byte-exact form.

    [paths] (default: the domain's {!As_path.default_table}) is the
    arena this speaker interns announcement paths into; a simulation
    passes one shared arena to all of its speakers so that handles
    flowing between them compare in O(1).

    [prefixes] (default: a private table) interns destination prefixes
    to dense ids; a mesh simulation passes one shared table to all of
    its speakers so that the packed [(prefix_id, peer)] RIB keys and
    trace prefix ids agree across nodes. *)

val node : t -> int

val peers : t -> int list
(** Live peers (sessions up), ascending. *)

val originate : t -> Prefix.t -> unit
(** Install a local route for [prefix] and announce it. *)

val withdraw_local : t -> Prefix.t -> unit
(** Remove the local route — the paper's [T_down] event at the origin. *)

val handle_msg : t -> from:int -> Msg.t -> unit
(** Process a routing message (to be called after the processing
    delay). *)

val session_down : t -> peer:int -> unit
(** The link to [peer] failed: drop its Adj-RIB-In entries, reset its
    MRAI state, re-decide.  Idempotent. *)

val session_up : t -> peer:int -> unit
(** A (new or recovered) session to [peer] established: start with an
    empty Adj-RIB-In for it and advertise our current best routes, as a
    real BGP speaker dumps its table to a fresh peer.  Idempotent;
    ignored while the speaker is crashed. *)

(** {2 Crash / restart} *)

val alive : t -> bool

val crash : t -> unit
(** The node dies losing all protocol state: every RIB entry, pending
    MRAI transmission and damping timer is gone, all sessions drop (the
    surrounding simulation must also [session_down] the surviving
    peers), and the node's FIB empties.  Messages delivered while
    crashed are dropped.  Idempotent. *)

val restart : t -> unit
(** The crashed node boots back up with empty RIBs and no sessions.
    The surrounding simulation re-establishes sessions ({!session_up}
    on both ends of each surviving link) and re-originates local
    prefixes.  A no-op on a live node. *)

(** {2 Inspection} *)

val best : t -> Prefix.t -> (int option * As_path.t) option
(** [(learned_from, path)] of the current best route; [learned_from =
    None] and the empty path for a local route. *)

val next_hop : t -> Prefix.t -> int option

val rib_in : t -> Prefix.t -> (int * As_path.t) list
(** Current Adj-RIB-In entries, by peer, ascending. *)

val advertised_to : t -> Prefix.t -> peer:int -> As_path.t option
(** What [peer] currently holds from us (Adj-RIB-Out after the last
    transmitted message). *)

val route_change_count : t -> int
(** Number of best-route changes since creation (any attribute, not
    just next hop). *)

val suppressed_peers : t -> Prefix.t -> int list
(** Peers whose route for [prefix] is currently suppressed by
    route-flap damping, ascending; always [[]] when damping is off. *)

(** {2 Quiescence, arena compaction and checkpointing}

    Long-horizon (churn) runs snapshot speakers at epoch boundaries and
    swap their path arena for a freshly compacted one.  All three
    operations below are only meaningful at {!quiescent} points. *)

val quiescent : t -> bool
(** [true] when the speaker holds no timed state: no MRAI timer
    running, no pending rate-limited message, no damping reuse timer.
    At such a point the speaker's behavior is fully determined by its
    RIBs, so it can be snapshotted or have its arena swapped. *)

val remap_paths : t -> f:(As_path.t -> As_path.t) -> unit
(** Replace every live path handle (Adj-RIB-In entries, the Loc-RIB
    best, Adj-RIB-Out advertised paths) with [f handle].  [f] must
    return a structurally equal path — e.g. {!As_path.reintern} into a
    fresh arena.  Only safe at quiescence: pending messages and
    scheduled events may hold handles this walk cannot reach. *)

val set_path_table : t -> As_path.Table.t -> unit
(** Swap the arena new announcement paths are interned into; call
    after {!remap_paths} into the same table. *)

val path_table : t -> As_path.Table.t

val prefix_table : t -> Prefix.Table.t
(** The prefix-interning table this speaker keys its RIB shards with
    (shared across speakers in a mesh simulation). *)

(** Marshal-safe snapshot of a quiescent speaker's protocol state:
    paths are flattened to AS arrays and re-interned on restore,
    hashtables serialized in canonical (sorted) order.  Peers holding
    no route from us are omitted from [sn_advertised]: a fresh
    out-state is behaviorally identical. *)
type dest_snapshot = {
  sn_prefix : Prefix.t;
  sn_local : bool;
  sn_rib_in : (int * int array) array;
  sn_best : (int option * int array) option;
  sn_advertised : (int * int array) array;
}

type snapshot = {
  sn_node : int;
  sn_alive : bool;
  sn_peers : int array;
  sn_route_changes : int;
  sn_dests : dest_snapshot array;
}

val snapshot : t -> snapshot
(** @raise Invalid_argument if the speaker is not {!quiescent} or has
    route-flap damping configured (damping state is not
    snapshotable). *)

val restore : t -> snapshot -> unit
(** Write [snapshot] into a freshly created, empty speaker (same node
    id, same config).  No decision process runs, nothing is emitted
    and [on_next_hop_change] does not fire — the caller re-seeds its
    FIB view from the same checkpoint.  @raise Invalid_argument on a
    node mismatch or a non-empty speaker. *)
