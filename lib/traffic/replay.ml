type result = {
  sent : int;
  sent_for_ratio : int;
  delivered : int;
  unreachable : int;
  exhausted : int;
  first_exhaustion : float option;
  last_exhaustion : float option;
  exhaustion_times : float array;
}

let overall_looping_duration r =
  match (r.first_exhaustion, r.last_exhaustion) with
  | Some first, Some last -> last -. first
  | _ -> 0.

let looping_ratio r =
  if r.sent_for_ratio = 0 then 0.
  else float_of_int r.exhausted /. float_of_int r.sent_for_ratio

let run ~fib ~origin ~n ~link_delay ~ttl ~rate ~window:(t0, t1) ~seed
    ?ratio_cutoff ?sources () =
  if rate <= 0. then invalid_arg "Replay.run: rate <= 0";
  if t1 < t0 then invalid_arg "Replay.run: window end before start";
  let ratio_cutoff = Option.value ratio_cutoff ~default:t1 in
  let sources =
    match sources with
    | Some l ->
        List.iter
          (fun s ->
            if s = origin then invalid_arg "Replay.run: source = origin";
            if s < 0 || s >= n then
              invalid_arg "Replay.run: source out of range")
          l;
        l
    | None -> List.filter (fun v -> v <> origin) (List.init n Fun.id)
  in
  let rng = Dessim.Rng.create ~seed in
  let interval = 1. /. rate in
  let sent = ref 0
  and sent_for_ratio = ref 0
  and delivered = ref 0
  and unreachable = ref 0
  and exhausted = ref 0 in
  let exhaustions = Dessim.Vec.create () in
  let send_one src time =
    incr sent;
    if time < ratio_cutoff then incr sent_for_ratio;
    match
      Forwarder.walk ~fib ~origin ~link_delay ~ttl ~src ~send_time:time
    with
    | Forwarder.Delivered _ -> incr delivered
    | Forwarder.Unreachable _ -> incr unreachable
    | Forwarder.Ttl_exhausted { time = drop_time; _ } ->
        incr exhausted;
        Dessim.Vec.push exhaustions drop_time
  in
  List.iter
    (fun src ->
      let phase = Dessim.Rng.float rng interval in
      let time = ref (t0 +. phase) in
      while !time < t1 do
        send_one src !time;
        time := !time +. interval
      done)
    sources;
  let exhaustion_times = Dessim.Vec.to_array exhaustions in
  (* bgpsim-lint: allow D004 — compare as a total order for sorting finite times *)
  Array.sort compare exhaustion_times;
  let count = Array.length exhaustion_times in
  {
    sent = !sent;
    sent_for_ratio = !sent_for_ratio;
    delivered = !delivered;
    unreachable = !unreachable;
    exhausted = !exhausted;
    first_exhaustion = (if count = 0 then None else Some exhaustion_times.(0));
    last_exhaustion =
      (if count = 0 then None else Some exhaustion_times.(count - 1));
    exhaustion_times;
  }
