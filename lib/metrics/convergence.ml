type t = {
  per_node : (int * float option) list;
  affected_nodes : int;
  mean_settle : float;
  max_settle : float;
  total_changes : int;
}

let analyze ~fib ~from =
  let n = Netcore.Fib_history.n_nodes fib in
  let changes = Netcore.Fib_history.changes_from fib ~from in
  let last = Array.make n None in
  List.iter
    (fun (c : Netcore.Fib_history.change) -> last.(c.node) <- Some c.time)
    changes;
  let per_node = List.init n (fun v -> (v, last.(v))) in
  let settles =
    List.filter_map (fun (_, t) -> Option.map (fun x -> x -. from) t) per_node
  in
  let affected_nodes = List.length settles in
  {
    per_node;
    affected_nodes;
    mean_settle =
      (if affected_nodes = 0 then 0.
       else
         List.fold_left ( +. ) 0. settles /. float_of_int affected_nodes);
    max_settle = List.fold_left Float.max 0. settles;
    total_changes = List.length changes;
  }

let churn_timeline ~fib ~from ~bucket =
  if bucket <= 0. then invalid_arg "Convergence.churn_timeline: bucket <= 0";
  let tbl = Hashtbl.create 32 in
  List.iter
    (fun (c : Netcore.Fib_history.change) ->
      let bin = Float.floor ((c.time -. from) /. bucket) in
      Hashtbl.replace tbl bin
        (1 + Option.value (Hashtbl.find_opt tbl bin) ~default:0))
    (Netcore.Fib_history.changes_from fib ~from);
  Hashtbl.to_seq tbl |> List.of_seq
  |> List.map (fun (bin, count) -> (from +. (bin *. bucket), count))
  |> List.sort compare

let pp fmt t =
  Format.fprintf fmt
    "affected=%d/%d changes=%d settle(mean/max)=%.2f/%.2f s" t.affected_nodes
    (List.length t.per_node) t.total_changes t.mean_settle t.max_settle
