(** The paper's measurement suite for one simulated failure event
    (§4.2), plus the per-loop aggregates of the extension analysis:

    - {b convergence time}: failure to last BGP update sent;
    - {b overall looping duration}: first to last TTL exhaustion;
    - {b number of TTL exhaustions};
    - {b looping ratio}: TTL exhaustions over packets sent during
      convergence — "the probability that a packet sent during routing
      convergence encounters looping". *)

type t = {
  convergence_time : float;
  overall_looping_duration : float;
  ttl_exhaustions : int;
  packets_sent : int;  (** during convergence (the ratio denominator) *)
  looping_ratio : float;
  packets_delivered : int;
  packets_unreachable : int;
  updates_sent : int;  (** announcements at/after the failure *)
  withdrawals_sent : int;
  route_changes : int;
  loop_count : int;
  loop_mean_size : float;
  loop_max_size : int;
  loop_mean_duration : float;
  loop_max_duration : float;
  max_concurrent_loops : int;
  converged : bool;
  invariant_violations : int;
      (** total runtime-invariant violations recorded during the run
          (0 unless the run's checker was in [Record] mode and fired) *)
  events_executed : int;
      (** simulator events the run's engine processed — the
          wall-clock-independent cost of the run *)
  wall_clock_s : float;
      (** host wall-clock seconds the run took (0 when the caller did
          not time it); with [events_executed] this yields events/sec,
          so hot-path speedups are measured rather than asserted *)
}

val make :
  ?wall_clock_s:float ->
  outcome:Bgp.Routing_sim.outcome ->
  replay:Traffic.Replay.result ->
  loops:Loopscan.Scanner.report ->
  loops_until:float ->
  unit ->
  t

val zero : t
(** All-zero metrics (identity for {!add}). *)

val mean : t list -> t
(** Field-wise mean over runs (integer fields rounded to nearest);
    [converged] is the conjunction.  @raise Invalid_argument on []. *)

val pp : Format.formatter -> t -> unit

val header : string
(** Column header matching {!to_row}. *)

val to_row : t -> string
(** Tab-separated row of the headline fields. *)
