let glyphs = " .-=+*#@"

let bucketize ~values ~from ~until ~width =
  if until <= from then invalid_arg "Timeline.bucketize: empty window";
  if width <= 0 then invalid_arg "Timeline.bucketize: width <= 0";
  let bins = Array.make width 0. in
  let span = until -. from in
  List.iter
    (fun (time, weight) ->
      if time >= from && time < until then begin
        let i = int_of_float ((time -. from) /. span *. float_of_int width) in
        let i = Stdlib.min i (width - 1) in
        bins.(i) <- bins.(i) +. weight
      end)
    values;
  bins

let sparkline ?(width = 60) series =
  let n = Array.length series in
  if n = 0 then ""
  else begin
    (* resample into [width] columns by summing *)
    let cols =
      if n = width then Array.copy series
      else begin
        let out = Array.make width 0. in
        Array.iteri
          (fun i v ->
            let c = i * width / n in
            out.(c) <- out.(c) +. v)
          series;
        out
      end
    in
    let peak = Array.fold_left Float.max 0. cols in
    String.init width (fun i ->
        if peak <= 0. then ' '
        else
          let level =
            int_of_float
              (Float.round
                 (cols.(i) /. peak *. float_of_int (String.length glyphs - 1)))
          in
          glyphs.[Stdlib.max 0 (Stdlib.min level (String.length glyphs - 1))])
  end

let loops_band ~loops ~from ~until ~width =
  if until <= from then invalid_arg "Timeline.loops_band: empty window";
  if width <= 0 then invalid_arg "Timeline.loops_band: width <= 0";
  let span = until -. from in
  String.init width (fun i ->
      let bin_start = from +. (float_of_int i /. float_of_int width *. span) in
      let bin_end = from +. (float_of_int (i + 1) /. float_of_int width *. span) in
      let alive =
        List.length
          (List.filter
             (fun (l : Loopscan.Scanner.loop) ->
               let death = Option.value l.death ~default:infinity in
               l.birth < bin_end && death > bin_start)
             loops)
      in
      if alive = 0 then ' '
      else if alive < 10 then Char.chr (Char.code '0' + alive)
      else '+')

let render_run ~fib ~loops ~exhaustion_times ~from ~until ?(width = 60) () =
  let churn =
    bucketize
      ~values:
        (List.map
           (fun (c : Netcore.Fib_history.change) -> (c.time, 1.))
           (Netcore.Fib_history.changes_from fib ~from))
      ~from ~until ~width
  in
  let exhaustions =
    bucketize
      ~values:(Array.to_list (Array.map (fun t -> (t, 1.)) exhaustion_times))
      ~from ~until ~width
  in
  let axis =
    let mid = (from +. until) /. 2. in
    Printf.sprintf "t=%-8.1f%*s%8s" from (width - 16)
      (Printf.sprintf "%.1f" mid)
      (Printf.sprintf "%.1f" until)
  in
  String.concat "\n"
    [
      "fib churn  |" ^ sparkline ~width churn ^ "|";
      "live loops |" ^ loops_band ~loops:loops.Loopscan.Scanner.loops ~from ~until ~width ^ "|";
      "ttl drops  |" ^ sparkline ~width exhaustions ^ "|";
      "            " ^ axis;
    ]
