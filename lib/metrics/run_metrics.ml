type t = {
  convergence_time : float;
  overall_looping_duration : float;
  ttl_exhaustions : int;
  packets_sent : int;
  looping_ratio : float;
  packets_delivered : int;
  packets_unreachable : int;
  updates_sent : int;
  withdrawals_sent : int;
  route_changes : int;
  loop_count : int;
  loop_mean_size : float;
  loop_max_size : int;
  loop_mean_duration : float;
  loop_max_duration : float;
  max_concurrent_loops : int;
  converged : bool;
  invariant_violations : int;
  events_executed : int;
  wall_clock_s : float;
}

let make ?(wall_clock_s = 0.) ~(outcome : Bgp.Routing_sim.outcome)
    ~(replay : Traffic.Replay.result) ~(loops : Loopscan.Scanner.report)
    ~loops_until () =
  let agg = Loopscan.Scanner.aggregate loops ~until:loops_until in
  {
    convergence_time = Bgp.Routing_sim.convergence_time outcome;
    overall_looping_duration = Traffic.Replay.overall_looping_duration replay;
    ttl_exhaustions = replay.exhausted;
    packets_sent = replay.sent_for_ratio;
    looping_ratio = Traffic.Replay.looping_ratio replay;
    packets_delivered = replay.delivered;
    packets_unreachable = replay.unreachable;
    updates_sent = outcome.updates_after_fail;
    withdrawals_sent = outcome.withdrawals_after_fail;
    route_changes = outcome.route_changes;
    loop_count = agg.count;
    loop_mean_size = agg.mean_size;
    loop_max_size = agg.max_size;
    loop_mean_duration = agg.mean_duration;
    loop_max_duration = agg.max_duration;
    max_concurrent_loops = loops.max_concurrent;
    converged = outcome.converged;
    invariant_violations =
      List.fold_left
        (fun acc (_, c) -> acc + c)
        0 outcome.invariant_violations;
    events_executed = outcome.events_executed;
    wall_clock_s;
  }

let zero =
  {
    convergence_time = 0.;
    overall_looping_duration = 0.;
    ttl_exhaustions = 0;
    packets_sent = 0;
    looping_ratio = 0.;
    packets_delivered = 0;
    packets_unreachable = 0;
    updates_sent = 0;
    withdrawals_sent = 0;
    route_changes = 0;
    loop_count = 0;
    loop_mean_size = 0.;
    loop_max_size = 0;
    loop_mean_duration = 0.;
    loop_max_duration = 0.;
    max_concurrent_loops = 0;
    converged = true;
    invariant_violations = 0;
    events_executed = 0;
    wall_clock_s = 0.;
  }

let mean = function
  | [] -> invalid_arg "Run_metrics.mean: empty list"
  | runs ->
      let k = float_of_int (List.length runs) in
      let favg f = List.fold_left (fun acc r -> acc +. f r) 0. runs /. k in
      let iavg f =
        int_of_float
          (Float.round
             (List.fold_left (fun acc r -> acc +. float_of_int (f r)) 0. runs
             /. k))
      in
      {
        convergence_time = favg (fun r -> r.convergence_time);
        overall_looping_duration = favg (fun r -> r.overall_looping_duration);
        ttl_exhaustions = iavg (fun r -> r.ttl_exhaustions);
        packets_sent = iavg (fun r -> r.packets_sent);
        looping_ratio = favg (fun r -> r.looping_ratio);
        packets_delivered = iavg (fun r -> r.packets_delivered);
        packets_unreachable = iavg (fun r -> r.packets_unreachable);
        updates_sent = iavg (fun r -> r.updates_sent);
        withdrawals_sent = iavg (fun r -> r.withdrawals_sent);
        route_changes = iavg (fun r -> r.route_changes);
        loop_count = iavg (fun r -> r.loop_count);
        loop_mean_size = favg (fun r -> r.loop_mean_size);
        loop_max_size = iavg (fun r -> r.loop_max_size);
        loop_mean_duration = favg (fun r -> r.loop_mean_duration);
        loop_max_duration = favg (fun r -> r.loop_max_duration);
        max_concurrent_loops = iavg (fun r -> r.max_concurrent_loops);
        converged = List.for_all (fun r -> r.converged) runs;
        invariant_violations = iavg (fun r -> r.invariant_violations);
        events_executed = iavg (fun r -> r.events_executed);
        wall_clock_s = favg (fun r -> r.wall_clock_s);
      }

let header =
  "conv_time\tloop_dur\tttl_exh\tpkts\tratio\tupdates\twithdrawals\tloops"

let to_row t =
  Printf.sprintf "%.2f\t%.2f\t%d\t%d\t%.3f\t%d\t%d\t%d" t.convergence_time
    t.overall_looping_duration t.ttl_exhaustions t.packets_sent
    t.looping_ratio t.updates_sent t.withdrawals_sent t.loop_count

let pp fmt t =
  Format.fprintf fmt
    "@[<v>convergence time:         %.2f s%s@,\
     overall looping duration: %.2f s@,\
     TTL exhaustions:          %d@,\
     packets sent:             %d@,\
     looping ratio:            %.3f@,\
     delivered / unreachable:  %d / %d@,\
     updates / withdrawals:    %d / %d@,\
     route changes:            %d@,\
     loops (count/max size):   %d / %d@,\
     loop durations (mean/max): %.2f / %.2f s@,\
     max concurrent loops:     %d%t@]"
    t.convergence_time
    (if t.converged then "" else " (NOT CONVERGED)")
    t.overall_looping_duration t.ttl_exhaustions t.packets_sent
    t.looping_ratio t.packets_delivered t.packets_unreachable t.updates_sent
    t.withdrawals_sent t.route_changes t.loop_count t.loop_max_size
    t.loop_mean_duration t.loop_max_duration t.max_concurrent_loops
    (fun fmt ->
      if t.invariant_violations > 0 then
        Format.fprintf fmt "@,invariant violations:     %d"
          t.invariant_violations;
      if t.wall_clock_s > 0. then
        Format.fprintf fmt "@,events / wall clock:      %d / %.3f s (%.0f ev/s)"
          t.events_executed t.wall_clock_s
          (float_of_int t.events_executed /. t.wall_clock_s))
