type severity = Error | Warning | Info

type issue = { severity : severity; code : string; message : string }

type partition = { from_ : float; until : float option; nodes : int list }

type report = {
  issues : issue list;
  partitions : partition list;
  steps_analyzed : int;
  random_clauses : int;
}

let severity_name = function
  | Error -> "error"
  | Warning -> "warning"
  | Info -> "info"

let errors r = List.filter (fun i -> i.severity = Error) r.issues

let has_errors r = errors r <> []

let norm (a, b) = if a <= b then (a, b) else (b, a)

let link_str (a, b) = Printf.sprintf "(%d,%d)" a b

(* Group the (time-sorted) steps into same-instant batches. *)
let group_by_time steps =
  List.fold_left
    (fun groups (s : Faults.Scenario.step) ->
      match groups with
      (* bgpsim-lint: allow D004 — same-instant grouping; equal times are copies of one value *)
      | (t, batch) :: rest when t = s.at -> (t, s :: batch) :: rest
      | _ -> (s.at, [ s ]) :: groups)
    [] steps
  |> List.rev_map (fun (t, batch) -> (t, List.rev batch))

let lint (scenario : Faults.Scenario.t) ~graph ~origin =
  let n = Topo.Graph.n_nodes graph in
  if origin < 0 || origin >= n then
    invalid_arg "Lint.lint: origin out of range";
  let resolution = Faults.Scenario.resolution_issues scenario ~graph in
  let _, random_clauses = Faults.Scenario.expand_deterministic scenario in
  if resolution <> [] then
    {
      issues =
        List.map
          (fun m -> { severity = Error; code = "dangling-ref"; message = m })
          resolution;
      partitions = [];
      steps_analyzed = 0;
      random_clauses;
    }
  else begin
    let steps, _ = Faults.Scenario.expand_deterministic scenario in
    let issues = ref [] in
    let issue severity code fmt =
      Printf.ksprintf
        (fun message -> issues := { severity; code; message } :: !issues)
        fmt
    in
    if random_clauses > 0 then
      issue Info "random-unanalyzed"
        "%d random failure clause(s) not statically analyzed (their \
         expansion is seed-dependent)"
        random_clauses;
    (* symbolic link/node state *)
    let failed = Hashtbl.create 16 in
    let crashed = Array.make n false in
    let apply at (action : Faults.Scenario.action) =
      match action with
      | Link_fail l ->
          let key = norm l in
          if Hashtbl.mem failed key then
            issue Warning "shadowed-fail"
              "link %s fails at t=%g but is already down (shadowed epoch)"
              (link_str l) at
          else Hashtbl.replace failed key ()
      | Link_recover l ->
          let key = norm l in
          if not (Hashtbl.mem failed key) then
            issue Warning "spurious-recover"
              "link %s recovers at t=%g but is already up" (link_str l) at
          else Hashtbl.remove failed key
      | Node_crash v ->
          if crashed.(v) then
            issue Warning "double-crash"
              "node %d crashes at t=%g but is already down" v at
          else begin
            crashed.(v) <- true;
            if v = origin then
              issue Info "origin-crash"
                "the origin crashes at t=%g: the destination is withdrawn \
                 until it restarts"
                at
          end
      | Node_restart v ->
          if not crashed.(v) then
            issue Warning "spurious-restart"
              "node %d restarts at t=%g but never crashed" v at
          else crashed.(v) <- false
      | Session_reset l ->
          if Hashtbl.mem failed (norm l) then
            issue Warning "dead-session-reset"
              "session reset on link %s at t=%g has no effect: the link is \
               down"
              (link_str l) at
    in
    (* same-instant conflicts: a fail and a recover of one link (or a
       crash and a restart of one node) at the same time depend on
       declaration order — almost always a script bug *)
    let batch_conflicts at batch =
      let touches f =
        List.filter_map (fun (s : Faults.Scenario.step) -> f s.action) batch
      in
      let fails =
        touches (function
          | Faults.Scenario.Link_fail l -> Some (norm l)
          | _ -> None)
      and recovers =
        touches (function
          | Faults.Scenario.Link_recover l -> Some (norm l)
          | _ -> None)
      in
      List.iter
        (fun l ->
          if List.mem l recovers then
            issue Warning "overlapping-epoch"
              "link %s both fails and recovers at t=%g (order-dependent \
               epoch)"
              (link_str l) at)
        fails;
      let crashes =
        touches (function Faults.Scenario.Node_crash v -> Some v | _ -> None)
      and restarts =
        touches (function
          | Faults.Scenario.Node_restart v -> Some v
          | _ -> None)
      in
      List.iter
        (fun v ->
          if List.mem v restarts then
            issue Warning "overlapping-epoch"
              "node %d both crashes and restarts at t=%g (order-dependent \
               epoch)"
              v at)
        crashes
    in
    (* cut analysis: after every instant, which live nodes are provably
       partitioned from the origin? *)
    let unreachable_now () =
      let blocked_nodes =
        List.filter (fun v -> crashed.(v)) (List.init n Fun.id)
      in
      (* bgpsim-lint: allow D001 — Graph.reachable consumes this as a set *)
      let blocked_links = Hashtbl.fold (fun l () acc -> l :: acc) failed [] in
      let reach =
        Topo.Graph.reachable graph ~from:origin ~blocked_nodes ~blocked_links
          ()
      in
      List.filter
        (fun v -> v <> origin && (not crashed.(v)) && not reach.(v))
        (List.init n Fun.id)
    in
    let partitions = ref [] in
    let current = ref None in
    let observe t =
      let u = unreachable_now () in
      match (!current, u) with
      | None, [] -> ()
      | None, u -> current := Some (t, u)
      | Some (t0, acc), [] ->
          partitions := { from_ = t0; until = Some t; nodes = acc } :: !partitions;
          current := None
      | Some (t0, acc), u ->
          current :=
            Some (t0, List.sort_uniq compare (List.rev_append acc u))
    in
    let groups = group_by_time steps in
    List.iter
      (fun (t, batch) ->
        batch_conflicts t batch;
        List.iter (fun (s : Faults.Scenario.step) -> apply t s.action) batch;
        observe t)
      groups;
    (match !current with
    | None -> ()
    | Some (t0, acc) ->
        partitions := { from_ = t0; until = None; nodes = acc } :: !partitions);
    let partitions = List.rev !partitions in
    List.iter
      (fun p ->
        let nodes = String.concat "," (List.map string_of_int p.nodes) in
        match p.until with
        | Some t1 ->
            issue Info "partition"
              "node(s) %s predicted unreachable from the origin during \
               [%g, %g)"
              nodes p.from_ t1
        | None ->
            issue Warning "permanent-partition"
              "node(s) %s predicted unreachable from the origin from t=%g \
               with no scripted recovery"
              nodes p.from_)
      partitions;
    {
      issues = List.rev !issues;
      partitions;
      steps_analyzed = List.length steps;
      random_clauses;
    }
  end

let pp fmt r =
  Format.fprintf fmt "lint: %d error(s), %d warning(s), %d info"
    (List.length (List.filter (fun i -> i.severity = Error) r.issues))
    (List.length (List.filter (fun i -> i.severity = Warning) r.issues))
    (List.length (List.filter (fun i -> i.severity = Info) r.issues));
  Format.fprintf fmt " (%d step(s) analyzed, %d random clause(s))"
    r.steps_analyzed r.random_clauses;
  List.iter
    (fun i ->
      Format.fprintf fmt "@\n  %-7s [%s] %s" (severity_name i.severity) i.code
        i.message)
    r.issues
