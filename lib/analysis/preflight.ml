type mode = Off | Warn | Strict

exception Rejected of { stage : string; issues : string list }

type report = {
  spvp : Spvp.t;
  lint : Lint.report option;
  bounds : Bounds.t;
}

let mode_name = function Off -> "off" | Warn -> "warn" | Strict -> "strict"

let mode_of_string = function
  | "off" -> Ok Off
  | "warn" -> Ok Warn
  | "strict" -> Ok Strict
  | s -> Error (Printf.sprintf "unknown pre-flight mode %S (off|warn|strict)" s)

let analyze ?max_paths ?gr_rel ?scenario ?clique ?(certified_event = false)
    ?epochs ~graph ~policy ~origin ~mrai ~params () =
  let spvp = Spvp.analyze ?max_paths ?gr_rel ~graph ~policy ~origin () in
  let lint =
    Option.map (fun sc -> Lint.lint sc ~graph ~origin) scenario
  in
  let epochs =
    match epochs with
    | Some e -> e
    | None -> (
        match scenario with
        | None -> 1
        | Some sc ->
            let steps, _ = Faults.Scenario.expand_deterministic sc in
            Stdlib.max 1 (List.length steps))
  in
  let bounds =
    Bounds.derive ~graph ~origin ~mrai ~params
      ?enumeration:spvp.Spvp.enumeration ?clique ~epochs ~certified_event ()
  in
  { spvp; lint; bounds }

let blocking r =
  let stages = ref [] in
  (match r.spvp.Spvp.verdict with
  | Spvp.Unsafe w ->
      stages :=
        ( "policy-safety",
          [ Format.asprintf "dispute cycle detected: %a" Spvp.pp_wheel w ] )
        :: !stages
  | Spvp.Safe _ | Spvp.Unknown _ -> ());
  (match r.lint with
  | Some l when Lint.has_errors l ->
      stages :=
        ( "scenario-lint",
          List.map
            (fun (i : Lint.issue) ->
              Printf.sprintf "[%s] %s" i.Lint.code i.Lint.message)
            (Lint.errors l) )
        :: !stages
  | _ -> ());
  List.rev !stages

let gate mode r =
  match mode with
  | Off | Warn -> ()
  | Strict -> (
      match blocking r with
      | [] -> ()
      | (stage, issues) :: _ -> raise (Rejected { stage; issues }))

(* -- JSON ---------------------------------------------------------- *)

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let jstr s = Printf.sprintf "\"%s\"" (json_escape s)

let jfloat x =
  (* bgpsim-lint: allow D004 — infinity is an exact sentinel, not a computed time *)
  if x = infinity then "null"
  else if Float.is_integer x && Float.abs x < 1e15 then
    Printf.sprintf "%.0f" x
  else Printf.sprintf "%.6g" x

let jlist items = "[" ^ String.concat "," items ^ "]"

let jobj fields =
  "{"
  ^ String.concat "," (List.map (fun (k, v) -> jstr k ^ ":" ^ v) fields)
  ^ "}"

let json_path p = jlist (List.map string_of_int p)

let json_verdict (v : Spvp.verdict) =
  match v with
  | Spvp.Safe (Spvp.Acyclic_dispute_digraph { paths; arcs }) ->
      jobj
        [
          ("result", jstr "safe");
          ("certificate", jstr "acyclic-dispute-digraph");
          ("paths", string_of_int paths);
          ("arcs", string_of_int arcs);
        ]
  | Spvp.Safe Spvp.Gao_rexford_conformant ->
      jobj
        [ ("result", jstr "safe"); ("certificate", jstr "gao-rexford") ]
  | Spvp.Unsafe w ->
      jobj
        [
          ("result", jstr "unsafe");
          ( "cycle",
            jlist
              (List.map
                 (fun (p, kind) ->
                   jobj
                     [
                       ("path", json_path p);
                       ( "arc",
                         jstr
                           (match kind with
                           | Spvp.Transmission -> "transmission"
                           | Spvp.Dispute -> "dispute") );
                     ])
                 w.Spvp.cycle) );
        ]
  | Spvp.Unknown reason ->
      jobj [ ("result", jstr "unknown"); ("reason", jstr reason) ]

let json_lint (l : Lint.report) =
  jobj
    [
      ( "issues",
        jlist
          (List.map
             (fun (i : Lint.issue) ->
               jobj
                 [
                   ("severity", jstr (Lint.severity_name i.Lint.severity));
                   ("code", jstr i.Lint.code);
                   ("message", jstr i.Lint.message);
                 ])
             l.Lint.issues) );
      ( "partitions",
        jlist
          (List.map
             (fun (p : Lint.partition) ->
               jobj
                 [
                   ("from", jfloat p.Lint.from_);
                   ( "until",
                     match p.Lint.until with
                     | None -> "null"
                     | Some t -> jfloat t );
                   ("nodes", jlist (List.map string_of_int p.Lint.nodes));
                 ])
             l.Lint.partitions) );
      ("steps_analyzed", string_of_int l.Lint.steps_analyzed);
      ("random_clauses", string_of_int l.Lint.random_clauses);
    ]

let json_bounds (b : Bounds.t) =
  jobj
    [
      ("n_nodes", string_of_int b.Bounds.n_nodes);
      ("exploration_depth", string_of_int b.Bounds.exploration_depth);
      ("depth_exact", string_of_bool b.Bounds.depth_exact);
      ("rank_max", jfloat b.Bounds.rank_max);
      ("paths_total", jfloat b.Bounds.paths_total);
      ("mrai_rounds", jfloat b.Bounds.mrai_rounds);
      ("time_bound_s", jfloat b.Bounds.time_bound_s);
      ( "time_certainty",
        jstr (Bounds.certainty_name b.Bounds.time_certainty) );
      ("updates_bound", jfloat b.Bounds.updates_bound);
      ("epochs", string_of_int b.Bounds.epochs);
    ]

let to_json r =
  let fields =
    [
      ("policy_safety", json_verdict r.spvp.Spvp.verdict);
      ( "unreachable",
        jlist (List.map string_of_int r.spvp.Spvp.unreachable) );
    ]
    @ (match r.lint with
      | None -> []
      | Some l -> [ ("scenario_lint", json_lint l) ])
    @ [
        ("bounds", json_bounds r.bounds);
        ("admissible", string_of_bool (blocking r = []));
      ]
  in
  jobj fields

let pp fmt r =
  Format.fprintf fmt "@[<v>pre-flight: %a" Spvp.pp r.spvp;
  (match r.lint with
  | None -> ()
  | Some l -> Format.fprintf fmt "@,%a" Lint.pp l);
  Format.fprintf fmt "@,%a" Bounds.pp r.bounds;
  (match blocking r with
  | [] -> Format.fprintf fmt "@,admissible: yes"
  | stages ->
      Format.fprintf fmt "@,admissible: NO";
      List.iter
        (fun (stage, issues) ->
          List.iter
            (fun i -> Format.fprintf fmt "@,  %s: %s" stage i)
            issues)
        stages);
  Format.fprintf fmt "@]"
