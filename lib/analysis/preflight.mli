(** Combined static pre-flight: policy safety ({!Spvp}), scenario
    linting ({!Lint}) and convergence-bound derivation ({!Bounds}) in
    one pass, gated by a mode the experiment runner and the CLI expose.

    [Off] skips the analysis entirely; [Warn] runs it and reports but
    never blocks; [Strict] raises {!Rejected} before the simulator
    schedules a single event when the instance is statically doomed —
    an [Unsafe] policy verdict or a scenario lint error. *)

type mode = Off | Warn | Strict

exception
  Rejected of {
    stage : string;  (** ["policy-safety"] or ["scenario-lint"] *)
    issues : string list;
  }

type report = {
  spvp : Spvp.t;
  lint : Lint.report option;  (** [None] when no scenario was supplied *)
  bounds : Bounds.t;
}

val analyze :
  ?max_paths:int ->
  ?gr_rel:(int -> int -> Bgp.Policy.relationship) ->
  ?scenario:Faults.Scenario.t ->
  ?clique:int ->
  ?certified_event:bool ->
  ?epochs:int ->
  graph:Topo.Graph.t ->
  policy:Bgp.Policy.t ->
  origin:int ->
  mrai:float ->
  params:Netcore.Params.t ->
  unit ->
  report
(** [clique] enables the closed-form rank bound when enumeration blows
    its budget; [certified_event] marks a monotone T_down/T_up-style
    event (see {!Bounds.derive}).  [epochs] defaults to the scenario's
    deterministic step count (min 1). *)

val blocking : report -> (string * string list) list
(** The stages that would make [Strict] reject, with their issues:
    an [Unsafe] verdict and/or lint [Error]s.  Empty = admissible. *)

val gate : mode -> report -> unit
(** @raise Rejected in [Strict] mode when {!blocking} is non-empty
    (first blocking stage wins); no-op otherwise. *)

val mode_of_string : string -> (mode, string) result
(** ["off"] / ["warn"] / ["strict"]. *)

val mode_name : mode -> string

val to_json : report -> string
(** Self-contained JSON object (verdict, witness cycle, lint issues,
    partitions, bounds) for CI artifacts. *)

val pp : Format.formatter -> report -> unit
