type instance = {
  label : string;
  graph : Topo.Graph.t;
  policy : Bgp.Policy.t;
  origin : int;
}

let gadget_graph () =
  Topo.Graph.create ~n:4
    ~edges:[ (0, 1); (0, 2); (0, 3); (1, 2); (2, 3); (1, 3) ]

(* examples/policy_safety.ml's BAD GADGET: each spoke prefers the 2-hop
   path through its clockwise neighbor over its own direct path *)
let gadget_policy () =
  let clockwise = function 1 -> 2 | 2 -> 3 | 3 -> 1 | _ -> 0 in
  let rank ~self (c : Bgp.Policy.candidate) =
    match Bgp.As_path.to_list c.path with
    | [ v; 0 ] when v = clockwise self -> 0
    | [ 0 ] -> 1
    | _ -> 2
  in
  let prefer ~self a b =
    let c = compare (rank ~self a) (rank ~self b) in
    if c <> 0 then c
    else Bgp.As_path.compare a.Bgp.Policy.path b.Bgp.Policy.path
  in
  { Bgp.Policy.shortest_path with prefer; name = "bad-gadget" }

let bad_gadget () =
  {
    label = "bad-gadget";
    graph = gadget_graph ();
    policy = gadget_policy ();
    origin = 0;
  }

let good_gadget () =
  {
    label = "good-gadget";
    graph = gadget_graph ();
    policy = Bgp.Policy.shortest_path;
    origin = 0;
  }

let all () = [ bad_gadget (); good_gadget () ]

let find label =
  match List.find_opt (fun i -> i.label = label) (all ()) with
  | Some i -> Ok i
  | None ->
      Error
        (Printf.sprintf "unknown fixture %S (known: %s)" label
           (String.concat ", " (List.map (fun i -> i.label) (all ()))))
