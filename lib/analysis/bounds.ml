type certainty = Certified | Heuristic

type violation = { what : string; bound : float; actual : float }

type t = {
  n_nodes : int;
  exploration_depth : int;
  depth_exact : bool;
  rank_max : float;
  paths_total : float;
  mrai_rounds : float;
  time_bound_s : float;
  time_certainty : certainty;
  updates_bound : float;
  epochs : int;
}

let certainty_name = function
  | Certified -> "certified"
  | Heuristic -> "heuristic"

(* sum_(k=0..m) m!/(m-k)! with m = n - 2, accumulated as falling
   factorials so nothing larger than the final sum is ever formed *)
let clique_rank_bound n =
  if n < 2 then invalid_arg "Bounds.clique_rank_bound: n < 2";
  let m = float_of_int (n - 2) in
  let total = ref 0. and term = ref 1. and k = ref 0. in
  while !k <= m && !total < infinity do
    total := !total +. !term;
    term := !term *. (m -. !k);
    k := !k +. 1.
  done;
  !total

let derive ~graph ~origin ~mrai ~params ?enumeration ?clique ?(epochs = 1)
    ?(certified_event = false) () =
  let n = Topo.Graph.n_nodes graph in
  if origin < 0 || origin >= n then
    invalid_arg "Bounds.derive: origin out of range";
  if mrai < 0. then invalid_arg "Bounds.derive: negative mrai";
  if epochs < 1 then invalid_arg "Bounds.derive: epochs < 1";
  (match clique with
  | Some k when k <> n || k < 2 ->
      invalid_arg "Bounds.derive: clique size does not match the graph"
  | _ -> ());
  let exploration_depth, depth_exact, rank_max, paths_total =
    match enumeration with
    | Some (e : Spvp.enumeration) ->
        let depth = ref 0 and rank = ref 0 in
        Array.iteri
          (fun v paths ->
            if v <> origin then rank := Stdlib.max !rank (List.length paths);
            List.iter
              (fun p -> depth := Stdlib.max !depth (List.length p - 1))
              paths)
          e.per_node;
        (!depth, true, float_of_int !rank, float_of_int e.total)
    | None -> (
        match clique with
        | Some k ->
            let r = clique_rank_bound k in
            (* every non-origin node also originates nothing; total =
               (n-1) nodes x r paths + the origin's own trivial path *)
            (k - 1, true, r, (float_of_int (k - 1) *. r) +. 1.)
        | None -> (Stdlib.max 0 (n - 1), false, infinity, infinity))
  in
  let mrai_rounds =
    (* bgpsim-lint: allow D004 — infinity is an exact sentinel, not a computed time *)
    if rank_max = infinity then infinity else rank_max +. 2.
  in
  let deg_max =
    List.fold_left
      (fun acc v -> Stdlib.max acc (Topo.Graph.degree graph v))
      0 (Topo.Graph.nodes graph)
  in
  let time_bound_s =
    (* bgpsim-lint: allow D004 — infinity is an exact sentinel, not a computed time *)
    if mrai_rounds = infinity then infinity
    else
      let per_epoch =
        (mrai_rounds *. (mrai +. (float_of_int deg_max *. params.Netcore.Params.proc_delay_max)))
        +. (float_of_int exploration_depth
           *. (params.Netcore.Params.link_delay +. params.Netcore.Params.proc_delay_max))
      in
      (float_of_int epochs *. per_epoch) +. mrai
  in
  let time_certainty =
    if certified_event && depth_exact && epochs = 1 && time_bound_s < infinity
    then Certified
    else Heuristic
  in
  let updates_bound =
    (* bgpsim-lint: allow D004 — infinity is an exact sentinel, not a computed time *)
    if mrai_rounds = infinity then infinity
    else
      float_of_int epochs
      *. (2. *. float_of_int (Topo.Graph.n_edges graph))
      *. 2. *. mrai_rounds
  in
  {
    n_nodes = n;
    exploration_depth;
    depth_exact;
    rank_max;
    paths_total;
    mrai_rounds;
    time_bound_s;
    time_certainty;
    updates_bound;
    epochs;
  }

let check ?(include_heuristic = false) t ~convergence_time ~updates_sent =
  let enforce_time =
    t.time_bound_s < infinity
    && (t.time_certainty = Certified || include_heuristic)
  in
  let violations = ref [] in
  if enforce_time && convergence_time > t.time_bound_s then
    violations :=
      {
        what = "convergence-time";
        bound = t.time_bound_s;
        actual = convergence_time;
      }
      :: !violations;
  if include_heuristic && t.updates_bound < infinity
     && float_of_int updates_sent > t.updates_bound
  then
    violations :=
      {
        what = "updates-sent";
        bound = t.updates_bound;
        actual = float_of_int updates_sent;
      }
      :: !violations;
  List.rev !violations

let pp_count fmt x =
  (* bgpsim-lint: allow D004 — infinity is an exact sentinel, not a computed time *)
  if x = infinity then Format.fprintf fmt "unbounded"
  else if x < 1e15 then Format.fprintf fmt "%.0f" x
  else Format.fprintf fmt "%.3g" x

let pp fmt t =
  Format.fprintf fmt
    "bounds: depth<=%d%s rank<=%a paths<=%a rounds<=%a@\n\
    \  time<=%s (%s) updates<=%a (heuristic) epochs=%d"
    t.exploration_depth
    (if t.depth_exact then "" else " (generic)")
    pp_count t.rank_max pp_count t.paths_total pp_count t.mrai_rounds
    (* bgpsim-lint: allow D004 — infinity is an exact sentinel, not a computed time *)
    (if t.time_bound_s = infinity then "unbounded"
     else Printf.sprintf "%.2fs" t.time_bound_s)
    (certainty_name t.time_certainty)
    pp_count t.updates_bound t.epochs
