(** Static convergence-bound certification.

    For a (topology, policy, destination, MRAI) instance the analyzer
    derives worst-case exploration bounds before any event is
    scheduled, and {!check} compares a finished run against them —
    {!Experiment.run} does this automatically when its pre-flight mode
    is on, flagging any run that exceeds its certified bound.

    Derivations (DESIGN.md §11):

    - {b exploration depth}: every announced AS path is a permitted
      simple path ending at the origin, so its hop count is bounded by
      the longest permitted path (exact when enumeration completed) and
      by [n - 1] always.
    - {b path-rank bound}: a node's successive best routes are drawn
      from its permitted-path set; for a recognized [n]-clique the set
      has the closed form [sum_(k=0..n-2) (n-2)!/(n-2-k)!] — the
      [O((n-1)!)] growth the paper's T_down experiments probe.
    - {b MRAI-round bound}: announcements to one neighbor are spaced at
      least one (jittered) MRAI interval apart, and under monotone
      T_down/T_up exploration each node announces each permitted path
      at most once, so convergence lasts at most [rank_max + 2] MRAI
      rounds plus processing and propagation slack.  The time bound is
      [Certified] only for such monotone events on an instance whose
      path sets were fully enumerated; everything else is reported as
      [Heuristic] and not enforced by default. *)

type certainty = Certified | Heuristic

type violation = { what : string; bound : float; actual : float }

type t = {
  n_nodes : int;
  exploration_depth : int;
      (** max hops of any announceable AS path (certified upper bound) *)
  depth_exact : bool;
      (** [true] when derived from a complete path enumeration (or a
          recognized clique) rather than the generic [n - 1] cap *)
  rank_max : float;
      (** max permitted paths at any single node; [infinity] when not
          derivable *)
  paths_total : float;
      (** permitted paths across all nodes; [infinity] when not
          derivable *)
  mrai_rounds : float;  (** [rank_max + 2]; [infinity] when unknown *)
  time_bound_s : float;
      (** upper bound on convergence time (seconds after injection);
          [infinity] when not derivable *)
  time_certainty : certainty;
  updates_bound : float;
      (** upper bound on post-failure announcements (always
          [Heuristic]) *)
  epochs : int;
      (** scripted fault steps assumed to each restart exploration;
          1 for the single-event families *)
}

val clique_rank_bound : int -> float
(** [clique_rank_bound n] is the number of simple paths from a
    non-origin node to the origin of an [n]-clique:
    [sum_(k=0..n-2) (n-2)!/(n-2-k)!], computed in floating point so
    the [O((n-1)!)] growth never overflows.  [n >= 2]. *)

val derive :
  graph:Topo.Graph.t ->
  origin:int ->
  mrai:float ->
  params:Netcore.Params.t ->
  ?enumeration:Spvp.enumeration ->
  ?clique:int ->
  ?epochs:int ->
  ?certified_event:bool ->
  unit ->
  t
(** [clique], when the topology is a recognized [n]-clique, enables the
    closed-form rank bound even when enumeration was skipped or blown.
    [epochs] (default 1) scales the time/update bounds for scripted
    scenarios.  [certified_event] (default false) asserts the event is
    a monotone-exploration family (T_down/T_up), enabling a
    [Certified] time bound. *)

val check :
  ?include_heuristic:bool ->
  t ->
  convergence_time:float ->
  updates_sent:int ->
  violation list
(** Violations of the bounds a finished run actually exceeded.  By
    default only [Certified] bounds are enforced;
    [include_heuristic = true] also reports heuristic exceedances. *)

val certainty_name : certainty -> string

val pp : Format.formatter -> t -> unit
