(** Canonical SPVP instances for tests, CI smoke checks and the CLI's
    [--fixture] flag.

    [bad_gadget] is Griffin & Wilfong's BAD GADGET: origin 0 with three
    mutually connected neighbors, each preferring the 2-hop route
    through its clockwise neighbor over its own direct route — the
    circular envy whose dispute wheel the analyzer must flag [Unsafe].
    [good_gadget] is the identical topology under shortest-path
    preferences, which the analyzer must certify [Safe]. *)

type instance = {
  label : string;
  graph : Topo.Graph.t;
  policy : Bgp.Policy.t;
  origin : int;
}

val bad_gadget : unit -> instance

val good_gadget : unit -> instance

val all : unit -> instance list

val find : string -> (instance, string) result
(** Lookup by [label]; the error lists the known labels. *)
