(** Static linting of fault scenarios.

    Runs entirely before the simulator: resolution errors (dangling
    node/link references, invalid times — shared with
    {!Faults.Scenario.resolution_issues}), epoch analysis over the
    deterministic expansion of the script (shadowed fail/recover
    pairs, overlapping same-instant epochs, crash/restart mismatches,
    no-op session resets), and cut analysis predicting the intervals
    during which nodes are {e guaranteed} partitioned from the
    destination — so a doomed script is diagnosed without burning a
    simulation run. *)

type severity = Error | Warning | Info

type issue = { severity : severity; code : string; message : string }
(** [code] is a stable machine-readable slug (e.g. ["dangling-ref"],
    ["shadowed-fail"], ["partition"]); [message] is for humans. *)

type partition = {
  from_ : float;  (** seconds after the injection instant *)
  until : float option;
      (** [None]: never restored by the script — a permanent cut *)
  nodes : int list;
      (** live nodes predicted unreachable from the origin at some
          point of the interval (sorted) *)
}

type report = {
  issues : issue list;
  partitions : partition list;
  steps_analyzed : int;  (** deterministic steps covered by the walk *)
  random_clauses : int;
      (** clauses whose expansion is seed-dependent and therefore not
          statically walked *)
}

val lint : Faults.Scenario.t -> graph:Topo.Graph.t -> origin:int -> report
(** When resolution fails the epoch/cut analysis is skipped (the
    references cannot be trusted); otherwise the deterministic steps
    are replayed symbolically against link/node state.
    @raise Invalid_argument on an out-of-range [origin]. *)

val errors : report -> issue list

val has_errors : report -> bool

val severity_name : severity -> string

val pp : Format.formatter -> report -> unit
