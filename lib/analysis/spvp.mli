(** Static policy-safety analysis: the SPVP dispute digraph.

    Griffin, Shepherd and Wilfong's Stable Paths Problem framework
    ("The Stable Paths Problem and Interdomain Routing", ToN 2002)
    reduces BGP divergence to a static property of the instance: if no
    {e dispute wheel} — a cycle of nodes each preferring a path through
    the next over its own direct path — can be embedded in the
    (topology, policy, destination) triple, then SPVP (and hence the
    simulated BGP decision process) converges from every initial state
    and under every message ordering.

    This module enumerates the {e permitted paths} of the instance (the
    simple paths to the origin that survive the policy's import and
    export filters) and builds a dispute digraph over them with two arc
    families:

    - {e transmission} arcs [p -> (v u)p]: adopting [p] at [u] makes
      its one-hop extension available at neighbor [v];
    - {e dispute} arcs [p -> (v u)r], for [p, r] permitted at [u] with
      [p] strictly preferred: adopting [p] at [u] retracts the
      less-preferred [r] and with it [r]'s extensions at [u]'s
      neighbors.

    Every dispute wheel with spokes [Q_i] and rims [R_i] closes a cycle
    in this digraph (the rim preference yields a dispute arc onto the
    first rim hop of the previous spoke's extension; transmission arcs
    walk the rest of the rim), so an {b acyclic} digraph certifies the
    instance dispute-wheel-free and therefore {b safe}.  A cycle is
    reported as an [Unsafe] witness: a circular chain of permitted
    paths whose adoptions retract each other — the static shadow of a
    potential persistent oscillation.  (The converse does not hold: a
    cycle does not prove divergence, so [Unsafe] means "not certified,
    witness attached".)

    A separate Gao-Rexford conformance check certifies instances whose
    policy is {!Bgp.Policy.gao_rexford} over an acyclic customer–
    provider hierarchy (Gao & Rexford 2001), independent of path
    enumeration — the valley-free economic structure guarantees
    convergence even when the coarse digraph has cycles or the path
    sets are too large to enumerate. *)

type path = int list
(** A permitted path as the node sequence from its owner down to the
    origin, owner first ([[v; ...; origin]]); the origin's own path is
    [[origin]].  The AS path the owner received is the tail. *)

type enumeration = {
  per_node : path list array;
      (** permitted paths of each node, ranked best-first under the
          policy's [prefer]; the origin holds just [[origin]] *)
  total : int;  (** paths across all nodes *)
}

val permitted_paths :
  graph:Topo.Graph.t ->
  policy:Bgp.Policy.t ->
  origin:int ->
  max_paths:int ->
  (enumeration, string) result
(** Breadth-first closure from the origin: a path extends over an edge
    when the owner's export filter and the neighbor's import filter
    both pass and the neighbor is not already on the path.  [Error]
    when more than [max_paths] paths exist (the instance is too large
    to certify by enumeration).
    @raise Invalid_argument on an out-of-range origin. *)

type arc_kind =
  | Transmission  (** one-hop extension of the previous path *)
  | Dispute
      (** the previous path's adoption retracts the sub-path this one
          extends *)

type wheel = { cycle : (path * arc_kind) list }
(** A witness cycle in the dispute digraph: each element carries the
    arc kind leading to the {e next} element (cyclically). *)

type certificate =
  | Acyclic_dispute_digraph of { paths : int; arcs : int }
      (** no dispute wheel embeds: safe by GSW *)
  | Gao_rexford_conformant
      (** valley-free policy over an acyclic customer-provider
          hierarchy: safe by Gao-Rexford *)

type verdict =
  | Safe of certificate
  | Unsafe of wheel
  | Unknown of string  (** analysis budget exhausted; reason attached *)

type t = {
  verdict : verdict;
  enumeration : enumeration option;
      (** [Some] whenever path enumeration completed, even under an
          [Unsafe] verdict — the bound derivations reuse it *)
  unreachable : int list;
      (** nodes with no permitted path to the origin: statically
          destination-unreachable under this policy *)
}

val check_gao_rexford :
  graph:Topo.Graph.t ->
  rel:(int -> int -> Bgp.Policy.relationship) ->
  (unit, string) result
(** [Ok] when [rel] is consistent (mirror views agree on every edge)
    and the provider-to-customer digraph is acyclic; [Error] describes
    the offending edge or customer-provider cycle. *)

val analyze :
  ?max_paths:int ->
  ?max_arcs:int ->
  ?gr_rel:(int -> int -> Bgp.Policy.relationship) ->
  graph:Topo.Graph.t ->
  policy:Bgp.Policy.t ->
  origin:int ->
  unit ->
  t
(** Full safety analysis.  Defaults: [max_paths = 50_000],
    [max_arcs = 2_000_000].  [gr_rel], when given, asserts that
    [policy] is {!Bgp.Policy.gao_rexford} over that relationship
    oracle, enabling the Gao-Rexford certificate as a fallback when
    enumeration blows the budget or the coarse digraph is cyclic.
    @raise Invalid_argument on an out-of-range origin. *)

val verdict_name : verdict -> string
(** ["safe"], ["unsafe"] or ["unknown"]. *)

val pp_path : Format.formatter -> path -> unit
(** Paper style: [(3 1 0)]. *)

val pp_wheel : Format.formatter -> wheel -> unit

val pp : Format.formatter -> t -> unit
