type path = int list

type enumeration = { per_node : path list array; total : int }

type arc_kind = Transmission | Dispute

type wheel = { cycle : (path * arc_kind) list }

type certificate =
  | Acyclic_dispute_digraph of { paths : int; arcs : int }
  | Gao_rexford_conformant

type verdict = Safe of certificate | Unsafe of wheel | Unknown of string

type t = {
  verdict : verdict;
  enumeration : enumeration option;
  unreachable : int list;
}

(* The candidate a node ranks for a stored path [v :: tail]: the AS path
   it received is [tail], from peer [hd tail]. *)
let candidate_of ~table = function
  | _ :: (peer :: _ as tail) ->
      { Bgp.Policy.peer; path = Bgp.As_path.of_list ~table tail }
  | _ -> invalid_arg "Spvp.candidate_of: origin path has no candidate"

let permitted_paths ~graph ~(policy : Bgp.Policy.t) ~origin ~max_paths =
  let n = Topo.Graph.n_nodes graph in
  if origin < 0 || origin >= n then
    invalid_arg "Spvp.permitted_paths: origin out of range";
  (* local arena: the enumeration re-interns shared suffixes constantly,
     and the analysis should not grow the domain's default table *)
  let table = Bgp.As_path.Table.create () in
  let per_node = Array.make n [] in
  per_node.(origin) <- [ [ origin ] ];
  let total = ref 1 in
  let q = Queue.create () in
  Queue.add [ origin ] q;
  let blown = ref false in
  while (not !blown) && not (Queue.is_empty q) do
    let p = Queue.pop q in
    let u = List.hd p in
    let learned_from =
      match p with _ :: next :: _ -> Some next | _ -> None
    in
    List.iter
      (fun v ->
        if (not !blown) && not (List.mem v p) then
          if policy.export_ok ~self:u ~to_peer:v ~learned_from then begin
            let cand =
              { Bgp.Policy.peer = u; path = Bgp.As_path.of_list ~table p }
            in
            if policy.import_ok ~self:v cand then begin
              let pv = v :: p in
              per_node.(v) <- pv :: per_node.(v);
              incr total;
              if !total > max_paths then blown := true else Queue.add pv q
            end
          end)
      (Topo.Graph.neighbors graph u)
  done;
  if !blown then
    Error
      (Printf.sprintf "path enumeration exceeded the %d-path budget" max_paths)
  else begin
    (* rank each node's permitted paths best-first *)
    Array.iteri
      (fun v ps ->
        if v <> origin then
          per_node.(v) <-
            List.sort
              (fun p1 p2 ->
                policy.prefer ~self:v (candidate_of ~table p1)
                  (candidate_of ~table p2))
              ps)
      per_node;
    Ok { per_node; total = !total }
  end

(* --- generic digraph cycle detection (iterative, witness-reporting) --- *)

(* Returns a cycle as a node list [v0; v1; ...; vk] with arcs
   v0 -> v1 -> ... -> vk -> v0, or None when the digraph is acyclic. *)
let find_cycle ~n ~succ =
  let color = Array.make n 0 (* 0 white, 1 gray, 2 black *) in
  let found = ref None in
  let gray = ref [] (* current DFS path, top first *) in
  let s = ref 0 in
  while !found = None && !s < n do
    if color.(!s) = 0 then begin
      let stack = Stack.create () in
      Stack.push (!s, ref (succ !s)) stack;
      color.(!s) <- 1;
      gray := [ !s ];
      while (not (Stack.is_empty stack)) && !found = None do
        let u, rest = Stack.top stack in
        match !rest with
        | [] ->
            ignore (Stack.pop stack);
            color.(u) <- 2;
            gray := List.tl !gray
        | w :: tl -> (
            rest := tl;
            if color.(w) = 1 then begin
              (* back edge: the gray path from [w] up to the top of the
                 stack, plus the arc back to [w], closes the cycle *)
              let rec take acc = function
                | x :: _ when x = w -> w :: acc
                | x :: r -> take (x :: acc) r
                | [] -> assert false
              in
              found := Some (take [] !gray)
            end
            else if color.(w) = 0 then begin
              color.(w) <- 1;
              gray := w :: !gray;
              Stack.push (w, ref (succ w)) stack
            end)
      done
    end;
    incr s
  done;
  !found

(* --- dispute digraph --- *)

exception Arc_budget

(* Build the digraph and look for a cycle.  Dispute arcs are encoded
   through per-node virtual chain vertices to keep the arc count linear:
   for ranked paths [p0; ...; pk] at a node, virtual vertex [d_j]
   (1 <= j <= k) points at the transmission extensions ("children") of
   [p_j] and at [d_(j+1)], and each [p_(j-1)] points at [d_j] — so
   [p_i] reaches exactly the extensions of every strictly less
   preferred sibling, without materializing the quadratic arc set. *)
let dispute_digraph (enum : enumeration) ~max_arcs =
  let tbl = Hashtbl.create 1024 in
  let acc = ref [] and n_real = ref 0 in
  Array.iter
    (List.iter (fun p ->
         Hashtbl.replace tbl p !n_real;
         acc := p :: !acc;
         incr n_real))
    enum.per_node;
  let paths = Array.of_list (List.rev !acc) in
  let n_real = !n_real in
  let n_virtual =
    Array.fold_left
      (fun a ps -> a + Stdlib.max 0 (List.length ps - 1))
      0 enum.per_node
  in
  let total = n_real + n_virtual in
  let succ = Array.make total [] in
  let children = Array.make n_real [] in
  let arcs = ref 0 in
  let add_arc u v =
    succ.(u) <- v :: succ.(u);
    incr arcs;
    if !arcs > max_arcs then raise Arc_budget
  in
  (* transmission arcs (and the child index they induce) *)
  Array.iteri
    (fun id p ->
      match p with
      | _ :: (_ :: _ as tail) ->
          let pid = Hashtbl.find tbl tail in
          add_arc pid id;
          children.(pid) <- id :: children.(pid)
      | _ -> ())
    paths;
  (* dispute arcs through the virtual chains *)
  let next_virtual = ref n_real in
  Array.iter
    (fun ps ->
      match List.map (Hashtbl.find tbl) ps with
      | [] | [ _ ] -> ()
      | ids ->
          let ids = Array.of_list ids in
          let k = Array.length ids - 1 in
          let virtuals = Array.init k (fun _ -> let v = !next_virtual in incr next_virtual; v) in
          for j = 1 to k do
            let d = virtuals.(j - 1) in
            add_arc ids.(j - 1) d;
            List.iter (add_arc d) children.(ids.(j));
            if j < k then add_arc d virtuals.(j)
          done)
    enum.per_node;
  (paths, n_real, total, succ, !arcs)

(* Collapse a raw digraph cycle (mixing path vertices and virtual chain
   vertices) into the permitted-path witness: a real-to-real arc is a
   transmission arc; a run of virtual vertices stands for one dispute
   arc onto the next real vertex. *)
let to_wheel paths n_real cycle =
  let rec rotate c guard =
    match c with
    | v :: rest when v >= n_real ->
        if guard = 0 then assert false else rotate (rest @ [ v ]) (guard - 1)
    | _ -> c
  in
  let c = rotate cycle (List.length cycle) in
  let rec skip_virtuals = function
    | w :: tl when w >= n_real -> skip_virtuals tl
    | l -> l
  in
  let rec go = function
    | [] -> []
    | v :: rest ->
        let kind =
          match rest with
          | w :: _ when w >= n_real -> Dispute
          | _ -> Transmission (* next real vertex, or wrap to the head *)
        in
        (paths.(v), kind) :: go (skip_virtuals rest)
  in
  { cycle = go c }

(* --- Gao-Rexford conformance --- *)

let check_gao_rexford ~graph ~rel =
  let exception Bad of string in
  try
    List.iter
      (fun (a, b) ->
        let consistent =
          match ((rel a b : Bgp.Policy.relationship), rel b a) with
          | Bgp.Policy.Customer, Bgp.Policy.Provider
          | Bgp.Policy.Provider, Bgp.Policy.Customer
          | Bgp.Policy.Peer_rel, Bgp.Policy.Peer_rel ->
              true
          | _ -> false
        in
        if not consistent then
          raise
            (Bad
               (Printf.sprintf
                  "inconsistent relationship views on edge (%d,%d)" a b)))
      (Topo.Graph.edges graph);
    (* the provider-to-customer digraph must be acyclic: an AS that is
       (transitively) its own provider breaks the Gao-Rexford argument *)
    let succ v =
      List.filter
        (fun w -> rel v w = Bgp.Policy.Customer)
        (Topo.Graph.neighbors graph v)
    in
    (match find_cycle ~n:(Topo.Graph.n_nodes graph) ~succ with
    | None -> ()
    | Some cycle ->
        raise
          (Bad
             (Printf.sprintf "customer-provider cycle: %s"
                (String.concat " -> "
                   (List.map string_of_int (cycle @ [ List.hd cycle ]))))));
    Ok ()
  with Bad msg -> Error msg

(* --- full analysis --- *)

let analyze ?(max_paths = 50_000) ?(max_arcs = 2_000_000) ?gr_rel ~graph
    ~policy ~origin () =
  let gr_safe =
    match gr_rel with
    | None -> false
    | Some rel -> check_gao_rexford ~graph ~rel = Ok ()
  in
  match permitted_paths ~graph ~policy ~origin ~max_paths with
  | Error reason ->
      let verdict =
        if gr_safe then Safe Gao_rexford_conformant else Unknown reason
      in
      { verdict; enumeration = None; unreachable = [] }
  | Ok enum ->
      let unreachable =
        List.filter
          (fun v -> enum.per_node.(v) = [])
          (Topo.Graph.nodes graph)
      in
      let verdict =
        match dispute_digraph enum ~max_arcs with
        | exception Arc_budget ->
            if gr_safe then Safe Gao_rexford_conformant
            else
              Unknown
                (Printf.sprintf
                   "dispute digraph exceeded the %d-arc budget" max_arcs)
        | paths, n_real, total, succ, arcs -> (
            match find_cycle ~n:total ~succ:(fun u -> succ.(u)) with
            | None ->
                Safe (Acyclic_dispute_digraph { paths = n_real; arcs })
            | Some cycle ->
                if gr_safe then Safe Gao_rexford_conformant
                else Unsafe (to_wheel paths n_real cycle))
      in
      { verdict; enumeration = Some enum; unreachable }

(* --- rendering --- *)

let verdict_name = function
  | Safe _ -> "safe"
  | Unsafe _ -> "unsafe"
  | Unknown _ -> "unknown"

let pp_path fmt p =
  Format.fprintf fmt "(%s)" (String.concat " " (List.map string_of_int p))

let pp_wheel fmt { cycle } =
  match cycle with
  | [] -> Format.pp_print_string fmt "<empty>"
  | (first, _) :: _ ->
      List.iter
        (fun (p, k) ->
          Format.fprintf fmt "%a %s " pp_path p
            (match k with Transmission -> "=>" | Dispute -> "~>"))
        cycle;
      pp_path fmt first

let pp fmt t =
  (match t.verdict with
  | Safe (Acyclic_dispute_digraph { paths; arcs }) ->
      Format.fprintf fmt
        "safe: dispute digraph acyclic (%d permitted paths, %d arcs)" paths
        arcs
  | Safe Gao_rexford_conformant ->
      Format.fprintf fmt
        "safe: Gao-Rexford conformant (valley-free over an acyclic \
         customer-provider hierarchy)"
  | Unsafe w ->
      Format.fprintf fmt "unsafe: dispute cycle %a" pp_wheel w
  | Unknown reason -> Format.fprintf fmt "unknown: %s" reason);
  if t.unreachable <> [] then
    Format.fprintf fmt
      "@.note: %d node(s) have no permitted path to the origin: %s"
      (List.length t.unreachable)
      (String.concat ", " (List.map string_of_int t.unreachable))
