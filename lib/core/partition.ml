type t = { graph : Topo.Graph.t; k : int; assignment : int array }

(* Greedy region growth.  Centers are spread by repeated
   farthest-point placement (the classic k-center heuristic), then the
   regions grow round-robin, each round claiming the unassigned node
   with the most edges into the claiming region — the node whose
   assignment elsewhere would cost the most cut edges.  All ties break
   toward the smallest node id so the result is a pure function of
   (seed, graph, k). *)
let compute ~seed ~graph ~k =
  let n = Topo.Graph.n_nodes graph in
  if k < 1 then invalid_arg "Partition.compute: k must be positive";
  if k > n then
    invalid_arg
      (Printf.sprintf "Partition.compute: k = %d exceeds %d nodes" k n);
  let assignment = Array.make n 0 in
  if k > 1 then begin
    Array.fill assignment 0 n (-1);
    let rng = Dessim.Rng.split (Dessim.Rng.create ~seed) ~label:"partition" in
    let centers = Array.make k 0 in
    centers.(0) <- Dessim.Rng.int rng n;
    (* distance to the nearest already-placed center *)
    let nearest = Topo.Graph.bfs_distances graph ~from:centers.(0) in
    for c = 1 to k - 1 do
      let best = ref (-1) and best_d = ref (-1) in
      for v = 0 to n - 1 do
        (* centers are at distance 0 from themselves, so any [v] with
           [nearest.(v) > 0] is not yet a center *)
        if nearest.(v) > !best_d then begin
          best := v;
          best_d := nearest.(v)
        end
      done;
      centers.(c) <- !best;
      let d = Topo.Graph.bfs_distances graph ~from:!best in
      for v = 0 to n - 1 do
        if d.(v) < nearest.(v) then nearest.(v) <- d.(v)
      done
    done;
    let sizes = Array.make k 0 in
    Array.iteri
      (fun c v ->
        assignment.(v) <- c;
        sizes.(c) <- 1)
      centers;
    let cap = (n + k - 1) / k in
    let assigned = ref k in
    while !assigned < n do
      let placed_this_round = ref false in
      for c = 0 to k - 1 do
        if sizes.(c) < cap then begin
          (* unassigned node with the most edges into region c *)
          let best = ref (-1) and best_links = ref 0 in
          for v = 0 to n - 1 do
            if assignment.(v) < 0 then begin
              let links =
                List.fold_left
                  (fun acc u -> if assignment.(u) = c then acc + 1 else acc)
                  0
                  (Topo.Graph.neighbors graph v)
              in
              if links > !best_links then begin
                best := v;
                best_links := links
              end
            end
          done;
          if !best >= 0 then begin
            assignment.(!best) <- c;
            sizes.(c) <- sizes.(c) + 1;
            incr assigned;
            placed_this_round := true
          end
        end
      done;
      if not !placed_this_round then begin
        (* no region can grow along an edge (disconnected leftovers, or
           every region at cap): smallest orphan joins the smallest
           region, so the loop always terminates with a full cover *)
        let v = ref 0 in
        while assignment.(!v) >= 0 do
          incr v
        done;
        let c = ref 0 in
        for c' = 1 to k - 1 do
          if sizes.(c') < sizes.(!c) then c := c'
        done;
        assignment.(!v) <- !c;
        sizes.(!c) <- sizes.(!c) + 1;
        incr assigned
      end
    done
  end;
  { graph; k; assignment }

let k t = t.k

let assignment t = Array.copy t.assignment

let members t c =
  List.filter (fun v -> t.assignment.(v) = c) (Topo.Graph.nodes t.graph)

let cut t =
  List.filter
    (fun (a, b) -> t.assignment.(a) <> t.assignment.(b))
    (Topo.Graph.edges t.graph)

let lookahead t ~delay =
  let m = Array.make_matrix t.k t.k infinity in
  List.iter
    (fun (a, b) ->
      let pa = t.assignment.(a) and pb = t.assignment.(b) in
      let d = delay a b in
      if d < m.(pa).(pb) then begin
        m.(pa).(pb) <- d;
        m.(pb).(pa) <- d
      end)
    (cut t);
  m

let pp fmt t =
  let sizes = Array.make t.k 0 in
  Array.iter (fun c -> sizes.(c) <- sizes.(c) + 1) t.assignment;
  Format.fprintf fmt "%d partition(s), sizes [%s], cut %d" t.k
    (String.concat "; "
       (Array.to_list (Array.map string_of_int sizes)))
    (List.length (cut t))
