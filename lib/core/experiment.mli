(** One self-contained experiment: topology + failure event +
    enhancement + MRAI + seed, run end to end (routing simulation,
    traffic replay, loop scan) into {!Metrics.Run_metrics.t}.

    The topology/event conventions follow the paper:

    - [Clique n]: destination AS is node 0 ([T_down] withdraws it;
      [T_long] fails one of its links, picked by seed);
    - [B_clique n] (2n nodes): destination is node 0, [T_long] fails
      the direct core link [(0, n)], leaving the length-n chain as the
      backup path;
    - [Internet n]: a seeded AS-like graph; the destination is drawn
      among the lowest-degree (stub) nodes, and [T_long] fails a
      seed-chosen destination link that keeps the graph connected
      (redrawing the destination if it is single-homed);
    - [Waxman n] / [Glp n]: alternative random models with the same
      destination/link conventions as [Internet], for topology
      provenance studies;
    - [Custom]: caller-provided graph and origin. *)

type topology =
  | Clique of int
  | B_clique of int  (** the paper's size parameter; the graph has 2n nodes *)
  | Internet of int
  | Waxman of int  (** Waxman random graph (provenance studies) *)
  | Glp of int  (** GLP random graph (provenance studies) *)
  | Custom of { graph : Topo.Graph.t; origin : int; name : string }

type event_spec =
  | Tdown
  | Tlong  (** the topology's canonical long-path failure (see above) *)
  | Tlong_link of int * int  (** an explicit link *)
  | Tup  (** inverse of [Tdown]: the prefix appears (extension) *)
  | Trecover
      (** inverse of [Tlong]: the canonical link comes back after the
          network converged without it (extension) *)
  | Trecover_link of int * int
  | Scenario of Faults.Scenario.t
      (** a scripted fault schedule (see {!Faults.Scenario});
          destination selection follows the [Tdown] convention *)

type spec = {
  topology : topology;
  event : event_spec;
  enhancement : Bgp.Enhancement.t;
  mrai : float;
  seed : int;
  params : Netcore.Params.t;
  replay_tail : float;
      (** seconds of traffic kept flowing past convergence to catch
          loops that outlive the last sent message; the looping-ratio
          denominator still counts only packets sent during
          convergence *)
  invariants : Faults.Invariant.mode;
      (** runtime invariant checking for the routing simulation *)
  max_events : int;  (** per-run event budget (hang protection) *)
  max_vtime : float option;
      (** per-run virtual-time budget; [None] = unbounded *)
  max_wall_s : float option;
      (** per-run wall-clock budget covering the simulation {e and}
          the post-run analyses; [None] = unbounded.  An expired run
          terminates with {!Bgp.Routing_sim.Wall_budget} and its
          remaining analysis phases degrade to empty fallbacks. *)
  preflight : Analysis.Preflight.mode;
      (** static pre-flight analysis before the simulator starts:
          [Off] (default) skips it, [Warn] attaches the report to the
          run, [Strict] additionally raises
          {!Analysis.Preflight.Rejected} — before a single event is
          scheduled — when the instance is statically doomed (an
          [Unsafe] policy verdict or a scenario lint error such as a
          dangling link reference) *)
  partitions : int option;
      (** run the simulation on [k] space partitions via the
          conservative executor ({!Partition}, {!Netcore.Fabric});
          [None] (default) is the classic single-engine path.  The
          outcome and trace are byte-identical either way — this knob
          changes execution machinery, not results. *)
}

val default_spec : topology -> spec
(** [T_down], standard BGP, MRAI 30 s, seed 1, paper parameters,
    2 s replay tail, invariants off, 20 M event budget, no
    virtual-time or wall-clock budget, pre-flight off. *)

val topology_name : topology -> string

val event_name : event_spec -> string

val node_count : topology -> int

val resolve_raw : spec -> Topo.Graph.t * int * Bgp.Routing_sim.event
(** Like {!resolve} but without the scenario sanity check — what the
    static pre-flight runs on, so a broken script is diagnosed by the
    linter (all issues collected) instead of a first-error raise. *)

val resolve :
  spec -> Topo.Graph.t * int * Bgp.Routing_sim.event
(** The concrete graph, origin and failure event a spec denotes
    (deterministic in the seed).  Exposed for examples and tests.
    @raise Invalid_argument on specs that cannot be realized (e.g.
    [Tlong] on a topology where every candidate link disconnects the
    destination). *)

val analyze :
  ?max_paths:int ->
  ?policy:Bgp.Policy.t ->
  ?gr_rel:(int -> int -> Bgp.Policy.relationship) ->
  spec ->
  Analysis.Preflight.report
(** The static pre-flight report a spec denotes, without running the
    simulator: policy-safety verdict, scenario lint (when the event is
    a [Scenario]) and convergence bounds.  [policy] overrides the one
    the spec's enhancement configuration would use; [gr_rel] enables
    the Gao-Rexford fallback certificate (see {!Analysis.Spvp.analyze}).
    Clique topologies get the closed-form rank bound, and [Tdown]/[Tup]
    a [Certified] time bound. *)

(** Structured convergence status of a finished run: a run that hit an
    event or virtual-time budget is reported as [Non_converged] instead
    of hanging forever. *)
type status =
  | Completed
  | Non_converged of {
      termination : Bgp.Routing_sim.termination;
      events_executed : int;
      last_vtime : float;
    }

val status : Bgp.Routing_sim.outcome -> status

val status_name : status -> string

type run = {
  spec : spec;
  outcome : Bgp.Routing_sim.outcome;
  replay : Traffic.Replay.result;
  loops : Loopscan.Scanner.report;
  metrics : Metrics.Run_metrics.t;
  analysis : Analysis.Preflight.report option;
      (** the pre-flight report; [None] when [spec.preflight = Off] *)
  bound_violations : Analysis.Bounds.violation list;
      (** certified static bounds the finished run exceeded — always
          [] when the pre-flight was off or the run did not converge *)
}

val run :
  ?obs:Obs.Bus.t ->
  ?profile:Obs.Profile.t ->
  ?watchdog:Faults.Watchdog.t ->
  spec ->
  run
(** Runs the full pipeline.  [obs] (default {!Obs.Bus.off}) is threaded
    through the routing simulation {e and} the loop scanner, so a trace
    carries both live protocol events and post-hoc loop lifecycles;
    [profile] collects per-event-tag timings.  Every exit — converged
    or budget-exhausted — yields timed metrics: on non-converged runs
    the replay/scan analyses fall back to empty results if the
    truncated history cannot be analyzed.

    [watchdog] overrides the wall-clock watchdog the run would arm
    from [spec.max_wall_s] — the deterministic-test hook (inject one
    with a fake clock).  The watchdog covers the simulation and every
    post-run analysis phase: each phase re-checks expiry before
    starting and degrades to its empty fallback once the budget is
    gone. *)

val metrics : spec -> Metrics.Run_metrics.t
(** [metrics spec = (run spec).metrics]. *)
