(* Golden-trace oracle: canonical seeded runs whose trace digests are
   committed to the repository (test/golden_digests.expected) and
   asserted by test_golden and CI.  Any behavioral drift in the
   simulator — event order, timing, decision process — changes the
   digest and fails tier-1, not just metric-level drift.

   Regenerate after an intentional behavior change with:

     dune exec bin/bgpsim_cli.exe -- golden > test/golden_digests.expected
*)

type fixture = { name : string; spec : Experiment.spec }

let clique5_tdown =
  { name = "clique5-tdown"; spec = Experiment.default_spec (Clique 5) }

let bclique5_tlong =
  {
    name = "bclique5-tlong";
    spec = { (Experiment.default_spec (B_clique 5)) with event = Tlong };
  }

let chain6_withdraw =
  {
    name = "chain6-withdraw";
    spec =
      Experiment.default_spec
        (Custom
           { graph = Topo.Generators.chain 6; origin = 0; name = "chain-6" });
  }

let fixtures = [ clique5_tdown; bclique5_tlong; chain6_withdraw ]

let find name = List.find_opt (fun f -> f.name = name) fixtures

(* The canonical run for CI's uploaded artifact and the CLI acceptance
   check: `bgpsim_cli run --trace out.jsonl` on Clique 5 / T_down. *)
let canonical = clique5_tdown

(* [partitions] overrides the spec's partition count: the golden wall
   (and CI's partition-smoke step) re-derives the SAME committed
   digests on the space-partitioned executor — the digest files never
   fork per partition count, because the runs must not differ. *)
let events ?partitions f =
  let spec =
    match partitions with
    | None -> f.spec
    | Some _ -> { f.spec with Experiment.partitions = partitions }
  in
  let sink, contents = Obs.Sink.memory () in
  let obs = Obs.Bus.create ~sink () in
  let (_ : Experiment.run) = Experiment.run ~obs spec in
  contents ()

let digest ?partitions f = Obs.Trace_digest.of_events (events ?partitions f)

let digest_line ?partitions f =
  Printf.sprintf "%s %s" f.name (digest ?partitions f)

(* Full-mesh multi-prefix fixture: clique 5, every node originating its
   own prefix, node 0's prefix withdrawn.  Not an [Experiment.spec]
   (those are single-prefix), so it lives outside [fixtures]; its
   digest pins the per-prefix trace tagging, the packed-key RIB
   sharding and the batched MRAI release order. *)
let mesh_name = "clique5-mesh"

let mesh_events ?partitions () =
  let graph = Topo.Generators.clique 5 in
  let partitions =
    Option.map
      (fun k -> Partition.assignment (Partition.compute ~seed:1 ~graph ~k))
      partitions
  in
  let sink, contents = Obs.Sink.memory () in
  let obs = Obs.Bus.create ~sink () in
  let (_ : Bgp.Mesh_sim.outcome) =
    Bgp.Mesh_sim.run ~obs ?partitions ~graph ~victim:0 ~seed:1 ()
  in
  contents ()

let mesh_digest ?partitions () =
  Obs.Trace_digest.of_events (mesh_events ?partitions ())

let mesh_digest_line ?partitions () =
  Printf.sprintf "%s %s" mesh_name (mesh_digest ?partitions ())

let digest_lines ?partitions () =
  List.map (digest_line ?partitions) fixtures
  @ [ mesh_digest_line ?partitions () ]

(* Fixture-file format: one "<name> <hex-md5>" pair per line; blank
   lines and '#' comments are ignored. *)
let parse_expected text =
  String.split_on_char '\n' text
  |> List.filter_map (fun line ->
         let line = String.trim line in
         if line = "" || line.[0] = '#' then None
         else
           match String.index_opt line ' ' with
           | None -> None
           | Some i ->
               Some
                 ( String.sub line 0 i,
                   String.trim
                     (String.sub line (i + 1) (String.length line - i - 1)) ))
