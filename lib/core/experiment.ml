type topology =
  | Clique of int
  | B_clique of int
  | Internet of int
  | Waxman of int
  | Glp of int
  | Custom of { graph : Topo.Graph.t; origin : int; name : string }

type event_spec =
  | Tdown
  | Tlong
  | Tlong_link of int * int
  | Tup
  | Trecover
  | Trecover_link of int * int
  | Scenario of Faults.Scenario.t

type spec = {
  topology : topology;
  event : event_spec;
  enhancement : Bgp.Enhancement.t;
  mrai : float;
  seed : int;
  params : Netcore.Params.t;
  replay_tail : float;
  invariants : Faults.Invariant.mode;
  max_events : int;
  max_vtime : float option;
  max_wall_s : float option;
  preflight : Analysis.Preflight.mode;
  partitions : int option;
}

let default_spec topology =
  {
    topology;
    event = Tdown;
    enhancement = Bgp.Enhancement.Standard;
    mrai = 30.;
    seed = 1;
    params = Netcore.Params.default;
    replay_tail = 2.;
    invariants = Faults.Invariant.Off;
    max_events = 20_000_000;
    max_vtime = None;
    max_wall_s = None;
    preflight = Analysis.Preflight.Off;
    partitions = None;
  }

let event_name = function
  | Tdown -> "tdown"
  | Tlong | Tlong_link _ -> "tlong"
  | Tup -> "tup"
  | Trecover | Trecover_link _ -> "trecover"
  | Scenario s -> "scenario:" ^ Faults.Scenario.name s

let topology_name = function
  | Clique n -> Printf.sprintf "clique-%d" n
  | B_clique n -> Printf.sprintf "b-clique-%d" n
  | Internet n -> Printf.sprintf "internet-%d" n
  | Waxman n -> Printf.sprintf "waxman-%d" n
  | Glp n -> Printf.sprintf "glp-%d" n
  | Custom { name; _ } -> name

let node_count = function
  | Clique n -> n
  | B_clique n -> 2 * n
  | Internet n | Waxman n | Glp n -> n
  | Custom { graph; _ } -> Topo.Graph.n_nodes graph

(* Destination links whose failure keeps the destination reachable. *)
let survivable_links graph origin =
  List.filter
    (fun peer ->
      let without = Topo.Graph.remove_edge graph origin peer in
      Topo.Graph.is_connected without)
    (Topo.Graph.neighbors graph origin)
  |> List.map (fun peer -> (origin, peer))

(* Like [resolve] but without the scenario sanity check, so the static
   pre-flight can diagnose a broken script (with every issue collected)
   before anything raises. *)
let resolve_raw spec =
  let rng = Dessim.Rng.create ~seed:(spec.seed + 0x7_0b0) in
  let graph, origin =
    match spec.topology with
    | Clique n -> (Topo.Generators.clique n, 0)
    | B_clique n -> (Topo.Generators.b_clique n, 0)
    | Internet _ | Waxman _ | Glp _ ->
        let graph =
          match spec.topology with
          | Internet n -> Topo.Internet.generate ~seed:spec.seed n
          | Waxman n -> Topo.Random_graphs.waxman ~seed:spec.seed n
          | Glp n -> Topo.Random_graphs.glp ~m:2 ~seed:spec.seed n
          | Clique _ | B_clique _ | Custom _ -> assert false
        in
        let stubs = Topo.Graph.min_degree_nodes graph in
        let candidates =
          match spec.event with
          | Tlong | Trecover ->
              (* the link event must leave the destination reachable
                 without it: among the nodes with a survivable link,
                 keep the lowest-degree ones (stubs are often
                 single-homed and thus excluded) *)
              let survivable =
                List.filter
                  (fun v -> survivable_links graph v <> [])
                  (Topo.Graph.nodes graph)
              in
              let min_degree =
                List.fold_left
                  (fun acc v -> Stdlib.min acc (Topo.Graph.degree graph v))
                  max_int survivable
              in
              List.filter
                (fun v -> Topo.Graph.degree graph v = min_degree)
                survivable
          | Tdown | Tup | Tlong_link _ | Trecover_link _ | Scenario _ -> stubs
        in
        if candidates = [] then
          invalid_arg "Experiment.resolve: no viable destination AS";
        (graph, Dessim.Rng.pick rng candidates)
    | Custom { graph; origin; _ } -> (graph, origin)
  in
  (* canonical link for the Tlong/Trecover families: B-Clique uses the
     paper's (0, n) core link, other topologies a seed-chosen
     destination link whose loss keeps the graph connected *)
  let canonical_link () =
    match spec.topology with
    | B_clique n -> (0, n)
    | Clique _ | Internet _ | Waxman _ | Glp _ | Custom _ -> (
        match survivable_links graph origin with
        | [] ->
            invalid_arg
              "Experiment.resolve: no destination link survives the event"
        | links -> Dessim.Rng.pick rng links)
  in
  let event =
    match spec.event with
    | Tdown -> Bgp.Routing_sim.Tdown
    | Tup -> Bgp.Routing_sim.Tup
    | Tlong_link (a, b) -> Bgp.Routing_sim.Tlong { a; b }
    | Trecover_link (a, b) -> Bgp.Routing_sim.Trecover { a; b }
    | Tlong ->
        let a, b = canonical_link () in
        Bgp.Routing_sim.Tlong { a; b }
    | Trecover ->
        let a, b = canonical_link () in
        Bgp.Routing_sim.Trecover { a; b }
    | Scenario s -> Bgp.Routing_sim.Scenario s
  in
  (graph, origin, event)

let resolve spec =
  let ((graph, _, _) as resolved) = resolve_raw spec in
  (match spec.event with
  | Scenario s -> Faults.Scenario.validate s ~graph
  | Tdown | Tup | Tlong | Trecover | Tlong_link _ | Trecover_link _ -> ());
  resolved

(* Pre-flight inputs a spec statically determines: the clique hint
   enables the closed-form rank bound, and only the monotone
   T_down/T_up families yield a [Certified] time bound. *)
let preflight_hints spec =
  let clique =
    match spec.topology with Clique n when n >= 2 -> Some n | _ -> None
  in
  let certified_event =
    match spec.event with
    | Tdown | Tup -> true
    | Tlong | Tlong_link _ | Trecover | Trecover_link _ | Scenario _ -> false
  in
  let scenario = match spec.event with Scenario s -> Some s | _ -> None in
  (clique, certified_event, scenario)

let analyze ?max_paths ?policy ?gr_rel spec =
  let graph, origin, _ = resolve_raw spec in
  let policy =
    match policy with
    | Some p -> p
    | None ->
        (Bgp.Config.of_enhancement ~mrai:spec.mrai spec.enhancement)
          .Bgp.Config.policy
  in
  let clique, certified_event, scenario = preflight_hints spec in
  Analysis.Preflight.analyze ?max_paths ?gr_rel ?scenario ?clique
    ~certified_event ~graph ~policy ~origin ~mrai:spec.mrai
    ~params:spec.params ()

type run = {
  spec : spec;
  outcome : Bgp.Routing_sim.outcome;
  replay : Traffic.Replay.result;
  loops : Loopscan.Scanner.report;
  metrics : Metrics.Run_metrics.t;
  analysis : Analysis.Preflight.report option;
  bound_violations : Analysis.Bounds.violation list;
}

type status =
  | Completed
  | Non_converged of {
      termination : Bgp.Routing_sim.termination;
      events_executed : int;
      last_vtime : float;
    }

let status (outcome : Bgp.Routing_sim.outcome) =
  if outcome.converged then Completed
  else
    Non_converged
      {
        termination = outcome.termination;
        events_executed = outcome.events_executed;
        last_vtime = outcome.convergence_end;
      }

let status_name = function
  | Completed -> "completed"
  | Non_converged { termination; events_executed; last_vtime } ->
      Printf.sprintf "non-converged (%s after %d events, vtime %.1f)"
        (Bgp.Routing_sim.termination_name termination)
        events_executed last_vtime

(* Analysis fallbacks for runs cut off by a budget: a truncated FIB
   history can leave the replay window degenerate or the scanner's
   starting state inside a loop, and both raise [Invalid_argument].
   Such a run must still produce (timed) metrics — dropping it would
   bias sweeps toward the well-behaved runs — so the analyses degrade
   to empty results instead of propagating. *)
let empty_replay : Traffic.Replay.result =
  {
    sent = 0;
    sent_for_ratio = 0;
    delivered = 0;
    unreachable = 0;
    exhausted = 0;
    first_exhaustion = None;
    last_exhaustion = None;
    exhaustion_times = [||];
  }

let empty_loops : Loopscan.Scanner.report =
  {
    loops = [];
    first_loop_birth = None;
    last_loop_death = None;
    max_concurrent = 0;
  }

let run ?obs ?profile ?watchdog spec =
  let wall_start = Unix.gettimeofday () in
  (* One watchdog covers the whole run — simulation AND the post-run
     analysis passes, which previously had no budget at all (a wedged
     replay could hang past every event/vtime limit).  Tests inject
    [watchdog] with a fake clock; normal callers get one armed from
    [spec.max_wall_s]. *)
  let wd =
    match watchdog with
    | Some wd -> wd
    | None -> Faults.Watchdog.create ?max_wall_s:spec.max_wall_s ()
  in
  let graph, origin, event = resolve_raw spec in
  let config = Bgp.Config.of_enhancement ~mrai:spec.mrai spec.enhancement in
  let analysis =
    match spec.preflight with
    | Analysis.Preflight.Off -> None
    | Analysis.Preflight.Warn | Analysis.Preflight.Strict ->
        let clique, certified_event, scenario = preflight_hints spec in
        let report =
          Analysis.Preflight.analyze ?scenario ?clique ~certified_event
            ~graph ~policy:config.Bgp.Config.policy ~origin ~mrai:spec.mrai
            ~params:spec.params ()
        in
        (* in Strict mode a statically-doomed instance is rejected here,
           before a single event is scheduled *)
        Analysis.Preflight.gate spec.preflight report;
        Some report
  in
  (* The node-to-partition assignment is derived from the run's own
     seed, so a partitioned spec is as reproducible as a sequential
     one; the executor guarantees the outcome is identical either
     way. *)
  let partitions =
    match spec.partitions with
    | None -> None
    | Some k ->
        Some
          (Partition.assignment (Partition.compute ~seed:spec.seed ~graph ~k))
  in
  let outcome =
    Bgp.Routing_sim.run ~params:spec.params ~config
      ~max_events:spec.max_events ?max_vtime:spec.max_vtime
      ~invariants:spec.invariants ?obs ?profile ~watchdog:wd ?partitions
      ~graph ~origin ~event ~seed:spec.seed ()
  in
  let fib = Netcore.Trace.fib outcome.trace in
  let window_end = outcome.convergence_end +. spec.replay_tail in
  (* Each analysis phase re-checks the watchdog before starting: a run
     that exhausted its wall budget (or does so between phases) skips
     straight to the fallback instead of piling analysis time on top. *)
  let tolerant f fallback =
    if Faults.Watchdog.expired wd then fallback
    else if outcome.converged then f ()
    else try f () with Invalid_argument _ -> fallback
  in
  let replay =
    tolerant
      (fun () ->
        Traffic.Replay.run ~fib ~origin ~n:(Topo.Graph.n_nodes graph)
          ~link_delay:spec.params.link_delay ~ttl:spec.params.ttl
          ~rate:spec.params.pkt_rate
          ~window:(outcome.t_fail, window_end)
          ~seed:(spec.seed + 0x7ea) ~ratio_cutoff:outcome.convergence_end ())
      empty_replay
  in
  let loops =
    tolerant
      (fun () -> Loopscan.Scanner.scan ?obs ~fib ~origin ~from:outcome.t_fail ())
      empty_loops
  in
  let metrics =
    Metrics.Run_metrics.make
      ~wall_clock_s:(Unix.gettimeofday () -. wall_start)
      ~outcome ~replay ~loops ~loops_until:window_end ()
  in
  let bound_violations =
    match analysis with
    | Some report when outcome.converged && not (Faults.Watchdog.expired wd)
      ->
        Analysis.Bounds.check report.Analysis.Preflight.bounds
          ~convergence_time:(Bgp.Routing_sim.convergence_time outcome)
          ~updates_sent:outcome.updates_after_fail
    | Some _ | None -> []
  in
  { spec; outcome; replay; loops; metrics; analysis; bound_violations }

let metrics spec = (run spec).metrics
