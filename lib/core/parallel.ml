exception Rng_hygiene of string

type t = {
  jobs : int;
  check_rng : bool;
  queue : (unit -> unit) Queue.t;
  mutex : Mutex.t;
  work_ready : Condition.t;
  batch_done : Condition.t;
  mutable closing : bool;
  mutable shut : bool;
  mutable workers : unit Domain.t list;
}

let default_jobs () = Stdlib.max 1 (Domain.recommended_domain_count () - 1)

(* The global [Random] state advances on every draw, so comparing
   snapshots taken around a run detects any draw made outside the
   run's own seeded stream.  [Random.get_state] returns a copy, so the
   two snapshots are independent values. *)
let rng_violation f =
  let before = Random.get_state () in
  let outcome = (try Ok (f ()) with exn -> Error exn) in
  let after = Random.get_state () in
  if Stdlib.compare before after <> 0 then
    Error
      (Rng_hygiene
         "run advanced the global Random state; seeded runs must draw \
          only from their own Dessim.Rng stream")
  else outcome

let guarded check_rng f =
  if check_rng then rng_violation f
  else try Ok (f ()) with exn -> Error exn

let rec worker_loop t =
  Mutex.lock t.mutex;
  while Queue.is_empty t.queue && not t.closing do
    Condition.wait t.work_ready t.mutex
  done;
  if Queue.is_empty t.queue then Mutex.unlock t.mutex (* closing: exit *)
  else begin
    let job = Queue.pop t.queue in
    Mutex.unlock t.mutex;
    job ();
    worker_loop t
  end

let create ?jobs ?(check_rng_hygiene = false) () =
  let jobs =
    match jobs with Some j -> j | None -> default_jobs ()
  in
  if jobs < 0 then invalid_arg "Parallel.create: negative jobs";
  let t =
    {
      jobs = Stdlib.max 1 jobs;
      check_rng = check_rng_hygiene;
      queue = Queue.create ();
      mutex = Mutex.create ();
      work_ready = Condition.create ();
      batch_done = Condition.create ();
      closing = false;
      shut = false;
      workers = [];
    }
  in
  if jobs > 1 then
    t.workers <- List.init jobs (fun _ -> Domain.spawn (fun () -> worker_loop t));
  t

let jobs t = t.jobs

let run_sequential t thunks = List.map (guarded t.check_rng) thunks

let run t thunks =
  if t.shut then invalid_arg "Parallel.run: pool is shut down";
  match t.workers with
  | [] -> run_sequential t thunks
  | _ :: _ -> (
      match Array.of_list thunks with
      | [||] -> []
      | tasks ->
          let n = Array.length tasks in
          let results = Array.make n None in
          let remaining = ref n in
          Mutex.lock t.mutex;
          Array.iteri
            (fun i f ->
              Queue.add
                (fun () ->
                  let r = guarded t.check_rng f in
                  Mutex.lock t.mutex;
                  results.(i) <- Some r;
                  decr remaining;
                  if !remaining = 0 then Condition.broadcast t.batch_done;
                  Mutex.unlock t.mutex)
                t.queue)
            tasks;
          Condition.broadcast t.work_ready;
          while !remaining > 0 do
            Condition.wait t.batch_done t.mutex
          done;
          Mutex.unlock t.mutex;
          Array.to_list
            (Array.map
               (function Some r -> r | None -> assert false)
               results))

let shutdown t =
  if not t.shut then begin
    Mutex.lock t.mutex;
    t.closing <- true;
    Condition.broadcast t.work_ready;
    Mutex.unlock t.mutex;
    List.iter Domain.join t.workers;
    t.workers <- [];
    t.shut <- true
  end

let with_pool ?jobs ?check_rng_hygiene f =
  let t = create ?jobs ?check_rng_hygiene () in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)

let map ?pool ?jobs f xs =
  let thunks = List.map (fun x () -> f x) xs in
  match pool with
  | Some t -> run t thunks
  | None -> with_pool ?jobs (fun t -> run t thunks)
