(** Golden-trace fixtures: canonical seeded runs with committed trace
    digests, the repository's behavioral-drift oracle.

    Regeneration (after an intentional behavior change):
    {[ dune exec bin/bgpsim_cli.exe -- golden > test/golden_digests.expected ]} *)

type fixture = { name : string; spec : Experiment.spec }

val clique5_tdown : fixture
(** Clique 5, T_down, seed 1 — also the CLI acceptance scenario. *)

val bclique5_tlong : fixture
(** B-Clique 5 (10 nodes), canonical core-link T_long. *)

val chain6_withdraw : fixture
(** 6-node chain, origin 0 withdraws (T_down). *)

val fixtures : fixture list

val canonical : fixture
(** The run whose JSONL trace CI uploads as an artifact
    (= {!clique5_tdown}). *)

val find : string -> fixture option

val events : fixture -> Obs.Event.t list
(** Run the fixture with a memory sink and return its trace. *)

val digest : fixture -> string
(** Hex md5 of the fixture's JSONL trace — equals the digest of the
    file written by [bgpsim_cli run --trace] on the same scenario. *)

val digest_line : fixture -> string
(** ["<name> <digest>"] — the fixture-file line format. *)

val mesh_name : string
(** ["clique5-mesh"] — the full-mesh multi-prefix fixture: clique 5,
    every node originating its own prefix, node 0's prefix withdrawn.
    Not an {!Experiment.spec} (those are single-prefix), so it is
    exposed through the functions below instead of {!fixtures}. *)

val mesh_events : unit -> Obs.Event.t list
(** Run the full-mesh fixture with a memory sink and return its
    per-prefix-tagged trace. *)

val mesh_digest : unit -> string
(** Hex md5 of the full-mesh fixture's JSONL trace. *)

val mesh_digest_line : unit -> string
(** ["clique5-mesh <digest>"]. *)

val digest_lines : unit -> string list
(** All fixture lines followed by the {!mesh_digest_line}. *)

val parse_expected : string -> (string * string) list
(** Parse fixture-file text (["<name> <digest>"] lines; blanks and
    [#] comments ignored). *)
