(** Golden-trace fixtures: canonical seeded runs with committed trace
    digests, the repository's behavioral-drift oracle.

    Regeneration (after an intentional behavior change):
    {[ dune exec bin/bgpsim_cli.exe -- golden > test/golden_digests.expected ]} *)

type fixture = { name : string; spec : Experiment.spec }

val clique5_tdown : fixture
(** Clique 5, T_down, seed 1 — also the CLI acceptance scenario. *)

val bclique5_tlong : fixture
(** B-Clique 5 (10 nodes), canonical core-link T_long. *)

val chain6_withdraw : fixture
(** 6-node chain, origin 0 withdraws (T_down). *)

val fixtures : fixture list

val canonical : fixture
(** The run whose JSONL trace CI uploads as an artifact
    (= {!clique5_tdown}). *)

val find : string -> fixture option

val events : ?partitions:int -> fixture -> Obs.Event.t list
(** Run the fixture with a memory sink and return its trace.
    [partitions] runs it on the space-partitioned executor; the trace
    must be — and is asserted to be, by the partition test wall —
    byte-identical to the sequential one. *)

val digest : ?partitions:int -> fixture -> string
(** Hex md5 of the fixture's JSONL trace — equals the digest of the
    file written by [bgpsim_cli run --trace] on the same scenario,
    whatever [partitions] is. *)

val digest_line : ?partitions:int -> fixture -> string
(** ["<name> <digest>"] — the fixture-file line format. *)

val mesh_name : string
(** ["clique5-mesh"] — the full-mesh multi-prefix fixture: clique 5,
    every node originating its own prefix, node 0's prefix withdrawn.
    Not an {!Experiment.spec} (those are single-prefix), so it is
    exposed through the functions below instead of {!fixtures}. *)

val mesh_events : ?partitions:int -> unit -> Obs.Event.t list
(** Run the full-mesh fixture with a memory sink and return its
    per-prefix-tagged trace. *)

val mesh_digest : ?partitions:int -> unit -> string
(** Hex md5 of the full-mesh fixture's JSONL trace. *)

val mesh_digest_line : ?partitions:int -> unit -> string
(** ["clique5-mesh <digest>"]. *)

val digest_lines : ?partitions:int -> unit -> string list
(** All fixture lines followed by the {!mesh_digest_line}, computed on
    [partitions] engines (default: the sequential path).  The lines
    are identical for every valid partition count — that equality is
    the executor's determinism gate. *)

val parse_expected : string -> (string * string) list
(** Parse fixture-file text (["<name> <digest>"] lines; blanks and
    [#] comments ignored). *)
