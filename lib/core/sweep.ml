let over_seeds spec ~seeds =
  if seeds = [] then invalid_arg "Sweep.over_seeds: empty seed list";
  List.map (fun seed -> Experiment.metrics { spec with seed }) seeds
  |> Metrics.Run_metrics.mean

let series ~make ~seeds xs =
  List.map (fun x -> (x, over_seeds (make x) ~seeds)) xs

let default_seeds = [ 1; 2; 3; 4; 5 ]

let over_seeds_summary spec ~seeds ~metric =
  if seeds = [] then invalid_arg "Sweep.over_seeds_summary: empty seed list";
  List.map (fun seed -> metric (Experiment.metrics { spec with seed })) seeds
  |> Array.of_list
  |> Stats.Descriptive.summarize

let linearity points ~x ~y =
  Stats.Linear_fit.fit
    (Array.of_list (List.map (fun (px, m) -> (x px, y m)) points))

(* --- error-isolating sweeps --- *)

type run_failure = { seed : int; scenario : string; message : string }

type robust = {
  metrics : Metrics.Run_metrics.t option;
  attempted : int;
  completed : int;
  non_converged : int;
  failures : run_failure list;
}

let describe_spec (spec : Experiment.spec) =
  Printf.sprintf "%s/%s"
    (Experiment.topology_name spec.topology)
    (Experiment.event_name spec.event)

let over_seeds_robust spec ~seeds =
  if seeds = [] then invalid_arg "Sweep.over_seeds_robust: empty seed list";
  let results =
    List.map
      (fun seed ->
        let spec = { spec with Experiment.seed } in
        match Experiment.run spec with
        | run -> Ok run.Experiment.metrics
        | exception exn ->
            Error
              {
                seed;
                scenario = describe_spec spec;
                message = Printexc.to_string exn;
              })
      seeds
  in
  let ok = List.filter_map Result.to_option results in
  {
    metrics = (if ok = [] then None else Some (Metrics.Run_metrics.mean ok));
    attempted = List.length seeds;
    completed = List.length ok;
    non_converged =
      List.length
        (List.filter (fun (m : Metrics.Run_metrics.t) -> not m.converged) ok);
    failures =
      List.filter_map
        (function Error f -> Some f | Ok _ -> None)
        results;
  }

let series_robust ~make ~seeds xs =
  List.map (fun x -> (x, over_seeds_robust (make x) ~seeds)) xs

let failures_table failures =
  Report.table ~title:"failed runs"
    ~header:[ "seed"; "scenario"; "error" ]
    ~rows:
      (List.map
         (fun f -> [ string_of_int f.seed; f.scenario; f.message ])
         failures)
