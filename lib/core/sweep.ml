type dispatch =
  | Sequential
  | Pool of { jobs : int }
  | Probed_pool of { jobs : int; probe_s : float }
  | Probed_sequential of { probe_s : float }

let dispatch_overhead_s = 1e-3

(* Every sweep bottoms out in [run_batch]: one thunk per (spec, seed)
   pair, executed through a caller-supplied pool, a temporary pool of
   [jobs] workers, or sequentially — always gathered in submission
   order, so the parallel paths are observationally identical to the
   sequential one (each run builds its own engine and seeded RNG
   streams; only the host wall clock differs).

   The [?jobs] path probes before it pays: spawning a temporary pool
   costs domain startup per worker, which dwarfs a sub-millisecond run.
   The first thunk runs in the calling domain under a wall-clock timer;
   only when it proves expensive enough is a pool spun up for the rest.
   Either way results keep submission order, so the fallback is
   invisible except to the wall clock (and [?on_dispatch]). *)
let run_batch ?on_dispatch ?pool ?jobs thunks =
  let seq thunks = List.map (fun f -> try Ok (f ()) with exn -> Error exn) thunks in
  let notify d = match on_dispatch with None -> () | Some f -> f d in
  match (pool, jobs) with
  | Some p, _ ->
      notify (Pool { jobs = Parallel.jobs p });
      Parallel.run p thunks
  | None, Some j when j > 1 -> (
      match thunks with
      | [] -> []
      | first :: rest -> (
          let t0 = Unix.gettimeofday () in
          let r1 = (try Ok (first ()) with exn -> Error exn) in
          let probe_s = Unix.gettimeofday () -. t0 in
          match rest with
          | [] ->
              notify (Probed_sequential { probe_s });
              [ r1 ]
          | _ :: _ when probe_s < dispatch_overhead_s ->
              notify (Probed_sequential { probe_s });
              r1 :: seq rest
          | _ :: _ ->
              notify (Probed_pool { jobs = j; probe_s });
              r1 :: Parallel.with_pool ~jobs:j (fun p -> Parallel.run p rest)))
  | None, _ ->
      notify Sequential;
      seq thunks

let reraise = function Ok v -> v | Error exn -> raise exn

(* [chunk k xs] splits [xs] into consecutive groups of [k] — the
   inverse of the cross-product flattening done by the series sweeps. *)
let chunk k xs =
  let rec take acc k xs =
    if k = 0 then (List.rev acc, xs)
    else
      match xs with
      | [] -> invalid_arg "Sweep.chunk: ragged input"
      | x :: rest -> take (x :: acc) (k - 1) rest
  in
  let rec go acc xs =
    match xs with
    | [] -> List.rev acc
    | _ ->
        let group, rest = take [] k xs in
        go (group :: acc) rest
  in
  go [] xs

let over_seeds ?on_dispatch ?pool ?jobs spec ~seeds =
  if seeds = [] then invalid_arg "Sweep.over_seeds: empty seed list";
  run_batch ?on_dispatch ?pool ?jobs
    (List.map (fun seed () -> Experiment.metrics { spec with seed }) seeds)
  |> List.map reraise
  |> Metrics.Run_metrics.mean

let series ?on_dispatch ?pool ?jobs ~make ~seeds xs =
  if seeds = [] then invalid_arg "Sweep.series: empty seed list";
  (* flatten the (x, seed) cross product so a pool sees every run at
     once instead of one x's seeds at a time *)
  let runs =
    List.concat_map
      (fun x ->
        List.map
          (fun seed () -> Experiment.metrics { (make x) with Experiment.seed = seed })
          seeds)
      xs
  in
  run_batch ?on_dispatch ?pool ?jobs runs
  |> List.map reraise
  |> chunk (List.length seeds)
  |> List.map2 (fun x ms -> (x, Metrics.Run_metrics.mean ms)) xs

let default_seeds = [ 1; 2; 3; 4; 5 ]

let over_seeds_summary ?on_dispatch ?pool ?jobs spec ~seeds ~metric =
  if seeds = [] then invalid_arg "Sweep.over_seeds_summary: empty seed list";
  run_batch ?on_dispatch ?pool ?jobs
    (List.map (fun seed () -> metric (Experiment.metrics { spec with seed })) seeds)
  |> List.map reraise
  |> Array.of_list
  |> Stats.Descriptive.summarize

let linearity points ~x ~y =
  Stats.Linear_fit.fit
    (Array.of_list (List.map (fun (px, m) -> (x px, y m)) points))

(* --- error-isolating sweeps --- *)

type run_failure = { seed : int; scenario : string; message : string }

type robust = {
  metrics : Metrics.Run_metrics.t option;
  attempted : int;
  completed : int;
  non_converged : int;
  rejected : run_failure list;
  failures : run_failure list;
}

let describe_spec (spec : Experiment.spec) =
  Printf.sprintf "%s/%s"
    (Experiment.topology_name spec.topology)
    (Experiment.event_name spec.event)

let robust_of_results spec ~seeds results =
  let results =
    List.map2
      (fun seed -> function
        | Ok m -> Ok m
        | Error exn ->
            let failure message =
              { seed; scenario = describe_spec { spec with Experiment.seed }; message }
            in
            (* a strict pre-flight rejection is an expected, statically
               predicted outcome — tallied apart from genuine failures *)
            (match exn with
            | Analysis.Preflight.Rejected { stage; issues } ->
                Error
                  (`Rejected
                     (failure
                        (Printf.sprintf "pre-flight %s: %s" stage
                           (String.concat "; " issues))))
            | exn -> Error (`Failed (failure (Printexc.to_string exn)))))
      seeds results
  in
  let ok = List.filter_map Result.to_option results in
  {
    metrics = (if ok = [] then None else Some (Metrics.Run_metrics.mean ok));
    attempted = List.length seeds;
    completed = List.length ok;
    non_converged =
      List.length
        (List.filter (fun (m : Metrics.Run_metrics.t) -> not m.converged) ok);
    rejected =
      List.filter_map
        (function Error (`Rejected f) -> Some f | _ -> None)
        results;
    failures =
      List.filter_map
        (function Error (`Failed f) -> Some f | _ -> None)
        results;
  }

let robust_thunks spec ~seeds =
  List.map
    (fun seed () ->
      (Experiment.run { spec with Experiment.seed }).Experiment.metrics)
    seeds

let over_seeds_robust ?on_dispatch ?pool ?jobs spec ~seeds =
  if seeds = [] then invalid_arg "Sweep.over_seeds_robust: empty seed list";
  run_batch ?on_dispatch ?pool ?jobs (robust_thunks spec ~seeds)
  |> robust_of_results spec ~seeds

let series_robust ?on_dispatch ?pool ?jobs ~make ~seeds xs =
  if seeds = [] then invalid_arg "Sweep.series_robust: empty seed list";
  let specs = List.map make xs in
  let runs = List.concat_map (robust_thunks ~seeds) specs in
  run_batch ?on_dispatch ?pool ?jobs runs
  |> chunk (List.length seeds)
  |> List.map2
       (fun (x, spec) results -> (x, robust_of_results spec ~seeds results))
       (List.combine xs specs)

let failures_table failures =
  Report.table ~title:"failed runs"
    ~header:[ "seed"; "scenario"; "error" ]
    ~rows:
      (List.map
         (fun f -> [ string_of_int f.seed; f.scenario; f.message ])
         failures)
