(** Space partitioning of the AS graph for the conservative parallel
    executor ({!Dessim.Cluster} / {!Netcore.Fabric}).

    A partition is a total assignment of nodes to [k] disjoint,
    non-empty regions.  The executor's correctness never depends on
    the assignment — any valid one yields byte-identical runs — but
    its synchronization cost does: every edge crossing the cut becomes
    channel traffic, so the heuristic greedily grows [k] connected
    regions that keep the edge cut small.

    The construction is deterministic for a given [(seed, graph, k)]:
    the seed picks the first growth center, the remaining centers are
    placed at maximal BFS distance from those already chosen, and all
    ties break toward the smallest node id.  Determinism here is what
    lets a partitioned golden run be re-checked byte-for-byte on
    another machine. *)

type t

val compute : seed:int -> graph:Topo.Graph.t -> k:int -> t
(** Greedy edge-cut partitioning into [k] regions, each holding at
    most [ceil (n / k)] nodes.
    @raise Invalid_argument if [k < 1] or [k] exceeds the node count. *)

val k : t -> int

val assignment : t -> int array
(** [assignment.(v)] is node [v]'s region, in [0 .. k-1] — the form
    the simulators' [?partitions] argument takes.  Fresh copy. *)

val members : t -> int -> int list
(** Nodes of one region, ascending. *)

val cut : t -> (int * int) list
(** Edges crossing regions, smaller endpoint first, sorted — the
    channel traffic surface. *)

val lookahead : t -> delay:(int -> int -> float) -> float array array
(** [k x k] matrix of the minimum [delay a b] over cut edges joining
    each region pair ([infinity] where none does, diagonal included) —
    the true lookahead the conservative protocol may claim. *)

val pp : Format.formatter -> t -> unit
(** One line: region sizes and cut size. *)
