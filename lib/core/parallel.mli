(** Deterministic multicore executor for sweep batches.

    A fixed pool of worker domains drains a queue of independent run
    thunks; results are gathered in submission order, so a parallel
    sweep is bit-identical to its sequential counterpart as long as
    each thunk owns its state (every {!Experiment.run} builds its own
    engine and seeded RNG streams, so this holds by construction).

    Exceptions are isolated per thunk: one failing run surfaces as its
    own [Error] without poisoning the batch or killing a worker, which
    is what {!Sweep.over_seeds_robust} needs to keep its semantics
    under parallelism. *)

type t
(** A pool of worker domains.  A pool with fewer than two workers runs
    everything sequentially in the calling domain. *)

exception Rng_hygiene of string
(** Raised (as a per-run [Error]) when {!create} was given
    [~check_rng_hygiene:true] and a run advanced the domain's global
    [Random] state instead of using its own seeded stream — global
    draws are scheduling-dependent and would break run-for-run
    determinism. *)

val default_jobs : unit -> int
(** [Domain.recommended_domain_count () - 1], at least 1: leave one
    core for the submitting domain. *)

val create : ?jobs:int -> ?check_rng_hygiene:bool -> unit -> t
(** A pool with [jobs] workers (default {!default_jobs}).  [jobs <= 1]
    spawns no domains at all.  [check_rng_hygiene] (default [false])
    snapshots the global [Random] state around every run and turns a
    detected draw into a {!Rng_hygiene} error for that run.
    @raise Invalid_argument if [jobs < 0]. *)

val jobs : t -> int
(** Worker count the pool was created with (1 = sequential). *)

val run : t -> (unit -> 'a) list -> ('a, exn) result list
(** Execute every thunk, concurrently when the pool has workers, and
    return the outcomes in submission order.  Blocks until the whole
    batch is done.  @raise Invalid_argument on a shut-down pool. *)

val shutdown : t -> unit
(** Join every worker domain.  Idempotent; safe to call even when a
    run raised.  The pool cannot be reused afterwards. *)

val with_pool :
  ?jobs:int -> ?check_rng_hygiene:bool -> (t -> 'a) -> 'a
(** [create], apply, then [shutdown] (also on exception). *)

val map :
  ?pool:t -> ?jobs:int -> ('a -> 'b) -> 'a list -> ('b, exn) result list
(** Convenience: run [f] over the list through [pool] if given, else
    through a temporary pool with [jobs] workers (default
    {!default_jobs}), else sequentially when [jobs <= 1]. *)
