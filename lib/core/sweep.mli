(** Parameter sweeps with multi-seed averaging — the shape of every
    figure in the paper: a metric series against network size, MRAI
    value, or enhancement.

    {b Parallelism.} Every sweep accepts [?pool] (a caller-managed
    {!Parallel.t}, reused across sweeps) or [?jobs] (a temporary pool
    torn down when the sweep returns).  Each (spec, seed) run owns its
    engine and seeded RNG streams, and results are gathered in
    submission order, so a parallel sweep returns the same metrics and
    the same failure order as the sequential one — only the
    [wall_clock_s] timing field differs.  With neither option (or
    [jobs <= 1]) the sweep runs sequentially in the calling domain.

    {b Dispatch-overhead fallback.}  A temporary [?jobs] pool costs one
    domain spawn per worker, which can exceed the whole batch for
    micro-runs (tiny topologies in test sweeps).  So the [?jobs] path
    first runs one probe thunk in the calling domain: if it finishes
    below {!dispatch_overhead_s}, the rest of the batch stays
    sequential and no pool is ever spawned.  A caller-supplied [?pool]
    is never second-guessed — its spawn cost is already sunk.  The
    [?on_dispatch] callback reports which path ran (the regression-test
    hook; see test/test_parallel.ml). *)

(** How a sweep batch was actually executed. *)
type dispatch =
  | Sequential  (** no pool and no [jobs > 1] requested *)
  | Pool of { jobs : int }  (** caller-supplied pool, used as-is *)
  | Probed_pool of { jobs : int; probe_s : float }
      (** probe ran for [probe_s] >= {!dispatch_overhead_s}: a
          temporary pool was spawned for the remaining thunks *)
  | Probed_sequential of { probe_s : float }
      (** probe finished under the threshold (or was the whole batch):
          everything ran in the calling domain *)

val dispatch_overhead_s : float
(** Per-run wall-time threshold (1 ms) under which a temporary pool
    costs more than it saves. *)

val run_batch :
  ?on_dispatch:(dispatch -> unit) ->
  ?pool:Parallel.t ->
  ?jobs:int ->
  (unit -> 'a) list ->
  ('a, exn) result list
(** The substrate every sweep bottoms out in: execute the thunks
    (through [pool], a probed temporary [jobs]-pool, or sequentially)
    and gather per-thunk results in submission order.  Exposed for
    callers composing their own batches — and for the fallback
    regression test. *)

val over_seeds :
  ?on_dispatch:(dispatch -> unit) ->
  ?pool:Parallel.t ->
  ?jobs:int ->
  Experiment.spec ->
  seeds:int list ->
  Metrics.Run_metrics.t
(** Mean metrics over re-runs of [spec] with each seed (the paper's
    "simulations were repeated a number of times with different
    destination ASes and failed links").
    @raise Invalid_argument on an empty seed list. *)

val series :
  ?on_dispatch:(dispatch -> unit) ->
  ?pool:Parallel.t ->
  ?jobs:int ->
  make:('x -> Experiment.spec) ->
  seeds:int list ->
  'x list ->
  ('x * Metrics.Run_metrics.t) list
(** One averaged data point per sweep value.  The whole
    [(x, seed)] cross product is submitted to the pool at once, so
    parallelism is not throttled by the per-point seed count.
    @raise Invalid_argument on an empty seed list. *)

val default_seeds : int list
(** Seeds 1–5. *)

val over_seeds_summary :
  ?on_dispatch:(dispatch -> unit) ->
  ?pool:Parallel.t ->
  ?jobs:int ->
  Experiment.spec ->
  seeds:int list ->
  metric:(Metrics.Run_metrics.t -> float) ->
  Stats.Descriptive.summary
(** Dispersion of one metric across seeds (mean, sd, min/median/max) —
    for reporting run-to-run variance alongside the mean, e.g. on the
    high-variance Internet [T_long] scenarios.
    @raise Invalid_argument on an empty seed list. *)

val linearity :
  ('x * Metrics.Run_metrics.t) list ->
  x:('x -> float) ->
  y:(Metrics.Run_metrics.t -> float) ->
  Stats.Linear_fit.t
(** Least-squares check of the paper's "linearly proportional"
    observations over a sweep. *)

(** {2 Error-isolating sweeps}

    A large batch must survive individual bad runs: a mis-specified
    scenario, a strict-mode invariant violation or any other exception
    in one (spec, seed) pair is recorded and the batch keeps going,
    instead of one run aborting hours of sweep. *)

type run_failure = {
  seed : int;
  scenario : string;  (** "topology/event" of the failing spec *)
  message : string;  (** [Printexc.to_string] of the escaped exception *)
}

type robust = {
  metrics : Metrics.Run_metrics.t option;
      (** mean over the completed runs; [None] if every run failed *)
  attempted : int;
  completed : int;
  non_converged : int;
      (** completed runs that hit an event/virtual-time budget (still
          averaged into [metrics], flagged so the reader can discount
          them) *)
  rejected : run_failure list;
      (** runs skipped by a [Strict] pre-flight
          ({!Analysis.Preflight.Rejected}): the analyzer predicted the
          instance was doomed, so no simulation was attempted — an
          expected outcome, kept apart from [failures] *)
  failures : run_failure list;
}

val over_seeds_robust :
  ?on_dispatch:(dispatch -> unit) ->
  ?pool:Parallel.t ->
  ?jobs:int ->
  Experiment.spec ->
  seeds:int list ->
  robust
(** Like {!over_seeds}, but exceptions are isolated per run.
    [failures] keeps seed order even under parallelism.
    @raise Invalid_argument on an empty seed list. *)

val series_robust :
  ?on_dispatch:(dispatch -> unit) ->
  ?pool:Parallel.t ->
  ?jobs:int ->
  make:('x -> Experiment.spec) ->
  seeds:int list ->
  'x list ->
  ('x * robust) list

val failures_table : run_failure list -> string
(** {!Report.table} rendering of the failed runs (seed, scenario,
    error). *)
