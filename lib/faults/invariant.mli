(** Runtime invariant checker threaded through the simulator's hot
    paths.

    Each check site evaluates a structural invariant of the simulation
    (clock monotonicity, link-epoch freshness, RIB coherence, ...) and
    calls {!report} when it is violated.  What happens then depends on
    the checker's mode:

    - [Strict]: raise {!Violation} immediately — for tests and
      debugging, where a violated invariant means a simulator bug and
      the run's results are void;
    - [Record]: count the violation per kind (surfaced into
      [Metrics.Run_metrics.t]) and keep running — for large sweeps
      where one bad run must not abort the batch;
    - [Off]: do nothing; check sites guard on {!enabled} so disabled
      checking costs one branch. *)

type mode = Off | Record | Strict

type kind =
  | Clock_regression
      (** the event queue fired an event with a timestamp earlier than
          the current clock *)
  | Stale_epoch_delivery
      (** a message crossed a link fail/recover boundary: delivered
          under a different link epoch than it was sent under *)
  | Rib_incoherence
      (** a speaker's Loc-RIB best route is not drawn from its
          Adj-RIB-In (nor a local route) *)
  | Poison_reverse
      (** a speaker's Adj-RIB-In holds a path containing the speaker
          itself *)
  | Dead_next_hop
      (** a speaker installed a FIB next hop that is not a live peer *)

exception Violation of { kind : kind; detail : string }

type t

val create : mode -> t

val off : t
(** A shared always-disabled checker; never accumulates state.  The
    default at every integration point. *)

val mode : t -> mode

val enabled : t -> bool
(** [mode t <> Off].  Check sites guard their (possibly costly)
    invariant evaluation on this. *)

val report : t -> kind -> detail:(unit -> string) -> unit
(** Called at a check site when the invariant does NOT hold.  [Strict]:
    raises {!Violation} with [detail ()]; [Record]: increments the
    kind's counter; [Off]: no-op ([detail] is not forced). *)

val count : t -> kind -> int

val total : t -> int
(** Violations recorded across all kinds. *)

val violations : t -> (kind * int) list
(** Nonzero counters, in declaration order of {!kind}. *)

val kind_name : kind -> string

val mode_name : mode -> string

val mode_of_string : string -> mode option
(** Recognizes ["off"], ["record"], ["strict"]. *)

val pp : Format.formatter -> t -> unit
