(** Scripted fault-injection scenarios.

    A scenario is a declarative schedule of faults — link failures and
    recoveries, node crash/restart with RIB loss, BGP session resets,
    flap storms, correlated multi-link failure sets — plus probabilistic
    in-flight message chaos knobs (loss / duplication), everything
    expressed relative to the run's injection instant ([t_fail]).

    Scenarios are {e compiled} to a flat, time-sorted list of primitive
    {!step}s before a run: macros (storms, correlated sets, random
    failure draws) expand deterministically, with every random choice
    drawn from the run's seeded RNG stream — the same seed always yields
    the same schedule.  The simulation runner
    ({!Bgp.Routing_sim.run}) then schedules each step on the
    discrete-event queue. *)

type link = int * int
(** Endpoints of an undirected link; orientation is irrelevant. *)

(** Primitive fault, the unit the runner executes. *)
type action =
  | Link_fail of link  (** link + both BGP sessions over it go down *)
  | Link_recover of link  (** link and sessions come back *)
  | Node_crash of int
      (** the node stops processing, loses all RIB state, and every
          session to it drops (links stay up) *)
  | Node_restart of int
      (** the node comes back empty-handed; sessions over up links
          re-establish and peers dump their tables; a crashed origin
          re-originates its prefix *)
  | Session_reset of link
      (** both sessions over the (up) link flap instantaneously: RIBs
          learned across it flush and both ends re-dump *)

type step = { at : float; action : action }
(** [at] is seconds after the injection instant. *)

(** Declarative scenario clause; macros expand at compile time. *)
type spec =
  | At of float * action
  | Flap_storm of { link : link; start : float; period : float; count : int }
      (** [count] fail/recover cycles: cycle [k] fails at
          [start + k * period] and recovers half a period later *)
  | Correlated_failure of {
      at : float;
      links : link list;
      recover_after : float option;
    }
      (** a shared-risk group: every link fails at the same instant
          (and, if [recover_after] is given, recovers together) *)
  | Random_link_failures of {
      count : int;
      window : float;
      recover_after : float option;
    }
      (** [count] distinct links drawn from the graph by the seeded
          RNG, each failing at an RNG-uniform time in [\[0, window)] *)

type t = {
  name : string option;
  specs : spec list;
  msg_loss : float;
      (** probability each in-flight message is silently lost *)
  msg_dup : float;
      (** probability each in-flight message is delivered twice *)
}

val make : ?name:string -> ?msg_loss:float -> ?msg_dup:float -> spec list -> t
(** @raise Invalid_argument if a chaos probability is outside [\[0, 1]]. *)

val name : t -> string
(** The explicit name, or the {!to_string} rendering. *)

val resolution_issues : t -> graph:Topo.Graph.t -> string list
(** Static resolution of the scenario against a concrete topology:
    every referenced link must be a graph edge (with in-range
    endpoints), every node id in range, times finite and nonnegative,
    storm periods positive, random draws not larger than the edge set.
    Returns {e all} problems (empty list = valid) — the static
    pre-flight linter builds on this, and {!validate} raises on the
    first entry. *)

val validate : t -> graph:Topo.Graph.t -> unit
(** Raises on the first of {!resolution_issues}, so a scenario
    referencing nodes or links absent from the topology is rejected at
    compile time rather than silently accepted.
    @raise Invalid_argument on any resolution issue. *)

val expand_deterministic : t -> step list * int
(** The time-sorted expansion of every deterministic clause (everything
    except [Random_link_failures], whose expansion draws from the run
    RNG), plus the count of random clauses left unexpanded.  Used by
    the static linter; does {e not} validate. *)

val compile : t -> graph:Topo.Graph.t -> rng:Dessim.Rng.t -> step list
(** Validates, expands every macro and sorts by time (stable: clauses
    declared earlier fire first at equal times).  All randomness comes
    from [rng]. *)

val of_string : string -> (t, string) result
(** Parses the scenario mini-grammar: semicolon-separated clauses

    {v
    fail@T:a-b        recover@T:a-b      reset@T:a-b
    crash@T:n         restart@T:n
    storm@T:a-b,PERIOD,COUNT
    corr@T:a-b+c-d[,RECOVER]
    rand@COUNT:WINDOW[,RECOVER]
    loss=P            dup=P
    v}

    e.g. ["storm@0:0-1,5,200;loss=0.01"]. *)

val to_string : t -> string
(** Renders back to the {!of_string} grammar (chaos knobs last). *)

val pp : Format.formatter -> t -> unit
