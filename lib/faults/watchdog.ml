(* Wall-clock budget tracking for long-running simulations.

   A watchdog is armed at creation and answers "has the budget
   expired?" from then on.  It deliberately has no preemption: callers
   poll [expired] at natural safepoints (between engine chunks, before
   each post-run analysis phase) so that expiry always lands at a
   consistent state, never mid-event.

   The clock is injectable so tests can drive expiry deterministically
   without sleeping. *)

type t = {
  clock : unit -> float;
  started : float;
  max_wall_s : float option;
}

let create ?clock ?max_wall_s () =
  let clock = match clock with Some f -> f | None -> Unix.gettimeofday in
  { clock; started = clock (); max_wall_s }

let unlimited = create ~clock:(fun () -> 0.) ()

let elapsed_s t = t.clock () -. t.started

let expired t =
  match t.max_wall_s with
  | None -> false
  | Some budget -> elapsed_s t >= budget

let remaining_s t =
  match t.max_wall_s with
  | None -> None
  | Some budget -> Some (Float.max 0. (budget -. elapsed_s t))
