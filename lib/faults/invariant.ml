type mode = Off | Record | Strict

type kind =
  | Clock_regression
  | Stale_epoch_delivery
  | Rib_incoherence
  | Poison_reverse
  | Dead_next_hop

exception Violation of { kind : kind; detail : string }

let all_kinds =
  [
    Clock_regression;
    Stale_epoch_delivery;
    Rib_incoherence;
    Poison_reverse;
    Dead_next_hop;
  ]

let kind_index = function
  | Clock_regression -> 0
  | Stale_epoch_delivery -> 1
  | Rib_incoherence -> 2
  | Poison_reverse -> 3
  | Dead_next_hop -> 4

let kind_name = function
  | Clock_regression -> "clock-regression"
  | Stale_epoch_delivery -> "stale-epoch-delivery"
  | Rib_incoherence -> "rib-incoherence"
  | Poison_reverse -> "poison-reverse"
  | Dead_next_hop -> "dead-next-hop"

type t = { mode : mode; counts : int array }

let create mode = { mode; counts = Array.make (List.length all_kinds) 0 }

let off = create Off

let mode t = t.mode

let enabled t = t.mode <> Off

let report t kind ~detail =
  match t.mode with
  | Off -> ()
  | Record -> t.counts.(kind_index kind) <- t.counts.(kind_index kind) + 1
  | Strict -> raise (Violation { kind; detail = detail () })

let count t kind = t.counts.(kind_index kind)

let total t = Array.fold_left ( + ) 0 t.counts

let violations t =
  List.filter_map
    (fun k ->
      let c = count t k in
      if c > 0 then Some (k, c) else None)
    all_kinds

let mode_name = function Off -> "off" | Record -> "record" | Strict -> "strict"

let mode_of_string = function
  | "off" -> Some Off
  | "record" -> Some Record
  | "strict" -> Some Strict
  | _ -> None

let pp fmt t =
  match violations t with
  | [] -> Format.fprintf fmt "invariants[%s]: clean" (mode_name t.mode)
  | vs ->
      Format.fprintf fmt "invariants[%s]:" (mode_name t.mode);
      List.iter
        (fun (k, c) -> Format.fprintf fmt " %s=%d" (kind_name k) c)
        vs
