type link = int * int

type action =
  | Link_fail of link
  | Link_recover of link
  | Node_crash of int
  | Node_restart of int
  | Session_reset of link

type step = { at : float; action : action }

type spec =
  | At of float * action
  | Flap_storm of { link : link; start : float; period : float; count : int }
  | Correlated_failure of {
      at : float;
      links : link list;
      recover_after : float option;
    }
  | Random_link_failures of {
      count : int;
      window : float;
      recover_after : float option;
    }

type t = {
  name : string option;
  specs : spec list;
  msg_loss : float;
  msg_dup : float;
}

let check_prob what p =
  if not (p >= 0. && p <= 1.) then
    invalid_arg (Printf.sprintf "Scenario: %s outside [0, 1]" what)

let make ?name ?(msg_loss = 0.) ?(msg_dup = 0.) specs =
  check_prob "msg_loss" msg_loss;
  check_prob "msg_dup" msg_dup;
  { name; specs; msg_loss; msg_dup }

(* --- static resolution (shared with Analysis.Lint) --- *)

(* Every check [validate] enforces, collected as messages instead of
   raised one at a time, so the static linter can report all of a
   scenario's problems in one pass and [validate] stays a thin
   raise-on-first wrapper. *)
let resolution_issues t ~graph =
  let issues = ref [] in
  let issue fmt = Printf.ksprintf (fun m -> issues := m :: !issues) fmt in
  let check_prob what p =
    if not (p >= 0. && p <= 1.) then
      issue "Scenario: %s outside [0, 1]" what
  in
  let check_time what at =
    (* bgpsim-lint: allow D004 — infinity is an exact sentinel in input validation *)
    if Float.is_nan at || at < 0. || at = infinity then
      issue "Scenario: %s time %g invalid" what at
  in
  let n = Topo.Graph.n_nodes graph in
  let check_node what v =
    if v < 0 || v >= n then issue "Scenario: %s node %d out of range" what v
  in
  let check_link (a, b) =
    if a < 0 || a >= n || b < 0 || b >= n then
      issue "Scenario: link (%d,%d) has an endpoint out of range" a b
    else if not (Topo.Graph.has_edge graph a b) then
      issue "Scenario: link (%d,%d) is not an edge" a b
  in
  check_prob "msg_loss" t.msg_loss;
  check_prob "msg_dup" t.msg_dup;
  List.iter
    (function
      | At (at, action) -> (
          check_time "step" at;
          match action with
          | Link_fail l | Link_recover l | Session_reset l -> check_link l
          | Node_crash v | Node_restart v -> check_node "step" v)
      | Flap_storm { link; start; period; count } ->
          check_time "storm start" start;
          check_link link;
          (* bgpsim-lint: allow D004 — infinity is an exact sentinel in input validation *)
          if period <= 0. || Float.is_nan period || period = infinity then
            issue "Scenario: storm period must be positive and finite";
          if count <= 0 then issue "Scenario: storm count must be positive"
      | Correlated_failure { at; links; recover_after } ->
          check_time "correlated failure" at;
          if links = [] then issue "Scenario: correlated failure with no links";
          List.iter check_link links;
          Option.iter
            (fun r ->
              if r <= 0. then issue "Scenario: recover_after must be positive")
            recover_after
      | Random_link_failures { count; window; recover_after } ->
          if count <= 0 then
            issue "Scenario: random failure count must be positive";
          if count > Topo.Graph.n_edges graph then
            issue "Scenario: more random failures than edges";
          (* bgpsim-lint: allow D004 — infinity is an exact sentinel in input validation *)
          if window <= 0. || Float.is_nan window || window = infinity then
            issue "Scenario: random failure window must be positive";
          Option.iter
            (fun r ->
              if r <= 0. then issue "Scenario: recover_after must be positive")
            recover_after)
    t.specs;
  List.rev !issues

let validate t ~graph =
  match resolution_issues t ~graph with
  | [] -> ()
  | first :: _ -> invalid_arg first

(* --- compilation --- *)

(* The deterministic expansion of one clause; [None] for clauses whose
   expansion draws from the run RNG. *)
let expand_spec = function
  | At (at, action) -> Some [ { at; action } ]
  | Flap_storm { link; start; period; count } ->
      Some
        (List.concat
           (List.init count (fun k ->
                let base = start +. (float_of_int k *. period) in
                [
                  { at = base; action = Link_fail link };
                  { at = base +. (period /. 2.); action = Link_recover link };
                ])))
  | Correlated_failure { at; links; recover_after } ->
      Some
        (List.map (fun l -> { at; action = Link_fail l }) links
        @ (match recover_after with
          | None -> []
          | Some r ->
              List.map
                (fun l -> { at = at +. r; action = Link_recover l })
                links))
  | Random_link_failures _ -> None

(* bgpsim-lint: allow D004 — Float.compare as a total order for a stable sort *)
let sort_steps = List.stable_sort (fun s1 s2 -> Float.compare s1.at s2.at)

let expand_deterministic t =
  let random = ref 0 in
  let steps =
    List.concat_map
      (fun spec ->
        match expand_spec spec with
        | Some steps -> steps
        | None ->
            incr random;
            [])
      t.specs
  in
  (sort_steps steps, !random)

let compile t ~graph ~rng =
  validate t ~graph;
  let steps =
    List.concat_map
      (fun spec ->
        match expand_spec spec with
        | Some steps -> steps
        | None -> (
            match spec with
            | Random_link_failures { count; window; recover_after } ->
                let edges = Array.of_list (Topo.Graph.edges graph) in
                Dessim.Rng.shuffle rng edges;
                List.concat
                  (List.init count (fun k ->
                       let l = edges.(k) in
                       let at = Dessim.Rng.float rng window in
                       { at; action = Link_fail l }
                       ::
                       (match recover_after with
                       | None -> []
                       | Some r ->
                           [ { at = at +. r; action = Link_recover l } ])))
            | At _ | Flap_storm _ | Correlated_failure _ -> assert false))
      t.specs
  in
  sort_steps steps

(* --- rendering --- *)

let link_str (a, b) = Printf.sprintf "%d-%d" a b

let spec_to_string = function
  | At (at, Link_fail l) -> Printf.sprintf "fail@%g:%s" at (link_str l)
  | At (at, Link_recover l) -> Printf.sprintf "recover@%g:%s" at (link_str l)
  | At (at, Session_reset l) -> Printf.sprintf "reset@%g:%s" at (link_str l)
  | At (at, Node_crash v) -> Printf.sprintf "crash@%g:%d" at v
  | At (at, Node_restart v) -> Printf.sprintf "restart@%g:%d" at v
  | Flap_storm { link; start; period; count } ->
      Printf.sprintf "storm@%g:%s,%g,%d" start (link_str link) period count
  | Correlated_failure { at; links; recover_after } ->
      Printf.sprintf "corr@%g:%s%s" at
        (String.concat "+" (List.map link_str links))
        (match recover_after with
        | None -> ""
        | Some r -> Printf.sprintf ",%g" r)
  | Random_link_failures { count; window; recover_after } ->
      Printf.sprintf "rand@%d:%g%s" count window
        (match recover_after with
        | None -> ""
        | Some r -> Printf.sprintf ",%g" r)

let to_string t =
  String.concat ";"
    (List.map spec_to_string t.specs
    @ (if t.msg_loss > 0. then [ Printf.sprintf "loss=%g" t.msg_loss ] else [])
    @ if t.msg_dup > 0. then [ Printf.sprintf "dup=%g" t.msg_dup ] else [])

let name t = match t.name with Some n -> n | None -> to_string t

let pp fmt t = Format.pp_print_string fmt (to_string t)

(* --- parsing --- *)

let ( let* ) = Result.bind

let parse_int what s =
  match int_of_string_opt (String.trim s) with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "%s: expected an integer, got %S" what s)

let parse_float what s =
  match float_of_string_opt (String.trim s) with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "%s: expected a number, got %S" what s)

let parse_link s =
  match String.split_on_char '-' (String.trim s) with
  | [ a; b ] ->
      let* a = parse_int "link endpoint" a in
      let* b = parse_int "link endpoint" b in
      Ok (a, b)
  | _ -> Error (Printf.sprintf "expected a link 'a-b', got %S" s)

let parse_clause clause =
  match String.index_opt clause '=' with
  | Some i ->
      let key = String.sub clause 0 i
      and value = String.sub clause (i + 1) (String.length clause - i - 1) in
      let* p = parse_float key value in
      if not (p >= 0. && p <= 1.) then
        Error (Printf.sprintf "%s: probability %g outside [0, 1]" key p)
      else (
        match String.trim key with
        | "loss" -> Ok (`Loss p)
        | "dup" -> Ok (`Dup p)
        | k -> Error (Printf.sprintf "unknown knob %S (expected loss or dup)" k))
  | None -> (
      match String.index_opt clause '@' with
      | None -> Error (Printf.sprintf "clause %S has no '@'" clause)
      | Some i -> (
          let op = String.trim (String.sub clause 0 i)
          and rest =
            String.sub clause (i + 1) (String.length clause - i - 1)
          in
          match String.index_opt rest ':' with
          | None -> Error (Printf.sprintf "clause %S has no ':'" clause)
          | Some j -> (
              let head = String.sub rest 0 j
              and args = String.sub rest (j + 1) (String.length rest - j - 1) in
              match op with
              | "fail" | "recover" | "reset" ->
                  let* at = parse_float op head in
                  let* l = parse_link args in
                  let action =
                    match op with
                    | "fail" -> Link_fail l
                    | "recover" -> Link_recover l
                    | _ -> Session_reset l
                  in
                  Ok (`Spec (At (at, action)))
              | "crash" | "restart" ->
                  let* at = parse_float op head in
                  let* v = parse_int op args in
                  Ok
                    (`Spec
                      (At
                         ( at,
                           if op = "crash" then Node_crash v
                           else Node_restart v )))
              | "storm" -> (
                  let* start = parse_float "storm" head in
                  match String.split_on_char ',' args with
                  | [ l; period; count ] ->
                      let* link = parse_link l in
                      let* period = parse_float "storm period" period in
                      let* count = parse_int "storm count" count in
                      Ok (`Spec (Flap_storm { link; start; period; count }))
                  | _ ->
                      Error
                        (Printf.sprintf
                           "storm: expected 'a-b,PERIOD,COUNT', got %S" args))
              | "corr" -> (
                  let* at = parse_float "corr" head in
                  let links_str, recover_after =
                    match String.split_on_char ',' args with
                    | [ ls ] -> (ls, Ok None)
                    | [ ls; r ] ->
                        ( ls,
                          Result.map Option.some
                            (parse_float "corr recover" r) )
                    | _ -> (args, Error "corr: too many commas")
                  in
                  let* recover_after in
                  let* links =
                    List.fold_right
                      (fun l acc ->
                        let* acc in
                        let* l = parse_link l in
                        Ok (l :: acc))
                      (String.split_on_char '+' links_str)
                      (Ok [])
                  in
                  Ok (`Spec (Correlated_failure { at; links; recover_after })))
              | "rand" -> (
                  let* count = parse_int "rand" head in
                  match String.split_on_char ',' args with
                  | [ w ] ->
                      let* window = parse_float "rand window" w in
                      Ok
                        (`Spec
                          (Random_link_failures
                             { count; window; recover_after = None }))
                  | [ w; r ] ->
                      let* window = parse_float "rand window" w in
                      let* r = parse_float "rand recover" r in
                      Ok
                        (`Spec
                          (Random_link_failures
                             { count; window; recover_after = Some r }))
                  | _ ->
                      Error
                        (Printf.sprintf
                           "rand: expected 'WINDOW[,RECOVER]', got %S" args))
              | op -> Error (Printf.sprintf "unknown fault op %S" op))))

let of_string s =
  let clauses =
    String.split_on_char ';' s
    |> List.map String.trim
    |> List.filter (fun c -> c <> "")
  in
  if clauses = [] then Error "empty scenario"
  else
    let* parts =
      List.fold_right
        (fun clause acc ->
          let* acc in
          let* p = parse_clause clause in
          Ok (p :: acc))
        clauses (Ok [])
    in
    let specs =
      List.filter_map (function `Spec sp -> Some sp | _ -> None) parts
    in
    let knob pick init =
      List.fold_left
        (fun acc p -> match pick p with Some v -> v | None -> acc)
        init parts
    in
    let msg_loss = knob (function `Loss p -> Some p | _ -> None) 0. in
    let msg_dup = knob (function `Dup p -> Some p | _ -> None) 0. in
    Ok { name = None; specs; msg_loss; msg_dup }
