(** Wall-clock budgets for long-running simulations.

    Complements the engine's event/vtime budgets with real-time
    limits.  Cooperative, not preemptive: the simulation polls
    {!expired} at safepoints (between engine chunks, before each
    post-run analysis phase), so expiry always lands at a consistent
    state.  The clock is injectable for deterministic tests. *)

type t

val create : ?clock:(unit -> float) -> ?max_wall_s:float -> unit -> t
(** Arm a watchdog now.  [clock] defaults to [Unix.gettimeofday];
    omitting [max_wall_s] yields a watchdog that never expires. *)

val unlimited : t
(** A watchdog that never expires (and whose clock never advances);
    useful as a default argument. *)

val expired : t -> bool
(** [true] once elapsed wall time has reached the budget.  Always
    [false] without a [max_wall_s]. *)

val elapsed_s : t -> float
(** Wall seconds since creation, per the watchdog's clock. *)

val remaining_s : t -> float option
(** Budget remaining (clamped at 0), or [None] if unlimited. *)
