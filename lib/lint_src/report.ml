type status =
  | Open
  | Suppressed_comment of string
  | Allowlisted of string

type entry = { finding : Finding.t; status : status }

type t = {
  entries : entry list;  (* sorted by Finding.compare *)
  config_errors : string list;
  unused_suppressions : (string * int * Rule.t) list;
      (* comment suppressions that matched nothing: informational *)
}

let justification = function
  | Open -> None
  | Suppressed_comment j | Allowlisted j -> Some j

let is_open e = e.status = Open

let open_count t = List.length (List.filter is_open t.entries)

let suppressed_count t =
  List.length (List.filter (fun e -> not (is_open e)) t.entries)

let exit_code t =
  if t.config_errors <> [] then 2 else if open_count t > 0 then 1 else 0

(* --- assembly --- *)

let distinct_files findings =
  List.sort_uniq String.compare
    (List.map (fun (f : Finding.t) -> f.file) findings)

let build ~findings ~scan_source ~allows ~allow_errors =
  let files = distinct_files findings in
  let supps_by_file, scan_errors =
    List.fold_left
      (fun (acc, errs) file ->
        let supps, file_errs = scan_source file in
        ((file, supps) :: acc, errs @ file_errs))
      ([], []) files
  in
  let supps_of file =
    match List.assoc_opt file supps_by_file with Some s -> s | None -> []
  in
  let used = ref [] in
  let classify (f : Finding.t) =
    match
      List.find_opt
        (fun s -> Suppress.covers s ~rule:f.rule ~line:f.line)
        (supps_of f.file)
    with
    | Some s ->
        used := (f.file, s.line, s.rule) :: !used;
        Suppressed_comment s.reason
    | None -> (
        match
          List.find_opt
            (fun a -> Suppress.allow_covers a ~rule:f.rule ~file:f.file)
            allows
        with
        | Some a -> Allowlisted a.a_justification
        | None -> Open)
  in
  let entries =
    findings
    |> List.sort_uniq Finding.compare
    |> List.map (fun f -> { finding = f; status = classify f })
  in
  let unused_suppressions =
    List.concat_map
      (fun (file, supps) ->
        List.filter_map
          (fun (s : Suppress.t) ->
            if List.mem (file, s.line, s.rule) !used then None
            else Some (file, s.line, s.rule))
          supps)
      (List.sort (fun (a, _) (b, _) -> String.compare a b) supps_by_file)
  in
  { entries; config_errors = scan_errors @ allow_errors; unused_suppressions }

(* --- human rendering --- *)

let pp ?(show_suppressed = false) ppf t =
  let f fmt = Format.fprintf ppf fmt in
  List.iter
    (fun e ->
      match e.status with
      | Open ->
          f "%s@\n  fix: %s@\n" (Finding.to_string e.finding)
            (Rule.fix_hint e.finding.Finding.rule)
      | Suppressed_comment j when show_suppressed ->
          f "%s@\n  suppressed (comment): %s@\n" (Finding.to_string e.finding) j
      | Allowlisted j when show_suppressed ->
          f "%s@\n  suppressed (allowlist): %s@\n" (Finding.to_string e.finding) j
      | Suppressed_comment _ | Allowlisted _ -> ())
    t.entries;
  List.iter
    (fun (file, line, rule) ->
      f "%s:%d: warning: unused suppression for %s@\n" file line (Rule.id rule))
    t.unused_suppressions;
  List.iter (fun e -> f "config error: %s@\n" e) t.config_errors;
  f "bgpsim-lint: %d finding%s (%d open, %d suppressed)%s@."
    (List.length t.entries)
    (if List.length t.entries = 1 then "" else "s")
    (open_count t) (suppressed_count t)
    (if t.config_errors <> [] then
       Printf.sprintf ", %d config error(s)" (List.length t.config_errors)
     else "")

let to_text ?show_suppressed t =
  Format.asprintf "%a" (fun ppf -> pp ?show_suppressed ppf) t

(* --- JSON --- *)

let schema = "bgpsim-lint/1"

let status_kind = function
  | Open -> "open"
  | Suppressed_comment _ -> "comment"
  | Allowlisted _ -> "allowlist"

let entry_to_json e =
  let f = e.finding in
  Json.Obj
    ([
       ("rule", Json.Str (Rule.id f.Finding.rule));
       ("title", Json.Str (Rule.title f.Finding.rule));
       ("file", Json.Str f.Finding.file);
       ("line", Json.Int f.Finding.line);
       ("col", Json.Int f.Finding.col);
       ("witness", Json.Str f.Finding.witness);
       ("status", Json.Str (status_kind e.status));
     ]
    @
    match justification e.status with
    | None -> []
    | Some j -> [ ("justification", Json.Str j) ])

let to_json t =
  Json.Obj
    [
      ("schema", Json.Str schema);
      ( "summary",
        Json.Obj
          [
            ("total", Json.Int (List.length t.entries));
            ("open", Json.Int (open_count t));
            ("suppressed", Json.Int (suppressed_count t));
            ("config_errors", Json.Int (List.length t.config_errors));
          ] );
      ("findings", Json.List (List.map entry_to_json t.entries));
      ("errors", Json.List (List.map (fun e -> Json.Str e) t.config_errors));
    ]

let to_json_string t = Json.to_string (to_json t)

let ( let* ) r f = match r with Ok v -> f v | Error _ as e -> e

let req what = function Some v -> Ok v | None -> Error ("missing " ^ what)

let entry_of_json j =
  let* rule_id = req "rule" (Option.bind (Json.member "rule" j) Json.to_str) in
  let* rule =
    match Rule.of_id rule_id with
    | Some r -> Ok r
    | None -> Error ("unknown rule " ^ rule_id)
  in
  let* file = req "file" (Option.bind (Json.member "file" j) Json.to_str) in
  let* line = req "line" (Option.bind (Json.member "line" j) Json.to_int) in
  let* col = req "col" (Option.bind (Json.member "col" j) Json.to_int) in
  let* witness =
    req "witness" (Option.bind (Json.member "witness" j) Json.to_str)
  in
  let* kind =
    req "status" (Option.bind (Json.member "status" j) Json.to_str)
  in
  let just =
    match Option.bind (Json.member "justification" j) Json.to_str with
    | Some j -> j
    | None -> ""
  in
  let* status =
    match kind with
    | "open" -> Ok Open
    | "comment" -> Ok (Suppressed_comment just)
    | "allowlist" -> Ok (Allowlisted just)
    | k -> Error ("unknown status " ^ k)
  in
  Ok { finding = Finding.make ~rule ~file ~line ~col ~witness; status }

let of_json_string s =
  let* j = Json.of_string s in
  let* sch =
    req "schema" (Option.bind (Json.member "schema" j) Json.to_str)
  in
  let* () =
    if sch = schema then Ok () else Error ("unknown schema " ^ sch)
  in
  let* findings =
    req "findings" (Option.bind (Json.member "findings" j) Json.to_list)
  in
  let* entries =
    List.fold_left
      (fun acc ej ->
        let* acc = acc in
        let* e = entry_of_json ej in
        Ok (e :: acc))
      (Ok []) findings
  in
  let errors =
    match Option.bind (Json.member "errors" j) Json.to_list with
    | Some l -> List.filter_map Json.to_str l
    | None -> []
  in
  Ok
    {
      entries = List.rev entries;
      config_errors = errors;
      unused_suppressions = [];
    }
