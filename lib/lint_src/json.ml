(* Minimal JSON: just enough for the lint report to round-trip.  The
   emitter produces deterministic bytes (object fields in the order
   given); the parser accepts the emitter's output plus ordinary
   whitespace.  Non-ASCII bytes (em-dashes in justifications) pass
   through both directions untouched, as JSON permits raw UTF-8. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Str of string
  | List of t list
  | Obj of (string * t) list

let buf_add_escaped b s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s

let to_string v =
  let b = Buffer.create 256 in
  let rec go = function
    | Null -> Buffer.add_string b "null"
    | Bool true -> Buffer.add_string b "true"
    | Bool false -> Buffer.add_string b "false"
    | Int i -> Buffer.add_string b (string_of_int i)
    | Str s ->
        Buffer.add_char b '"';
        buf_add_escaped b s;
        Buffer.add_char b '"'
    | List l ->
        Buffer.add_char b '[';
        List.iteri
          (fun i v ->
            if i > 0 then Buffer.add_char b ',';
            go v)
          l;
        Buffer.add_char b ']'
    | Obj fields ->
        Buffer.add_char b '{';
        List.iteri
          (fun i (k, v) ->
            if i > 0 then Buffer.add_char b ',';
            go (Str k);
            Buffer.add_char b ':';
            go v)
          fields;
        Buffer.add_char b '}'
  in
  go v;
  Buffer.contents b

exception Parse_error of string

let of_string s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Parse_error (Printf.sprintf "%s at byte %d" msg !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance ();
        skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected %c" c)
  in
  let literal word v =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then begin
      pos := !pos + l;
      v
    end
    else fail ("expected " ^ word)
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string"
      else
        let c = s.[!pos] in
        advance ();
        match c with
        | '"' -> Buffer.contents b
        | '\\' -> (
            if !pos >= n then fail "unterminated escape"
            else
              let e = s.[!pos] in
              advance ();
              match e with
              | '"' | '\\' | '/' ->
                  Buffer.add_char b e;
                  go ()
              | 'n' ->
                  Buffer.add_char b '\n';
                  go ()
              | 'r' ->
                  Buffer.add_char b '\r';
                  go ()
              | 't' ->
                  Buffer.add_char b '\t';
                  go ()
              | 'b' ->
                  Buffer.add_char b '\b';
                  go ()
              | 'f' ->
                  Buffer.add_char b '\012';
                  go ()
              | 'u' ->
                  if !pos + 4 > n then fail "truncated \\u escape"
                  else begin
                    let hex = String.sub s !pos 4 in
                    pos := !pos + 4;
                    (match int_of_string_opt ("0x" ^ hex) with
                    | Some code when code < 0x80 ->
                        Buffer.add_char b (Char.chr code)
                    | Some _ -> fail "non-ASCII \\u escape unsupported"
                    | None -> fail "bad \\u escape");
                    go ()
                  end
              | _ -> fail "bad escape")
        | c ->
            Buffer.add_char b c;
            go ()
    in
    go ()
  in
  let parse_int () =
    let start = !pos in
    (match peek () with Some '-' -> advance () | _ -> ());
    let rec digits () =
      match peek () with
      | Some ('0' .. '9') ->
          advance ();
          digits ()
      | _ -> ()
    in
    digits ();
    if !pos = start then fail "expected number"
    else
      match int_of_string_opt (String.sub s start (!pos - start)) with
      | Some i -> i
      | None -> fail "bad number"
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | Some '"' -> Str (parse_string ())
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else
          let rec fields acc =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                fields ((k, v) :: acc)
            | Some '}' ->
                advance ();
                List.rev ((k, v) :: acc)
            | _ -> fail "expected , or }"
          in
          Obj (fields [])
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          List []
        end
        else
          let rec items acc =
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                items (v :: acc)
            | Some ']' ->
                advance ();
                List.rev (v :: acc)
            | _ -> fail "expected , or ]"
          in
          List (items [])
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some _ -> Int (parse_int ())
    | None -> fail "unexpected end of input"
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing bytes" else v
  with
  | v -> Ok v
  | exception Parse_error msg -> Error msg

(* --- accessors used by the report decoder --- *)

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

let to_str = function Str s -> Some s | _ -> None

let to_int = function Int i -> Some i | _ -> None

let to_list = function List l -> Some l | _ -> None
