(** A single lint finding: rule, source position and a witness string
    describing what was seen (the resolved path and its instantiated
    type, the toplevel binding, ...). *)

type t = {
  rule : Rule.t;
  file : string;  (** path as recorded by the compiler, repo-relative *)
  line : int;  (** 1-based *)
  col : int;  (** 0-based, matching compiler diagnostics *)
  witness : string;
}

val make : rule:Rule.t -> file:string -> line:int -> col:int -> witness:string -> t

val compare : t -> t -> int
(** Orders by file, line, col, rule, witness — the report order. *)

val equal : t -> t -> bool

val to_string : t -> string
(** ["file:line:col: D001 title [witness]"]. *)

val pp : Format.formatter -> t -> unit
