(** Suppression comments and the committed allowlist.

    An in-source comment

    {v (* bgpsim-lint: allow D001 — reason *) v}

    suppresses findings of that rule on its own line and the following
    line.  An allowlist line

    {v D003 lib/core/parallel.ml — reason v}

    suppresses the rule for a whole file.  Justifications are mandatory
    in both forms: entries without one are reported as config errors
    (exit code 2), never silently honored. *)

type t = { rule : Rule.t; line : int; reason : string }

type allow = { a_rule : Rule.t; a_file : string; a_justification : string }

val scan_file : string -> t list * string list
(** Parse every suppression comment in a source file.  Returns the
    valid suppressions and the config errors (malformed directives,
    missing justifications).  A missing file is a single error. *)

val scan_lines : file:string -> string list -> t list * string list
(** [scan_file] over in-memory lines; [file] labels errors. *)

val covers : t -> rule:Rule.t -> line:int -> bool

val parse_allowlist : string -> allow list * string list

val parse_allowlist_lines : file:string -> string list -> allow list * string list

val allow_covers : allow -> rule:Rule.t -> file:string -> bool
