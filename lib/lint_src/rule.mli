(** Stable rule identifiers for the determinism & domain-safety source
    linter (DESIGN.md §16).

    - D001: order-sensitive [Hashtbl.iter]/[Hashtbl.fold].
    - D002: polymorphic [compare]/[=]/[Hashtbl.hash] instantiated at a
      type mentioning an interned handle ([As_path.t], [Prefix.t],
      [Obs.Event.t]).
    - D003: [Stdlib.Random] outside [Dessim.Rng].
    - D004: float equality / three-way compare at type [float]
      (virtual-time values are computed floats).
    - R001: mutable toplevel state in a module reachable from
      [Core.Parallel] sweep workers.
    - M001: [Marshal]/[input_value] read without a preceding
      version-guard reference. *)

type t = D001 | D002 | D003 | D004 | R001 | M001

val all : t list
(** In id order. *)

val id : t -> string
(** The stable id, e.g. ["D001"]. *)

val of_id : string -> t option

val title : t -> string
(** One-line description used in reports. *)

val fix_hint : t -> string
(** What a fix (or an honest suppression) looks like. *)

val compare : t -> t -> int
