(* Suppressions: in-source comments and the committed allowlist.

   A comment of the form

     (* bgpsim-lint: allow D001 — reason *)

   suppresses findings of that rule on the same line and on the
   following line.  The reason is mandatory: a suppression that does
   not argue why the site is safe is a config error, not a pass.

   The allowlist file holds one entry per line,

     D003 lib/core/parallel.ml — reason

   suppressing every finding of that rule in that file; '#' starts a
   comment line.  Justifications are mandatory there too. *)

type t = { rule : Rule.t; line : int; reason : string }

type allow = { a_rule : Rule.t; a_file : string; a_justification : string }

let marker = "bgpsim-lint:"

let is_space c = c = ' ' || c = '\t'

let skip_spaces s i =
  let n = String.length s in
  let i = ref i in
  while !i < n && is_space s.[!i] do
    incr i
  done;
  !i

(* Strip one separator token — an em-dash (UTF-8 \xe2\x80\x94), "--"
   or "-" — returning the position after it, or None if absent. *)
let strip_separator s i =
  let n = String.length s in
  if i + 3 <= n && String.sub s i 3 = "\xe2\x80\x94" then Some (i + 3)
  else if i + 2 <= n && String.sub s i 2 = "--" then Some (i + 2)
  else if i < n && s.[i] = '-' then Some (i + 1)
  else None

let take_word s i =
  let n = String.length s in
  let j = ref i in
  while
    !j < n && (not (is_space s.[!j])) && s.[!j] <> '*' && s.[!j] <> ')'
  do
    incr j
  done;
  (String.sub s i (!j - i), !j)

let trim_reason r =
  (* the comment closer, if present on the same line, is not part of
     the justification *)
  let r =
    match String.index_opt r '*' with
    | Some i when i + 1 < String.length r && r.[i + 1] = ')' ->
        String.sub r 0 i
    | _ -> r
  in
  String.trim r

(* Parse the directive starting right after [marker] in [s]. *)
let parse_directive ~file ~line s i =
  let err msg = Error (Printf.sprintf "%s:%d: %s" file line msg) in
  let i = skip_spaces s i in
  let word, i = take_word s i in
  if word <> "allow" then
    err (Printf.sprintf "unknown %s directive %S (expected \"allow\")" marker word)
  else
    let i = skip_spaces s i in
    let rid, i = take_word s i in
    match Rule.of_id rid with
    | None -> err (Printf.sprintf "unknown rule id %S in suppression" rid)
    | Some rule -> (
        let i = skip_spaces s i in
        match strip_separator s i with
        | None ->
            err
              (Printf.sprintf
                 "suppression for %s is missing its \xe2\x80\x94 justification"
                 rid)
        | Some i ->
            let reason =
              trim_reason (String.sub s i (String.length s - i))
            in
            if reason = "" then
              err
                (Printf.sprintf
                   "suppression for %s has an empty justification" rid)
            else Ok { rule; line; reason })

let scan_lines ~file lines =
  let supps = ref [] and errors = ref [] in
  List.iteri
    (fun idx line_text ->
      let line = idx + 1 in
      match
        (* comments do not nest markers; one directive per line *)
        let rec find i =
          if i + String.length marker > String.length line_text then None
          else if String.sub line_text i (String.length marker) = marker then
            Some (i + String.length marker)
          else find (i + 1)
        in
        find 0
      with
      | None -> ()
      | Some i -> (
          match parse_directive ~file ~line line_text i with
          | Ok s -> supps := s :: !supps
          | Error e -> errors := e :: !errors))
    lines;
  (List.rev !supps, List.rev !errors)

let read_lines path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let rec go acc =
        match input_line ic with
        | line -> go (line :: acc)
        | exception End_of_file -> List.rev acc
      in
      go [])

let scan_file path =
  match read_lines path with
  | lines -> scan_lines ~file:path lines
  | exception Sys_error msg -> ([], [ msg ])

(* A comment on line N covers findings on lines N and N+1. *)
let covers (s : t) ~rule ~line = s.rule = rule && (line = s.line || line = s.line + 1)

let parse_allowlist_lines ~file lines =
  let allows = ref [] and errors = ref [] in
  List.iteri
    (fun idx line_text ->
      let line = idx + 1 in
      let err msg =
        errors := Printf.sprintf "%s:%d: %s" file line msg :: !errors
      in
      let s = String.trim line_text in
      if s = "" || s.[0] = '#' then ()
      else
        let rid, i = take_word s 0 in
        match Rule.of_id rid with
        | None -> err (Printf.sprintf "unknown rule id %S in allowlist" rid)
        | Some a_rule -> (
            let i = skip_spaces s i in
            let a_file, i = take_word s i in
            if a_file = "" then err "allowlist entry is missing a file path"
            else
              let i = skip_spaces s i in
              match strip_separator s i with
              | None ->
                  err
                    (Printf.sprintf
                       "allowlist entry for %s %s is missing its \
                        \xe2\x80\x94 justification"
                       rid a_file)
              | Some i ->
                  let a_justification =
                    String.trim (String.sub s i (String.length s - i))
                  in
                  if a_justification = "" then
                    err
                      (Printf.sprintf
                         "allowlist entry for %s %s has an empty justification"
                         rid a_file)
                  else
                    allows := { a_rule; a_file; a_justification } :: !allows))
    lines;
  (List.rev !allows, List.rev !errors)

let parse_allowlist path =
  match read_lines path with
  | lines -> parse_allowlist_lines ~file:path lines
  | exception Sys_error msg -> ([], [ msg ])

let allow_covers (a : allow) ~rule ~file = a.a_rule = rule && a.a_file = file
