type t = D001 | D002 | D003 | D004 | R001 | M001

let all = [ D001; D002; D003; D004; R001; M001 ]

let id = function
  | D001 -> "D001"
  | D002 -> "D002"
  | D003 -> "D003"
  | D004 -> "D004"
  | R001 -> "R001"
  | M001 -> "M001"

let of_id = function
  | "D001" -> Some D001
  | "D002" -> Some D002
  | "D003" -> Some D003
  | "D004" -> Some D004
  | "R001" -> Some R001
  | "M001" -> Some M001
  | _ -> None

let title = function
  | D001 -> "order-sensitive Hashtbl.iter/fold"
  | D002 -> "polymorphic compare/equality/hash at an interned-handle type"
  | D003 -> "Stdlib.Random outside Dessim.Rng"
  | D004 -> "float equality/compare on a virtual-time-shaped value"
  | R001 -> "mutable toplevel state in a worker-reachable module"
  | M001 -> "Marshal read without a version guard"

let fix_hint = function
  | D001 ->
      "iterate in a deterministic order: Hashtbl.to_seq |> List.of_seq |> \
       List.sort ..., or suppress with a written order-insensitivity argument"
  | D002 ->
      "use the type's own compare/equal/hash (As_path.equal, Prefix.compare, \
       ...): polymorphic compare reads arena ids and handle internals"
  | D003 ->
      "draw from a seeded Dessim.Rng stream; the global Random state breaks \
       run isolation and parallel determinism"
  | D004 ->
      "virtual times are computed floats: compare with an ordering (<, <=) \
       or an explicit tolerance, or suppress with an exactness argument"
  | R001 ->
      "module-level refs/tables are shared by every domain running this \
       code; move the state into the simulation record or a Domain.DLS key"
  | M001 ->
      "check a version/magic header before unmarshalling: a stale blob read \
       into a changed type corrupts memory silently"

let compare a b = String.compare (id a) (id b)
