(** The typedtree analysis pass: loads [.cmt] files (produced by
    [dune build \@check]) and evaluates the {!Rule} set against the
    typer's resolved view of each module.  See DESIGN.md §16 for the
    rule catalog and the documented approximations. *)

val analyze_structure :
  unit_name:string ->
  source_file:string ->
  worker_reachable:bool ->
  Typedtree.structure ->
  Finding.t list
(** Run every rule over one typedtree.  [unit_name] is the compilation
    unit (e.g. ["Bgp__Speaker"]) — it qualifies local [t] types for
    D002 and exempts [Dessim.Rng] from D003.  [worker_reachable]
    arms R001.  Findings are sorted and de-duplicated. *)

val analyze_cmt :
  ?worker_reachable:bool -> string -> (string * Finding.t list, string) result
(** Read a [.cmt] and analyze its implementation; returns the unit
    name and findings.  Interfaces and packed cmts yield no findings.
    [worker_reachable] defaults to [true] (single-file mode assumes
    the worst). *)

val imports_of_cmt : string -> (string * string list, string) result
(** Unit name and direct compilation-unit imports, for the R001
    reachability graph. *)

val worker_reachable_set :
  imports:(string * string list) list ->
  roots:string list ->
  Set.Make(String).t
(** Units reachable from parallel worker code: seeds are every unit
    whose normalized name is a root, or that directly imports one
    (callers of [Parallel]/[Sweep] enqueue closures of their own
    code), closed transitively over imports. *)

val default_roots : string list
(** [["Parallel"; "Sweep"]]. *)

val norm_unit_last : string -> string
(** ["Bgp__As_path"] → ["As_path"]. *)
