(** The known-bad fixture corpus: one snippet per rule id (plus good
    twins and a suppression case), compiled with [ocamlc -bin-annot]
    into a scratch directory and run through the same cmt pass as the
    real tree.  Exercised by [test_lint_src] and
    [bgpsim_lint --selftest]. *)

type expect =
  | Fires of Rule.t
  | Clean
  | Suppressed of Rule.t

type fixture = { name : string; expect : expect; code : string }

val all : fixture list

val ocamlc_available : unit -> bool

val run : dir:string -> fixture -> (Report.t, string) result
(** Compile the fixture in [dir], analyze its cmt and classify the
    findings against the fixture's own suppression comments. *)

val check_one : dir:string -> fixture -> (unit, string) result

val check_all : unit -> (int, string list) result
(** Run every fixture in a scratch directory; [Ok n] is the corpus
    size, [Error] collects per-fixture failures. *)
