(* The typedtree pass behind bgpsim-lint (DESIGN.md §16).

   Input is a .cmt file produced by `dune build @check`: the typer's
   own view of the module, so every identifier is resolved (no
   text-level guessing about what [compare] or [Hashtbl.iter] means)
   and every use site carries its instantiated type (so D002 can see
   that a polymorphic compare was applied *at* [Prefix.t]).

   Scope and honesty notes:
   - D002 matches types that syntactically mention an interned-handle
     constructor in the instantiated type.  A handle hidden behind an
     abstract wrapper type is not seen; wrappers of handles should
     export their own compare/equal, which also satisfies the rule.
   - M001 uses a guard heuristic: a Marshal/input_value read passes if
     the same toplevel definition references an identifier or record
     field whose name contains "version", "magic" or "header" at an
     earlier source position.  That is exactly the shape of
     Churn.Checkpoint.read; anything else must argue its safety in a
     suppression.
   - R001's type test covers the stdlib mutable containers (ref,
     array, bytes, Hashtbl/Buffer/Queue/Stack, Random.State) plus
     records with mutable fields declared in the same unit.  Local
     record types are matched by identifier stamp, not name, so an
     inner module's mutable [t] never taints an outer immutable [t];
     the flip side is that a mutable record referenced only through a
     qualified path ([Table.t]) is not seen.  [Domain.DLS] keys and
     [Atomic.t] are deliberately not flagged: they are the sanctioned
     forms of domain-shared state. *)

module SSet = Set.Make (String)
module SMap = Map.Make (String)

(* --- name normalization --- *)

(* "Bgp__As_path" -> ["Bgp"; "As_path"]; single underscores survive. *)
let split_on_dunder s =
  let n = String.length s in
  let parts = ref [] and start = ref 0 and i = ref 0 in
  while !i + 1 < n do
    if s.[!i] = '_' && s.[!i + 1] = '_' then begin
      parts := String.sub s !start (!i - !start) :: !parts;
      i := !i + 2;
      start := !i
    end
    else incr i
  done;
  parts := String.sub s !start (n - !start) :: !parts;
  List.rev (List.filter (fun p -> p <> "") !parts)

let norm_segments name =
  let segs =
    String.split_on_char '.' name |> List.concat_map split_on_dunder
  in
  match segs with "Stdlib" :: (_ :: _ as rest) -> rest | segs -> segs

let is_stdlib name =
  String.length name >= 7 && String.sub name 0 7 = "Stdlib."

let last_two segs =
  match List.rev segs with
  | t :: m :: _ -> m ^ "." ^ t
  | [ one ] -> one
  | [] -> ""

(* --- rule predicates over resolved paths --- *)

let is_hashtbl_iter_fold segs =
  match segs with [ "Hashtbl"; ("iter" | "fold") ] -> true | _ -> false

let poly_ops = [ "compare"; "="; "<>"; "<"; ">"; "<="; ">="; "min"; "max" ]

let is_poly_compare segs =
  match segs with
  | [ op ] -> List.mem op poly_ops
  | [ "Hashtbl"; ("hash" | "seeded_hash" | "hash_param") ] -> true
  | _ -> false

(* The equality/three-way subset that D004 cares about; orderings
   (<, <=) on floats are deterministic and allowed. *)
let is_eq_or_cmp segs =
  match segs with [ ("compare" | "=" | "<>") ] -> true | _ -> false

let is_float_eq_or_cmp segs =
  match segs with [ "Float"; ("equal" | "compare") ] -> true | _ -> false

let is_random segs = match segs with "Random" :: _ -> true | _ -> false

let is_marshal_read ~raw segs =
  match segs with
  | [ "Marshal"; ("from_channel" | "from_bytes" | "from_string") ] -> true
  | [ "input_value" ] -> is_stdlib raw
  | _ -> false

let contains_sub ~sub s =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  go 0

let is_guard_name name =
  let l = String.lowercase_ascii name in
  contains_sub ~sub:"version" l
  || contains_sub ~sub:"magic" l
  || contains_sub ~sub:"header" l

(* --- type inspection --- *)

let interned_handles = [ "As_path.t"; "Prefix.t"; "Event.t" ]

let path_is_handle ~unit_segs p =
  let segs = norm_segments (Path.name p) in
  match segs with
  | [ "t" ] -> (
      (* a local [t]: qualify with the defining unit's own name *)
      match List.rev unit_segs with
      | m :: _ -> List.mem (m ^ ".t") interned_handles
      | [] -> false)
  | _ -> List.mem (last_two segs) interned_handles

let type_mentions_handle ~unit_segs ty =
  let seen = Hashtbl.create 16 in
  let rec go ty =
    let id = Types.get_id ty in
    if Hashtbl.mem seen id then false
    else begin
      Hashtbl.add seen id ();
      match Types.get_desc ty with
      | Tconstr (p, args, _) ->
          path_is_handle ~unit_segs p || List.exists go args
      | Ttuple l -> List.exists go l
      | Tarrow (_, a, b, _) -> go a || go b
      | Tpoly (t, ts) -> go t || List.exists go ts
      | _ -> false
    end
  in
  go ty

let rec first_arg_type ty =
  match Types.get_desc ty with
  | Tarrow (_, a, _, _) -> Some a
  | Tpoly (t, _) -> first_arg_type t
  | _ -> None

let is_float_type ty =
  match Types.get_desc ty with
  | Tconstr (p, [], _) -> Path.name p = "float"
  | _ -> false

(* A small deterministic type printer for witnesses (Printtyp needs an
   environment we do not have when reading foreign cmts). *)
let type_to_string ty =
  let rec go depth ty =
    if depth > 3 then "_"
    else
      match Types.get_desc ty with
      | Tconstr (p, [], _) -> last_two (norm_segments (Path.name p))
      | Tconstr (p, args, _) ->
          let args = List.map (go (depth + 1)) args in
          Printf.sprintf "(%s) %s" (String.concat ", " args)
            (last_two (norm_segments (Path.name p)))
      | Ttuple l -> String.concat " * " (List.map (go (depth + 1)) l)
      | Tarrow (_, a, b, _) -> go (depth + 1) a ^ " -> " ^ go (depth + 1) b
      | Tvar _ -> "'_"
      | _ -> "_"
  in
  go 0 ty

(* --- the pass --- *)

type ctx = {
  unit_segs : string list;
  fallback_file : string;
  reachable : bool;
  exempt_rng : bool;
  mutable findings : Finding.t list;
  mutable local_mutable_types : Ident.t list;
  mutable guards : (int * int) list;
      (* positions of version-ish references in the current toplevel item *)
  mutable marshal_sites : ((int * int) * string * string) list;
      (* position, file, witness — judged when the item closes *)
}

let loc_pos (loc : Location.t) =
  let p = loc.loc_start in
  (p.pos_lnum, p.pos_cnum - p.pos_bol)

let loc_file ctx (loc : Location.t) =
  let f = loc.loc_start.pos_fname in
  if f = "" then ctx.fallback_file else f

let add_finding ctx rule loc witness =
  let line, col = loc_pos loc in
  ctx.findings <-
    Finding.make ~rule ~file:(loc_file ctx loc) ~line ~col ~witness
    :: ctx.findings

let on_ident ctx (e : Typedtree.expression) path =
  let raw = Path.name path in
  let segs = norm_segments raw in
  let stdlib = is_stdlib raw in
  let witness () = Printf.sprintf "%s : %s" raw (type_to_string e.exp_type) in
  if stdlib && is_hashtbl_iter_fold segs then
    add_finding ctx Rule.D001 e.exp_loc (witness ());
  if stdlib && is_poly_compare segs then begin
    if type_mentions_handle ~unit_segs:ctx.unit_segs e.exp_type then
      add_finding ctx Rule.D002 e.exp_loc (witness ());
    if
      is_eq_or_cmp segs
      && (match first_arg_type e.exp_type with
         | Some a -> is_float_type a
         | None -> false)
    then add_finding ctx Rule.D004 e.exp_loc (witness ())
  end;
  if stdlib && is_float_eq_or_cmp segs then
    add_finding ctx Rule.D004 e.exp_loc (witness ());
  if stdlib && is_random segs && not ctx.exempt_rng then
    add_finding ctx Rule.D003 e.exp_loc (witness ());
  if is_marshal_read ~raw segs then
    ctx.marshal_sites <-
      (loc_pos e.exp_loc, loc_file ctx e.exp_loc, witness ())
      :: ctx.marshal_sites;
  match List.rev segs with
  | name :: _ when is_guard_name name ->
      ctx.guards <- loc_pos e.exp_loc :: ctx.guards
  | _ -> ()

let on_field ctx (e : Typedtree.expression) (ld : Types.label_description) =
  if is_guard_name ld.lbl_name then ctx.guards <- loc_pos e.exp_loc :: ctx.guards

let pos_before (l1, c1) (l2, c2) = l1 < l2 || (l1 = l2 && c1 <= c2)

let flush_marshal ctx =
  List.iter
    (fun (pos, file, witness) ->
      let guarded = List.exists (fun g -> pos_before g pos) ctx.guards in
      if not guarded then
        let line, col = pos in
        ctx.findings <-
          Finding.make ~rule:Rule.M001 ~file ~line ~col ~witness
          :: ctx.findings)
    ctx.marshal_sites

let iterator ctx =
  let open Tast_iterator in
  let expr sub (e : Typedtree.expression) =
    (match e.exp_desc with
    | Texp_ident (path, _, _) -> on_ident ctx e path
    | Texp_field (_, _, ld) -> on_field ctx e ld
    | _ -> ());
    default_iterator.expr sub e
  in
  let structure_item sub (item : Typedtree.structure_item) =
    let saved_guards = ctx.guards and saved_marshal = ctx.marshal_sites in
    ctx.guards <- [];
    ctx.marshal_sites <- [];
    default_iterator.structure_item sub item;
    flush_marshal ctx;
    ctx.guards <- saved_guards;
    ctx.marshal_sites <- saved_marshal
  in
  { default_iterator with expr; structure_item }

(* --- R001: module-level mutable bindings --- *)

let mutable_container_modules =
  [ "Hashtbl"; "Buffer"; "Queue"; "Stack"; "Weak"; "Dynarray" ]

let rec type_is_mutable ctx depth ty =
  depth <= 5
  &&
  match Types.get_desc ty with
  | Tconstr (p, _, _) -> (
      let segs = norm_segments (Path.name p) in
      match segs with
      | [ "ref" ] | [ "array" ] | [ "bytes" ] -> true
      | [ "Random"; "State"; "t" ] -> true
      | [ m; "t" ] -> List.mem m mutable_container_modules
      | [ _ ] -> (
          match p with
          | Path.Pident id ->
              List.exists (Ident.same id) ctx.local_mutable_types
          | _ -> false)
      | _ -> false)
  | Ttuple l -> List.exists (type_is_mutable ctx (depth + 1)) l
  | _ -> false

let check_toplevel_binding ctx (vb : Typedtree.value_binding) =
  if ctx.reachable && type_is_mutable ctx 0 vb.vb_pat.pat_type then
    let name =
      match Typedtree.pat_bound_idents vb.vb_pat with
      | id :: _ -> Ident.name id
      | [] -> "_"
    in
    add_finding ctx Rule.R001 vb.vb_pat.pat_loc
      (Printf.sprintf "toplevel mutable binding %s : %s" name
         (type_to_string vb.vb_pat.pat_type))

let rec check_module_level ctx (str : Typedtree.structure) =
  List.iter
    (fun (item : Typedtree.structure_item) ->
      match item.str_desc with
      | Tstr_type (_, decls) ->
          List.iter
            (fun (d : Typedtree.type_declaration) ->
              match d.typ_type.Types.type_kind with
              | Type_record (lds, _)
                when List.exists
                       (fun (l : Types.label_declaration) ->
                         l.ld_mutable = Asttypes.Mutable)
                       lds ->
                  ctx.local_mutable_types <-
                    d.typ_id :: ctx.local_mutable_types
              | _ -> ())
            decls
      | _ -> ())
    str.str_items;
  List.iter
    (fun (item : Typedtree.structure_item) ->
      match item.str_desc with
      | Tstr_value (_, vbs) -> List.iter (check_toplevel_binding ctx) vbs
      | Tstr_module mb -> check_module_binding ctx mb
      | Tstr_recmodule mbs -> List.iter (check_module_binding ctx) mbs
      | _ -> ())
    str.str_items

and check_module_binding ctx (mb : Typedtree.module_binding) =
  match mb.mb_expr.mod_desc with
  | Tmod_structure s -> check_module_level ctx s
  | Tmod_constraint (me, _, _, _) -> (
      match me.mod_desc with
      | Tmod_structure s -> check_module_level ctx s
      | _ -> ())
  | _ -> ()

(* --- entry points --- *)

let analyze_structure ~unit_name ~source_file ~worker_reachable str =
  let unit_segs = split_on_dunder unit_name in
  let exempt_rng =
    match List.rev unit_segs with "Rng" :: _ -> true | _ -> false
  in
  let ctx =
    {
      unit_segs;
      fallback_file = source_file;
      reachable = worker_reachable;
      exempt_rng;
      findings = [];
      local_mutable_types = [];
      guards = [];
      marshal_sites = [];
    }
  in
  let it = iterator ctx in
  it.structure it str;
  check_module_level ctx str;
  List.sort_uniq Finding.compare ctx.findings

let analyze_cmt ?(worker_reachable = true) path =
  match Cmt_format.read_cmt path with
  | exception e ->
      Error (Printf.sprintf "%s: cannot read cmt (%s)" path (Printexc.to_string e))
  | cmt -> (
      let source = Option.value cmt.cmt_sourcefile ~default:"" in
      match cmt.cmt_annots with
      | Implementation str ->
          Ok
            ( cmt.cmt_modname,
              analyze_structure ~unit_name:cmt.cmt_modname
                ~source_file:source ~worker_reachable str )
      | _ -> Ok (cmt.cmt_modname, []))

let imports_of_cmt path =
  match Cmt_format.read_cmt path with
  | exception e ->
      Error (Printf.sprintf "%s: cannot read cmt (%s)" path (Printexc.to_string e))
  | cmt -> Ok (cmt.cmt_modname, List.map fst cmt.cmt_imports)

let norm_unit_last name =
  match List.rev (split_on_dunder name) with seg :: _ -> seg | [] -> name

let worker_reachable_set ~imports ~roots =
  let root_names = SSet.of_list roots in
  let is_root_unit u = SSet.mem (norm_unit_last u) root_names in
  let dep_map =
    List.fold_left (fun m (u, deps) -> SMap.add u deps m) SMap.empty imports
  in
  let seeds =
    List.filter_map
      (fun (u, deps) ->
        if is_root_unit u || List.exists is_root_unit deps then Some u
        else None)
      imports
  in
  let rec closure visited = function
    | [] -> visited
    | u :: rest ->
        if SSet.mem u visited then closure visited rest
        else
          let visited = SSet.add u visited in
          let deps =
            match SMap.find_opt u dep_map with Some d -> d | None -> []
          in
          closure visited (deps @ rest)
  in
  closure SSet.empty seeds

let default_roots = [ "Parallel"; "Sweep" ]
