(** Report assembly: findings classified against suppression comments
    and the allowlist, rendered for humans or as [--json] output. *)

type status =
  | Open
  | Suppressed_comment of string  (** justification *)
  | Allowlisted of string  (** justification *)

type entry = { finding : Finding.t; status : status }

type t = {
  entries : entry list;  (** sorted by {!Finding.compare} *)
  config_errors : string list;
      (** malformed suppressions, missing justifications — exit 2 *)
  unused_suppressions : (string * int * Rule.t) list;
      (** informational: suppression comments matching no finding *)
}

val build :
  findings:Finding.t list ->
  scan_source:(string -> Suppress.t list * string list) ->
  allows:Suppress.allow list ->
  allow_errors:string list ->
  t
(** Classify [findings].  [scan_source] maps a finding's file to its
    suppression comments (typically {!Suppress.scan_file} composed
    with the source root); it is called once per distinct file. *)

val open_count : t -> int

val suppressed_count : t -> int

val exit_code : t -> int
(** 0 = clean, 1 = unsuppressed findings, 2 = config errors. *)

val pp : ?show_suppressed:bool -> Format.formatter -> t -> unit

val to_text : ?show_suppressed:bool -> t -> string

val schema : string
(** ["bgpsim-lint/1"]. *)

val to_json : t -> Json.t

val to_json_string : t -> string

val of_json_string : string -> (t, string) result
(** Inverse of {!to_json_string} up to [unused_suppressions] (not
    serialized).  Used by the schema round-trip tests. *)
