type t = {
  rule : Rule.t;
  file : string;
  line : int;
  col : int;
  witness : string;
}

let make ~rule ~file ~line ~col ~witness = { rule; file; line; col; witness }

let compare a b =
  let c = String.compare a.file b.file in
  if c <> 0 then c
  else
    let c = Int.compare a.line b.line in
    if c <> 0 then c
    else
      let c = Int.compare a.col b.col in
      if c <> 0 then c
      else
        let c = Rule.compare a.rule b.rule in
        if c <> 0 then c else String.compare a.witness b.witness

let equal a b = compare a b = 0

let to_string f =
  Printf.sprintf "%s:%d:%d: %s %s [%s]" f.file f.line f.col (Rule.id f.rule)
    (Rule.title f.rule) f.witness

let pp ppf f = Format.pp_print_string ppf (to_string f)
