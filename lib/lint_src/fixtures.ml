(* Known-bad (and known-good) snippets, one per rule, compiled with
   `ocamlc -bin-annot` into a scratch directory at check time and fed
   through the same cmt pass as the real tree.  This keeps the rule
   implementations honest: a rule that silently stops firing breaks
   the corpus, not just future regressions. *)

type expect =
  | Fires of Rule.t  (* at least one open finding of this rule *)
  | Clean  (* no findings at all *)
  | Suppressed of Rule.t  (* the rule fires but a comment suppresses it *)

type fixture = { name : string; expect : expect; code : string }

let all =
  [
    {
      name = "fix_d001_bad";
      expect = Fires Rule.D001;
      code =
        "let sum_values (h : (int, int) Hashtbl.t) =\n\
         \  Hashtbl.fold (fun _k v acc -> v :: acc) h []\n";
    };
    {
      name = "fix_d001_iter_bad";
      expect = Fires Rule.D001;
      code =
        "let print_all (h : (int, string) Hashtbl.t) =\n\
         \  Hashtbl.iter (fun k v -> Printf.printf \"%d=%s\\n\" k v) h\n";
    };
    {
      name = "fix_d001_good";
      expect = Clean;
      code =
        "let sorted_bindings (h : (int, string) Hashtbl.t) =\n\
         \  Hashtbl.to_seq h |> List.of_seq\n\
         \  |> List.sort (fun (a, _) (b, _) -> Int.compare a b)\n";
    };
    {
      name = "fix_d002_bad";
      expect = Fires Rule.D002;
      code =
        "module As_path = struct\n\
         \  type t = { id : int; hash : int }\n\
         \  let make id = { id; hash = id * 7 }\n\
         end\n\
         let smaller (a : As_path.t) (b : As_path.t) = compare a b < 0\n\
         let _ = smaller (As_path.make 1) (As_path.make 2)\n";
    };
    {
      name = "fix_d002_equal_bad";
      expect = Fires Rule.D002;
      code =
        "module Prefix = struct\n\
         \  type t = { origin : int; index : int }\n\
         \  let make origin = { origin; index = 0 }\n\
         end\n\
         let same (a : Prefix.t) (b : Prefix.t) = a = b\n\
         let _ = same (Prefix.make 1) (Prefix.make 1)\n";
    };
    {
      name = "fix_d003_bad";
      expect = Fires Rule.D003;
      code = "let roll () = Random.int 6\n";
    };
    {
      name = "fix_d004_bad";
      expect = Fires Rule.D004;
      code = "let at_same_vtime (a : float) (b : float) = a = b\n";
    };
    {
      name = "fix_d004_compare_bad";
      expect = Fires Rule.D004;
      code = "let order (a : float) (b : float) = compare a b\n";
    };
    {
      name = "fix_d004_good";
      expect = Clean;
      code =
        "let before (a : float) (b : float) = a < b\n\
         let close a b = Float.abs (a -. b) < 1e-9\n";
    };
    {
      name = "fix_r001_bad";
      expect = Fires Rule.R001;
      code = "let cache : (int, string) Hashtbl.t = Hashtbl.create 16\n";
    };
    {
      name = "fix_r001_ref_bad";
      expect = Fires Rule.R001;
      code = "let counter = ref 0\nlet bump () = incr counter\n";
    };
    {
      name = "fix_r001_record_bad";
      expect = Fires Rule.R001;
      code =
        "type cell = { mutable hits : int }\n\
         let state = { hits = 0 }\n\
         let bump () = state.hits <- state.hits + 1\n";
    };
    {
      name = "fix_r001_shadow_good";
      expect = Clean;
      code =
        "type t = { x : int }\n\
         module Inner = struct\n\
         \  type nonrec t = { mutable y : int }\n\
         \  let read (r : t) = r.y\n\
         end\n\
         let top : t = { x = 1 }\n\
         let _ = (top, Inner.read)\n";
    };
    {
      name = "fix_r001_good";
      expect = Clean;
      code =
        "type sim = { steps : int }\n\
         let run sim =\n\
         \  let seen = Hashtbl.create 16 in\n\
         \  Hashtbl.replace seen sim.steps ();\n\
         \  Hashtbl.length seen\n";
    };
    {
      name = "fix_m001_bad";
      expect = Fires Rule.M001;
      code =
        "let load (ic : in_channel) : string = Marshal.from_channel ic\n";
    };
    {
      name = "fix_m001_good";
      expect = Clean;
      code =
        "let expected_version = 3\n\
         let load (ic : in_channel) : string =\n\
         \  let v = int_of_string (input_line ic) in\n\
         \  if v <> expected_version then failwith \"bad checkpoint version\";\n\
         \  Marshal.from_channel ic\n";
    };
    {
      name = "fix_d001_suppressed";
      expect = Suppressed Rule.D001;
      code =
        "let total (h : (int, int) Hashtbl.t) =\n\
         \  (* bgpsim-lint: allow D001 \xe2\x80\x94 integer addition is \
         commutative; iteration order cannot leak *)\n\
         \  Hashtbl.fold (fun _k v acc -> acc + v) h 0\n";
    };
  ]

let ocamlc_available () = Sys.command "ocamlc -version > /dev/null 2>&1" = 0

let write_file path contents =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc contents)

let compile ~dir fx =
  let ml = Filename.concat dir (fx.name ^ ".ml") in
  write_file ml fx.code;
  let cmd =
    Printf.sprintf "cd %s && ocamlc -bin-annot -w -a -c %s > /dev/null 2>&1"
      (Filename.quote dir)
      (Filename.quote (fx.name ^ ".ml"))
  in
  if Sys.command cmd <> 0 then
    Error (Printf.sprintf "fixture %s does not compile" fx.name)
  else Ok (Filename.concat dir (fx.name ^ ".cmt"))

(* Analyze one fixture: compile, run the pass, apply its own
   suppression comments (fixtures carry no allowlist). *)
let run ~dir fx =
  match compile ~dir fx with
  | Error _ as e -> e
  | Ok cmt -> (
      match Analyze.analyze_cmt cmt with
      | Error _ as e -> e
      | Ok (_unit, findings) ->
          (* the cmt records the bare file name; resolve it in [dir] *)
          let scan_source file =
            Suppress.scan_file (Filename.concat dir (Filename.basename file))
          in
          Ok (Report.build ~findings ~scan_source ~allows:[] ~allow_errors:[]))

let check_one ~dir fx =
  match run ~dir fx with
  | Error e -> Error e
  | Ok report -> (
      let opens =
        List.filter (fun e -> e.Report.status = Report.Open) report.entries
      in
      let has_open rule =
        List.exists (fun e -> e.Report.finding.Finding.rule = rule) opens
      in
      let has_suppressed rule =
        List.exists
          (fun e ->
            e.Report.finding.Finding.rule = rule
            && e.Report.status <> Report.Open)
          report.entries
      in
      match fx.expect with
      | Fires rule ->
          if has_open rule then Ok ()
          else
            Error
              (Printf.sprintf "fixture %s: expected an open %s finding, got %s"
                 fx.name (Rule.id rule)
                 (Report.to_text ~show_suppressed:true report))
      | Clean ->
          if report.entries = [] then Ok ()
          else
            Error
              (Printf.sprintf "fixture %s: expected no findings, got %s"
                 fx.name
                 (Report.to_text ~show_suppressed:true report))
      | Suppressed rule ->
          if has_suppressed rule && not (has_open rule) then Ok ()
          else
            Error
              (Printf.sprintf
                 "fixture %s: expected %s suppressed by comment, got %s"
                 fx.name (Rule.id rule)
                 (Report.to_text ~show_suppressed:true report)))

let with_scratch_dir f =
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "bgpsim-lint-fixtures-%d" (Unix.getpid ()))
  in
  if not (Sys.file_exists dir) then Unix.mkdir dir 0o755;
  Fun.protect
    ~finally:(fun () ->
      if Sys.file_exists dir then begin
        Array.iter
          (fun f -> try Sys.remove (Filename.concat dir f) with Sys_error _ -> ())
          (Sys.readdir dir);
        try Unix.rmdir dir with Unix.Unix_error _ -> ()
      end)
    (fun () -> f dir)

let check_all () =
  if not (ocamlc_available ()) then
    Error [ "ocamlc not found on PATH; cannot compile the fixture corpus" ]
  else
    with_scratch_dir (fun dir ->
        let failures =
          List.filter_map
            (fun fx ->
              match check_one ~dir fx with Ok () -> None | Error e -> Some e)
            all
        in
        if failures = [] then Ok (List.length all) else Error failures)
