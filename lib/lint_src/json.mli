(** Minimal JSON tree, emitter and parser — just enough for the lint
    report's [--json] output to round-trip without an external
    dependency.  The emitter is deterministic; raw UTF-8 bytes in
    strings pass through both directions unchanged. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Str of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string

val of_string : string -> (t, string) result

val member : string -> t -> t option
(** Object field lookup; [None] on non-objects and missing keys. *)

val to_str : t -> string option

val to_int : t -> int option

val to_list : t -> t list option
