type t = { emit : Event.t -> unit; close : unit -> unit }

let null = { emit = (fun _ -> ()); close = (fun () -> ()) }

let fn f = { emit = f; close = (fun () -> ()) }

let memory () =
  let buf = ref [] in
  let sink = { emit = (fun ev -> buf := ev :: !buf); close = (fun () -> ()) } in
  let contents () = List.rev !buf in
  (sink, contents)

let ring ?counters ~capacity () =
  if capacity <= 0 then invalid_arg "Sink.ring: capacity must be positive";
  let slots = Array.make capacity None in
  let next = ref 0 in
  let emit ev =
    (if !next >= capacity then
       match counters with
       | Some c -> Counters.incr_trace_dropped c
       | None -> ());
    slots.(!next mod capacity) <- Some ev;
    incr next
  in
  let contents () =
    let n = !next in
    let len = min n capacity in
    let start = n - len in
    List.init len (fun i ->
        match slots.((start + i) mod capacity) with
        | Some ev -> ev
        | None -> assert false)
  in
  ({ emit; close = (fun () -> ()) }, contents)

let jsonl oc =
  {
    emit =
      (fun ev ->
        output_string oc (Event.to_json ev);
        output_char oc '\n');
    close = (fun () -> flush oc);
  }

let jsonl_file path =
  let oc = open_out path in
  {
    emit =
      (fun ev ->
        output_string oc (Event.to_json ev);
        output_char oc '\n');
    close = (fun () -> close_out oc);
  }

(* Frames accumulate in a reused buffer and hit the channel in ~64KB
   writes, so the hot path does no per-event allocation or syscall. *)
let binary_flush_threshold = 64 * 1024

let binary_emitter oc ~close_channel =
  let buf = Buffer.create (binary_flush_threshold + 512) in
  Buffer.add_string buf Binary.header;
  let flush_buf () =
    Buffer.output_buffer oc buf;
    Buffer.clear buf
  in
  {
    emit =
      (fun ev ->
        Binary.encode buf ev;
        if Buffer.length buf >= binary_flush_threshold then flush_buf ());
    close =
      (fun () ->
        flush_buf ();
        if close_channel then close_out oc else flush oc);
  }

let binary oc = binary_emitter oc ~close_channel:false

let binary_file path =
  binary_emitter (open_out_bin path) ~close_channel:true

let tee a b =
  {
    emit =
      (fun ev ->
        a.emit ev;
        b.emit ev);
    close =
      (fun () ->
        a.close ();
        b.close ());
  }

let emit t ev = t.emit ev
let close t = t.close ()
