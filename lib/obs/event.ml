(* Message-drop causes, closed so the hot drop path never allocates a
   reason string.  [drop_reason_to_string] is pinned: the JSONL
   serialization (and therefore every golden digest) renders these
   exact bytes. *)
type drop_reason = Down | Loss | Stale_epoch

let drop_reason_to_string = function
  | Down -> "down"
  | Loss -> "loss"
  | Stale_epoch -> "stale-epoch"

(* Events that are about one destination prefix carry its dense id
   ([Bgp.Prefix.Table]) as [prefix].  Single-prefix simulations leave
   it [None], which renders to the exact historical bytes — golden
   digests from before the field existed still hold. *)
type t =
  | Update_sent of {
      time : float;
      src : int;
      dst : int;
      withdraw : bool;
      prefix : int option;
    }
  | Update_recv of {
      time : float;
      node : int;
      from : int;
      withdraw : bool;
      prefix : int option;
    }
  | Originate of { time : float; node : int; prefix : int option }
  | Withdrawal of { time : float; node : int; prefix : int option }
  | Fib_change of {
      time : float;
      node : int;
      next_hop : int option;
      prefix : int option;
    }
  | Mrai_fire of { time : float; node : int; peer : int }
  | Node_busy of { time : float; node : int; depth : int }
  | Link_state of { time : float; a : int; b : int; up : bool }
  | Msg_dropped of { time : float; a : int; b : int; reason : drop_reason }
  | Loop_detected of {
      time : float;
      members : int list;
      trigger : int;
      prefix : int option;
    }
  | Loop_resolved of { time : float; members : int list; prefix : int option }

let time = function
  | Update_sent { time; _ }
  | Update_recv { time; _ }
  | Originate { time; _ }
  | Withdrawal { time; _ }
  | Fib_change { time; _ }
  | Mrai_fire { time; _ }
  | Node_busy { time; _ }
  | Link_state { time; _ }
  | Msg_dropped { time; _ }
  | Loop_detected { time; _ }
  | Loop_resolved { time; _ } -> time

let prefix = function
  | Update_sent { prefix; _ }
  | Update_recv { prefix; _ }
  | Originate { prefix; _ }
  | Withdrawal { prefix; _ }
  | Fib_change { prefix; _ }
  | Loop_detected { prefix; _ }
  | Loop_resolved { prefix; _ } -> prefix
  | Mrai_fire _ | Node_busy _ | Link_state _ | Msg_dropped _ -> None

let kind = function
  | Update_sent _ -> "update_sent"
  | Update_recv _ -> "update_recv"
  | Originate _ -> "originate"
  | Withdrawal _ -> "withdrawal"
  | Fib_change _ -> "fib_change"
  | Mrai_fire _ -> "mrai_fire"
  | Node_busy _ -> "node_busy"
  | Link_state _ -> "link_state"
  | Msg_dropped _ -> "msg_dropped"
  | Loop_detected _ -> "loop_detected"
  | Loop_resolved _ -> "loop_resolved"

(* Serialization must be byte-stable: golden-trace digests are computed
   over these lines, so the float format is pinned here and nowhere
   else.  %.12g round-trips every virtual time the simulator produces
   (sums of uniform draws well above 1e-12 relative precision). *)
let fmt_time t = Printf.sprintf "%.12g" t

let msg_kind withdraw = if withdraw then "withdraw" else "announce"

let int_list members =
  "[" ^ String.concat "," (List.map string_of_int members) ^ "]"

(* [None] renders to nothing so pre-multi-prefix traces keep their
   exact bytes (and digests). *)
let pfx = function
  | None -> ""
  | Some p -> Printf.sprintf {|,"pfx":%d|} p

let to_json ev =
  match ev with
  | Update_sent { time; src; dst; withdraw; prefix } ->
      Printf.sprintf
        {|{"ev":"update_sent","t":%s,"src":%d,"dst":%d,"kind":"%s"%s}|}
        (fmt_time time) src dst (msg_kind withdraw) (pfx prefix)
  | Update_recv { time; node; from; withdraw; prefix } ->
      Printf.sprintf
        {|{"ev":"update_recv","t":%s,"node":%d,"from":%d,"kind":"%s"%s}|}
        (fmt_time time) node from (msg_kind withdraw) (pfx prefix)
  | Originate { time; node; prefix } ->
      Printf.sprintf {|{"ev":"originate","t":%s,"node":%d%s}|} (fmt_time time)
        node (pfx prefix)
  | Withdrawal { time; node; prefix } ->
      Printf.sprintf {|{"ev":"withdrawal","t":%s,"node":%d%s}|} (fmt_time time)
        node (pfx prefix)
  | Fib_change { time; node; next_hop; prefix } ->
      Printf.sprintf {|{"ev":"fib_change","t":%s,"node":%d,"next_hop":%s%s}|}
        (fmt_time time) node
        (match next_hop with None -> "null" | Some nh -> string_of_int nh)
        (pfx prefix)
  | Mrai_fire { time; node; peer } ->
      Printf.sprintf {|{"ev":"mrai_fire","t":%s,"node":%d,"peer":%d}|}
        (fmt_time time) node peer
  | Node_busy { time; node; depth } ->
      Printf.sprintf {|{"ev":"node_busy","t":%s,"node":%d,"depth":%d}|}
        (fmt_time time) node depth
  | Link_state { time; a; b; up } ->
      Printf.sprintf {|{"ev":"link_state","t":%s,"a":%d,"b":%d,"up":%b}|}
        (fmt_time time) a b up
  | Msg_dropped { time; a; b; reason } ->
      Printf.sprintf {|{"ev":"msg_dropped","t":%s,"a":%d,"b":%d,"reason":"%s"}|}
        (fmt_time time) a b (drop_reason_to_string reason)
  | Loop_detected { time; members; trigger; prefix } ->
      Printf.sprintf {|{"ev":"loop_detected","t":%s,"members":%s,"trigger":%d%s}|}
        (fmt_time time) (int_list members) trigger (pfx prefix)
  | Loop_resolved { time; members; prefix } ->
      Printf.sprintf {|{"ev":"loop_resolved","t":%s,"members":%s%s}|}
        (fmt_time time) (int_list members) (pfx prefix)
