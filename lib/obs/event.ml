(* Message-drop causes, closed so the hot drop path never allocates a
   reason string.  [drop_reason_to_string] is pinned: the JSONL
   serialization (and therefore every golden digest) renders these
   exact bytes. *)
type drop_reason = Down | Loss | Stale_epoch

let drop_reason_to_string = function
  | Down -> "down"
  | Loss -> "loss"
  | Stale_epoch -> "stale-epoch"

type t =
  | Update_sent of { time : float; src : int; dst : int; withdraw : bool }
  | Update_recv of { time : float; node : int; from : int; withdraw : bool }
  | Originate of { time : float; node : int }
  | Withdrawal of { time : float; node : int }
  | Fib_change of { time : float; node : int; next_hop : int option }
  | Mrai_fire of { time : float; node : int; peer : int }
  | Node_busy of { time : float; node : int; depth : int }
  | Link_state of { time : float; a : int; b : int; up : bool }
  | Msg_dropped of { time : float; a : int; b : int; reason : drop_reason }
  | Loop_detected of { time : float; members : int list; trigger : int }
  | Loop_resolved of { time : float; members : int list }

let time = function
  | Update_sent { time; _ }
  | Update_recv { time; _ }
  | Originate { time; _ }
  | Withdrawal { time; _ }
  | Fib_change { time; _ }
  | Mrai_fire { time; _ }
  | Node_busy { time; _ }
  | Link_state { time; _ }
  | Msg_dropped { time; _ }
  | Loop_detected { time; _ }
  | Loop_resolved { time; _ } -> time

let kind = function
  | Update_sent _ -> "update_sent"
  | Update_recv _ -> "update_recv"
  | Originate _ -> "originate"
  | Withdrawal _ -> "withdrawal"
  | Fib_change _ -> "fib_change"
  | Mrai_fire _ -> "mrai_fire"
  | Node_busy _ -> "node_busy"
  | Link_state _ -> "link_state"
  | Msg_dropped _ -> "msg_dropped"
  | Loop_detected _ -> "loop_detected"
  | Loop_resolved _ -> "loop_resolved"

(* Serialization must be byte-stable: golden-trace digests are computed
   over these lines, so the float format is pinned here and nowhere
   else.  %.12g round-trips every virtual time the simulator produces
   (sums of uniform draws well above 1e-12 relative precision). *)
let fmt_time t = Printf.sprintf "%.12g" t

let msg_kind withdraw = if withdraw then "withdraw" else "announce"

let int_list members =
  "[" ^ String.concat "," (List.map string_of_int members) ^ "]"

let to_json ev =
  match ev with
  | Update_sent { time; src; dst; withdraw } ->
      Printf.sprintf {|{"ev":"update_sent","t":%s,"src":%d,"dst":%d,"kind":"%s"}|}
        (fmt_time time) src dst (msg_kind withdraw)
  | Update_recv { time; node; from; withdraw } ->
      Printf.sprintf {|{"ev":"update_recv","t":%s,"node":%d,"from":%d,"kind":"%s"}|}
        (fmt_time time) node from (msg_kind withdraw)
  | Originate { time; node } ->
      Printf.sprintf {|{"ev":"originate","t":%s,"node":%d}|} (fmt_time time) node
  | Withdrawal { time; node } ->
      Printf.sprintf {|{"ev":"withdrawal","t":%s,"node":%d}|} (fmt_time time) node
  | Fib_change { time; node; next_hop } ->
      Printf.sprintf {|{"ev":"fib_change","t":%s,"node":%d,"next_hop":%s}|}
        (fmt_time time) node
        (match next_hop with None -> "null" | Some nh -> string_of_int nh)
  | Mrai_fire { time; node; peer } ->
      Printf.sprintf {|{"ev":"mrai_fire","t":%s,"node":%d,"peer":%d}|}
        (fmt_time time) node peer
  | Node_busy { time; node; depth } ->
      Printf.sprintf {|{"ev":"node_busy","t":%s,"node":%d,"depth":%d}|}
        (fmt_time time) node depth
  | Link_state { time; a; b; up } ->
      Printf.sprintf {|{"ev":"link_state","t":%s,"a":%d,"b":%d,"up":%b}|}
        (fmt_time time) a b up
  | Msg_dropped { time; a; b; reason } ->
      Printf.sprintf {|{"ev":"msg_dropped","t":%s,"a":%d,"b":%d,"reason":"%s"}|}
        (fmt_time time) a b (drop_reason_to_string reason)
  | Loop_detected { time; members; trigger } ->
      Printf.sprintf {|{"ev":"loop_detected","t":%s,"members":%s,"trigger":%d}|}
        (fmt_time time) (int_list members) trigger
  | Loop_resolved { time; members } ->
      Printf.sprintf {|{"ev":"loop_resolved","t":%s,"members":%s}|}
        (fmt_time time) (int_list members)
