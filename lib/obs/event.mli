(** Typed trace events emitted by the simulator when observability is on.

    Every constructor carries the virtual time at which it happened.
    The JSONL serialization is byte-stable across runs and platforms:
    golden-trace digests are computed over [to_json] output.  The
    binary serialization lives in {!Binary} and is byte-stable too. *)

type drop_reason = Down | Loss | Stale_epoch
(** Why a message was dropped in flight.  Closed (not a string) so the
    hot drop path allocates nothing. *)

val drop_reason_to_string : drop_reason -> string
(** Stable rendering: ["down"], ["loss"], ["stale-epoch"].  Pinned by
    the golden digests — extend, never change. *)

type t =
  | Update_sent of { time : float; src : int; dst : int; withdraw : bool }
  | Update_recv of { time : float; node : int; from : int; withdraw : bool }
  | Originate of { time : float; node : int }
  | Withdrawal of { time : float; node : int }
  | Fib_change of { time : float; node : int; next_hop : int option }
  | Mrai_fire of { time : float; node : int; peer : int }
  | Node_busy of { time : float; node : int; depth : int }
  | Link_state of { time : float; a : int; b : int; up : bool }
  | Msg_dropped of { time : float; a : int; b : int; reason : drop_reason }
  | Loop_detected of { time : float; members : int list; trigger : int }
  | Loop_resolved of { time : float; members : int list }

val time : t -> float
(** Virtual time of the event. *)

val kind : t -> string
(** Stable lowercase tag, e.g. ["update_sent"]. *)

val to_json : t -> string
(** One-line JSON object (no trailing newline). Byte-stable. *)
