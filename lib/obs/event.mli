(** Typed trace events emitted by the simulator when observability is on.

    Every constructor carries the virtual time at which it happened.
    The JSONL serialization is byte-stable across runs and platforms:
    golden-trace digests are computed over [to_json] output.  The
    binary serialization lives in {!Binary} and is byte-stable too. *)

type drop_reason = Down | Loss | Stale_epoch
(** Why a message was dropped in flight.  Closed (not a string) so the
    hot drop path allocates nothing. *)

val drop_reason_to_string : drop_reason -> string
(** Stable rendering: ["down"], ["loss"], ["stale-epoch"].  Pinned by
    the golden digests — extend, never change. *)

(** Events that concern one destination prefix carry its dense id
    ([Bgp.Prefix.Table]) as [prefix].  Single-prefix simulations leave
    it [None]: the JSONL rendering then omits the ["pfx"] field
    entirely, so traces (and golden digests) from before the field
    existed are unchanged.  Multi-prefix simulations ([Mesh_sim]) set
    it on every per-prefix event. *)
type t =
  | Update_sent of {
      time : float;
      src : int;
      dst : int;
      withdraw : bool;
      prefix : int option;
    }
  | Update_recv of {
      time : float;
      node : int;
      from : int;
      withdraw : bool;
      prefix : int option;
    }
  | Originate of { time : float; node : int; prefix : int option }
  | Withdrawal of { time : float; node : int; prefix : int option }
  | Fib_change of {
      time : float;
      node : int;
      next_hop : int option;
      prefix : int option;
    }
  | Mrai_fire of { time : float; node : int; peer : int }
  | Node_busy of { time : float; node : int; depth : int }
  | Link_state of { time : float; a : int; b : int; up : bool }
  | Msg_dropped of { time : float; a : int; b : int; reason : drop_reason }
  | Loop_detected of {
      time : float;
      members : int list;
      trigger : int;
      prefix : int option;
    }
  | Loop_resolved of { time : float; members : int list; prefix : int option }

val time : t -> float
(** Virtual time of the event. *)

val prefix : t -> int option
(** The dense prefix id of a per-prefix event; [None] for events with
    no prefix dimension (or from single-prefix runs). *)

val kind : t -> string
(** Stable lowercase tag, e.g. ["update_sent"]. *)

val to_json : t -> string
(** One-line JSON object (no trailing newline). Byte-stable. *)
