(** Per-event-kind wall/virtual-time profiles for the dessim engine.

    Install with [Dessim.Engine.set_step_profiler eng (Profile.step p)];
    events carry string tags attached at schedule time. *)

type kind_stats = {
  mutable count : int;
  mutable wall_total_s : float;
  wall : Stats.Histogram.t;   (** wall time per event, 0..1ms, 10us buckets *)
  vtime : Stats.Histogram.t;  (** virtual time of execution, 0..100s *)
}

type t

val create : unit -> t

val step : t -> time:float -> tag:string option -> run:(unit -> unit) -> unit
(** Step-profiler callback for [Dessim.Engine.set_step_profiler]:
    times [run ()] and records it under [tag] (["untagged"] if [None]). *)

val record : t -> tag:string -> time:float -> wall_s:float -> unit
(** Record one sample directly (used by tests). *)

val merge_into : src:t -> dst:t -> unit
(** Accumulate [src] into [dst]; histograms share a fixed geometry so
    profiles from parallel workers always merge. *)

val kinds : t -> (string * kind_stats) list
(** Sorted by tag. *)

val pp : Format.formatter -> t -> unit
