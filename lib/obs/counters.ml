type per_node = {
  mutable msgs_sent : int;
  mutable msgs_recv : int;
  mutable decision_runs : int;
  mutable fib_changes : int;
  mutable queue_depth_hwm : int;
}

type t = {
  nodes : (int, per_node) Hashtbl.t;
  mutable updates_sent : int;
  mutable updates_recv : int;
  mutable withdrawals_sent : int;
  mutable withdrawals_recv : int;
  mutable msgs_dropped : int;
  mutable decision_runs : int;
  mutable fib_changes : int;
  mutable mrai_fires : int;
  mutable link_flaps : int;
  mutable loops_detected : int;
  mutable events_executed : int;
  mutable paths_interned : int;
  mutable trace_dropped : int;
}

let create () =
  {
    nodes = Hashtbl.create 64;
    updates_sent = 0;
    updates_recv = 0;
    withdrawals_sent = 0;
    withdrawals_recv = 0;
    msgs_dropped = 0;
    decision_runs = 0;
    fib_changes = 0;
    mrai_fires = 0;
    link_flaps = 0;
    loops_detected = 0;
    events_executed = 0;
    paths_interned = 0;
    trace_dropped = 0;
  }

let node t i =
  match Hashtbl.find_opt t.nodes i with
  | Some pn -> pn
  | None ->
      let pn =
        {
          msgs_sent = 0;
          msgs_recv = 0;
          decision_runs = 0;
          fib_changes = 0;
          queue_depth_hwm = 0;
        }
      in
      Hashtbl.add t.nodes i pn;
      pn

let incr_sent t ~node:i ~withdraw =
  if withdraw then t.withdrawals_sent <- t.withdrawals_sent + 1
  else t.updates_sent <- t.updates_sent + 1;
  if i >= 0 then (
    let pn = node t i in
    pn.msgs_sent <- pn.msgs_sent + 1)

let incr_recv t ~node:i ~withdraw =
  if withdraw then t.withdrawals_recv <- t.withdrawals_recv + 1
  else t.updates_recv <- t.updates_recv + 1;
  if i >= 0 then (
    let pn = node t i in
    pn.msgs_recv <- pn.msgs_recv + 1)

let incr_dropped t = t.msgs_dropped <- t.msgs_dropped + 1

let incr_decision t ~node:i =
  t.decision_runs <- t.decision_runs + 1;
  if i >= 0 then (
    let pn = node t i in
    pn.decision_runs <- pn.decision_runs + 1)

let incr_fib_change t ~node:i =
  t.fib_changes <- t.fib_changes + 1;
  if i >= 0 then (
    let pn = node t i in
    pn.fib_changes <- pn.fib_changes + 1)

let incr_mrai_fire t = t.mrai_fires <- t.mrai_fires + 1
let incr_link_flap t = t.link_flaps <- t.link_flaps + 1
let incr_loop t = t.loops_detected <- t.loops_detected + 1
let incr_events t = t.events_executed <- t.events_executed + 1
let incr_trace_dropped t = t.trace_dropped <- t.trace_dropped + 1
let add_events t n = t.events_executed <- t.events_executed + n

let observe_paths_interned t ~count =
  if count > t.paths_interned then t.paths_interned <- count

let observe_queue_depth t ~node:i ~depth =
  if i >= 0 then (
    let pn = node t i in
    if depth > pn.queue_depth_hwm then pn.queue_depth_hwm <- depth)

type snapshot = {
  s_updates_sent : int;
  s_updates_recv : int;
  s_withdrawals_sent : int;
  s_withdrawals_recv : int;
  s_msgs_dropped : int;
  s_decision_runs : int;
  s_fib_changes : int;
  s_mrai_fires : int;
  s_link_flaps : int;
  s_loops_detected : int;
  s_events_executed : int;
  s_paths_interned : int;  (* gauge: max arena occupancy, not a sum *)
  s_trace_dropped : int;
  s_nodes : (int * per_node) list;  (* sorted by node id; values copied *)
}

let snapshot t =
  let nodes =
    Hashtbl.to_seq t.nodes |> List.of_seq
    |> List.map (fun (i, pn) -> (i, { pn with msgs_sent = pn.msgs_sent }))
    |> List.sort (fun (a, _) (b, _) -> Int.compare a b)
  in
  {
    s_updates_sent = t.updates_sent;
    s_updates_recv = t.updates_recv;
    s_withdrawals_sent = t.withdrawals_sent;
    s_withdrawals_recv = t.withdrawals_recv;
    s_msgs_dropped = t.msgs_dropped;
    s_decision_runs = t.decision_runs;
    s_fib_changes = t.fib_changes;
    s_mrai_fires = t.mrai_fires;
    s_link_flaps = t.link_flaps;
    s_loops_detected = t.loops_detected;
    s_events_executed = t.events_executed;
    s_paths_interned = t.paths_interned;
    s_trace_dropped = t.trace_dropped;
    s_nodes = nodes;
  }

let merge a b =
  let tbl = Hashtbl.create 64 in
  let add (i, (pn : per_node)) =
    match Hashtbl.find_opt tbl i with
    | None -> Hashtbl.add tbl i { pn with msgs_sent = pn.msgs_sent }
    | Some acc ->
        acc.msgs_sent <- acc.msgs_sent + pn.msgs_sent;
        acc.msgs_recv <- acc.msgs_recv + pn.msgs_recv;
        acc.decision_runs <- acc.decision_runs + pn.decision_runs;
        acc.fib_changes <- acc.fib_changes + pn.fib_changes;
        acc.queue_depth_hwm <- max acc.queue_depth_hwm pn.queue_depth_hwm
  in
  List.iter add a.s_nodes;
  List.iter add b.s_nodes;
  let nodes =
    Hashtbl.to_seq tbl |> List.of_seq
    |> List.sort (fun (x, _) (y, _) -> Int.compare x y)
  in
  {
    s_updates_sent = a.s_updates_sent + b.s_updates_sent;
    s_updates_recv = a.s_updates_recv + b.s_updates_recv;
    s_withdrawals_sent = a.s_withdrawals_sent + b.s_withdrawals_sent;
    s_withdrawals_recv = a.s_withdrawals_recv + b.s_withdrawals_recv;
    s_msgs_dropped = a.s_msgs_dropped + b.s_msgs_dropped;
    s_decision_runs = a.s_decision_runs + b.s_decision_runs;
    s_fib_changes = a.s_fib_changes + b.s_fib_changes;
    s_mrai_fires = a.s_mrai_fires + b.s_mrai_fires;
    s_link_flaps = a.s_link_flaps + b.s_link_flaps;
    s_loops_detected = a.s_loops_detected + b.s_loops_detected;
    s_events_executed = a.s_events_executed + b.s_events_executed;
    s_paths_interned = max a.s_paths_interned b.s_paths_interned;
    s_trace_dropped = a.s_trace_dropped + b.s_trace_dropped;
    s_nodes = nodes;
  }

let le a b =
  a.s_updates_sent <= b.s_updates_sent
  && a.s_updates_recv <= b.s_updates_recv
  && a.s_withdrawals_sent <= b.s_withdrawals_sent
  && a.s_withdrawals_recv <= b.s_withdrawals_recv
  && a.s_msgs_dropped <= b.s_msgs_dropped
  && a.s_decision_runs <= b.s_decision_runs
  && a.s_fib_changes <= b.s_fib_changes
  && a.s_mrai_fires <= b.s_mrai_fires
  && a.s_link_flaps <= b.s_link_flaps
  && a.s_loops_detected <= b.s_loops_detected
  && a.s_events_executed <= b.s_events_executed
  && a.s_paths_interned <= b.s_paths_interned
  && a.s_trace_dropped <= b.s_trace_dropped

let pp ppf s =
  let f fmt = Format.fprintf ppf fmt in
  f "counters:@\n";
  f "  updates      sent %d  recv %d@\n" s.s_updates_sent s.s_updates_recv;
  f "  withdrawals  sent %d  recv %d@\n" s.s_withdrawals_sent
    s.s_withdrawals_recv;
  f "  msgs dropped %d@\n" s.s_msgs_dropped;
  f "  decision runs %d   fib changes %d@\n" s.s_decision_runs s.s_fib_changes;
  f "  mrai fires %d   link flaps %d   loops detected %d@\n" s.s_mrai_fires
    s.s_link_flaps s.s_loops_detected;
  f "  engine events executed %d@\n" s.s_events_executed;
  if s.s_paths_interned > 0 then
    f "  paths interned %d@\n" s.s_paths_interned;
  if s.s_trace_dropped > 0 then
    f "  trace events dropped %d@\n" s.s_trace_dropped;
  if s.s_nodes <> [] then begin
    f "  per-node (id: sent/recv/decisions/fib/qdepth-hwm):@\n";
    List.iter
      (fun (i, pn) ->
        f "    %3d: %d/%d/%d/%d/%d@\n" i pn.msgs_sent pn.msgs_recv
          pn.decision_runs pn.fib_changes pn.queue_depth_hwm)
      s.s_nodes
  end
