(* Trace digests: md5 over the JSONL serialization, one line per event
   including its trailing newline — so digesting an in-memory event list
   and digesting the file written by [Sink.jsonl_file] give identical
   results. *)

let of_events events =
  let ctx = Buffer.create 4096 in
  List.iter
    (fun ev ->
      Buffer.add_string ctx (Event.to_json ev);
      Buffer.add_char ctx '\n')
    events;
  Digest.to_hex (Digest.string (Buffer.contents ctx))

let of_file path = Digest.to_hex (Digest.file path)

(* Digest over the concatenated binary frames only — no stream header —
   so it matches what the churn digest chain folds per epoch. *)
let of_events_binary events =
  let ctx = Buffer.create 4096 in
  List.iter (fun ev -> Binary.encode ctx ev) events;
  Digest.to_hex (Digest.string (Buffer.contents ctx))
