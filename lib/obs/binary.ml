(* Length-prefixed binary trace codec.

   Layout (DESIGN.md 14):
   - stream header: 8-byte magic "BGPTRACE" + 1 version byte
   - per event: one frame = unsigned-LEB128 payload length + payload
   - payload: 1 tag byte (constructor order) + fields in declaration
     order; times are IEEE-754 float64 little-endian, ints are int32
     little-endian (range-checked on encode), bools and option flags
     are 1 byte, member lists are a LEB128 count + int32 LE each.

   Everything here must stay byte-stable across runs and platforms:
   the churn digest chain folds these frames, and the decode oracle
   re-emits JSONL that the golden digests check. *)

let magic = "BGPTRACE"

(* v2: the per-prefix events (update_sent/recv, originate, withdrawal,
   fib_change, loop_detected/resolved) gained a trailing optional
   prefix-id field.  v1 frames for those tags are one field short, so
   a v1 stream cannot be decoded by this build: the header check
   rejects it structurally (not with a parse error mid-stream). *)
let version = 2
let header = magic ^ String.make 1 (Char.chr version)

exception Unsupported_version of { found : int; expected : int }

let () =
  Printexc.register_printer (function
    | Unsupported_version { found; expected } ->
        Some
          (Printf.sprintf
             "Obs.Binary: unsupported trace format version %d (this build \
              reads version %d); re-record the trace with this build"
             found expected)
    | _ -> None)

let corrupt fmt = Printf.ksprintf failwith ("Obs.Binary: " ^^ fmt)

(* -- encoding -------------------------------------------------------- *)

let add_varint buf n =
  (* unsigned LEB128; n is always >= 0 here (lengths and counts) *)
  let n = ref n in
  while !n >= 0x80 do
    Buffer.add_char buf (Char.unsafe_chr (0x80 lor (!n land 0x7f)));
    n := !n lsr 7
  done;
  Buffer.add_char buf (Char.unsafe_chr !n)

let add_int32 buf n =
  if n < Int32.to_int Int32.min_int || n > Int32.to_int Int32.max_int then
    corrupt "int field %d out of int32 range" n;
  Buffer.add_int32_le buf (Int32.of_int n)

let add_time buf t = Buffer.add_int64_le buf (Int64.bits_of_float t)
let add_bool buf b = Buffer.add_char buf (if b then '\001' else '\000')

let add_opt_int buf = function
  | None -> Buffer.add_char buf '\000'
  | Some n ->
      Buffer.add_char buf '\001';
      add_int32 buf n

let add_members buf members =
  add_varint buf (List.length members);
  List.iter (fun m -> add_int32 buf m) members

let reason_byte : Event.drop_reason -> char = function
  | Event.Down -> '\000'
  | Event.Loss -> '\001'
  | Event.Stale_epoch -> '\002'

(* Payloads are appended to a scratch buffer first so the frame's
   length prefix can be written before the payload bytes without a
   second pass.  The buffer is per-domain (Domain.DLS): encoders in
   parallel sweep workers must not share one scratch area. *)
let scratch_key = Domain.DLS.new_key (fun () -> Buffer.create 256)

let add_payload buf (ev : Event.t) =
  match ev with
  | Update_sent { time; src; dst; withdraw; prefix } ->
      Buffer.add_char buf '\000';
      add_time buf time;
      add_int32 buf src;
      add_int32 buf dst;
      add_bool buf withdraw;
      add_opt_int buf prefix
  | Update_recv { time; node; from; withdraw; prefix } ->
      Buffer.add_char buf '\001';
      add_time buf time;
      add_int32 buf node;
      add_int32 buf from;
      add_bool buf withdraw;
      add_opt_int buf prefix
  | Originate { time; node; prefix } ->
      Buffer.add_char buf '\002';
      add_time buf time;
      add_int32 buf node;
      add_opt_int buf prefix
  | Withdrawal { time; node; prefix } ->
      Buffer.add_char buf '\003';
      add_time buf time;
      add_int32 buf node;
      add_opt_int buf prefix
  | Fib_change { time; node; next_hop; prefix } ->
      Buffer.add_char buf '\004';
      add_time buf time;
      add_int32 buf node;
      add_opt_int buf next_hop;
      add_opt_int buf prefix
  | Mrai_fire { time; node; peer } ->
      Buffer.add_char buf '\005';
      add_time buf time;
      add_int32 buf node;
      add_int32 buf peer
  | Node_busy { time; node; depth } ->
      Buffer.add_char buf '\006';
      add_time buf time;
      add_int32 buf node;
      add_int32 buf depth
  | Link_state { time; a; b; up } ->
      Buffer.add_char buf '\007';
      add_time buf time;
      add_int32 buf a;
      add_int32 buf b;
      add_bool buf up
  | Msg_dropped { time; a; b; reason } ->
      Buffer.add_char buf '\008';
      add_time buf time;
      add_int32 buf a;
      add_int32 buf b;
      Buffer.add_char buf (reason_byte reason)
  | Loop_detected { time; members; trigger; prefix } ->
      Buffer.add_char buf '\009';
      add_time buf time;
      add_members buf members;
      add_int32 buf trigger;
      add_opt_int buf prefix
  | Loop_resolved { time; members; prefix } ->
      Buffer.add_char buf '\010';
      add_time buf time;
      add_members buf members;
      add_opt_int buf prefix

let encode buf ev =
  let scratch = Domain.DLS.get scratch_key in
  Buffer.clear scratch;
  add_payload scratch ev;
  add_varint buf (Buffer.length scratch);
  Buffer.add_buffer buf scratch

let encode_string ev =
  let buf = Buffer.create 64 in
  encode buf ev;
  Buffer.contents buf

(* -- decoding -------------------------------------------------------- *)

let need s pos n =
  if pos + n > String.length s then
    corrupt "truncated frame at byte %d (need %d more)" pos n

let read_varint s pos =
  let v = ref 0 and shift = ref 0 and pos = ref pos and fin = ref false in
  while not !fin do
    need s !pos 1;
    if !shift > 56 then corrupt "varint too long at byte %d" !pos;
    let b = Char.code s.[!pos] in
    incr pos;
    v := !v lor ((b land 0x7f) lsl !shift);
    shift := !shift + 7;
    if b < 0x80 then fin := true
  done;
  (!v, !pos)

let read_int32 s pos =
  need s pos 4;
  (Int32.to_int (String.get_int32_le s pos), pos + 4)

let read_time s pos =
  need s pos 8;
  (Int64.float_of_bits (String.get_int64_le s pos), pos + 8)

let read_bool s pos =
  need s pos 1;
  match s.[pos] with
  | '\000' -> (false, pos + 1)
  | '\001' -> (true, pos + 1)
  | c -> corrupt "bad bool byte 0x%02x at byte %d" (Char.code c) pos

let read_opt_int s pos =
  need s pos 1;
  match s.[pos] with
  | '\000' -> (None, pos + 1)
  | '\001' ->
      let n, pos = read_int32 s (pos + 1) in
      (Some n, pos)
  | c -> corrupt "bad option byte 0x%02x at byte %d" (Char.code c) pos

let read_members s pos =
  let count, pos = read_varint s pos in
  let pos = ref pos in
  let members =
    List.init count (fun _ ->
        let m, p = read_int32 s !pos in
        pos := p;
        m)
  in
  (members, !pos)

let read_reason s pos : Event.drop_reason * int =
  need s pos 1;
  match s.[pos] with
  | '\000' -> (Event.Down, pos + 1)
  | '\001' -> (Event.Loss, pos + 1)
  | '\002' -> (Event.Stale_epoch, pos + 1)
  | c -> corrupt "bad drop-reason byte 0x%02x at byte %d" (Char.code c) pos

let decode_payload s pos limit : Event.t =
  need s pos 1;
  let tag = Char.code s.[pos] in
  let pos = pos + 1 in
  let ev, stop =
    match tag with
    | 0 ->
        let time, pos = read_time s pos in
        let src, pos = read_int32 s pos in
        let dst, pos = read_int32 s pos in
        let withdraw, pos = read_bool s pos in
        let prefix, pos = read_opt_int s pos in
        (Event.Update_sent { time; src; dst; withdraw; prefix }, pos)
    | 1 ->
        let time, pos = read_time s pos in
        let node, pos = read_int32 s pos in
        let from, pos = read_int32 s pos in
        let withdraw, pos = read_bool s pos in
        let prefix, pos = read_opt_int s pos in
        (Event.Update_recv { time; node; from; withdraw; prefix }, pos)
    | 2 ->
        let time, pos = read_time s pos in
        let node, pos = read_int32 s pos in
        let prefix, pos = read_opt_int s pos in
        (Event.Originate { time; node; prefix }, pos)
    | 3 ->
        let time, pos = read_time s pos in
        let node, pos = read_int32 s pos in
        let prefix, pos = read_opt_int s pos in
        (Event.Withdrawal { time; node; prefix }, pos)
    | 4 ->
        let time, pos = read_time s pos in
        let node, pos = read_int32 s pos in
        let next_hop, pos = read_opt_int s pos in
        let prefix, pos = read_opt_int s pos in
        (Event.Fib_change { time; node; next_hop; prefix }, pos)
    | 5 ->
        let time, pos = read_time s pos in
        let node, pos = read_int32 s pos in
        let peer, pos = read_int32 s pos in
        (Event.Mrai_fire { time; node; peer }, pos)
    | 6 ->
        let time, pos = read_time s pos in
        let node, pos = read_int32 s pos in
        let depth, pos = read_int32 s pos in
        (Event.Node_busy { time; node; depth }, pos)
    | 7 ->
        let time, pos = read_time s pos in
        let a, pos = read_int32 s pos in
        let b, pos = read_int32 s pos in
        let up, pos = read_bool s pos in
        (Event.Link_state { time; a; b; up }, pos)
    | 8 ->
        let time, pos = read_time s pos in
        let a, pos = read_int32 s pos in
        let b, pos = read_int32 s pos in
        let reason, pos = read_reason s pos in
        (Event.Msg_dropped { time; a; b; reason }, pos)
    | 9 ->
        let time, pos = read_time s pos in
        let members, pos = read_members s pos in
        let trigger, pos = read_int32 s pos in
        let prefix, pos = read_opt_int s pos in
        (Event.Loop_detected { time; members; trigger; prefix }, pos)
    | 10 ->
        let time, pos = read_time s pos in
        let members, pos = read_members s pos in
        let prefix, pos = read_opt_int s pos in
        (Event.Loop_resolved { time; members; prefix }, pos)
    | t -> corrupt "unknown event tag %d" t
  in
  if stop <> limit then
    corrupt "frame length mismatch: payload ends at %d, frame at %d" stop limit;
  ev

let decode s ~pos =
  let len, payload_start = read_varint s pos in
  need s payload_start len;
  let stop = payload_start + len in
  (decode_payload s payload_start stop, stop)

let check_header s pos =
  if pos + String.length header > String.length s then
    corrupt "missing stream header";
  if String.sub s pos (String.length magic) <> magic then
    corrupt "bad magic (not a binary trace)";
  let v = Char.code s.[pos + String.length magic] in
  if v <> version then
    raise (Unsupported_version { found = v; expected = version });
  pos + String.length header

let decode_all s =
  let pos = ref (check_header s 0) in
  let events = ref [] in
  while !pos < String.length s do
    let ev, next = decode s ~pos:!pos in
    events := ev :: !events;
    pos := next
  done;
  List.rev !events

(* -- channel reader -------------------------------------------------- *)

type reader = { ic : in_channel; mutable frame : Bytes.t }

let open_reader ic =
  let hdr = Bytes.create (String.length header) in
  (try really_input ic hdr 0 (Bytes.length hdr)
   with End_of_file -> corrupt "missing stream header");
  ignore (check_header (Bytes.to_string hdr) 0);
  { ic; frame = Bytes.create 256 }

let input_varint ic =
  let v = ref 0 and shift = ref 0 and fin = ref false in
  while not !fin do
    if !shift > 56 then corrupt "varint too long";
    let b = input_byte ic in
    v := !v lor ((b land 0x7f) lsl !shift);
    shift := !shift + 7;
    if b < 0x80 then fin := true
  done;
  !v

let input r =
  match input_byte r.ic with
  | exception End_of_file -> None
  | first ->
      let len =
        if first < 0x80 then first
        else
          let rest = try input_varint r.ic with End_of_file -> corrupt "truncated frame length" in
          (first land 0x7f) lor (rest lsl 7)
      in
      if Bytes.length r.frame < len then
        r.frame <- Bytes.create (max len (2 * Bytes.length r.frame));
      (try really_input r.ic r.frame 0 len
       with End_of_file -> corrupt "truncated frame (wanted %d bytes)" len);
      let s = Bytes.sub_string r.frame 0 len in
      Some (decode_payload s 0 len)
