(** Counter/gauge registry: cheap integer counters bumped by the bus,
    snapshot-able mid-run and mergeable across [Parallel] workers. *)

type per_node = {
  mutable msgs_sent : int;
  mutable msgs_recv : int;
  mutable decision_runs : int;
  mutable fib_changes : int;
  mutable queue_depth_hwm : int;
}

type t

val create : unit -> t

val incr_sent : t -> node:int -> withdraw:bool -> unit
val incr_recv : t -> node:int -> withdraw:bool -> unit
val incr_dropped : t -> unit
val incr_decision : t -> node:int -> unit
val incr_fib_change : t -> node:int -> unit
val incr_mrai_fire : t -> unit
val incr_link_flap : t -> unit
val incr_loop : t -> unit
val incr_events : t -> unit

val incr_trace_dropped : t -> unit
(** One trace event lost to a bounded sink (ring overwrite).  Long
    churn runs check this to detect silent trace loss. *)

val add_events : t -> int -> unit
(** Bulk variant of {!incr_events}: simulations credit the engine's
    final executed-event count once per run instead of per event. *)

val observe_queue_depth : t -> node:int -> depth:int -> unit
(** Gauge: records the high-water mark of a node's processing queue. *)

val observe_paths_interned : t -> count:int -> unit
(** Gauge: records the high-water mark of a simulation's AS-path arena
    occupancy ({!Bgp.As_path.Table.size} at end of run). *)

type snapshot = {
  s_updates_sent : int;
  s_updates_recv : int;
  s_withdrawals_sent : int;
  s_withdrawals_recv : int;
  s_msgs_dropped : int;
  s_decision_runs : int;
  s_fib_changes : int;
  s_mrai_fires : int;
  s_link_flaps : int;
  s_loops_detected : int;
  s_events_executed : int;
  s_paths_interned : int;
  s_trace_dropped : int;
  s_nodes : (int * per_node) list;
}

val snapshot : t -> snapshot
(** Copy of the current values; safe to take mid-run. *)

val merge : snapshot -> snapshot -> snapshot
(** Counters add; high-water gauges take the max. *)

val le : snapshot -> snapshot -> bool
(** Pointwise [<=] on the global counters — monotonicity check for
    snapshots taken at increasing times within one run. *)

val pp : Format.formatter -> snapshot -> unit
