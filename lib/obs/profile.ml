(* Per-event-kind profiling of the dessim engine.  The engine itself
   stays free of unix/obs dependencies: it exposes a step-profiler
   callback and per-event string tags, and [step] below supplies the
   actual timing around each executed event action. *)

(* Wall-time buckets: 0 .. 1 ms over 100 buckets (10 us each); virtual
   time buckets: 0 .. 100 s over 100 buckets.  Geometry is fixed so
   profiles from parallel workers merge without negotiation. *)
let wall_lo = 0.0
let wall_hi = 1e-3
let vtime_lo = 0.0
let vtime_hi = 100.0
let buckets = 100

type kind_stats = {
  mutable count : int;
  mutable wall_total_s : float;
  wall : Stats.Histogram.t;
  vtime : Stats.Histogram.t;
}

type t = { kinds : (string, kind_stats) Hashtbl.t }

let create () = { kinds = Hashtbl.create 16 }

let kind_stats t tag =
  match Hashtbl.find_opt t.kinds tag with
  | Some ks -> ks
  | None ->
      let ks =
        {
          count = 0;
          wall_total_s = 0.0;
          wall = Stats.Histogram.create ~lo:wall_lo ~hi:wall_hi ~buckets;
          vtime = Stats.Histogram.create ~lo:vtime_lo ~hi:vtime_hi ~buckets;
        }
      in
      Hashtbl.add t.kinds tag ks;
      ks

let record t ~tag ~time ~wall_s =
  let ks = kind_stats t tag in
  ks.count <- ks.count + 1;
  ks.wall_total_s <- ks.wall_total_s +. wall_s;
  Stats.Histogram.add ks.wall wall_s;
  Stats.Histogram.add ks.vtime time

let step t ~time ~tag ~run =
  let tag = match tag with Some s -> s | None -> "untagged" in
  let t0 = Unix.gettimeofday () in
  run ();
  let wall_s = Unix.gettimeofday () -. t0 in
  record t ~tag ~time ~wall_s

let merge_into ~src ~dst =
  Hashtbl.to_seq src.kinds |> List.of_seq
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  |> List.iter (fun (tag, (ks : kind_stats)) ->
         let acc = kind_stats dst tag in
         acc.count <- acc.count + ks.count;
         acc.wall_total_s <- acc.wall_total_s +. ks.wall_total_s;
         Stats.Histogram.merge_into ~src:ks.wall ~dst:acc.wall;
         Stats.Histogram.merge_into ~src:ks.vtime ~dst:acc.vtime)

let kinds t =
  Hashtbl.to_seq t.kinds |> List.of_seq
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let pp ppf t =
  let f fmt = Format.fprintf ppf fmt in
  f "profile (per event tag):@\n";
  f "  %-16s %10s %14s %12s@\n" "tag" "count" "wall total s" "mean us";
  List.iter
    (fun (tag, ks) ->
      let mean_us =
        if ks.count = 0 then 0.0
        else ks.wall_total_s /. float_of_int ks.count *. 1e6
      in
      f "  %-16s %10d %14.6f %12.2f@\n" tag ks.count ks.wall_total_s mean_us)
    (kinds t)
