(** The trace bus: the single value threaded through the simulator.

    Zero-cost when off: every instrumented site holds a [Bus.t] that
    defaults to {!off}, and each helper starts with a single [enabled]
    bool check.  With a bus on but no sink ([Sink.null]), counters are
    bumped without constructing events. *)

type t

val off : t
(** The disabled bus — the default everywhere.  Emit helpers on [off]
    reduce to one boolean test. *)

val create : ?sink:Sink.t -> ?counters:Counters.t -> unit -> t
(** An enabled bus.  Omit [sink] for counters-only operation. *)

val enabled : t -> bool
val sink : t -> Sink.t
val counters : t -> Counters.t option

val close : t -> unit
(** Close the underlying sink (flush/close files). *)

(** {2 Emit points} — one per instrumented site.

    [?prefix] is the dense prefix id for per-prefix events; omitted
    (the single-prefix simulators) the event renders its historical
    byte-exact form. *)

val update_sent :
  ?prefix:int -> t -> time:float -> src:int -> dst:int -> withdraw:bool -> unit
val update_recv :
  ?prefix:int -> t -> time:float -> node:int -> from:int -> withdraw:bool -> unit
val originate : ?prefix:int -> t -> time:float -> node:int -> unit
val local_withdraw : ?prefix:int -> t -> time:float -> node:int -> unit
val fib_change :
  ?prefix:int -> t -> time:float -> node:int -> next_hop:int option -> unit
val mrai_fire : t -> time:float -> node:int -> peer:int -> unit

val node_submit : t -> time:float -> node:int -> busy:bool -> depth:int -> unit
(** Records the queue-depth gauge; emits [Node_busy] only when the node
    was already occupied when the message arrived. *)

val link_state : t -> time:float -> a:int -> b:int -> up:bool -> unit
val msg_dropped :
  t -> time:float -> a:int -> b:int -> reason:Event.drop_reason -> unit
val loop_detected :
  ?prefix:int -> t -> time:float -> members:int list -> trigger:int -> unit
val loop_resolved : ?prefix:int -> t -> time:float -> members:int list -> unit

val decision_run : t -> node:int -> unit
(** Counter-only: one decision-process invocation. *)

val engine_event : t -> unit
(** Counter-only: one engine event executed. *)
