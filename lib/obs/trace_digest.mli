(** Stable digests of traces for golden-run regression checks.

    [of_events evs] equals [of_file f] whenever [f] contains exactly the
    JSONL serialization of [evs] (one line per event, '\n'-terminated),
    which is what {!Sink.jsonl_file} writes. *)

val of_events : Event.t list -> string
(** Hex md5 of the JSONL serialization. *)

val of_file : string -> string
(** Hex md5 of a file's bytes. *)

val of_events_binary : Event.t list -> string
(** Hex md5 of the concatenated {!Binary} frames (no stream header) —
    the per-epoch quantity the churn digest chain folds. *)
