(** Length-prefixed binary codec for trace events — the hot-path trace
    format.  JSONL stays the golden/oracle format; decoding a binary
    stream and re-serializing with {!Event.to_json} reproduces the
    JSONL byte stream exactly.

    Streams start with a 9-byte header ({!header}: magic ["BGPTRACE"]
    plus one format-version byte) followed by frames, one per event:
    an unsigned-LEB128 payload length, then a tag byte and fixed-width
    little-endian fields.  See DESIGN.md 14 for the full layout.  The
    encoding is byte-stable across runs and platforms; the churn digest
    chain is computed over these frames. *)

val version : int
(** Current format version (encoded in {!header}).  Version 2 added a
    trailing optional prefix-id field to the per-prefix events. *)

val header : string
(** Stream header bytes: magic + version. *)

exception Unsupported_version of { found : int; expected : int }
(** Raised (instead of [Failure]) when a stream's header names a
    different format version — e.g. a v1 trace read by a v2 build.  A
    registered printer renders an actionable message. *)

val encode : Buffer.t -> Event.t -> unit
(** Append one frame (length prefix + payload) to [buf].  Does not
    write the stream header.  Amortizes to zero allocation per call. *)

val encode_string : Event.t -> string
(** One frame as a fresh string (convenience for tests). *)

val decode : string -> pos:int -> Event.t * int
(** Decode the frame starting at [pos]; return the event and the
    position just past the frame.  Raises [Failure] on corruption. *)

val decode_all : string -> Event.t list
(** Decode a complete stream (header + frames).  Raises [Failure] on a
    bad header or corrupt frame, {!Unsupported_version} on a version
    mismatch. *)

type reader
(** Incremental decoder over an input channel. *)

val open_reader : in_channel -> reader
(** Read and validate the stream header.  Raises [Failure] if the
    channel does not start with a binary-trace header,
    {!Unsupported_version} on a version mismatch. *)

val input : reader -> Event.t option
(** Next event, or [None] at a clean end of stream.  Raises [Failure]
    on a truncated or corrupt frame. *)
