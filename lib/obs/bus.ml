type t = { enabled : bool; sink : Sink.t; counters : Counters.t option }

let off = { enabled = false; sink = Sink.null; counters = None }

let create ?(sink = Sink.null) ?counters () = { enabled = true; sink; counters }

let enabled t = t.enabled
let sink t = t.sink
let counters t = t.counters
let close t = Sink.close t.sink

(* All emit helpers are no-ops on [off]; the [t.sink != Sink.null] guard
   additionally skips event construction in counters-only mode so that a
   bus created for counters alone allocates nothing per message. *)

let[@inline] want_events t = t.enabled && t.sink != Sink.null

let update_sent ?prefix t ~time ~src ~dst ~withdraw =
  if t.enabled then begin
    (match t.counters with
    | Some c -> Counters.incr_sent c ~node:src ~withdraw
    | None -> ());
    if t.sink != Sink.null then
      Sink.emit t.sink (Event.Update_sent { time; src; dst; withdraw; prefix })
  end

let update_recv ?prefix t ~time ~node ~from ~withdraw =
  if t.enabled then begin
    (match t.counters with
    | Some c -> Counters.incr_recv c ~node ~withdraw
    | None -> ());
    if t.sink != Sink.null then
      Sink.emit t.sink (Event.Update_recv { time; node; from; withdraw; prefix })
  end

let originate ?prefix t ~time ~node =
  if want_events t then Sink.emit t.sink (Event.Originate { time; node; prefix })

let local_withdraw ?prefix t ~time ~node =
  if want_events t then
    Sink.emit t.sink (Event.Withdrawal { time; node; prefix })

let fib_change ?prefix t ~time ~node ~next_hop =
  if t.enabled then begin
    (match t.counters with
    | Some c -> Counters.incr_fib_change c ~node
    | None -> ());
    if t.sink != Sink.null then
      Sink.emit t.sink (Event.Fib_change { time; node; next_hop; prefix })
  end

let mrai_fire t ~time ~node ~peer =
  if t.enabled then begin
    (match t.counters with
    | Some c -> Counters.incr_mrai_fire c
    | None -> ());
    if t.sink != Sink.null then
      Sink.emit t.sink (Event.Mrai_fire { time; node; peer })
  end

let node_submit t ~time ~node ~busy ~depth =
  if t.enabled then begin
    (match t.counters with
    | Some c -> Counters.observe_queue_depth c ~node ~depth
    | None -> ());
    if busy && t.sink != Sink.null then
      Sink.emit t.sink (Event.Node_busy { time; node; depth })
  end

let link_state t ~time ~a ~b ~up =
  if t.enabled then begin
    (match t.counters with
    | Some c -> Counters.incr_link_flap c
    | None -> ());
    if t.sink != Sink.null then
      Sink.emit t.sink (Event.Link_state { time; a; b; up })
  end

let msg_dropped t ~time ~a ~b ~reason =
  if t.enabled then begin
    (match t.counters with
    | Some c -> Counters.incr_dropped c
    | None -> ());
    if t.sink != Sink.null then
      Sink.emit t.sink (Event.Msg_dropped { time; a; b; reason })
  end

let loop_detected ?prefix t ~time ~members ~trigger =
  if t.enabled then begin
    (match t.counters with
    | Some c -> Counters.incr_loop c
    | None -> ());
    if t.sink != Sink.null then
      Sink.emit t.sink (Event.Loop_detected { time; members; trigger; prefix })
  end

let loop_resolved ?prefix t ~time ~members =
  if want_events t then
    Sink.emit t.sink (Event.Loop_resolved { time; members; prefix })

let decision_run t ~node =
  if t.enabled then
    match t.counters with
    | Some c -> Counters.incr_decision c ~node
    | None -> ()

let engine_event t =
  if t.enabled then
    match t.counters with Some c -> Counters.incr_events c | None -> ()
