(** Pluggable destinations for trace events. *)

type t

val null : t
(** Discards everything.  The bus compares against this value physically
    to skip event construction entirely, so reuse [null] rather than
    building an equivalent sink. *)

val fn : (Event.t -> unit) -> t
(** Wrap a callback. *)

val memory : unit -> t * (unit -> Event.t list)
(** Unbounded in-memory sink; the closure returns events in emit order. *)

val ring :
  ?counters:Counters.t -> capacity:int -> unit -> t * (unit -> Event.t list)
(** Bounded ring buffer keeping the last [capacity] events, in emit
    order.  Each overwrite of a not-yet-read slot bumps the
    [trace_dropped] counter in [counters] (if given), so bounded-trace
    runs can detect loss.  Raises [Invalid_argument] if
    [capacity <= 0]. *)

val jsonl : out_channel -> t
(** Write one JSON object per line.  [close] flushes but does not close
    the channel (caller owns it). *)

val jsonl_file : string -> t
(** Like {!jsonl} but opens [path] and closes it on [close]. *)

val binary : out_channel -> t
(** Write the binary trace format ({!Binary}): stream header up front,
    one length-prefixed frame per event, buffered through a reused
    buffer (no per-event allocation).  [close] flushes but does not
    close the channel (caller owns it). *)

val binary_file : string -> t
(** Like {!binary} but opens [path] (binary mode) and closes it on
    [close]. *)

val tee : t -> t -> t
(** Duplicate events to both sinks. *)

val emit : t -> Event.t -> unit
val close : t -> unit
