(** Fixed-width bucket histograms, used for loop-size and loop-duration
    distributions in the per-loop analysis (the paper's stated future
    work, implemented as an extension here). *)

type t

val create : lo:float -> hi:float -> buckets:int -> t
(** [create ~lo ~hi ~buckets] covers [\[lo, hi)] with [buckets]
    equal-width buckets.  Samples below [lo] land in the first bucket,
    samples at or above [hi] in the last.
    @raise Invalid_argument if [buckets <= 0] or [hi <= lo]. *)

val add : t -> float -> unit

val count : t -> int
(** Total number of samples added. *)

val bucket_count : t -> int -> int
(** [bucket_count t i] is the number of samples in bucket [i].
    @raise Invalid_argument if [i] is out of range. *)

val bucket_range : t -> int -> float * float
(** Bounds [(lo, hi)] of bucket [i]. *)

val to_list : t -> ((float * float) * int) list
(** All buckets with their bounds and counts, in order. *)

val merge_into : src:t -> dst:t -> unit
(** Add [src]'s bucket counts into [dst].  Both histograms must have the
    same [lo]/[hi]/bucket count.
    @raise Invalid_argument on geometry mismatch. *)

val pp : Format.formatter -> t -> unit
(** Renders non-empty buckets as one [lo..hi: count] line each. *)
