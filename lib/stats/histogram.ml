type t = {
  lo : float;
  hi : float;
  width : float;
  counts : int array;
  mutable total : int;
}

let create ~lo ~hi ~buckets =
  if buckets <= 0 then invalid_arg "Histogram.create: buckets <= 0";
  if hi <= lo then invalid_arg "Histogram.create: hi <= lo";
  {
    lo;
    hi;
    width = (hi -. lo) /. float_of_int buckets;
    counts = Array.make buckets 0;
    total = 0;
  }

let bucket_of t x =
  let n = Array.length t.counts in
  if x < t.lo then 0
  else if x >= t.hi then n - 1
  else
    let i = int_of_float ((x -. t.lo) /. t.width) in
    Stdlib.min i (n - 1)

let add t x =
  let i = bucket_of t x in
  t.counts.(i) <- t.counts.(i) + 1;
  t.total <- t.total + 1

let count t = t.total

let check_index t i =
  if i < 0 || i >= Array.length t.counts then
    invalid_arg "Histogram: bucket index out of range"

let bucket_count t i =
  check_index t i;
  t.counts.(i)

let bucket_range t i =
  check_index t i;
  let lo = t.lo +. (float_of_int i *. t.width) in
  (lo, lo +. t.width)

let to_list t =
  List.init (Array.length t.counts) (fun i ->
      (bucket_range t i, t.counts.(i)))

let merge_into ~src ~dst =
  if
    src.lo <> dst.lo || src.hi <> dst.hi
    || Array.length src.counts <> Array.length dst.counts
  then invalid_arg "Histogram.merge_into: geometry mismatch";
  Array.iteri (fun i c -> dst.counts.(i) <- dst.counts.(i) + c) src.counts;
  dst.total <- dst.total + src.total

let pp fmt t =
  List.iter
    (fun ((lo, hi), c) ->
      if c > 0 then Format.fprintf fmt "%.3g..%.3g: %d@." lo hi c)
    (to_list t)
