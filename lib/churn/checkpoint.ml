(* Versioned churn checkpoints.

   A checkpoint is only ever taken at a drained epoch boundary: the
   engine queue is empty, every MRAI timer is idle and no message is
   in flight, so the whole simulation state reduces to plain data —
   speaker snapshots, the FIB mirror, the streaming scanner, the RNG
   streams and the down-link set.  The file is a fixed ASCII header
   (so a wrong file fails loudly, not with a marshal segfault)
   followed by one marshalled record, written to a temp file and
   renamed so a crash mid-write never corrupts the previous
   checkpoint. *)

type t = {
  version : int;
  fingerprint : string;
  epoch : int;
  vtime : float;
  events : int;
  chain : string;
  idle_epochs : int;
  links_down : (int * int) array;
  speakers : Bgp.Speaker.snapshot array;
  fib : int option array;
  scan : Loopscan.Stream.t;
  rng_proc : Dessim.Rng.t;
  rng_workload : Dessim.Rng.t;
  rng_speakers : Dessim.Rng.t array;
  counters : Obs.Counters.snapshot;
}

(* v2: the trace digest chain folds binary frames (Obs.Binary) instead
   of JSONL lines, so chains written by v1 checkpoints cannot be
   continued — resuming one must fail structurally, not mid-chain.
   v3: Obs.Binary moved to format 2 (trailing optional prefix-id field
   on per-prefix frames), changing the frame bytes the chain folds. *)
let version = 3
let header_prefix = "bgpsim-churn-ckpt v"
let header = Printf.sprintf "%s%d\n" header_prefix version

exception
  Incompatible_version of { path : string; found : int; expected : int }

let () =
  Printexc.register_printer (function
    | Incompatible_version { path; found; expected } ->
        Some
          (Printf.sprintf
             "%s: incompatible checkpoint version %d (this build reads \
              version %d); re-run without --resume to start a fresh chain"
             path found expected)
    | _ -> None)

let file_name epoch = Printf.sprintf "ckpt-%06d.bin" epoch

let path ~dir ~epoch = Filename.concat dir (file_name epoch)

let write ~dir t =
  if t.version <> version then invalid_arg "Checkpoint.write: bad version";
  let final = path ~dir ~epoch:t.epoch in
  let tmp = final ^ ".tmp" in
  let oc = open_out_bin tmp in
  (try
     output_string oc header;
     Marshal.to_channel oc t [];
     close_out oc
   with e ->
     close_out_noerr oc;
     raise e);
  Sys.rename tmp final;
  final

let read p =
  let ic = open_in_bin p in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      (* all header versions are single-digit so far, so every header
         has the same length and one fixed-size read suffices *)
      let h =
        try really_input_string ic (String.length header)
        with End_of_file ->
          failwith (p ^ ": truncated churn checkpoint")
      in
      let pl = String.length header_prefix in
      if
        String.length h < pl + 2
        || String.sub h 0 pl <> header_prefix
        || h.[String.length h - 1] <> '\n'
      then failwith (p ^ ": not a " ^ header_prefix ^ "N checkpoint");
      (match int_of_string_opt (String.sub h pl (String.length h - pl - 1)) with
      | None -> failwith (p ^ ": not a " ^ header_prefix ^ "N checkpoint")
      | Some v when v <> version ->
          raise (Incompatible_version { path = p; found = v; expected = version })
      | Some _ -> ());
      let t : t = Marshal.from_channel ic in
      if t.version <> version then
        raise
          (Incompatible_version
             { path = p; found = t.version; expected = version });
      t)

(* epoch number encoded in a checkpoint file name, if it is one *)
let epoch_of_name name =
  let prefix = "ckpt-" and suffix = ".bin" in
  let pl = String.length prefix and sl = String.length suffix in
  let nl = String.length name in
  if
    nl > pl + sl
    && String.sub name 0 pl = prefix
    && String.sub name (nl - sl) sl = suffix
  then int_of_string_opt (String.sub name pl (nl - pl - sl))
  else None

let latest ~dir =
  if not (Sys.file_exists dir && Sys.is_directory dir) then None
  else
    Sys.readdir dir |> Array.to_list
    |> List.filter_map (fun name ->
           match epoch_of_name name with
           | Some e -> Some (e, Filename.concat dir name)
           | None -> None)
    |> List.fold_left
         (fun acc (e, p) ->
           match acc with
           | Some (best, _) when best >= e -> acc
           | _ -> Some (e, p))
         None
