(** Versioned checkpoints of a sustained-churn run.

    Checkpoints are taken only at drained epoch boundaries, where the
    whole simulation state is plain data (no engine events, no MRAI
    timers, no in-flight messages): speaker snapshots, the FIB mirror,
    the streaming loop scanner, the RNG streams and the set of links
    currently down.  Restoring one and continuing reproduces the
    uninterrupted run bit-for-bit — the resume-equivalence tests
    compare golden trace digests across a kill/resume.

    On disk: the ASCII header ["bgpsim-churn-ckpt vN\n"] (N = {!version})
    followed by one [Marshal]ed {!t}.  Files are written atomically
    (temp + rename), so an interrupted write never corrupts the
    previous checkpoint.

    Version history: v1 chained digests over JSONL lines; v2 chains
    digests over {!Obs.Binary} frames.  Chains across the two formats
    are unrelated, so {!read} refuses other versions with
    {!Incompatible_version} rather than continuing a broken chain. *)

exception
  Incompatible_version of { path : string; found : int; expected : int }
(** The file is a churn checkpoint, but from another format version.
    Structured (not a bare [Failure]) so callers can map it to a
    distinct exit code. *)

type t = {
  version : int;  (** format version; this module reads/writes {!version} *)
  fingerprint : string;
      (** digest of the run configuration (graph, seed, BGP config,
          workload); resuming under a different configuration is
          refused *)
  epoch : int;  (** completed epochs at the boundary *)
  vtime : float;  (** engine clock at the boundary *)
  events : int;  (** cumulative engine events executed *)
  chain : string;  (** rolling per-epoch trace digest chain (hex) *)
  idle_epochs : int;  (** consecutive epochs without a FIB change *)
  links_down : (int * int) array;  (** links down at the boundary *)
  speakers : Bgp.Speaker.snapshot array;
  fib : int option array;  (** next hop per node toward the prefix *)
  scan : Loopscan.Stream.t;  (** streaming scanner state *)
  rng_proc : Dessim.Rng.t;
  rng_workload : Dessim.Rng.t;
  rng_speakers : Dessim.Rng.t array;
  counters : Obs.Counters.snapshot;
      (** cumulative counters up to the boundary *)
}

val version : int

val path : dir:string -> epoch:int -> string
(** The canonical file name for a boundary checkpoint
    ([ckpt-NNNNNN.bin] under [dir]). *)

val write : dir:string -> t -> string
(** Atomically writes the checkpoint into [dir] and returns its path.
    @raise Sys_error on I/O failure. *)

val read : string -> t
(** @raise Failure on a missing, foreign, or truncated header.
    @raise Incompatible_version on a churn checkpoint from a different
    format version. *)

val latest : dir:string -> (int * string) option
(** The highest-epoch checkpoint in [dir], if any. *)
