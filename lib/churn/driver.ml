(* Long-horizon churn engine.

   One persistent simulation driven through a sequence of workload
   epochs.  Each epoch: schedule that epoch's churn events (from
   {!Workload}), run the engine to drain, then do boundary work —
   stream-scanner bookkeeping, digest chaining, stall detection, arena
   compaction, checkpointing.  Epoch boundaries are the only places
   the run pauses, because a drained network is plain data: that is
   what makes checkpoint/resume exact and arena compaction safe.

   Memory is bounded by construction: no Trace, no unbounded FIB
   history (a [fib_now] array mirrors the forwarding state), the
   streaming scanner holds only live loops unless [record_loops], and
   the path arena is rebuilt from live handles every [compact_every]
   epochs.  [keep_fib_history] re-enables the full history for the
   differential tests only. *)

type status =
  | Completed
  | Stalled of { idle_epochs : int }
  | Wall_expired
  | Event_limit
  | Killed of { after_epoch : int }

let status_name = function
  | Completed -> "completed"
  | Stalled { idle_epochs } ->
      Printf.sprintf "stalled (%d idle epochs)" idle_epochs
  | Wall_expired -> "wall-expired"
  | Event_limit -> "event-limit"
  | Killed { after_epoch } ->
      Printf.sprintf "killed (after epoch %d)" after_epoch

type cfg = {
  graph : Topo.Graph.t;
  origin : int;
  seed : int;
  bgp : Bgp.Config.t;
  params : Netcore.Params.t;
  workload : Workload.t;
  epochs : int;
  target_events : int option;
  checkpoint_dir : string option;
  checkpoint_every : int;
  compact_every : int;
  digest : bool;
  keep_fib_history : bool;
  record_loops : bool;
  stall_epochs : int option;
  max_epoch_events : int;
  kill_after_epoch : int option;
}

let make ?(seed = 1) ?(bgp = Bgp.Config.default)
    ?(params = Netcore.Params.default) ?(workload = Workload.make ())
    ?(epochs = 10) ?target_events ?checkpoint_dir ?(checkpoint_every = 4)
    ?(compact_every = 8) ?(digest = true) ?(keep_fib_history = false)
    ?(record_loops = false) ?stall_epochs ?(max_epoch_events = 50_000_000)
    ?kill_after_epoch ~graph ~origin () =
  {
    graph;
    origin;
    seed;
    bgp;
    params;
    workload;
    epochs;
    target_events;
    checkpoint_dir;
    checkpoint_every;
    compact_every;
    digest;
    keep_fib_history;
    record_loops;
    stall_epochs;
    max_epoch_events;
    kill_after_epoch;
  }

type epoch_info = {
  ei_epoch : int;
  ei_vtime : float;
  ei_events : int;  (* engine events this epoch *)
  ei_fib_changes : int;
  ei_live_loops : int;
  ei_arena_size : int;
  ei_compacted : bool;
  ei_checkpoint : string option;
  ei_digest : string option;
}

type result = {
  status : status;
  epochs_completed : int;
  events_executed : int;
  vtime : float;
  chain_digest : string option;
  loop_totals : Loopscan.Stream.totals;
  loops : Loopscan.Scanner.report option;
  counters : Obs.Counters.snapshot;
  arena_size : int;
  arena_words : int;
  arena_peak : int;
  last_checkpoint : string option;
  fib_history : Netcore.Fib_history.t option;
  scan_begin : float;
}

(* Everything that (deterministically) shapes the trace goes into the
   fingerprint; a resume under a different configuration would diverge
   silently, so it is refused up front.  Policy closures cannot be
   digested — the policy contributes its name, which the built-in
   policies keep unique. *)
let fingerprint cfg =
  let b = Buffer.create 256 in
  let add fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  add "n=%d;" (Topo.Graph.n_nodes cfg.graph);
  List.iter (fun (x, y) -> add "(%d,%d)" x y) (Topo.Graph.edges cfg.graph);
  add ";origin=%d;seed=%d;" cfg.origin cfg.seed;
  let c = cfg.bgp in
  add "mrai=%g;jitter=%g;wrate=%b;ssld=%b;assert=%b;ghost=%b;"
    c.Bgp.Config.mrai c.Bgp.Config.mrai_jitter_min c.Bgp.Config.wrate
    c.Bgp.Config.ssld c.Bgp.Config.assertion c.Bgp.Config.ghost_flushing;
  add "rl=%s;"
    (match c.Bgp.Config.rate_limiter with
    | Bgp.Mrai.Collapse -> "collapse"
    | Bgp.Mrai.Fifo -> "fifo");
  add "policy=%s;" c.Bgp.Config.policy.Bgp.Policy.name;
  let p = cfg.params in
  add "link=%g;proc=%g..%g;ttl=%d;rate=%g;" p.Netcore.Params.link_delay
    p.Netcore.Params.proc_delay_min p.Netcore.Params.proc_delay_max
    p.Netcore.Params.ttl p.Netcore.Params.pkt_rate;
  add "epoch_len=%g;flap_rate=%g" (Workload.epoch_len cfg.workload)
    (Workload.flap_rate cfg.workload);
  Digest.to_hex (Digest.string (Buffer.contents b))

let link_key a b = if a < b then (a, b) else (b, a)

let validate cfg =
  Netcore.Params.validate cfg.params;
  Bgp.Config.validate cfg.bgp;
  let n = Topo.Graph.n_nodes cfg.graph in
  if cfg.origin < 0 || cfg.origin >= n then
    invalid_arg "Churn.Driver: origin out of range";
  if not (Topo.Graph.is_connected cfg.graph) then
    invalid_arg "Churn.Driver: graph must be connected";
  if cfg.bgp.Bgp.Config.damping <> None then
    invalid_arg
      "Churn.Driver: route-flap damping holds timer state that cannot be \
       checkpointed; use damping = None";
  if cfg.epochs < 0 then invalid_arg "Churn.Driver: epochs must be >= 0";
  if cfg.checkpoint_every <= 0 then
    invalid_arg "Churn.Driver: checkpoint_every must be positive";
  if cfg.compact_every <= 0 then
    invalid_arg "Churn.Driver: compact_every must be positive";
  if cfg.max_epoch_events <= 0 then
    invalid_arg "Churn.Driver: max_epoch_events must be positive";
  (match cfg.stall_epochs with
  | Some s when s <= 0 ->
      invalid_arg "Churn.Driver: stall_epochs must be positive"
  | Some _ | None -> ())

let run ?(watchdog = Faults.Watchdog.unlimited) ?on_epoch ?resume_from ?sink
    cfg =
  validate cfg;
  let n = Topo.Graph.n_nodes cfg.graph in
  let fp = fingerprint cfg in
  let ckpt =
    match resume_from with
    | None -> None
    | Some p ->
        let ck = Checkpoint.read p in
        if ck.Checkpoint.fingerprint <> fp then
          invalid_arg
            "Churn.Driver: checkpoint was taken under a different \
             configuration (fingerprint mismatch)";
        if cfg.keep_fib_history then
          invalid_arg "Churn.Driver: keep_fib_history cannot resume";
        Some ck
  in
  let engine =
    match ckpt with
    | Some ck -> Dessim.Engine.create ~now:ck.Checkpoint.vtime ()
    | None -> Dessim.Engine.create ()
  in
  (* --- observability: counters always on; the per-epoch digest sink
     folds the byte-stable binary encoding (Obs.Binary frames) of every
     event — no JSON rendering on the hot path.  An optional caller
     sink (e.g. a trace file) is teed in and closed on finish. --- *)
  let counters = Obs.Counters.create () in
  let digest_buf = Buffer.create (if cfg.digest then 1 lsl 16 else 16) in
  let digest_sink =
    if cfg.digest then
      Some (Obs.Sink.fn (fun ev -> Obs.Binary.encode digest_buf ev))
    else None
  in
  let obs =
    match (digest_sink, sink) with
    | Some d, Some s -> Obs.Bus.create ~sink:(Obs.Sink.tee d s) ~counters ()
    | Some d, None -> Obs.Bus.create ~sink:d ~counters ()
    | None, Some s -> Obs.Bus.create ~sink:s ~counters ()
    | None, None -> Obs.Bus.create ~counters ()
  in
  (* --- fabric: links, node processors, one shared path arena --- *)
  let links = Hashtbl.create (Topo.Graph.n_edges cfg.graph) in
  List.iter
    (fun (a, b) ->
      let link =
        Netcore.Link.create ~a ~b ~delay:cfg.params.Netcore.Params.link_delay
      in
      Netcore.Link.attach_obs link obs;
      Hashtbl.add links (link_key a b) link)
    (Topo.Graph.edges cfg.graph);
  let link_of a b =
    match Hashtbl.find_opt links (link_key a b) with
    | Some l -> l
    | None -> invalid_arg (Printf.sprintf "Churn.Driver: no link (%d,%d)" a b)
  in
  (match ckpt with
  | Some ck ->
      Array.iter
        (fun (a, b) -> Netcore.Link.fail (link_of a b))
        ck.Checkpoint.links_down
  | None -> ());
  let node_procs =
    Array.init n (fun i -> Netcore.Node_proc.create ~obs ~node:i ())
  in
  let paths = ref (Bgp.As_path.Table.create ()) in
  (* --- RNG streams: fresh splits, or the checkpointed states --- *)
  let proc_rng, workload_rng, speaker_rngs =
    match ckpt with
    | Some ck ->
        ( ck.Checkpoint.rng_proc,
          ck.Checkpoint.rng_workload,
          ck.Checkpoint.rng_speakers )
    | None ->
        let root = Dessim.Rng.create ~seed:cfg.seed in
        ( Dessim.Rng.split root ~label:"proc",
          Dessim.Rng.split root ~label:"churn-workload",
          Array.init n (fun i ->
              Dessim.Rng.split root ~label:("speaker-" ^ string_of_int i)) )
  in
  let draw_proc_delay () =
    Dessim.Rng.uniform proc_rng ~lo:cfg.params.Netcore.Params.proc_delay_min
      ~hi:cfg.params.Netcore.Params.proc_delay_max
  in
  let speakers = Array.make n None in
  let speaker i =
    match speakers.(i) with Some s -> s | None -> assert false
  in
  let emit_from src ~peer msg =
    let link = link_of src peer in
    let withdraw =
      match (msg : Bgp.Msg.t) with Withdraw _ -> true | Announce _ -> false
    in
    Obs.Bus.update_sent obs
      ~time:(Dessim.Engine.now engine)
      ~src ~dst:peer ~withdraw;
    let deliver () =
      Netcore.Node_proc.submit node_procs.(peer) ~engine
        ~delay:(draw_proc_delay ()) ~work:(fun () ->
          Obs.Bus.update_recv obs
            ~time:(Dessim.Engine.now engine)
            ~node:peer ~from:src ~withdraw;
          Bgp.Speaker.handle_msg (speaker peer) ~from:src msg)
    in
    ignore (Netcore.Link.send link ~engine ~from:src ~deliver : bool)
  in
  let prefix = Bgp.Prefix.make ~origin:cfg.origin () in
  (* --- bounded forwarding-state mirror + streaming scanner feed --- *)
  let fib_now =
    match ckpt with
    | Some ck -> Array.copy ck.Checkpoint.fib
    | None -> Array.make n None
  in
  let fib_hist =
    if cfg.keep_fib_history then Some (Netcore.Fib_history.create ~n)
    else None
  in
  let scan = ref (match ckpt with Some ck -> Some ck.Checkpoint.scan | None -> None) in
  let epoch_fib_changes = ref 0 in
  let on_next_hop_change_for node ~prefix:p ~next_hop =
    assert (Bgp.Prefix.equal p prefix);
    let time = Dessim.Engine.now engine in
    (match fib_hist with
    | Some h -> Netcore.Fib_history.record h ~time ~node ~next_hop
    | None -> ());
    fib_now.(node) <- next_hop;
    incr epoch_fib_changes;
    Obs.Bus.fib_change obs ~time ~node ~next_hop;
    match !scan with
    | Some s -> Loopscan.Stream.observe ~obs s ~time ~node ~next_hop
    | None -> ()
  in
  for i = 0 to n - 1 do
    speakers.(i) <-
      Some
        (Bgp.Speaker.create ~obs ~paths:!paths ~engine ~config:cfg.bgp
           ~rng:speaker_rngs.(i) ~node:i
           ~peers:(Topo.Graph.neighbors cfg.graph i)
           ~emit:(emit_from i)
           ~on_next_hop_change:(on_next_hop_change_for i)
           ())
  done;
  (match ckpt with
  | Some ck ->
      Array.iteri
        (fun i snap -> Bgp.Speaker.restore (speaker i) snap)
        ck.Checkpoint.speakers
  | None -> ());
  (* --- fault primitives (mirroring the one-shot simulator's) --- *)
  let do_link_fail a b =
    let link = link_of a b in
    if Netcore.Link.is_up link then begin
      Netcore.Link.fail link;
      Obs.Bus.link_state obs ~time:(Dessim.Engine.now engine) ~a ~b ~up:false;
      Bgp.Speaker.session_down (speaker a) ~peer:b;
      Bgp.Speaker.session_down (speaker b) ~peer:a
    end
  in
  let do_link_recover a b =
    let link = link_of a b in
    if not (Netcore.Link.is_up link) then begin
      Netcore.Link.restore link;
      Obs.Bus.link_state obs ~time:(Dessim.Engine.now engine) ~a ~b ~up:true;
      Bgp.Speaker.session_up (speaker a) ~peer:b;
      Bgp.Speaker.session_up (speaker b) ~peer:a
    end
  in
  let live_neighbors v =
    List.filter
      (fun u -> Netcore.Link.is_up (link_of u v))
      (Topo.Graph.neighbors cfg.graph v)
  in
  let do_node_crash v =
    if Bgp.Speaker.alive (speaker v) then begin
      Bgp.Speaker.crash (speaker v);
      List.iter
        (fun u -> Bgp.Speaker.session_down (speaker u) ~peer:v)
        (live_neighbors v)
    end
  in
  let do_node_restart v =
    if not (Bgp.Speaker.alive (speaker v)) then begin
      Bgp.Speaker.restart (speaker v);
      List.iter
        (fun u ->
          if Bgp.Speaker.alive (speaker u) then begin
            Bgp.Speaker.session_up (speaker v) ~peer:u;
            Bgp.Speaker.session_up (speaker u) ~peer:v
          end)
        (live_neighbors v);
      if v = cfg.origin then Bgp.Speaker.originate (speaker v) prefix
    end
  in
  let do_session_reset a b =
    if Netcore.Link.is_up (link_of a b) then begin
      Bgp.Speaker.session_down (speaker a) ~peer:b;
      Bgp.Speaker.session_down (speaker b) ~peer:a;
      Bgp.Speaker.session_up (speaker a) ~peer:b;
      Bgp.Speaker.session_up (speaker b) ~peer:a
    end
  in
  let apply_step = function
    | Workload.Fault (Faults.Scenario.Link_fail (a, b)) -> do_link_fail a b
    | Workload.Fault (Faults.Scenario.Link_recover (a, b)) ->
        do_link_recover a b
    | Workload.Fault (Faults.Scenario.Node_crash v) -> do_node_crash v
    | Workload.Fault (Faults.Scenario.Node_restart v) -> do_node_restart v
    | Workload.Fault (Faults.Scenario.Session_reset (a, b)) ->
        do_session_reset a b
    | Workload.Origin_down ->
        Bgp.Speaker.withdraw_local (speaker cfg.origin) prefix
    | Workload.Origin_up -> Bgp.Speaker.originate (speaker cfg.origin) prefix
  in
  (* --- chunked engine runs: wall-clock expiry and the per-epoch event
     cap are noticed at chunk granularity; event execution itself is
     identical to an uninterrupted run --- *)
  let chunk = 65_536 in
  let drain ~epoch_base =
    let out = ref `Drained in
    let continue_ = ref true in
    while !continue_ do
      match Dessim.Engine.next_live_time engine with
      | None -> continue_ := false
      | Some _ ->
          if Faults.Watchdog.expired watchdog then begin
            out := `Wall;
            continue_ := false
          end
          else begin
            let executed = Dessim.Engine.events_executed engine in
            if executed - epoch_base >= cfg.max_epoch_events then begin
              out := `Events;
              continue_ := false
            end
            else
              Dessim.Engine.run
                ~max_events:
                  (Stdlib.min
                     (epoch_base + cfg.max_epoch_events)
                     (executed + chunk))
                engine
          end
    done;
    !out
  in
  (* --- bookkeeping carried across epochs --- *)
  let completed = ref (match ckpt with Some ck -> ck.Checkpoint.epoch | None -> 0) in
  let idle = ref (match ckpt with Some ck -> ck.Checkpoint.idle_epochs | None -> 0) in
  let chain = ref (match ckpt with Some ck -> ck.Checkpoint.chain | None -> "") in
  let events_base = match ckpt with Some ck -> ck.Checkpoint.events | None -> 0 in
  let base_counters = Option.map (fun ck -> ck.Checkpoint.counters) ckpt in
  let last_ckpt = ref resume_from in
  let credited = ref 0 in
  let credit_events () =
    let executed = Dessim.Engine.events_executed engine in
    Obs.Counters.add_events counters (executed - !credited);
    credited := executed
  in
  let cum_events () = events_base + Dessim.Engine.events_executed engine in
  let arena_peak = ref (Bgp.As_path.Table.size !paths) in
  let note_arena () =
    let size = Bgp.As_path.Table.size !paths in
    Obs.Counters.observe_paths_interned counters ~count:size;
    if size > !arena_peak then arena_peak := size
  in
  let full_counters () =
    credit_events ();
    note_arena ();
    let now = Obs.Counters.snapshot counters in
    match base_counters with
    | Some base -> Obs.Counters.merge base now
    | None -> now
  in
  (* Arena epoch compaction: at a drained boundary every live path
     handle sits in some speaker's RIB/FIB state, so re-interning those
     into a fresh arena and dropping the old one bounds arena growth by
     the live set, not by churn history.  The remap is guarded: a
     handle whose contents or hash change would corrupt routing state,
     so it fails hard. *)
  let compact () =
    for i = 0 to n - 1 do
      if not (Bgp.Speaker.quiescent (speaker i)) then
        failwith "Churn.Driver: compaction at a non-quiescent boundary"
    done;
    let fresh = Bgp.As_path.Table.create () in
    let f p =
      let q = Bgp.As_path.reintern ~table:fresh p in
      if
        Bgp.As_path.hash q <> Bgp.As_path.hash p
        || Bgp.As_path.to_list q <> Bgp.As_path.to_list p
      then failwith "Churn.Driver: compaction changed a live path handle";
      q
    in
    for i = 0 to n - 1 do
      Bgp.Speaker.remap_paths (speaker i) ~f;
      Bgp.Speaker.set_path_table (speaker i) fresh
    done;
    paths := fresh
  in
  let write_checkpoint dir =
    let links_down =
      Hashtbl.to_seq links |> List.of_seq
      |> List.filter_map (fun (key, link) ->
             if Netcore.Link.is_up link then None else Some key)
      |> List.sort compare |> Array.of_list
    in
    let scan_state =
      match !scan with Some s -> s | None -> assert false
    in
    let ck =
      {
        Checkpoint.version = Checkpoint.version;
        fingerprint = fp;
        epoch = !completed;
        vtime = Dessim.Engine.now engine;
        events = cum_events ();
        chain = !chain;
        idle_epochs = !idle;
        links_down;
        speakers =
          Array.init n (fun i -> Bgp.Speaker.snapshot (speaker i));
        fib = Array.copy fib_now;
        scan = scan_state;
        rng_proc = Dessim.Rng.copy proc_rng;
        rng_workload = Dessim.Rng.copy workload_rng;
        rng_speakers = Array.map Dessim.Rng.copy speaker_rngs;
        counters = full_counters ();
      }
    in
    let p = Checkpoint.write ~dir ck in
    last_ckpt := Some p;
    p
  in
  let status = ref None in
  let scan_begin = ref (Dessim.Engine.now engine) in
  (* --- warm-up (fresh runs only): originate and converge, then arm
     the streaming scanner on the converged (loop-free) state --- *)
  (match ckpt with
  | Some _ -> ()
  | None ->
      let (_ : Dessim.Engine.handle) =
        Dessim.Engine.schedule ~tag:"originate" engine
          ~at:(Dessim.Engine.now engine)
          (fun () -> Bgp.Speaker.originate (speaker cfg.origin) prefix)
      in
      (match drain ~epoch_base:0 with
      | `Drained -> ()
      | `Wall -> status := Some Wall_expired
      | `Events -> status := Some Event_limit);
      scan_begin := Dessim.Engine.now engine;
      if !status = None then begin
        scan :=
          Some
            (Loopscan.Stream.create ~record:cfg.record_loops
               ~origin:cfg.origin ~initial:fib_now ());
        Buffer.clear digest_buf (* warm-up events are not part of the chain *)
      end);
  (* --- epoch loop --- *)
  while !status = None && !completed < cfg.epochs do
    if Faults.Watchdog.expired watchdog then status := Some Wall_expired
    else begin
      let epoch = !completed + 1 in
      let epoch_start = Dessim.Engine.now engine in
      let epoch_base = Dessim.Engine.events_executed engine in
      epoch_fib_changes := 0;
      let steps =
        Workload.generate cfg.workload ~graph:cfg.graph ~rng:workload_rng
      in
      List.iter
        (fun { Workload.at; action } ->
          let (_ : Dessim.Engine.handle) =
            Dessim.Engine.schedule ~tag:"churn" engine ~at:(epoch_start +. at)
              (fun () -> apply_step action)
          in
          ())
        steps;
      match drain ~epoch_base with
      | `Wall -> status := Some Wall_expired
      | `Events -> status := Some Event_limit
      | `Drained ->
          completed := epoch;
          let epoch_digest =
            if cfg.digest then begin
              let d = Digest.to_hex (Digest.string (Buffer.contents digest_buf)) in
              Buffer.clear digest_buf;
              chain := Digest.to_hex (Digest.string (!chain ^ d));
              Some d
            end
            else None
          in
          if !epoch_fib_changes = 0 then incr idle else idle := 0;
          let stalled =
            match cfg.stall_epochs with
            | Some limit -> !idle >= limit
            | None -> false
          in
          let killed =
            match cfg.kill_after_epoch with
            | Some k -> epoch >= k
            | None -> false
          in
          let target_met =
            match cfg.target_events with
            | Some target -> cum_events () >= target
            | None -> false
          in
          let done_now =
            stalled || killed || target_met || epoch >= cfg.epochs
          in
          let compacted = epoch mod cfg.compact_every = 0 in
          note_arena ();
          if compacted then compact ();
          let ckpt_path =
            match cfg.checkpoint_dir with
            | Some dir when epoch mod cfg.checkpoint_every = 0 || done_now ->
                Some (write_checkpoint dir)
            | Some _ | None -> None
          in
          (match on_epoch with
          | Some f ->
              f
                {
                  ei_epoch = epoch;
                  ei_vtime = Dessim.Engine.now engine;
                  ei_events = Dessim.Engine.events_executed engine - epoch_base;
                  ei_fib_changes = !epoch_fib_changes;
                  ei_live_loops =
                    (match !scan with
                    | Some s -> Loopscan.Stream.live_loops s
                    | None -> 0);
                  ei_arena_size = Bgp.As_path.Table.size !paths;
                  ei_compacted = compacted;
                  ei_checkpoint = ckpt_path;
                  ei_digest = epoch_digest;
                }
          | None -> ());
          if stalled then status := Some (Stalled { idle_epochs = !idle })
          else if killed then status := Some (Killed { after_epoch = epoch })
          else if target_met then status := Some Completed
    end
  done;
  let status = match !status with Some s -> s | None -> Completed in
  (* graceful finish, on every path: flush the sink and take the final
     counter snapshot; [last_ckpt] already points at the most recent
     boundary checkpoint *)
  let final_counters = full_counters () in
  Obs.Bus.close obs;
  let vtime = Dessim.Engine.now engine in
  let scan_state =
    match !scan with
    | Some s -> s
    | None ->
        (* warm-up was cut before the scanner armed *)
        Loopscan.Stream.create ~record:cfg.record_loops ~origin:cfg.origin
          ~initial:(Array.make n None) ()
  in
  {
    status;
    epochs_completed = !completed;
    events_executed = cum_events ();
    vtime;
    chain_digest = (if cfg.digest then Some !chain else None);
    loop_totals = Loopscan.Stream.totals scan_state ~until:vtime;
    loops =
      (if cfg.record_loops then Some (Loopscan.Stream.report scan_state)
       else None);
    counters = final_counters;
    arena_size = Bgp.As_path.Table.size !paths;
    arena_words = Bgp.As_path.Table.words !paths;
    arena_peak = !arena_peak;
    last_checkpoint = !last_ckpt;
    fib_history = fib_hist;
    scan_begin = !scan_begin;
  }
