(* Epoch workload generation: a continuous up-down-flap event stream,
   one epoch at a time, expressed through the faults DSL.

   Every epoch draws a Poisson-distributed number of churn events —
   paired link fail/recover flaps, session resets, origin prefix
   flaps — all placed inside the epoch so the network drains back to
   quiescence at the boundary.  All randomness comes from the caller's
   stream, in a fixed draw order, so the schedule is a pure function
   of (workload params, graph, RNG state): checkpoint the RNG and the
   post-resume schedule is identical. *)

type t = { epoch_len : float; flap_rate : float }

let make ?(epoch_len = 300.) ?(flap_rate = 4.) () =
  if epoch_len <= 0. || Float.is_nan epoch_len then
    invalid_arg "Workload.make: epoch_len must be positive";
  if flap_rate < 0. || flap_rate > 100. then
    invalid_arg "Workload.make: flap_rate outside [0, 100]";
  { epoch_len; flap_rate }

let epoch_len t = t.epoch_len
let flap_rate t = t.flap_rate

type action =
  | Fault of Faults.Scenario.action
  | Origin_down
  | Origin_up

type step = { at : float; action : action }

(* Knuth's product-of-uniforms sampler; fine for the rates we accept
   (exp(-100) is still comfortably above the float underflow). *)
let poisson rng lambda =
  if lambda <= 0. then 0
  else begin
    let l = exp (-.lambda) in
    let k = ref 0 and p = ref 1. in
    let continue_ = ref true in
    while !continue_ do
      incr k;
      p := !p *. Dessim.Rng.float rng 1.;
      if !p <= l then continue_ := false
    done;
    !k - 1
  end

let generate t ~graph ~rng =
  let edges = Topo.Graph.edges graph in
  let n_edges = List.length edges in
  if n_edges = 0 then invalid_arg "Workload.generate: graph has no edges";
  let edge_arr = Array.of_list edges in
  let len = t.epoch_len in
  (* events start inside [0, 0.7·len) and every paired recovery lands
     by 0.9·len, leaving the last tenth of the epoch as settle time *)
  let draw_start () = Dessim.Rng.float rng (0.7 *. len) in
  let draw_end at =
    let dur = Dessim.Rng.uniform rng ~lo:(0.02 *. len) ~hi:(0.25 *. len) in
    Float.min (at +. dur) (0.9 *. len)
  in
  let n = poisson rng t.flap_rate in
  let clauses = ref [] and origin_steps = ref [] in
  for _ = 1 to n do
    let kind = Dessim.Rng.float rng 1. in
    if kind < 0.55 then begin
      (* link flap: fail then recover, both inside the epoch *)
      let link = edge_arr.(Dessim.Rng.int rng n_edges) in
      let at = draw_start () in
      clauses :=
        Faults.Scenario.At (draw_end at, Faults.Scenario.Link_recover link)
        :: Faults.Scenario.At (at, Faults.Scenario.Link_fail link)
        :: !clauses
    end
    else if kind < 0.75 then begin
      let link = edge_arr.(Dessim.Rng.int rng n_edges) in
      clauses :=
        Faults.Scenario.At (draw_start (), Faults.Scenario.Session_reset link)
        :: !clauses
    end
    else begin
      (* origin prefix flap: T_down then T_up, the paper's event pair *)
      let at = draw_start () in
      origin_steps :=
        { at = draw_end at; action = Origin_up }
        :: { at; action = Origin_down }
        :: !origin_steps
    end
  done;
  let scenario = Faults.Scenario.make ~name:"churn-epoch" (List.rev !clauses) in
  let fault_steps =
    Faults.Scenario.compile scenario ~graph ~rng
    |> List.map (fun { Faults.Scenario.at; action } ->
           { at; action = Fault action })
  in
  List.stable_sort
    (* bgpsim-lint: allow D004 — Float.compare as a total order; ties stay stable *)
    (fun a b -> Float.compare a.at b.at)
    (fault_steps @ List.rev !origin_steps)
