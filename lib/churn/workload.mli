(** Sustained-churn workload generation.

    Produces one epoch of scripted faults at a time: paired link
    fail/recover flaps, BGP session resets and origin prefix flaps
    (the paper's [T_down]/[T_up] pair), built on the faults DSL
    ({!Faults.Scenario}) and compiled against the concrete topology.

    The schedule is a deterministic function of the parameters, the
    graph and the RNG state — a fixed draw order means checkpointing
    the RNG reproduces the exact post-resume schedule. *)

type t

val make : ?epoch_len:float -> ?flap_rate:float -> unit -> t
(** [epoch_len] (default 300 virtual seconds) spreads each epoch's
    events over [\[0, 0.7·len)] with every paired recovery by
    [0.9·len], leaving settle time before the boundary.  [flap_rate]
    (default 4) is the Poisson mean number of churn events per epoch.
    @raise Invalid_argument if [epoch_len <= 0] or [flap_rate]
    is outside [\[0, 100]]. *)

val epoch_len : t -> float
val flap_rate : t -> float

type action =
  | Fault of Faults.Scenario.action
  | Origin_down  (** origin withdraws its prefix *)
  | Origin_up  (** origin (re-)announces its prefix *)

type step = { at : float; action : action }
(** [at] is seconds after the epoch start. *)

val generate : t -> graph:Topo.Graph.t -> rng:Dessim.Rng.t -> step list
(** One epoch's schedule, sorted by time.
    @raise Invalid_argument if the graph has no edges. *)
