(** The sustained-churn service mode: one persistent simulation driven
    through a long horizon of workload epochs.

    Each epoch schedules one {!Workload.generate} batch of churn events
    and runs the engine to drain.  Drained epoch boundaries are where
    everything interesting happens, because a drained network is plain
    data (no queued events, no running MRAI timers, no in-flight
    messages):

    - the per-epoch trace digest ([d_i], md5 over the epoch's
      {!Obs.Binary} frames — no JSON rendering on the hot path) is
      folded into a rolling chain ([c_i = md5(c_(i-1) ^ d_i)]) — the
      golden value the resume-equivalence tests compare;
    - the path arena is compacted every [compact_every] epochs:
      every live handle is re-interned into a fresh arena
      ({!Bgp.As_path.reintern} via {!Bgp.Speaker.remap_paths}),
      guarded by the invariant that contents and hash survive —
      so arena growth is bounded by the live set, not churn history;
    - a {!Checkpoint} is written every [checkpoint_every] epochs (and
      at every terminal boundary); a killed run resumed from it
      replays the remaining epochs bit-identically;
    - progress-stall detection: [stall_epochs] consecutive epochs
      without a single FIB change yield a structured [Stalled] status
      instead of silent spinning.

    Memory is bounded by construction: no event trace is retained
    (observability streams through the bus), the forwarding state is a
    flat [int option array] mirror, and the streaming scanner
    ({!Loopscan.Stream}) holds only live loops unless [record_loops].

    Wall-clock budgets come from a {!Faults.Watchdog}: expiry is
    noticed at event-chunk granularity, the run degrades gracefully
    (sinks flushed, final counters taken, last checkpoint reported)
    and the result carries [Wall_expired]. *)

type status =
  | Completed  (** ran the requested epochs (or hit [target_events]) *)
  | Stalled of { idle_epochs : int }
      (** [stall_epochs] consecutive epochs without a FIB change *)
  | Wall_expired  (** the watchdog budget ran out *)
  | Event_limit  (** one epoch exceeded [max_epoch_events] *)
  | Killed of { after_epoch : int }
      (** [kill_after_epoch] fired (deterministic kill for the
          resume tests); the boundary checkpoint was written *)

val status_name : status -> string

type cfg = {
  graph : Topo.Graph.t;
  origin : int;
  seed : int;
  bgp : Bgp.Config.t;  (** [damping] must be [None] (not snapshotable) *)
  params : Netcore.Params.t;
  workload : Workload.t;
  epochs : int;  (** total completed epochs to reach (absolute, so a
                     resumed run continues toward the same target) *)
  target_events : int option;
      (** stop [Completed] at the first boundary with at least this
          many cumulative engine events (bench sizing) *)
  checkpoint_dir : string option;
  checkpoint_every : int;  (** epochs between checkpoints *)
  compact_every : int;  (** epochs between arena compactions *)
  digest : bool;
      (** fold every trace event into the per-epoch digest chain;
          turn off for throughput benchmarks *)
  keep_fib_history : bool;
      (** retain the full FIB history (differential tests only;
          incompatible with resume) *)
  record_loops : bool;  (** keep finished loops for {!result.loops} *)
  stall_epochs : int option;
  max_epoch_events : int;  (** hang protection within one epoch *)
  kill_after_epoch : int option;
}

val make :
  ?seed:int ->
  ?bgp:Bgp.Config.t ->
  ?params:Netcore.Params.t ->
  ?workload:Workload.t ->
  ?epochs:int ->
  ?target_events:int ->
  ?checkpoint_dir:string ->
  ?checkpoint_every:int ->
  ?compact_every:int ->
  ?digest:bool ->
  ?keep_fib_history:bool ->
  ?record_loops:bool ->
  ?stall_epochs:int ->
  ?max_epoch_events:int ->
  ?kill_after_epoch:int ->
  graph:Topo.Graph.t ->
  origin:int ->
  unit ->
  cfg
(** Defaults: seed 1, default BGP config and paper parameters, default
    workload, 10 epochs, checkpoint every 4, compact every 8, digest
    on, no history, no loop recording, no stall limit, 50 M events per
    epoch, no kill. *)

val fingerprint : cfg -> string
(** Hex digest of everything that shapes the trace (graph, origin,
    seed, BGP configuration, network parameters, workload).  Stored in
    checkpoints; a resume under a different fingerprint is refused. *)

type epoch_info = {
  ei_epoch : int;
  ei_vtime : float;
  ei_events : int;  (** engine events this epoch *)
  ei_fib_changes : int;
  ei_live_loops : int;
  ei_arena_size : int;  (** after compaction, when one ran *)
  ei_compacted : bool;
  ei_checkpoint : string option;
  ei_digest : string option;  (** this epoch's trace digest *)
}

type result = {
  status : status;
  epochs_completed : int;
  events_executed : int;  (** cumulative, including pre-resume epochs *)
  vtime : float;
  chain_digest : string option;  (** the rolling chain; [None] when
                                     [digest] was off *)
  loop_totals : Loopscan.Stream.totals;
  loops : Loopscan.Scanner.report option;  (** when [record_loops] *)
  counters : Obs.Counters.snapshot;
      (** cumulative (checkpointed counters merged in on resume) *)
  arena_size : int;
  arena_words : int;
  arena_peak : int;  (** max arena size seen at any boundary *)
  last_checkpoint : string option;
  fib_history : Netcore.Fib_history.t option;  (** when [keep_fib_history] *)
  scan_begin : float;  (** vtime the streaming scanner armed (warm-up
                           end, or the resume point) *)
}

val run :
  ?watchdog:Faults.Watchdog.t ->
  ?on_epoch:(epoch_info -> unit) ->
  ?resume_from:string ->
  ?sink:Obs.Sink.t ->
  cfg ->
  result
(** Runs churn epochs until the configured horizon or a terminal
    condition.  [resume_from] restores a {!Checkpoint} and continues
    toward [cfg.epochs]; the resumed trace (and hence the digest
    chain) is identical to the uninterrupted run's.

    [sink] receives every trace event (teed with the digest sink when
    [digest] is on) and is closed when the run finishes; warm-up events
    reach it even though they are excluded from the digest chain.

    @raise Invalid_argument on an invalid configuration or a
    checkpoint fingerprint mismatch.
    @raise Checkpoint.Incompatible_version when resuming from a
    checkpoint written by another format version.
    @raise Failure on a corrupt checkpoint file or a compaction
    invariant violation. *)
