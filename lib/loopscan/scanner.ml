type loop = {
  members : int list;
  birth : float;
  death : float option;
  trigger : int;
}

let size l = List.length l.members

let duration l ~until =
  match l.death with Some d -> d -. l.birth | None -> until -. l.birth

let pp_loop fmt l =
  Format.fprintf fmt "loop [%s] born %g%s"
    (String.concat " -> " (List.map string_of_int l.members))
    l.birth
    (match l.death with
    | Some d -> Printf.sprintf " died %g" d
    | None -> " (alive)")

type report = {
  loops : loop list;
  first_loop_birth : float option;
  last_loop_death : float option;
  max_concurrent : int;
}

(* Rotate a cycle so it starts at its smallest member; forwarding order
   is preserved. *)
let canonicalize cycle =
  let arr = Array.of_list cycle in
  let n = Array.length arr in
  let start = ref 0 in
  for i = 1 to n - 1 do
    if arr.(i) < arr.(!start) then start := i
  done;
  List.init n (fun i -> arr.((!start + i) mod n))

(* A live loop under construction. *)
type live = { l_members : int list; l_birth : float; l_trigger : int }

type state = {
  next_hop : int option array;
  (* node -> the live loop it belongs to, if any *)
  member_of : live option array;
  mutable alive : int;
  mutable max_alive : int;
  finished : loop Dessim.Vec.t;
}

let kill st ~time live =
  List.iter (fun v -> st.member_of.(v) <- None) live.l_members;
  st.alive <- st.alive - 1;
  Dessim.Vec.push st.finished
    {
      members = live.l_members;
      birth = live.l_birth;
      death = Some time;
      trigger = live.l_trigger;
    }

let register st ~time ~trigger cycle =
  let live =
    { l_members = canonicalize cycle; l_birth = time; l_trigger = trigger }
  in
  List.iter (fun v -> st.member_of.(v) <- Some live) live.l_members;
  st.alive <- st.alive + 1;
  if st.alive > st.max_alive then st.max_alive <- st.alive;
  live

(* Chase the next-hop chain from [v]; if it returns to [v], the nodes
   visited so far form a new cycle through [v].  The chain can otherwise
   end at the origin, at a routeless node, or merge into an existing
   loop (or a tail leading to one) — none of which creates a new loop.
   The walk is bounded by n hops since cycles are disjoint and every
   revisit is caught. *)
let find_new_cycle st ~origin v =
  let n = Array.length st.next_hop in
  let rec chase node acc steps =
    if steps > n then
      (* impossible: some node would have repeated, caught below *)
      assert false
    else if node = origin then None
    else if st.member_of.(node) <> None then None
    else
      match st.next_hop.(node) with
      | None -> None
      | Some next ->
          if next = v then Some (List.rev (node :: acc))
          else if List.mem next acc || next = node then
            (* A cycle not through [v] would have to predate this
               change, hence be registered already — caught above. *)
            assert false
          else chase next (node :: acc) (steps + 1)
  in
  if st.member_of.(v) <> None then None else chase v [] 0

let scan ?(obs = Obs.Bus.off) ?prefix ~fib ~origin ~from () =
  let n = Netcore.Fib_history.n_nodes fib in
  let st =
    {
      next_hop = Netcore.Fib_history.snapshot fib ~before:from;
      member_of = Array.make n None;
      alive = 0;
      max_alive = 0;
      finished = Dessim.Vec.create ();
    }
  in
  (* The starting state must be loop-free (converged warm-up). *)
  for v = 0 to n - 1 do
    match find_new_cycle st ~origin v with
    | None -> ()
    | Some _ -> invalid_arg "Scanner.scan: starting state contains a loop"
  done;
  let apply (change : Netcore.Fib_history.change) =
    let v = change.node in
    (match st.member_of.(v) with
    | Some live ->
        Obs.Bus.loop_resolved ?prefix obs ~time:change.time
          ~members:live.l_members;
        kill st ~time:change.time live
    | None -> ());
    st.next_hop.(v) <- change.next_hop;
    match find_new_cycle st ~origin v with
    | None -> ()
    | Some cycle ->
        let live = register st ~time:change.time ~trigger:v cycle in
        Obs.Bus.loop_detected ?prefix obs ~time:change.time
          ~members:live.l_members ~trigger:v
  in
  List.iter apply (Netcore.Fib_history.changes_from fib ~from);
  (* Surviving loops are reported with no death time. *)
  let seen = Hashtbl.create 8 in
  Array.iter
    (fun live_opt ->
      match live_opt with
      | Some live when not (Hashtbl.mem seen live.l_members) ->
          Hashtbl.add seen live.l_members ();
          Dessim.Vec.push st.finished
            {
              members = live.l_members;
              birth = live.l_birth;
              death = None;
              trigger = live.l_trigger;
            }
      | Some _ | None -> ())
    st.member_of;
  let loops =
    List.sort
      (fun a b -> compare (a.birth, a.members) (b.birth, b.members))
      (Dessim.Vec.to_list st.finished)
  in
  let first_loop_birth =
    match loops with [] -> None | l :: _ -> Some l.birth
  in
  let last_loop_death =
    List.fold_left
      (fun acc l ->
        match (acc, l.death) with
        | None, d -> d
        | Some _, None -> acc
        | Some best, Some d -> Some (Stdlib.max best d))
      None loops
  in
  let last_loop_death =
    (* a surviving loop means there is no meaningful "last death" *)
    if List.exists (fun l -> l.death = None) loops then None
    else last_loop_death
  in
  { loops; first_loop_birth; last_loop_death; max_concurrent = st.max_alive }

type aggregate = {
  count : int;
  mean_size : float;
  max_size : int;
  mean_duration : float;
  max_duration : float;
  total_loop_seconds : float;
}

let aggregate report ~until =
  match report.loops with
  | [] ->
      {
        count = 0;
        mean_size = 0.;
        max_size = 0;
        mean_duration = 0.;
        max_duration = 0.;
        total_loop_seconds = 0.;
      }
  | loops ->
      let sizes = Array.of_list (List.map (fun l -> float_of_int (size l)) loops) in
      let durations = Array.of_list (List.map (fun l -> duration l ~until) loops) in
      {
        count = List.length loops;
        mean_size = Stats.Descriptive.mean sizes;
        max_size = int_of_float (Stats.Descriptive.max sizes);
        mean_duration = Stats.Descriptive.mean durations;
        max_duration = Stats.Descriptive.max durations;
        total_loop_seconds = Stats.Descriptive.sum durations;
      }

let pp_aggregate fmt a =
  Format.fprintf fmt
    "loops=%d mean_size=%.2f max_size=%d mean_dur=%.2fs max_dur=%.2fs total=%.2fs"
    a.count a.mean_size a.max_size a.mean_duration a.max_duration
    a.total_loop_seconds
