(* Streaming loop detection: the Scanner algorithm, fed one FIB change
   at a time instead of replaying a recorded history.

   The state is deliberately plain data (no closures, no Vec): churn
   checkpoints Marshal it directly.  The observability bus is passed
   per [observe] call rather than stored, for the same reason.

   The algorithm is an independent mirror of [Scanner] (canonical
   rotation, kill-then-rescan at the changed node), kept separate so
   the differential suite compares two implementations rather than one
   implementation with itself. *)

type live = { l_members : int list; l_birth : float; l_trigger : int }

type t = {
  origin : int;
  next_hop : int option array;
  member_of : live option array;
  mutable alive : int;
  mutable max_alive : int;
  record : bool;
  mutable finished_rev : Scanner.loop list;  (* only when [record] *)
  (* bounded-memory aggregates, maintained in both modes *)
  mutable started : int;
  mutable resolved : int;
  mutable sum_size : int;
  mutable max_size : int;
  mutable finished_loop_seconds : float;
  mutable first_loop_birth : float option;
  mutable last_loop_death : float option;
}

let canonicalize cycle =
  let arr = Array.of_list cycle in
  let n = Array.length arr in
  let start = ref 0 in
  for i = 1 to n - 1 do
    if arr.(i) < arr.(!start) then start := i
  done;
  List.init n (fun i -> arr.((!start + i) mod n))

let find_new_cycle t v =
  let n = Array.length t.next_hop in
  let rec chase node acc steps =
    if steps > n then assert false
    else if node = t.origin then None
    else if t.member_of.(node) <> None then None
    else
      match t.next_hop.(node) with
      | None -> None
      | Some next ->
          if next = v then Some (List.rev (node :: acc))
          else if List.mem next acc || next = node then assert false
          else chase next (node :: acc) (steps + 1)
  in
  if t.member_of.(v) <> None then None else chase v [] 0

let kill t ~time live =
  List.iter (fun v -> t.member_of.(v) <- None) live.l_members;
  t.alive <- t.alive - 1;
  t.resolved <- t.resolved + 1;
  t.finished_loop_seconds <-
    t.finished_loop_seconds +. (time -. live.l_birth);
  (t.last_loop_death <-
     match t.last_loop_death with
     | Some d when d >= time -> t.last_loop_death
     | _ -> Some time);
  if t.record then
    t.finished_rev <-
      {
        Scanner.members = live.l_members;
        birth = live.l_birth;
        death = Some time;
        trigger = live.l_trigger;
      }
      :: t.finished_rev

let register t ~time ~trigger cycle =
  let live =
    { l_members = canonicalize cycle; l_birth = time; l_trigger = trigger }
  in
  List.iter (fun v -> t.member_of.(v) <- Some live) live.l_members;
  t.alive <- t.alive + 1;
  if t.alive > t.max_alive then t.max_alive <- t.alive;
  t.started <- t.started + 1;
  let sz = List.length live.l_members in
  t.sum_size <- t.sum_size + sz;
  if sz > t.max_size then t.max_size <- sz;
  if t.first_loop_birth = None then t.first_loop_birth <- Some time;
  live

let create ?(record = false) ~origin ~initial () =
  let n = Array.length initial in
  if origin < 0 || origin >= n then invalid_arg "Stream.create: bad origin";
  let t =
    {
      origin;
      next_hop = Array.copy initial;
      member_of = Array.make n None;
      alive = 0;
      max_alive = 0;
      record;
      finished_rev = [];
      started = 0;
      resolved = 0;
      sum_size = 0;
      max_size = 0;
      finished_loop_seconds = 0.;
      first_loop_birth = None;
      last_loop_death = None;
    }
  in
  for v = 0 to n - 1 do
    match find_new_cycle t v with
    | None -> ()
    | Some cycle ->
        ignore (register t ~time:0. ~trigger:v cycle);
        invalid_arg "Stream.create: starting state contains a loop"
  done;
  t

let observe ?(obs = Obs.Bus.off) ?prefix t ~time ~node ~next_hop =
  (match t.member_of.(node) with
  | Some live ->
      Obs.Bus.loop_resolved ?prefix obs ~time ~members:live.l_members;
      kill t ~time live
  | None -> ());
  t.next_hop.(node) <- next_hop;
  match find_new_cycle t node with
  | None -> ()
  | Some cycle ->
      let live = register t ~time ~trigger:node cycle in
      Obs.Bus.loop_detected ?prefix obs ~time ~members:live.l_members
        ~trigger:node

let live_loops t = t.alive
let n_nodes t = Array.length t.next_hop
let fib t node = t.next_hop.(node)

type totals = {
  loops_started : int;
  loops_resolved : int;
  live_now : int;
  max_concurrent : int;
  max_size : int;
  mean_size : float;
  total_loop_seconds : float;
      (* finished loops, plus survivors charged up to [until] *)
  first_loop_birth : float option;
  last_loop_death : float option;
}

let totals t ~until =
  let survivor_seconds = ref 0. in
  let seen = Hashtbl.create 8 in
  Array.iter
    (function
      | Some live when not (Hashtbl.mem seen live.l_members) ->
          Hashtbl.add seen live.l_members ();
          survivor_seconds := !survivor_seconds +. (until -. live.l_birth)
      | Some _ | None -> ())
    t.member_of;
  {
    loops_started = t.started;
    loops_resolved = t.resolved;
    live_now = t.alive;
    max_concurrent = t.max_alive;
    max_size = t.max_size;
    mean_size =
      (if t.started = 0 then 0.
       else float_of_int t.sum_size /. float_of_int t.started);
    total_loop_seconds = t.finished_loop_seconds +. !survivor_seconds;
    first_loop_birth = t.first_loop_birth;
    last_loop_death = (if t.alive > 0 then None else t.last_loop_death);
  }

let report t =
  if not t.record then
    invalid_arg "Stream.report: scanner was created without ~record:true";
  let finished = ref t.finished_rev in
  let seen = Hashtbl.create 8 in
  Array.iter
    (function
      | Some live when not (Hashtbl.mem seen live.l_members) ->
          Hashtbl.add seen live.l_members ();
          finished :=
            {
              Scanner.members = live.l_members;
              birth = live.l_birth;
              death = None;
              trigger = live.l_trigger;
            }
            :: !finished
      | Some _ | None -> ())
    t.member_of;
  let loops =
    List.sort
      (fun (a : Scanner.loop) (b : Scanner.loop) ->
        compare (a.birth, a.members) (b.birth, b.members))
      !finished
  in
  let first_loop_birth =
    match loops with [] -> None | (l : Scanner.loop) :: _ -> Some l.birth
  in
  let last_loop_death =
    List.fold_left
      (fun acc (l : Scanner.loop) ->
        match (acc, l.death) with
        | None, d -> d
        | Some _, None -> acc
        | Some best, Some d -> Some (Stdlib.max best d))
      None loops
  in
  let last_loop_death =
    if List.exists (fun (l : Scanner.loop) -> l.death = None) loops then None
    else last_loop_death
  in
  {
    Scanner.loops;
    first_loop_birth;
    last_loop_death;
    max_concurrent = t.max_alive;
  }
