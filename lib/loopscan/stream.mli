(** Streaming (online) loop detection.

    Same functional-graph invariant as {!Scanner} — a FIB change at
    node [v] can only kill [v]'s loop and only create a loop through
    [v] — but fed one change at a time, so long churn runs track loops
    without retaining a FIB history.

    State is plain data (no closures): churn checkpoints Marshal it
    directly, which is why the observability bus is an argument to
    {!observe} rather than part of the state.

    Two modes:
    - [record = false] (default): bounded memory; only aggregate
      {!totals} are maintained, O(nodes) state regardless of run
      length.
    - [record = true]: additionally retains every finished loop so
      {!report} can produce a {!Scanner.report} for differential
      comparison against the post-hoc scanner. *)

type t

val create :
  ?record:bool -> origin:int -> initial:int option array -> unit -> t
(** [create ~origin ~initial ()] starts tracking from the forwarding
    state [initial] (copied; [initial.(v)] is [v]'s next hop toward
    the destination).  The starting state must be loop-free.
    @raise Invalid_argument if it contains a loop or [origin] is out
    of range. *)

val observe :
  ?obs:Obs.Bus.t ->
  ?prefix:int ->
  t ->
  time:float ->
  node:int ->
  next_hop:int option ->
  unit
(** Apply one FIB change.  Changes must arrive in nondecreasing time
    order (as the simulation emits them).  [obs] (default
    {!Obs.Bus.off}) receives [Loop_detected] / [Loop_resolved]
    events, tagged with [prefix] when given (mesh runs). *)

val live_loops : t -> int
(** Number of loops alive right now. *)

val n_nodes : t -> int

val fib : t -> int -> int option
(** Current next hop of a node, as tracked by the scanner. *)

type totals = {
  loops_started : int;
  loops_resolved : int;
  live_now : int;
  max_concurrent : int;
  max_size : int;
  mean_size : float;
  total_loop_seconds : float;
      (** finished loops plus survivors charged up to [until] *)
  first_loop_birth : float option;
  last_loop_death : float option;
      (** [None] when no loop resolved yet or one is still alive *)
}

val totals : t -> until:float -> totals
(** Aggregates; available in both modes. *)

val report : t -> Scanner.report
(** Full per-loop report, identical in shape and ordering to
    {!Scanner.scan}'s (survivors carry [death = None]).
    @raise Invalid_argument unless created with [~record:true]. *)
