type cause = Withdrawal_triggered | Announcement_triggered | Session_triggered

let cause_name = function
  | Withdrawal_triggered -> "withdrawal"
  | Announcement_triggered -> "announcement"
  | Session_triggered -> "session-event"

let classify ~trace report =
  let cause_of (l : Scanner.loop) =
    match
      Netcore.Trace.last_process_at trace ~node:l.trigger ~at_or_before:l.birth
    with
    (* bgpsim-lint: allow D004 — identity check: both times come from the same trace record *)
    | Some p when p.time = l.birth -> (
        (* the FIB change happened at the instant this message finished
           processing: it is the trigger *)
        match p.kind with
        | Netcore.Trace.Withdraw -> Withdrawal_triggered
        | Netcore.Trace.Announce -> Announcement_triggered)
    | Some _ | None ->
        (* no message completed at the birth instant: the node reacted
           to a local event (its own session going down) *)
        Session_triggered
  in
  List.map (fun l -> (l, cause_of l)) report.Scanner.loops

type breakdown = {
  withdrawal_triggered : int;
  announcement_triggered : int;
  session_triggered : int;
}

let breakdown classified =
  List.fold_left
    (fun acc (_, cause) ->
      match cause with
      | Withdrawal_triggered ->
          { acc with withdrawal_triggered = acc.withdrawal_triggered + 1 }
      | Announcement_triggered ->
          { acc with announcement_triggered = acc.announcement_triggered + 1 }
      | Session_triggered ->
          { acc with session_triggered = acc.session_triggered + 1 })
    { withdrawal_triggered = 0; announcement_triggered = 0; session_triggered = 0 }
    classified

let pp_breakdown fmt b =
  Format.fprintf fmt
    "triggers: %d by withdrawal, %d by announcement, %d by session event"
    b.withdrawal_triggered b.announcement_triggered b.session_triggered
