(** Forwarding-loop tracking over a FIB history.

    The per-destination forwarding state is a functional graph (each
    node has at most one next hop), so its cycles are node-disjoint and
    each node belongs to at most one loop.  A FIB change at node [v]
    can only kill the loop [v] is a member of (its outgoing edge
    changed) and can only create a loop through [v] (any new cycle must
    use [v]'s new edge) — so scanning the chronological change log and
    chasing next-hop chains from changed nodes tracks every loop
    exactly.

    This implements the paper's stated next step ("measure the
    statistics of individual loops such as the loop size and
    duration"), which the published study only measured in aggregate. *)

type loop = {
  members : int list;
      (** the cycle in forwarding order, starting at its smallest
          member *)
  birth : float;
  death : float option;  (** [None] if alive at the end of the scan *)
  trigger : int;
      (** the node whose next-hop change created the cycle (a cycle can
          only form through the changed node's new edge) *)
}

val size : loop -> int

val duration : loop -> until:float -> float
(** Lifetime, using [until] for loops still alive. *)

val pp_loop : Format.formatter -> loop -> unit

type report = {
  loops : loop list;  (** by birth time *)
  first_loop_birth : float option;
  last_loop_death : float option;
      (** [None] when no loop formed or one survived the scan *)
  max_concurrent : int;  (** most loops alive at once *)
}

val scan :
  ?obs:Obs.Bus.t ->
  ?prefix:int ->
  fib:Netcore.Fib_history.t ->
  origin:int ->
  from:float ->
  unit ->
  report
(** [scan ~fib ~origin ~from ()] starts from the forwarding state just
    before [from] (which must be loop-free, e.g. a converged warm-up
    state) and processes all changes at or after [from].  [obs]
    (default {!Obs.Bus.off}) receives [Loop_detected]/[Loop_resolved]
    events, timestamped with the FIB-change virtual times and tagged
    with [prefix] when given.
    @raise Invalid_argument if the starting state already contains a
    loop. *)

(** {2 Aggregates} *)

type aggregate = {
  count : int;
  mean_size : float;
  max_size : int;
  mean_duration : float;
  max_duration : float;
  total_loop_seconds : float;
      (** sum of loop lifetimes — a load-like measure of looping *)
}

val aggregate : report -> until:float -> aggregate
(** Zeroed fields when no loops formed. *)

val pp_aggregate : Format.formatter -> aggregate -> unit
