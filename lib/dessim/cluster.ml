type t = {
  engines : Engine.t array;
  lookahead : float array array;
  (* channels.(p).(q) carries partition p's sends into partition q *)
  channels : Channel.t option array array;
  (* cached conservative state; sound while [horizons_valid] because
     bounds only grow within a run (heads advance, and new events never
     undercut the last fixpoint — see the progress argument in the
     interface), so a stale horizon is a lower bound on the true one *)
  bounds : float array;
  horizons : float array;
  mutable horizons_valid : bool;
  mutable sync_rounds : int;
  (* any finite off-diagonal lookahead? if not, partitions are mutually
     unreachable and the commit loop skips the conservative gate *)
  synchronized : bool;
}

let k t = Array.length t.engines

let engine t p = t.engines.(p)

let create ?now ~lookahead () =
  let n = Array.length lookahead in
  if n = 0 then invalid_arg "Cluster.create: empty lookahead matrix";
  Array.iter
    (fun row ->
      if Array.length row <> n then
        invalid_arg "Cluster.create: lookahead matrix is not square")
    lookahead;
  let shared_seq = ref 0 in
  let engines =
    Array.init n (fun p -> Engine.create ?now ~partition:p ~shared_seq ())
  in
  let synchronized = ref false in
  let channels =
    Array.init n (fun p ->
        Array.init n (fun q ->
            let la = lookahead.(p).(q) in
            (* bgpsim-lint: allow D004 — infinity is the exact no-channel sentinel, not a computed time *)
            if p = q || la = infinity then None
            else begin
              if not (la > 0.) then
                invalid_arg
                  (Printf.sprintf
                     "Cluster.create: lookahead.(%d).(%d) = %g not positive" p
                     q la);
              synchronized := true;
              let deliver ~time ~tag action =
                let (_ : Engine.handle) =
                  Engine.schedule ?tag engines.(q) ~at:time action
                in
                ()
              in
              Some (Channel.create ~src:p ~dst:q ~lookahead:la ~deliver)
            end))
  in
  {
    engines;
    lookahead;
    channels;
    bounds = Array.make n infinity;
    horizons = Array.make n infinity;
    horizons_valid = false;
    sync_rounds = 0;
    synchronized = !synchronized;
  }

let send t ?tag ~src ~dst ~at action =
  if src = dst then
    let (_ : Engine.handle) = Engine.schedule ?tag t.engines.(dst) ~at action in
    ()
  else
    match t.channels.(src).(dst) with
    | Some ch ->
        Channel.send ch ~time:at
          ~receiver_clock:(Engine.now t.engines.(dst))
          ~tag action
    | None ->
        invalid_arg
          (Printf.sprintf "Cluster.send: no channel from partition %d to %d"
             src dst)

(* A control injection is a synchronization barrier: the action it
   wraps may push events onto ANY partition's queue at the injection
   time, undercutting bounds advertised from pre-injection heads.  So
   besides broadcasting the clock we retract every advert and drop the
   cached horizons; the next gate miss recomputes from the real
   post-injection heads. *)
let sync_clocks t ~to_ =
  Array.iter (fun e -> Engine.sync_clock e ~to_) t.engines;
  Array.iter
    (Array.iter (function None -> () | Some ch -> Channel.reset ch))
    t.channels;
  t.horizons_valid <- false

let now t = Array.fold_left (fun acc e -> Float.max acc (Engine.now e)) neg_infinity t.engines

let events_executed t =
  Array.fold_left (fun acc e -> acc + Engine.events_executed e) 0 t.engines

let pending t =
  Array.fold_left (fun acc e -> acc + Engine.pending e) 0 t.engines

let next_live_time t =
  Array.fold_left
    (fun acc e ->
      match Engine.next_live_time e with
      | None -> acc
      | Some time -> (
          match acc with
          | None -> Some time
          | Some best -> if time < best then Some time else acc))
    None t.engines

(* Least fixpoint of b_p = min(head_p, min_q (b_q + la(q,p))).  Edge
   relaxation in the style of Bellman–Ford: k passes cover every simple
   propagation path, and positive lookahead makes cycles non-improving,
   so the loop always settles within the bound. *)
let recompute t =
  let n = Array.length t.engines in
  for p = 0 to n - 1 do
    t.bounds.(p) <-
      (if Engine.has_live_head t.engines.(p) then Engine.head_time t.engines.(p)
       else infinity)
  done;
  let changed = ref true in
  let pass = ref 0 in
  while !changed && !pass < n do
    changed := false;
    incr pass;
    for p = 0 to n - 1 do
      for q = 0 to n - 1 do
        if p <> q && Option.is_some t.channels.(p).(q) then begin
          let via = t.bounds.(p) +. t.lookahead.(p).(q) in
          if via < t.bounds.(q) then begin
            t.bounds.(q) <- via;
            changed := true
          end
        end
      done
    done
  done;
  (* Advertise the new bounds (null messages) and cache each
     partition's horizon: the min advertised clock over its inbound
     channels. *)
  for q = 0 to n - 1 do
    let horizon = ref infinity in
    for p = 0 to n - 1 do
      match t.channels.(p).(q) with
      | None -> ()
      | Some ch ->
          Channel.advertise ch ~bound:(t.bounds.(p) +. t.lookahead.(p).(q));
          if Channel.clock ch < !horizon then horizon := Channel.clock ch
    done;
    t.horizons.(q) <- !horizon
  done;
  t.horizons_valid <- true;
  t.sync_rounds <- t.sync_rounds + 1

let fold_channels t f init =
  let acc = ref init in
  Array.iter
    (Array.iter (function None -> () | Some ch -> acc := f !acc ch))
    t.channels;
  !acc

type stats = {
  cross_sent : int;
  null_messages : int;
  violations : int;
  sync_rounds : int;
}

let stats t =
  {
    cross_sent = fold_channels t (fun acc ch -> acc + Channel.sent ch) 0;
    null_messages = fold_channels t (fun acc ch -> acc + Channel.nulls ch) 0;
    violations = fold_channels t (fun acc ch -> acc + Channel.violations ch) 0;
    sync_rounds = t.sync_rounds;
  }

let run ?until ?max_events t =
  (* Fresh synchronization state: between runs the driver injects
     external events that may sit below the previous run's adverts. *)
  Array.iter
    (Array.iter (function None -> () | Some ch -> Channel.reset ch))
    t.channels;
  t.horizons_valid <- false;
  let budget = match max_events with None -> max_int | Some m -> m in
  let limit = match until with None -> infinity | Some l -> l in
  let n = Array.length t.engines in
  let continue = ref true in
  while !continue do
    if events_executed t >= budget then continue := false
    else begin
      (* globally earliest live head under the shared (time, seq) order *)
      let best = ref (-1) in
      let best_time = ref infinity in
      let best_seq = ref max_int in
      for p = 0 to n - 1 do
        if Engine.has_live_head t.engines.(p) then begin
          let time = Engine.head_time t.engines.(p) in
          let seq = Engine.head_seq t.engines.(p) in
          (* bgpsim-lint: allow D004 — bitwise-equal keys tie-break on the seq number *)
          if time < !best_time || (time = !best_time && seq < !best_seq) then begin
            best := p;
            best_time := time;
            best_seq := seq
          end
        end
      done;
      if !best < 0 || !best_time > limit then continue := false
      else begin
        let p = !best in
        if t.synchronized then begin
          (* conservative gate: the head must sit strictly below its
             partition's horizon; recompute lazily on a miss *)
          if not (t.horizons_valid && !best_time < t.horizons.(p)) then begin
            recompute t;
            if not (!best_time < t.horizons.(p)) then
              failwith
                (Printf.sprintf
                   "Cluster.run: conservative progress violated — head %g in \
                    partition %d not below horizon %g after recompute"
                   !best_time p t.horizons.(p))
          end
        end;
        let (_ : bool) = Engine.step t.engines.(p) in
        ()
      end
    end
  done;
  let v = (stats t).violations in
  if v > 0 then
    failwith
      (Printf.sprintf "Cluster.run: %d channel protocol violation(s)" v)
