type t = Random.State.t

let create ~seed = Random.State.make [| seed; 0x6267_7073; 0x696d |]

let copy t = Random.State.copy t

let split t ~label =
  (* Derive a child seed from the parent stream and the label so that
     sibling streams are decorrelated and the parent advances by one
     draw per split, independent of label length. *)
  let h = Hashtbl.hash label in
  let s = Random.State.bits t in
  Random.State.make [| s; h; 0x7370_6c69 |]

let float t bound =
  if bound <= 0. then invalid_arg "Rng.float: bound must be positive";
  Random.State.float t bound

let uniform t ~lo ~hi =
  if hi < lo then invalid_arg "Rng.uniform: hi < lo";
  (* bgpsim-lint: allow D004 — exact degenerate-interval guard on user bounds *)
  if hi = lo then lo else lo +. Random.State.float t (hi -. lo)

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  Random.State.int t bound

let bool t = Random.State.bool t

let pick t = function
  | [] -> invalid_arg "Rng.pick: empty list"
  | l -> List.nth l (int t (List.length l))

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done
