(** Typed cross-partition message channel for conservative parallel DES.

    A channel carries scheduled actions from one space partition to
    another and is the unit of conservative synchronization: it has a
    {e lookahead} — a guaranteed minimum gap between the sender's
    committed clock and any arrival it can still produce — and a
    {e clock}, the sender's advertised lower bound on all future
    arrival times (a null message, in Chandy–Misra–Bryant terms).

    The channel enforces two protocol invariants on every send and
    {e records} (never masks) violations:

    - advert consistency: no message may arrive below the channel's
      advertised clock;
    - causal safety: no message may arrive below the receiver's
      committed clock plus the channel lookahead.

    Violations are counted rather than raised at the send site so the
    executor's event order never depends on the checker; {!Cluster.run}
    fails the whole run afterwards if the count is non-zero. *)

type t

val create :
  src:int ->
  dst:int ->
  lookahead:float ->
  deliver:(time:float -> tag:string option -> (unit -> unit) -> unit) ->
  t
(** A channel from partition [src] to partition [dst].  [deliver] is
    the receiving side's enqueue primitive (it schedules the action
    into the destination partition's event queue at [time]).
    @raise Invalid_argument if [lookahead <= 0.] or [src = dst]. *)

val src : t -> int
val dst : t -> int
val lookahead : t -> float

val clock : t -> float
(** The advertised lower bound on future arrival times; [neg_infinity]
    after {!create} or {!reset}. *)

val send :
  t -> time:float -> receiver_clock:float -> tag:string option ->
  (unit -> unit) -> unit
(** Checks the protocol invariants against [time] (the arrival
    timestamp) and the destination partition's committed
    [receiver_clock], then hands the action to [deliver].  The message
    is always delivered — a violation increments {!violations} but
    must not change the schedule. *)

val advertise : t -> bound:float -> unit
(** Raises the channel clock to [bound] — a null message promising the
    receiver that nothing will arrive below [bound].  Monotone:
    [bound <= clock t] is a no-op (within a run the executor's bounds
    only grow; {!reset} starts the next run afresh). *)

val reset : t -> unit
(** Drops the advertised clock back to [neg_infinity].  Called at the
    start of every {!Cluster.run}: between runs the driver may inject
    fresh external events that sit below the previous run's adverts. *)

(** {2 Statistics} — cumulative across runs. *)

val sent : t -> int
(** Messages delivered through the channel. *)

val nulls : t -> int
(** Null messages (strict clock advances via {!advertise}). *)

val violations : t -> int
(** Protocol-invariant violations recorded by {!send}. *)
