(** Discrete-event simulation engine.

    Events are closures executed at their scheduled virtual time.  The
    engine guarantees: events fire in nondecreasing time order; events
    scheduled at equal times fire in scheduling order; the clock never
    moves backwards.  Scheduling into the past raises. *)

type t

type handle
(** A scheduled event.  Cancelling a handle is O(1); the event stays in
    the queue but is skipped when dequeued. *)

val create : ?now:float -> ?partition:int -> ?shared_seq:int ref -> unit -> t
(** A fresh engine; the clock starts at [now] (default [0.]).

    [partition] tags the engine with the space-partition it serves
    (default [0]; informational, see {!partition}).  [shared_seq]
    threads a sequence counter shared with sibling engines so that
    [(time, seq)] totally orders events across the whole group — the
    foundation of the partitioned executor's determinism guarantee
    (see {!Cluster}). *)

val now : t -> float

val schedule : ?tag:string -> t -> at:float -> (unit -> unit) -> handle
(** [tag] labels the event for the step profiler (see
    {!set_step_profiler}); it has no effect on execution.
    @raise Invalid_argument if [at < now t]. *)

val schedule_after : ?tag:string -> t -> delay:float -> (unit -> unit) -> handle
(** [schedule_after t ~delay f = schedule t ~at:(now t +. delay) f].
    @raise Invalid_argument if [delay < 0.]. *)

val cancel : handle -> unit
(** Cancelling an already-fired or already-cancelled event is a no-op. *)

val cancelled : handle -> bool

val step : t -> bool
(** Executes the next non-cancelled event.  Returns [false] when the
    queue holds no live events. *)

val run : ?until:float -> ?max_events:int -> t -> unit
(** Runs events until the queue drains, the next event would fire after
    [until], or [max_events] live events have executed.  With [until],
    the clock is left at [min until (last fired time)] — it does not
    jump to [until]. *)

val pending : t -> int
(** Number of queued events, including cancelled ones not yet skipped. *)

val next_live_time : t -> float option
(** Timestamp of the earliest non-cancelled queued event, or [None] when
    no live event remains.  Discards cancelled events found at the head
    of the queue (observationally a no-op). *)

val set_clock_monitor : t -> (old_time:float -> new_time:float -> unit) -> unit
(** Installs a hook called immediately before each clock advance, with
    the clock's current value and the fired event's timestamp.  Used by
    runtime invariant checkers to verify timestamp monotonicity from the
    outside; the engine itself already enforces it structurally. *)

val set_step_profiler :
  t -> (time:float -> tag:string option -> run:(unit -> unit) -> unit) -> unit
(** Installs a wrapper around event execution: instead of calling the
    event action directly, [step] calls the profiler with the event's
    fire [time], its schedule-site [tag], and the action as [run].  The
    profiler MUST call [run ()] exactly once.  Keeps the engine free of
    wall-clock dependencies — the caller supplies the timing. *)

val events_executed : t -> int
(** Total live events executed since creation. *)

(** {2 Partitioned-executor hooks}

    Used by {!Cluster} to drive several engines as one logical
    simulation.  All three head accessors are allocation-free — the
    cluster's commit loop consults every partition head once per
    committed event. *)

val partition : t -> int
(** The partition id given at {!create} (default [0]). *)

val has_live_head : t -> bool
(** Whether a non-cancelled event is queued.  Discards cancelled events
    found at the head (observationally a no-op), so a [true] result
    means {!head_time}/{!head_seq} describe a live event. *)

val head_time : t -> float
(** Timestamp of the head event.  Only meaningful immediately after
    {!has_live_head} returned [true]. *)

val head_seq : t -> int
(** Sequence number of the head event.  Only meaningful immediately
    after {!has_live_head} returned [true]. *)

val sync_clock : t -> to_:float -> unit
(** Advances the clock to [to_] without executing an event (a null
    message in conservative-synchronization terms).  Never moves the
    clock backwards; [to_ <= now t] is a no-op.  Only sound when the
    caller has proven no event below [to_] can still reach this
    engine. *)
