(** Deterministic, splittable random number streams.

    Every stochastic quantity in a simulation run (message processing
    delays, MRAI jitter, traffic phases, topology generation, random
    destination / failed-link choice) draws from a stream rooted at a
    single integer seed, so any run is exactly reproducible from its
    seed. *)

type t

val create : seed:int -> t

val copy : t -> t
(** Independent copy of the stream state: the copy and the original
    produce the same subsequent draws without affecting each other.
    Used to capture RNG state in checkpoints without perturbing the
    live stream. *)

val split : t -> label:string -> t
(** [split t ~label] derives an independent stream.  Streams split with
    different labels from the same parent are decorrelated; splitting
    with the same label twice yields two streams continuing the same
    derived sequence root (callers should use distinct labels). *)

val float : t -> float -> float
(** [float t bound] draws uniformly from [\[0, bound)].  [bound] must be
    positive. *)

val uniform : t -> lo:float -> hi:float -> float
(** Uniform draw from [\[lo, hi)].  @raise Invalid_argument if
    [hi < lo]; returns [lo] when [hi = lo]. *)

val int : t -> int -> int
(** [int t bound] draws uniformly from [\[0, bound)].  [bound] must be
    positive. *)

val bool : t -> bool

val pick : t -> 'a list -> 'a
(** Uniform choice.  @raise Invalid_argument on the empty list. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)
