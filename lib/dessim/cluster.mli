(** Conservative space-partitioned executor: one {!Engine} per
    partition, driven as a single logical simulation.

    All member engines share one sequence counter, so [(time, seq)]
    totally orders events across the whole cluster exactly as it would
    inside one engine.  The commit loop always executes the globally
    earliest live event, which makes a partitioned run reproduce a
    sequential run {e byte for byte} (same event order, same RNG draw
    order, same trace): the global-minimum event can never be preempted,
    because every event a future commit can still create is scheduled at
    a later [(time, seq)] key — same-partition causes schedule at
    [>= T] with a larger sequence number, and cross-partition causes
    arrive at [>= T + lookahead > T].

    On top of that order the cluster runs the full
    Chandy–Misra–Bryant conservative protocol and {e checks} it rather
    than relying on it: before committing a head at time [T] in
    partition [p], [T] must lie strictly below [p]'s horizon — the
    minimum over inbound channels of the sender's advertised clock
    (lower bound [b_q] on any future event in [q], plus the channel
    lookahead).  Bounds are the least fixpoint of
    [b_p = min(head_p, min_q (b_q + la(q,p)))], recomputed lazily when
    a cached horizon no longer covers the head.  Positive lookahead
    makes the fixpoint reachable in at most [k] relaxation passes and
    guarantees progress (the global-minimum head always clears its
    horizon after a recompute); a miss after recompute, or any channel
    protocol violation, fails the run loudly. *)

type t

val create : ?now:float -> lookahead:float array array -> unit -> t
(** A cluster of [k = Array.length lookahead] partitions.
    [lookahead.(p).(q)] is the guaranteed minimum delay of any message
    from partition [p] to partition [q]; [infinity] means [p] never
    sends to [q] (no channel is built).  Diagonal entries are ignored.
    @raise Invalid_argument if the matrix is not square, or any
    off-diagonal entry is finite but not positive. *)

val k : t -> int
(** Number of partitions. *)

val engine : t -> int -> Engine.t
(** The engine serving partition [p].  Callers schedule
    partition-local work directly on it; cross-partition work must go
    through {!send}. *)

val send :
  t -> ?tag:string -> src:int -> dst:int -> at:float -> (unit -> unit) ->
  unit
(** Schedules [action] at absolute time [at] in partition [dst] on
    behalf of partition [src].  Same-partition sends are a plain
    {!Engine.schedule}; cross-partition sends go through the
    [src -> dst] channel (protocol-checked, see {!Channel}).
    @raise Invalid_argument if [src <> dst] and no channel exists
    (i.e. [lookahead.(src).(dst)] was [infinity]). *)

val run : ?until:float -> ?max_events:int -> t -> unit
(** Runs the commit loop until no live event remains anywhere, the
    earliest one would fire after [until], or cumulative
    {!events_executed} reaches [max_events] — the same contract as
    {!Engine.run} over the merged event set.  Resets channel adverts
    first (events injected between runs may sit below stale bounds).
    @raise Failure if the conservative gate misses after a fixpoint
    recompute, or any channel recorded a protocol violation. *)

val sync_clocks : t -> to_:float -> unit
(** Advances every partition clock to at least [to_] (a broadcast null
    message).  Used by control actions that mutate state across
    partition boundaries mid-event, so every engine stamps the
    mutation with the same time.  Only sound at commit time of the
    globally earliest event, where no event below [to_] remains. *)

(** {2 Merged views} — the cluster as one logical engine. *)

val now : t -> float
(** The latest partition clock (the global committed time). *)

val events_executed : t -> int
(** Sum of live events executed across all partitions. *)

val next_live_time : t -> float option
(** Earliest live event time across all partitions. *)

val pending : t -> int
(** Total queued events across all partitions. *)

(** {2 Synchronization statistics} *)

type stats = {
  cross_sent : int;  (** messages routed through a channel *)
  null_messages : int;  (** strict channel-clock advances *)
  violations : int;  (** channel protocol violations (0 on any healthy run) *)
  sync_rounds : int;  (** horizon-fixpoint recomputations *)
}

val stats : t -> stats
