type t = {
  src : int;
  dst : int;
  lookahead : float;
  deliver : time:float -> tag:string option -> (unit -> unit) -> unit;
  mutable clock : float;
  mutable sent : int;
  mutable nulls : int;
  mutable violations : int;
}

let create ~src ~dst ~lookahead ~deliver =
  if not (lookahead > 0.) then
    invalid_arg "Channel.create: lookahead must be positive";
  if src = dst then invalid_arg "Channel.create: self-channel";
  {
    src;
    dst;
    lookahead;
    deliver;
    clock = neg_infinity;
    sent = 0;
    nulls = 0;
    violations = 0;
  }

let src t = t.src
let dst t = t.dst
let lookahead t = t.lookahead
let clock t = t.clock

(* Both checks record instead of raising: the schedule must be
   byte-identical whether or not anyone ever looks at the counters, so
   a violating message still goes through — the run is failed wholesale
   by Cluster.run once it can no longer perturb event order. *)
let send t ~time ~receiver_clock ~tag action =
  if time < t.clock then t.violations <- t.violations + 1;
  if time < receiver_clock +. t.lookahead then
    t.violations <- t.violations + 1;
  t.sent <- t.sent + 1;
  t.deliver ~time ~tag action

let advertise t ~bound =
  if bound > t.clock then begin
    t.clock <- bound;
    t.nulls <- t.nulls + 1
  end

let reset t = t.clock <- neg_infinity

let sent t = t.sent
let nulls t = t.nulls
let violations t = t.violations
