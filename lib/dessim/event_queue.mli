(** Priority queue of timestamped items, ordered by [(time, sequence)].

    Items inserted at equal times are dequeued in insertion order, which
    makes simulation runs deterministic independent of heap internals. *)

type 'a t

val create : unit -> 'a t

val is_empty : 'a t -> bool

val size : 'a t -> int

val push : 'a t -> time:float -> 'a -> unit
(** @raise Invalid_argument if [time] is NaN. *)

val pop : 'a t -> (float * 'a) option
(** Removes and returns the earliest item. *)

val peek_time : 'a t -> float option
(** Timestamp of the earliest item, without removing it. *)

val peek : 'a t -> (float * 'a) option
(** The earliest item, without removing it. *)
