(** Priority queue of timestamped items, ordered by [(time, sequence)].

    Items inserted at equal times are dequeued in insertion order, which
    makes simulation runs deterministic independent of heap internals. *)

type 'a t

val create : ?shared_seq:int ref -> unit -> 'a t
(** [shared_seq] supplies the sequence counter; passing the same ref to
    several queues makes [(time, seq)] a total order across all of them
    (each push consumes the next value, whichever queue it lands in).
    The partitioned executor relies on this to define "globally earliest
    event".  Default: a counter private to the new queue. *)

val is_empty : 'a t -> bool

val size : 'a t -> int

val push : 'a t -> time:float -> 'a -> unit
(** @raise Invalid_argument if [time] is NaN. *)

val pop : 'a t -> (float * 'a) option
(** Removes and returns the earliest item. *)

(** {2 Non-allocating accessors}

    The engine's inner loop runs once per simulation event; the
    option/tuple wrappers above would be its only allocations. *)

val top_time : 'a t -> float
(** Timestamp of the earliest item.  Undefined on an empty queue
    (reads a stale slot); guard with {!is_empty}. *)

val top_seq : 'a t -> int
(** Sequence number of the earliest item.  Undefined on an empty
    queue; guard with {!is_empty}. *)

val top_item : 'a t -> 'a
(** The earliest item, without removing it.  Undefined on an empty
    queue; guard with {!is_empty}. *)

val pop_item : 'a t -> 'a
(** Removes and returns the earliest item without its timestamp (read
    {!top_time} first).  Undefined on an empty queue. *)

val peek_time : 'a t -> float option
(** Timestamp of the earliest item, without removing it. *)

val peek : 'a t -> (float * 'a) option
(** The earliest item, without removing it. *)
