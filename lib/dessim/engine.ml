(* One record serves as both the scheduled event and the caller's
   cancellation handle — a separate handle record would be one more
   allocation per scheduled event for no information. *)
type handle = {
  mutable state : [ `Pending | `Cancelled | `Fired ];
  action : unit -> unit;
  tag : string option;
}

type event = handle

(* The clock lives in its own single-float record: an all-float record
   is flat, so advancing the clock mutates in place instead of boxing a
   fresh float per event (as a float field in the mixed [t] would). *)
type clock = { mutable now : float }

type t = {
  queue : event Event_queue.t;
  clock : clock;
  partition : int;
  mutable executed : int;
  mutable clock_monitor : (old_time:float -> new_time:float -> unit) option;
  mutable profiler :
    (time:float -> tag:string option -> run:(unit -> unit) -> unit) option;
}

let create ?(now = 0.) ?(partition = 0) ?shared_seq () =
  {
    queue = Event_queue.create ?shared_seq ();
    clock = { now };
    partition;
    executed = 0;
    clock_monitor = None;
    profiler = None;
  }

let partition t = t.partition

let set_clock_monitor t f = t.clock_monitor <- Some f
let set_step_profiler t f = t.profiler <- Some f

let now t = t.clock.now

let schedule ?tag t ~at action =
  if at < t.clock.now then
    invalid_arg
      (Printf.sprintf "Engine.schedule: time %g is before now %g" at
         t.clock.now);
  let handle = { state = `Pending; action; tag } in
  Event_queue.push t.queue ~time:at handle;
  handle

let schedule_after ?tag t ~delay action =
  if delay < 0. then invalid_arg "Engine.schedule_after: negative delay";
  schedule ?tag t ~at:(t.clock.now +. delay) action

let cancel handle =
  match handle.state with
  | `Pending -> handle.state <- `Cancelled
  | `Cancelled | `Fired -> ()

let cancelled handle = handle.state = `Cancelled

let rec step t =
  if Event_queue.is_empty t.queue then false
  else
    let time = Event_queue.top_time t.queue in
    let ev = Event_queue.pop_item t.queue in
    match ev.state with
    | `Cancelled -> step t
    | `Fired -> assert false
    | `Pending ->
        (match t.clock_monitor with
        | Some f -> f ~old_time:t.clock.now ~new_time:time
        | None -> ());
        t.clock.now <- time;
        ev.state <- `Fired;
        t.executed <- t.executed + 1;
        (match t.profiler with
        | None -> ev.action ()
        | Some p -> p ~time ~tag:ev.tag ~run:ev.action);
        true

let run ?until ?max_events t =
  let budget = match max_events with None -> max_int | Some m -> m in
  match until with
  | None ->
      let rec loop () = if t.executed < budget && step t then loop () in
      loop ()
  | Some limit ->
      let rec loop () =
        if
          t.executed < budget
          && (Event_queue.is_empty t.queue
              || Event_queue.top_time t.queue <= limit)
          && step t
        then loop ()
      in
      loop ()

let pending t = Event_queue.size t.queue

(* Earliest live (non-cancelled) event time.  Cancelled heads are dead
   weight; popping them here is observationally a no-op. *)
let rec next_live_time t =
  match Event_queue.peek t.queue with
  | None -> None
  | Some (time, ev) ->
      if ev.state = `Cancelled then begin
        ignore (Event_queue.pop t.queue : (float * event) option);
        next_live_time t
      end
      else Some time

let events_executed t = t.executed

(* {2 Partitioned-executor hooks}

   The conservative cluster loop inspects every partition's head once
   per committed event, so these must not allocate: no options, no
   tuples.  [has_live_head] discards cancelled heads as a side effect
   (observationally a no-op, same as [next_live_time]) so that a [true]
   answer makes the paired [head_time]/[head_seq] reads meaningful. *)

let rec has_live_head t =
  if Event_queue.is_empty t.queue then false
  else if (Event_queue.top_item t.queue).state = `Cancelled then begin
    let (_ : event) = Event_queue.pop_item t.queue in
    has_live_head t
  end
  else true

let head_time t = Event_queue.top_time t.queue

let head_seq t = Event_queue.top_seq t.queue

(* Null-message clock advance: a partition that has proven (via channel
   clock advertisements) that no event below [to_] can ever reach it may
   move its clock forward without executing anything.  Also used to
   stamp cross-partition control mutations consistently.  Never moves
   the clock backwards. *)
let sync_clock t ~to_ = if to_ > t.clock.now then t.clock.now <- to_
