(* One record serves as both the scheduled event and the caller's
   cancellation handle — a separate handle record would be one more
   allocation per scheduled event for no information. *)
type handle = {
  mutable state : [ `Pending | `Cancelled | `Fired ];
  action : unit -> unit;
  tag : string option;
}

type event = handle

(* The clock lives in its own single-float record: an all-float record
   is flat, so advancing the clock mutates in place instead of boxing a
   fresh float per event (as a float field in the mixed [t] would). *)
type clock = { mutable now : float }

type t = {
  queue : event Event_queue.t;
  clock : clock;
  mutable executed : int;
  mutable clock_monitor : (old_time:float -> new_time:float -> unit) option;
  mutable profiler :
    (time:float -> tag:string option -> run:(unit -> unit) -> unit) option;
}

let create ?(now = 0.) () =
  {
    queue = Event_queue.create ();
    clock = { now };
    executed = 0;
    clock_monitor = None;
    profiler = None;
  }

let set_clock_monitor t f = t.clock_monitor <- Some f
let set_step_profiler t f = t.profiler <- Some f

let now t = t.clock.now

let schedule ?tag t ~at action =
  if at < t.clock.now then
    invalid_arg
      (Printf.sprintf "Engine.schedule: time %g is before now %g" at
         t.clock.now);
  let handle = { state = `Pending; action; tag } in
  Event_queue.push t.queue ~time:at handle;
  handle

let schedule_after ?tag t ~delay action =
  if delay < 0. then invalid_arg "Engine.schedule_after: negative delay";
  schedule ?tag t ~at:(t.clock.now +. delay) action

let cancel handle =
  match handle.state with
  | `Pending -> handle.state <- `Cancelled
  | `Cancelled | `Fired -> ()

let cancelled handle = handle.state = `Cancelled

let rec step t =
  if Event_queue.is_empty t.queue then false
  else
    let time = Event_queue.top_time t.queue in
    let ev = Event_queue.pop_item t.queue in
    match ev.state with
    | `Cancelled -> step t
    | `Fired -> assert false
    | `Pending ->
        (match t.clock_monitor with
        | Some f -> f ~old_time:t.clock.now ~new_time:time
        | None -> ());
        t.clock.now <- time;
        ev.state <- `Fired;
        t.executed <- t.executed + 1;
        (match t.profiler with
        | None -> ev.action ()
        | Some p -> p ~time ~tag:ev.tag ~run:ev.action);
        true

let run ?until ?max_events t =
  let budget = match max_events with None -> max_int | Some m -> m in
  match until with
  | None ->
      let rec loop () = if t.executed < budget && step t then loop () in
      loop ()
  | Some limit ->
      let rec loop () =
        if
          t.executed < budget
          && (Event_queue.is_empty t.queue
              || Event_queue.top_time t.queue <= limit)
          && step t
        then loop ()
      in
      loop ()

let pending t = Event_queue.size t.queue

(* Earliest live (non-cancelled) event time.  Cancelled heads are dead
   weight; popping them here is observationally a no-op. *)
let rec next_live_time t =
  match Event_queue.peek t.queue with
  | None -> None
  | Some (time, ev) ->
      if ev.state = `Cancelled then begin
        ignore (Event_queue.pop t.queue : (float * event) option);
        next_live_time t
      end
      else Some time

let events_executed t = t.executed
