type handle = { mutable state : [ `Pending | `Cancelled | `Fired ] }

type event = { action : unit -> unit; handle : handle; tag : string option }

type t = {
  queue : event Event_queue.t;
  mutable clock : float;
  mutable executed : int;
  mutable clock_monitor : (old_time:float -> new_time:float -> unit) option;
  mutable profiler :
    (time:float -> tag:string option -> run:(unit -> unit) -> unit) option;
}

let create ?(now = 0.) () =
  {
    queue = Event_queue.create ();
    clock = now;
    executed = 0;
    clock_monitor = None;
    profiler = None;
  }

let set_clock_monitor t f = t.clock_monitor <- Some f
let set_step_profiler t f = t.profiler <- Some f

let now t = t.clock

let schedule ?tag t ~at action =
  if at < t.clock then
    invalid_arg
      (Printf.sprintf "Engine.schedule: time %g is before now %g" at t.clock);
  let handle = { state = `Pending } in
  Event_queue.push t.queue ~time:at { action; handle; tag };
  handle

let schedule_after ?tag t ~delay action =
  if delay < 0. then invalid_arg "Engine.schedule_after: negative delay";
  schedule ?tag t ~at:(t.clock +. delay) action

let cancel handle =
  match handle.state with
  | `Pending -> handle.state <- `Cancelled
  | `Cancelled | `Fired -> ()

let cancelled handle = handle.state = `Cancelled

let rec step t =
  match Event_queue.pop t.queue with
  | None -> false
  | Some (time, ev) -> (
      match ev.handle.state with
      | `Cancelled -> step t
      | `Fired -> assert false
      | `Pending ->
          (match t.clock_monitor with
          | Some f -> f ~old_time:t.clock ~new_time:time
          | None -> ());
          t.clock <- time;
          ev.handle.state <- `Fired;
          t.executed <- t.executed + 1;
          (match t.profiler with
          | None -> ev.action ()
          | Some p -> p ~time ~tag:ev.tag ~run:ev.action);
          true)

let run ?until ?max_events t =
  let budget_left () =
    match max_events with None -> true | Some m -> t.executed < m
  in
  let next_in_bound () =
    match (until, Event_queue.peek_time t.queue) with
    | _, None -> true (* step will return false *)
    | None, Some _ -> true
    | Some limit, Some next -> next <= limit
  in
  let rec loop () =
    if budget_left () && next_in_bound () then if step t then loop ()
  in
  loop ()

let pending t = Event_queue.size t.queue

(* Earliest live (non-cancelled) event time.  Cancelled heads are dead
   weight; popping them here is observationally a no-op. *)
let rec next_live_time t =
  match Event_queue.peek t.queue with
  | None -> None
  | Some (time, ev) ->
      if ev.handle.state = `Cancelled then begin
        ignore (Event_queue.pop t.queue : (float * event) option);
        next_live_time t
      end
      else Some time

let events_executed t = t.executed
