(* Binary min-heap over (time, sequence), stored as three parallel
   arrays (struct-of-arrays).  A heap of records would box the float
   time of every entry and allocate an entry per push plus an option
   and a tuple per pop — at simulation scale that is allocation (and
   minor-GC work) per event.  The columns allocate nothing per
   operation: times live in a flat float array (unboxed), and the sift
   loops touch only the two scalar columns until the final write. *)

type 'a t = {
  mutable times : float array;
  mutable seqs : int array;
  mutable items : 'a array;
  mutable size : int;
  (* Sequence source: private to this queue by default, or a counter
     shared by a group of queues.  A shared counter makes [(time, seq)]
     a total order ACROSS the group, so "global minimum over several
     queues" means exactly what "heap minimum" means for one queue —
     the property the partitioned executor's determinism rests on. *)
  seq_source : int ref;
}

let initial_capacity = 64

(* Filler for slots at or above [size].  Such slots are never read as
   items (every traversal is bounded by [size]), they only need some
   value so the array does not retain popped items — a popped event's
   closure would otherwise stay reachable until its slot happened to be
   overwritten.  An immediate int is safe as long as ['a] is never a
   bare float (the items column must not be a flat float array); the
   engine stores event records there. *)
let dummy : unit -> 'a = fun () -> Obj.magic 0

let create ?shared_seq () =
  let seq_source = match shared_seq with Some r -> r | None -> ref 0 in
  { times = [||]; seqs = [||]; items = [||]; size = 0; seq_source }

let is_empty t = t.size = 0

let size t = t.size

let ensure_capacity t =
  let cap = Array.length t.seqs in
  if t.size >= cap then begin
    let ncap = Stdlib.max initial_capacity (2 * cap) in
    let times = Array.make ncap 0. in
    let seqs = Array.make ncap 0 in
    let items = Array.make ncap (dummy ()) in
    Array.blit t.times 0 times 0 t.size;
    Array.blit t.seqs 0 seqs 0 t.size;
    Array.blit t.items 0 items 0 t.size;
    t.times <- times;
    t.seqs <- seqs;
    t.items <- items
  end

(* Hole-shifting sifts: the moving entry rides along as three scalars
   (the float stays unboxed in registers) and is written exactly once,
   at its final position. *)
let sift_up t i time seq item =
  let i = ref i in
  let continue = ref true in
  while !continue && !i > 0 do
    let parent = (!i - 1) / 2 in
    let pt = Array.unsafe_get t.times parent in
    (* bgpsim-lint: allow D004 — bitwise-equal keys tie-break on the seq number *)
    if time < pt || (time = pt && seq < Array.unsafe_get t.seqs parent) then begin
      Array.unsafe_set t.times !i pt;
      Array.unsafe_set t.seqs !i (Array.unsafe_get t.seqs parent);
      Array.unsafe_set t.items !i (Array.unsafe_get t.items parent);
      i := parent
    end
    else continue := false
  done;
  Array.unsafe_set t.times !i time;
  Array.unsafe_set t.seqs !i seq;
  Array.unsafe_set t.items !i item

let sift_down t i time seq item =
  let i = ref i in
  let continue = ref true in
  while !continue do
    let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
    let smallest = ref (-1) in
    let bt = ref time and bs = ref seq in
    if l < t.size then begin
      let lt = Array.unsafe_get t.times l in
      (* bgpsim-lint: allow D004 — bitwise-equal keys tie-break on the seq number *)
      if lt < !bt || (lt = !bt && Array.unsafe_get t.seqs l < !bs) then begin
        smallest := l;
        bt := lt;
        bs := Array.unsafe_get t.seqs l
      end
    end;
    if r < t.size then begin
      let rt = Array.unsafe_get t.times r in
      (* bgpsim-lint: allow D004 — bitwise-equal keys tie-break on the seq number *)
      if rt < !bt || (rt = !bt && Array.unsafe_get t.seqs r < !bs) then
        smallest := r
    end;
    let s = !smallest in
    if s < 0 then continue := false
    else begin
      Array.unsafe_set t.times !i (Array.unsafe_get t.times s);
      Array.unsafe_set t.seqs !i (Array.unsafe_get t.seqs s);
      Array.unsafe_set t.items !i (Array.unsafe_get t.items s);
      i := s
    end
  done;
  Array.unsafe_set t.times !i time;
  Array.unsafe_set t.seqs !i seq;
  Array.unsafe_set t.items !i item

let push t ~time item =
  if Float.is_nan time then invalid_arg "Event_queue.push: NaN time";
  let seq = !(t.seq_source) in
  t.seq_source := seq + 1;
  ensure_capacity t;
  t.size <- t.size + 1;
  sift_up t (t.size - 1) time seq item

let top_time t = t.times.(0)

let top_seq t = t.seqs.(0)

let top_item t = t.items.(0)

let pop_item t =
  let item = t.items.(0) in
  t.size <- t.size - 1;
  let n = t.size in
  if n > 0 then
    sift_down t 0 t.times.(n) t.seqs.(n) (Array.unsafe_get t.items n);
  t.items.(n) <- dummy ();
  item

let pop t =
  if t.size = 0 then None
  else
    let time = top_time t in
    let item = pop_item t in
    Some (time, item)

let peek_time t = if t.size = 0 then None else Some t.times.(0)

let peek t = if t.size = 0 then None else Some (t.times.(0), t.items.(0))
