type 'a entry = { time : float; seq : int; item : 'a }

type 'a t = {
  mutable heap : 'a entry array;
  mutable size : int;
  mutable next_seq : int;
}

let initial_capacity = 64

(* Filler for slots at or above [size].  Such slots are never read as
   entries (every traversal is bounded by [size]), they only need some
   value so the array does not retain popped entries — a popped event's
   closure would otherwise stay reachable until its slot happened to be
   overwritten.  An immediate int is safe here because ['a entry] is a
   pointer type, so the backing array is never a float array. *)
let dummy : unit -> 'a entry = fun () -> Obj.magic 0

let create () = { heap = [||]; size = 0; next_seq = 0 }

let is_empty t = t.size = 0

let size t = t.size

let earlier a b = a.time < b.time || (a.time = b.time && a.seq < b.seq)

let ensure_capacity t =
  let cap = Array.length t.heap in
  if t.size >= cap then begin
    let bigger =
      Array.make (Stdlib.max initial_capacity (2 * cap)) (dummy ())
    in
    Array.blit t.heap 0 bigger 0 t.size;
    t.heap <- bigger
  end

(* Hole-shifting sifts: instead of pairwise swaps (three array writes
   per level), slide the blocking entries into the hole and write the
   moving entry once at its final position. *)
let sift_up t i entry =
  let i = ref i in
  let continue = ref true in
  while !continue && !i > 0 do
    let parent = (!i - 1) / 2 in
    if earlier entry t.heap.(parent) then begin
      t.heap.(!i) <- t.heap.(parent);
      i := parent
    end
    else continue := false
  done;
  t.heap.(!i) <- entry

let sift_down t i entry =
  let i = ref i in
  let continue = ref true in
  while !continue do
    let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
    let smallest = ref !i in
    let best = ref entry in
    if l < t.size && earlier t.heap.(l) !best then begin
      smallest := l;
      best := t.heap.(l)
    end;
    if r < t.size && earlier t.heap.(r) !best then smallest := r;
    if !smallest = !i then continue := false
    else begin
      t.heap.(!i) <- t.heap.(!smallest);
      i := !smallest
    end
  done;
  t.heap.(!i) <- entry

let push t ~time item =
  if Float.is_nan time then invalid_arg "Event_queue.push: NaN time";
  let entry = { time; seq = t.next_seq; item } in
  t.next_seq <- t.next_seq + 1;
  ensure_capacity t;
  t.size <- t.size + 1;
  sift_up t (t.size - 1) entry

let pop t =
  if t.size = 0 then None
  else begin
    let top = t.heap.(0) in
    t.size <- t.size - 1;
    if t.size > 0 then begin
      let last = t.heap.(t.size) in
      t.heap.(t.size) <- dummy ();
      sift_down t 0 last
    end
    else t.heap.(0) <- dummy ();
    Some (top.time, top.item)
  end

let peek_time t = if t.size = 0 then None else Some t.heap.(0).time

let peek t =
  if t.size = 0 then None else Some (t.heap.(0).time, t.heap.(0).item)
