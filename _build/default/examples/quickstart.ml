(* Quickstart: simulate the paper's headline scenario — a T_down event
   on a 15-node clique with standard BGP — and print the measurement
   suite.

     dune exec examples/quickstart.exe *)

let () =
  let spec = Bgpsim.Experiment.default_spec (Bgpsim.Experiment.Clique 15) in
  print_endline "Simulating T_down on a 15-node clique (standard BGP, MRAI 30s)...";
  let run = Bgpsim.Experiment.run spec in
  Format.printf "@.%a@.@." Metrics.Run_metrics.pp run.metrics;
  (* the run at a glance: FIB churn arrives in MRAI-paced rounds, and
     loops (with the packet drops they cause) live between the rounds *)
  Format.printf "%s@.@."
    (Metrics.Timeline.render_run
       ~fib:(Netcore.Trace.fib run.outcome.trace)
       ~loops:run.loops ~exhaustion_times:run.replay.exhaustion_times
       ~from:run.outcome.t_fail
       ~until:(run.outcome.convergence_end +. spec.replay_tail)
       ());
  (* The paper's Observation 1: looping lasts almost the whole
     convergence period. *)
  Format.printf
    "Looping occupied %.0f%% of the convergence period; %.0f%% of packets sent@.\
     during convergence hit a forwarding loop (the paper reports >65%% for@.\
     cliques of size 15 and up).@."
    (100.
    *. run.metrics.overall_looping_duration
    /. run.metrics.convergence_time)
    (100. *. run.metrics.looping_ratio)
