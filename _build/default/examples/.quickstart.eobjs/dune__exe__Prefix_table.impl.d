examples/prefix_table.ml: Bgp Format List Option
