examples/enhancement_showdown.mli:
