examples/mrai_tuning.mli:
