examples/quickstart.ml: Bgpsim Format Metrics Netcore
