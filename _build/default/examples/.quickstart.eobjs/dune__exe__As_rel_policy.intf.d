examples/as_rel_policy.mli:
