examples/mrai_tuning.ml: Bgpsim Format Fun List Metrics Printf Stats
