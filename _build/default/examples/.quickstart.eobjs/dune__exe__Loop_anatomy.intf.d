examples/loop_anatomy.mli:
