examples/prefix_table.mli:
