examples/policy_gao_rexford.ml: Bgp Format List Loopscan Netcore Topo Traffic
