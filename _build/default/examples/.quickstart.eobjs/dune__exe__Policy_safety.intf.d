examples/policy_safety.mli:
