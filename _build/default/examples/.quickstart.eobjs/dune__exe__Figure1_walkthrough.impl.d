examples/figure1_walkthrough.ml: Bgpsim Format List Loopscan Netcore Printf Topo
