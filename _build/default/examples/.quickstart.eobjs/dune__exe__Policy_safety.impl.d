examples/policy_safety.ml: Bgp Format Topo
