examples/as_rel_policy.ml: Bgp Format List Netcore Option Printf Topo
