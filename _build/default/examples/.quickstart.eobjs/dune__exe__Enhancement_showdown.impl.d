examples/enhancement_showdown.ml: Bgp Bgpsim List
