examples/policy_gao_rexford.mli:
