examples/churn_interference.mli:
