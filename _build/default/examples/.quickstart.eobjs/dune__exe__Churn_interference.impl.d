examples/churn_interference.ml: Bgp Format List Loopscan Topo
