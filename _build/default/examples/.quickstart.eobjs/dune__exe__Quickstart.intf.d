examples/quickstart.mli:
