examples/loop_anatomy.ml: Bgpsim Format List Loopscan Stats
