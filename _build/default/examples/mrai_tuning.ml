(* The MRAI two-regime behaviour.  The paper's footnote 3 (citing
   Griffin & Premore) notes that convergence time is linear in the MRAI
   only above a topology-specific optimal value; below it, update
   storms dominate.  This example traces the whole curve, then verifies
   the linear regime with a least-squares fit — the quantitative form
   of the paper's Observation 1.

     dune exec examples/mrai_tuning.exe *)

let () =
  let clique_size = 10 in
  let seeds = [ 1; 2 ] in
  let values = [ 0.5; 1.; 2.; 5.; 10.; 15.; 20.; 25.; 30. ] in
  let make mrai =
    { (Bgpsim.Experiment.default_spec (Bgpsim.Experiment.Clique clique_size)) with mrai }
  in
  Format.printf "T_down on clique-%d, sweeping the MRAI timer:@.@." clique_size;
  let series = Bgpsim.Sweep.series ~make ~seeds values in
  print_string
    (Bgpsim.Report.table
       ~title:"convergence and looping vs MRAI"
       ~header:[ "mrai(s)"; "conv(s)"; "loop-dur(s)"; "ttl-exh"; "ratio"; "msgs" ]
       ~rows:
         (List.map
            (fun (mrai, (m : Metrics.Run_metrics.t)) ->
              [
                Printf.sprintf "%g" mrai;
                Bgpsim.Report.float_cell m.convergence_time;
                Bgpsim.Report.float_cell m.overall_looping_duration;
                string_of_int m.ttl_exhaustions;
                Bgpsim.Report.ratio_cell m.looping_ratio;
                string_of_int (m.updates_sent + m.withdrawals_sent);
              ])
            series));
  (* fit only the linear regime (M >= 10) *)
  let linear = List.filter (fun (m, _) -> m >= 10.) series in
  let conv_fit =
    Bgpsim.Sweep.linearity linear ~x:Fun.id
      ~y:(fun (m : Metrics.Run_metrics.t) -> m.convergence_time)
  in
  let loop_fit =
    Bgpsim.Sweep.linearity linear ~x:Fun.id
      ~y:(fun (m : Metrics.Run_metrics.t) -> m.overall_looping_duration)
  in
  Format.printf "@.Linear regime (MRAI >= 10 s):@.";
  Format.printf "  convergence time: %a@." Stats.Linear_fit.pp conv_fit;
  Format.printf "  looping duration: %a@." Stats.Linear_fit.pp loop_fit;
  Format.printf
    "@.Below the optimal MRAI the timer no longer paces path exploration and@.\
     message storms drive convergence instead — the message column explodes@.\
     while the convergence time stops improving.@."
