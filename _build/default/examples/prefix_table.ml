(* Library tour of the concrete prefix types: CIDR prefixes and the
   longest-prefix-match table a router derives from its Loc-RIB —
   including what a more-specific announcement (the classic hijack
   shape) does to forwarding, and the fallback on withdrawal.

     dune exec examples/prefix_table.exe *)

let cidr s = Option.get (Bgp.Ipv4.cidr_of_string s)

let addr s = Option.get (Bgp.Ipv4.addr_of_string s)

let show table label addrs =
  Format.printf "%s@." label;
  List.iter
    (fun a ->
      match Bgp.Lpm_trie.lookup table (addr a) with
      | Some (p, next_hop) ->
          Format.printf "  %-14s -> AS %d  (via %s)@." a next_hop
            (Bgp.Ipv4.cidr_to_string p)
      | None -> Format.printf "  %-14s -> unroutable@." a)
    addrs;
  Format.printf "@."

let () =
  let probes = [ "203.0.113.7"; "203.0.113.201"; "198.51.100.1" ] in
  (* the legitimate origin announces its /24 *)
  let table = Bgp.Lpm_trie.add Bgp.Lpm_trie.empty (cidr "203.0.113.0/24") 64500 in
  let table = Bgp.Lpm_trie.add table (cidr "0.0.0.0/0") 64999 in
  show table "Steady state: the /24 via AS 64500, default via AS 64999"
    probes;
  (* a more-specific /25 appears from elsewhere: longest match diverts
     half the address space instantly, no matter how good the /24 is *)
  let hijacked = Bgp.Lpm_trie.add table (cidr "203.0.113.0/25") 64666 in
  show hijacked "A more-specific /25 appears from AS 64666 (hijack shape)"
    probes;
  (* the /25 is withdrawn: forwarding falls back to the covering /24 *)
  let recovered = Bgp.Lpm_trie.remove hijacked (cidr "203.0.113.0/25") in
  show recovered "After the /25 is withdrawn" probes;
  Format.printf
    "The decision process of this library (Bgp.Speaker) ranks paths per@.\
     prefix; Bgp.Lpm_trie is the data-plane complement that picks *which*@.\
     prefix governs each packet.  More-specific routes always win, which@.\
     is why prefix hijacks work regardless of AS-path quality.@."
