(* A node-by-node replay of the paper's Figure 1: how a transient
   forwarding loop forms between nodes 5 and 6 after link (4,0) fails,
   and how node 5's new-path announcement eventually breaks it.

     dune exec examples/figure1_walkthrough.exe *)

let graph () =
  (* Fig 1: 4 sits in front of destination 0; 5 and 6 hang off 4 and
     peer with each other; 6 also reaches 0 the long way via 3-2-1. *)
  Topo.Graph.create ~n:7
    ~edges:[ (0, 4); (4, 5); (4, 6); (5, 6); (6, 3); (3, 2); (2, 1); (1, 0) ]

let name_of = function
  | None -> "(no route)"
  | Some v -> Printf.sprintf "-> %d" v

let () =
  let spec =
    {
      (Bgpsim.Experiment.default_spec
         (Bgpsim.Experiment.Custom
            { graph = graph (); origin = 0; name = "figure-1" }))
      with
      event = Bgpsim.Experiment.Tlong_link (0, 4);
    }
  in
  let run = Bgpsim.Experiment.run spec in
  let o = run.outcome in
  let fib = Netcore.Trace.fib o.trace in
  Format.printf
    "Figure 1 scenario: link (4,0) fails at t=%.1f; convergence ends at t=%.1f@.@."
    o.t_fail o.convergence_end;
  Format.printf "Next-hop changes after the failure:@.";
  List.iter
    (fun (c : Netcore.Fib_history.change) ->
      Format.printf "  t=%7.3f  node %d %s@." c.time c.node
        (name_of c.next_hop))
    (Netcore.Fib_history.changes_from fib ~from:o.t_fail);
  Format.printf "@.Transient loops:@.";
  List.iter
    (fun l -> Format.printf "  %a@." Loopscan.Scanner.pp_loop l)
    run.loops.loops;
  Format.printf
    "@.As in Fig 1(b): once 4 withdraws, 5 falls back to its stale path through@.\
     6 while 6 falls back to its stale path through 5 — packets bounce between@.\
     them until one of their new announcements (delayed by the MRAI timer)@.\
     crosses the link, as in Fig 1(c).@.@.";
  Format.printf "Final forwarding state:@.";
  let late = o.convergence_end +. 100. in
  List.iter
    (fun v ->
      if v <> 0 then
        Format.printf "  node %d %s@." v
          (name_of (Netcore.Fib_history.lookup fib ~node:v ~time:late)))
    (Topo.Graph.nodes (graph ()));
  Format.printf "@.Packets during convergence: %d sent, %d looped (ratio %.2f)@."
    run.metrics.packets_sent run.metrics.ttl_exhaustions
    run.metrics.looping_ratio
