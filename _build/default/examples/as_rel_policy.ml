(* Driving the simulator from a CAIDA-style AS relationship snapshot:
   parse the serial-1 format, route with the Gao-Rexford policy those
   relationships induce, and watch a T_down at a customer AS.

     dune exec examples/as_rel_policy.exe *)

(* A miniature provider hierarchy: two tier-1s peering at the top, two
   regional providers, and three customer edges.  (Real snapshots from
   CAIDA drop straight into the same parser.) *)
let snapshot =
  "# as-rel serial-1\n\
   10|20|0\n\
   10|100|-1\n\
   10|200|-1\n\
   20|200|-1\n\
   20|300|-1\n\
   100|1001|-1\n\
   200|1001|-1\n\
   200|1002|-1\n\
   300|1002|-1\n"

let () =
  let rel_data = Topo.As_rel.parse snapshot in
  let graph = Topo.As_rel.graph rel_data in
  let rel a b =
    match Topo.As_rel.relationship rel_data a b with
    | `Customer -> Bgp.Policy.Customer
    | `Peer -> Bgp.Policy.Peer_rel
    | `Provider -> Bgp.Policy.Provider
  in
  let origin = Option.get (Topo.As_rel.node_of_asn rel_data 1001) in
  Format.printf
    "Parsed %d ASes, %d relationships; destination AS 1001 (dual-homed@.\
     customer of AS 100 and AS 200).@.@."
    (Topo.Graph.n_nodes graph) (Topo.Graph.n_edges graph);
  let config =
    { Bgp.Config.default with policy = Bgp.Policy.gao_rexford ~rel; mrai = 5. }
  in
  let o =
    Bgp.Routing_sim.run ~config ~graph ~origin ~event:Bgp.Routing_sim.Tdown
      ~seed:1 ()
  in
  let fib = Netcore.Trace.fib o.trace in
  Format.printf "Valley-free routes to AS 1001 before the failure:@.";
  List.iter
    (fun v ->
      if v <> origin then
        let hop = Netcore.Fib_history.lookup fib ~node:v ~time:(o.t_fail -. 1.) in
        Format.printf "  AS %-5d -> %s@."
          (Topo.As_rel.asn_of_node rel_data v)
          (match hop with
          | Some h -> Printf.sprintf "AS %d" (Topo.As_rel.asn_of_node rel_data h)
          | None -> "(no route)"))
    (Topo.Graph.nodes graph);
  Format.printf
    "@.AS 1001 withdraws: convergence takes %.1f s, %d updates + %d withdrawals.@."
    (Bgp.Routing_sim.convergence_time o)
    o.updates_after_fail o.withdrawals_after_fail;
  Format.printf
    "@.Note AS 300: a peer-learned route (via 20) is never exported to the@.\
     other tier-1, so its only path to 1001 runs through its provider —@.\
     the valley-free constraint shaping reachability, not just preference.@."
