(* Individual-loop statistics — the paper's stated future work ("we
   plan to examine route change traces to measure the statistics of
   individual loops such as the loop size and duration"), implemented
   on top of the loop scanner.

     dune exec examples/loop_anatomy.exe *)

let () =
  let spec =
    Bgpsim.Experiment.default_spec (Bgpsim.Experiment.Internet 110)
  in
  Format.printf
    "T_down on a 110-node Internet-derived topology: dissecting every@.\
     individual transient loop.@.@.";
  let run = Bgpsim.Experiment.run spec in
  let until = run.outcome.convergence_end +. spec.replay_tail in
  let agg = Loopscan.Scanner.aggregate run.loops ~until in
  Format.printf "%a@.@." Loopscan.Scanner.pp_aggregate agg;
  (* size distribution *)
  let sizes = Stats.Histogram.create ~lo:2. ~hi:8. ~buckets:6 in
  let durations = Stats.Histogram.create ~lo:0. ~hi:60. ~buckets:12 in
  List.iter
    (fun l ->
      Stats.Histogram.add sizes (float_of_int (Loopscan.Scanner.size l));
      Stats.Histogram.add durations (Loopscan.Scanner.duration l ~until))
    run.loops.loops;
  Format.printf "Loop sizes (nodes):@.%a@." Stats.Histogram.pp sizes;
  Format.printf "Loop durations (seconds):@.%a@." Stats.Histogram.pp durations;
  (* Hengartner et al. observed that more than half of the loops seen in
     an ISP involved only two nodes; check the same on our trace. *)
  let two_node =
    List.length
      (List.filter (fun l -> Loopscan.Scanner.size l = 2) run.loops.loops)
  in
  let total = List.length run.loops.loops in
  if total > 0 then
    Format.printf
      "@.%d of %d loops (%.0f%%) involve exactly two nodes — compare@.\
       Hengartner et al.'s \"more than half of the loops involved only two@.\
       nodes\".@."
      two_node total
      (100. *. float_of_int two_node /. float_of_int total);
  (* what triggered each loop: the node falling back after a withdrawal
     (the paper's Fig 1 mechanism), after an announcement, or after its
     own session died *)
  let classified = Loopscan.Causes.classify ~trace:run.outcome.trace run.loops in
  Format.printf "@.%a@." Loopscan.Causes.pp_breakdown
    (Loopscan.Causes.breakdown classified);
  Format.printf "@.Longest-lived loops:@.";
  let by_duration =
    List.sort
      (fun a b ->
        compare
          (Loopscan.Scanner.duration b ~until)
          (Loopscan.Scanner.duration a ~until))
      run.loops.loops
  in
  List.iteri
    (fun i l ->
      if i < 5 then Format.printf "  %a@." Loopscan.Scanner.pp_loop l)
    by_duration
