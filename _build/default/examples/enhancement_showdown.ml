(* Side-by-side comparison of standard BGP against the four convergence
   enhancements (the paper's Section 5), on both the T_down clique and
   T_long b-clique scenarios.

     dune exec examples/enhancement_showdown.exe *)

let compare_on ~title ~spec ~seeds =
  let rows =
    List.map
      (fun enh ->
        let m =
          Bgpsim.Sweep.over_seeds
            { spec with Bgpsim.Experiment.enhancement = enh }
            ~seeds
        in
        [
          Bgp.Enhancement.name enh;
          Bgpsim.Report.float_cell m.convergence_time;
          Bgpsim.Report.float_cell m.overall_looping_duration;
          string_of_int m.ttl_exhaustions;
          Bgpsim.Report.ratio_cell m.looping_ratio;
          string_of_int (m.updates_sent + m.withdrawals_sent);
        ])
      Bgp.Enhancement.all
  in
  print_string
    (Bgpsim.Report.table ~title
       ~header:[ "mechanism"; "conv(s)"; "loop-dur(s)"; "ttl-exh"; "ratio"; "msgs" ]
       ~rows);
  print_newline ()

let () =
  let seeds = [ 1; 2; 3 ] in
  compare_on ~title:"T_down on clique-12 (paper Fig 8a/8b)"
    ~spec:(Bgpsim.Experiment.default_spec (Bgpsim.Experiment.Clique 12))
    ~seeds;
  compare_on ~title:"T_long on b-clique-8 (paper Fig 9a/9b)"
    ~spec:
      {
        (Bgpsim.Experiment.default_spec (Bgpsim.Experiment.B_clique 8)) with
        event = Bgpsim.Experiment.Tlong;
      }
    ~seeds;
  print_endline
    "Expected shape (paper Observation 3): Assertion wins outright on\n\
     clique-family topologies, Ghost Flushing cuts looping by >=80%,\n\
     SSLD helps modestly, and WRATE is no better than standard BGP."
