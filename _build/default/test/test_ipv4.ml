(* Tests for IPv4 addresses, CIDR prefixes and the longest-prefix-match
   trie. *)

let addr s =
  match Bgp.Ipv4.addr_of_string s with
  | Some a -> a
  | None -> Alcotest.failf "bad address literal %S" s

let cidr s =
  match Bgp.Ipv4.cidr_of_string s with
  | Some c -> c
  | None -> Alcotest.failf "bad cidr literal %S" s

(* --- addresses --- *)

let test_addr_roundtrip () =
  List.iter
    (fun s ->
      Alcotest.(check string) s s (Bgp.Ipv4.addr_to_string (addr s)))
    [ "0.0.0.0"; "192.0.2.1"; "255.255.255.255"; "10.0.0.1"; "128.0.0.0" ]

let test_addr_rejects_garbage () =
  List.iter
    (fun s ->
      Alcotest.(check bool) s true (Bgp.Ipv4.addr_of_string s = None))
    [ ""; "1.2.3"; "1.2.3.4.5"; "256.0.0.1"; "-1.0.0.0"; "a.b.c.d"; "01.2.3.4" ]

let test_addr_msb_handling () =
  (* addresses above 128.0.0.0 exercise the int32 sign bit *)
  let a = addr "255.0.0.1" in
  Alcotest.(check string) "sign bit" "255.0.0.1" (Bgp.Ipv4.addr_to_string a);
  Alcotest.(check bool) "bit 0 set" true (Bgp.Ipv4.bit a 0);
  Alcotest.(check bool) "bit 31 set" true (Bgp.Ipv4.bit a 31);
  Alcotest.(check bool) "bit 8 clear" false (Bgp.Ipv4.bit a 8)

(* --- cidr --- *)

let test_cidr_canonicalizes () =
  let c = Bgp.Ipv4.cidr (addr "10.1.2.3") 8 in
  Alcotest.(check string) "host bits cleared" "10.0.0.0/8"
    (Bgp.Ipv4.cidr_to_string c)

let test_cidr_parse () =
  Alcotest.(check string) "parse" "192.0.2.0/24"
    (Bgp.Ipv4.cidr_to_string (cidr "192.0.2.55/24"));
  Alcotest.(check string) "bare address is /32" "192.0.2.55/32"
    (Bgp.Ipv4.cidr_to_string (cidr "192.0.2.55"));
  Alcotest.(check bool) "bad mask" true
    (Bgp.Ipv4.cidr_of_string "10.0.0.0/33" = None);
  Alcotest.(check bool) "zero mask" true
    (Bgp.Ipv4.cidr_of_string "1.2.3.4/0"
    |> Option.map Bgp.Ipv4.cidr_to_string
    = Some "0.0.0.0/0")

let test_cidr_contains () =
  let c = cidr "10.0.0.0/8" in
  Alcotest.(check bool) "inside" true (Bgp.Ipv4.contains_addr c (addr "10.255.0.1"));
  Alcotest.(check bool) "outside" false (Bgp.Ipv4.contains_addr c (addr "11.0.0.1"));
  Alcotest.(check bool) "default route contains all" true
    (Bgp.Ipv4.contains_addr (cidr "0.0.0.0/0") (addr "203.0.113.9"))

let test_cidr_subsumes () =
  Alcotest.(check bool) "super" true
    (Bgp.Ipv4.subsumes (cidr "10.0.0.0/8") (cidr "10.1.0.0/16"));
  Alcotest.(check bool) "not the other way" false
    (Bgp.Ipv4.subsumes (cidr "10.1.0.0/16") (cidr "10.0.0.0/8"));
  Alcotest.(check bool) "disjoint" false
    (Bgp.Ipv4.subsumes (cidr "10.0.0.0/8") (cidr "11.0.0.0/16"));
  Alcotest.(check bool) "self" true
    (Bgp.Ipv4.subsumes (cidr "10.0.0.0/8") (cidr "10.0.0.0/8"))

let test_cidr_compare_order () =
  let sorted =
    List.sort Bgp.Ipv4.cidr_compare
      [ cidr "10.0.0.0/16"; cidr "10.0.0.0/8"; cidr "9.0.0.0/8"; cidr "200.0.0.0/8" ]
  in
  Alcotest.(check (list string))
    "order"
    [ "9.0.0.0/8"; "10.0.0.0/8"; "10.0.0.0/16"; "200.0.0.0/8" ]
    (List.map Bgp.Ipv4.cidr_to_string sorted)

(* --- LPM trie --- *)

let table bindings =
  List.fold_left
    (fun t (p, v) -> Bgp.Lpm_trie.add t (cidr p) v)
    Bgp.Lpm_trie.empty bindings

let test_trie_empty () =
  Alcotest.(check int) "size" 0 (Bgp.Lpm_trie.size Bgp.Lpm_trie.empty);
  Alcotest.(check bool) "lookup" true
    (Bgp.Lpm_trie.lookup Bgp.Lpm_trie.empty (addr "10.0.0.1") = None)

let test_trie_longest_match_wins () =
  let t =
    table [ ("0.0.0.0/0", "default"); ("10.0.0.0/8", "ten"); ("10.1.0.0/16", "ten-one") ]
  in
  let result a =
    match Bgp.Lpm_trie.lookup t (addr a) with
    | Some (_, v) -> v
    | None -> "none"
  in
  Alcotest.(check string) "most specific" "ten-one" (result "10.1.2.3");
  Alcotest.(check string) "middle" "ten" (result "10.2.0.1");
  Alcotest.(check string) "default" "default" (result "192.0.2.1")

let test_trie_exact_vs_lpm () =
  let t = table [ ("10.0.0.0/8", 1) ] in
  Alcotest.(check bool) "exact present" true
    (Bgp.Lpm_trie.find_exact t (cidr "10.0.0.0/8") = Some 1);
  Alcotest.(check bool) "exact absent at other length" true
    (Bgp.Lpm_trie.find_exact t (cidr "10.0.0.0/16") = None)

let test_trie_replace () =
  let t = table [ ("10.0.0.0/8", 1); ("10.0.0.0/8", 2) ] in
  Alcotest.(check int) "one binding" 1 (Bgp.Lpm_trie.size t);
  Alcotest.(check bool) "replaced" true
    (Bgp.Lpm_trie.find_exact t (cidr "10.0.0.0/8") = Some 2)

let test_trie_remove () =
  let t = table [ ("10.0.0.0/8", 1); ("10.1.0.0/16", 2) ] in
  let t = Bgp.Lpm_trie.remove t (cidr "10.1.0.0/16") in
  Alcotest.(check int) "size" 1 (Bgp.Lpm_trie.size t);
  (* the covering prefix now answers for the removed one's addresses *)
  Alcotest.(check bool) "falls back" true
    (match Bgp.Lpm_trie.lookup t (addr "10.1.2.3") with
    | Some (p, 1) -> Bgp.Ipv4.cidr_to_string p = "10.0.0.0/8"
    | _ -> false);
  (* removing an absent prefix is a no-op *)
  let t' = Bgp.Lpm_trie.remove t (cidr "99.0.0.0/8") in
  Alcotest.(check int) "no-op" 1 (Bgp.Lpm_trie.size t')

let test_trie_host_routes () =
  let t = table [ ("192.0.2.7/32", "host"); ("192.0.2.0/24", "net") ] in
  Alcotest.(check bool) "host route wins" true
    (match Bgp.Lpm_trie.lookup t (addr "192.0.2.7") with
    | Some (_, "host") -> true
    | _ -> false);
  Alcotest.(check bool) "neighbor uses net" true
    (match Bgp.Lpm_trie.lookup t (addr "192.0.2.8") with
    | Some (_, "net") -> true
    | _ -> false)

let test_trie_default_route_only () =
  let t = table [ ("0.0.0.0/0", "default") ] in
  Alcotest.(check bool) "everything matches" true
    (match Bgp.Lpm_trie.lookup t (addr "203.0.113.1") with
    | Some (p, "default") -> Bgp.Ipv4.mask_length p = 0
    | _ -> false);
  let t = Bgp.Lpm_trie.remove t (cidr "0.0.0.0/0") in
  Alcotest.(check bool) "and then nothing does" true
    (Bgp.Lpm_trie.lookup t (addr "203.0.113.1") = None);
  Alcotest.(check int) "empty again" 0 (Bgp.Lpm_trie.size t)

let test_trie_fold_order_independent_of_insertion () =
  let a = table [ ("10.0.0.0/8", 1); ("9.0.0.0/8", 2) ] in
  let b = table [ ("9.0.0.0/8", 2); ("10.0.0.0/8", 1) ] in
  Alcotest.(check bool) "same table" true
    (Bgp.Lpm_trie.to_list a = Bgp.Lpm_trie.to_list b)

let test_trie_to_list_sorted () =
  let t = table [ ("10.0.0.0/16", 2); ("9.0.0.0/8", 1); ("10.0.0.0/8", 3) ] in
  Alcotest.(check (list string))
    "sorted"
    [ "9.0.0.0/8"; "10.0.0.0/8"; "10.0.0.0/16" ]
    (List.map (fun (p, _) -> Bgp.Ipv4.cidr_to_string p) (Bgp.Lpm_trie.to_list t))

(* --- properties --- *)

(* full 32-bit address coverage, sign bit included *)
let gen_addr_gen =
  QCheck.Gen.(
    map2
      (fun hi lo ->
        Bgp.Ipv4.addr_of_int32
          (Int32.logor
             (Int32.shift_left (Int32.of_int hi) 16)
             (Int32.of_int lo)))
      (int_bound 0xFFFF) (int_bound 0xFFFF))

let gen_cidr =
  QCheck.make
    QCheck.Gen.(
      map2 (fun a len -> Bgp.Ipv4.cidr a len) gen_addr_gen (int_range 0 32))

let gen_addr = QCheck.make gen_addr_gen

let prop_lookup_is_lpm =
  (* trie lookup agrees with a linear scan for the longest containing
     prefix *)
  QCheck.Test.make ~name:"trie lookup = linear longest-prefix scan" ~count:200
    QCheck.(pair (list_of_size Gen.(int_range 0 30) gen_cidr) gen_addr)
    (fun (prefixes, a) ->
      let t =
        List.fold_left
          (fun t p -> Bgp.Lpm_trie.add t p (Bgp.Ipv4.cidr_to_string p))
          Bgp.Lpm_trie.empty prefixes
      in
      let reference =
        List.filter (fun p -> Bgp.Ipv4.contains_addr p a) prefixes
        |> List.sort (fun x y ->
               compare (Bgp.Ipv4.mask_length y) (Bgp.Ipv4.mask_length x))
        |> function
        | [] -> None
        | best :: _ -> Some (Bgp.Ipv4.mask_length best)
      in
      let got =
        Option.map (fun (p, _) -> Bgp.Ipv4.mask_length p) (Bgp.Lpm_trie.lookup t a)
      in
      got = reference)

let prop_add_remove_roundtrip =
  QCheck.Test.make ~name:"add then remove restores absence" ~count:200
    QCheck.(pair (list_of_size Gen.(int_range 0 20) gen_cidr) gen_cidr)
    (fun (background, p) ->
      let background = List.filter (fun q -> not (Bgp.Ipv4.cidr_equal p q)) background in
      let t =
        List.fold_left (fun t q -> Bgp.Lpm_trie.add t q 0) Bgp.Lpm_trie.empty background
      in
      let t' = Bgp.Lpm_trie.remove (Bgp.Lpm_trie.add t p 1) p in
      Bgp.Lpm_trie.find_exact t' p = None
      && Bgp.Lpm_trie.size t' = Bgp.Lpm_trie.size t)

let prop_to_list_roundtrip =
  QCheck.Test.make ~name:"to_list holds exactly the distinct bindings" ~count:200
    (QCheck.list_of_size (QCheck.Gen.int_range 0 30) gen_cidr)
    (fun prefixes ->
      let distinct = List.sort_uniq Bgp.Ipv4.cidr_compare prefixes in
      let t =
        List.fold_left (fun t p -> Bgp.Lpm_trie.add t p ()) Bgp.Lpm_trie.empty prefixes
      in
      List.map fst (Bgp.Lpm_trie.to_list t) = distinct)

let prop_subsumes_containment =
  QCheck.Test.make ~name:"subsumes = containment of network addresses" ~count:200
    QCheck.(pair gen_cidr gen_cidr)
    (fun (outer, inner) ->
      Bgp.Ipv4.subsumes outer inner
      = (Bgp.Ipv4.mask_length outer <= Bgp.Ipv4.mask_length inner
        && Bgp.Ipv4.contains_addr outer (Bgp.Ipv4.network inner)))

let () =
  let tc name f = Alcotest.test_case name `Quick f in
  Alcotest.run "ipv4"
    [
      ( "addr",
        [
          tc "roundtrip" test_addr_roundtrip;
          tc "rejects garbage" test_addr_rejects_garbage;
          tc "sign-bit addresses" test_addr_msb_handling;
        ] );
      ( "cidr",
        [
          tc "canonicalizes host bits" test_cidr_canonicalizes;
          tc "parse" test_cidr_parse;
          tc "containment" test_cidr_contains;
          tc "subsumption" test_cidr_subsumes;
          tc "compare order" test_cidr_compare_order;
        ] );
      ( "lpm-trie",
        [
          tc "empty" test_trie_empty;
          tc "longest match wins" test_trie_longest_match_wins;
          tc "exact vs lpm" test_trie_exact_vs_lpm;
          tc "replace" test_trie_replace;
          tc "remove falls back to cover" test_trie_remove;
          tc "host routes" test_trie_host_routes;
          tc "to_list sorted" test_trie_to_list_sorted;
          tc "default route only" test_trie_default_route_only;
          tc "fold independent of insertion order"
            test_trie_fold_order_independent_of_insertion;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_lookup_is_lpm;
            prop_add_remove_roundtrip;
            prop_to_list_roundtrip;
            prop_subsumes_containment;
          ] );
    ]
