(* Tests for the multi-prefix simulation: independent per-prefix
   forwarding, victim accounting, background churn, and validation. *)

let clique = Topo.Generators.clique 6

let run ?churn ?config ~origins ~victim () =
  Bgp.Multi_sim.run ?churn ?config ~graph:clique ~origins ~victim ~seed:1 ()

let test_all_prefixes_converge () =
  let o = run ~origins:[ 0; 1; 2 ] ~victim:0 () in
  Alcotest.(check bool) "converged" true o.converged;
  Alcotest.(check int) "three prefixes" 3 (List.length o.prefixes);
  (* before the failure every node routes every prefix *)
  let before = o.t_fail -. 1. in
  List.iter
    (fun (prefix, fib) ->
      let origin = Bgp.Prefix.origin prefix in
      List.iter
        (fun v ->
          if v <> origin then
            Alcotest.(check bool)
              (Printf.sprintf "node %d routes %d" v origin)
              true
              (Netcore.Fib_history.lookup fib ~node:v ~time:before <> None))
        (Topo.Graph.nodes clique))
    o.prefixes

let test_victim_tdown_only_hits_victim () =
  let o = run ~origins:[ 0; 1; 2 ] ~victim:1 () in
  let late = o.victim_convergence_end +. 100. in
  List.iter
    (fun (prefix, fib) ->
      let origin = Bgp.Prefix.origin prefix in
      let routable =
        List.exists
          (fun v ->
            v <> origin
            && Netcore.Fib_history.lookup fib ~node:v ~time:late <> None)
          (Topo.Graph.nodes clique)
      in
      if Bgp.Prefix.equal prefix o.victim then
        Alcotest.(check bool) "victim unroutable" false routable
      else Alcotest.(check bool) "bystander intact" true routable)
    o.prefixes

let test_victim_convergence_positive () =
  let o = run ~origins:[ 0; 3 ] ~victim:0 () in
  Alcotest.(check bool) "victim messages flowed" true (o.victim_messages > 0);
  Alcotest.(check bool) "positive convergence" true
    (Bgp.Multi_sim.convergence_time o > 0.);
  Alcotest.(check int) "quiet background" 0 o.background_messages

let test_churn_generates_background_traffic () =
  let churn =
    { Bgp.Multi_sim.period = 20.; cycles = 3; flappers = [ 1 ] }
  in
  let o = run ~churn ~origins:[ 0; 1 ] ~victim:0 () in
  Alcotest.(check bool) "background messages" true (o.background_messages > 0);
  Alcotest.(check bool) "still converges" true o.converged

let test_churn_validation () =
  let raises churn =
    try
      ignore (run ~churn ~origins:[ 0; 1 ] ~victim:0 ());
      false
    with Invalid_argument _ -> true
  in
  Alcotest.(check bool) "victim cannot flap" true
    (raises { Bgp.Multi_sim.period = 10.; cycles = 1; flappers = [ 0 ] });
  Alcotest.(check bool) "bad period" true
    (raises { Bgp.Multi_sim.period = 0.; cycles = 1; flappers = [ 1 ] });
  Alcotest.(check bool) "bad flapper index" true
    (raises { Bgp.Multi_sim.period = 10.; cycles = 1; flappers = [ 9 ] })

let test_origin_validation () =
  let raises f =
    try
      ignore (f ());
      false
    with Invalid_argument _ -> true
  in
  Alcotest.(check bool) "empty origins" true
    (raises (fun () -> run ~origins:[] ~victim:0 ()));
  Alcotest.(check bool) "duplicate origins" true
    (raises (fun () -> run ~origins:[ 0; 0 ] ~victim:0 ()));
  Alcotest.(check bool) "victim out of range" true
    (raises (fun () -> run ~origins:[ 0; 1 ] ~victim:5 ()))

let test_deterministic () =
  let a = run ~origins:[ 0; 2; 4 ] ~victim:0 () in
  let b = run ~origins:[ 0; 2; 4 ] ~victim:0 () in
  Alcotest.(check (float 0.)) "conv" (Bgp.Multi_sim.convergence_time a)
    (Bgp.Multi_sim.convergence_time b);
  Alcotest.(check int) "victim msgs" a.victim_messages b.victim_messages

let test_matches_single_prefix_sim () =
  (* with a single prefix the multi-prefix harness must reproduce the
     single-prefix one exactly (same seed, same draws, same schedule) *)
  let graph = Topo.Generators.clique 5 in
  let single =
    Bgp.Routing_sim.run ~graph ~origin:0 ~event:Bgp.Routing_sim.Tdown ~seed:3 ()
  in
  let multi =
    Bgp.Multi_sim.run ~graph ~origins:[ 0 ] ~victim:0 ~seed:3 ()
  in
  Alcotest.(check (float 1e-9)) "same convergence"
    (Bgp.Routing_sim.convergence_time single)
    (Bgp.Multi_sim.convergence_time multi)

let () =
  let tc name f = Alcotest.test_case name `Quick f in
  Alcotest.run "multi-sim"
    [
      ( "behaviour",
        [
          tc "all prefixes converge" test_all_prefixes_converge;
          tc "T_down only hits the victim" test_victim_tdown_only_hits_victim;
          tc "victim accounting" test_victim_convergence_positive;
          tc "churn generates background traffic"
            test_churn_generates_background_traffic;
          tc "matches the single-prefix sim" test_matches_single_prefix_sim;
          tc "deterministic" test_deterministic;
        ] );
      ( "validation",
        [
          tc "churn validation" test_churn_validation;
          tc "origin validation" test_origin_validation;
        ] );
    ]
