(* Integration tests that reproduce the paper's qualitative findings at
   small scale (kept small so `dune runtest` stays fast; the full-size
   reproductions live in bench/main.ml):

   - Figure 1's loop-formation example, node for node;
   - Observation 1: overall looping duration tracks convergence time,
     and both grow linearly with the MRAI value;
   - Observation 2: the looping ratio is roughly constant in the MRAI;
   - Observation 3: Assertion and Ghost Flushing beat standard BGP,
     SSLD is a milder improvement;
   - global sanity: forwarding is loop-free after convergence. *)

open Bgpsim

let clique n = Experiment.default_spec (Experiment.Clique n)

(* --- the paper's Figure 1 --- *)

(* Nodes 0..6.  4 connects the destination side: link (4,0).  5 and 6
   hang off 4 and peer with each other; 6 also reaches 0 the long way
   through 3-2-1.  Failing (4,0) makes 5 and 6 chase each other's stale
   paths: the transient 2-node loop of Fig 1(b). *)
let figure1_graph () =
  Topo.Graph.create ~n:7
    ~edges:[ (0, 4); (4, 5); (4, 6); (5, 6); (6, 3); (3, 2); (2, 1); (1, 0) ]

let figure1_spec () =
  {
    (Experiment.default_spec
       (Experiment.Custom
          { graph = figure1_graph (); origin = 0; name = "figure-1" }))
    with
    event = Experiment.Tlong_link (0, 4);
  }

let test_figure1_loop_between_5_and_6 () =
  let r = Experiment.run (figure1_spec ()) in
  Alcotest.(check bool) "converged" true r.metrics.converged;
  let loop_56 =
    List.exists
      (fun (l : Loopscan.Scanner.loop) -> l.members = [ 5; 6 ])
      r.loops.loops
  in
  Alcotest.(check bool) "the 5<->6 transient loop forms" true loop_56;
  (* and it resolves: no loop survives convergence *)
  List.iter
    (fun (l : Loopscan.Scanner.loop) ->
      Alcotest.(check bool) "loop resolved" true (l.death <> None))
    r.loops.loops

let test_figure1_final_routes () =
  let r = Experiment.run (figure1_spec ()) in
  let fib = Netcore.Trace.fib r.outcome.trace in
  let late = r.outcome.convergence_end +. 100. in
  let nh v = Netcore.Fib_history.lookup fib ~node:v ~time:late in
  (* Fig 1(c): 6 escapes via 3, 5 follows 6, 4 follows 5 *)
  Alcotest.(check bool) "6 -> 3" true (nh 6 = Some 3);
  Alcotest.(check bool) "5 -> 6" true (nh 5 = Some 6);
  Alcotest.(check bool) "4 -> 5 or 4 -> 6" true
    (nh 4 = Some 5 || nh 4 = Some 6)

(* --- Observation 1 --- *)

let test_obs1_looping_tracks_convergence () =
  let m = Experiment.metrics { (clique 10) with mrai = 15. } in
  Alcotest.(check bool) "looping nearly all of convergence" true
    (m.overall_looping_duration > 0.7 *. m.convergence_time);
  Alcotest.(check bool) "and never longer than convergence + slack" true
    (m.overall_looping_duration < m.convergence_time +. 5.)

let test_obs1_linear_in_mrai () =
  let make mrai = { (clique 8) with mrai } in
  let series = Sweep.series ~make ~seeds:[ 1; 2 ] [ 5.; 10.; 15.; 20. ] in
  let conv_fit =
    Sweep.linearity series ~x:Fun.id
      ~y:(fun (m : Metrics.Run_metrics.t) -> m.convergence_time)
  in
  let loop_fit =
    Sweep.linearity series ~x:Fun.id
      ~y:(fun (m : Metrics.Run_metrics.t) -> m.overall_looping_duration)
  in
  Alcotest.(check bool) "convergence linear in MRAI (R2)" true
    (conv_fit.r2 > 0.9);
  Alcotest.(check bool) "convergence slope positive" true (conv_fit.slope > 0.);
  Alcotest.(check bool) "looping duration linear in MRAI (R2)" true
    (loop_fit.r2 > 0.9);
  Alcotest.(check bool) "looping slope positive" true (loop_fit.slope > 0.)

(* --- Observation 2 --- *)

let test_obs2_ratio_constant_in_mrai () =
  let ratio mrai =
    (Sweep.over_seeds { (clique 10) with mrai } ~seeds:[ 1; 2 ]).looping_ratio
  in
  let r10 = ratio 10. and r20 = ratio 20. and r30 = ratio 30. in
  (* constant within a modest band, as in Fig 7 *)
  let lo = List.fold_left Float.min r10 [ r20; r30 ] in
  let hi = List.fold_left Float.max r10 [ r20; r30 ] in
  Alcotest.(check bool)
    (Printf.sprintf "ratio band [%.2f, %.2f] is narrow" lo hi)
    true
    (hi -. lo < 0.25);
  Alcotest.(check bool) "substantial looping (paper: >65% at size 15)" true
    (r30 > 0.4)

let test_obs2_exhaustions_grow_with_mrai () =
  let exh mrai =
    (Sweep.over_seeds { (clique 8) with mrai } ~seeds:[ 1 ]).ttl_exhaustions
  in
  Alcotest.(check bool) "more MRAI, more exhaustions" true (exh 20. > exh 5.)

(* --- Observation 3 --- *)

let test_obs3_enhancement_ordering () =
  let metric enh =
    Sweep.over_seeds
      { (clique 8) with enhancement = enh; mrai = 15. }
      ~seeds:[ 1; 2 ]
  in
  let std = metric Bgp.Enhancement.Standard in
  let assertion = metric Bgp.Enhancement.Assertion in
  let gf = metric Bgp.Enhancement.Ghost_flushing in
  let ssld = metric Bgp.Enhancement.Ssld in
  (* Assertion: near-immediate T_down convergence in cliques *)
  Alcotest.(check bool) "assertion crushes clique Tdown" true
    (assertion.convergence_time < 0.2 *. std.convergence_time);
  Alcotest.(check bool) "assertion kills looping" true
    (assertion.ttl_exhaustions < std.ttl_exhaustions / 10);
  (* Ghost Flushing: >= 80% looping reduction (paper) *)
  Alcotest.(check bool) "ghost flushing cuts >= 80%" true
    (float_of_int gf.ttl_exhaustions
    <= 0.2 *. float_of_int std.ttl_exhaustions);
  Alcotest.(check bool) "ghost flushing speeds convergence" true
    (gf.convergence_time < std.convergence_time);
  (* SSLD: an improvement, but not the dramatic one *)
  Alcotest.(check bool) "ssld helps" true
    (ssld.ttl_exhaustions < std.ttl_exhaustions);
  Alcotest.(check bool) "ssld milder than ghost flushing" true
    (ssld.ttl_exhaustions > gf.ttl_exhaustions)

let test_obs3_wrate_slows_tlong_convergence () =
  let metric enh =
    Sweep.over_seeds
      {
        (Experiment.default_spec (Experiment.B_clique 6)) with
        event = Experiment.Tlong;
        enhancement = enh;
        mrai = 15.;
      }
      ~seeds:[ 1; 2 ]
  in
  let std = metric Bgp.Enhancement.Standard in
  let wrate = metric Bgp.Enhancement.Wrate in
  (* paper: WRATE "slightly increases the T_long convergence time in
     B-Clique topologies" *)
  Alcotest.(check bool) "wrate does not speed Tlong up" true
    (wrate.convergence_time >= 0.95 *. std.convergence_time)

(* --- global sanity --- *)

let forwarding_loop_free r =
  let fib = Netcore.Trace.fib r.Experiment.outcome.trace in
  let graph, origin, _ = Experiment.resolve r.spec in
  let n = Topo.Graph.n_nodes graph in
  let late = r.outcome.convergence_end +. 100. in
  List.for_all
    (fun src ->
      src = origin
      ||
      match
        Traffic.Forwarder.walk ~fib ~origin ~link_delay:0.002 ~ttl:(4 * n)
          ~src ~send_time:late
      with
      | Traffic.Forwarder.Ttl_exhausted _ -> false
      | Traffic.Forwarder.Delivered _ | Traffic.Forwarder.Unreachable _ -> true)
    (Topo.Graph.nodes graph)

let test_loop_free_after_convergence () =
  List.iter
    (fun spec ->
      let r = Experiment.run spec in
      Alcotest.(check bool)
        (Printf.sprintf "%s loop-free after convergence"
           (Experiment.topology_name spec.topology))
        true (forwarding_loop_free r))
    [
      { (clique 8) with mrai = 10. };
      {
        (Experiment.default_spec (Experiment.B_clique 5)) with
        event = Experiment.Tlong;
        mrai = 10.;
      };
      { (Experiment.default_spec (Experiment.Internet 29)) with mrai = 10. };
      {
        (Experiment.default_spec (Experiment.Internet 29)) with
        event = Experiment.Tlong;
        mrai = 10.;
        seed = 3;
      };
    ]

let test_loop_free_under_every_enhancement () =
  List.iter
    (fun enh ->
      let r =
        Experiment.run { (clique 6) with enhancement = enh; mrai = 10. }
      in
      Alcotest.(check bool)
        (Printf.sprintf "loop-free with %s" (Bgp.Enhancement.name enh))
        true (forwarding_loop_free r))
    Bgp.Enhancement.all

let test_tdown_ratio_meaningful () =
  (* the headline phenomenon: most packets sent during a clique T_down
     convergence hit a loop *)
  let m = Sweep.over_seeds { (clique 10) with mrai = 15. } ~seeds:[ 1; 2 ] in
  Alcotest.(check bool)
    (Printf.sprintf "ratio %.2f substantial" m.looping_ratio)
    true (m.looping_ratio > 0.5)

let test_loop_duration_bounded_by_theory () =
  (* Section 3.2: an m-node loop lasts at most (m-1) x M (plus
     processing slack) *)
  let spec = { (clique 8) with mrai = 10. } in
  let r = Experiment.run spec in
  let until = r.outcome.convergence_end +. r.spec.replay_tail in
  List.iter
    (fun (l : Loopscan.Scanner.loop) ->
      let bound =
        (float_of_int (Loopscan.Scanner.size l - 1) *. spec.mrai) +. 5.
      in
      let d = Loopscan.Scanner.duration l ~until in
      Alcotest.(check bool)
        (Printf.sprintf "loop of size %d lasted %.1fs <= %.1fs"
           (Loopscan.Scanner.size l) d bound)
        true (d <= bound))
    r.loops.loops

let () =
  let tc name f = Alcotest.test_case name `Quick f in
  Alcotest.run "integration"
    [
      ( "figure-1",
        [
          tc "transient loop between 5 and 6" test_figure1_loop_between_5_and_6;
          tc "final routes match Fig 1(c)" test_figure1_final_routes;
        ] );
      ( "observation-1",
        [
          tc "looping duration tracks convergence"
            test_obs1_looping_tracks_convergence;
          tc "linear in MRAI" test_obs1_linear_in_mrai;
        ] );
      ( "observation-2",
        [
          tc "ratio constant in MRAI" test_obs2_ratio_constant_in_mrai;
          tc "exhaustions grow with MRAI" test_obs2_exhaustions_grow_with_mrai;
        ] );
      ( "observation-3",
        [
          tc "enhancement ordering" test_obs3_enhancement_ordering;
          tc "wrate does not speed Tlong" test_obs3_wrate_slows_tlong_convergence;
        ] );
      ( "sanity",
        [
          tc "loop-free after convergence" test_loop_free_after_convergence;
          tc "loop-free under every enhancement"
            test_loop_free_under_every_enhancement;
          tc "Tdown looping ratio substantial" test_tdown_ratio_meaningful;
          tc "loop duration bounded by (m-1) x M"
            test_loop_duration_bounded_by_theory;
        ] );
    ]
