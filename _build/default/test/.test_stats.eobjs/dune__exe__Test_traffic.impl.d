test/test_traffic.ml: Alcotest Array Bgpsim List Netcore Printf Traffic
