test/test_damping.mli:
