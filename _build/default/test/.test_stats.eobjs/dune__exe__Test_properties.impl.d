test/test_properties.ml: Alcotest Array Bgp Dessim List Netcore QCheck QCheck_alcotest Topo
