test/test_routing_sim.mli:
