test/test_multi_sim.mli:
