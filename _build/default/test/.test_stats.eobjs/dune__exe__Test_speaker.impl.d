test/test_speaker.ml: Alcotest Bgp Dessim Format List Queue String
