test/test_metrics.ml: Alcotest Bgp Bgpsim Format List Loopscan Metrics Netcore String Traffic
