test/test_damping.ml: Alcotest Bgp Dessim Float QCheck QCheck_alcotest Queue Topo
