test/test_topo.ml: Alcotest Array List Option QCheck QCheck_alcotest Stdlib String Topo
