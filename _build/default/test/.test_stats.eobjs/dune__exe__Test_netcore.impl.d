test/test_netcore.ml: Alcotest Array Dessim Gen List Netcore QCheck QCheck_alcotest
