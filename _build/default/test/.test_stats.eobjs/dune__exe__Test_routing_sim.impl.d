test/test_routing_sim.ml: Alcotest Array Bgp List Loopscan Netcore Printf Topo
