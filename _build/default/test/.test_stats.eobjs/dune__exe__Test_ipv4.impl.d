test/test_ipv4.ml: Alcotest Bgp Gen Int32 List Option QCheck QCheck_alcotest
