test/test_dessim.ml: Alcotest Array Dessim Float Fun Gen List QCheck QCheck_alcotest
