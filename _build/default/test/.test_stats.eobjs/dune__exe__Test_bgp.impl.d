test/test_bgp.ml: Alcotest Bgp Config Dessim Enhancement Format Gen List Netcore QCheck QCheck_alcotest Topo
