test/test_loopscan.ml: Alcotest Bgp List Loopscan Netcore QCheck QCheck_alcotest Topo Traffic
