test/test_experiment.ml: Alcotest Bgp Bgpsim Experiment Fun List Metrics Report Stdlib String Sweep Topo
