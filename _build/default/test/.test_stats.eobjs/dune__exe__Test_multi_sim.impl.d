test/test_multi_sim.ml: Alcotest Bgp List Netcore Printf Topo
