test/test_integration.ml: Alcotest Bgp Bgpsim Experiment Float Fun List Loopscan Metrics Netcore Printf Sweep Topo Traffic
