test/test_loopscan.mli:
