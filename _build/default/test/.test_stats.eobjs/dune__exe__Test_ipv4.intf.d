test/test_ipv4.mli:
