(* Tests for the discrete-event simulation engine: growable vectors,
   RNG streams, the event queue and the engine itself. *)

(* --- Vec --- *)

let test_vec_empty () =
  let v = Dessim.Vec.create () in
  Alcotest.(check int) "length" 0 (Dessim.Vec.length v);
  Alcotest.(check bool) "last" true (Dessim.Vec.last v = None)

let test_vec_push_get () =
  let v = Dessim.Vec.create () in
  for i = 0 to 99 do
    Dessim.Vec.push v (i * 2)
  done;
  Alcotest.(check int) "length" 100 (Dessim.Vec.length v);
  Alcotest.(check int) "get 0" 0 (Dessim.Vec.get v 0);
  Alcotest.(check int) "get 99" 198 (Dessim.Vec.get v 99);
  Alcotest.(check bool) "last" true (Dessim.Vec.last v = Some 198)

let test_vec_bounds () =
  let v = Dessim.Vec.create () in
  Dessim.Vec.push v 1;
  Alcotest.check_raises "oob" (Invalid_argument "Vec.get: index out of range")
    (fun () -> ignore (Dessim.Vec.get v 1))

let test_vec_iter_fold () =
  let v = Dessim.Vec.create () in
  List.iter (Dessim.Vec.push v) [ 1; 2; 3 ];
  let total = ref 0 in
  Dessim.Vec.iter (fun x -> total := !total + x) v;
  Alcotest.(check int) "iter sum" 6 !total;
  Alcotest.(check int) "fold sum" 6 (Dessim.Vec.fold_left ( + ) 0 v);
  Alcotest.(check (list int)) "to_list" [ 1; 2; 3 ] (Dessim.Vec.to_list v)

(* --- Rng --- *)

let test_rng_deterministic () =
  let a = Dessim.Rng.create ~seed:7 and b = Dessim.Rng.create ~seed:7 in
  let xs = List.init 20 (fun _ -> Dessim.Rng.int a 1000) in
  let ys = List.init 20 (fun _ -> Dessim.Rng.int b 1000) in
  Alcotest.(check (list int)) "same seed, same stream" xs ys

let test_rng_seeds_differ () =
  let a = Dessim.Rng.create ~seed:1 and b = Dessim.Rng.create ~seed:2 in
  let xs = List.init 20 (fun _ -> Dessim.Rng.int a 1_000_000) in
  let ys = List.init 20 (fun _ -> Dessim.Rng.int b 1_000_000) in
  Alcotest.(check bool) "different" true (xs <> ys)

let test_rng_split_decorrelates () =
  let root = Dessim.Rng.create ~seed:3 in
  let a = Dessim.Rng.split root ~label:"a" in
  let b = Dessim.Rng.split root ~label:"b" in
  let xs = List.init 20 (fun _ -> Dessim.Rng.int a 1_000_000) in
  let ys = List.init 20 (fun _ -> Dessim.Rng.int b 1_000_000) in
  Alcotest.(check bool) "streams differ" true (xs <> ys)

let test_rng_split_deterministic () =
  let mk () =
    let root = Dessim.Rng.create ~seed:11 in
    let s = Dessim.Rng.split root ~label:"x" in
    List.init 10 (fun _ -> Dessim.Rng.int s 1000)
  in
  Alcotest.(check (list int)) "reproducible" (mk ()) (mk ())

let test_rng_uniform_bounds () =
  let rng = Dessim.Rng.create ~seed:5 in
  for _ = 1 to 1000 do
    let x = Dessim.Rng.uniform rng ~lo:2. ~hi:3. in
    if x < 2. || x >= 3. then Alcotest.failf "uniform out of bounds: %g" x
  done

let test_rng_uniform_degenerate () =
  let rng = Dessim.Rng.create ~seed:5 in
  Alcotest.(check (float 0.)) "lo = hi" 4. (Dessim.Rng.uniform rng ~lo:4. ~hi:4.)

let test_rng_pick () =
  let rng = Dessim.Rng.create ~seed:5 in
  for _ = 1 to 100 do
    let x = Dessim.Rng.pick rng [ 1; 2; 3 ] in
    if x < 1 || x > 3 then Alcotest.fail "pick outside list"
  done;
  Alcotest.check_raises "empty" (Invalid_argument "Rng.pick: empty list")
    (fun () -> ignore (Dessim.Rng.pick rng ([] : int list)))

let test_rng_shuffle_permutes () =
  let rng = Dessim.Rng.create ~seed:9 in
  let a = Array.init 50 Fun.id in
  Dessim.Rng.shuffle rng a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "permutation" (Array.init 50 Fun.id) sorted

(* --- Event_queue --- *)

let test_queue_orders_by_time () =
  let q = Dessim.Event_queue.create () in
  Dessim.Event_queue.push q ~time:3. "c";
  Dessim.Event_queue.push q ~time:1. "a";
  Dessim.Event_queue.push q ~time:2. "b";
  let pop () =
    match Dessim.Event_queue.pop q with
    | Some (_, x) -> x
    | None -> Alcotest.fail "unexpected empty"
  in
  Alcotest.(check string) "first" "a" (pop ());
  Alcotest.(check string) "second" "b" (pop ());
  Alcotest.(check string) "third" "c" (pop ());
  Alcotest.(check bool) "drained" true (Dessim.Event_queue.pop q = None)

let test_queue_fifo_at_equal_times () =
  let q = Dessim.Event_queue.create () in
  List.iter (fun x -> Dessim.Event_queue.push q ~time:1. x) [ 1; 2; 3; 4; 5 ];
  let order =
    List.init 5 (fun _ ->
        match Dessim.Event_queue.pop q with
        | Some (_, x) -> x
        | None -> Alcotest.fail "empty")
  in
  Alcotest.(check (list int)) "insertion order" [ 1; 2; 3; 4; 5 ] order

let test_queue_peek () =
  let q = Dessim.Event_queue.create () in
  Alcotest.(check bool) "peek empty" true (Dessim.Event_queue.peek_time q = None);
  Dessim.Event_queue.push q ~time:5. ();
  Alcotest.(check bool) "peek" true (Dessim.Event_queue.peek_time q = Some 5.);
  Alcotest.(check int) "size" 1 (Dessim.Event_queue.size q)

let test_queue_rejects_nan () =
  let q = Dessim.Event_queue.create () in
  Alcotest.check_raises "nan" (Invalid_argument "Event_queue.push: NaN time")
    (fun () -> Dessim.Event_queue.push q ~time:Float.nan ())

let prop_queue_pops_sorted =
  QCheck.Test.make ~name:"queue pops in nondecreasing time order" ~count:200
    QCheck.(list_of_size Gen.(int_range 0 200) (float_range 0. 1000.))
    (fun times ->
      let q = Dessim.Event_queue.create () in
      List.iter (fun t -> Dessim.Event_queue.push q ~time:t ()) times;
      let rec drain acc =
        match Dessim.Event_queue.pop q with
        | None -> List.rev acc
        | Some (t, ()) -> drain (t :: acc)
      in
      let popped = drain [] in
      List.length popped = List.length times
      && popped = List.sort compare times)

(* --- Engine --- *)

let test_engine_runs_in_order () =
  let e = Dessim.Engine.create () in
  let log = ref [] in
  let note tag () = log := tag :: !log in
  ignore (Dessim.Engine.schedule e ~at:2. (note "b"));
  ignore (Dessim.Engine.schedule e ~at:1. (note "a"));
  ignore (Dessim.Engine.schedule e ~at:3. (note "c"));
  Dessim.Engine.run e;
  Alcotest.(check (list string)) "order" [ "a"; "b"; "c" ] (List.rev !log);
  Alcotest.(check (float 0.)) "clock" 3. (Dessim.Engine.now e)

let test_engine_schedule_during_run () =
  let e = Dessim.Engine.create () in
  let fired = ref [] in
  ignore
    (Dessim.Engine.schedule e ~at:1. (fun () ->
         fired := 1 :: !fired;
         ignore
           (Dessim.Engine.schedule_after e ~delay:0.5 (fun () ->
                fired := 2 :: !fired))));
  Dessim.Engine.run e;
  Alcotest.(check (list int)) "nested" [ 1; 2 ] (List.rev !fired);
  Alcotest.(check (float 0.)) "clock" 1.5 (Dessim.Engine.now e)

let test_engine_rejects_past () =
  let e = Dessim.Engine.create ~now:10. () in
  Alcotest.(check bool) "raises" true
    (try
       ignore (Dessim.Engine.schedule e ~at:5. (fun () -> ()));
       false
     with Invalid_argument _ -> true)

let test_engine_rejects_negative_delay () =
  let e = Dessim.Engine.create () in
  Alcotest.(check bool) "raises" true
    (try
       ignore (Dessim.Engine.schedule_after e ~delay:(-1.) (fun () -> ()));
       false
     with Invalid_argument _ -> true)

let test_engine_cancel () =
  let e = Dessim.Engine.create () in
  let fired = ref false in
  let h = Dessim.Engine.schedule e ~at:1. (fun () -> fired := true) in
  Dessim.Engine.cancel h;
  Alcotest.(check bool) "marked" true (Dessim.Engine.cancelled h);
  Dessim.Engine.run e;
  Alcotest.(check bool) "not fired" false !fired;
  Alcotest.(check int) "no live events executed" 0
    (Dessim.Engine.events_executed e)

let test_engine_cancel_after_fire_is_noop () =
  let e = Dessim.Engine.create () in
  let h = Dessim.Engine.schedule e ~at:1. (fun () -> ()) in
  Dessim.Engine.run e;
  Dessim.Engine.cancel h;
  Alcotest.(check bool) "not marked cancelled" false (Dessim.Engine.cancelled h)

let test_engine_until () =
  let e = Dessim.Engine.create () in
  let fired = ref [] in
  ignore (Dessim.Engine.schedule e ~at:1. (fun () -> fired := 1 :: !fired));
  ignore (Dessim.Engine.schedule e ~at:5. (fun () -> fired := 5 :: !fired));
  Dessim.Engine.run ~until:2. e;
  Alcotest.(check (list int)) "only first" [ 1 ] !fired;
  Alcotest.(check (float 0.)) "clock stays" 1. (Dessim.Engine.now e);
  Dessim.Engine.run e;
  Alcotest.(check (list int)) "rest" [ 5; 1 ] !fired

let test_engine_max_events () =
  let e = Dessim.Engine.create () in
  for i = 1 to 10 do
    ignore (Dessim.Engine.schedule e ~at:(float_of_int i) (fun () -> ()))
  done;
  Dessim.Engine.run ~max_events:3 e;
  Alcotest.(check int) "stopped at budget" 3 (Dessim.Engine.events_executed e);
  Alcotest.(check int) "rest pending" 7 (Dessim.Engine.pending e)

let test_engine_step () =
  let e = Dessim.Engine.create () in
  Alcotest.(check bool) "empty step" false (Dessim.Engine.step e);
  ignore (Dessim.Engine.schedule e ~at:1. (fun () -> ()));
  Alcotest.(check bool) "one step" true (Dessim.Engine.step e);
  Alcotest.(check bool) "drained" false (Dessim.Engine.step e)

let test_engine_equal_time_fifo () =
  let e = Dessim.Engine.create () in
  let log = ref [] in
  for i = 1 to 5 do
    ignore (Dessim.Engine.schedule e ~at:1. (fun () -> log := i :: !log))
  done;
  Dessim.Engine.run e;
  Alcotest.(check (list int)) "fifo" [ 1; 2; 3; 4; 5 ] (List.rev !log)

let () =
  let tc name f = Alcotest.test_case name `Quick f in
  Alcotest.run "dessim"
    [
      ( "vec",
        [
          tc "empty" test_vec_empty;
          tc "push and get" test_vec_push_get;
          tc "bounds check" test_vec_bounds;
          tc "iter and fold" test_vec_iter_fold;
        ] );
      ( "rng",
        [
          tc "deterministic" test_rng_deterministic;
          tc "seeds differ" test_rng_seeds_differ;
          tc "split decorrelates" test_rng_split_decorrelates;
          tc "split deterministic" test_rng_split_deterministic;
          tc "uniform in bounds" test_rng_uniform_bounds;
          tc "uniform degenerate" test_rng_uniform_degenerate;
          tc "pick" test_rng_pick;
          tc "shuffle permutes" test_rng_shuffle_permutes;
        ] );
      ( "event-queue",
        [
          tc "orders by time" test_queue_orders_by_time;
          tc "FIFO at equal times" test_queue_fifo_at_equal_times;
          tc "peek and size" test_queue_peek;
          tc "rejects NaN" test_queue_rejects_nan;
          QCheck_alcotest.to_alcotest prop_queue_pops_sorted;
        ] );
      ( "engine",
        [
          tc "runs in time order" test_engine_runs_in_order;
          tc "schedule during run" test_engine_schedule_during_run;
          tc "rejects past" test_engine_rejects_past;
          tc "rejects negative delay" test_engine_rejects_negative_delay;
          tc "cancel" test_engine_cancel;
          tc "cancel after fire is no-op" test_engine_cancel_after_fire_is_noop;
          tc "run until" test_engine_until;
          tc "max events" test_engine_max_events;
          tc "step" test_engine_step;
          tc "equal-time FIFO" test_engine_equal_time_fifo;
        ] );
    ]
