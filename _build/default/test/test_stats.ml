(* Tests for the stats library: descriptive statistics, least-squares
   fits and histograms. *)

let feq ?(eps = 1e-9) a b = Float.abs (a -. b) <= eps

let check_float ?eps msg expected actual =
  if not (feq ?eps expected actual) then
    Alcotest.failf "%s: expected %g, got %g" msg expected actual

(* --- Descriptive --- *)

let test_sum_empty () = check_float "sum []" 0. (Stats.Descriptive.sum [||])

let test_sum_basic () =
  check_float "sum" 10. (Stats.Descriptive.sum [| 1.; 2.; 3.; 4. |])

let test_sum_kahan () =
  (* Kahan summation keeps the tiny terms that naive summation drops. *)
  let xs = Array.make 10_000 1e-8 in
  xs.(0) <- 1e8;
  let total = Stats.Descriptive.sum xs in
  check_float ~eps:1e-6 "kahan" (1e8 +. 9_999e-8) total

let test_mean () =
  check_float "mean" 2.5 (Stats.Descriptive.mean [| 1.; 2.; 3.; 4. |])

let test_mean_empty () =
  Alcotest.check_raises "mean []"
    (Invalid_argument "Descriptive.mean: empty sample") (fun () ->
      ignore (Stats.Descriptive.mean [||]))

let test_variance_single () =
  check_float "variance [x]" 0. (Stats.Descriptive.variance [| 42. |])

let test_variance () =
  (* sample variance of 2,4,4,4,5,5,7,9 is 32/7 *)
  check_float "variance" (32. /. 7.)
    (Stats.Descriptive.variance [| 2.; 4.; 4.; 4.; 5.; 5.; 7.; 9. |])

let test_stddev () =
  check_float "stddev" (sqrt (32. /. 7.))
    (Stats.Descriptive.stddev [| 2.; 4.; 4.; 4.; 5.; 5.; 7.; 9. |])

let test_min_max () =
  let xs = [| 3.; -1.; 7.; 0. |] in
  check_float "min" (-1.) (Stats.Descriptive.min xs);
  check_float "max" 7. (Stats.Descriptive.max xs)

let test_percentile_bounds () =
  let xs = [| 5.; 1.; 3. |] in
  check_float "p0" 1. (Stats.Descriptive.percentile 0. xs);
  check_float "p100" 5. (Stats.Descriptive.percentile 100. xs);
  check_float "p50" 3. (Stats.Descriptive.percentile 50. xs)

let test_percentile_interpolates () =
  let xs = [| 1.; 2.; 3.; 4. |] in
  check_float "p25" 1.75 (Stats.Descriptive.percentile 25. xs)

let test_percentile_rejects () =
  Alcotest.check_raises "p out of range"
    (Invalid_argument "Descriptive.percentile: p outside [0, 100]") (fun () ->
      ignore (Stats.Descriptive.percentile 101. [| 1. |]))

let test_median_even () =
  check_float "median" 2.5 (Stats.Descriptive.median [| 1.; 2.; 3.; 4. |])

let test_summarize () =
  let s = Stats.Descriptive.summarize [| 1.; 2.; 3. |] in
  Alcotest.(check int) "n" 3 s.n;
  check_float "mean" 2. s.mean;
  check_float "min" 1. s.min;
  check_float "max" 3. s.max;
  check_float "median" 2. s.median

let test_percentile_input_unchanged () =
  let xs = [| 9.; 1.; 5. |] in
  ignore (Stats.Descriptive.percentile 50. xs);
  Alcotest.(check (array (float 0.))) "input intact" [| 9.; 1.; 5. |] xs

(* --- Linear_fit --- *)

let test_fit_exact_line () =
  let points =
    Array.init 10 (fun i -> (float_of_int i, (3. *. float_of_int i) +. 1.))
  in
  let f = Stats.Linear_fit.fit points in
  check_float "slope" 3. f.slope;
  check_float "intercept" 1. f.intercept;
  check_float "r2" 1. f.r2

let test_fit_constant_y () =
  let points = [| (0., 5.); (1., 5.); (2., 5.) |] in
  let f = Stats.Linear_fit.fit points in
  check_float "slope" 0. f.slope;
  check_float "r2 of exact constant fit" 1. f.r2

let test_fit_needs_two_points () =
  Alcotest.check_raises "fit one point"
    (Invalid_argument "Linear_fit.fit: need at least two points") (fun () ->
      ignore (Stats.Linear_fit.fit [| (1., 1.) |]))

let test_fit_rejects_vertical () =
  Alcotest.check_raises "vertical"
    (Invalid_argument "Linear_fit.fit: all x values coincide") (fun () ->
      ignore (Stats.Linear_fit.fit [| (1., 1.); (1., 2.) |]))

let test_fit_noisy_r2_below_one () =
  let f = Stats.Linear_fit.fit [| (0., 0.); (1., 2.); (2., 1.); (3., 4.) |] in
  if f.r2 >= 1. || f.r2 <= 0. then
    Alcotest.failf "noisy r2 should be in (0,1), got %g" f.r2

let test_predict () =
  let f = Stats.Linear_fit.fit [| (0., 1.); (2., 5.) |] in
  check_float "predict" 3. (Stats.Linear_fit.predict f 1.)

(* --- Histogram --- *)

let test_histogram_buckets () =
  let h = Stats.Histogram.create ~lo:0. ~hi:10. ~buckets:5 in
  Stats.Histogram.add h 0.5;
  Stats.Histogram.add h 1.;
  Stats.Histogram.add h 9.99;
  Alcotest.(check int) "count" 3 (Stats.Histogram.count h);
  Alcotest.(check int) "bucket 0" 2 (Stats.Histogram.bucket_count h 0);
  Alcotest.(check int) "bucket 4" 1 (Stats.Histogram.bucket_count h 4)

let test_histogram_clamps () =
  let h = Stats.Histogram.create ~lo:0. ~hi:1. ~buckets:2 in
  Stats.Histogram.add h (-5.);
  Stats.Histogram.add h 100.;
  Alcotest.(check int) "below -> first" 1 (Stats.Histogram.bucket_count h 0);
  Alcotest.(check int) "above -> last" 1 (Stats.Histogram.bucket_count h 1)

let test_histogram_ranges () =
  let h = Stats.Histogram.create ~lo:0. ~hi:10. ~buckets:5 in
  let lo, hi = Stats.Histogram.bucket_range h 1 in
  check_float "range lo" 2. lo;
  check_float "range hi" 4. hi

let test_histogram_rejects () =
  Alcotest.check_raises "zero buckets"
    (Invalid_argument "Histogram.create: buckets <= 0") (fun () ->
      ignore (Stats.Histogram.create ~lo:0. ~hi:1. ~buckets:0));
  Alcotest.check_raises "inverted"
    (Invalid_argument "Histogram.create: hi <= lo") (fun () ->
      ignore (Stats.Histogram.create ~lo:1. ~hi:1. ~buckets:3))

let test_histogram_to_list () =
  let h = Stats.Histogram.create ~lo:0. ~hi:4. ~buckets:4 in
  Stats.Histogram.add h 2.5;
  let buckets = Stats.Histogram.to_list h in
  Alcotest.(check int) "bucket list length" 4 (List.length buckets);
  let (_, _), c = List.nth buckets 2 in
  Alcotest.(check int) "third bucket" 1 c

(* --- properties --- *)

let float_array_gen =
  QCheck.(array_of_size Gen.(int_range 1 100) (float_range (-1000.) 1000.))

let prop_mean_within_bounds =
  QCheck.Test.make ~name:"mean lies within [min, max]" ~count:200
    float_array_gen (fun xs ->
      let m = Stats.Descriptive.mean xs in
      m >= Stats.Descriptive.min xs -. 1e-9
      && m <= Stats.Descriptive.max xs +. 1e-9)

let prop_variance_nonneg =
  QCheck.Test.make ~name:"variance is non-negative" ~count:200 float_array_gen
    (fun xs -> Stats.Descriptive.variance xs >= -1e-9)

let prop_percentile_monotone =
  QCheck.Test.make ~name:"percentile is monotone in p" ~count:200
    QCheck.(
      pair float_array_gen
        (pair (float_bound_inclusive 100.) (float_bound_inclusive 100.)))
    (fun (xs, (p1, p2)) ->
      let lo = Float.min p1 p2 and hi = Float.max p1 p2 in
      Stats.Descriptive.percentile lo xs
      <= Stats.Descriptive.percentile hi xs +. 1e-9)

let prop_fit_recovers_line =
  QCheck.Test.make ~name:"fit recovers an exact line" ~count:100
    QCheck.(pair (float_range (-10.) 10.) (float_range (-10.) 10.))
    (fun (slope, intercept) ->
      let points =
        Array.init 5 (fun i ->
            let x = float_of_int i in
            (x, (slope *. x) +. intercept))
      in
      let f = Stats.Linear_fit.fit points in
      feq ~eps:1e-6 f.slope slope && feq ~eps:1e-6 f.intercept intercept)

let prop_histogram_conserves_count =
  QCheck.Test.make ~name:"histogram conserves sample count" ~count:100
    float_array_gen (fun xs ->
      let h = Stats.Histogram.create ~lo:(-100.) ~hi:100. ~buckets:7 in
      Array.iter (Stats.Histogram.add h) xs;
      let bucket_total =
        List.fold_left
          (fun acc (_, c) -> acc + c)
          0
          (Stats.Histogram.to_list h)
      in
      bucket_total = Array.length xs && Stats.Histogram.count h = bucket_total)

let () =
  let tc name f = Alcotest.test_case name `Quick f in
  Alcotest.run "stats"
    [
      ( "descriptive",
        [
          tc "sum of empty array" test_sum_empty;
          tc "sum of small array" test_sum_basic;
          tc "compensated summation" test_sum_kahan;
          tc "mean" test_mean;
          tc "mean rejects empty" test_mean_empty;
          tc "variance of singleton" test_variance_single;
          tc "sample variance" test_variance;
          tc "stddev" test_stddev;
          tc "min and max" test_min_max;
          tc "percentile bounds" test_percentile_bounds;
          tc "percentile interpolation" test_percentile_interpolates;
          tc "percentile range check" test_percentile_rejects;
          tc "median of even-sized sample" test_median_even;
          tc "summarize" test_summarize;
          tc "percentile leaves input unsorted" test_percentile_input_unchanged;
        ] );
      ( "linear-fit",
        [
          tc "exact line" test_fit_exact_line;
          tc "constant y" test_fit_constant_y;
          tc "needs two points" test_fit_needs_two_points;
          tc "rejects vertical line" test_fit_rejects_vertical;
          tc "noisy data gives r2 in (0,1)" test_fit_noisy_r2_below_one;
          tc "predict" test_predict;
        ] );
      ( "histogram",
        [
          tc "bucket assignment" test_histogram_buckets;
          tc "clamps out-of-range samples" test_histogram_clamps;
          tc "bucket ranges" test_histogram_ranges;
          tc "rejects bad shapes" test_histogram_rejects;
          tc "to_list" test_histogram_to_list;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_mean_within_bounds;
            prop_variance_nonneg;
            prop_percentile_monotone;
            prop_fit_recovers_line;
            prop_histogram_conserves_count;
          ] );
    ]
