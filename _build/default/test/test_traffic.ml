(* Tests for the forwarding replay: single-packet walks against
   hand-built FIB histories, and the constant-rate replay driver. *)

let fib_with ~n changes =
  let fib = Netcore.Fib_history.create ~n in
  List.iter
    (fun (time, node, next_hop) ->
      Netcore.Fib_history.record fib ~time ~node ~next_hop)
    changes;
  fib

let walk = Traffic.Forwarder.walk

(* --- Forwarder --- *)

let test_walk_delivers () =
  (* chain 3 -> 2 -> 1 -> 0 *)
  let fib =
    fib_with ~n:4
      [ (0., 3, Some 2); (0., 2, Some 1); (0., 1, Some 0) ]
  in
  match walk ~fib ~origin:0 ~link_delay:0.002 ~ttl:128 ~src:3 ~send_time:1. with
  | Traffic.Forwarder.Delivered { time; hops } ->
      Alcotest.(check int) "hops" 3 hops;
      Alcotest.(check (float 1e-9)) "arrival" 1.006 time
  | f -> Alcotest.failf "expected delivery, got %a" Traffic.Forwarder.pp_fate f

let test_walk_at_origin () =
  let fib = fib_with ~n:1 [] in
  match walk ~fib ~origin:0 ~link_delay:0.002 ~ttl:128 ~src:0 ~send_time:0. with
  | Traffic.Forwarder.Delivered { hops = 0; _ } -> ()
  | f -> Alcotest.failf "expected 0-hop delivery, got %a" Traffic.Forwarder.pp_fate f

let test_walk_unreachable () =
  let fib = fib_with ~n:3 [ (0., 2, Some 1) ] in
  match walk ~fib ~origin:0 ~link_delay:0.002 ~ttl:128 ~src:2 ~send_time:1. with
  | Traffic.Forwarder.Unreachable { at_node; _ } ->
      Alcotest.(check int) "dropped at routeless node" 1 at_node
  | f -> Alcotest.failf "expected unreachable, got %a" Traffic.Forwarder.pp_fate f

let test_walk_loop_exhausts_ttl () =
  (* 1 <-> 2, destination 0 never reached *)
  let fib = fib_with ~n:3 [ (0., 1, Some 2); (0., 2, Some 1) ] in
  match walk ~fib ~origin:0 ~link_delay:0.002 ~ttl:128 ~src:1 ~send_time:5. with
  | Traffic.Forwarder.Ttl_exhausted { time; at_node } ->
      (* the paper's arithmetic: 128 hops x 2 ms = 256 ms lifetime *)
      Alcotest.(check (float 1e-9)) "lifetime" (5. +. 0.256) time;
      Alcotest.(check bool) "inside the loop" true (at_node = 1 || at_node = 2)
  | f -> Alcotest.failf "expected exhaustion, got %a" Traffic.Forwarder.pp_fate f

let test_walk_escapes_resolving_loop () =
  (* the loop 1 <-> 2 resolves at t = 5.1 when node 2 repoints to 0;
     a packet circling since t = 5 escapes and is delivered *)
  let fib =
    fib_with ~n:3 [ (0., 1, Some 2); (0., 2, Some 1); (5.1, 2, Some 0) ]
  in
  match walk ~fib ~origin:0 ~link_delay:0.002 ~ttl:128 ~src:1 ~send_time:5. with
  | Traffic.Forwarder.Delivered { time; hops } ->
      Alcotest.(check bool) "took many hops" true (hops > 2);
      Alcotest.(check bool) "after resolution" true (time > 5.1)
  | f -> Alcotest.failf "expected escape, got %a" Traffic.Forwarder.pp_fate f

let test_walk_ttl_boundary () =
  (* ttl exactly equals path length: delivered with nothing to spare *)
  let fib = fib_with ~n:3 [ (0., 2, Some 1); (0., 1, Some 0) ] in
  (match walk ~fib ~origin:0 ~link_delay:0.002 ~ttl:2 ~src:2 ~send_time:0. with
  | Traffic.Forwarder.Delivered { hops = 2; _ } -> ()
  | f -> Alcotest.failf "expected tight delivery, got %a" Traffic.Forwarder.pp_fate f);
  match walk ~fib ~origin:0 ~link_delay:0.002 ~ttl:1 ~src:2 ~send_time:0. with
  | Traffic.Forwarder.Ttl_exhausted { at_node = 1; _ } -> ()
  | f -> Alcotest.failf "expected exhaustion at 1, got %a" Traffic.Forwarder.pp_fate f

let test_walk_validation () =
  let fib = fib_with ~n:2 [] in
  let raises f =
    try
      ignore (f ());
      false
    with Invalid_argument _ -> true
  in
  Alcotest.(check bool) "ttl 0" true
    (raises (fun () ->
         walk ~fib ~origin:0 ~link_delay:0.002 ~ttl:0 ~src:1 ~send_time:0.));
  Alcotest.(check bool) "bad delay" true
    (raises (fun () ->
         walk ~fib ~origin:0 ~link_delay:0. ~ttl:4 ~src:1 ~send_time:0.))

(* --- Replay --- *)

let stable_chain_fib () =
  fib_with ~n:4 [ (0., 3, Some 2); (0., 2, Some 1); (0., 1, Some 0) ]

let test_replay_counts_and_rate () =
  let fib = stable_chain_fib () in
  let r =
    Traffic.Replay.run ~fib ~origin:0 ~n:4 ~link_delay:0.002 ~ttl:128 ~rate:10.
      ~window:(10., 20.) ~seed:1 ()
  in
  (* 3 sources x 10 pkt/s x 10 s *)
  Alcotest.(check int) "sent" 300 r.sent;
  Alcotest.(check int) "all delivered" 300 r.delivered;
  Alcotest.(check int) "none exhausted" 0 r.exhausted;
  Alcotest.(check (float 1e-9)) "no looping duration" 0.
    (Traffic.Replay.overall_looping_duration r);
  Alcotest.(check (float 1e-9)) "zero ratio" 0. (Traffic.Replay.looping_ratio r)

let test_replay_loop_window () =
  (* 1 <-> 2 looping during [10, 12]; resolved at 12 when 1 repoints *)
  let fib =
    fib_with ~n:3
      [ (0., 2, Some 1); (0., 1, Some 0); (10., 1, Some 2); (12., 1, Some 0) ]
  in
  let r =
    Traffic.Replay.run ~fib ~origin:0 ~n:3 ~link_delay:0.002 ~ttl:128 ~rate:10.
      ~window:(10., 14.) ~seed:1 ()
  in
  Alcotest.(check bool) "loop caught" true (r.exhausted > 0);
  Alcotest.(check bool) "delivered after resolution" true (r.delivered > 0);
  (match (r.first_exhaustion, r.last_exhaustion) with
  | Some first, Some last ->
      Alcotest.(check bool) "within looping episode" true
        (first >= 10. && last <= 12.3)
  | _ -> Alcotest.fail "expected exhaustions");
  Alcotest.(check bool) "duration bounded by episode" true
    (Traffic.Replay.overall_looping_duration r <= 2.3)

let test_replay_ratio_cutoff () =
  let fib = stable_chain_fib () in
  let r =
    Traffic.Replay.run ~fib ~origin:0 ~n:4 ~link_delay:0.002 ~ttl:128 ~rate:10.
      ~window:(0., 10.) ~seed:1 ~ratio_cutoff:5. ()
  in
  Alcotest.(check int) "full window sent" 300 r.sent;
  Alcotest.(check int) "denominator cut" 150 r.sent_for_ratio

let test_replay_sources_subset () =
  let fib = stable_chain_fib () in
  let r =
    Traffic.Replay.run ~fib ~origin:0 ~n:4 ~link_delay:0.002 ~ttl:128 ~rate:10.
      ~window:(0., 10.) ~seed:1 ~sources:[ 3 ] ()
  in
  Alcotest.(check int) "one stream" 100 r.sent

let test_replay_deterministic () =
  let fib = stable_chain_fib () in
  let go () =
    Traffic.Replay.run ~fib ~origin:0 ~n:4 ~link_delay:0.002 ~ttl:128 ~rate:10.
      ~window:(0., 10.) ~seed:9 ()
  in
  let a = go () and b = go () in
  Alcotest.(check int) "sent" a.sent b.sent;
  Alcotest.(check int) "delivered" a.delivered b.delivered

let test_replay_empty_window () =
  let fib = stable_chain_fib () in
  let r =
    Traffic.Replay.run ~fib ~origin:0 ~n:4 ~link_delay:0.002 ~ttl:128 ~rate:10.
      ~window:(5., 5.) ~seed:1 ()
  in
  Alcotest.(check int) "nothing sent" 0 r.sent;
  Alcotest.(check (float 0.)) "ratio zero" 0. (Traffic.Replay.looping_ratio r)

let test_replay_validation () =
  let fib = stable_chain_fib () in
  let raises f =
    try
      ignore (f ());
      false
    with Invalid_argument _ -> true
  in
  Alcotest.(check bool) "bad rate" true
    (raises (fun () ->
         Traffic.Replay.run ~fib ~origin:0 ~n:4 ~link_delay:0.002 ~ttl:128
           ~rate:0. ~window:(0., 1.) ~seed:1 ()));
  Alcotest.(check bool) "inverted window" true
    (raises (fun () ->
         Traffic.Replay.run ~fib ~origin:0 ~n:4 ~link_delay:0.002 ~ttl:128
           ~rate:1. ~window:(2., 1.) ~seed:1 ()));
  Alcotest.(check bool) "origin as source" true
    (raises (fun () ->
         Traffic.Replay.run ~fib ~origin:0 ~n:4 ~link_delay:0.002 ~ttl:128
           ~rate:1. ~window:(0., 1.) ~seed:1 ~sources:[ 0 ] ()))

let test_replay_exhaustion_times_sorted () =
  let fib =
    fib_with ~n:3 [ (0., 1, Some 2); (0., 2, Some 1) ]
  in
  let r =
    Traffic.Replay.run ~fib ~origin:0 ~n:3 ~link_delay:0.002 ~ttl:16 ~rate:50.
      ~window:(0., 2.) ~seed:1 ()
  in
  Alcotest.(check bool) "everything exhausted" true (r.exhausted = r.sent);
  let sorted = Array.copy r.exhaustion_times in
  Array.sort compare sorted;
  Alcotest.(check (array (float 0.))) "sorted" sorted r.exhaustion_times

let test_fate_time_accessor () =
  let t f = Traffic.Forwarder.fate_time f in
  Alcotest.(check (float 0.)) "delivered" 1.
    (t (Traffic.Forwarder.Delivered { time = 1.; hops = 3 }));
  Alcotest.(check (float 0.)) "exhausted" 2.
    (t (Traffic.Forwarder.Ttl_exhausted { time = 2.; at_node = 1 }));
  Alcotest.(check (float 0.)) "unreachable" 3.
    (t (Traffic.Forwarder.Unreachable { time = 3.; at_node = 2 }))

let test_replay_sparse_rate () =
  (* the interval exceeds the window: each source sends at most one
     packet (its phase draw decides) and never more *)
  let fib = stable_chain_fib () in
  let r =
    Traffic.Replay.run ~fib ~origin:0 ~n:4 ~link_delay:0.002 ~ttl:128 ~rate:0.1
      ~window:(0., 5.) ~seed:1 ()
  in
  Alcotest.(check bool) "at most one per source" true (r.sent <= 3);
  Alcotest.(check int) "all fates accounted" r.sent
    (r.delivered + r.unreachable + r.exhausted)

(* --- Per_source --- *)

let test_per_source_totals_match_replay () =
  let fib =
    fib_with ~n:3
      [ (0., 2, Some 1); (0., 1, Some 0); (10., 1, Some 2); (12., 1, Some 0) ]
  in
  let window = (10., 14.) and seed = 1 in
  let replay =
    Traffic.Replay.run ~fib ~origin:0 ~n:3 ~link_delay:0.002 ~ttl:128 ~rate:10.
      ~window ~seed ()
  in
  let per_source =
    Traffic.Per_source.run ~fib ~origin:0 ~n:3 ~link_delay:0.002 ~ttl:128
      ~rate:10. ~window ~seed ()
  in
  let sum f = List.fold_left (fun acc s -> acc + f s) 0 per_source in
  Alcotest.(check int) "sent" replay.sent
    (sum (fun (s : Traffic.Per_source.stats) -> s.sent));
  Alcotest.(check int) "delivered" replay.delivered
    (sum (fun (s : Traffic.Per_source.stats) -> s.delivered));
  Alcotest.(check int) "exhausted" replay.exhausted
    (sum (fun (s : Traffic.Per_source.stats) -> s.exhausted))

let test_per_source_identifies_affected () =
  (* loop between 1 and 2; node 3 routes straight to the origin and is
     never affected *)
  let fib =
    fib_with ~n:4 [ (0., 1, Some 2); (0., 2, Some 1); (0., 3, Some 0) ]
  in
  let per_source =
    Traffic.Per_source.run ~fib ~origin:0 ~n:4 ~link_delay:0.002 ~ttl:16
      ~rate:10. ~window:(0., 2.) ~seed:1 ()
  in
  Alcotest.(check (list int)) "only loop members affected" [ 1; 2 ]
    (Traffic.Per_source.affected per_source);
  let stats_of v =
    List.find (fun (s : Traffic.Per_source.stats) -> s.src = v) per_source
  in
  Alcotest.(check (float 1e-9)) "node 3 clean" 0.
    (Traffic.Per_source.looping_ratio (stats_of 3));
  Alcotest.(check (float 1e-9)) "node 1 fully looped" 1.
    (Traffic.Per_source.looping_ratio (stats_of 1))

let test_per_source_footnote4_b_clique () =
  (* The paper's footnote 4: in a B-Clique T_long (failing link (n,0)),
     chain nodes 2..n/2 are not affected and their packets never
     encounter a loop. *)
  let n = 6 in
  let spec =
    {
      (Bgpsim.Experiment.default_spec (Bgpsim.Experiment.B_clique n)) with
      event = Bgpsim.Experiment.Tlong;
      mrai = 15.;
    }
  in
  let run = Bgpsim.Experiment.run spec in
  let fib = Netcore.Trace.fib run.outcome.trace in
  let per_source =
    Traffic.Per_source.run ~fib ~origin:0 ~n:(2 * n) ~link_delay:0.002 ~ttl:128
      ~rate:10.
      ~window:(run.outcome.t_fail, run.outcome.convergence_end)
      ~seed:7 ()
  in
  let stats_of v =
    List.find (fun (s : Traffic.Per_source.stats) -> s.src = v) per_source
  in
  List.iter
    (fun v ->
      Alcotest.(check int)
        (Printf.sprintf "chain node %d unaffected" v)
        0 (stats_of v).exhausted)
    [ 1; 2; 3 ]

let () =
  let tc name f = Alcotest.test_case name `Quick f in
  Alcotest.run "traffic"
    [
      ( "forwarder",
        [
          tc "delivers along a chain" test_walk_delivers;
          tc "zero-hop at origin" test_walk_at_origin;
          tc "unreachable" test_walk_unreachable;
          tc "loop exhausts TTL in 256 ms" test_walk_loop_exhausts_ttl;
          tc "escapes a resolving loop" test_walk_escapes_resolving_loop;
          tc "TTL boundary" test_walk_ttl_boundary;
          tc "validation" test_walk_validation;
        ] );
      ( "replay",
        [
          tc "counts and rate" test_replay_counts_and_rate;
          tc "looping window" test_replay_loop_window;
          tc "ratio cutoff" test_replay_ratio_cutoff;
          tc "source subset" test_replay_sources_subset;
          tc "deterministic" test_replay_deterministic;
          tc "empty window" test_replay_empty_window;
          tc "validation" test_replay_validation;
          tc "exhaustion times sorted" test_replay_exhaustion_times_sorted;
          tc "fate time accessor" test_fate_time_accessor;
          tc "sparse rate" test_replay_sparse_rate;
        ] );
      ( "per-source",
        [
          tc "totals match aggregate replay" test_per_source_totals_match_replay;
          tc "identifies affected sources" test_per_source_identifies_affected;
          tc "paper footnote 4 on b-clique" test_per_source_footnote4_b_clique;
        ] );
    ]
